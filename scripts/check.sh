#!/bin/sh
# Tier-1 gate (see ROADMAP.md). Equivalent to `make check`; kept as a
# plain shell script for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (CI runs it)"
fi

echo "== go build =="
go build ./...

# Race-free pass runs the full engine-equivalence matrix; the -race
# pass re-runs everything on the oracle's representative slice (the
# detector's ~10x slowdown would blow the package timeout otherwise).
echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "all checks passed"
