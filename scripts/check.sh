#!/bin/sh
# Tier-1 gate (see ROADMAP.md). Equivalent to `make check`; kept as a
# plain shell script for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "all checks passed"
