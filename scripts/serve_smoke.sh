#!/bin/sh
# End-to-end smoke of cmd/ehserve (invoked via `make serve-smoke`):
# build the server, start it on a local port with a disk-backed result
# store, issue the same figure query twice — the second MUST come back
# as an X-EH-Cache hit with byte-identical body, and its request trace
# (fetched from /v1/trace/{id} by the X-EH-Trace ID we name) MUST show
# a cache-hit lookup span and no simulation cell spans — plus a
# provenance query (0 computed cells when warm), the sampled metrics
# series, one sweep and one model query. The store's counters land in
# serve_smoke_stats.json and the warm request's span tree in
# serve_smoke_trace.json (CI uploads both as artifacts) before a
# graceful shutdown, whose log must carry the telemetry summary.
set -eu
cd "$(dirname "$0")/.."

ADDR="${EHSERVE_ADDR:-127.0.0.1:8093}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SRV_PID=""

cleanup() {
	if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
		kill -TERM "$SRV_PID" 2>/dev/null || true
		wait "$SRV_PID" 2>/dev/null || true
	fi
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
	echo "serve-smoke: $*" >&2
	[ -f "$WORK/server.log" ] && sed 's/^/  server: /' "$WORK/server.log" >&2
	exit 1
}

# A header check that survives curl's CRLF line endings and Go's
# canonical X-Eh-Cache capitalization.
header_is() { # file name want
	tr -d '\r' <"$1" | grep -qi "^$2: $3\$"
}

echo "== build =="
go build -o "$WORK/ehserve" ./cmd/ehserve

echo "== start (cache disk, $ADDR) =="
"$WORK/ehserve" -addr "$ADDR" -cache disk -cache-dir "$WORK/cache" \
	-series-interval 500ms \
	>"$WORK/server.log" 2>&1 &
SRV_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "server never became healthy on $ADDR"
	kill -0 "$SRV_PID" 2>/dev/null || fail "server exited during startup"
	sleep 0.1
done

FIG="$BASE/v1/figure?id=5&quick=true"

echo "== figure (cold) =="
curl -fsS -D "$WORK/h1" -o "$WORK/b1" "$FIG"
header_is "$WORK/h1" x-eh-cache miss || fail "first figure response was not a miss"

echo "== figure (warm) =="
# Name the warm request's trace ourselves so we can fetch it by ID.
TRACE_ID="cafe0123cafe0123"
curl -fsS -H "X-EH-Trace: $TRACE_ID" -D "$WORK/h2" -o "$WORK/b2" "$FIG"
header_is "$WORK/h2" x-eh-cache hit || fail "second figure response was not a cache hit"
cmp -s "$WORK/b1" "$WORK/b2" || fail "cached figure response differs from the generated one"
header_is "$WORK/h2" x-eh-trace "$TRACE_ID" || fail "trace ID not echoed on the warm response"

echo "== trace (warm request: cache-hit span, no cells) =="
curl -fsS "$BASE/v1/trace/$TRACE_ID" -o serve_smoke_trace.json
grep -q '"name": "cache.lookup"' serve_smoke_trace.json || fail "trace missing the cache.lookup span"
grep -q '"outcome": "hit"' serve_smoke_trace.json || fail "warm trace's lookup span is not a cache hit"
grep -q '"name": "cell"' serve_smoke_trace.json && fail "warm trace contains simulation cell spans"
# The chrome export of the same trace must be loadable trace_event JSON.
curl -fsS "$BASE/v1/trace/$TRACE_ID?format=chrome" -o "$WORK/trace_chrome.json"
grep -q '"traceEvents"' "$WORK/trace_chrome.json" || fail "chrome trace export malformed"

echo "== provenance (warm: 0 computed cells) =="
curl -fsS "$FIG&provenance=1" -o "$WORK/prov.json"
grep -q '"computed_cells": 0' "$WORK/prov.json" || fail "warm provenance reports computed cells"
grep -q '"cache": "hit"' "$WORK/prov.json" || fail "warm provenance does not report the response-cache hit"

echo "== metrics series =="
sleep 1.2 # let at least two sampling intervals elapse
curl -fsS "$BASE/v1/metrics/series" -o "$WORK/series.json"
grep -q '"unix_ms"' "$WORK/series.json" || fail "metrics series has no samples"

echo "== sweep =="
curl -fsS "$BASE/v1/sweep?lo=1&hi=1000&n=50" -o "$WORK/sweep.json"
grep -q '"tau_b_opt"' "$WORK/sweep.json" || fail "sweep response missing tau_b_opt"

echo "== model =="
curl -fsS "$BASE/v1/model?tau_b=10&alpha_b=0.1" -o "$WORK/model.json"
grep -q '"progress"' "$WORK/model.json" || fail "model response missing progress"

echo "== store stats =="
curl -fsS "$BASE/metrics?format=json" -o serve_smoke_stats.json
grep -q '"cache_misses"' serve_smoke_stats.json || fail "metrics export missing store counters"
# The warm figure reply came from the response cache, so the result
# store must have simulated the figure exactly once: misses > 0 from
# the cold pass, and four total requests on the books.
misses="$(sed -n 's/.*"cache_misses": \([0-9]*\).*/\1/p' serve_smoke_stats.json | head -n 1)"
[ -n "$misses" ] && [ "$misses" -gt 0 ] || fail "no result-store misses recorded (got '$misses')"

echo "== graceful shutdown =="
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero on SIGTERM"
grep -q "drained" "$WORK/server.log" || fail "server log missing drain summary"
grep -q "telemetry" "$WORK/server.log" || fail "server log missing telemetry summary"
grep -q "store hit rate" "$WORK/server.log" || fail "telemetry summary missing the store hit rate"
SRV_PID=""

echo "serve-smoke: OK (stats in serve_smoke_stats.json, span tree in serve_smoke_trace.json)"
