#!/bin/sh
# End-to-end smoke of cmd/ehserve (invoked via `make serve-smoke`):
# build the server, start it on a local port with a disk-backed result
# store, issue the same figure query twice — the second MUST come back
# as an X-EH-Cache hit with byte-identical body — plus one sweep and
# one model query, then write the store's counters to
# serve_smoke_stats.json (CI uploads it as an artifact) and shut the
# server down gracefully.
set -eu
cd "$(dirname "$0")/.."

ADDR="${EHSERVE_ADDR:-127.0.0.1:8093}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SRV_PID=""

cleanup() {
	if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
		kill -TERM "$SRV_PID" 2>/dev/null || true
		wait "$SRV_PID" 2>/dev/null || true
	fi
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
	echo "serve-smoke: $*" >&2
	[ -f "$WORK/server.log" ] && sed 's/^/  server: /' "$WORK/server.log" >&2
	exit 1
}

# A header check that survives curl's CRLF line endings and Go's
# canonical X-Eh-Cache capitalization.
header_is() { # file name want
	tr -d '\r' <"$1" | grep -qi "^$2: $3\$"
}

echo "== build =="
go build -o "$WORK/ehserve" ./cmd/ehserve

echo "== start (cache disk, $ADDR) =="
"$WORK/ehserve" -addr "$ADDR" -cache disk -cache-dir "$WORK/cache" \
	>"$WORK/server.log" 2>&1 &
SRV_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "server never became healthy on $ADDR"
	kill -0 "$SRV_PID" 2>/dev/null || fail "server exited during startup"
	sleep 0.1
done

FIG="$BASE/v1/figure?id=5&quick=true"

echo "== figure (cold) =="
curl -fsS -D "$WORK/h1" -o "$WORK/b1" "$FIG"
header_is "$WORK/h1" x-eh-cache miss || fail "first figure response was not a miss"

echo "== figure (warm) =="
curl -fsS -D "$WORK/h2" -o "$WORK/b2" "$FIG"
header_is "$WORK/h2" x-eh-cache hit || fail "second figure response was not a cache hit"
cmp -s "$WORK/b1" "$WORK/b2" || fail "cached figure response differs from the generated one"

echo "== sweep =="
curl -fsS "$BASE/v1/sweep?lo=1&hi=1000&n=50" -o "$WORK/sweep.json"
grep -q '"tau_b_opt"' "$WORK/sweep.json" || fail "sweep response missing tau_b_opt"

echo "== model =="
curl -fsS "$BASE/v1/model?tau_b=10&alpha_b=0.1" -o "$WORK/model.json"
grep -q '"progress"' "$WORK/model.json" || fail "model response missing progress"

echo "== store stats =="
curl -fsS "$BASE/metrics?format=json" -o serve_smoke_stats.json
grep -q '"cache_misses"' serve_smoke_stats.json || fail "metrics export missing store counters"
# The warm figure reply came from the response cache, so the result
# store must have simulated the figure exactly once: misses > 0 from
# the cold pass, and four total requests on the books.
misses="$(sed -n 's/.*"cache_misses": \([0-9]*\).*/\1/p' serve_smoke_stats.json | head -n 1)"
[ -n "$misses" ] && [ "$misses" -gt 0 ] || fail "no result-store misses recorded (got '$misses')"

echo "== graceful shutdown =="
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero on SIGTERM"
grep -q "drained" "$WORK/server.log" || fail "server log missing drain summary"
SRV_PID=""

echo "serve-smoke: OK (stats in serve_smoke_stats.json)"
