// Package ehmodel's root benchmark suite regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment
// index). Each benchmark reports the figure's headline scalar via
// b.ReportMetric so `go test -bench=. -benchmem` doubles as a
// reproduction run:
//
//	BenchmarkFig5   → fraction of measured points within model bounds
//	BenchmarkFig6   → geomean |prediction error|
//	BenchmarkFig7   → Pearson correlation of τ_B-similarity vs progress
//	BenchmarkFig10  → mean α_B (bytes/cycle)
//	...
package ehmodel

import (
	"context"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/experiments"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// --- model microbenchmarks (Table I machinery) ---

func BenchmarkProgressEq8(b *testing.B) {
	p := core.DefaultParams()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += p.Progress()
	}
	_ = sink
}

func BenchmarkTauBOptEq9(b *testing.B) {
	p := core.DefaultParams()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += p.TauBOpt()
	}
	_ = sink
}

func BenchmarkTauBOptNumeric(b *testing.B) {
	p := core.DefaultParams()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += p.TauBOptNumeric(core.DeadAverage, 1e-3, 200)
	}
	_ = sink
}

func BenchmarkBreakEvenEq11(b *testing.B) {
	p := core.DefaultParams()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += p.TauBBreakEven()
	}
	_ = sink
}

// --- analytic figures ---

func BenchmarkFig2(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig2()
	}
	peak := experiments.Point{}
	for _, p := range f.Series[0].Points {
		if p.Y > peak.Y {
			peak = p
		}
	}
	b.ReportMetric(peak.Y, "peak_p")
}

func BenchmarkFig3(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig3()
	}
	b.ReportMetric(f.Series[0].Points[0].Y, "p_at_min_tauB")
}

func BenchmarkFig4(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig4()
	}
	n := len(f.Series[0].Points)
	gap := f.Series[0].Points[n-1].Y - f.Series[2].Points[n-1].Y
	b.ReportMetric(gap, "max_variability_gap")
}

func BenchmarkFig11(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Fig11(experiments.Fig11Config{Base: experiments.DefaultFig11Base()})
	}
	b.ReportMetric(float64(len(f.Series)), "curves")
}

// --- simulation-driven validations ---

func BenchmarkFig5(b *testing.B) {
	var pts []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig5(context.Background(), experiments.QuickFig5Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	within := 0
	for _, p := range pts {
		if p.Within {
			within++
		}
	}
	b.ReportMetric(float64(within)/float64(len(pts)), "within_bounds_frac")
}

func BenchmarkFig6(b *testing.B) {
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig6(context.Background(), experiments.Fig6Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var errs []float64
	for _, p := range pts {
		errs = append(errs, p.RelErr)
	}
	b.ReportMetric(stats.GeoMean(errs), "geomean_err")
}

func BenchmarkFig7(b *testing.B) {
	var pts []experiments.Fig7Point
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig7(context.Background(), experiments.Fig6Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var xs, ys []float64
	for _, p := range pts {
		xs = append(xs, p.Similarity)
		ys = append(ys, p.Measured)
	}
	if r, err := stats.Pearson(xs, ys); err == nil {
		b.ReportMetric(r, "pearson_r")
	}
}

func BenchmarkFig8And9(b *testing.B) {
	cfg := experiments.QuickCharacterizationConfig()
	var f8 *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f8, _, _, err = experiments.Fig8And9(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f8.Series[0].Points[0].Y, "lzfx_tauB_cycles")
}

func BenchmarkFig10(b *testing.B) {
	cfg := experiments.QuickCharacterizationConfig()
	var runsMean float64
	for i := 0; i < b.N; i++ {
		_, runs, err := experiments.Fig10(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range runs {
			sum += r.AlphaB.Mean
		}
		runsMean = sum / float64(len(runs))
	}
	b.ReportMetric(runsMean, "mean_alphaB_B_per_cycle")
}

// --- case studies ---

func BenchmarkCaseStoreMajor(b *testing.B) {
	var pts []experiments.StoreMajorPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.CaseStoreMajor()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].MeasuredRatio, "sttram_lm_sm_ratio")
}

func BenchmarkCaseStoreMajorDevice(b *testing.B) {
	var pts []experiments.StoreMajorDevicePoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.CaseStoreMajorDevice(context.Background(), runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	// store-major over load-major progress at the slow-write corner
	var lm, sm float64
	for _, p := range pts {
		if p.SigmaRatio == 0.1 {
			if p.Order == workload.LoadMajor {
				lm = p.Progress
			} else {
				sm = p.Progress
			}
		}
	}
	b.ReportMetric(sm/lm, "sm_over_lm_slow_writes")
}

func BenchmarkCaseCircularBuffer(b *testing.B) {
	var pts []experiments.CircularPoint
	var plan core.CircularBufferPlan
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, plan, err = experiments.CaseCircularBuffer(context.Background(), experiments.CircularConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := pts[0]
	for _, p := range pts {
		if p.Progress > best.Progress {
			best = p
		}
	}
	b.ReportMetric(float64(best.BufN), "best_N")
	b.ReportMetric(float64(plan.N), "planned_N")
}

func BenchmarkCaseBitPrecision(b *testing.B) {
	var r experiments.BitPrecisionResult
	for i := 0; i < b.N; i++ {
		r = experiments.CaseBitPrecision(experiments.DefaultFig11Base())
	}
	b.ReportMetric(r.GainOneBit, "dp_one_bit")
}

// --- ablations (DESIGN.md §6) ---

func BenchmarkAblationClankBuffers(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.AblationClankBuffers(context.Background(), runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := f.Series[0].Points
	b.ReportMetric(last[len(last)-1].Y, "susan_tauB_64entries")
}

func BenchmarkAblationClankWatchdog(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.AblationClankWatchdog(context.Background(), runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := f.Series[0].Points[0]
	for _, p := range f.Series[0].Points {
		if p.Y > best.Y {
			best = p
		}
	}
	b.ReportMetric(best.X, "best_watchdog_cycles")
}

func BenchmarkAblationHibernusMargin(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.AblationHibernusMargin(context.Background(), runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := f.Series[0].Points[0]
	for _, p := range f.Series[0].Points {
		if p.Y > best.Y {
			best = p
		}
	}
	b.ReportMetric(best.X, "best_margin")
}

func BenchmarkAblationMementosGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMementosGap(context.Background(), runner.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariabilityStudy(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.VariabilityStudy(context.Background(), 4000, 40, runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := 2.0, -1.0
	for _, p := range f.Series[0].Points {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	b.ReportMetric(hi-lo, "per_period_p_spread")
}

// --- design-space explorations ---

func BenchmarkCapacitorSweep(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.CapacitorSweep(context.Background(), "crc", nil, runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := f.Series[0].Points
	b.ReportMetric(pts[len(pts)-1].Y-pts[0].Y, "p_gain_from_buffer")
}

func BenchmarkNVMComparison(b *testing.B) {
	var pts []experiments.NVMComparisonPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.NVMComparison(context.Background(), "crc", 2000, runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Measured/pts[2].Measured, "fram_over_flash")
}

func BenchmarkTailLatencyStudy(b *testing.B) {
	var pts []experiments.TailPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.TailLatencyStudy(context.Background(), 0, runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := pts[0]
	for _, p := range pts {
		if p.P5 > best.P5 {
			best = p
		}
	}
	b.ReportMetric(best.TauB, "tail_opt_tauB")
}

func BenchmarkChargingStudy(b *testing.B) {
	var pts []experiments.ChargingPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.ChargingStudy(context.Background(), runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].Measured, "p_at_max_charging")
}

func BenchmarkBreakEvenStudy(b *testing.B) {
	var tauBE float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, tauBE, err = experiments.BreakEvenStudy(context.Background(), runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tauBE, "eq11_tauB_be_cycles")
}

func BenchmarkBreakdownComparison(b *testing.B) {
	var rows []experiments.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.BreakdownComparison(context.Background(), "crc", 0, runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Progress, "hibernus_progress_frac")
}

func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "benchmarks")
}

// --- simulator throughput (substrate performance) ---

func benchmarkSimulator(b *testing.B, bench string, seg asm.Segment, s func() device.Strategy) {
	w, ok := workload.Get(bench)
	if !ok {
		b.Fatalf("workload %q missing", bench)
	}
	prog, err := w.Build(workload.Options{Seg: seg, Scale: 2})
	if err != nil {
		b.Fatal(err)
	}
	pm := energy.MSP430Power()
	e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	var cycles uint64
	for i := 0; i < b.N; i++ {
		d, err := device.New(device.Config{
			Prog: prog, Power: pm,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			MaxPeriods: 100000, MaxCycles: 1 << 62,
		}, s())
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
		cycles = res.TotalCycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

func BenchmarkSimulatorClankLzfx(b *testing.B) {
	benchmarkSimulator(b, "lzfx", asm.FRAM, func() device.Strategy { return strategy.NewClank() })
}

func BenchmarkSimulatorDinoDS(b *testing.B) {
	benchmarkSimulator(b, "ds", asm.SRAM, func() device.Strategy { return strategy.NewDINO() })
}

func BenchmarkSimulatorHibernusCRC(b *testing.B) {
	benchmarkSimulator(b, "crc", asm.SRAM, func() device.Strategy { return strategy.NewHibernus() })
}

func BenchmarkContinuousExecution(b *testing.B) {
	w, _ := workload.Get("susan")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 4})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, c, err := device.RunContinuous(prog, 0, 0, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()*float64(b.N), "sim_cycles_per_s")
}
