# Tier-1 gate (see ROADMAP.md): everything `make check` runs must pass
# before a change lands.

GO ?= go

.PHONY: check fmt vet staticcheck build test test-race test-short audit audit-quick audit-adversarial lint-workloads lint-tasks lint-wcec bench bench-guard serve-smoke clean

# `test` runs the full suite race-free — including the complete engine
# equivalence matrix, which self-trims to a representative slice under
# the race detector (its ~10× slowdown would blow the package timeout).
# `test-race` then re-runs everything with -race on that slice.
check: fmt vet staticcheck build test test-race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when installed (CI installs it); local environments
# without it skip with a note rather than fail, so `make check` needs no
# network access.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# quick loop while developing: skips the fuzz matrix and the full
# 100-schedule audit sweep
test-short:
	$(GO) test -short ./...

# the crash-consistency audit sweep on its own
audit:
	$(GO) test -run 'TestAudit' -v ./internal/faults/

# a 10-schedule audit sweep through the parallel sweep engine — the
# CLI path (panic isolation, -workers, partial results), not the test
# harness
audit-quick:
	$(GO) run ./cmd/ehsim -audit -audit-schedules 10

# a bounded adversarial fault-search campaign with the formal oracle:
# fixed seed, short budget, default strategy × workload matrix (which
# includes the checkpoint-free alpaca task runtime). Exit 3 and a
# counterexamples.txt of minimized, `-repro`-replayable cases when any
# verdict fires (CI uploads the file as an artifact). The default
# protocol is expected to come up clean; this is the regression tripwire
# for protocol changes. A second campaign then aims at the known-bad
# alpaca-naive variant (non-atomic in-place task commits) and MUST find
# a counterexample — its exit 3 is inverted — so the auditor's teeth are
# checked in the same job. The task tables the alpaca family executes
# are emitted alongside for the artifact upload.
audit-adversarial:
	$(GO) run ./cmd/ehsim -audit -adversarial -oracle \
		-campaign-budget 24 -fault-seed 1 \
		-counterexamples counterexamples.txt \
		-metrics audit_adversarial_metrics.txt
	$(GO) build -o ehsim.audit ./cmd/ehsim
	./ehsim.audit -audit -adversarial -oracle \
		-audit-strategies alpaca-naive -audit-workloads counter \
		-campaign-budget 24 -fault-seed 1 \
		-counterexamples counterexamples_naive.txt; \
	status=$$?; rm -f ehsim.audit; \
	if [ $$status -ne 3 ]; then \
		echo "audit-adversarial: alpaca-naive campaign exited $$status, want 3 (known-bad target must be caught)"; \
		exit 1; \
	fi
	$(GO) run ./cmd/ehlint -tasks -golden > task_tables.txt
	$(GO) run ./cmd/ehlint -wcec -golden > wcec_tables.txt

# regenerate the golden static-analysis findings for every built-in
# workload (both data placements). cmd/ehlint's golden test fails on any
# drift from results/ehlint_workloads.golden, so new hazards must be
# reviewed and committed here deliberately.
lint-workloads:
	$(GO) run ./cmd/ehlint -golden > results/ehlint_workloads.golden
	@git diff --stat -- results/ehlint_workloads.golden

# regenerate the golden task decomposition tables (the static task
# boundaries, footprints and buffer bounds the Alpaca runtime executes).
# cmd/ehlint's golden test fails on any drift from
# results/ehlint_tasks.golden, so decomposition changes must be reviewed
# and committed here deliberately.
lint-tasks:
	$(GO) run ./cmd/ehlint -tasks -golden > results/ehlint_tasks.golden
	@git diff --stat -- results/ehlint_tasks.golden

# regenerate the golden WCEC forward-progress certificate tables (the
# per-region worst/best-case cycle and energy bounds, livelock verdicts
# and repair suggestions of the static verifier, under both region
# semantics). cmd/ehlint's golden test fails on any drift from
# results/ehlint_wcec.golden, so bound or verdict changes must be
# reviewed and committed here deliberately.
lint-wcec:
	$(GO) run ./cmd/ehlint -wcec -golden > results/ehlint_wcec.golden
	@git diff --stat -- results/ehlint_wcec.golden

# regenerate BENCH_core.json: the execution-engine macro-benchmark
# (reference vs batched on the counter/bench-supply configuration).
# CI uploads the file as an artifact; the committed copy is the
# baseline reviewers diff against.
bench:
	EHSIM_BENCH_OUT=$(CURDIR)/BENCH_core.json \
		$(GO) test ./internal/device/ -run TestWriteBenchJSON -count=1 -v

# end-to-end smoke of cmd/ehserve: build it, start it against a
# throwaway disk store, ask the same figure twice (the second reply must
# be an X-EH-Cache hit with byte-identical body), one sweep and one
# model query, then shut down gracefully. The store's counters land in
# serve_smoke_stats.json, which CI uploads as an artifact. Requires
# curl.
serve-smoke:
	sh scripts/serve_smoke.sh

# the observability zero-cost guard with the wall-clock half enabled:
# the disabled tracer path must add zero allocations (checked in every
# ordinary test run) AND stay within 2% ns/op of the committed
# BENCH_core.json baseline (opt-in, since the baseline is
# machine-specific).
bench-guard:
	EHSIM_BENCH_GUARD=1 \
		$(GO) test ./internal/device/ -run TestObservabilityDisabledCost -count=1 -v

clean:
	$(GO) clean ./...
