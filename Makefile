# Tier-1 gate (see ROADMAP.md): everything `make check` runs must pass
# before a change lands.

GO ?= go

.PHONY: check fmt vet build test test-race test-short audit audit-quick clean

check: fmt vet build test-race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# quick loop while developing: skips the fuzz matrix and the full
# 100-schedule audit sweep
test-short:
	$(GO) test -short ./...

# the crash-consistency audit sweep on its own
audit:
	$(GO) test -run 'TestAudit' -v ./internal/faults/

# a 10-schedule audit sweep through the parallel sweep engine — the
# CLI path (panic isolation, -workers, partial results), not the test
# harness
audit-quick:
	$(GO) run ./cmd/ehsim -audit -audit-schedules 10

clean:
	$(GO) clean ./...
