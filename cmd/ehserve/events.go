package main

import (
	"encoding/json"
	"net/http"
	"sync"

	"ehmodel/internal/sweep"
)

// Live event stream: /v1/events publishes request completions and cell
// resolutions as server-sent events, so "what is the service doing right
// now" is answerable with curl — no scraper, no polling loop.

// eventHub fans published events out to every connected subscriber.
// Delivery is best-effort: a subscriber that stops draining its channel
// loses events (counted, never blocking the serving path).
type eventHub struct {
	mu                 sync.Mutex
	subs               map[chan []byte]struct{}
	nextID             uint64
	published, dropped uint64
}

// subBuffer is each subscriber's channel depth; a burst larger than
// this drops events for that subscriber only.
const subBuffer = 64

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan []byte]struct{})}
}

func (h *eventHub) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *eventHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// active reports whether anyone is listening, so producers can skip
// building events nobody would see.
func (h *eventHub) active() bool {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return n > 0
}

// publish marshals v once and offers it to every subscriber without
// blocking. Marshal failures are impossible for the event structs below
// (plain fields); they are dropped silently to keep the serving path
// unconditional.
func (h *eventHub) publish(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.nextID++
	h.published++
	for ch := range h.subs {
		select {
		case ch <- b:
		default:
			h.dropped++
		}
	}
	h.mu.Unlock()
}

// requestEvent announces one completed request.
type requestEvent struct {
	Type   string `json:"type"` // "request"
	Trace  string `json:"trace,omitempty"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	DurUS  int64  `json:"dur_us"`
}

// cellEvent announces one resolved simulation cell.
type cellEvent struct {
	Type  string `json:"type"` // "cell"
	Trace string `json:"trace,omitempty"`
	sweep.CellProv
}

// handleEvents streams the hub as server-sent events until the client
// disconnects. It is deliberately not wrapped in the request-deadline
// middleware: the stream is long-lived by design.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line confirms the subscription to clients
	// (and tests) before the first real event arrives.
	if _, err := w.Write([]byte(": connected\n\n")); err != nil {
		return
	}
	fl.Flush()

	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case b := <-ch:
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if _, err := w.Write(b); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
