package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ehmodel/internal/experiments"
	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

// fastFigureServer stubs generation so trace-shape tests don't simulate.
func fastFigureServer() *server {
	s := testServer()
	s.generate = func(ctx context.Context, which string, quick bool, run runner.Options) ([]*experiments.Figure, []experiments.Failure) {
		return []*experiments.Figure{{ID: "fig" + which, Title: "stub"}}, nil
	}
	return s
}

// spanNames flattens a span tree document into name → nodes.
func spanNames(t *testing.T, body []byte) map[string][]*obsv.SpanNode {
	t.Helper()
	var doc struct {
		Tree []*obsv.SpanNode `json:"tree"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("span tree: %v\n%s", err, body)
	}
	out := map[string][]*obsv.SpanNode{}
	var walk func(ns []*obsv.SpanNode)
	walk = func(ns []*obsv.SpanNode) {
		for _, n := range ns {
			out[n.Name] = append(out[n.Name], n)
			walk(n.Children)
		}
	}
	walk(doc.Tree)
	return out
}

// TestTraceEndpoint: every request is traced; the span tree is
// retrievable by the X-EH-Trace ID, the cold request shows generation
// and render, and the warm request shows a cache-hit lookup and nothing
// simulated.
func TestTraceEndpoint(t *testing.T) {
	h := fastFigureServer().handler()

	r1 := get(t, h, "/v1/figure?id=3")
	if r1.Code != http.StatusOK {
		t.Fatalf("figure: %d", r1.Code)
	}
	id1 := r1.Header().Get(traceHeader)
	if id1 == "" {
		t.Fatal("no trace ID on the response")
	}
	t1 := get(t, h, "/v1/trace/"+id1)
	if t1.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", t1.Code, t1.Body.String())
	}
	cold := spanNames(t, t1.Body.Bytes())
	for _, name := range []string{"request", "request.parse", "cache.lookup", "generate", "render"} {
		if len(cold[name]) == 0 {
			t.Errorf("cold trace missing %q span", name)
		}
	}
	if got := cold["cache.lookup"][0].Attrs["outcome"]; got != "miss" {
		t.Fatalf("cold lookup outcome %q", got)
	}

	r2 := get(t, h, "/v1/figure?id=3")
	if got := r2.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("second request %s = %q", cacheHeader, got)
	}
	id2 := r2.Header().Get(traceHeader)
	if id2 == "" || id2 == id1 {
		t.Fatalf("second trace ID %q", id2)
	}
	t2 := get(t, h, "/v1/trace/"+id2)
	warm := spanNames(t, t2.Body.Bytes())
	if got := warm["cache.lookup"][0].Attrs["outcome"]; got != "hit" {
		t.Fatalf("warm lookup outcome %q", got)
	}
	if len(warm["generate"]) != 0 || len(warm["cell"]) != 0 || len(warm["device.run"]) != 0 {
		t.Fatal("warm request shows simulation spans")
	}

	// Chrome export of the same trace is valid trace_event JSON.
	tc := get(t, h, "/v1/trace/"+id1+"?format=chrome")
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tc.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export empty")
	}

	// Error cases: bad and unknown IDs.
	if rec := get(t, h, "/v1/trace/nothex"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/trace/"+obsv.NewTraceID().String()); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", rec.Code)
	}
}

// TestTraceHeaderInbound: a caller-supplied X-EH-Trace names the trace.
func TestTraceHeaderInbound(t *testing.T) {
	h := fastFigureServer().handler()
	want := obsv.NewTraceID().String()
	req := httptest.NewRequest("GET", "/v1/model?tau_b=10", nil)
	req.Header.Set(traceHeader, want)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(traceHeader); got != want {
		t.Fatalf("echoed trace %q, want %q", got, want)
	}
	if tr := get(t, h, "/v1/trace/"+want); tr.Code != http.StatusOK {
		t.Fatalf("named trace not retrievable: %d", tr.Code)
	}
}

// TestTracingDisabled: with no trace store the endpoints degrade
// gracefully and responses carry no trace header.
func TestTracingDisabled(t *testing.T) {
	s := fastFigureServer()
	s.traces = nil
	h := s.handler()
	rec := get(t, h, "/v1/figure?id=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("figure with tracing off: %d", rec.Code)
	}
	if got := rec.Header().Get(traceHeader); got != "" {
		t.Fatalf("trace header %q with tracing off", got)
	}
	if tr := get(t, h, "/v1/trace/"+obsv.NewTraceID().String()); tr.Code != http.StatusNotFound {
		t.Fatalf("trace endpoint with tracing off: %d", tr.Code)
	}
}

// TestProvenanceEnvelope: ?provenance=1 wraps the figure in an envelope
// without perturbing the cached bytes, and a warm request reports zero
// computed cells.
func TestProvenanceEnvelope(t *testing.T) {
	h := fastFigureServer().handler()

	p1 := get(t, h, "/v1/figure?id=3&provenance=1")
	if p1.Code != http.StatusOK {
		t.Fatalf("first: %d %s", p1.Code, p1.Body.String())
	}
	var env1 provEnvelope
	if err := json.Unmarshal(p1.Body.Bytes(), &env1); err != nil {
		t.Fatal(err)
	}
	if env1.Provenance.Cache != "miss" || env1.Provenance.Trace == "" {
		t.Fatalf("first provenance: %+v", env1.Provenance)
	}

	// The plain request must serve the exact cached figure — the
	// envelope is per-request dressing, never stored. (Compare compacted:
	// re-indenting inside the envelope moves whitespace only.)
	plain := get(t, h, "/v1/figure?id=3")
	if got := plain.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("plain after provenance: %s = %q", cacheHeader, got)
	}
	var pc, ec bytes.Buffer
	if err := json.Compact(&pc, plain.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&ec, env1.Figure); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pc.Bytes(), ec.Bytes()) {
		t.Fatal("cached figure differs from the envelope's figure field")
	}

	p2 := get(t, h, "/v1/figure?id=3&provenance=1")
	var env2 provEnvelope
	if err := json.Unmarshal(p2.Body.Bytes(), &env2); err != nil {
		t.Fatal(err)
	}
	if env2.Provenance.Cache != "hit" {
		t.Fatalf("warm provenance cache %q", env2.Provenance.Cache)
	}
	if env2.Provenance.ComputedCells != 0 || len(env2.Provenance.Cells) != 0 {
		t.Fatalf("warm provenance computed cells: %+v", env2.Provenance)
	}
	if !bytes.Equal([]byte(env1.Figure), []byte(env2.Figure)) {
		t.Fatal("figure bytes changed between provenance requests")
	}

	if rec := get(t, h, "/v1/figure?id=3&provenance=maybe"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad provenance param: %d", rec.Code)
	}
}

// TestSeriesEndpoint: sampled intervals report per-interval deltas.
func TestSeriesEndpoint(t *testing.T) {
	s := fastFigureServer()
	h := s.handler()
	now := time.Now()
	s.sample(now)

	get(t, h, "/v1/model?tau_b=10")
	get(t, h, "/v1/model?tau_b=20")
	s.sample(now.Add(10 * time.Second))

	rec := get(t, h, "/v1/metrics/series")
	if rec.Code != http.StatusOK {
		t.Fatalf("%d", rec.Code)
	}
	var resp seriesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Window != obsv.DefaultSeriesWindow {
		t.Fatalf("window %d", resp.Window)
	}
	if len(resp.Samples) != 2 {
		t.Fatalf("%d samples", len(resp.Samples))
	}
	last := resp.Samples[1]
	if last.Requests != 2 {
		t.Fatalf("interval requests %d, want 2", last.Requests)
	}
	if last.DurMS != 10_000 {
		t.Fatalf("interval duration %d ms", last.DurMS)
	}
	if last.Traces != 2 {
		t.Fatalf("interval traces %d", last.Traces)
	}
}

// TestEventsStream: a subscriber sees the request completion event for
// a figure request, with its trace ID attached.
func TestEventsStream(t *testing.T) {
	s := fastFigureServer()
	srv := httptest.NewServer(s.handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	// First frame is the connection comment.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("no hello frame: %q", sc.Text())
	}

	// Wait for the subscription to register before the request fires.
	for deadline := time.Now().Add(5 * time.Second); !s.hub.active(); {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	fr, err := http.Get(srv.URL + "/v1/figure?id=3")
	if err != nil {
		t.Fatal(err)
	}
	fr.Body.Close()
	wantTrace := fr.Header.Get(traceHeader)

	var ev requestEvent
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "request" && ev.Path == "/v1/figure" {
			break
		}
	}
	if ev.Path != "/v1/figure" || ev.Status != http.StatusOK || ev.Trace != wantTrace {
		t.Fatalf("request event %+v (want trace %s)", ev, wantTrace)
	}
}

// TestSnapshotMetricsClones: the exported snapshot must not share the
// ErrorClasses map with the live metrics (the /metrics race fix).
func TestSnapshotMetricsClones(t *testing.T) {
	s := testServer()
	s.mu.Lock()
	s.metrics.AddErrorClass("deadline", 1)
	s.mu.Unlock()
	snap := s.snapshotMetrics()
	s.mu.Lock()
	s.metrics.AddErrorClass("deadline", 9)
	s.mu.Unlock()
	if snap.ErrorClasses["deadline"] != 1 {
		t.Fatalf("snapshot shares the live map: %v", snap.ErrorClasses)
	}
}

// TestDrainSummary: the shutdown line reports requests, spans and the
// store hit rate.
func TestDrainSummary(t *testing.T) {
	s := testServer()
	exec := sweep.NewExecutor(sweep.NewMemStore(0))
	s.exec = exec
	h := s.handler()
	get(t, h, "/v1/model?tau_b=10")
	line := s.drainSummary()
	for _, want := range []string{"requests", "traces", "spans", "store hit rate"} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary %q missing %q", line, want)
		}
	}
}
