// Command ehserve is a long-running HTTP/JSON service over the EH
// model: it answers figure, sweep and model queries without paying a
// process start or a simulation re-run for repeated questions.
//
// Endpoints:
//
//	GET /healthz                    liveness probe
//	GET /metrics?format=json        request + result-store accounting
//	GET /v1/figure?id=5&quick=true  regenerate a paper figure (or "all")
//	GET /v1/sweep?lo=1&hi=1e3&n=50  Eq. 8 progress over a τ_B range
//	GET /v1/model?tau_b=10&e=100    one closed-form model evaluation
//	GET /v1/trace/{id}              span tree of a recent request (?format=chrome)
//	GET /v1/metrics/series          sampled per-interval metrics deltas
//	GET /v1/events                  live request/cell completions (SSE)
//
// /v1/model and /v1/sweep accept every Table I parameter as a query key
// (e, epsilon, epsilon_c, tau_b, sigma_b, omega_b, a_b, alpha_b,
// sigma_r, omega_r, a_r, alpha_r), defaulting to the paper's
// illustrative configuration.
//
// Figure responses are memoized twice over: identical in-flight
// requests collapse onto one generation (singleflight), the rendered
// response bytes are cached (the X-EH-Cache header reports hit, miss or
// coalesced), and underneath, every simulation cell goes through the
// same content-addressed result store the ehfigs -cache flag uses — so
// with -cache disk, a restarted server still answers warm.
//
// Every request is traced: the X-EH-Trace response header names a span
// tree (request parse, cache lookup, singleflight wait, each simulation
// cell, render) retrievable from /v1/trace/{id} while it stays in the
// bounded trace store. Send X-EH-Trace on the request to pick the ID.
// /v1/figure?provenance=1 additionally wraps the payload in an envelope
// reporting, per simulation cell, whether it was computed, recalled,
// deduplicated or bypassed, and what the producing run cost.
//
// SIGINT/SIGTERM drain in-flight requests before exit and log a final
// accounting line (requests served, spans recorded, store hit rate).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ehmodel/internal/device"
	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

func main() {
	os.Exit(cliMain())
}

func cliMain() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	cacheMode := flag.String("cache", "mem", "result store: mem (in-process LRU), disk (persistent CAS under -cache-dir) or off")
	cacheDir := flag.String("cache-dir", "results/cache", "directory for the on-disk result store (with -cache disk)")
	workers := flag.Int("workers", 0, "parallel sweep workers per request (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock deadline per simulation run (0 = none)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Minute, "deadline per HTTP request (0 = none)")
	engineName := flag.String("engine", "batched", "execution engine: batched (event-horizon) or reference (per-instruction)")
	traceCap := flag.Int("trace-store", obsv.DefaultTraceCapacity, "request traces retained for /v1/trace/{id} (0 disables tracing)")
	seriesEvery := flag.Duration("series-interval", 10*time.Second, "metrics sampling interval for /v1/metrics/series")
	seriesWindow := flag.Int("series-window", obsv.DefaultSeriesWindow, "samples retained for /v1/metrics/series")
	flag.Parse()

	engine, err := device.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehserve:", err)
		return 2
	}
	device.SetDefaultEngine(engine)

	exec, err := sweep.OpenExecutor(*cacheMode, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehserve:", err)
		return 2
	}
	sweep.SetDefault(exec)

	s := newServer(exec, runner.Options{Workers: *workers, RunTimeout: *runTimeout}, *reqTimeout)
	if *traceCap > 0 {
		s.traces = obsv.NewTraceStore(*traceCap)
	} else {
		s.traces = nil
	}
	s.series = obsv.NewSeries(*seriesWindow)
	srv := &http.Server{Addr: *addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *seriesEvery > 0 {
		go s.sampleLoop(ctx, *seriesEvery)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ehserve: listening on %s (cache %s, engine %s)", *addr, *cacheMode, engine)

	select {
	case <-ctx.Done():
		// Drain: stop accepting, let in-flight requests finish (briefly).
		shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			fmt.Fprintln(os.Stderr, "ehserve: shutdown:", err)
			return 1
		}
		st := exec.Stats()
		log.Printf("ehserve: drained (%d cells: %d hits, %d misses, %d deduplicated, %d bypassed)",
			st.Total(), st.Hits, st.Misses, st.Dedup, st.Bypass)
		log.Printf("ehserve: telemetry %s", s.drainSummary())
		return 0
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ehserve:", err)
		return 1
	}
}
