package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ehmodel/internal/core"
	"ehmodel/internal/experiments"
	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

// cacheHeader is the response header reporting how a figure query was
// answered: "miss" (generated now), "hit" (served from the response
// cache) or "coalesced" (piggybacked on an identical in-flight
// generation).
const cacheHeader = "X-EH-Cache"

// server answers figure/sweep/model queries. Figure responses are the
// expensive ones; they go through a request-keyed singleflight plus a
// response byte cache, and the simulations underneath go through the
// shared sweep executor's content-addressed store.
type server struct {
	exec    *sweep.Executor
	run     runner.Options
	timeout time.Duration

	// generate is experiments.GenerateFigures, injectable so tests can
	// count and stall generations to observe the singleflight.
	generate func(ctx context.Context, which string, quick bool, run runner.Options) ([]*experiments.Figure, []experiments.Failure)

	// traces retains the last N request traces for /v1/trace/{id}; nil
	// disables request tracing entirely (the -trace-store 0 flag).
	traces *obsv.TraceStore
	// hub fans live request/cell events out to /v1/events subscribers.
	hub *eventHub
	// series is the sampled /metrics delta ring behind /v1/metrics/series.
	series *obsv.Series

	mu      sync.Mutex
	metrics obsv.Metrics
	resp    map[string][]byte
	flights map[string]*respFlight

	// Sampler state: the previous snapshot each interval's deltas are
	// computed against. Guarded by smu (not mu: sampling must not
	// contend with request accounting beyond the snapshot itself).
	smu        sync.Mutex
	lastSample obsv.Metrics
	lastStats  sweep.Stats
	lastTraces uint64
	lastSpans  uint64
	lastAt     time.Time
}

// respFlight is one in-progress figure generation; followers for the
// same request key wait on done and share the rendered bytes.
type respFlight struct {
	done   chan struct{}
	body   []byte
	status int
	err    error
}

func newServer(exec *sweep.Executor, run runner.Options, timeout time.Duration) *server {
	return &server{
		exec:     exec,
		run:      run,
		timeout:  timeout,
		generate: experiments.GenerateFigures,
		traces:   obsv.NewTraceStore(0),
		hub:      newEventHub(),
		series:   obsv.NewSeries(0),
		resp:     map[string][]byte{},
		flights:  map[string]*respFlight{},
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.observe(s.handleHealth))
	mux.HandleFunc("GET /metrics", s.observe(s.handleMetrics))
	mux.HandleFunc("GET /v1/figure", s.observe(s.handleFigure))
	mux.HandleFunc("GET /v1/sweep", s.observe(s.handleSweep))
	mux.HandleFunc("GET /v1/model", s.observe(s.handleModel))
	mux.HandleFunc("GET /v1/trace/{id}", s.observe(s.handleTrace))
	mux.HandleFunc("GET /v1/metrics/series", s.observe(s.handleSeries))
	// The event stream is long-lived; it bypasses the request deadline
	// and counts itself out of the latency histogram.
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	return mux
}

// statusWriter captures the response status for request accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush passes streaming flushes through to the underlying writer, so
// wrapped handlers can still serve server-sent events.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// traceHeader carries the request's trace ID: accepted inbound (so a
// caller can name its own trace) and always echoed outbound, which is
// how a client learns the ID to fetch from /v1/trace/{id}.
const traceHeader = "X-EH-Trace"

// observe wraps a handler with the per-request deadline, the
// latency/error accounting exported at /metrics, and the request trace:
// every wrapped request gets a trace (ID from the X-EH-Trace header or
// generated) whose root "request" span brackets the handler, retained
// in the trace store and announced on the event stream.
func (s *server) observe(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		var tr *obsv.Trace
		var root *obsv.Span
		if s.traces != nil {
			id, ok := obsv.ParseTraceID(r.Header.Get(traceHeader))
			if !ok {
				id = obsv.NewTraceID()
			}
			tr = obsv.NewTrace(id, 0)
			ctx = obsv.ContextWithTrace(ctx, tr)
			ctx, root = obsv.StartSpan(ctx, "request")
			root.SetAttr("method", r.Method)
			root.SetAttr("path", r.URL.Path)
			w.Header().Set(traceHeader, id.String())
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		us := time.Since(start).Microseconds()
		s.mu.Lock()
		s.metrics.ObserveRequest(us, sw.status >= 400)
		s.mu.Unlock()
		if tr != nil {
			root.SetUint("status", uint64(sw.status))
			root.Finish()
			s.traces.Add(tr.Snapshot())
			if s.hub.active() {
				s.hub.publish(requestEvent{
					Type:   "request",
					Trace:  tr.ID.String(),
					Method: r.Method,
					Path:   r.URL.Path,
					Status: sw.status,
					DurUS:  us,
				})
			}
		}
	}
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// snapshotMetrics returns a copy of the request accounting safe to use
// outside the lock. A plain struct copy is not enough: Metrics holds a
// reference field (the ErrorClasses map), and handing its header out of
// the critical section would let an exporter read the map while a
// request goroutine grows it. Clone it under the lock.
func (s *server) snapshotMetrics() obsv.Metrics {
	s.mu.Lock()
	snap := s.metrics
	if snap.ErrorClasses != nil {
		ec := make(map[string]uint64, len(snap.ErrorClasses))
		for k, v := range snap.ErrorClasses {
			ec[k] = v
		}
		snap.ErrorClasses = ec
	}
	s.mu.Unlock()
	return snap
}

// handleMetrics exports the request accounting with the result store's
// counters folded in, as CSV (default) or JSON (?format=json).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshotMetrics()
	st := s.exec.Stats()
	snap.AddCache(st.Hits, st.Misses, st.Bypass, st.Dedup, st.StoreErrors)
	var buf bytes.Buffer
	var err error
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		err = snap.WriteJSON(&buf)
	} else {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = snap.WriteCSV(&buf)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(buf.Bytes()) //nolint:errcheck // client gone
}

// handleTrace serves one retained request trace: the indented span tree
// by default, the Chrome trace_event form with ?format=chrome (load it
// in chrome://tracing or Perfetto next to a -trace file).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "request tracing disabled (-trace-store 0)", http.StatusNotFound)
		return
	}
	id, ok := obsv.ParseTraceID(r.PathValue("id"))
	if !ok {
		http.Error(w, "bad trace id (want 16 hex characters)", http.StatusBadRequest)
		return
	}
	td, ok := s.traces.Get(id)
	if !ok {
		http.Error(w, "trace not found (evicted or never seen)", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	var err error
	if r.URL.Query().Get("format") == "chrome" {
		err = obsv.WriteSpansChrome(&buf, td)
	} else {
		err = td.WriteTree(&buf)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes()) //nolint:errcheck // client gone
}

// seriesResponse is the /v1/metrics/series payload.
type seriesResponse struct {
	Window  int           `json:"window"`
	Samples []obsv.Sample `json:"samples"`
}

// handleSeries serves the sampled metrics ring, oldest sample first.
func (s *server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, seriesResponse{
		Window:  s.series.Cap(),
		Samples: s.series.Snapshot(),
	})
}

// sample records one interval's activity delta into the series ring.
// The ticker loop in main calls it; tests call it directly.
func (s *server) sample(now time.Time) {
	snap := s.snapshotMetrics()
	st := s.exec.Stats()
	var traces, spans uint64
	if s.traces != nil {
		traces, spans = s.traces.Stats()
	}

	s.smu.Lock()
	defer s.smu.Unlock()
	durMS := int64(0)
	if !s.lastAt.IsZero() {
		durMS = now.Sub(s.lastAt).Milliseconds()
	}
	lat := snap.RequestUS.DeltaFrom(&s.lastSample.RequestUS)
	s.series.Add(obsv.Sample{
		UnixMS:        now.UnixMilli(),
		DurMS:         durMS,
		Requests:      snap.Requests - s.lastSample.Requests,
		RequestErrors: snap.RequestErrors - s.lastSample.RequestErrors,
		LatencyP50US:  lat.Quantile(0.50),
		LatencyP99US:  lat.Quantile(0.99),
		CacheHits:     st.Hits - s.lastStats.Hits,
		CacheMisses:   st.Misses - s.lastStats.Misses,
		CacheDedup:    st.Dedup - s.lastStats.Dedup,
		CacheBypass:   st.Bypass - s.lastStats.Bypass,
		Traces:        traces - s.lastTraces,
		Spans:         spans - s.lastSpans,
	})
	s.lastSample, s.lastStats = snap, st
	s.lastTraces, s.lastSpans = traces, spans
	s.lastAt = now
}

// drainSummary renders the shutdown telemetry line: how much the
// process served and recorded over its lifetime, and how warm the
// result store ran (hits and deduplicated cells over all resolved).
func (s *server) drainSummary() string {
	snap := s.snapshotMetrics()
	var traces, spans uint64
	if s.traces != nil {
		traces, spans = s.traces.Stats()
	}
	st := s.exec.Stats()
	hitRate := 0.0
	if t := st.Total(); t > 0 {
		hitRate = float64(st.Hits+st.Dedup) / float64(t)
	}
	return fmt.Sprintf("(%d requests, %d request errors, %d traces, %d spans, store hit rate %.1f%%)",
		snap.Requests, snap.RequestErrors, traces, spans, 100*hitRate)
}

// sampleLoop drives sample on the given interval until ctx ends.
func (s *server) sampleLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.sample(now)
		}
	}
}

// figureResponse is the /v1/figure payload.
type figureResponse struct {
	ID       string                `json:"id"`
	Quick    bool                  `json:"quick"`
	Figures  []*experiments.Figure `json:"figures"`
	Failures []figureFailure       `json:"failures,omitempty"`
}

type figureFailure struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	parseStart := time.Now()
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		http.Error(w, "missing id parameter", http.StatusBadRequest)
		return
	}
	if !experiments.KnownFigureID(id) {
		http.Error(w, fmt.Sprintf("unknown figure %q (known: all, %s)",
			id, strings.Join(experiments.FigureIDs(), ", ")), http.StatusBadRequest)
		return
	}
	quick := false
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "bad quick parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		quick = b
	}
	wantProv := false
	if v := q.Get("provenance"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "bad provenance parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		wantProv = b
	}
	key := fmt.Sprintf("figure|id=%s|quick=%t", id, quick)
	obsv.AddSpan(ctx, "request.parse", parseStart, time.Now())

	// Collect cell provenance when anyone will see it: the response
	// (?provenance=1), the trace, or a live /v1/events subscriber. The
	// records double as the event stream's cell feed.
	var pl *sweep.ProvLog
	if wantProv || obsv.TraceFrom(ctx) != nil || s.hub.active() {
		pl = sweep.NewProvLog(0)
		if s.hub.active() {
			tid := ""
			if tr := obsv.TraceFrom(ctx); tr != nil {
				tid = tr.ID.String()
			}
			pl.OnCell = func(p sweep.CellProv) {
				s.hub.publish(cellEvent{Type: "cell", Trace: tid, CellProv: p})
			}
		}
		ctx = sweep.WithProvLog(ctx, pl)
	}

	lookupStart := time.Now()
	s.mu.Lock()
	if body, ok := s.resp[key]; ok {
		s.mu.Unlock()
		obsv.AddSpan(ctx, "cache.lookup", lookupStart, time.Now(), obsv.Attr{Key: "outcome", Val: "hit"})
		s.serveFigure(ctx, w, body, "hit", wantProv, pl)
		return
	}
	if fl, ok := s.flights[key]; ok {
		// Coalesce onto the in-flight generation.
		s.mu.Unlock()
		obsv.AddSpan(ctx, "cache.lookup", lookupStart, time.Now(), obsv.Attr{Key: "outcome", Val: "inflight"})
		waitStart := time.Now()
		select {
		case <-fl.done:
		case <-ctx.Done():
			http.Error(w, ctx.Err().Error(), http.StatusGatewayTimeout)
			return
		}
		obsv.AddSpan(ctx, "singleflight.wait", waitStart, time.Now())
		if fl.err != nil {
			http.Error(w, fl.err.Error(), fl.status)
			return
		}
		s.serveFigure(ctx, w, fl.body, "coalesced", wantProv, pl)
		return
	}
	fl := &respFlight{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()
	obsv.AddSpan(ctx, "cache.lookup", lookupStart, time.Now(), obsv.Attr{Key: "outcome", Val: "miss"})

	genCtx, gsp := obsv.StartSpan(ctx, "generate")
	gsp.SetAttr("figure", id)
	figs, failures := s.generate(genCtx, id, quick, s.run)
	gsp.Finish()
	renderStart := time.Now()
	resp := figureResponse{ID: id, Quick: quick, Figures: figs}
	for _, f := range failures {
		resp.Failures = append(resp.Failures, figureFailure{ID: f.ID, Error: f.Err.Error()})
	}
	body, err := json.MarshalIndent(&resp, "", "  ")
	obsv.AddSpan(ctx, "render", renderStart, time.Now())

	s.mu.Lock()
	delete(s.flights, key)
	if err != nil {
		fl.err, fl.status = err, http.StatusInternalServerError
	} else {
		fl.body = body
		// Cache only fully successful responses: a sweep clipped by a
		// deadline or a canceled client must not be replayed as truth.
		if len(failures) == 0 {
			s.resp[key] = body
		}
	}
	s.mu.Unlock()
	close(fl.done)

	if fl.err != nil {
		http.Error(w, fl.err.Error(), fl.status)
		return
	}
	s.serveFigure(ctx, w, body, "miss", wantProv, pl)
}

// provEnvelope is the ?provenance=1 response shape: the figure payload
// verbatim, plus how this request obtained it.
type provEnvelope struct {
	Figure     json.RawMessage `json:"figure"`
	Provenance provReport      `json:"provenance"`
}

type provReport struct {
	// Trace is the request's trace ID (fetch the span tree from
	// /v1/trace/{id}); Cache mirrors the X-EH-Cache header.
	Trace string `json:"trace,omitempty"`
	Cache string `json:"cache"`
	// Cells lists every simulation cell this request resolved, in
	// arrival order — empty when the response came from the byte cache.
	Cells []sweep.CellProv `json:"cells"`
	// ComputedCells counts the cells that actually ran a simulation
	// (miss or bypass outcomes).
	ComputedCells int    `json:"computed_cells"`
	Dropped       uint64 `json:"dropped,omitempty"`
}

// serveFigure writes the rendered figure, wrapped in a provenance
// envelope when asked. The envelope is assembled per-request around the
// cached bytes, so the byte cache (and the figures it replays) stays
// identical whether or not anyone asks for provenance.
func (s *server) serveFigure(ctx context.Context, w http.ResponseWriter, body []byte, how string, wantProv bool, pl *sweep.ProvLog) {
	if !wantProv {
		serveFigureBytes(w, body, how)
		return
	}
	env := provEnvelope{
		Figure:     json.RawMessage(body),
		Provenance: provReport{Cache: how, Cells: []sweep.CellProv{}},
	}
	if tr := obsv.TraceFrom(ctx); tr != nil {
		env.Provenance.Trace = tr.ID.String()
	}
	if pl != nil {
		if cells := pl.Cells(); len(cells) > 0 {
			env.Provenance.Cells = cells
		}
		env.Provenance.ComputedCells = pl.ComputedCells()
		env.Provenance.Dropped = pl.Dropped()
	}
	out, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cacheHeader, how)
	w.Write(out) //nolint:errcheck // client gone
}

func serveFigureBytes(w http.ResponseWriter, body []byte, how string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cacheHeader, how)
	w.Write(body) //nolint:errcheck // client gone
}

// sweepResponse is the /v1/sweep payload: Eq. 8 evaluated over a τ_B
// range, with the analytic optimum alongside.
type sweepResponse struct {
	Params  core.Params       `json:"params"`
	Dead    string            `json:"dead_model"`
	Points  []core.SweepPoint `json:"points"`
	Best    core.SweepPoint   `json:"best"`
	TauBOpt float64           `json:"tau_b_opt"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pr, err := paramsFromQuery(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lo, err := floatParam(q, "lo", 1)
	if err == nil && lo <= 0 {
		err = fmt.Errorf("lo must be > 0")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hi, err := floatParam(q, "hi", 1000)
	if err == nil && hi < lo {
		err = fmt.Errorf("hi must be ≥ lo")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := 50
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n < 2 || n > 100000 {
			http.Error(w, "n must be an integer in [2, 100000]", http.StatusBadRequest)
			return
		}
	}
	var values []float64
	switch q.Get("space") {
	case "", "log":
		values = core.LogSpace(lo, hi, n)
	case "lin":
		values = core.LinSpace(lo, hi, n)
	default:
		http.Error(w, "space must be log or lin", http.StatusBadRequest)
		return
	}
	dead, err := deadParam(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pts := pr.SweepTauB(values, dead)
	writeJSON(w, http.StatusOK, sweepResponse{
		Params:  pr,
		Dead:    dead.String(),
		Points:  pts,
		Best:    core.ArgmaxP(pts),
		TauBOpt: pr.TauBOpt(),
	})
}

// modelResponse is the /v1/model payload: one closed-form evaluation
// with the derived scalars the paper leans on.
type modelResponse struct {
	Params       core.Params    `json:"params"`
	Progress     float64        `json:"progress"`
	ProgressLo   float64        `json:"progress_worst"`
	ProgressHi   float64        `json:"progress_best"`
	Breakdown    core.Breakdown `json:"breakdown"`
	TauBOpt      float64        `json:"tau_b_opt"`
	TauBBreakEve float64        `json:"tau_b_break_even"`
	TauBBit      float64        `json:"tau_b_bit"`
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	pr, err := paramsFromQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lo, hi := pr.ProgressBounds()
	writeJSON(w, http.StatusOK, modelResponse{
		Params:       pr,
		Progress:     pr.Progress(),
		ProgressLo:   lo,
		ProgressHi:   hi,
		Breakdown:    pr.Breakdown(),
		TauBOpt:      pr.TauBOpt(),
		TauBBreakEve: pr.TauBBreakEven(),
		TauBBit:      pr.TauBBit(),
	})
}

// paramsFromQuery overlays Table I query parameters onto the paper's
// default configuration and validates the result.
func paramsFromQuery(q url.Values) (core.Params, error) {
	pr := core.DefaultParams()
	fields := map[string]*float64{
		"e": &pr.E, "epsilon": &pr.Epsilon, "epsilon_c": &pr.EpsilonC,
		"tau_b": &pr.TauB, "sigma_b": &pr.SigmaB, "omega_b": &pr.OmegaB,
		"a_b": &pr.AB, "alpha_b": &pr.AlphaB,
		"sigma_r": &pr.SigmaR, "omega_r": &pr.OmegaR, "a_r": &pr.AR, "alpha_r": &pr.AlphaR,
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := q.Get(name)
		if v == "" {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return pr, fmt.Errorf("bad %s: %v", name, err)
		}
		*fields[name] = f
	}
	if err := pr.Validate(); err != nil {
		return pr, err
	}
	return pr, nil
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return f, nil
}

func deadParam(q url.Values) (core.DeadModel, error) {
	switch q.Get("dead") {
	case "", "average":
		return core.DeadAverage, nil
	case "best":
		return core.DeadBest, nil
	case "worst":
		return core.DeadWorst, nil
	}
	return 0, fmt.Errorf("dead must be average, best or worst")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // client gone
}
