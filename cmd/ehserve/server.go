package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ehmodel/internal/core"
	"ehmodel/internal/experiments"
	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

// cacheHeader is the response header reporting how a figure query was
// answered: "miss" (generated now), "hit" (served from the response
// cache) or "coalesced" (piggybacked on an identical in-flight
// generation).
const cacheHeader = "X-EH-Cache"

// server answers figure/sweep/model queries. Figure responses are the
// expensive ones; they go through a request-keyed singleflight plus a
// response byte cache, and the simulations underneath go through the
// shared sweep executor's content-addressed store.
type server struct {
	exec    *sweep.Executor
	run     runner.Options
	timeout time.Duration

	// generate is experiments.GenerateFigures, injectable so tests can
	// count and stall generations to observe the singleflight.
	generate func(ctx context.Context, which string, quick bool, run runner.Options) ([]*experiments.Figure, []experiments.Failure)

	mu      sync.Mutex
	metrics obsv.Metrics
	resp    map[string][]byte
	flights map[string]*respFlight
}

// respFlight is one in-progress figure generation; followers for the
// same request key wait on done and share the rendered bytes.
type respFlight struct {
	done   chan struct{}
	body   []byte
	status int
	err    error
}

func newServer(exec *sweep.Executor, run runner.Options, timeout time.Duration) *server {
	return &server{
		exec:     exec,
		run:      run,
		timeout:  timeout,
		generate: experiments.GenerateFigures,
		resp:     map[string][]byte{},
		flights:  map[string]*respFlight{},
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.observe(s.handleHealth))
	mux.HandleFunc("GET /metrics", s.observe(s.handleMetrics))
	mux.HandleFunc("GET /v1/figure", s.observe(s.handleFigure))
	mux.HandleFunc("GET /v1/sweep", s.observe(s.handleSweep))
	mux.HandleFunc("GET /v1/model", s.observe(s.handleModel))
	return mux
}

// statusWriter captures the response status for request accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// observe wraps a handler with the per-request deadline and the
// latency/error accounting exported at /metrics.
func (s *server) observe(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		us := time.Since(start).Microseconds()
		s.mu.Lock()
		s.metrics.ObserveRequest(us, sw.status >= 400)
		s.mu.Unlock()
	}
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics exports the request accounting with the result store's
// counters folded in, as CSV (default) or JSON (?format=json).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.metrics
	s.mu.Unlock()
	st := s.exec.Stats()
	snap.AddCache(st.Hits, st.Misses, st.Bypass, st.Dedup, st.StoreErrors)
	var buf bytes.Buffer
	var err error
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		err = snap.WriteJSON(&buf)
	} else {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = snap.WriteCSV(&buf)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(buf.Bytes()) //nolint:errcheck // client gone
}

// figureResponse is the /v1/figure payload.
type figureResponse struct {
	ID       string                `json:"id"`
	Quick    bool                  `json:"quick"`
	Figures  []*experiments.Figure `json:"figures"`
	Failures []figureFailure       `json:"failures,omitempty"`
}

type figureFailure struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		http.Error(w, "missing id parameter", http.StatusBadRequest)
		return
	}
	if !experiments.KnownFigureID(id) {
		http.Error(w, fmt.Sprintf("unknown figure %q (known: all, %s)",
			id, strings.Join(experiments.FigureIDs(), ", ")), http.StatusBadRequest)
		return
	}
	quick := false
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "bad quick parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		quick = b
	}
	key := fmt.Sprintf("figure|id=%s|quick=%t", id, quick)

	s.mu.Lock()
	if body, ok := s.resp[key]; ok {
		s.mu.Unlock()
		serveFigureBytes(w, body, "hit")
		return
	}
	if fl, ok := s.flights[key]; ok {
		// Coalesce onto the in-flight generation.
		s.mu.Unlock()
		select {
		case <-fl.done:
		case <-r.Context().Done():
			http.Error(w, r.Context().Err().Error(), http.StatusGatewayTimeout)
			return
		}
		if fl.err != nil {
			http.Error(w, fl.err.Error(), fl.status)
			return
		}
		serveFigureBytes(w, fl.body, "coalesced")
		return
	}
	fl := &respFlight{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()

	figs, failures := s.generate(r.Context(), id, quick, s.run)
	resp := figureResponse{ID: id, Quick: quick, Figures: figs}
	for _, f := range failures {
		resp.Failures = append(resp.Failures, figureFailure{ID: f.ID, Error: f.Err.Error()})
	}
	body, err := json.MarshalIndent(&resp, "", "  ")

	s.mu.Lock()
	delete(s.flights, key)
	if err != nil {
		fl.err, fl.status = err, http.StatusInternalServerError
	} else {
		fl.body = body
		// Cache only fully successful responses: a sweep clipped by a
		// deadline or a canceled client must not be replayed as truth.
		if len(failures) == 0 {
			s.resp[key] = body
		}
	}
	s.mu.Unlock()
	close(fl.done)

	if fl.err != nil {
		http.Error(w, fl.err.Error(), fl.status)
		return
	}
	serveFigureBytes(w, body, "miss")
}

func serveFigureBytes(w http.ResponseWriter, body []byte, how string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cacheHeader, how)
	w.Write(body) //nolint:errcheck // client gone
}

// sweepResponse is the /v1/sweep payload: Eq. 8 evaluated over a τ_B
// range, with the analytic optimum alongside.
type sweepResponse struct {
	Params  core.Params       `json:"params"`
	Dead    string            `json:"dead_model"`
	Points  []core.SweepPoint `json:"points"`
	Best    core.SweepPoint   `json:"best"`
	TauBOpt float64           `json:"tau_b_opt"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pr, err := paramsFromQuery(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lo, err := floatParam(q, "lo", 1)
	if err == nil && lo <= 0 {
		err = fmt.Errorf("lo must be > 0")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hi, err := floatParam(q, "hi", 1000)
	if err == nil && hi < lo {
		err = fmt.Errorf("hi must be ≥ lo")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := 50
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n < 2 || n > 100000 {
			http.Error(w, "n must be an integer in [2, 100000]", http.StatusBadRequest)
			return
		}
	}
	var values []float64
	switch q.Get("space") {
	case "", "log":
		values = core.LogSpace(lo, hi, n)
	case "lin":
		values = core.LinSpace(lo, hi, n)
	default:
		http.Error(w, "space must be log or lin", http.StatusBadRequest)
		return
	}
	dead, err := deadParam(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pts := pr.SweepTauB(values, dead)
	writeJSON(w, http.StatusOK, sweepResponse{
		Params:  pr,
		Dead:    dead.String(),
		Points:  pts,
		Best:    core.ArgmaxP(pts),
		TauBOpt: pr.TauBOpt(),
	})
}

// modelResponse is the /v1/model payload: one closed-form evaluation
// with the derived scalars the paper leans on.
type modelResponse struct {
	Params       core.Params    `json:"params"`
	Progress     float64        `json:"progress"`
	ProgressLo   float64        `json:"progress_worst"`
	ProgressHi   float64        `json:"progress_best"`
	Breakdown    core.Breakdown `json:"breakdown"`
	TauBOpt      float64        `json:"tau_b_opt"`
	TauBBreakEve float64        `json:"tau_b_break_even"`
	TauBBit      float64        `json:"tau_b_bit"`
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	pr, err := paramsFromQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lo, hi := pr.ProgressBounds()
	writeJSON(w, http.StatusOK, modelResponse{
		Params:       pr,
		Progress:     pr.Progress(),
		ProgressLo:   lo,
		ProgressHi:   hi,
		Breakdown:    pr.Breakdown(),
		TauBOpt:      pr.TauBOpt(),
		TauBBreakEve: pr.TauBBreakEven(),
		TauBBit:      pr.TauBBit(),
	})
}

// paramsFromQuery overlays Table I query parameters onto the paper's
// default configuration and validates the result.
func paramsFromQuery(q url.Values) (core.Params, error) {
	pr := core.DefaultParams()
	fields := map[string]*float64{
		"e": &pr.E, "epsilon": &pr.Epsilon, "epsilon_c": &pr.EpsilonC,
		"tau_b": &pr.TauB, "sigma_b": &pr.SigmaB, "omega_b": &pr.OmegaB,
		"a_b": &pr.AB, "alpha_b": &pr.AlphaB,
		"sigma_r": &pr.SigmaR, "omega_r": &pr.OmegaR, "a_r": &pr.AR, "alpha_r": &pr.AlphaR,
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := q.Get(name)
		if v == "" {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return pr, fmt.Errorf("bad %s: %v", name, err)
		}
		*fields[name] = f
	}
	if err := pr.Validate(); err != nil {
		return pr, err
	}
	return pr, nil
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return f, nil
}

func deadParam(q url.Values) (core.DeadModel, error) {
	switch q.Get("dead") {
	case "", "average":
		return core.DeadAverage, nil
	case "best":
		return core.DeadBest, nil
	case "worst":
		return core.DeadWorst, nil
	}
	return 0, fmt.Errorf("dead must be average, best or worst")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // client gone
}
