package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ehmodel/internal/experiments"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

func testServer() *server {
	return newServer(sweep.NewExecutor(sweep.NewMemStore(0)), runner.Options{}, time.Minute)
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestFigureResponseCached: the same figure query twice must yield
// byte-identical responses, the second answered from the response cache.
func TestFigureResponseCached(t *testing.T) {
	h := testServer().handler()
	r1 := get(t, h, "/v1/figure?id=3")
	if r1.Code != http.StatusOK {
		t.Fatalf("first: %d %s", r1.Code, r1.Body.String())
	}
	if got := r1.Header().Get(cacheHeader); got != "miss" {
		t.Fatalf("first %s = %q, want miss", cacheHeader, got)
	}
	r2 := get(t, h, "/v1/figure?id=3")
	if r2.Code != http.StatusOK {
		t.Fatalf("second: %d", r2.Code)
	}
	if got := r2.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("second %s = %q, want hit", cacheHeader, got)
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatal("cached response differs from generated response")
	}
	var resp figureResponse
	if err := json.Unmarshal(r2.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Figures) != 1 || resp.Figures[0].ID != "fig3" {
		t.Fatalf("unexpected payload: %+v", resp)
	}
}

// TestFigureSingleflight: concurrent identical queries collapse onto a
// single generation; followers share the leader's bytes.
func TestFigureSingleflight(t *testing.T) {
	s := testServer()
	var calls atomic.Int32
	release := make(chan struct{})
	s.generate = func(ctx context.Context, which string, quick bool, run runner.Options) ([]*experiments.Figure, []experiments.Failure) {
		calls.Add(1)
		<-release
		return experiments.GenerateFigures(ctx, which, quick, run)
	}
	h := s.handler()

	const n = 8
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = get(t, h, "/v1/figure?id=2")
		}(i)
	}
	// Let every request reach the flight table before the leader runs.
	for deadline := time.Now().Add(5 * time.Second); ; {
		s.mu.Lock()
		inFlight := len(s.flights)
		s.mu.Unlock()
		if inFlight == 1 && calls.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight never formed: %d calls", calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // give followers time to enqueue
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d generations for %d identical concurrent requests", got, n)
	}
	miss, coalesced := 0, 0
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Fatalf("request %d: body differs", i)
		}
		switch rec.Header().Get(cacheHeader) {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			// a request that arrived after the leader finished
		}
	}
	if miss != 1 {
		t.Fatalf("%d misses, want exactly 1 leader", miss)
	}
	if coalesced == 0 {
		t.Fatal("no request was coalesced onto the leader")
	}
}

// TestFigureFailureNotCached: a generation that reports failures must
// not be replayed from the response cache.
func TestFigureFailureNotCached(t *testing.T) {
	s := testServer()
	var calls atomic.Int32
	s.generate = func(ctx context.Context, which string, quick bool, run runner.Options) ([]*experiments.Figure, []experiments.Failure) {
		calls.Add(1)
		return nil, []experiments.Failure{{ID: which, Err: fmt.Errorf("transient")}}
	}
	h := s.handler()
	for i := 0; i < 2; i++ {
		rec := get(t, h, "/v1/figure?id=5")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
		if got := rec.Header().Get(cacheHeader); got != "miss" {
			t.Fatalf("request %d: %s = %q, want miss (failures are uncacheable)", i, cacheHeader, got)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("failed generation was cached: %d calls", calls.Load())
	}
}

func TestFigureBadRequests(t *testing.T) {
	h := testServer().handler()
	for _, url := range []string{"/v1/figure", "/v1/figure?id=nope", "/v1/figure?id=3&quick=maybe"} {
		if rec := get(t, h, url); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", url, rec.Code)
		}
	}
}

// TestModelQuery: a closed-form evaluation echoes the overlaid params
// and returns Eq. 8 outputs in range.
func TestModelQuery(t *testing.T) {
	h := testServer().handler()
	rec := get(t, h, "/v1/model?tau_b=10&alpha_b=0.1")
	if rec.Code != http.StatusOK {
		t.Fatalf("%d: %s", rec.Code, rec.Body.String())
	}
	var resp modelResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Params.TauB != 10 {
		t.Fatalf("params not overlaid: τ_B = %g", resp.Params.TauB)
	}
	if resp.Progress <= 0 || resp.Progress >= 1 {
		t.Fatalf("progress %g out of range", resp.Progress)
	}
	if resp.ProgressLo > resp.Progress || resp.Progress > resp.ProgressHi {
		t.Fatalf("bounds %g..%g do not bracket %g", resp.ProgressLo, resp.ProgressHi, resp.Progress)
	}
	if resp.TauBOpt <= 0 {
		t.Fatal("no τ_B,opt")
	}
	if rec := get(t, h, "/v1/model?tau_b=-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid τ_B accepted: %d", rec.Code)
	}
	if rec := get(t, h, "/v1/model?tau_b=abc"); rec.Code != http.StatusBadRequest {
		t.Fatalf("non-numeric τ_B accepted: %d", rec.Code)
	}
}

// TestSweepQuery: the τ_B sweep returns the requested grid and its
// argmax near the analytic optimum.
func TestSweepQuery(t *testing.T) {
	h := testServer().handler()
	rec := get(t, h, "/v1/sweep?lo=1&hi=1000&n=200")
	if rec.Code != http.StatusOK {
		t.Fatalf("%d: %s", rec.Code, rec.Body.String())
	}
	var resp sweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 200 {
		t.Fatalf("%d points", len(resp.Points))
	}
	if resp.Best.P <= 0 {
		t.Fatal("no progress anywhere on the sweep")
	}
	if ratio := resp.Best.X / resp.TauBOpt; ratio < 0.5 || ratio > 2 {
		t.Fatalf("sweep argmax τ_B=%g far from analytic optimum %g", resp.Best.X, resp.TauBOpt)
	}
	for _, url := range []string{
		"/v1/sweep?lo=0", "/v1/sweep?lo=10&hi=1", "/v1/sweep?n=1",
		"/v1/sweep?space=cubic", "/v1/sweep?dead=sometimes",
	} {
		if rec := get(t, h, url); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", url, rec.Code)
		}
	}
}

// TestMetricsEndpoint: served requests show up in /metrics, along with
// the result store's counters.
func TestMetricsEndpoint(t *testing.T) {
	h := testServer().handler()
	get(t, h, "/v1/model?tau_b=10")
	get(t, h, "/v1/figure?id=nope") // a 400, counted as an error
	rec := get(t, h, "/metrics?format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("%d", rec.Code)
	}
	var m struct {
		Requests      uint64 `json:"requests"`
		RequestErrors uint64 `json:"request_errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests < 2 {
		t.Fatalf("requests = %d, want ≥ 2", m.Requests)
	}
	if m.RequestErrors < 1 {
		t.Fatalf("request_errors = %d, want ≥ 1", m.RequestErrors)
	}
	csv := get(t, h, "/metrics")
	if csv.Code != http.StatusOK || !strings.Contains(csv.Body.String(), "requests") {
		t.Fatalf("CSV export missing request accounting: %d", csv.Code)
	}
}

func TestHealthz(t *testing.T) {
	rec := get(t, testServer().handler(), "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("%d %s", rec.Code, rec.Body.String())
	}
}
