package main

import (
	"testing"

	"ehmodel/internal/asm"
)

func TestStrategyForAll(t *testing.T) {
	cases := map[string]asm.Segment{
		"timer":         asm.SRAM,
		"speculative":   asm.SRAM,
		"hibernus":      asm.SRAM,
		"mementos":      asm.SRAM,
		"dino":          asm.SRAM,
		"chain":         asm.SRAM,
		"mixvol":        asm.SRAM,
		"clank":         asm.FRAM,
		"ratchet":       asm.FRAM,
		"nvp":           asm.FRAM,
		"nvp-threshold": asm.FRAM,
	}
	for name, wantSeg := range cases {
		s, seg, err := strategyFor(name, 1000)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s == nil || seg != wantSeg {
			t.Errorf("%s: seg %v, want %v", name, seg, wantSeg)
		}
	}
	if _, _, err := strategyFor("bogus", 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestTraceFor(t *testing.T) {
	for _, name := range []string{"", "none"} {
		if _, has, err := traceFor(name, 1); err != nil || has {
			t.Errorf("%q should mean no trace", name)
		}
	}
	for _, name := range []string{"spikes", "ramp", "multipeak"} {
		if _, has, err := traceFor(name, 1); err != nil || !has {
			t.Errorf("%q should resolve", name)
		}
	}
	if _, _, err := traceFor("bogus", 1); err == nil {
		t.Error("unknown trace accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// bench supply
	if err := run("counter", "timer", 20000, 1000, 1, "none"); err != nil {
		t.Fatalf("bench supply: %v", err)
	}
	// harvested supply on a nonvolatile-memory runtime
	if err := run("ds", "clank", 20000, 1000, 1, "multipeak"); err != nil {
		t.Fatalf("harvested: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "timer", 20000, 1000, 1, "none"); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("counter", "nope", 20000, 1000, 1, "none"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run("counter", "timer", 20000, 1000, 1, "nope"); err == nil {
		t.Error("unknown trace accepted")
	}
}
