package main

import (
	"context"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/faults"
)

func TestStrategyForAll(t *testing.T) {
	cases := map[string]asm.Segment{
		"timer":          asm.SRAM,
		"speculative":    asm.SRAM,
		"hibernus":       asm.SRAM,
		"mementos":       asm.SRAM,
		"dino":           asm.SRAM,
		"chain":          asm.SRAM,
		"mixvol":         asm.SRAM,
		"clank":          asm.FRAM,
		"ratchet":        asm.FRAM,
		"nvp":            asm.FRAM,
		"nvp-everycycle": asm.FRAM,
		"nvp-threshold":  asm.FRAM,
	}
	for name, wantSeg := range cases {
		s, seg, err := strategyFor(name, 1000)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s == nil || seg != wantSeg {
			t.Errorf("%s: seg %v, want %v", name, seg, wantSeg)
		}
	}
	if _, _, err := strategyFor("bogus", 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestTraceFor(t *testing.T) {
	for _, name := range []string{"", "none"} {
		if _, has, err := traceFor(name, 1); err != nil || has {
			t.Errorf("%q should mean no trace", name)
		}
	}
	for _, name := range []string{"spikes", "ramp", "multipeak"} {
		if _, has, err := traceFor(name, 1); err != nil || !has {
			t.Errorf("%q should resolve", name)
		}
	}
	if _, _, err := traceFor("bogus", 1); err == nil {
		t.Error("unknown trace accepted")
	}
}

func baseOpts(w, s string) runOpts {
	return runOpts{workload: w, strategy: s, period: 20000, tauB: 1000, scale: 1, trace: "none"}
}

func TestRunEndToEnd(t *testing.T) {
	// bench supply
	if err := run(context.Background(), baseOpts("counter", "timer")); err != nil {
		t.Fatalf("bench supply: %v", err)
	}
	// harvested supply on a nonvolatile-memory runtime
	o := baseOpts("ds", "clank")
	o.trace = "multipeak"
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("harvested: %v", err)
	}
}

// TestRunWithFaults drives the CLI path under the default audit attack:
// the run must survive and match the oracle, or fail-stop with the
// typed unrecoverable-state error — never silently diverge.
func TestRunWithFaults(t *testing.T) {
	o := baseOpts("counter", "hibernus")
	o.plan = &faults.Plan{
		Seed:                3,
		RandomCutMeanCycles: 7000,
		TornWriteProb:       1e-3,
		BitFlipRate:         1e-3,
		StaleRestoreProb:    0.05,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("faulted run: %v", err)
	}
}

func TestRunRejectsBadPlan(t *testing.T) {
	o := baseOpts("counter", "timer")
	o.plan = &faults.Plan{TornWriteProb: 2}
	if err := run(context.Background(), o); err == nil {
		t.Error("invalid fault plan accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), baseOpts("nope", "timer")); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(context.Background(), baseOpts("counter", "nope")); err == nil {
		t.Error("unknown strategy accepted")
	}
	o := baseOpts("counter", "timer")
	o.trace = "nope"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown trace accepted")
	}
}
