// Command ehsim runs one benchmark under one intermittent runtime on
// the device simulator and reports where its cycles and energy went —
// including a correctness check against the workload's reference
// output.
//
// Example:
//
//	ehsim -workload ds -strategy clank -period 20000 -supply multipeak
//
// Observability: -trace FILE writes a Chrome trace_event JSON timeline
// (open in chrome://tracing or https://ui.perfetto.dev), -metrics FILE
// exports aggregated run counters and histograms (CSV, or JSON with a
// .json suffix), and -cpuprofile/-memprofile/-pprof expose the Go
// profiling hooks. A bounded flight recorder is always on; its last
// events are dumped when a run fails:
//
//	ehsim -workload counter -strategy hibernus -trace run.json -metrics run.csv
//
// Fault injection (two-phase checkpoint commit under attack):
//
//	ehsim -workload crc -strategy hibernus -fault-schedule random:mean=7000 \
//	      -torn-writes 1e-3 -bitflip-rate 1e-3 -fault-seed 7
//
// Crash-consistency audit sweep (parallel, through the sweep engine):
//
//	ehsim -audit -audit-schedules 10 -workers 4 -run-timeout 30s
//
// SIGINT/SIGTERM cancels a run or sweep; an interrupted audit still
// prints the partial report before exiting non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ehmodel/internal/analyze"
	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/faults"
	"ehmodel/internal/obsv"
	"ehmodel/internal/profiling"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/textplot"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// strategyFor builds the named runtime and reports the data placement
// its memory model requires. Strategies with a tunable backup period
// are built here; everything else comes from the shared catalog, so the
// CLI runs exactly the configurations the integration tests and the
// crash-consistency auditor cover.
func strategyFor(name string, tauB uint64) (device.Strategy, asm.Segment, error) {
	switch name {
	case "timer":
		return strategy.NewTimer(tauB, 0.1), asm.SRAM, nil
	case "speculative":
		return strategy.NewSpeculative(tauB, 0.1), asm.SRAM, nil
	case "mixvol":
		return strategy.NewMixedVolatility(tauB), asm.SRAM, nil
	case "nvp":
		name = "nvp-everycycle"
	}
	spec, ok := strategy.Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("unknown strategy %q", name)
	}
	return spec.New(), spec.Seg, nil
}

func traceFor(name string, seconds float64) (trace.Kind, bool, error) {
	switch name {
	case "", "none":
		return 0, false, nil
	case "spikes":
		return trace.Spikes, true, nil
	case "ramp":
		return trace.Ramp, true, nil
	case "multipeak":
		return trace.MultiPeak, true, nil
	default:
		return 0, false, fmt.Errorf("unknown trace %q", name)
	}
}

// runOpts collects one simulation's configuration.
type runOpts struct {
	workload string
	strategy string
	period   float64
	tauB     uint64
	scale    int
	trace    string
	// plan, when non-nil, attaches a fault injector built from it.
	plan *faults.Plan
	// periodsCSV, when set, receives per-period CSV statistics.
	periodsCSV string
	// runTimeout caps the simulation's wall-clock time (0 = none).
	runTimeout time.Duration
	// traceFile, when set, receives a Chrome trace_event JSON timeline.
	traceFile string
	// metricsFile, when set, receives the run's aggregated metrics
	// (CSV, or JSON when the name ends in .json).
	metricsFile string
	// wcecCheck runs the static forward-progress verifier before the
	// simulation and refuses statically-infeasible configurations.
	wcecCheck bool
}

// flightRecorderDepth bounds the always-on ring of recent lifecycle
// events dumped when a run fails.
const flightRecorderDepth = 512

// writeMetrics exports aggregated metrics as CSV, or JSON when the
// file name says so.
func writeMetrics(path string, m *obsv.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = m.WriteJSON(f)
	} else {
		err = m.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("wrote run metrics to %s\n", path)
	}
	return err
}

func main() {
	os.Exit(cliMain())
}

func cliMain() int {
	wname := flag.String("workload", "counter", "workload: "+strings.Join(workload.Names(), ", "))
	sname := flag.String("strategy", "timer", "runtime: timer, speculative, hibernus, mementos, dino, chain, alpaca, mixvol, clank, ratchet, nvp, nvp-threshold, cachevol (alpaca-naive runs the known-bad audit target)")
	period := flag.Float64("period", 20000, "per-period energy budget in ALU cycles")
	tauB := flag.Uint64("tauB", 1000, "backup period for timer/mixvol (cycles)")
	scale := flag.Int("scale", 1, "workload problem-size multiplier")
	supplyName := flag.String("supply", "none", "supply trace: none (bench supply), spikes, ramp, multipeak")
	list := flag.Bool("list", false, "print the workload's disassembly and exit")
	periodsCSV := flag.String("periods", "", "write per-period statistics to this CSV file")
	workers := flag.Int("workers", 0, "parallel sweep workers for -audit (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock deadline per simulation run (0 = none)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (chrome://tracing, Perfetto)")
	metricsFile := flag.String("metrics", "", "write aggregated run metrics to this file (CSV, or JSON with a .json suffix)")
	var prof profiling.Flags
	prof.Register()

	faultSchedule := flag.String("fault-schedule", "none", "power-cut schedule: none, cycles:N,N,..., random:mean=N")
	faultSeed := flag.Int64("fault-seed", 1, "seed for every randomized fault decision")
	tornWrites := flag.Float64("torn-writes", 0, "per-word probability of tearing a checkpoint write")
	bitflipRate := flag.Float64("bitflip-rate", 0, "per-stored-word probability of a bit flip at each restore")
	staleProb := flag.Float64("stale-prob", 0, "per-restore probability of forcing the stale checkpoint slot")
	naive := flag.Bool("naive-commit", false, "downgrade to the broken single-slot commit (fault-model validation)")

	audit := flag.Bool("audit", false, "run the crash-consistency audit sweep (strategy × workload × schedules) instead of a single simulation")
	auditSchedules := flag.Int("audit-schedules", 10, "failure schedules per strategy × workload cell in -audit mode")
	auditStrategies := flag.String("audit-strategies", "", "comma-separated strategy names for -audit/-adversarial (default: full catalog)")
	auditWorkloads := flag.String("audit-workloads", "", "comma-separated workload names for -audit/-adversarial (default: counter,ds,crc,qsort)")
	oracle := flag.Bool("oracle", false, "attach the observation recorder and apply the formal correctness oracle (replayed inputs, stale outputs, timeliness)")
	freshness := flag.Uint64("freshness-bound", 0, "timeliness obligation in executed cycles for the oracle (0 = unbounded)")
	repro := flag.String("repro", "", "replay one printed counterexample case verbatim (use with -audit), e.g. 'timer/sense seed=1 cuts=5000 stale=1 oracle'")
	adversarial := flag.Bool("adversarial", false, "run the adversarial fault-search campaign (frontier-biased cuts, coverage tracking, shrunk counterexamples) instead of the random sweep")
	campaignBudget := flag.Int("campaign-budget", 64, "attack schedules per strategy × workload cell in -adversarial mode")
	counterexamples := flag.String("counterexamples", "", "write minimized, replayable counterexample cases to this file when -adversarial finds violations")
	engineName := flag.String("engine", "batched", "execution engine: batched (event-horizon) or reference (per-instruction); results are byte-identical")
	wcecCheck := flag.Bool("wcec-check", false, "run the static WCEC forward-progress verifier before simulating and refuse statically-infeasible configurations (see ehlint -wcec)")
	flag.Parse()

	engine, err := device.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		return 2
	}
	device.SetDefaultEngine(engine)

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		return 2
	}
	// finish flushes the profiles on every exit path (os.Exit skips
	// defers, so main routes all returns through here).
	finish := func(code int) int {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			if code == 0 {
				code = 1
			}
		}
		return code
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	plan := faults.Plan{
		Seed:             *faultSeed,
		TornWriteProb:    *tornWrites,
		BitFlipRate:      *bitflipRate,
		StaleRestoreProb: *staleProb,
		NaiveCommit:      *naive,
	}
	if err := plan.ParseSchedule(*faultSchedule); err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		return finish(1)
	}

	// verdicts routes the audit-family subcommands: operational errors
	// exit 1, correctness violations exit 3, clean runs exit 0.
	verdicts := func(violations int, err error) int {
		if err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			return finish(1)
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "ehsim: %d correctness violation(s)\n", violations)
			return finish(3)
		}
		return finish(0)
	}

	if *repro != "" {
		return verdicts(runRepro(ctx, *repro, *oracle, *freshness, *runTimeout))
	}

	if *adversarial {
		strats, err := specsFor(*auditStrategies)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			return finish(1)
		}
		return verdicts(runAdversarial(ctx, adversarialOpts{
			strategies: strats,
			workloads:  splitList(*auditWorkloads),
			plan:       plan,
			budget:     *campaignBudget,
			seed:       *faultSeed,
			oracle:     *oracle,
			freshness:  *freshness,
			outFile:    *counterexamples,
			metrics:    *metricsFile,
		}))
	}

	if *audit {
		strats, err := specsFor(*auditStrategies)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			return finish(1)
		}
		o := faults.Options{
			Strategies:     strats,
			Workloads:      splitList(*auditWorkloads),
			Schedules:      *auditSchedules,
			BaseSeed:       *faultSeed,
			Oracle:         *oracle,
			FreshnessBound: *freshness,
			Run:            runner.Options{Workers: *workers, RunTimeout: *runTimeout},
		}
		if *naive {
			p := faults.DefaultPlan()
			p.NaiveCommit = true
			o.Plan = p
		}
		return verdicts(runAudit(ctx, o, *traceFile, *metricsFile))
	}

	opts := runOpts{
		workload: *wname, strategy: *sname,
		period: *period, tauB: *tauB, scale: *scale,
		trace: *supplyName, periodsCSV: *periodsCSV,
		runTimeout:  *runTimeout,
		traceFile:   *traceFile,
		metricsFile: *metricsFile,
		wcecCheck:   *wcecCheck,
	}
	if !reflect.DeepEqual(plan, faults.Plan{Seed: *faultSeed}) {
		opts.plan = &plan
	}

	if *list {
		if err := listProgram(*wname, *sname, *tauB, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			return finish(1)
		}
		return finish(0)
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		return finish(1)
	}
	return finish(0)
}

// specsFor resolves a comma-separated strategy list against the shared
// catalog; empty input means nil (the callee's default).
func specsFor(names string) ([]strategy.Spec, error) {
	var out []strategy.Spec
	for _, n := range splitList(names) {
		spec, ok := strategy.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("unknown strategy %q", n)
		}
		out = append(out, spec)
	}
	return out, nil
}

// splitList parses a comma-separated flag value; empty means nil.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runAudit executes the parallel crash-consistency audit and prints its
// report: summary tables for humans, then one logfmt verdict line per
// schedule for machines, then a one-line summary per verdict class. It
// returns the violation count (the caller maps it to exit code 3) and
// any operational error. An interrupted or partially failed sweep still
// prints what completed before returning the error. When traceFile or
// metricsFile is set, every audited device reports into a shared Chrome
// sink (one trace thread per device) and a loss-free metrics collector
// via the process-wide default observer.
func runAudit(ctx context.Context, o faults.Options, traceFile, metricsFile string) (int, error) {
	var coll *obsv.Collector
	var chrome *obsv.ChromeSink
	if metricsFile != "" {
		coll = obsv.NewCollector()
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return 0, err
		}
		chrome = obsv.NewChromeSink(f)
	}
	if coll != nil || chrome != nil {
		var tid atomic.Int32
		device.SetDefaultObserver(func() obsv.Tracer {
			var ts []obsv.Tracer
			if chrome != nil {
				ts = append(ts, obsv.WithTid(chrome, tid.Add(1)))
			}
			if coll != nil {
				ts = append(ts, coll.Tracer())
			}
			return obsv.Combine(ts...)
		})
		defer device.SetDefaultObserver(nil)
	}

	rep, err := faults.Audit(ctx, o)
	if chrome != nil {
		if cerr := chrome.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "ehsim: trace:", cerr)
		} else {
			fmt.Printf("wrote Chrome trace to %s\n", traceFile)
		}
	}
	if rep == nil {
		return 0, err
	}
	fmt.Printf("crash-consistency audit: %d run(s)\n\n", rep.Runs)
	f := rep.Faults
	fmt.Print(textplot.Table(
		[]string{"fault", "count"},
		[][]string{
			{"scheduled power cuts", fmt.Sprint(f.PowerCuts)},
			{"injected tears", fmt.Sprint(f.InjectedTears)},
			{"torn backups (all causes)", fmt.Sprint(f.TornBackups)},
			{"bit flips in stored state", fmt.Sprint(f.BitFlips)},
			{"CRC-rejected checkpoints", fmt.Sprint(f.CRCRejections)},
			{"stale-slot restores", fmt.Sprint(f.StaleRestores)},
			{"forced stale restores", fmt.Sprint(f.ForcedStale)},
			{"cold restarts", fmt.Sprint(f.ColdRestarts)},
		}))
	fmt.Printf("\ndetected-unrecoverable fail-stops: %d (honest detections, not violations)\n", rep.Unrecoverable)

	// Per-schedule verdicts, one machine-parseable logfmt line each —
	// grep for `outcome=violation` or parse with any logfmt reader.
	fmt.Println()
	lg := obsv.NewLogger(os.Stdout)
	for _, v := range rep.Verdicts {
		fields := []obsv.Field{
			{K: "case", V: v.Case.Strategy + "/" + v.Case.Workload},
			{K: "seed", V: v.Case.Seed},
			{K: "outcome", V: v.Outcome},
		}
		for _, class := range v.Classes {
			fields = append(fields, obsv.Field{K: "class", V: class})
		}
		lg.Line("audit.verdict", fields...)
	}
	for _, v := range rep.Violations {
		fields := []obsv.Field{
			{K: "class", V: v.Class},
			{K: "repro", V: v.Case.String()},
		}
		switch {
		case v.Err != nil:
			fields = append(fields, obsv.Field{K: "err", V: v.Err})
		case v.Incomplete:
			fields = append(fields, obsv.Field{K: "incomplete", V: true})
		case v.Detail != "":
			fields = append(fields, obsv.Field{K: "detail", V: v.Detail})
		default:
			fields = append(fields,
				obsv.Field{K: "got", V: fmt.Sprint(v.Got)},
				obsv.Field{K: "want", V: fmt.Sprint(v.Want)})
		}
		lg.Line("audit.violation", fields...)
	}
	fmt.Println()
	if len(rep.Violations) == 0 {
		fmt.Println("no crash-consistency violations ✓")
	} else {
		// One-line summary per verdict class, for humans and CI logs.
		for class := obsv.VerdictClass(0); class < obsv.NumVerdictClasses; class++ {
			if n := rep.Classes[class]; n > 0 {
				fmt.Printf("%s: %d violation(s)\n", class, n)
			}
		}
	}

	var rerrs runner.Errors
	if errors.As(err, &rerrs) {
		fmt.Printf("\n%s\n", rerrs.Summary(rep.Runs+len(rerrs)))
	}
	if coll != nil {
		mt := coll.Tracer()
		for _, v := range rep.Violations {
			mt.Event(obsv.Event{Type: obsv.EvVerdict, Arg: uint64(v.Class)})
		}
		agg := coll.Aggregate()
		for class, n := range rerrs.ClassCounts() {
			agg.AddErrorClass(class, n)
		}
		if werr := writeMetrics(metricsFile, agg); werr != nil {
			return 0, werr
		}
	}
	if err != nil {
		return 0, err
	}
	return len(rep.Violations), nil
}

// runRepro replays one printed counterexample case verbatim and reports
// its verdict — the `-audit -repro "<case>"` workflow. The -oracle and
// -freshness-bound flags layer on top of what the case string embeds.
func runRepro(ctx context.Context, caseStr string, oracle bool, freshness uint64, runTimeout time.Duration) (int, error) {
	c, err := faults.ParseCase(caseStr)
	if err != nil {
		return 0, err
	}
	if oracle {
		c.Oracle = true
	}
	if freshness > 0 {
		c.Fresh = freshness
	}
	out, err := faults.ReplayCase(ctx, c, runner.Options{RunTimeout: runTimeout})
	if err != nil {
		return 0, err
	}
	fmt.Printf("repro %s\n", out.Case)
	switch {
	case out.Unrecoverable:
		fmt.Println("outcome: fail-stop (detected-unrecoverable; honest detection, not a violation)")
	case len(out.Violations) == 0:
		fmt.Println("outcome: ok — committed output matched the continuous oracle")
	default:
		fmt.Println("outcome: violation")
		for _, v := range out.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	return len(out.Violations), nil
}

// adversarialOpts collects the -adversarial run's configuration.
type adversarialOpts struct {
	strategies []strategy.Spec
	workloads  []string
	plan       faults.Plan
	budget     int
	seed       int64
	oracle     bool
	freshness  uint64
	outFile    string
	metrics    string
}

// runAdversarial runs the frontier-biased fault-search campaign over
// every selected strategy × workload cell, prints per-cell coverage and
// finding summaries, and writes minimized counterexamples to the
// -counterexamples file when any violation fired.
func runAdversarial(ctx context.Context, o adversarialOpts) (int, error) {
	if o.strategies == nil {
		o.strategies = strategy.Catalog()
	}
	if o.workloads == nil {
		o.workloads = faults.DefaultWorkloads
	}
	// The campaign owns cut placement; the flag-supplied plan
	// contributes only the stochastic mix and the protocol mode.
	base := o.plan
	base.CutCycles = nil
	base.RandomCutMeanCycles = 0

	var coll *obsv.Collector
	var tracer obsv.Tracer
	if o.metrics != "" {
		coll = obsv.NewCollector()
		tracer = coll.Tracer()
	}

	var all []faults.Violation
	for _, spec := range o.strategies {
		for _, wl := range o.workloads {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			rep, err := faults.Campaign(ctx, faults.CampaignOptions{
				Strategy:       spec,
				Workload:       wl,
				Plan:           base,
				Budget:         o.budget,
				Seed:           o.seed,
				Oracle:         o.oracle,
				FreshnessBound: o.freshness,
				Observe:        tracer,
			})
			if err != nil {
				return 0, fmt.Errorf("campaign %s/%s: %w", spec.Name, wl, err)
			}
			line := fmt.Sprintf("campaign %s/%s: %d schedule(s), coverage %d/%d window(s)",
				spec.Name, wl, rep.Schedules, rep.Coverage.Attacked, rep.Coverage.Frontier)
			if rep.Ok() {
				fmt.Printf("%s, clean ✓\n", line)
			} else {
				fmt.Printf("%s, first finding at schedule %d, %d shrink run(s)\n",
					line, rep.FirstFinding, rep.ShrinkRuns)
				for _, v := range rep.Violations {
					fmt.Printf("  %s\n", v)
				}
				all = append(all, rep.Violations...)
			}
		}
	}
	if len(all) > 0 {
		for class := obsv.VerdictClass(0); class < obsv.NumVerdictClasses; class++ {
			n := 0
			for _, v := range all {
				if v.Class == class {
					n++
				}
			}
			if n > 0 {
				fmt.Printf("%s: %d violation(s)\n", class, n)
			}
		}
		if o.outFile != "" {
			if err := writeCounterexamples(o.outFile, all); err != nil {
				return 0, err
			}
		}
	} else {
		fmt.Println("adversarial campaign found no violations ✓")
	}
	if coll != nil {
		if err := writeMetrics(o.metrics, coll.Aggregate()); err != nil {
			return 0, err
		}
	}
	return len(all), nil
}

// writeCounterexamples stores the minimized cases one per line, each
// preceded by a comment naming its verdict class — ready for
// `ehsim -audit -repro "$(grep -v '^#' FILE | head -1)"`.
func writeCounterexamples(path string, vs []faults.Violation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, v := range vs {
		detail := v.Detail
		if detail == "" && v.Err != nil {
			detail = v.Err.Error()
		}
		if detail != "" {
			fmt.Fprintf(f, "# [%s] %s\n", v.Class, detail)
		} else {
			fmt.Fprintf(f, "# [%s]\n", v.Class)
		}
		fmt.Fprintln(f, v.Case.String())
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d minimized counterexample(s) to %s\n", len(vs), path)
	return nil
}

// wcecPreflight runs the static forward-progress verifier against the
// exact program, power model and per-period energy budget about to be
// simulated. The region semantics follow the runtime's declared
// commit-point scheme (device.RegionObserver): checkpoint-site
// runtimes are checked over checkpoint-to-checkpoint intervals, the
// task runtime over its static task boundaries. A livelock verdict —
// a region whose *best-case* energy to the next commit already
// exceeds E_max — makes the configuration statically infeasible and
// the run is refused, naming the region; runtimes that place commit
// points dynamically (no RegionObserver) get the verdict as an
// advisory only, since a voltage-triggered checkpoint can commit
// anywhere. Each region's verdict is also emitted into the run's
// observer sinks so -metrics exports the certificate counts.
func wcecPreflight(cfg *device.Config, strat device.Strategy, budgetJ float64) error {
	scheme := device.RegionDynamic
	if ro, ok := strat.(device.RegionObserver); ok {
		scheme = ro.Regions()
	}
	mode := analyze.WCECCheckpoint
	if scheme == device.RegionTaskBoundaries {
		mode = analyze.WCECTask
	}
	tbl, err := analyze.WCEC(cfg.Prog, analyze.WCECOptions{
		Mode: mode, Power: cfg.Power, BudgetJ: budgetJ,
	})
	if err != nil {
		return fmt.Errorf("wcec-check: %w", err)
	}
	if cfg.Observe != nil {
		for _, r := range tbl.Regions {
			code := obsv.WCECArgUnknown
			switch r.Verdict {
			case analyze.WCECCertified:
				code = obsv.WCECArgCertified
			case analyze.WCECLivelock:
				code = obsv.WCECArgLivelock
			}
			cfg.Observe.Event(obsv.Event{Type: obsv.EvWCECRegion, Arg: code, Arg2: uint64(r.Entry)})
		}
	}
	c, l, u := tbl.VerdictCounts()
	fmt.Printf("wcec-check (%s regions): %d certified / %d livelock / %d unknown at E_max = %.3g J\n",
		tbl.Mode, c, l, u, budgetJ)
	fl := tbl.FirstLivelock()
	if fl == nil {
		return nil
	}
	bce := "an unbounded amount of"
	if !fl.BCUnbounded {
		bce = fmt.Sprintf("at least %.3g J of", fl.BCEnergy)
	}
	detail := fmt.Sprintf("region entry=%d (%s) needs %s energy to reach its next commit but E_max is %.3g J",
		fl.Entry, fl.Kind, bce, budgetJ)
	if tbl.RepairComplete && len(tbl.Repair) > 0 {
		detail += fmt.Sprintf("; repair: insert boundaries at pc %v", tbl.Repair)
	}
	if scheme == device.RegionDynamic {
		fmt.Printf("wcec-check: advisory: %s (dynamic commit placement may still progress)\n", detail)
		return nil
	}
	return fmt.Errorf("wcec-check: statically infeasible under %s: %s", strat.Name(), detail)
}

// listProgram prints the disassembly the selected strategy would run.
func listProgram(wname, sname string, tauB uint64, scale int) error {
	w, ok := workload.Get(wname)
	if !ok {
		return fmt.Errorf("unknown workload %q", wname)
	}
	_, seg, err := strategyFor(sname, tauB)
	if err != nil {
		return err
	}
	prog, err := w.Build(workload.Options{Seg: seg, Scale: scale})
	if err != nil {
		return err
	}
	fmt.Print(prog.Listing())
	return nil
}

func run(ctx context.Context, o runOpts) error {
	w, ok := workload.Get(o.workload)
	if !ok {
		return fmt.Errorf("unknown workload %q (have: %s)", o.workload, strings.Join(workload.Names(), ", "))
	}
	strat, seg, err := strategyFor(o.strategy, o.tauB)
	if err != nil {
		return err
	}
	wopts := workload.Options{Seg: seg, Scale: o.scale}
	prog, err := w.Build(wopts)
	if err != nil {
		return err
	}

	pm := energy.MSP430Power()
	e := o.period * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: 200000, MaxCycles: 1 << 62,
		RunTimeout: o.runTimeout,
		Interrupt:  runner.Interrupt(ctx),
		// On a fixed supply every charge is identical, so an exactly
		// repeating doomed period proves livelock: fail fast with the
		// region and PC instead of grinding out MaxPeriods.
		DetectLivelock: true,
	}
	kind, hasTrace, err := traceFor(o.trace, 10)
	if err != nil {
		return err
	}
	if hasTrace {
		tr := trace.Generate(kind, 10, 1e-3, 42)
		h, err := energy.NewHarvester(tr, 1000, 0.7)
		if err != nil {
			return err
		}
		cfg.Harvester = h
	}
	if o.plan != nil {
		inj, err := faults.New(*o.plan)
		if err != nil {
			return err
		}
		cfg.Faults = inj
	}

	// Observability: a bounded flight recorder is always on (dumped if
	// the run fails); -trace and -metrics attach their sinks beside it.
	ring := obsv.NewRing(flightRecorderDepth)
	sinks := []obsv.Tracer{ring}
	var chrome *obsv.ChromeSink
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		chrome = obsv.NewChromeSink(f)
		sinks = append(sinks, chrome)
	}
	var met *obsv.Metrics
	if o.metricsFile != "" {
		met = &obsv.Metrics{}
		sinks = append(sinks, met)
	}
	cfg.Observe = obsv.Combine(sinks...)
	closeTrace := func() {
		if chrome == nil {
			return
		}
		if err := chrome.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ehsim: trace:", err)
		} else {
			fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", o.traceFile)
		}
		chrome = nil
	}

	if o.wcecCheck {
		if err := wcecPreflight(&cfg, strat, e); err != nil {
			return err
		}
	}

	d, err := device.New(cfg, strat)
	if err != nil {
		return err
	}
	res, err := d.Run()
	if err != nil {
		// The run died: finalize the trace and dump the flight
		// recorder's last events before reporting the failure.
		closeTrace()
		fmt.Fprintf(os.Stderr, "flight recorder: last %d lifecycle event(s) before the failure:\n", ring.Len())
		ring.DumpText(os.Stderr)
	}
	if errors.Is(err, device.ErrDeadlineExceeded) {
		return fmt.Errorf("run exceeded its -run-timeout of %v: %w", o.runTimeout, err)
	}
	if errors.Is(err, device.ErrUnrecoverable) {
		fmt.Printf("%s under %s (%s data): FAIL-STOP\n\n", o.workload, strat.Name(), seg)
		fmt.Println("the device detected that its nonvolatile state cannot be recovered")
		fmt.Println("crash-consistently and refused to restore — the honest outcome when")
		fmt.Println("injected corruption outruns what checkpoint rollback can undo:")
		fmt.Printf("  %v\n", err)
		return fmt.Errorf("run fail-stopped: %w", err)
	}
	if err != nil {
		return err
	}
	closeTrace()
	if met != nil {
		if err := writeMetrics(o.metricsFile, met); err != nil {
			return err
		}
	}
	if o.periodsCSV != "" {
		f, err := os.Create(o.periodsCSV)
		if err != nil {
			return err
		}
		if err := res.WritePeriodsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote per-period statistics to %s\n", o.periodsCSV)
	}

	fmt.Printf("%s under %s (%s data), E = %.3g J/period\n\n", o.workload, strat.Name(), seg, e)
	bd := res.Breakdown()
	total := bd.Supply + bd.Harvested
	pct := func(v float64) string { return fmt.Sprintf("%.4g J  (%.1f%%)", v, 100*v/total) }
	fmt.Print(textplot.Table(
		[]string{"metric", "value"},
		[][]string{
			{"completed", fmt.Sprint(res.Completed)},
			{"active periods", fmt.Sprint(len(res.Periods))},
			{"backups / restores", fmt.Sprintf("%d / %d", res.Backups(), res.Restores())},
			{"measured progress p", fmt.Sprintf("%.4f", res.MeasuredProgress())},
			{"mean τ_B", fmt.Sprintf("%.1f cycles", res.MeanTauB())},
			{"mean τ_D", fmt.Sprintf("%.1f cycles", res.MeanTauD())},
			{"total cycles", fmt.Sprint(res.TotalCycles)},
			{"simulated time", fmt.Sprintf("%.4g s", res.TimeS)},
			{"supply energy", pct(bd.Supply)},
			{"harvested in-period", pct(bd.Harvested)},
			{"progress energy", pct(bd.Progress)},
			{"dead energy", pct(bd.Dead)},
			{"backup energy", pct(bd.Backup)},
			{"restore energy", pct(bd.Restore)},
			{"idle energy", pct(bd.Idle)},
		}))

	if o.plan != nil {
		f := res.Faults
		fmt.Printf("\nfault injection (seed %d):\n", o.plan.Seed)
		fmt.Print(textplot.Table(
			[]string{"fault", "count"},
			[][]string{
				{"scheduled power cuts", fmt.Sprint(f.PowerCuts)},
				{"injected tears", fmt.Sprint(f.InjectedTears)},
				{"torn backups (all causes)", fmt.Sprint(f.TornBackups)},
				{"bit flips in stored state", fmt.Sprint(f.BitFlips)},
				{"CRC-rejected checkpoints", fmt.Sprint(f.CRCRejections)},
				{"stale-slot restores", fmt.Sprint(f.StaleRestores)},
				{"forced stale restores", fmt.Sprint(f.ForcedStale)},
				{"cold restarts", fmt.Sprint(f.ColdRestarts)},
			}))
	}

	if res.Completed {
		want := w.Ref(wopts)
		if reflect.DeepEqual(res.Output, want) {
			fmt.Printf("\noutput: %d words, matches the continuous-execution oracle ✓\n", len(res.Output))
		} else {
			fmt.Printf("\noutput MISMATCH:\n got %v\nwant %v\n", res.Output, want)
			return fmt.Errorf("intermittent output diverged from oracle")
		}
	} else {
		fmt.Println("\nrun hit its limits before completing; stats above are steady-state")
	}
	return nil
}
