// Command ehsim runs one benchmark under one intermittent runtime on
// the device simulator and reports where its cycles and energy went —
// including a correctness check against the workload's reference
// output.
//
// Example:
//
//	ehsim -workload ds -strategy clank -period 20000 -trace multipeak
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/strategy"
	"ehmodel/internal/textplot"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// strategyFor builds the named runtime and reports the data placement
// its memory model requires.
func strategyFor(name string, tauB uint64) (device.Strategy, asm.Segment, error) {
	switch name {
	case "timer":
		return strategy.NewTimer(tauB, 0.1), asm.SRAM, nil
	case "speculative":
		return strategy.NewSpeculative(tauB, 0.1), asm.SRAM, nil
	case "hibernus":
		return strategy.NewHibernus(), asm.SRAM, nil
	case "mementos":
		return strategy.NewMementos(), asm.SRAM, nil
	case "dino":
		return strategy.NewDINO(), asm.SRAM, nil
	case "chain":
		return strategy.NewChain(), asm.SRAM, nil
	case "mixvol":
		return strategy.NewMixedVolatility(tauB), asm.SRAM, nil
	case "clank":
		return strategy.NewClank(), asm.FRAM, nil
	case "ratchet":
		return strategy.NewRatchet(), asm.FRAM, nil
	case "nvp":
		return strategy.NewNVPEveryCycle(), asm.FRAM, nil
	case "nvp-threshold":
		return strategy.NewNVPThreshold(), asm.FRAM, nil
	default:
		return nil, 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func traceFor(name string, seconds float64) (trace.Kind, bool, error) {
	switch name {
	case "", "none":
		return 0, false, nil
	case "spikes":
		return trace.Spikes, true, nil
	case "ramp":
		return trace.Ramp, true, nil
	case "multipeak":
		return trace.MultiPeak, true, nil
	default:
		return 0, false, fmt.Errorf("unknown trace %q", name)
	}
}

// periodsOut, when set, receives per-period CSV statistics after a run.
var periodsOut string

func main() {
	wname := flag.String("workload", "counter", "workload: "+strings.Join(workload.Names(), ", "))
	sname := flag.String("strategy", "timer", "runtime: timer, speculative, hibernus, mementos, dino, chain, mixvol, clank, ratchet, nvp, nvp-threshold")
	period := flag.Float64("period", 20000, "per-period energy budget in ALU cycles")
	tauB := flag.Uint64("tauB", 1000, "backup period for timer/mixvol (cycles)")
	scale := flag.Int("scale", 1, "workload problem-size multiplier")
	traceName := flag.String("trace", "none", "supply trace: none (bench supply), spikes, ramp, multipeak")
	list := flag.Bool("list", false, "print the workload's disassembly and exit")
	periodsCSV := flag.String("periods", "", "write per-period statistics to this CSV file")
	flag.Parse()
	periodsOut = *periodsCSV

	if *list {
		if err := listProgram(*wname, *sname, *tauB, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*wname, *sname, *period, *tauB, *scale, *traceName); err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(1)
	}
}

// listProgram prints the disassembly the selected strategy would run.
func listProgram(wname, sname string, tauB uint64, scale int) error {
	w, ok := workload.Get(wname)
	if !ok {
		return fmt.Errorf("unknown workload %q", wname)
	}
	_, seg, err := strategyFor(sname, tauB)
	if err != nil {
		return err
	}
	prog, err := w.Build(workload.Options{Seg: seg, Scale: scale})
	if err != nil {
		return err
	}
	fmt.Print(prog.Listing())
	return nil
}

func run(wname, sname string, period float64, tauB uint64, scale int, traceName string) error {
	w, ok := workload.Get(wname)
	if !ok {
		return fmt.Errorf("unknown workload %q (have: %s)", wname, strings.Join(workload.Names(), ", "))
	}
	strat, seg, err := strategyFor(sname, tauB)
	if err != nil {
		return err
	}
	opts := workload.Options{Seg: seg, Scale: scale}
	prog, err := w.Build(opts)
	if err != nil {
		return err
	}

	pm := energy.MSP430Power()
	e := period * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: 200000, MaxCycles: 1 << 62,
	}
	kind, hasTrace, err := traceFor(traceName, 10)
	if err != nil {
		return err
	}
	if hasTrace {
		tr := trace.Generate(kind, 10, 1e-3, 42)
		h, err := energy.NewHarvester(tr, 1000, 0.7)
		if err != nil {
			return err
		}
		cfg.Harvester = h
	}

	d, err := device.New(cfg, strat)
	if err != nil {
		return err
	}
	res, err := d.Run()
	if err != nil {
		return err
	}
	if periodsOut != "" {
		f, err := os.Create(periodsOut)
		if err != nil {
			return err
		}
		if err := res.WritePeriodsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote per-period statistics to %s\n", periodsOut)
	}

	fmt.Printf("%s under %s (%s data), E = %.3g J/period\n\n", wname, strat.Name(), seg, e)
	bd := res.Breakdown()
	total := bd.Supply + bd.Harvested
	pct := func(v float64) string { return fmt.Sprintf("%.4g J  (%.1f%%)", v, 100*v/total) }
	fmt.Print(textplot.Table(
		[]string{"metric", "value"},
		[][]string{
			{"completed", fmt.Sprint(res.Completed)},
			{"active periods", fmt.Sprint(len(res.Periods))},
			{"backups / restores", fmt.Sprintf("%d / %d", res.Backups(), res.Restores())},
			{"measured progress p", fmt.Sprintf("%.4f", res.MeasuredProgress())},
			{"mean τ_B", fmt.Sprintf("%.1f cycles", res.MeanTauB())},
			{"mean τ_D", fmt.Sprintf("%.1f cycles", res.MeanTauD())},
			{"total cycles", fmt.Sprint(res.TotalCycles)},
			{"simulated time", fmt.Sprintf("%.4g s", res.TimeS)},
			{"supply energy", pct(bd.Supply)},
			{"harvested in-period", pct(bd.Harvested)},
			{"progress energy", pct(bd.Progress)},
			{"dead energy", pct(bd.Dead)},
			{"backup energy", pct(bd.Backup)},
			{"restore energy", pct(bd.Restore)},
			{"idle energy", pct(bd.Idle)},
		}))

	if res.Completed {
		want := w.Ref(opts)
		if reflect.DeepEqual(res.Output, want) {
			fmt.Printf("\noutput: %d words, matches the continuous-execution oracle ✓\n", len(res.Output))
		} else {
			fmt.Printf("\noutput MISMATCH:\n got %v\nwant %v\n", res.Output, want)
			return fmt.Errorf("intermittent output diverged from oracle")
		}
	} else {
		fmt.Println("\nrun hit its limits before completing; stats above are steady-state")
	}
	return nil
}
