// Command ehsim runs one benchmark under one intermittent runtime on
// the device simulator and reports where its cycles and energy went —
// including a correctness check against the workload's reference
// output.
//
// Example:
//
//	ehsim -workload ds -strategy clank -period 20000 -trace multipeak
//
// Fault injection (two-phase checkpoint commit under attack):
//
//	ehsim -workload crc -strategy hibernus -fault-schedule random:mean=7000 \
//	      -torn-writes 1e-3 -bitflip-rate 1e-3 -fault-seed 7
//
// Crash-consistency audit sweep (parallel, through the sweep engine):
//
//	ehsim -audit -audit-schedules 10 -workers 4 -run-timeout 30s
//
// SIGINT/SIGTERM cancels a run or sweep; an interrupted audit still
// prints the partial report before exiting non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/faults"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/textplot"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// strategyFor builds the named runtime and reports the data placement
// its memory model requires. Strategies with a tunable backup period
// are built here; everything else comes from the shared catalog, so the
// CLI runs exactly the configurations the integration tests and the
// crash-consistency auditor cover.
func strategyFor(name string, tauB uint64) (device.Strategy, asm.Segment, error) {
	switch name {
	case "timer":
		return strategy.NewTimer(tauB, 0.1), asm.SRAM, nil
	case "speculative":
		return strategy.NewSpeculative(tauB, 0.1), asm.SRAM, nil
	case "mixvol":
		return strategy.NewMixedVolatility(tauB), asm.SRAM, nil
	case "nvp":
		name = "nvp-everycycle"
	}
	spec, ok := strategy.Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("unknown strategy %q", name)
	}
	return spec.New(), spec.Seg, nil
}

func traceFor(name string, seconds float64) (trace.Kind, bool, error) {
	switch name {
	case "", "none":
		return 0, false, nil
	case "spikes":
		return trace.Spikes, true, nil
	case "ramp":
		return trace.Ramp, true, nil
	case "multipeak":
		return trace.MultiPeak, true, nil
	default:
		return 0, false, fmt.Errorf("unknown trace %q", name)
	}
}

// runOpts collects one simulation's configuration.
type runOpts struct {
	workload string
	strategy string
	period   float64
	tauB     uint64
	scale    int
	trace    string
	// plan, when non-nil, attaches a fault injector built from it.
	plan *faults.Plan
	// periodsCSV, when set, receives per-period CSV statistics.
	periodsCSV string
	// runTimeout caps the simulation's wall-clock time (0 = none).
	runTimeout time.Duration
}

func main() {
	wname := flag.String("workload", "counter", "workload: "+strings.Join(workload.Names(), ", "))
	sname := flag.String("strategy", "timer", "runtime: timer, speculative, hibernus, mementos, dino, chain, mixvol, clank, ratchet, nvp, nvp-threshold")
	period := flag.Float64("period", 20000, "per-period energy budget in ALU cycles")
	tauB := flag.Uint64("tauB", 1000, "backup period for timer/mixvol (cycles)")
	scale := flag.Int("scale", 1, "workload problem-size multiplier")
	traceName := flag.String("trace", "none", "supply trace: none (bench supply), spikes, ramp, multipeak")
	list := flag.Bool("list", false, "print the workload's disassembly and exit")
	periodsCSV := flag.String("periods", "", "write per-period statistics to this CSV file")
	workers := flag.Int("workers", 0, "parallel sweep workers for -audit (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock deadline per simulation run (0 = none)")

	faultSchedule := flag.String("fault-schedule", "none", "power-cut schedule: none, cycles:N,N,..., random:mean=N")
	faultSeed := flag.Int64("fault-seed", 1, "seed for every randomized fault decision")
	tornWrites := flag.Float64("torn-writes", 0, "per-word probability of tearing a checkpoint write")
	bitflipRate := flag.Float64("bitflip-rate", 0, "per-stored-word probability of a bit flip at each restore")
	staleProb := flag.Float64("stale-prob", 0, "per-restore probability of forcing the stale checkpoint slot")
	naive := flag.Bool("naive-commit", false, "downgrade to the broken single-slot commit (fault-model validation)")

	audit := flag.Bool("audit", false, "run the crash-consistency audit sweep (strategy × workload × schedules) instead of a single simulation")
	auditSchedules := flag.Int("audit-schedules", 10, "failure schedules per strategy × workload cell in -audit mode")
	engineName := flag.String("engine", "batched", "execution engine: batched (event-horizon) or reference (per-instruction); results are byte-identical")
	flag.Parse()

	engine, err := device.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(2)
	}
	device.SetDefaultEngine(engine)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *audit {
		o := faults.Options{
			Schedules: *auditSchedules,
			BaseSeed:  *faultSeed,
			Run:       runner.Options{Workers: *workers, RunTimeout: *runTimeout},
		}
		if err := runAudit(ctx, o); err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			os.Exit(1)
		}
		return
	}

	opts := runOpts{
		workload: *wname, strategy: *sname,
		period: *period, tauB: *tauB, scale: *scale,
		trace: *traceName, periodsCSV: *periodsCSV,
		runTimeout: *runTimeout,
	}

	plan := faults.Plan{
		Seed:             *faultSeed,
		TornWriteProb:    *tornWrites,
		BitFlipRate:      *bitflipRate,
		StaleRestoreProb: *staleProb,
		NaiveCommit:      *naive,
	}
	if err := plan.ParseSchedule(*faultSchedule); err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(1)
	}
	if !reflect.DeepEqual(plan, faults.Plan{Seed: *faultSeed}) {
		opts.plan = &plan
	}

	if *list {
		if err := listProgram(*wname, *sname, *tauB, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "ehsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(1)
	}
}

// runAudit executes the parallel crash-consistency audit and prints its
// report. An interrupted or partially failed sweep still prints what
// completed before returning the error.
func runAudit(ctx context.Context, o faults.Options) error {
	rep, err := faults.Audit(ctx, o)
	if rep == nil {
		return err
	}
	fmt.Printf("crash-consistency audit: %d run(s)\n\n", rep.Runs)
	f := rep.Faults
	fmt.Print(textplot.Table(
		[]string{"fault", "count"},
		[][]string{
			{"scheduled power cuts", fmt.Sprint(f.PowerCuts)},
			{"injected tears", fmt.Sprint(f.InjectedTears)},
			{"torn backups (all causes)", fmt.Sprint(f.TornBackups)},
			{"bit flips in stored state", fmt.Sprint(f.BitFlips)},
			{"CRC-rejected checkpoints", fmt.Sprint(f.CRCRejections)},
			{"stale-slot restores", fmt.Sprint(f.StaleRestores)},
			{"forced stale restores", fmt.Sprint(f.ForcedStale)},
			{"cold restarts", fmt.Sprint(f.ColdRestarts)},
		}))
	fmt.Printf("\ndetected-unrecoverable fail-stops: %d (honest detections, not violations)\n", rep.Unrecoverable)
	if len(rep.Violations) > 0 {
		fmt.Printf("\n%d VIOLATION(S):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Println(" ", v)
		}
	} else {
		fmt.Println("no crash-consistency violations ✓")
	}
	var rerrs runner.Errors
	if errors.As(err, &rerrs) {
		fmt.Printf("\n%s\n", rerrs.Summary(rep.Runs+len(rerrs)))
	}
	if err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%d crash-consistency violation(s)", len(rep.Violations))
	}
	return nil
}

// listProgram prints the disassembly the selected strategy would run.
func listProgram(wname, sname string, tauB uint64, scale int) error {
	w, ok := workload.Get(wname)
	if !ok {
		return fmt.Errorf("unknown workload %q", wname)
	}
	_, seg, err := strategyFor(sname, tauB)
	if err != nil {
		return err
	}
	prog, err := w.Build(workload.Options{Seg: seg, Scale: scale})
	if err != nil {
		return err
	}
	fmt.Print(prog.Listing())
	return nil
}

func run(ctx context.Context, o runOpts) error {
	w, ok := workload.Get(o.workload)
	if !ok {
		return fmt.Errorf("unknown workload %q (have: %s)", o.workload, strings.Join(workload.Names(), ", "))
	}
	strat, seg, err := strategyFor(o.strategy, o.tauB)
	if err != nil {
		return err
	}
	wopts := workload.Options{Seg: seg, Scale: o.scale}
	prog, err := w.Build(wopts)
	if err != nil {
		return err
	}

	pm := energy.MSP430Power()
	e := o.period * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: 200000, MaxCycles: 1 << 62,
		RunTimeout: o.runTimeout,
		Interrupt:  runner.Interrupt(ctx),
	}
	kind, hasTrace, err := traceFor(o.trace, 10)
	if err != nil {
		return err
	}
	if hasTrace {
		tr := trace.Generate(kind, 10, 1e-3, 42)
		h, err := energy.NewHarvester(tr, 1000, 0.7)
		if err != nil {
			return err
		}
		cfg.Harvester = h
	}
	if o.plan != nil {
		inj, err := faults.New(*o.plan)
		if err != nil {
			return err
		}
		cfg.Faults = inj
	}

	d, err := device.New(cfg, strat)
	if err != nil {
		return err
	}
	res, err := d.Run()
	if errors.Is(err, device.ErrDeadlineExceeded) {
		return fmt.Errorf("run exceeded its -run-timeout of %v: %w", o.runTimeout, err)
	}
	if errors.Is(err, device.ErrUnrecoverable) {
		fmt.Printf("%s under %s (%s data): FAIL-STOP\n\n", o.workload, strat.Name(), seg)
		fmt.Println("the device detected that its nonvolatile state cannot be recovered")
		fmt.Println("crash-consistently and refused to restore — the honest outcome when")
		fmt.Println("injected corruption outruns what checkpoint rollback can undo:")
		fmt.Printf("  %v\n", err)
		return fmt.Errorf("run fail-stopped: %w", err)
	}
	if err != nil {
		return err
	}
	if o.periodsCSV != "" {
		f, err := os.Create(o.periodsCSV)
		if err != nil {
			return err
		}
		if err := res.WritePeriodsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote per-period statistics to %s\n", o.periodsCSV)
	}

	fmt.Printf("%s under %s (%s data), E = %.3g J/period\n\n", o.workload, strat.Name(), seg, e)
	bd := res.Breakdown()
	total := bd.Supply + bd.Harvested
	pct := func(v float64) string { return fmt.Sprintf("%.4g J  (%.1f%%)", v, 100*v/total) }
	fmt.Print(textplot.Table(
		[]string{"metric", "value"},
		[][]string{
			{"completed", fmt.Sprint(res.Completed)},
			{"active periods", fmt.Sprint(len(res.Periods))},
			{"backups / restores", fmt.Sprintf("%d / %d", res.Backups(), res.Restores())},
			{"measured progress p", fmt.Sprintf("%.4f", res.MeasuredProgress())},
			{"mean τ_B", fmt.Sprintf("%.1f cycles", res.MeanTauB())},
			{"mean τ_D", fmt.Sprintf("%.1f cycles", res.MeanTauD())},
			{"total cycles", fmt.Sprint(res.TotalCycles)},
			{"simulated time", fmt.Sprintf("%.4g s", res.TimeS)},
			{"supply energy", pct(bd.Supply)},
			{"harvested in-period", pct(bd.Harvested)},
			{"progress energy", pct(bd.Progress)},
			{"dead energy", pct(bd.Dead)},
			{"backup energy", pct(bd.Backup)},
			{"restore energy", pct(bd.Restore)},
			{"idle energy", pct(bd.Idle)},
		}))

	if o.plan != nil {
		f := res.Faults
		fmt.Printf("\nfault injection (seed %d):\n", o.plan.Seed)
		fmt.Print(textplot.Table(
			[]string{"fault", "count"},
			[][]string{
				{"scheduled power cuts", fmt.Sprint(f.PowerCuts)},
				{"injected tears", fmt.Sprint(f.InjectedTears)},
				{"torn backups (all causes)", fmt.Sprint(f.TornBackups)},
				{"bit flips in stored state", fmt.Sprint(f.BitFlips)},
				{"CRC-rejected checkpoints", fmt.Sprint(f.CRCRejections)},
				{"stale-slot restores", fmt.Sprint(f.StaleRestores)},
				{"forced stale restores", fmt.Sprint(f.ForcedStale)},
				{"cold restarts", fmt.Sprint(f.ColdRestarts)},
			}))
	}

	if res.Completed {
		want := w.Ref(wopts)
		if reflect.DeepEqual(res.Output, want) {
			fmt.Printf("\noutput: %d words, matches the continuous-execution oracle ✓\n", len(res.Output))
		} else {
			fmt.Printf("\noutput MISMATCH:\n got %v\nwant %v\n", res.Output, want)
			return fmt.Errorf("intermittent output diverged from oracle")
		}
	} else {
		fmt.Println("\nrun hit its limits before completing; stats above are steady-state")
	}
	return nil
}
