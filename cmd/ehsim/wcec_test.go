package main

import (
	"strings"
	"testing"

	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/obsv"
	"ehmodel/internal/workload"
)

// preflightCfg builds the same fixed-supply config run() would, with a
// metrics sink attached so the test can read the emitted verdicts.
func preflightCfg(t *testing.T, wname string, sname string, budgetCycles float64) (device.Config, device.Strategy, *obsv.Metrics, float64) {
	t.Helper()
	w, ok := workload.Get(wname)
	if !ok {
		t.Fatalf("no workload %q", wname)
	}
	strat, seg, err := strategyFor(sname, 1000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(workload.Options{Seg: seg})
	if err != nil {
		t.Fatal(err)
	}
	pm := energy.MSP430Power()
	e := budgetCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	met := &obsv.Metrics{}
	return device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		Observe: met,
	}, strat, met, e
}

// TestWCECPreflightFeasible: an adequate budget certifies every region
// and the preflight lets the run proceed, exporting the verdicts.
func TestWCECPreflightFeasible(t *testing.T) {
	cfg, strat, met, e := preflightCfg(t, "counter", "alpaca", 20000)
	if err := wcecPreflight(&cfg, strat, e); err != nil {
		t.Fatalf("feasible config refused: %v", err)
	}
	if met.WCECCertified == 0 || met.WCECLivelock != 0 {
		t.Fatalf("verdict export: %+v", met)
	}
}

// TestWCECPreflightRefusesInfeasible: a budget below the cheapest
// commit path is refused before any simulation, naming the region.
func TestWCECPreflightRefusesInfeasible(t *testing.T) {
	cfg, strat, met, e := preflightCfg(t, "counter", "alpaca", 5)
	err := wcecPreflight(&cfg, strat, e)
	if err == nil {
		t.Fatal("statically-infeasible config accepted")
	}
	for _, want := range []string{"statically infeasible", "alpaca", "region entry="} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
	if met.WCECLivelock == 0 {
		t.Fatalf("verdict export lost the livelock regions: %+v", met)
	}
}

// TestWCECPreflightAdvisoryForDynamicScheme: a runtime that places
// commit points dynamically (no RegionObserver) only gets an advisory
// — the static checkpoint-interval model is not binding for it.
func TestWCECPreflightAdvisoryForDynamicScheme(t *testing.T) {
	cfg, strat, _, e := preflightCfg(t, "counter", "timer", 5)
	if _, ok := strat.(device.RegionObserver); ok {
		t.Fatalf("timer unexpectedly declares a region scheme")
	}
	if err := wcecPreflight(&cfg, strat, e); err != nil {
		t.Fatalf("dynamic-scheme runtime must not be refused: %v", err)
	}
}
