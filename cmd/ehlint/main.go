// Command ehlint statically analyzes assembled EH32 programs for the
// hazards that break intermittent execution: write-after-read conflicts
// inside checkpoint regions (replay bugs for software checkpointing),
// Clank-visible WAR words, loops whose inter-checkpoint store count is
// unbounded, dead stores, unreachable code, cold-boot register reads
// and calling-convention misuse. It also reports the static
// tracking-buffer footprint bound and, on request, checks a circular
// buffer size against Eq. 15 of the paper.
//
// With -tasks it instead runs the task decomposition pass
// (analyze.Tasks) and prints the serializable task table the
// checkpoint-free Alpaca runtime executes: one idempotent task per
// static boundary, each with its read count and write-set footprint.
//
// With -wcec it runs the forward-progress verifier (analyze.WCEC)
// and prints the per-region energy-horizon certificate table under
// both region semantics — checkpoint-to-checkpoint intervals and
// Alpaca task boundaries. -emax sets the budget E_max in ALU-cycle
// units of the MSP430 power model. Regions whose best case already
// exceeds the budget get a livelock verdict (the static twin of the
// simulator's no-forward-progress error) and the table carries the
// minimal extra boundary cuts that would repair the program.
//
// With plain -all (no pass flag) each workload's lint findings are
// followed by its task table and both certificate tables, so one
// invocation aggregates every static pass.
//
// Examples:
//
//	ehlint -workload crc                  # one workload, FRAM placement
//	ehlint -all -seg sram                 # every workload, all passes
//	ehlint -workload fir -json            # machine-readable findings
//	ehlint -workload circular -arrayn 4 -bufn 8 -taub 170   # Eq. 15 check
//	ehlint -tasks -workload counter       # the workload's task table
//	ehlint -tasks -golden                 # canonical all-workloads task tables
//	ehlint -wcec -workload counter        # WCEC certificates, both modes
//	ehlint -wcec -emax 500 -workload crc  # tight 500-ALU-cycle budget
//	ehlint -wcec -golden                  # canonical all-workloads certificates
//
// The exit status is 2 on configuration errors, 1 when any
// error-severity finding (or, under -wcec, any livelock verdict) is
// reported, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ehmodel/internal/analyze"
	"ehmodel/internal/asm"
	"ehmodel/internal/energy"
	"ehmodel/internal/workload"
)

// circularN and circularBufN size the synthetic circular-buffer kernel
// when linting -workload circular; main overrides them from
// -arrayn/-bufn when those are set.
var circularN, circularBufN = 4, 8

func main() {
	wname := flag.String("workload", "", "workload to lint: "+strings.Join(workload.Names(), ", "))
	all := flag.Bool("all", false, "lint every workload")
	segName := flag.String("seg", "fram", "data placement: sram or fram")
	scale := flag.Int("scale", 1, "workload problem-size multiplier")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	arrayN := flag.Int("arrayn", 0, "Eq. 15: logical array length n (0 = skip the check)")
	bufN := flag.Int("bufn", 0, "Eq. 15: circular buffer size N to check")
	writeback := flag.Int("writeback", 0, "Eq. 15: writeback window w")
	tauB := flag.Float64("taub", 0, "Eq. 15: target backup period τ_B in cycles")
	golden := flag.Bool("golden", false, "emit the canonical all-workloads findings summary (both placements) and exit")
	tasks := flag.Bool("tasks", false, "print task decomposition tables instead of lint findings")
	wcec := flag.Bool("wcec", false, "print WCEC forward-progress certificate tables instead of lint findings")
	emax := flag.Float64("emax", 20000, "WCEC energy budget E_max, in ALU-cycle units of the MSP430 power model")
	flag.Parse()

	if *emax <= 0 {
		fmt.Fprintln(os.Stderr, "ehlint: -emax must be positive")
		os.Exit(2)
	}
	budgetJ := *emax * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)

	if *golden {
		emit := lintAllText
		switch {
		case *tasks:
			emit = tasksAllText
		case *wcec:
			emit = func(w io.Writer) error { return wcecAllText(w, budgetJ) }
		}
		if err := emit(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ehlint:", err)
			os.Exit(2)
		}
		return
	}

	seg, err := segFor(*segName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehlint:", err)
		os.Exit(2)
	}
	if *arrayN > 0 {
		circularN = *arrayN
	}
	if *bufN > 0 {
		circularBufN = *bufN
	}

	var names []string
	switch {
	case *all:
		names = workload.Names()
	case *wname != "":
		names = []string{*wname}
	default:
		fmt.Fprintln(os.Stderr, "ehlint: pass -workload <name> or -all")
		flag.Usage()
		os.Exit(2)
	}

	if *tasks {
		for _, name := range names {
			tt, err := tasksOne(name, seg, *scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ehlint:", err)
				os.Exit(2)
			}
			fmt.Print(tt.String())
		}
		return
	}

	if *wcec {
		livelock := false
		for _, name := range names {
			for _, mode := range []analyze.WCECMode{analyze.WCECCheckpoint, analyze.WCECTask} {
				tbl, err := wcecOne(name, seg, *scale, mode, budgetJ)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ehlint:", err)
					os.Exit(2)
				}
				if *jsonOut {
					b, err := tbl.JSON()
					if err != nil {
						fmt.Fprintln(os.Stderr, "ehlint:", err)
						os.Exit(2)
					}
					fmt.Println(string(b))
				} else {
					fmt.Print(tbl.String())
				}
				if tbl.FirstLivelock() != nil {
					livelock = true
				}
			}
		}
		if livelock {
			os.Exit(1)
		}
		return
	}

	errorsSeen := false
	for _, name := range names {
		rep, err := lintOne(name, seg, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ehlint:", err)
			os.Exit(2)
		}
		if *jsonOut {
			b, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "ehlint:", err)
				os.Exit(2)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(rep.Render())
		}
		if *arrayN > 0 {
			res, err := rep.Eq15(*arrayN, *bufN, *writeback, *tauB)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ehlint:", err)
				os.Exit(2)
			}
			printEq15(os.Stdout, res)
		}
		// Plain -all aggregates every static pass per workload: the
		// findings above, then the task table and both certificate
		// tables (text mode only; -json keeps one document per line).
		if *all && !*jsonOut {
			if err := printAggregate(os.Stdout, name, seg, *scale, budgetJ); err != nil {
				fmt.Fprintln(os.Stderr, "ehlint:", err)
				os.Exit(2)
			}
		}
		for _, f := range rep.Findings {
			if f.Sev == analyze.SevError {
				errorsSeen = true
			}
		}
	}
	if errorsSeen {
		os.Exit(1)
	}
}

// printAggregate emits the -all per-workload task and WCEC sections.
func printAggregate(w io.Writer, name string, seg asm.Segment, scale int, budgetJ float64) error {
	tt, err := tasksOne(name, seg, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- tasks: %s --\n", name)
	fmt.Fprint(w, tt.String())
	fmt.Fprintf(w, "-- wcec: %s --\n", name)
	for _, mode := range []analyze.WCECMode{analyze.WCECCheckpoint, analyze.WCECTask} {
		tbl, err := wcecOne(name, seg, scale, mode, budgetJ)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tbl.String())
	}
	return nil
}

func segFor(name string) (asm.Segment, error) {
	switch name {
	case "sram":
		return asm.SRAM, nil
	case "fram":
		return asm.FRAM, nil
	default:
		return 0, fmt.Errorf("unknown segment %q (want sram or fram)", name)
	}
}

// buildOne assembles one workload. The name "circular" builds the
// §IV-D circular-buffer kernel (workload.CircularBuffer) sized by
// -arrayn/-bufn, the natural subject of the Eq. 15 check.
func buildOne(name string, seg asm.Segment, scale int) (*asm.Program, error) {
	var prog *asm.Program
	var err error
	if name == "circular" {
		prog, err = workload.CircularBuffer(circularN, circularBufN, 3*scale, seg)
	} else {
		w, ok := workload.Get(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (have: circular, %s)", name, strings.Join(workload.Names(), ", "))
		}
		prog, err = w.Build(workload.Options{Seg: seg, Scale: scale})
	}
	if err != nil {
		return nil, fmt.Errorf("building %s: %w", name, err)
	}
	return prog, nil
}

// lintOne builds and analyzes one workload.
func lintOne(name string, seg asm.Segment, scale int) (*analyze.Report, error) {
	prog, err := buildOne(name, seg, scale)
	if err != nil {
		return nil, err
	}
	return analyze.Analyze(prog, analyze.Options{})
}

// tasksOne builds one workload and runs the task decomposition pass.
func tasksOne(name string, seg asm.Segment, scale int) (*analyze.TaskTable, error) {
	prog, err := buildOne(name, seg, scale)
	if err != nil {
		return nil, err
	}
	return analyze.Tasks(prog, analyze.Options{})
}

// wcecOne builds one workload and runs the forward-progress verifier
// under the given region semantics.
func wcecOne(name string, seg asm.Segment, scale int, mode analyze.WCECMode, budgetJ float64) (*analyze.WCECTable, error) {
	prog, err := buildOne(name, seg, scale)
	if err != nil {
		return nil, err
	}
	return analyze.WCEC(prog, analyze.WCECOptions{Mode: mode, BudgetJ: budgetJ})
}

func printEq15(w io.Writer, r analyze.Eq15Result) {
	verdict := "NOT satisfied"
	if r.Satisfied {
		verdict = "satisfied"
	}
	fmt.Fprintf(w, "eq15: N=%d over n=%d (w=%d) gives tau_B = %g cycles at tau_store = %g; target %g %s (optimal N = %d)\n",
		r.BufN, r.ArrayN, r.Writeback, r.TauB, r.TauStore, r.TauBTarget, verdict, r.NOpt)
}

// lintAllText renders the canonical all-workloads lint summary used by
// the golden-output regression test and `make lint-workloads`: every
// workload under both data placements, findings only (the footprint and
// τ_store lines stay out so the golden file tracks diagnostics, not
// performance model details).
func lintAllText(w io.Writer) error {
	segs := []struct {
		name string
		seg  asm.Segment
	}{{"sram", asm.SRAM}, {"fram", asm.FRAM}}
	names := workload.Names()
	sort.Strings(names)
	for _, name := range names {
		for _, s := range segs {
			rep, err := lintOne(name, s.seg, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "== %s/%s ==\n", name, s.name)
			if len(rep.Findings) == 0 {
				fmt.Fprintln(w, "no findings")
			}
			for _, f := range rep.Findings {
				fmt.Fprintf(w, "%-7s %-28s %s: %s\n", f.Sev, f.Kind, f.Where, f.Msg)
			}
		}
	}
	return nil
}

// wcecAllText renders the canonical all-workloads WCEC certificate
// tables used by the golden-output regression test and
// `make lint-wcec`: every workload under both data placements, each
// with both region semantics, in the serialization analyze.ParseWCEC
// round-trips.
func wcecAllText(w io.Writer, budgetJ float64) error {
	segs := []struct {
		name string
		seg  asm.Segment
	}{{"sram", asm.SRAM}, {"fram", asm.FRAM}}
	names := workload.Names()
	sort.Strings(names)
	for _, name := range names {
		for _, s := range segs {
			fmt.Fprintf(w, "== %s/%s ==\n", name, s.name)
			for _, mode := range []analyze.WCECMode{analyze.WCECCheckpoint, analyze.WCECTask} {
				tbl, err := wcecOne(name, s.seg, 1, mode, budgetJ)
				if err != nil {
					return err
				}
				fmt.Fprint(w, tbl.String())
			}
		}
	}
	return nil
}

// tasksAllText renders the canonical all-workloads task tables used by
// the golden-output regression test and `make lint-tasks`: every
// workload's decomposition under both data placements, in the
// serialization analyze.ParseTaskTable round-trips.
func tasksAllText(w io.Writer) error {
	segs := []struct {
		name string
		seg  asm.Segment
	}{{"sram", asm.SRAM}, {"fram", asm.FRAM}}
	names := workload.Names()
	sort.Strings(names)
	for _, name := range names {
		for _, s := range segs {
			tt, err := tasksOne(name, s.seg, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "== %s/%s ==\n", name, s.name)
			fmt.Fprint(w, tt.String())
		}
	}
	return nil
}
