package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenWorkloadFindings pins the lint findings for every built-in
// workload (both data placements) to results/ehlint_workloads.golden.
// A diff means a workload changed its hazard surface or the analyzer
// changed its verdicts; regenerate deliberately with
//
//	make lint-workloads
//
// after reviewing the new findings.
func TestGoldenWorkloadFindings(t *testing.T) {
	var got bytes.Buffer
	if err := lintAllText(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "results", "ehlint_workloads.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with `make lint-workloads`)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("lint findings drifted from %s; regenerate with `make lint-workloads` after reviewing.\n%s",
			path, diffHint(string(want), got.String()))
	}
}

// TestGoldenTaskTables pins the task decomposition pass's output for
// every built-in workload (both data placements) to
// results/ehlint_tasks.golden. A diff means task boundaries, footprints
// or the Eq. 15 buffer bound moved; regenerate deliberately with
//
//	make lint-tasks
//
// after reviewing the new decomposition.
func TestGoldenTaskTables(t *testing.T) {
	var got bytes.Buffer
	if err := tasksAllText(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "results", "ehlint_tasks.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with `make lint-tasks`)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("task tables drifted from %s; regenerate with `make lint-tasks` after reviewing.\n%s",
			path, diffHint(string(want), got.String()))
	}
}

// TestNoBootWindowHazards asserts the satellite invariant directly: no
// workload may reach a WAR store before its first checkpoint site.
func TestNoBootWindowHazards(t *testing.T) {
	var got bytes.Buffer
	if err := lintAllText(&got); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(got.String(), "\n") {
		if strings.Contains(line, "war-before-first-checkpoint") {
			t.Errorf("boot-window hazard: %s", strings.TrimSpace(line))
		}
	}
}

// diffHint shows the first diverging lines — enough to locate the drift
// without a full diff implementation.
func diffHint(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("first difference at line %d:\n want: %s\n  got: %s", i+1, wl, gl)
		}
	}
	return "outputs differ only in length"
}
