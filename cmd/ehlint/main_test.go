package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ehmodel/internal/analyze"
	"ehmodel/internal/asm"
	"ehmodel/internal/energy"
	"ehmodel/internal/workload"
)

// TestGoldenWorkloadFindings pins the lint findings for every built-in
// workload (both data placements) to results/ehlint_workloads.golden.
// A diff means a workload changed its hazard surface or the analyzer
// changed its verdicts; regenerate deliberately with
//
//	make lint-workloads
//
// after reviewing the new findings.
func TestGoldenWorkloadFindings(t *testing.T) {
	var got bytes.Buffer
	if err := lintAllText(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "results", "ehlint_workloads.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with `make lint-workloads`)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("lint findings drifted from %s; regenerate with `make lint-workloads` after reviewing.\n%s",
			path, diffHint(string(want), got.String()))
	}
}

// TestGoldenTaskTables pins the task decomposition pass's output for
// every built-in workload (both data placements) to
// results/ehlint_tasks.golden. A diff means task boundaries, footprints
// or the Eq. 15 buffer bound moved; regenerate deliberately with
//
//	make lint-tasks
//
// after reviewing the new decomposition.
func TestGoldenTaskTables(t *testing.T) {
	var got bytes.Buffer
	if err := tasksAllText(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "results", "ehlint_tasks.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with `make lint-tasks`)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("task tables drifted from %s; regenerate with `make lint-tasks` after reviewing.\n%s",
			path, diffHint(string(want), got.String()))
	}
}

// TestNoBootWindowHazards asserts the satellite invariant directly: no
// workload may reach a WAR store before its first checkpoint site.
func TestNoBootWindowHazards(t *testing.T) {
	var got bytes.Buffer
	if err := lintAllText(&got); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(got.String(), "\n") {
		if strings.Contains(line, "war-before-first-checkpoint") {
			t.Errorf("boot-window hazard: %s", strings.TrimSpace(line))
		}
	}
}

// diffHint shows the first diverging lines — enough to locate the drift
// without a full diff implementation.
func diffHint(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("first difference at line %d:\n want: %s\n  got: %s", i+1, wl, gl)
		}
	}
	return "outputs differ only in length"
}

// defaultBudgetJ mirrors the CLI's -emax default of 20000 ALU-cycle
// units.
func defaultBudgetJ() float64 {
	return 20000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
}

// TestGoldenWCECTables pins the forward-progress verifier's certificate
// tables for every built-in workload (both data placements, both region
// semantics) to results/ehlint_wcec.golden. A diff means a worst-case
// bound, verdict or repair suggestion moved; regenerate deliberately
// with
//
//	make lint-wcec
//
// after reviewing the new certificates.
func TestGoldenWCECTables(t *testing.T) {
	var got bytes.Buffer
	if err := wcecAllText(&got, defaultBudgetJ()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "results", "ehlint_wcec.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with `make lint-wcec`)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("WCEC certificates drifted from %s; regenerate with `make lint-wcec` after reviewing.\n%s",
			path, diffHint(string(want), got.String()))
	}
}

// TestGoldenWCECParses asserts every certificate table in the golden
// output round-trips through analyze.ParseWCEC, and that no workload
// is statically infeasible (livelock) at the default budget — the
// catalog must stay runnable.
func TestGoldenWCECParses(t *testing.T) {
	var got bytes.Buffer
	if err := wcecAllText(&got, defaultBudgetJ()); err != nil {
		t.Fatal(err)
	}
	tables := 0
	for _, block := range strings.Split(got.String(), "== ") {
		i := strings.Index(block, "\n")
		if i < 0 || !strings.Contains(block[:i], "/") {
			continue
		}
		// Each section holds two concatenated tables; split on the
		// second header keyword.
		body := block[i+1:]
		idx := strings.Index(body[1:], "wcectable ")
		if idx < 0 {
			t.Fatalf("section %q lacks a second table", block[:i])
		}
		for _, text := range []string{body[:idx+1], body[idx+1:]} {
			tbl, err := analyze.ParseWCEC(text)
			if err != nil {
				t.Fatalf("section %q: %v", block[:i], err)
			}
			tables++
			if fl := tbl.FirstLivelock(); fl != nil {
				t.Errorf("%s %s: livelock at region entry=%d under the default budget",
					tbl.Prog, tbl.Mode, fl.Entry)
			}
		}
	}
	if tables == 0 {
		t.Fatal("no certificate tables parsed")
	}
}

// TestAllAggregatesSections pins the shape of the plain -all
// aggregation: each workload's findings are followed by a task table
// section and a WCEC section holding both region semantics.
func TestAllAggregatesSections(t *testing.T) {
	names := workload.Names()
	for _, name := range names {
		var got bytes.Buffer
		if err := printAggregate(&got, name, asm.FRAM, 1, defaultBudgetJ()); err != nil {
			t.Fatal(err)
		}
		s := got.String()
		if !strings.Contains(s, fmt.Sprintf("-- tasks: %s --\ntasktable ", name)) {
			t.Errorf("%s: missing task section:\n%s", name, s)
		}
		if !strings.Contains(s, fmt.Sprintf("-- wcec: %s --\nwcectable ", name)) {
			t.Errorf("%s: missing wcec section:\n%s", name, s)
		}
		if !strings.Contains(s, "mode=checkpoint") || !strings.Contains(s, "mode=task") {
			t.Errorf("%s: wcec section must carry both region semantics:\n%s", name, s)
		}
	}
}
