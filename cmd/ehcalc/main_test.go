package main

import (
	"os"
	"strings"
	"testing"
)

func TestReadSweepCSV(t *testing.T) {
	pts, err := readSweepCSV(strings.NewReader("tau_b,p\n10,0.5\n20,0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].X != 10 || pts[1].P != 0.6 {
		t.Fatalf("points: %+v", pts)
	}
	// headerless input also works
	pts, err = readSweepCSV(strings.NewReader("10,0.5\n20,0.6\n30,0.55\n"))
	if err != nil || len(pts) != 3 {
		t.Fatalf("headerless: %v %v", pts, err)
	}
	if _, err := readSweepCSV(strings.NewReader("10\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := readSweepCSV(strings.NewReader("10,0.5\nx,y\n")); err == nil {
		t.Error("non-numeric data row accepted")
	}
}

func TestRunFitEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sweep.csv"
	data := "tau_b,p\n2,0.65\n5,0.72\n10,0.78\n20,0.76\n40,0.69\n80,0.55\n"
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if err := runFit(path, 0); err != nil {
		t.Fatal(err)
	}
	if err := runFit(dir+"/missing.csv", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}
