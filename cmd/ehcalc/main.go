// Command ehcalc evaluates the EH model for a parameter set: forward
// progress, the full energy breakdown, and the derived design points
// (optimal backup interval, worst-case optimum, backup/restore
// break-even, bit-precision sweet spot, single-backup progress).
//
// Example:
//
//	ehcalc -E 100 -eps 1 -tauB 10 -omegaB 1 -AB 1 -alphaB 0.1 -sweep
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ehmodel/internal/core"
	"ehmodel/internal/textplot"
)

func main() {
	def := core.DefaultParams()
	var p core.Params
	flag.Float64Var(&p.E, "E", def.E, "energy supply per active period (J)")
	flag.Float64Var(&p.Epsilon, "eps", def.Epsilon, "execution energy per cycle (J/cycle)")
	flag.Float64Var(&p.EpsilonC, "epsC", def.EpsilonC, "charging energy per cycle (J/cycle)")
	flag.Float64Var(&p.TauB, "tauB", def.TauB, "time between backups (cycles)")
	flag.Float64Var(&p.SigmaB, "sigmaB", def.SigmaB, "backup bandwidth (bytes/cycle)")
	flag.Float64Var(&p.OmegaB, "omegaB", def.OmegaB, "backup energy cost (J/byte)")
	flag.Float64Var(&p.AB, "AB", def.AB, "architectural state per backup (bytes)")
	flag.Float64Var(&p.AlphaB, "alphaB", def.AlphaB, "application state per backup (bytes/cycle)")
	flag.Float64Var(&p.SigmaR, "sigmaR", def.SigmaR, "restore bandwidth (bytes/cycle)")
	flag.Float64Var(&p.OmegaR, "omegaR", def.OmegaR, "restore energy cost (J/byte)")
	flag.Float64Var(&p.AR, "AR", def.AR, "architectural state per restore (bytes)")
	flag.Float64Var(&p.AlphaR, "alphaR", def.AlphaR, "application state per restore (bytes/cycle)")
	sweep := flag.Bool("sweep", false, "render an ASCII p-vs-τ_B sweep")
	fitFile := flag.String("fit", "", "fit the model to measured (tau_b,p) CSV rows from this file ('-' for stdin) and exit")
	fitR := flag.Float64("fitR", 0, "restore fraction e_R/E assumed when decomposing a fit")
	flag.Parse()

	if *fitFile != "" {
		if err := runFit(*fitFile, *fitR); err != nil {
			fmt.Fprintln(os.Stderr, "ehcalc:", err)
			os.Exit(1)
		}
		return
	}

	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid parameters:", err)
		os.Exit(1)
	}

	b := p.Breakdown()
	lo, hi := p.ProgressBounds()
	fmt.Println(p)
	fmt.Println()
	fmt.Print(textplot.Table(
		[]string{"quantity", "value", "meaning"},
		[][]string{
			{"p", fmt.Sprintf("%.4f", b.P), "forward progress (τ_D = τ_B/2)"},
			{"p bounds", fmt.Sprintf("[%.4f, %.4f]", lo, hi), "worst/best-case dead cycles"},
			{"τ_P", fmt.Sprintf("%.1f cycles", b.TauP), "useful cycles per period"},
			{"n_B", fmt.Sprintf("%.2f", b.NB), "backups per period"},
			{"e_B", fmt.Sprintf("%.4g J", b.EB), "energy per backup"},
			{"e_D", fmt.Sprintf("%.4g J", b.ED), "dead energy"},
			{"e_R", fmt.Sprintf("%.4g J", b.ER), "restore energy"},
			{"τ_B,opt", fmt.Sprintf("%.2f cycles", p.TauBOpt()), "optimal backup interval (Eq. 9)"},
			{"τ_B,opt(wc)", fmt.Sprintf("%.2f cycles", p.TauBOptWorstCase()), "worst-case optimum (Eq. 10)"},
			{"τ_B,be", fmt.Sprintf("%.2f cycles", p.TauBBreakEven()), "backup/restore break-even (Eq. 11)"},
			{"τ_B,bit", fmt.Sprintf("%.2f cycles", p.TauBBit()), "bit-precision sweet spot (Eq. 16)"},
			{"p single", fmt.Sprintf("%.4f", p.ProgressSingleBackup()), "single-backup progress (Eq. 12)"},
		}))

	if *sweep {
		axis := core.LogSpace(0.1, 4*p.E/p.Epsilon, 100)
		var xs, ys, losY, hisY []float64
		for _, pt := range p.SweepTauB(axis, core.DeadAverage) {
			xs = append(xs, pt.X)
			ys = append(ys, pt.P)
		}
		for _, pt := range p.SweepTauB(axis, core.DeadWorst) {
			losY = append(losY, pt.P)
		}
		for _, pt := range p.SweepTauB(axis, core.DeadBest) {
			hisY = append(hisY, pt.P)
		}
		fmt.Println()
		fmt.Print(textplot.Chart("progress p vs τ_B", []textplot.Series{
			{Label: "average τ_D", Xs: xs, Ys: ys},
			{Label: "worst case", Xs: xs, Ys: losY},
			{Label: "best case", Xs: xs, Ys: hisY},
		}, 64, 16, true))
	}
}

// runFit reads "tau_b,p" rows (header optional) and prints the fitted
// identifiable coefficients, the implied optimal backup interval, and a
// decomposition at the assumed restore fraction.
func runFit(path string, restoreFrac float64) error {
	var src io.Reader
	if path == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	points, err := readSweepCSV(src)
	if err != nil {
		return err
	}
	fc, err := core.FitSweep(points)
	if err != nil {
		return err
	}
	fmt.Printf("fitted %d points, rms residual %.4g\n\n", len(points), fc.Residual)
	rows := [][]string{
		{"S", fmt.Sprintf("%.4g", fc.S), "scale (1−r)/(1+c)"},
		{"Ã", fmt.Sprintf("%.4g", fc.A), "dead-energy slope a/(1−r)"},
		{"B̃", fmt.Sprintf("%.4g", fc.B), "compulsory backup cost b/(1+c) (cycles)"},
		{"τ_B,opt", fmt.Sprintf("%.2f cycles", fc.TauBOpt()), "fitted optimal backup interval"},
	}
	if a, b, c, err := fc.Decompose(restoreFrac); err == nil {
		rows = append(rows,
			[]string{"a", fmt.Sprintf("%.4g", a), fmt.Sprintf("ε/(2E) at r=%g", restoreFrac)},
			[]string{"b", fmt.Sprintf("%.4g", b), "Ω_B·A_B/ε (cycles)"},
			[]string{"c", fmt.Sprintf("%.4g", c), "Ω_B·α_B/ε"},
		)
	} else {
		rows = append(rows, []string{"decompose", err.Error(), ""})
	}
	fmt.Print(textplot.Table([]string{"quantity", "value", "meaning"}, rows))
	return nil
}

// readSweepCSV parses rows of "tau_b,p", skipping a non-numeric header.
func readSweepCSV(r io.Reader) ([]core.SweepPoint, error) {
	recs, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	var points []core.SweepPoint
	for i, rec := range recs {
		if len(rec) < 2 {
			return nil, fmt.Errorf("row %d: need tau_b,p", i+1)
		}
		x, errX := strconv.ParseFloat(rec[0], 64)
		y, errY := strconv.ParseFloat(rec[1], 64)
		if errX != nil || errY != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("row %d: bad numbers %q", i+1, rec)
		}
		points = append(points, core.SweepPoint{X: x, P: y})
	}
	return points, nil
}
