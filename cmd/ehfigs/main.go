// Command ehfigs regenerates every table and figure of the paper's
// evaluation (Figs. 2–11 and the §VI case studies), rendering ASCII
// charts with the derived scalars and optionally dumping CSVs.
//
// Simulation sweeps run through the parallel sweep engine: -workers
// bounds the pool, -run-timeout caps each simulation, and SIGINT or
// SIGTERM cancels the sweep while still rendering and flushing the
// points that finished. A failing figure no longer aborts the rest of
// an `-fig all` run — survivors render, failures are summarized, and
// the exit status is non-zero only if something failed.
//
// Memoization: -cache selects the result store (mem, disk or off).
// Every simulation cell is keyed by a content hash of its workload,
// strategy and device configuration; identical cells within one run are
// deduplicated, and -cache disk persists results under -cache-dir so a
// re-run answers unchanged cells from the content-addressed store
// instead of simulating. Figures are byte-identical at any cache
// temperature.
//
// Observability: -trace FILE writes every sweep device's lifecycle onto
// its own thread of one Chrome trace_event timeline, -trace-spans FILE
// writes the run's wall-clock span tree (figure generation, every
// simulation cell with its cache outcome, CSV renders — the same
// document ehserve serves at /v1/trace/{id}), -metrics FILE exports
// loss-free aggregated counters across all workers (with the sweep
// engine's per-class failure counts and the result store's
// hit/miss/dedup accounting), and the -cpuprofile, -memprofile and
// -pprof flags expose the Go profiling hooks.
//
// Example:
//
//	ehfigs -fig all -quick -csv out/ -cache disk -metrics figs.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ehmodel/internal/device"
	"ehmodel/internal/experiments"
	"ehmodel/internal/obsv"
	"ehmodel/internal/profiling"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
	"ehmodel/internal/textplot"
)

func main() {
	os.Exit(cliMain())
}

func cliMain() int {
	fig := flag.String("fig", "all", "which figure: all, "+strings.Join(experiments.FigureIDs(), ", "))
	quick := flag.Bool("quick", false, "scaled-down simulation sweeps (same shapes, ~100× faster)")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (created if missing)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock deadline per simulation run (0 = none)")
	engineName := flag.String("engine", "batched", "execution engine: batched (event-horizon) or reference (per-instruction); results are byte-identical")
	cacheMode := flag.String("cache", "mem", "result store: mem (in-process LRU), disk (persistent CAS under -cache-dir) or off")
	cacheDir := flag.String("cache-dir", "results/cache", "directory for the on-disk result store (with -cache disk)")
	traceFile := flag.String("trace", "", "write every device's lifecycle to this Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	traceSpans := flag.String("trace-spans", "", "write the run's wall-clock span tree (figure generation, each simulation cell, CSV renders) to this JSON file")
	metricsFile := flag.String("metrics", "", "write aggregated sweep metrics to this file (CSV, or JSON with a .json suffix)")
	var prof profiling.Flags
	prof.Register()
	flag.Parse()

	engine, err := device.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", err)
		return 2
	}
	device.SetDefaultEngine(engine)

	exec, err := buildExecutor(*cacheMode, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", err)
		return 2
	}
	sweep.SetDefault(exec)

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", err)
		return 2
	}
	finish := func(code int) int {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs:", err)
			if code == 0 {
				code = 1
			}
		}
		return code
	}

	// Every device any sweep driver builds — many call layers down —
	// picks up its tracer here: a fresh per-worker Metrics sink from the
	// collector (merged loss-free at export) and its own thread of the
	// shared Chrome timeline.
	var coll *obsv.Collector
	var chrome *obsv.ChromeSink
	if *metricsFile != "" {
		coll = obsv.NewCollector()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs:", err)
			return finish(1)
		}
		chrome = obsv.NewChromeSink(f)
	}
	if coll != nil || chrome != nil {
		var tid atomic.Int32
		device.SetDefaultObserver(func() obsv.Tracer {
			var ts []obsv.Tracer
			if chrome != nil {
				ts = append(ts, obsv.WithTid(chrome, tid.Add(1)))
			}
			if coll != nil {
				ts = append(ts, coll.Tracer())
			}
			return obsv.Combine(ts...)
		})
		defer device.SetDefaultObserver(nil)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -trace-spans runs the whole generation as one trace: the same
	// span vocabulary a traced ehserve request records (cells with
	// outcome and device.run children, CSV renders), without a server.
	var spanTrace *obsv.Trace
	if *traceSpans != "" {
		spanTrace = obsv.NewTrace(obsv.NewTraceID(), 0)
		ctx = obsv.ContextWithTrace(ctx, spanTrace)
	}

	ropts := runner.Options{Workers: *workers, RunTimeout: *runTimeout}
	runErr := run(ctx, *fig, *quick, *csvDir, ropts, exec, coll, *metricsFile)
	if spanTrace != nil {
		if err := writeSpanTree(*traceSpans, spanTrace); err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs: trace-spans:", err)
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Printf("wrote span tree to %s\n", *traceSpans)
		}
	}
	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs: trace:", err)
		} else {
			fmt.Printf("wrote Chrome trace to %s\n", *traceFile)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", runErr)
		return finish(1)
	}
	return finish(0)
}

// buildExecutor wires the -cache flags into a sweep executor.
func buildExecutor(mode, dir string) (*sweep.Executor, error) {
	return sweep.OpenExecutor(mode, dir)
}

// run generates, renders and dumps the requested figures. Every figure
// that produced data — including partial sweeps interrupted by a
// signal or a deadline — is rendered and written to CSV before the
// failure summary decides the exit status. When a collector is
// attached, the aggregated metrics (plus the sweep engine's per-class
// failure counts and the result store's counters) are exported to
// metricsFile.
func run(ctx context.Context, which string, quick bool, csvDir string, ropts runner.Options, exec *sweep.Executor, coll *obsv.Collector, metricsFile string) error {
	genCtx, gsp := obsv.StartSpan(ctx, "generate")
	gsp.SetAttr("figure", which)
	figs, failures := experiments.GenerateFigures(genCtx, which, quick, ropts)
	gsp.Finish()
	for _, f := range figs {
		render(f)
		if csvDir != "" {
			start := time.Now()
			err := writeCSV(f, csvDir)
			obsv.AddSpan(ctx, "render.csv", start, time.Now(), obsv.Attr{Key: "figure", Val: f.ID})
			if err != nil {
				failures = append(failures, experiments.Failure{ID: f.ID, Err: err})
			}
		}
	}
	if st := exec.Stats(); exec.Store() != nil && st.Total() > 0 {
		fmt.Printf("result store: %d hits, %d misses, %d deduplicated, %d bypassed\n",
			st.Hits, st.Misses, st.Dedup, st.Bypass)
	}
	if coll != nil {
		agg := coll.Aggregate()
		st := exec.Stats()
		agg.AddCache(st.Hits, st.Misses, st.Bypass, st.Dedup, st.StoreErrors)
		for _, fl := range failures {
			var rerrs runner.Errors
			if errors.As(fl.Err, &rerrs) {
				for class, n := range rerrs.ClassCounts() {
					agg.AddErrorClass(class, n)
				}
			}
		}
		if err := writeMetrics(metricsFile, agg); err != nil {
			failures = append(failures, experiments.Failure{ID: "metrics", Err: err})
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "ehfigs: %d figure(s) failed:\n", len(failures))
		for _, fl := range failures {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", fl.ID, fl.Err)
		}
		return fmt.Errorf("%d of %d figure(s) incomplete", len(failures), len(figs)+len(failures))
	}
	return nil
}

func render(f *experiments.Figure) {
	fmt.Printf("── %s ─ %s ──\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		var series []textplot.Series
		for _, s := range f.Series {
			ts := textplot.Series{Label: s.Label}
			for _, p := range s.Points {
				ts.Xs = append(ts.Xs, p.X)
				ts.Ys = append(ts.Ys, p.Y)
			}
			series = append(series, ts)
		}
		fmt.Print(textplot.Chart(
			fmt.Sprintf("y: %s   x: %s", f.YLabel, f.XLabel),
			series, 72, 18, f.XLog))
	}
	for _, n := range f.Notes {
		fmt.Println("  •", n)
	}
	fmt.Println()
}

// writeSpanTree exports the run's trace as an indented JSON span tree —
// the same document /v1/trace/{id} serves.
func writeSpanTree(path string, tr *obsv.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tr.Snapshot().WriteTree(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMetrics exports the aggregated metrics as CSV, or JSON when the
// file name says so.
func writeMetrics(path string, m *obsv.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = m.WriteJSON(f)
	} else {
		err = m.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("wrote sweep metrics to %s\n", path)
	}
	return err
}

func writeCSV(f *experiments.Figure, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, strings.ReplaceAll(f.ID, "/", "_")+".csv")
	file, err := os.Create(name)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", name)
	return nil
}
