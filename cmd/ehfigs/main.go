// Command ehfigs regenerates every table and figure of the paper's
// evaluation (Figs. 2–11 and the §VI case studies), rendering ASCII
// charts with the derived scalars and optionally dumping CSVs.
//
// Simulation sweeps run through the parallel sweep engine: -workers
// bounds the pool, -run-timeout caps each simulation, and SIGINT or
// SIGTERM cancels the sweep while still rendering and flushing the
// points that finished. A failing figure no longer aborts the rest of
// an `-fig all` run — survivors render, failures are summarized, and
// the exit status is non-zero only if something failed.
//
// Observability: -trace FILE writes every sweep device's lifecycle onto
// its own thread of one Chrome trace_event timeline, -metrics FILE
// exports loss-free aggregated counters across all workers (with the
// sweep engine's per-class failure counts), and the -cpuprofile,
// -memprofile and -pprof flags expose the Go profiling hooks.
//
// Example:
//
//	ehfigs -fig all -quick -csv out/ -metrics figs.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"

	"ehmodel/internal/device"
	"ehmodel/internal/experiments"
	"ehmodel/internal/obsv"
	"ehmodel/internal/profiling"
	"ehmodel/internal/runner"
	"ehmodel/internal/textplot"
)

func main() {
	os.Exit(cliMain())
}

func cliMain() int {
	fig := flag.String("fig", "all", "which figure: all, 2–11, table2, storemajor, storemajor-device, circular, bitprecision, clank-buffers, clank-watchdog, hibernus-margin, mementos-gap, variability, capacitor, nvm, breakdown, breakeven, charging, tail")
	quick := flag.Bool("quick", false, "scaled-down simulation sweeps (same shapes, ~100× faster)")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (created if missing)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock deadline per simulation run (0 = none)")
	engineName := flag.String("engine", "batched", "execution engine: batched (event-horizon) or reference (per-instruction); results are byte-identical")
	traceFile := flag.String("trace", "", "write every device's lifecycle to this Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	metricsFile := flag.String("metrics", "", "write aggregated sweep metrics to this file (CSV, or JSON with a .json suffix)")
	var prof profiling.Flags
	prof.Register()
	flag.Parse()

	engine, err := device.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", err)
		return 2
	}
	device.SetDefaultEngine(engine)

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", err)
		return 2
	}
	finish := func(code int) int {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs:", err)
			if code == 0 {
				code = 1
			}
		}
		return code
	}

	// Every device any sweep driver builds — many call layers down —
	// picks up its tracer here: a fresh per-worker Metrics sink from the
	// collector (merged loss-free at export) and its own thread of the
	// shared Chrome timeline.
	var coll *obsv.Collector
	var chrome *obsv.ChromeSink
	if *metricsFile != "" {
		coll = obsv.NewCollector()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs:", err)
			return finish(1)
		}
		chrome = obsv.NewChromeSink(f)
	}
	if coll != nil || chrome != nil {
		var tid atomic.Int32
		device.SetDefaultObserver(func() obsv.Tracer {
			var ts []obsv.Tracer
			if chrome != nil {
				ts = append(ts, obsv.WithTid(chrome, tid.Add(1)))
			}
			if coll != nil {
				ts = append(ts, coll.Tracer())
			}
			return obsv.Combine(ts...)
		})
		defer device.SetDefaultObserver(nil)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ropts := runner.Options{Workers: *workers, RunTimeout: *runTimeout}
	runErr := run(ctx, *fig, *quick, *csvDir, ropts, coll, *metricsFile)
	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ehfigs: trace:", err)
		} else {
			fmt.Printf("wrote Chrome trace to %s\n", *traceFile)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", runErr)
		return finish(1)
	}
	return finish(0)
}

// figFailure records one figure that could not be (fully) generated.
type figFailure struct {
	id  string
	err error
}

// generate builds the requested figures. Figures that fail are recorded
// rather than aborting the batch; a driver that returns a partial
// figure alongside its error contributes both — the survivors render,
// the error lands in the failure report.
func generate(ctx context.Context, which string, quick bool, run runner.Options) ([]*experiments.Figure, []figFailure) {
	want := func(id string) bool { return which == "all" || which == id }
	var figs []*experiments.Figure
	var failures []figFailure
	add := func(f *experiments.Figure) { figs = append(figs, f) }
	// collect appends the figure (possibly partial) and the error —
	// whichever the generator produced.
	collect := func(id string, f *experiments.Figure, err error) {
		if f != nil {
			figs = append(figs, f)
		}
		if err != nil {
			failures = append(failures, figFailure{id: id, err: err})
		}
	}

	if want("2") {
		add(experiments.Fig2())
	}
	if want("3") {
		add(experiments.Fig3())
	}
	if want("4") {
		add(experiments.Fig4())
	}
	if want("5") {
		cfg := experiments.Fig5Config{}
		if quick {
			cfg = experiments.QuickFig5Config()
		}
		cfg.Run = run
		f, _, err := experiments.Fig5(ctx, cfg)
		collect("5", f, err)
	}
	if want("6") {
		f, _, err := experiments.Fig6(ctx, experiments.Fig6Config{Run: run})
		collect("6", f, err)
	}
	if want("7") {
		f, _, err := experiments.Fig7(ctx, experiments.Fig6Config{Run: run})
		collect("7", f, err)
	}
	if want("8") || want("9") {
		cfg := experiments.CharacterizationConfig{}
		if quick {
			cfg = experiments.QuickCharacterizationConfig()
		}
		cfg.Run = run
		f8, f9, _, err := experiments.Fig8And9(ctx, cfg)
		if !want("8") {
			f8 = nil
		}
		if !want("9") {
			f9 = nil
		}
		if f8 != nil {
			add(f8)
		}
		if f9 != nil {
			add(f9)
		}
		if err != nil {
			failures = append(failures, figFailure{id: "8/9", err: err})
		}
	}
	if want("10") {
		cfg := experiments.CharacterizationConfig{}
		if quick {
			cfg = experiments.QuickCharacterizationConfig()
		}
		cfg.Run = run
		f, _, err := experiments.Fig10(ctx, cfg)
		collect("10", f, err)
	}
	if want("11") {
		add(experiments.Fig11(experiments.Fig11Config{Base: experiments.DefaultFig11Base()}))
	}
	if want("table2") {
		rows, err := experiments.Table2(nil)
		if err != nil {
			failures = append(failures, figFailure{id: "table2", err: err})
		} else {
			f := &experiments.Figure{ID: "table2", Title: "Table II benchmark inventory (measured characteristics)"}
			for _, r := range rows {
				f.AddNote("%-6s %s — %d instrs, %d cycles, %.1f%% loads, %.1f%% stores, τ_store %.0f, %d B sram",
					r.Name, r.Desc, r.Instructions, r.Cycles, 100*r.LoadFrac, 100*r.StoreFrac, r.TauStore, r.SRAMFootprint)
			}
			add(f)
		}
	}
	if want("storemajor") {
		f, _, err := experiments.CaseStoreMajor()
		collect("storemajor", f, err)
	}
	if want("storemajor-device") {
		f, _, err := experiments.CaseStoreMajorDevice()
		collect("storemajor-device", f, err)
	}
	if want("circular") {
		f, _, _, err := experiments.CaseCircularBuffer(experiments.CircularConfig{})
		collect("circular", f, err)
	}
	for id, gen := range map[string]func(context.Context, runner.Options) (*experiments.Figure, error){
		"clank-buffers":   experiments.AblationClankBuffers,
		"clank-watchdog":  experiments.AblationClankWatchdog,
		"hibernus-margin": experiments.AblationHibernusMargin,
		"mementos-gap":    experiments.AblationMementosGap,
	} {
		if which == "all" || which == id {
			f, err := gen(ctx, run)
			collect(id, f, err)
		}
	}
	if want("tail") {
		f, _, err := experiments.TailLatencyStudy(0)
		collect("tail", f, err)
	}
	if want("charging") {
		f, _, err := experiments.ChargingStudy(ctx, run)
		collect("charging", f, err)
	}
	if want("breakeven") {
		f, _, _, err := experiments.BreakEvenStudy()
		collect("breakeven", f, err)
	}
	if want("breakdown") {
		f, _, err := experiments.BreakdownComparison(ctx, "crc", 0, run)
		collect("breakdown", f, err)
	}
	if want("capacitor") {
		f, err := experiments.CapacitorSweep(ctx, "crc", nil, run)
		collect("capacitor", f, err)
	}
	if want("nvm") {
		f, _, err := experiments.NVMComparison(ctx, "crc", 2000, run)
		collect("nvm", f, err)
	}
	if want("variability") {
		f, err := experiments.VariabilityStudy(ctx, 4000, 40, run)
		collect("variability", f, err)
	}
	if want("bitprecision") {
		base := experiments.DefaultFig11Base()
		r := experiments.CaseBitPrecision(base)
		f := &experiments.Figure{ID: "case-bitprecision", Title: "Reduced bit-precision payoff (§VI-C)"}
		f.AddNote("τ_B,bit = %.1f cycles", r.TauBBit)
		f.AddNote("Δp for a 1-bit α_B cut at τ_B,bit: %.4f", r.GainOneBit)
		f.AddNote("Δp for the same cut at τ_B,opt: %.4f", r.GainAtOpt)
		add(f)
	}
	if len(figs) == 0 && len(failures) == 0 {
		failures = append(failures, figFailure{id: which, err: fmt.Errorf("unknown figure %q", which)})
	}
	return figs, failures
}

// run generates, renders and dumps the requested figures. Every figure
// that produced data — including partial sweeps interrupted by a
// signal or a deadline — is rendered and written to CSV before the
// failure summary decides the exit status. When a collector is
// attached, the aggregated metrics (plus the sweep engine's per-class
// failure counts) are exported to metricsFile.
func run(ctx context.Context, which string, quick bool, csvDir string, ropts runner.Options, coll *obsv.Collector, metricsFile string) error {
	figs, failures := generate(ctx, which, quick, ropts)
	for _, f := range figs {
		render(f)
		if csvDir != "" {
			if err := writeCSV(f, csvDir); err != nil {
				failures = append(failures, figFailure{id: f.ID, err: err})
			}
		}
	}
	if coll != nil {
		agg := coll.Aggregate()
		for _, fl := range failures {
			var rerrs runner.Errors
			if errors.As(fl.err, &rerrs) {
				for class, n := range rerrs.ClassCounts() {
					agg.AddErrorClass(class, n)
				}
			}
		}
		if err := writeMetrics(metricsFile, agg); err != nil {
			failures = append(failures, figFailure{id: "metrics", err: err})
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "ehfigs: %d figure(s) failed:\n", len(failures))
		for _, fl := range failures {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", fl.id, fl.err)
		}
		return fmt.Errorf("%d of %d figure(s) incomplete", len(failures), len(figs)+len(failures))
	}
	return nil
}

func render(f *experiments.Figure) {
	fmt.Printf("── %s ─ %s ──\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		var series []textplot.Series
		for _, s := range f.Series {
			ts := textplot.Series{Label: s.Label}
			for _, p := range s.Points {
				ts.Xs = append(ts.Xs, p.X)
				ts.Ys = append(ts.Ys, p.Y)
			}
			series = append(series, ts)
		}
		fmt.Print(textplot.Chart(
			fmt.Sprintf("y: %s   x: %s", f.YLabel, f.XLabel),
			series, 72, 18, f.XLog))
	}
	for _, n := range f.Notes {
		fmt.Println("  •", n)
	}
	fmt.Println()
}

// writeMetrics exports the aggregated metrics as CSV, or JSON when the
// file name says so.
func writeMetrics(path string, m *obsv.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = m.WriteJSON(f)
	} else {
		err = m.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("wrote sweep metrics to %s\n", path)
	}
	return err
}

func writeCSV(f *experiments.Figure, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, strings.ReplaceAll(f.ID, "/", "_")+".csv")
	file, err := os.Create(name)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", name)
	return nil
}
