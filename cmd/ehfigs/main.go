// Command ehfigs regenerates every table and figure of the paper's
// evaluation (Figs. 2–11 and the §VI case studies), rendering ASCII
// charts with the derived scalars and optionally dumping CSVs.
//
// Example:
//
//	ehfigs -fig all -quick -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ehmodel/internal/experiments"
	"ehmodel/internal/textplot"
)

func main() {
	fig := flag.String("fig", "all", "which figure: all, 2–11, table2, storemajor, storemajor-device, circular, bitprecision, clank-buffers, clank-watchdog, hibernus-margin, mementos-gap, variability, capacitor, nvm, breakdown, breakeven, charging, tail")
	quick := flag.Bool("quick", false, "scaled-down simulation sweeps (same shapes, ~100× faster)")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (created if missing)")
	flag.Parse()

	if err := run(*fig, *quick, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "ehfigs:", err)
		os.Exit(1)
	}
}

// generate builds the requested figures.
func generate(which string, quick bool) ([]*experiments.Figure, error) {
	want := func(id string) bool { return which == "all" || which == id }
	var figs []*experiments.Figure
	add := func(f *experiments.Figure) { figs = append(figs, f) }

	if want("2") {
		add(experiments.Fig2())
	}
	if want("3") {
		add(experiments.Fig3())
	}
	if want("4") {
		add(experiments.Fig4())
	}
	if want("5") {
		cfg := experiments.Fig5Config{}
		if quick {
			cfg = experiments.QuickFig5Config()
		}
		f, _, err := experiments.Fig5(cfg)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("6") {
		f, _, err := experiments.Fig6(experiments.Fig6Config{})
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("7") {
		f, _, err := experiments.Fig7(experiments.Fig6Config{})
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("8") || want("9") {
		cfg := experiments.CharacterizationConfig{}
		if quick {
			cfg = experiments.QuickCharacterizationConfig()
		}
		f8, f9, _, err := experiments.Fig8And9(cfg)
		if err != nil {
			return nil, err
		}
		if want("8") {
			add(f8)
		}
		if want("9") {
			add(f9)
		}
	}
	if want("10") {
		cfg := experiments.CharacterizationConfig{}
		if quick {
			cfg = experiments.QuickCharacterizationConfig()
		}
		f, _, err := experiments.Fig10(cfg)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("11") {
		add(experiments.Fig11(experiments.Fig11Config{Base: experiments.DefaultFig11Base()}))
	}
	if want("table2") {
		rows, err := experiments.Table2(nil)
		if err != nil {
			return nil, err
		}
		f := &experiments.Figure{ID: "table2", Title: "Table II benchmark inventory (measured characteristics)"}
		for _, r := range rows {
			f.AddNote("%-6s %s — %d instrs, %d cycles, %.1f%% loads, %.1f%% stores, τ_store %.0f, %d B sram",
				r.Name, r.Desc, r.Instructions, r.Cycles, 100*r.LoadFrac, 100*r.StoreFrac, r.TauStore, r.SRAMFootprint)
		}
		add(f)
	}
	if want("storemajor") {
		f, _, err := experiments.CaseStoreMajor()
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("storemajor-device") {
		f, _, err := experiments.CaseStoreMajorDevice()
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("circular") {
		f, _, _, err := experiments.CaseCircularBuffer(experiments.CircularConfig{})
		if err != nil {
			return nil, err
		}
		add(f)
	}
	for id, gen := range map[string]func() (*experiments.Figure, error){
		"clank-buffers":   experiments.AblationClankBuffers,
		"clank-watchdog":  experiments.AblationClankWatchdog,
		"hibernus-margin": experiments.AblationHibernusMargin,
		"mementos-gap":    experiments.AblationMementosGap,
	} {
		if which == "all" || which == id {
			f, err := gen()
			if err != nil {
				return nil, err
			}
			add(f)
		}
	}
	if want("tail") {
		f, _, err := experiments.TailLatencyStudy(0)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("charging") {
		f, _, err := experiments.ChargingStudy()
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("breakeven") {
		f, _, _, err := experiments.BreakEvenStudy()
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("breakdown") {
		f, _, err := experiments.BreakdownComparison("crc", 0)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("capacitor") {
		f, err := experiments.CapacitorSweep("crc", nil)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("nvm") {
		f, _, err := experiments.NVMComparison("crc", 2000)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("variability") {
		f, err := experiments.VariabilityStudy(4000, 40)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	if want("bitprecision") {
		base := experiments.DefaultFig11Base()
		r := experiments.CaseBitPrecision(base)
		f := &experiments.Figure{ID: "case-bitprecision", Title: "Reduced bit-precision payoff (§VI-C)"}
		f.AddNote("τ_B,bit = %.1f cycles", r.TauBBit)
		f.AddNote("Δp for a 1-bit α_B cut at τ_B,bit: %.4f", r.GainOneBit)
		f.AddNote("Δp for the same cut at τ_B,opt: %.4f", r.GainAtOpt)
		add(f)
	}
	if len(figs) == 0 {
		return nil, fmt.Errorf("unknown figure %q", which)
	}
	return figs, nil
}

func run(which string, quick bool, csvDir string) error {
	figs, err := generate(which, quick)
	if err != nil {
		return err
	}
	for _, f := range figs {
		render(f)
		if csvDir != "" {
			if err := writeCSV(f, csvDir); err != nil {
				return err
			}
		}
	}
	return nil
}

func render(f *experiments.Figure) {
	fmt.Printf("── %s ─ %s ──\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		var series []textplot.Series
		for _, s := range f.Series {
			ts := textplot.Series{Label: s.Label}
			for _, p := range s.Points {
				ts.Xs = append(ts.Xs, p.X)
				ts.Ys = append(ts.Ys, p.Y)
			}
			series = append(series, ts)
		}
		fmt.Print(textplot.Chart(
			fmt.Sprintf("y: %s   x: %s", f.YLabel, f.XLabel),
			series, 72, 18, f.XLog))
	}
	for _, n := range f.Notes {
		fmt.Println("  •", n)
	}
	fmt.Println()
}

func writeCSV(f *experiments.Figure, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, strings.ReplaceAll(f.ID, "/", "_")+".csv")
	file, err := os.Create(name)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", name)
	return nil
}
