package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ehmodel/internal/experiments"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

func TestGenerateAnalyticFigures(t *testing.T) {
	for _, id := range []string{"2", "3", "4", "11", "storemajor", "bitprecision"} {
		figs, failures := experiments.GenerateFigures(context.Background(), id, true, runner.Options{})
		if len(failures) != 0 {
			t.Errorf("%s: %v", id, failures[0].Err)
			continue
		}
		if len(figs) != 1 {
			t.Errorf("%s: %d figures", id, len(figs))
		}
	}
}

func TestGenerateSimulatedFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated figures are slow")
	}
	for _, id := range []string{"5", "6", "7", "8", "10", "circular", "variability"} {
		figs, failures := experiments.GenerateFigures(context.Background(), id, true, runner.Options{})
		if len(failures) != 0 {
			t.Errorf("%s: %v", id, failures[0].Err)
			continue
		}
		if len(figs) != 1 {
			t.Errorf("%s: %d figures", id, len(figs))
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	figs, failures := experiments.GenerateFigures(context.Background(), "nope", true, runner.Options{})
	if len(failures) == 0 {
		t.Fatal("unknown figure accepted")
	}
	if len(figs) != 0 {
		t.Fatalf("unknown figure produced %d figures", len(figs))
	}
}

// TestGenerateCanceledStillDegrades: a pre-canceled context must not
// turn a sweep-backed figure into a hard failure with nothing to show —
// the driver still returns its (empty-series) figure plus the error, so
// ehfigs can render what exists and report the rest.
func TestGenerateCanceledStillDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	figs, failures := experiments.GenerateFigures(ctx, "5", true, runner.Options{})
	if len(failures) == 0 {
		t.Fatal("canceled sweep reported no failure")
	}
	if len(figs) != 1 {
		t.Fatalf("canceled sweep yielded %d figures, want the partial one", len(figs))
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "3", true, dir, runner.Options{}, sweep.NewExecutor(nil), nil, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y,err\n") {
		t.Fatalf("bad csv: %.40q", string(data))
	}
}

// TestBuildExecutor covers the -cache flag wiring: every mode yields an
// executor, disk persists under the given directory, junk is rejected.
func TestBuildExecutor(t *testing.T) {
	if e, err := buildExecutor("off", ""); err != nil || e.Store() != nil {
		t.Fatalf("off: exec %v err %v", e, err)
	}
	if e, err := buildExecutor("mem", ""); err != nil || e.Store() == nil {
		t.Fatalf("mem: exec %v err %v", e, err)
	}
	dir := filepath.Join(t.TempDir(), "cas")
	e, err := buildExecutor("disk", dir)
	if err != nil || e.Store() == nil {
		t.Fatalf("disk: exec %v err %v", e, err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("disk mode did not create %s: %v", dir, err)
	}
	if _, err := buildExecutor("bogus", ""); err == nil {
		t.Fatal("bogus cache mode accepted")
	}
}
