package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAnalyticFigures(t *testing.T) {
	for _, id := range []string{"2", "3", "4", "11", "storemajor", "bitprecision"} {
		figs, err := generate(id, true)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(figs) != 1 {
			t.Errorf("%s: %d figures", id, len(figs))
		}
	}
}

func TestGenerateSimulatedFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated figures are slow")
	}
	for _, id := range []string{"5", "6", "7", "8", "10", "circular", "variability"} {
		figs, err := generate(id, true)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(figs) != 1 {
			t.Errorf("%s: %d figures", id, len(figs))
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := generate("nope", true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("3", true, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y,err\n") {
		t.Fatalf("bad csv: %.40q", string(data))
	}
}
