package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ehmodel/internal/trace"
)

func TestKindFor(t *testing.T) {
	for _, k := range trace.Kinds() {
		got, err := kindFor(k.String())
		if err != nil || got != k {
			t.Errorf("%s: %v %v", k, got, err)
		}
	}
	if _, err := kindFor("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := run("ramp", 1, 0.001, 7, path, 20000); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_s,voltage_v\n") {
		t.Fatalf("csv: %.40q", string(data))
	}
	back, err := trace.ReadCSV(strings.NewReader(string(data)), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.SamplesV) < 500 {
		t.Fatalf("%d samples", len(back.SamplesV))
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run("ramp", 0, 0.001, 7, "", 20000); err == nil {
		t.Error("zero duration accepted")
	}
	if err := run("nope", 1, 0.001, 7, "", 20000); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("ramp", 1, 0.001, 7, "", -5); err == nil {
		t.Error("negative resistance accepted")
	}
}
