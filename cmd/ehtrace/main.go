// Command ehtrace generates and inspects the synthetic RF voltage
// traces that drive the §V-B characterization: the three shapes the
// paper describes (spikes, ramp, multipeak), rendered as ASCII and
// optionally written to CSV for reuse or replacement with real
// recordings.
//
// Example:
//
//	ehtrace -kind spikes -seconds 10 -csv spikes.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ehmodel/internal/energy"
	"ehmodel/internal/textplot"
	"ehmodel/internal/trace"
)

func main() {
	kind := flag.String("kind", "multipeak", "trace shape: spikes, ramp, multipeak")
	seconds := flag.Float64("seconds", 10, "trace duration")
	period := flag.Float64("period", 1e-3, "sample period in seconds")
	seed := flag.Int64("seed", 42, "generator seed")
	csvPath := flag.String("csv", "", "write the trace to this CSV file")
	resistance := flag.Float64("r", 20000, "transducer resistance for the power summary (Ω)")
	flag.Parse()

	if err := run(*kind, *seconds, *period, *seed, *csvPath, *resistance); err != nil {
		fmt.Fprintln(os.Stderr, "ehtrace:", err)
		os.Exit(1)
	}
}

func kindFor(name string) (trace.Kind, error) {
	for _, k := range trace.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown trace kind %q", name)
}

func run(kindName string, seconds, period float64, seed int64, csvPath string, resistance float64) error {
	if seconds <= 0 || period <= 0 {
		return fmt.Errorf("duration and period must be positive")
	}
	kind, err := kindFor(kindName)
	if err != nil {
		return err
	}
	tr := trace.Generate(kind, seconds, period, seed)
	st := tr.Stats()

	// downsample for the ASCII rendering
	const plotPoints = 144
	var xs, ys []float64
	n := len(tr.SamplesV)
	for i := 0; i < plotPoints; i++ {
		idx := i * n / plotPoints
		xs = append(xs, float64(idx)*tr.PeriodS)
		ys = append(ys, tr.SamplesV[idx])
	}
	fmt.Print(textplot.Chart(
		fmt.Sprintf("%s trace: voltage (V) over time (s)", kind),
		[]textplot.Series{{Label: kind.String(), Xs: xs, Ys: ys}}, 72, 16, false))

	h, err := energy.NewHarvester(tr, resistance, 0.7)
	if err != nil {
		return err
	}
	var meanP, peakP float64
	for i := 0; i < n; i++ {
		p := h.PowerAt(float64(i) * tr.PeriodS)
		meanP += p
		if p > peakP {
			peakP = p
		}
	}
	meanP /= float64(n)

	fmt.Println()
	fmt.Print(textplot.Table(
		[]string{"quantity", "value"},
		[][]string{
			{"samples", fmt.Sprint(n)},
			{"duration", fmt.Sprintf("%.3g s", tr.Duration())},
			{"voltage min/mean/max", fmt.Sprintf("%.2f / %.2f / %.2f V", st.MinV, st.MeanV, st.MaxV)},
			{"harvest power mean", fmt.Sprintf("%.3g W (R=%.3g Ω, η=0.7)", meanP, resistance)},
			{"harvest power peak", fmt.Sprintf("%.3g W", peakP)},
			{"MSP430 active draw", "1.05–1.2 mW for comparison"},
		}))

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", csvPath)
	}
	return nil
}
