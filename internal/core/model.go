package core

import (
	"fmt"
	"math"
)

// DeadModel selects how the model fills in τ_D, the number of dead cycles
// executed after the last backup of an active period (Eq. 6).
type DeadModel int

const (
	// DeadAverage is the paper's default: τ_D = τ_B/2.
	DeadAverage DeadModel = iota
	// DeadBest assumes a backup lands exactly at the end of the active
	// period: τ_D = 0. Upper bound on progress.
	DeadBest
	// DeadWorst assumes the period ends just before the next backup:
	// τ_D = τ_B. Lower bound on progress.
	DeadWorst
)

func (d DeadModel) String() string {
	switch d {
	case DeadAverage:
		return "average"
	case DeadBest:
		return "best"
	case DeadWorst:
		return "worst"
	}
	return fmt.Sprintf("DeadModel(%d)", int(d))
}

// TauD returns the dead cycles this model assumes for a given τ_B.
func (d DeadModel) TauD(tauB float64) float64 {
	switch d {
	case DeadBest:
		return 0
	case DeadWorst:
		return tauB
	default:
		return tauB / 2
	}
}

// Breakdown is the model's full output: where the active period's energy
// goes (Eq. 1) and the resulting progress.
type Breakdown struct {
	EP   float64 // energy spent on forward progress (Eq. 2)
	EB   float64 // energy per backup (Eq. 4)
	NB   float64 // number of backups in the period (Eq. 3)
	ED   float64 // dead energy (Eq. 5)
	ER   float64 // restore energy (Eq. 7)
	TauP float64 // cycles of forward progress
	TauD float64 // dead cycles assumed
	P    float64 // forward progress p = ε·τ_P/E (Eq. 8)
}

// Residual returns E − (e_P + n_B·e_B + e_D + e_R), which Eq. 1 requires
// to be zero. It is exposed so tests and callers can confirm the closed
// form is energy-balanced.
func (b Breakdown) Residual(e float64) float64 {
	return e - (b.EP + b.NB*b.EB + b.ED + b.ER)
}

// EnergyPerBackup returns e_B of Eq. 4: the effective per-byte cost of
// nonvolatile writes times the architectural plus accumulated application
// state saved in one backup.
func (pr Params) EnergyPerBackup() float64 {
	return pr.wB() * (pr.AB + pr.AlphaB*pr.TauB)
}

// RestoreEnergy returns e_R of Eq. 7 for a given number of dead cycles:
// restoring fixed architectural state plus cleaning up τ_D cycles of
// uncommitted work.
func (pr Params) RestoreEnergy(tauD float64) float64 {
	return pr.wR() * (pr.AR + pr.AlphaR*tauD)
}

// DeadEnergy returns e_D of Eq. 5.
func (pr Params) DeadEnergy(tauD float64) float64 {
	return pr.epsEff() * tauD
}

// Progress evaluates Eq. 8 with the average dead-cycle assumption
// (τ_D = τ_B/2). This is the model's headline output p ∈ [0, 1) for
// ε_C = 0 (p can exceed 1 as ε_C → ε, since charging during the active
// period adds energy beyond E).
func (pr Params) Progress() float64 {
	return pr.ProgressDead(DeadAverage)
}

// ProgressDead evaluates Eq. 8 under a chosen dead-cycle model.
func (pr Params) ProgressDead(d DeadModel) float64 {
	return pr.ProgressAtTauD(d.TauD(pr.TauB))
}

// ProgressAtTauD evaluates Eq. 8 for an explicit τ_D. Results are clamped
// below at 0: parameter regimes where overheads exceed the supply make no
// forward progress rather than negative progress.
func (pr Params) ProgressAtTauD(tauD float64) float64 {
	b := pr.BreakdownAtTauD(tauD)
	return b.P
}

// ProgressBounds returns the best-case (τ_D = 0) and worst-case
// (τ_D = τ_B) progress, the dashed bounds of the paper's Fig. 4/Fig. 5.
func (pr Params) ProgressBounds() (lo, hi float64) {
	return pr.ProgressDead(DeadWorst), pr.ProgressDead(DeadBest)
}

// Breakdown computes the full energy breakdown with the average
// dead-cycle assumption.
func (pr Params) Breakdown() Breakdown {
	return pr.BreakdownAtTauD(DeadAverage.TauD(pr.TauB))
}

// BreakdownAtTauD computes the full energy breakdown for an explicit τ_D,
// solving Eq. 1 for τ_P:
//
//	τ_P = (E − e_D − e_R) / ((ε − ε_C) + e_B/τ_B)
//
// which is algebraically identical to the paper's Eq. 8 once expressed as
// p = ε·τ_P/E.
func (pr Params) BreakdownAtTauD(tauD float64) Breakdown {
	eB := pr.EnergyPerBackup()
	eD := pr.DeadEnergy(tauD)
	eR := pr.RestoreEnergy(tauD)
	denom := pr.epsEff() + eB/pr.TauB
	tauP := (pr.E - eD - eR) / denom
	if tauP < 0 || math.IsNaN(tauP) {
		tauP = 0
	}
	b := Breakdown{
		EB:   eB,
		NB:   tauP / pr.TauB,
		ED:   eD,
		ER:   eR,
		TauP: tauP,
		TauD: tauD,
		EP:   pr.epsEff() * tauP,
	}
	b.P = pr.Epsilon * tauP / pr.E
	return b
}

// TauP returns the cycles of forward progress per active period under the
// average dead-cycle assumption.
func (pr Params) TauP() float64 { return pr.Breakdown().TauP }

// Backups returns n_B, the expected number of backups per active period
// (Eq. 3) under the average dead-cycle assumption.
func (pr Params) Backups() float64 { return pr.Breakdown().NB }

// ActiveCycles returns the total cycles the model accounts for in one
// active period: progress, dead, backup and restore time. Backup time is
// the bytes written per backup divided by σ_B, restore time the bytes
// read divided by σ_R.
func (pr Params) ActiveCycles() float64 {
	b := pr.Breakdown()
	backupBytes := pr.AB + pr.AlphaB*pr.TauB
	restoreBytes := pr.AR + pr.AlphaR*b.TauD
	return b.TauP + b.TauD + b.NB*backupBytes/pr.SigmaB + restoreBytes/pr.SigmaR
}
