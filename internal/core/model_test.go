package core

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1)
}

func TestValidateDefault(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero E", func(p *Params) { p.E = 0 }},
		{"negative E", func(p *Params) { p.E = -1 }},
		{"zero epsilon", func(p *Params) { p.Epsilon = 0 }},
		{"negative epsilonC", func(p *Params) { p.EpsilonC = -0.1 }},
		{"zero tauB", func(p *Params) { p.TauB = 0 }},
		{"zero sigmaB", func(p *Params) { p.SigmaB = 0 }},
		{"negative omegaB", func(p *Params) { p.OmegaB = -1 }},
		{"negative AB", func(p *Params) { p.AB = -1 }},
		{"negative alphaB", func(p *Params) { p.AlphaB = -1 }},
		{"zero sigmaR", func(p *Params) { p.SigmaR = 0 }},
		{"negative omegaR", func(p *Params) { p.OmegaR = -1 }},
		{"negative AR", func(p *Params) { p.AR = -1 }},
		{"negative alphaR", func(p *Params) { p.AlphaR = -1 }},
		{"NaN E", func(p *Params) { p.E = math.NaN() }},
		{"Inf epsilon", func(p *Params) { p.Epsilon = math.Inf(1) }},
		{"charge >= drain", func(p *Params) { p.EpsilonC = 1.5 }},
		{"negative effective backup", func(p *Params) { p.EpsilonC = 0.5; p.OmegaB = 0.1; p.SigmaB = 0.2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := DefaultParams()
			c.mut(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("expected validation error for %s, got nil (%v)", c.name, p)
			}
		})
	}
}

// TestEnergyBalance verifies Eq. 1: the closed-form progress must be
// consistent with E = e_P + n_B·e_B + e_D + e_R.
func TestEnergyBalance(t *testing.T) {
	p := DefaultParams()
	for _, tauB := range []float64{0.5, 1, 2, 5, 10, 50, 99} {
		b := p.WithTauB(tauB).Breakdown()
		if b.TauP == 0 {
			continue // clamped regime: no balance to check
		}
		if r := b.Residual(p.E); !almostEq(r+p.E, p.E, 1e-12) {
			t.Errorf("τ_B=%v: energy balance residual %g", tauB, r)
		}
	}
}

// TestProgressMatchesPaperForm checks that the τ_P-based evaluation equals
// Eq. 8 written exactly as in the paper.
func TestProgressMatchesPaperForm(t *testing.T) {
	p := DefaultParams()
	p.EpsilonC = 0.2
	p.OmegaR = 0.5
	p.AR = 4
	p.AlphaR = 0.05
	for _, tauB := range []float64{1, 3, 7, 20} {
		q := p.WithTauB(tauB)
		tauD := tauB / 2
		eB := (q.OmegaB - q.EpsilonC/q.SigmaB) * (q.AB + q.AlphaB*tauB)
		eD := (q.Epsilon - q.EpsilonC) * tauD
		eR := (q.OmegaR - q.EpsilonC/q.SigmaR) * (q.AR + q.AlphaR*tauD)
		want := (1 - eD/q.E - eR/q.E) /
			((1 + eB/((q.Epsilon-q.EpsilonC)*tauB)) * (1 - q.EpsilonC/q.Epsilon))
		got := q.Progress()
		if !almostEq(got, want, 1e-12) {
			t.Errorf("τ_B=%v: Progress()=%g want Eq.8=%g", tauB, got, want)
		}
	}
}

func TestProgressBoundsOrdering(t *testing.T) {
	p := DefaultParams()
	for _, tauB := range []float64{1, 5, 20, 80} {
		q := p.WithTauB(tauB)
		lo, hi := q.ProgressBounds()
		mid := q.Progress()
		if !(lo <= mid && mid <= hi) {
			t.Errorf("τ_B=%v: bounds not ordered: lo=%g mid=%g hi=%g", tauB, lo, mid, hi)
		}
	}
}

func TestProgressClampedToZero(t *testing.T) {
	p := DefaultParams()
	p.OmegaR = 1
	p.AR = 1000 // restore alone exceeds the supply
	if got := p.Progress(); got != 0 {
		t.Fatalf("expected zero progress when restores exceed E, got %g", got)
	}
	b := p.Breakdown()
	if b.TauP != 0 || b.NB != 0 {
		t.Fatalf("expected clamped breakdown, got %+v", b)
	}
}

// TestChargingIncreasesProgress: harvesting during the active period
// always helps (ε_C < ε).
func TestChargingIncreasesProgress(t *testing.T) {
	base := DefaultParams()
	withCharge := base
	withCharge.EpsilonC = 0.3
	if withCharge.Progress() <= base.Progress() {
		t.Fatalf("charging should increase progress: %g vs %g",
			withCharge.Progress(), base.Progress())
	}
}

// TestChargingDivergence: p grows without bound as ε_C → ε (Sec. III).
func TestChargingDivergence(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for _, ec := range []float64{0, 0.5, 0.9, 0.99, 0.999} {
		q := p
		q.EpsilonC = ec
		got := q.Progress()
		if got <= prev {
			t.Fatalf("progress should increase monotonically toward divergence: ε_C=%v p=%g prev=%g", ec, got, prev)
		}
		prev = got
	}
	if prev < 10 {
		t.Fatalf("progress should far exceed 1 as ε_C→ε; got %g", prev)
	}
}

// TestReducingCostsHelps: the first takeaway of Fig. 2 — lower backup
// cost is always at least as good.
func TestReducingCostsHelps(t *testing.T) {
	p := DefaultParams()
	for _, tauB := range []float64{1, 5, 20} {
		q := p.WithTauB(tauB)
		expensive := q
		expensive.OmegaB = 10
		if expensive.Progress() > q.Progress() {
			t.Errorf("τ_B=%v: higher Ω_B should not help", tauB)
		}
	}
}

func TestDeadModelTauD(t *testing.T) {
	if got := DeadBest.TauD(10); got != 0 {
		t.Errorf("best τ_D = %g, want 0", got)
	}
	if got := DeadWorst.TauD(10); got != 10 {
		t.Errorf("worst τ_D = %g, want 10", got)
	}
	if got := DeadAverage.TauD(10); got != 5 {
		t.Errorf("average τ_D = %g, want 5", got)
	}
}

func TestDeadModelString(t *testing.T) {
	for d, want := range map[DeadModel]string{
		DeadAverage:  "average",
		DeadBest:     "best",
		DeadWorst:    "worst",
		DeadModel(9): "DeadModel(9)",
	} {
		if got := d.String(); got != want {
			t.Errorf("DeadModel(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestActiveCyclesExceedsTauP(t *testing.T) {
	p := DefaultParams()
	b := p.Breakdown()
	if ac := p.ActiveCycles(); ac <= b.TauP {
		t.Fatalf("active cycles %g should exceed progress cycles %g", ac, b.TauP)
	}
}

func TestParamsString(t *testing.T) {
	s := DefaultParams().String()
	if s == "" || len(s) < 20 {
		t.Fatalf("unexpected String(): %q", s)
	}
}

// TestBackupsCountMonotone: more time between backups means fewer
// backups per period.
func TestBackupsCountMonotone(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for _, tauB := range []float64{1, 2, 4, 8, 16} {
		nb := p.WithTauB(tauB).Backups()
		if nb >= prev {
			t.Fatalf("n_B should fall as τ_B grows: τ_B=%v n_B=%g prev=%g", tauB, nb, prev)
		}
		prev = nb
	}
}

// TestFreeBackupsFavourFrequent: as Ω_B → 0 the optimum shifts toward
// backing up every cycle (Fig. 2's second takeaway).
func TestFreeBackupsFavourFrequent(t *testing.T) {
	p := DefaultParams()
	p.OmegaB = 0
	small := p.WithTauB(0.5).Progress()
	large := p.WithTauB(50).Progress()
	if small <= large {
		t.Fatalf("free backups should favour small τ_B: p(0.5)=%g p(50)=%g", small, large)
	}
}
