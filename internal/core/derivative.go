package core

import "math"

// This file provides the sensitivity analysis of Sec. VI-C: how progress
// responds to shrinking the state that must be backed up. Closed forms
// are derived from Eq. 8 with the average dead-cycle assumption and the
// paper's derivation regime (restore cost independent of α_B and A_B);
// numeric central differences are provided for the general model and for
// cross-checking.

// DPDAlphaB returns ∂p/∂α_B: the marginal progress change per unit of
// application state backed up per cycle. It is negative — more state to
// save means less progress — and Sec. VI-C shows |∂p/∂α_B| ≥ |∂p/∂A_B|
// whenever τ_B ≥ 1, which is why reduced-precision techniques should
// target application state first.
//
// Derivation: writing p(τ) = τ(1 − aτ)/((1+c)τ + b) with a = ε'/(2E)·ε/ε',
// b = w_B·A_B/ε', c = w_B·α_B/ε' (ε' = ε − ε_C), we get
// ∂p/∂α_B = −(w_B/ε')·τ²·scale/((1+c)τ + b)² with the same normalization
// Eq. 8 applies. The implementation differentiates Eq. 8 directly.
func (pr Params) DPDAlphaB() float64 {
	epsEff := pr.epsEff()
	tau := pr.TauB
	tauD := DeadAverage.TauD(tau)
	num := 1 - pr.DeadEnergy(tauD)/pr.E - pr.RestoreEnergy(tauD)/pr.E
	if num < 0 {
		return 0
	}
	charge := 1 - pr.EpsilonC/pr.Epsilon
	// p = num / ((1 + w_B(A_B + α_B τ)/(ε' τ))·charge); only the
	// denominator depends on α_B.
	den := 1 + pr.wB()*(pr.AB+pr.AlphaB*tau)/(epsEff*tau)
	dDen := pr.wB() * tau / (epsEff * tau) // ∂den/∂α_B = w_B/ε'
	return -num * dDen / (den * den * charge)
}

// DPDAB returns ∂p/∂A_B: the marginal progress change per byte of
// compulsory architectural state saved on every backup.
func (pr Params) DPDAB() float64 {
	epsEff := pr.epsEff()
	tau := pr.TauB
	tauD := DeadAverage.TauD(tau)
	num := 1 - pr.DeadEnergy(tauD)/pr.E - pr.RestoreEnergy(tauD)/pr.E
	if num < 0 {
		return 0
	}
	charge := 1 - pr.EpsilonC/pr.Epsilon
	den := 1 + pr.wB()*(pr.AB+pr.AlphaB*tau)/(epsEff*tau)
	dDen := pr.wB() / (epsEff * tau) // ∂den/∂A_B = w_B/(ε' τ)
	return -num * dDen / (den * den * charge)
}

// DPDEB returns ∂p/∂e_B treating the per-backup energy as an independent
// knob (Sec. IV-A3). Negative: cheaper backups mean more progress.
func (pr Params) DPDEB() float64 {
	epsEff := pr.epsEff()
	tauD := DeadAverage.TauD(pr.TauB)
	num := 1 - pr.DeadEnergy(tauD)/pr.E - pr.RestoreEnergy(tauD)/pr.E
	if num < 0 {
		return 0
	}
	charge := 1 - pr.EpsilonC/pr.Epsilon
	den := 1 + pr.EnergyPerBackup()/(epsEff*pr.TauB)
	return -num / (den * den * charge * epsEff * pr.TauB)
}

// DPDER returns ∂p/∂e_R treating the restore energy as an independent
// knob (Sec. IV-A3). Negative: cheaper restores mean more progress. At
// τ_B = TauBBreakEven the two sensitivities are equal; beyond it,
// restores dominate.
func (pr Params) DPDER() float64 {
	charge := 1 - pr.EpsilonC/pr.Epsilon
	den := 1 + pr.EnergyPerBackup()/(pr.epsEff()*pr.TauB)
	return -1 / (pr.E * den * charge)
}

// NumericPartial computes a central-difference estimate of ∂p/∂x where
// set installs the perturbed value of the chosen parameter. It evaluates
// the full model (no derivation assumptions), making it the ground truth
// the closed forms are tested against.
func (pr Params) NumericPartial(set func(*Params, float64), base float64) float64 {
	h := 1e-6 * (math.Abs(base) + 1)
	lo, hi := pr, pr
	set(&lo, base-h)
	set(&hi, base+h)
	return (hi.Progress() - lo.Progress()) / (2 * h)
}
