package core

import "math"

// compulsoryRatio returns the ratio the paper identifies as governing the
// optimal backup cadence:
//
//	Ω_B·A_B / (Ω_B·α_B + ε)
//
// The numerator is the compulsory energy per backup; the denominator the
// energy proportional to work done since the last backup (Sec. IV-A1).
func (pr Params) compulsoryRatio() float64 {
	return pr.OmegaB * pr.AB / (pr.OmegaB*pr.AlphaB + pr.Epsilon)
}

// TauBOpt returns the optimal time between backups for the average
// dead-cycle case (Eq. 9):
//
//	τ_B,opt = R·(√(2·(E/ε)·(1/R) + 1) − 1),  R = Ω_B·A_B/(Ω_B·α_B + ε)
//
// The closed form is exact under the paper's derivation assumptions
// (ε_C = 0 and restore cost independent of τ_B); TauBOptNumeric maximizes
// the full model when those assumptions do not hold. With A_B = 0 there
// is no interior optimum — progress is monotonically non-increasing in
// τ_B (Fig. 3) — and TauBOpt returns 0, meaning "back up as often as
// possible".
func (pr Params) TauBOpt() float64 {
	r := pr.compulsoryRatio()
	if r == 0 {
		return 0
	}
	return r * (math.Sqrt(2*(pr.E/pr.Epsilon)/r+1) - 1)
}

// TauBOptWorstCase returns the optimal time between backups when
// designing for the worst-case dead cycles τ_D = τ_B (Eq. 10):
//
//	τ_B,opt(wc) = R·(√((E/ε)·(1/R) + 1) − 1)
//
// The paper's takeaway: τ_B,opt(wc) < τ_B,opt always, so tail-latency
// designs should back up more often than average-case designs.
func (pr Params) TauBOptWorstCase() float64 {
	r := pr.compulsoryRatio()
	if r == 0 {
		return 0
	}
	return r * (math.Sqrt((pr.E/pr.Epsilon)/r+1) - 1)
}

// TauBBit returns the time between backups at which reducing the
// bit-precision of application state yields the largest progress gain,
// i.e. the argmax of |∂p/∂α_B| over τ_B (Eq. 16):
//
//	τ_B,bit = (3/2)·R·(√((16/9)·(E/ε)·(1/R) + 1) − 1)
func (pr Params) TauBBit() float64 {
	r := pr.compulsoryRatio()
	if r == 0 {
		return 0
	}
	return 1.5 * r * (math.Sqrt((16.0/9.0)*(pr.E/pr.Epsilon)/r+1) - 1)
}

// TauBBreakEven returns the time between backups at which optimizing the
// backup cost and optimizing the restore cost are equally profitable,
// ∂p/∂e_B = ∂p/∂e_R (Eq. 11):
//
//	τ_B,be = (2/3)·(E − e_B − e_R)/ε
//
// Below the break-even point architects should reduce backup cost; above
// it, restore cost (Sec. IV-A3). e_B and e_R are evaluated at the
// receiver's current τ_B with average dead cycles.
func (pr Params) TauBBreakEven() float64 {
	eB := pr.EnergyPerBackup()
	eR := pr.RestoreEnergy(DeadAverage.TauD(pr.TauB))
	be := (2.0 / 3.0) * (pr.E - eB - eR) / pr.Epsilon
	if be < 0 {
		return 0
	}
	return be
}

// TauBOptNumeric maximizes the full Eq. 8 progress over τ_B by golden-
// section search under the given dead-cycle model, honouring charging and
// τ_D-dependent restore costs that the closed forms neglect. The search
// covers τ_B ∈ [lo, hi]; it returns the argmax. The objective is
// unimodal in the model's physical regimes.
func (pr Params) TauBOptNumeric(d DeadModel, lo, hi float64) float64 {
	if lo <= 0 {
		lo = 1e-9
	}
	f := func(tauB float64) float64 {
		return pr.WithTauB(tauB).ProgressDead(d)
	}
	return goldenMax(f, lo, hi, 1e-10)
}

// goldenMax locates the maximum of a unimodal f on [lo, hi] to a relative
// interval tolerance tol via golden-section search.
func goldenMax(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (√5 − 1)/2
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 400 && (b-a) > tol*(math.Abs(a)+math.Abs(b)+1e-300); i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
