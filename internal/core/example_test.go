package core_test

import (
	"fmt"

	"ehmodel/internal/core"
)

// The paper's headline computation: how much of each active period's
// energy becomes useful work at a given backup cadence.
func ExampleParams_Progress() {
	p := core.DefaultParams() // E=100, ε=1, τ_B=10, Ω_B=A_B=1, α_B=0.1
	fmt.Printf("p = %.4f\n", p.Progress())
	lo, hi := p.ProgressBounds()
	fmt.Printf("bounds = [%.4f, %.4f]\n", lo, hi)
	// Output:
	// p = 0.7917
	// bounds = [0.7500, 0.8333]
}

// Eq. 9: the backup interval that maximizes forward progress.
func ExampleParams_TauBOpt() {
	p := core.DefaultParams()
	opt := p.TauBOpt()
	fmt.Printf("τ_B,opt = %.2f cycles\n", opt)
	fmt.Printf("p at opt = %.4f\n", p.WithTauB(opt).Progress())
	// Output:
	// τ_B,opt = 12.61 cycles
	// p at opt = 0.7945
}

// Eq. 11: whether to spend engineering effort on the backup or the
// restore path.
func ExampleParams_TauBBreakEven() {
	p := core.DefaultParams()
	fmt.Printf("break-even at τ_B = %.2f cycles\n", p.TauBBreakEven())
	// Output:
	// break-even at τ_B = 65.33 cycles
}

// Eq. 15: size a circular buffer so a Clank-style architecture backs up
// at its optimal interval.
func ExampleOptimalCircularBuffer() {
	arch := core.DefaultParams()
	arch.E = 10000 // a larger supply: τ_B,opt ≈ 128 cycles
	plan, err := core.OptimalCircularBuffer(64, 10, arch.TauBOpt(), 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("N = %d slots (power of two: %d)\n", plan.N, plan.NPow2)
	// Output:
	// N = 76 slots (power of two: 128)
}

// Eq. 12: a single-backup (Hibernus-style) system's progress estimate.
func ExampleParams_ProgressSingleBackup() {
	p := core.DefaultParams()
	fmt.Printf("single-backup p = %.4f\n", p.ProgressSingleBackup())
	// Output:
	// single-backup p = 0.9000
}

// Inverse modeling: fit the identifiable curve to a measured sweep and
// read off the optimal cadence.
func ExampleFitSweep() {
	truth := core.DefaultParams()
	var pts []core.SweepPoint
	for _, tb := range []float64{2, 5, 10, 20, 40, 80} {
		pts = append(pts, core.SweepPoint{X: tb, P: truth.WithTauB(tb).Progress()})
	}
	fc, err := core.FitSweep(pts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted τ_B,opt = %.1f cycles\n", fc.TauBOpt())
	// Output:
	// fitted τ_B,opt = 12.6 cycles
}
