package core

import (
	"math"
	"testing"
)

// transposeLocality builds the matrix-transpose scenario of Listing 1:
// equal read and write footprints, 4-byte accesses, 32-byte cache blocks.
func transposeLocality() LocalityParams {
	m := DefaultParams()
	m.AlphaB = 0.5 // bytes written back per cycle
	return LocalityParams{
		Model:     m,
		AlphaLoad: 0.5, // equal read footprint
		SigmaLoad: 1,
		BetaBlock: 32,
		BetaLoad:  4,
		BetaStore: 4,
	}
}

func TestLocalityValidate(t *testing.T) {
	lp := transposeLocality()
	if err := lp.Validate(); err != nil {
		t.Fatalf("valid locality params rejected: %v", err)
	}
	bad := lp
	bad.BetaLoad = 64
	if err := bad.Validate(); err == nil {
		t.Fatal("access wider than block should be rejected")
	}
	bad = lp
	bad.SigmaLoad = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero load bandwidth should be rejected")
	}
	bad = lp
	bad.AlphaLoad = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative load footprint should be rejected")
	}
}

// TestEqualFootprintsEqualBandwidth: the paper's takeaway for the
// transpose example — with equal footprints and σ_load = σ_B, load-major
// and store-major perform identically (ratio 1, no winner).
func TestEqualFootprintsEqualBandwidth(t *testing.T) {
	lp := transposeLocality()
	if lp.StoreMajorWins() {
		t.Error("store-major should not win with symmetric footprints and bandwidths")
	}
	if fr := lp.FootprintRatio(); !almostEq(fr, 1, 1e-12) {
		t.Errorf("footprint ratio should be 1 for the transpose example, got %g", fr)
	}
}

// TestSlowWritesFavourStoreMajor: with STT-RAM-like 10× slower writes
// (σ_B = σ_load/10), store-major ordering wins (Sec. VI-A).
func TestSlowWritesFavourStoreMajor(t *testing.T) {
	lp := transposeLocality()
	lp.Model.SigmaB = lp.SigmaLoad / 10
	if !lp.StoreMajorWins() {
		t.Error("store-major should win when NVM writes are 10× slower")
	}
}

// TestWriteHeavyFavoursStoreMajor: a larger write footprint than read
// footprint triggers condition 1 of Eq. 14.
func TestWriteHeavyFavoursStoreMajor(t *testing.T) {
	lp := transposeLocality()
	lp.Model.AlphaB = 2 * lp.AlphaLoad
	if !lp.StoreMajorWins() {
		t.Error("store-major should win for write-heavy workloads")
	}
}

// TestOverheadRatioConsistentWithWinner: Eq. 13's full ratio must agree
// in direction with Eq. 14's simplified condition.
func TestOverheadRatioConsistentWithWinner(t *testing.T) {
	cases := []func(*LocalityParams){
		func(lp *LocalityParams) {},                                      // symmetric
		func(lp *LocalityParams) { lp.Model.SigmaB = lp.SigmaLoad / 10 }, // slow writes
		func(lp *LocalityParams) { lp.Model.AlphaB = 4 * lp.AlphaLoad },  // write heavy
		func(lp *LocalityParams) { lp.AlphaLoad = 4 * lp.Model.AlphaB },  // read heavy
		func(lp *LocalityParams) { lp.Model.SigmaB = lp.SigmaLoad * 10 }, // fast writes
	}
	for i, mut := range cases {
		lp := transposeLocality()
		mut(&lp)
		ratio := lp.OverheadRatio()
		wins := lp.StoreMajorWins()
		if wins && ratio <= 1 {
			t.Errorf("case %d: Eq.14 says store-major wins but Eq.13 ratio = %g", i, ratio)
		}
		if !wins && ratio > 1+1e-9 {
			t.Errorf("case %d: Eq.14 says no win but Eq.13 ratio = %g", i, ratio)
		}
	}
}

// TestLoadMajorPenaltyGrowsWithBlockSize: bigger cache blocks amplify the
// dirty-data inflation of load-major ordering.
func TestLoadMajorPenaltyGrowsWithBlockSize(t *testing.T) {
	lp := transposeLocality()
	lp.Model.SigmaB = lp.SigmaLoad / 10 // regime where backups dominate
	prev := 0.0
	for i, block := range []float64{8, 16, 32, 64, 128} {
		lp.BetaBlock = block
		r := lp.OverheadRatio()
		if i > 0 && r <= prev {
			t.Errorf("β_block=%v: ratio %g should exceed previous %g", block, r, prev)
		}
		prev = r
	}
}

func TestOverheadRatioFinite(t *testing.T) {
	lp := transposeLocality()
	r := lp.OverheadRatio()
	if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
		t.Fatalf("ratio should be a positive finite number, got %g", r)
	}
}
