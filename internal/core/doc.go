// Package core implements the EH model, an analytical model for early
// design-space exploration of intermittent (energy-harvesting) processor
// architectures, as published in:
//
//	J. San Miguel, K. Ganesan, M. Badr, C. Xia, R. Li, H. Hsiao and
//	N. Enright Jerger, "The EH Model: Early Design Space Exploration of
//	Intermittent Processor Architectures", MICRO 2018.
//
// The model estimates forward progress p — the fraction of an active
// period's energy supply E spent on useful execution rather than on
// backups, restores and dead (re-executed) computation:
//
//	E = e_P + n_B·e_B + e_D + e_R                          (Eq. 1)
//	e_P = (ε − ε_C)·τ_P                                    (Eq. 2)
//	n_B = τ_P / τ_B                                        (Eq. 3)
//	e_B = (Ω_B − ε_C/σ_B)·(A_B + α_B·τ_B)                  (Eq. 4)
//	e_D = (ε − ε_C)·τ_D                                    (Eq. 5)
//	τ_D = τ_B/2 on average, 0 ≤ τ_D ≤ τ_B                  (Eq. 6)
//	e_R = (Ω_R − ε_C/σ_R)·(A_R + α_R·τ_D)                  (Eq. 7)
//	p = ε·τ_P/E  (closed form in Eq. 8)
//
// Parameter glossary (Table I of the paper):
//
//	General
//	  E    (J)        energy supply per active period          E > 0
//	  ε    (J/cycle)  execution energy per cycle               ε > 0
//	  ε_C  (J/cycle)  charging energy per cycle                ε_C ≥ 0
//	Backup
//	  τ_B  (cycles)   time between backups                     τ_B > 0
//	  σ_B  (B/cycle)  memory backup bandwidth                  σ_B > 0
//	  Ω_B  (J/B)      backup energy cost                       Ω_B ≥ 0
//	  A_B  (B)        architectural state per backup           A_B ≥ 0
//	  α_B  (B/cycle)  application state per backup             α_B ≥ 0
//	Restore
//	  σ_R  (B/cycle)  memory restore bandwidth                 σ_R > 0
//	  Ω_R  (J/B)      restore energy cost                      Ω_R ≥ 0
//	  A_R  (B)        architectural state per restore          A_R ≥ 0
//	  α_R  (B/cycle)  application state per restore            α_R ≥ 0
//	Output
//	  τ_P  (cycles)   time spent on forward progress
//	  p = ε·τ_P/E     fraction of E spent on forward progress
//
// Beyond the progress estimate, the package provides the paper's derived
// design-space results: the optimal time between backups for the average
// (Eq. 9) and worst case (Eq. 10), the backup-vs-restore break-even point
// (Eq. 11), the single-backup progress estimate (Eq. 12), the store-major
// cache-locality condition (Eqs. 13–14), circular-buffer sizing for
// idempotency-driven architectures such as Clank (Eq. 15), and the
// reduced-bit-precision sweet spot (Eq. 16).
package core
