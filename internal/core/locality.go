package core

import (
	"errors"
	"fmt"
)

// Store-major locality (Sec. VI-A). In intermittent systems with a
// volatile (or mixed-volatility) cache, every dirty cache block must be
// written back to nonvolatile memory on a backup, and dirtiness is
// tracked at block granularity. A loop nest ordered for load locality
// therefore scatters its stores across β_block/β_store times more blocks
// than a store-major ordering, inflating backup traffic — a trade-off
// that does not exist on conventional architectures.

// LocalityParams parametrizes Eqs. 13–14.
type LocalityParams struct {
	Model Params // the underlying EH configuration (τ_B, α_B, σ_B, …)

	AlphaLoad float64 // bytes read by the application per cycle
	SigmaLoad float64 // NVM load bandwidth (bytes/cycle)
	BetaBlock float64 // cache block size (bytes)
	BetaLoad  float64 // bytes per load instruction
	BetaStore float64 // bytes per store instruction
}

// Validate checks the locality-specific domains; the embedded model
// parameters are validated separately by Params.Validate.
func (lp LocalityParams) Validate() error {
	if lp.AlphaLoad < 0 {
		return fmt.Errorf("%w: α_load = %v", ErrNegative, lp.AlphaLoad)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"σ_load", lp.SigmaLoad},
		{"β_block", lp.BetaBlock},
		{"β_load", lp.BetaLoad},
		{"β_store", lp.BetaStore},
	} {
		if c.v <= 0 {
			return fmt.Errorf("%w: %s = %v", ErrNonPositive, c.name, c.v)
		}
	}
	if lp.BetaLoad > lp.BetaBlock || lp.BetaStore > lp.BetaBlock {
		return errors.New("ehmodel: access width exceeds cache block size")
	}
	return nil
}

// OverheadRatio evaluates Eq. 13: the ratio of memory-overhead cycles of
// a load-major loop to a store-major loop,
//
//	τ_lm/τ_sm = (α_load·τ_P/σ_load + (β_block/β_store)·n_B·α_B·τ_B/σ_B)
//	            ───────────────────────────────────────────────────────
//	            ((β_block/β_load)·α_load·τ_P/σ_load + n_B·α_B·τ_B/σ_B)
//
// A ratio above 1 means store-major ordering is faster on this
// intermittent configuration.
func (lp LocalityParams) OverheadRatio() float64 {
	m := lp.Model
	b := m.Breakdown()
	loadCycles := lp.AlphaLoad * b.TauP / lp.SigmaLoad
	backupCycles := b.NB * m.AlphaB * m.TauB / m.SigmaB
	num := loadCycles + (lp.BetaBlock/lp.BetaStore)*backupCycles
	den := (lp.BetaBlock/lp.BetaLoad)*loadCycles + backupCycles
	return num / den
}

// StoreMajorWins evaluates the simplified condition of Eq. 14:
//
//	α_B·(β_block/β_store − 1)        σ_B
//	────────────────────────────  >  ──────
//	α_load·(β_block/β_load − 1)      σ_load
//
// i.e. store-major ordering helps when the application's write footprint
// outweighs its read footprint, or when NVM backup bandwidth is poor
// relative to read bandwidth (e.g. STT-RAM writes ~10× slower than
// reads).
func (lp LocalityParams) StoreMajorWins() bool {
	lhs := lp.Model.AlphaB * (lp.BetaBlock/lp.BetaStore - 1)
	rhs := lp.AlphaLoad * (lp.BetaBlock/lp.BetaLoad - 1) * lp.SigmaB() / lp.SigmaLoad
	return lhs > rhs
}

// SigmaB exposes the backup bandwidth of the embedded model so callers
// of the locality analysis need not reach through two levels.
func (lp LocalityParams) SigmaB() float64 { return lp.Model.SigmaB }

// FootprintRatio returns the left-hand side of Eq. 14 divided by the
// dirty-vs-load footprint normalizer — a single scalar architects can
// compare against σ_B/σ_load to see how far a workload is from the
// crossover.
func (lp LocalityParams) FootprintRatio() float64 {
	return lp.Model.AlphaB * (lp.BetaBlock/lp.BetaStore - 1) /
		(lp.AlphaLoad * (lp.BetaBlock/lp.BetaLoad - 1))
}
