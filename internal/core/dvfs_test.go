package core

import (
	"testing"
	"testing/quick"
)

// TestEpsilonReductionAlwaysHelps: the paper's Eq. 2 remark — reducing
// ε is always beneficial (gain > 1) — but gains stay sub-linear
// because NVM-bound backup energy does not scale with core voltage.
// With free backups, scaling is exactly linear.
func TestEpsilonReductionAlwaysHelps(t *testing.T) {
	p := DefaultParams()
	for _, factor := range []float64{0.9, 0.75, 0.5, 0.25} {
		gain := p.ScaleEpsilonGain(factor)
		if gain <= 1 {
			t.Errorf("factor %g: gain %g — reducing ε must always help", factor, gain)
		}
		if gain >= 1/factor {
			t.Errorf("factor %g: gain %g should be sub-linear (< %g) with costly backups",
				factor, gain, 1/factor)
		}
	}
	// with free backups only the dead-energy effect remains, so the
	// gain turns (slightly) super-linear
	free := p
	free.OmegaB, free.OmegaR = 0, 0
	for _, factor := range []float64{0.5, 0.25} {
		if gain := free.ScaleEpsilonGain(factor); gain < 1/factor {
			t.Errorf("free backups, factor %g: gain %g should be ≥ %g", factor, gain, 1/factor)
		}
	}
}

func TestScaleEpsilonGainDegenerate(t *testing.T) {
	p := DefaultParams()
	if got := p.ScaleEpsilonGain(0); got != 0 {
		t.Errorf("zero factor: %g", got)
	}
	p.EpsilonC = 0.5
	if got := p.ScaleEpsilonGain(0.4); got != 0 {
		t.Errorf("scaling below ε_C should be rejected: %g", got)
	}
	clamped := DefaultParams()
	clamped.OmegaR = 1
	clamped.AR = 1000 // zero-progress regime
	if got := clamped.ScaleEpsilonGain(0.5); got != 0 {
		t.Errorf("zero-progress base should yield 0, got %g", got)
	}
}

func TestSweepEpsilonMonotoneTauP(t *testing.T) {
	p := DefaultParams()
	values := []float64{2, 1.5, 1, 0.75, 0.5}
	prevTauP := 0.0
	for _, v := range values {
		q := p
		q.Epsilon = v
		tauP := q.Breakdown().TauP
		if tauP <= prevTauP {
			t.Fatalf("ε=%g: τ_P %g did not grow as ε fell (prev %g)", v, tauP, prevTauP)
		}
		prevTauP = tauP
	}
	pts := p.SweepEpsilon(values, DeadAverage)
	if len(pts) != len(values) {
		t.Fatalf("sweep length %d", len(pts))
	}
}

// TestPropSpendthriftBound: no dead-cycle outcome beats the perfect
// speculator's bound.
func TestPropSpendthriftBound(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		bound := p.SpendthriftBound()
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if p.ProgressAtTauD(frac*p.TauB) > bound+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
