package core

import "math"

// Single-backup systems (Sec. IV-B) — e.g. Hibernus, QuickRecall and
// threshold-triggered nonvolatile processors — invoke exactly one backup
// per active period, just before the supply dies. The model degenerates
// to τ_B = τ_P and τ_D = 0.

// ProgressSingleBackup evaluates Eq. 12:
//
//	p = (1 − (Ω_B − ε_C/σ_B)·A_B/E − e_R/E)
//	    ───────────────────────────────────────────────
//	    (1 + (Ω_B − ε_C/σ_B)·α_B/(ε − ε_C))·(1 − ε_C/ε)
//
// The compulsory architectural cost becomes a one-time cost (numerator)
// while the application-state cost, which accrues over the whole active
// period, scales the denominator. τ_B is ignored. Restore energy is
// evaluated at τ_D = 0 (no dead execution to clean up).
func (pr Params) ProgressSingleBackup() float64 {
	num := 1 - pr.wB()*pr.AB/pr.E - pr.RestoreEnergy(0)/pr.E
	if num < 0 {
		return 0
	}
	den := (1 + pr.wB()*pr.AlphaB/pr.epsEff()) * (1 - pr.EpsilonC/pr.Epsilon)
	return num / den
}

// SingleBackupBreakdown returns the full energy accounting for a
// single-backup system by solving the balance of Eq. 1 with n_B = 1,
// e_B = w_B·(A_B + α_B·τ_P) and τ_D = 0 exactly (a fixed point in τ_P,
// solved in closed form):
//
//	E − e_R = (ε − ε_C)·τ_P + w_B·(A_B + α_B·τ_P)
//	τ_P = (E − e_R − w_B·A_B) / (ε − ε_C + w_B·α_B)
//
// Eq. 12 is this expression re-normalized; the two agree exactly.
func (pr Params) SingleBackupBreakdown() Breakdown {
	eR := pr.RestoreEnergy(0)
	tauP := (pr.E - eR - pr.wB()*pr.AB) / (pr.epsEff() + pr.wB()*pr.AlphaB)
	if tauP < 0 || math.IsNaN(tauP) {
		tauP = 0
	}
	b := Breakdown{
		EB:   pr.wB() * (pr.AB + pr.AlphaB*tauP),
		NB:   1,
		ED:   0,
		ER:   eR,
		TauP: tauP,
		TauD: 0,
		EP:   pr.epsEff() * tauP,
	}
	if tauP == 0 {
		b.NB = 0
		b.EB = 0
	}
	b.P = pr.Epsilon * tauP / pr.E
	return b
}

// MonitorOverhead scales a single-backup progress estimate by the cost of
// continuously monitoring the supply voltage for imminent power loss.
// The paper notes ADC-based monitoring can cost up to 40% of the energy
// budget (Sec. IV-B); overhead is that fraction in [0, 1).
func MonitorOverhead(p, overhead float64) float64 {
	if overhead < 0 {
		overhead = 0
	}
	if overhead >= 1 {
		return 0
	}
	return p * (1 - overhead)
}
