package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomParams draws a physically valid configuration from generator
// values. The ranges cover several decades around the paper's regimes.
func randomParams(r *rand.Rand) Params {
	exp := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	p := Params{
		E:        exp(1, 1e6),
		Epsilon:  exp(1e-3, 10),
		EpsilonC: 0,
		TauB:     exp(0.1, 1e5),
		SigmaB:   exp(0.1, 100),
		OmegaB:   exp(1e-4, 100),
		AB:       exp(0.1, 1000),
		AlphaB:   exp(1e-4, 10),
		SigmaR:   exp(0.1, 100),
		OmegaR:   exp(1e-4, 100),
		AR:       exp(0.1, 1000),
		AlphaR:   exp(1e-4, 10),
	}
	// half the draws get charging, capped safely below ε
	if r.Intn(2) == 0 {
		p.EpsilonC = r.Float64() * 0.9 * p.Epsilon
		// keep effective backup/restore costs non-negative
		if p.wB() < 0 {
			p.OmegaB = p.EpsilonC/p.SigmaB + exp(1e-6, 1)
		}
		if p.wR() < 0 {
			p.OmegaR = p.EpsilonC/p.SigmaR + exp(1e-6, 1)
		}
	}
	return p
}

// quickCfg returns the shared configuration: parameters are generated
// through randomParams rather than raw struct fuzzing so every case is
// physically valid.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randomParams(r))
			}
		},
	}
}

// Property: the closed form always satisfies the Eq. 1 energy balance.
func TestPropEnergyBalance(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true // skip rare invalid draws
		}
		b := p.Breakdown()
		if b.TauP == 0 {
			return true // clamped: no balance claimed
		}
		return almostEq(b.Residual(p.E)+p.E, p.E, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: progress is never negative and, without charging, never
// exceeds 1 (you cannot commit more work than the energy supply allows).
func TestPropProgressRange(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		pNoCharge := p
		pNoCharge.EpsilonC = 0
		got := pNoCharge.Progress()
		return got >= 0 && got <= 1+1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: best-case ≥ average ≥ worst-case progress for every valid
// configuration (Fig. 4's bounds).
func TestPropDeadCycleBounds(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		lo, hi := p.ProgressBounds()
		mid := p.Progress()
		return lo <= mid+1e-12 && mid <= hi+1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: progress is monotone non-increasing in each overhead
// parameter (Ω_B, A_B, α_B, Ω_R, A_R, α_R).
func TestPropMonotoneInOverheads(t *testing.T) {
	muts := map[string]func(*Params){
		"OmegaB": func(p *Params) { p.OmegaB *= 2 },
		"AB":     func(p *Params) { p.AB = p.AB*2 + 1 },
		"AlphaB": func(p *Params) { p.AlphaB = p.AlphaB*2 + 0.01 },
		"OmegaR": func(p *Params) { p.OmegaR *= 2 },
		"AR":     func(p *Params) { p.AR = p.AR*2 + 1 },
		"AlphaR": func(p *Params) { p.AlphaR = p.AlphaR*2 + 0.01 },
	}
	for name, mut := range muts {
		f := func(p Params) bool {
			if err := p.Validate(); err != nil {
				return true
			}
			worse := p
			mut(&worse)
			return worse.Progress() <= p.Progress()+1e-12
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: τ_B,opt(wc) < τ_B,opt whenever there is an interior optimum.
func TestPropWorstCaseOptBelowAverage(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil || p.compulsoryRatio() == 0 {
			return true
		}
		return p.TauBOptWorstCase() < p.TauBOpt()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: the Sec. VI-C dominance result — |∂p/∂α_B| ≥ |∂p/∂A_B| for
// τ_B ≥ 1, regardless of the sizes of architectural/application state.
func TestPropAlphaBSensitivityDominates(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		if p.TauB < 1 {
			p.TauB += 1
		}
		return math.Abs(p.DPDAlphaB()) >= math.Abs(p.DPDAB())-1e-15
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: closed-form derivatives match numeric central differences of
// the full model (in the regime where restore cost is τ_D-independent,
// which the closed forms assume).
func TestPropDerivativesMatchNumeric(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		p.AlphaR = 0 // closed forms assume restore independent of τ_D
		if p.Progress() <= 0 || p.Progress() >= 1e3 {
			return true // clamped or divergent regimes have no smooth derivative
		}
		gotA := p.DPDAlphaB()
		wantA := p.NumericPartial(func(q *Params, v float64) { q.AlphaB = v }, p.AlphaB)
		if !almostEq(gotA, wantA, 1e-3) {
			return false
		}
		gotB := p.DPDAB()
		wantB := p.NumericPartial(func(q *Params, v float64) { q.AB = v }, p.AB)
		return almostEq(gotB, wantB, 1e-3)
	}
	cfg := quickCfg()
	cfg.MaxCount = 300
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: single-backup closed form (Eq. 12) equals the exact energy-
// balance solution.
func TestPropSingleBackupConsistency(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		b := p.SingleBackupBreakdown()
		return almostEq(b.P, p.ProgressSingleBackup(), 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: single-backup progress is an upper bound on the same
// configuration's multi-backup progress whenever the multi-backup τ_B is
// no longer than the single-backup active time (single backup avoids all
// dead energy and pays the compulsory cost once).
func TestPropSingleBackupBeatsFrequentMulti(t *testing.T) {
	f := func(p Params) bool {
		if err := p.Validate(); err != nil {
			return true
		}
		single := p.ProgressSingleBackup()
		multi := p.Progress()
		// Only claim dominance when multi pays at least one full backup
		// within its active period.
		if b := p.Breakdown(); b.NB < 1 {
			return true
		}
		return single >= multi-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
