package core

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the EH model inputs of Table I. The zero value is not
// usable; construct via a composite literal and call Validate, or start
// from DefaultParams and adjust.
type Params struct {
	// General parameters.
	E        float64 // energy supply per active period (J), > 0
	Epsilon  float64 // execution energy per cycle (J/cycle), > 0
	EpsilonC float64 // charging energy per cycle (J/cycle), ≥ 0

	// Backup parameters.
	TauB   float64 // time between backups (cycles), > 0
	SigmaB float64 // memory backup bandwidth (bytes/cycle), > 0
	OmegaB float64 // backup energy cost (J/byte), ≥ 0
	AB     float64 // architectural state per backup (bytes), ≥ 0
	AlphaB float64 // application state per backup (bytes/cycle), ≥ 0

	// Restore parameters.
	SigmaR float64 // memory restore bandwidth (bytes/cycle), > 0
	OmegaR float64 // restore energy cost (J/byte), ≥ 0
	AR     float64 // architectural state per restore (bytes), ≥ 0
	AlphaR float64 // application state per restore (bytes/cycle), ≥ 0
}

// DefaultParams returns the illustrative configuration the paper uses for
// its exploration figures (Figs. 2–4): E=100, ε=1 (i.e., execution energy
// is 1% of the supply), unit backup cost and architectural state,
// α_B = 0.1 bytes/cycle, free restores, no charging, unit bandwidths.
func DefaultParams() Params {
	return Params{
		E:        100,
		Epsilon:  1,
		EpsilonC: 0,
		TauB:     10,
		SigmaB:   1,
		OmegaB:   1,
		AB:       1,
		AlphaB:   0.1,
		SigmaR:   1,
		OmegaR:   0,
		AR:       0,
		AlphaR:   0,
	}
}

// Errors returned by Validate.
var (
	ErrNonPositive    = errors.New("ehmodel: parameter must be > 0")
	ErrNegative       = errors.New("ehmodel: parameter must be ≥ 0")
	ErrNotFinite      = errors.New("ehmodel: parameter must be finite")
	ErrChargeExceeds  = errors.New("ehmodel: charging rate ε_C must be < execution rate ε")
	ErrNegativeBackup = errors.New("ehmodel: effective backup cost Ω_B − ε_C/σ_B is negative")
)

// Validate reports whether the parameters satisfy the domain constraints
// of Table I plus the model's well-formedness conditions (ε_C < ε so that
// the capacitor actually drains, and non-negative effective backup and
// restore costs so energy flows are physical).
func (pr Params) Validate() error {
	type check struct {
		name string
		v    float64
		pos  bool // must be strictly positive
	}
	checks := []check{
		{"E", pr.E, true},
		{"ε", pr.Epsilon, true},
		{"ε_C", pr.EpsilonC, false},
		{"τ_B", pr.TauB, true},
		{"σ_B", pr.SigmaB, true},
		{"Ω_B", pr.OmegaB, false},
		{"A_B", pr.AB, false},
		{"α_B", pr.AlphaB, false},
		{"σ_R", pr.SigmaR, true},
		{"Ω_R", pr.OmegaR, false},
		{"A_R", pr.AR, false},
		{"α_R", pr.AlphaR, false},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("%w: %s = %v", ErrNotFinite, c.name, c.v)
		}
		if c.pos && c.v <= 0 {
			return fmt.Errorf("%w: %s = %v", ErrNonPositive, c.name, c.v)
		}
		if !c.pos && c.v < 0 {
			return fmt.Errorf("%w: %s = %v", ErrNegative, c.name, c.v)
		}
	}
	if pr.EpsilonC >= pr.Epsilon {
		return fmt.Errorf("%w: ε_C = %v, ε = %v", ErrChargeExceeds, pr.EpsilonC, pr.Epsilon)
	}
	if pr.wB() < 0 {
		return fmt.Errorf("%w: Ω_B = %v, ε_C/σ_B = %v", ErrNegativeBackup, pr.OmegaB, pr.EpsilonC/pr.SigmaB)
	}
	if pr.wR() < 0 {
		return fmt.Errorf("%w (restore): Ω_R = %v, ε_C/σ_R = %v", ErrNegativeBackup, pr.OmegaR, pr.EpsilonC/pr.SigmaR)
	}
	return nil
}

// wB is the effective per-byte backup cost Ω_B − ε_C/σ_B: writing a byte
// costs Ω_B but the charger contributes ε_C for each of the 1/σ_B cycles
// the write occupies (Eq. 4).
func (pr Params) wB() float64 { return pr.OmegaB - pr.EpsilonC/pr.SigmaB }

// wR is the effective per-byte restore cost Ω_R − ε_C/σ_R (Eq. 7).
func (pr Params) wR() float64 { return pr.OmegaR - pr.EpsilonC/pr.SigmaR }

// epsEff is the effective per-cycle drain ε − ε_C during execution.
func (pr Params) epsEff() float64 { return pr.Epsilon - pr.EpsilonC }

// WithTauB returns a copy of the parameters with the time between backups
// replaced. It is the sweep variable of most of the paper's figures.
func (pr Params) WithTauB(tauB float64) Params {
	pr.TauB = tauB
	return pr
}

// String renders the parameters compactly for logs and experiment headers.
func (pr Params) String() string {
	return fmt.Sprintf(
		"EH{E=%g ε=%g ε_C=%g | τ_B=%g σ_B=%g Ω_B=%g A_B=%g α_B=%g | σ_R=%g Ω_R=%g A_R=%g α_R=%g}",
		pr.E, pr.Epsilon, pr.EpsilonC,
		pr.TauB, pr.SigmaB, pr.OmegaB, pr.AB, pr.AlphaB,
		pr.SigmaR, pr.OmegaR, pr.AR, pr.AlphaR)
}
