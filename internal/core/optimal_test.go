package core

import (
	"math"
	"testing"
)

// TestTauBOptMatchesNumericArgmax: Eq. 9's closed form must coincide with
// a brute-force maximization of Eq. 8 in the derivation regime
// (ε_C = 0, Ω_R = 0).
func TestTauBOptMatchesNumericArgmax(t *testing.T) {
	for _, omegaB := range []float64{0.01, 0.1, 1, 10} {
		p := DefaultParams()
		p.OmegaB = omegaB
		closed := p.TauBOpt()
		numeric := p.TauBOptNumeric(DeadAverage, 1e-6, 2*p.E/p.Epsilon)
		if !almostEq(closed, numeric, 1e-4) {
			t.Errorf("Ω_B=%v: Eq.9 gives %g, numeric argmax %g", omegaB, closed, numeric)
		}
	}
}

func TestTauBOptWorstCaseMatchesNumeric(t *testing.T) {
	for _, omegaB := range []float64{0.1, 1, 10} {
		p := DefaultParams()
		p.OmegaB = omegaB
		closed := p.TauBOptWorstCase()
		numeric := p.TauBOptNumeric(DeadWorst, 1e-6, 2*p.E/p.Epsilon)
		if !almostEq(closed, numeric, 1e-4) {
			t.Errorf("Ω_B=%v: Eq.10 gives %g, numeric argmax %g", omegaB, closed, numeric)
		}
	}
}

// TestWorstCaseOptLessThanAverage: the paper's key takeaway from Eq. 10 —
// τ_B,opt(wc) < τ_B,opt, always.
func TestWorstCaseOptLessThanAverage(t *testing.T) {
	for _, omegaB := range []float64{0.01, 0.1, 1, 10, 100} {
		for _, ab := range []float64{0.5, 1, 10, 100} {
			p := DefaultParams()
			p.OmegaB = omegaB
			p.AB = ab
			if wc, avg := p.TauBOptWorstCase(), p.TauBOpt(); wc >= avg {
				t.Errorf("Ω_B=%v A_B=%v: worst-case opt %g not below average opt %g",
					omegaB, ab, wc, avg)
			}
		}
	}
}

// TestNoSweetSpotWithoutArchState: with A_B = 0 progress is monotonically
// non-increasing in τ_B (Fig. 3) and TauBOpt reports 0.
func TestNoSweetSpotWithoutArchState(t *testing.T) {
	p := DefaultParams()
	p.AB = 0
	if got := p.TauBOpt(); got != 0 {
		t.Fatalf("A_B=0 should have no interior optimum, got τ_B,opt=%g", got)
	}
	prev := math.Inf(1)
	for _, tauB := range LogSpace(0.01, 100, 60) {
		cur := p.WithTauB(tauB).Progress()
		if cur > prev+1e-12 {
			t.Fatalf("progress increased with τ_B at %v (A_B=0): %g > %g", tauB, cur, prev)
		}
		prev = cur
	}
}

// TestZeroArchStateLimit: with A_B = 0 the exact Eq. 8 limit as τ_B → 0
// is 1/(1 + Ω_B·α_B/ε); the paper's idealized claim lim p = 1
// (Sec. IV-A1) is recovered as the proportional backup cost Ω_B·α_B
// becomes negligible against ε.
func TestZeroArchStateLimit(t *testing.T) {
	p := DefaultParams()
	p.AB = 0
	got := p.WithTauB(1e-9).Progress()
	want := 1 / (1 + p.OmegaB*p.AlphaB/p.Epsilon)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("lim τ_B→0 p with A_B=0: got %g, want %g", got, want)
	}
	p.OmegaB = 1e-6 // negligible proportional cost → paper's idealized limit
	if got := p.WithTauB(1e-9).Progress(); math.Abs(got-1) > 1e-4 {
		t.Fatalf("idealized limit should approach 1, got %g", got)
	}
}

func TestTauBBitMatchesNumericArgmax(t *testing.T) {
	for _, omegaB := range []float64{0.1, 1, 10} {
		p := DefaultParams()
		p.OmegaB = omegaB
		closed := p.TauBBit()
		// numerically maximize |dp/dαB| over τ_B
		f := func(tauB float64) float64 {
			return math.Abs(p.WithTauB(tauB).DPDAlphaB())
		}
		numeric := goldenMax(f, 1e-6, 2*p.E/p.Epsilon, 1e-10)
		if !almostEq(closed, numeric, 1e-3) {
			t.Errorf("Ω_B=%v: Eq.16 gives %g, numeric argmax %g", omegaB, closed, numeric)
		}
	}
}

// TestTauBBitExceedsTauBOpt: comparing Eq. 16 with Eq. 9, the precision
// sweet spot lies beyond the progress sweet spot (coefficients 3/2 and
// 16/9 vs 1 and 2 — algebra gives τ_B,bit > τ_B,opt for R > 0).
func TestTauBBitExceedsTauBOpt(t *testing.T) {
	for _, omegaB := range []float64{0.1, 1, 10} {
		p := DefaultParams()
		p.OmegaB = omegaB
		if bit, opt := p.TauBBit(), p.TauBOpt(); bit <= opt {
			t.Errorf("Ω_B=%v: τ_B,bit=%g should exceed τ_B,opt=%g", omegaB, bit, opt)
		}
	}
}

// TestBreakEvenEqualizesSensitivities: at τ_B = τ_B,be, ∂p/∂e_B equals
// ∂p/∂e_R (Eq. 11's defining property).
func TestBreakEvenEqualizesSensitivities(t *testing.T) {
	p := DefaultParams()
	// fixed-point iteration: e_B depends on τ_B, so iterate to the
	// self-consistent break-even point
	tauB := p.TauB
	for i := 0; i < 200; i++ {
		tauB = p.WithTauB(tauB).TauBBreakEven()
	}
	q := p.WithTauB(tauB)
	dEB, dER := q.DPDEB(), q.DPDER()
	if !almostEq(dEB, dER, 1e-6) {
		t.Fatalf("at break-even τ_B=%g: ∂p/∂e_B=%g ∂p/∂e_R=%g", tauB, dEB, dER)
	}
}

// TestBreakEvenSides: below break-even, backup optimization dominates
// (|∂p/∂e_B| > |∂p/∂e_R|); above, restore optimization dominates.
func TestBreakEvenSides(t *testing.T) {
	p := DefaultParams()
	tauB := p.TauB
	for i := 0; i < 200; i++ {
		tauB = p.WithTauB(tauB).TauBBreakEven()
	}
	below := p.WithTauB(tauB * 0.5)
	if math.Abs(below.DPDEB()) <= math.Abs(below.DPDER()) {
		t.Errorf("below break-even, backup sensitivity should dominate")
	}
	above := p.WithTauB(tauB * 1.5)
	if math.Abs(above.DPDEB()) >= math.Abs(above.DPDER()) {
		t.Errorf("above break-even, restore sensitivity should dominate")
	}
}

func TestTauBBreakEvenClampsAtZero(t *testing.T) {
	p := DefaultParams()
	p.AB = 1000 // e_B alone exceeds E
	if got := p.TauBBreakEven(); got != 0 {
		t.Fatalf("break-even should clamp at 0 when overheads exceed E, got %g", got)
	}
}

func TestGoldenMaxFindsParabolaPeak(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3.7) * (x - 3.7) }
	got := goldenMax(f, -10, 10, 1e-12)
	if math.Abs(got-3.7) > 1e-6 {
		t.Fatalf("golden section found %g, want 3.7", got)
	}
}

func TestTauBOptZeroRatioVariants(t *testing.T) {
	p := DefaultParams()
	p.OmegaB = 0
	for name, f := range map[string]func() float64{
		"TauBOpt":          p.TauBOpt,
		"TauBOptWorstCase": p.TauBOptWorstCase,
		"TauBBit":          p.TauBBit,
	} {
		if got := f(); got != 0 {
			t.Errorf("%s with Ω_B=0: got %g, want 0", name, got)
		}
	}
}
