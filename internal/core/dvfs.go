package core

// Voltage/frequency scaling analysis (§III, discussion of Eq. 2; the
// Spendthrift case the paper cites). Reducing the per-cycle execution
// energy ε — by duty-cycling sensors or scaling voltage/frequency —
// is always beneficial for forward progress: more cycles fit the same
// supply, and every overhead term shrinks relative to the work
// committed.

// SweepEpsilon evaluates progress across execution-energy values
// (holding everything else fixed), the ε counterpart of SweepTauB.
// Values must satisfy ε > ε_C.
func (pr Params) SweepEpsilon(values []float64, d DeadModel) []SweepPoint {
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		q := pr
		q.Epsilon = v
		out = append(out, SweepPoint{X: v, P: q.ProgressDead(d)})
	}
	return out
}

// ScaleEpsilonGain returns the work gained by scaling execution energy
// to factor·ε (factor < 1 models DVFS savings), measured in committed
// cycles per period — the quantity a deadline-driven sensing
// application cares about:
//
//	gain = τ_P(factor·ε) / τ_P(ε)
//
// The EH model shows the gain is always above 1 (cheaper cycles always
// help, the paper's Eq. 2 remark), shaped by two opposing effects:
// NVM-bound checkpoint energy does not scale with core voltage and
// drags the gain below 1/factor, while dead-energy savings (τ_D cycles
// also got cheaper) push it above. With the paper's default costs the
// backup drag dominates and scaling is sub-linear; with free backups
// the dead-energy effect makes it slightly super-linear.
func (pr Params) ScaleEpsilonGain(factor float64) float64 {
	if factor <= 0 || factor*pr.Epsilon <= pr.EpsilonC {
		return 0
	}
	scaled := pr
	scaled.Epsilon = pr.Epsilon * factor
	base := pr.Breakdown().TauP
	if base == 0 {
		return 0
	}
	return scaled.Breakdown().TauP / base
}

// SpendthriftBound returns the upper bound on progress achievable by a
// perfect dead-energy speculator (§IV-A2): a system that always lands
// its last backup exactly at the end of the active period achieves the
// best-case dead cycles τ_D = 0. Speculative schedulers like
// Spendthrift approach, but cannot exceed, this bound.
func (pr Params) SpendthriftBound() float64 {
	return pr.ProgressDead(DeadBest)
}
