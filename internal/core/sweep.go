package core

import "math"

// SweepPoint is one evaluated configuration in a parameter sweep.
type SweepPoint struct {
	X float64 // the swept parameter value
	P float64 // progress at that value
}

// SweepTauB evaluates progress across times-between-backups, the x-axis
// of the paper's Figs. 2–4. Values must be positive.
func (pr Params) SweepTauB(values []float64, d DeadModel) []SweepPoint {
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		out = append(out, SweepPoint{X: v, P: pr.WithTauB(v).ProgressDead(d)})
	}
	return out
}

// SweepOmegaB evaluates progress across backup energy costs, the family
// parameter of Fig. 2.
func (pr Params) SweepOmegaB(values []float64, d DeadModel) []SweepPoint {
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		q := pr
		q.OmegaB = v
		out = append(out, SweepPoint{X: v, P: q.ProgressDead(d)})
	}
	return out
}

// LogSpace returns n values logarithmically spaced over [lo, hi]
// inclusive. It is the canonical x-axis generator for the τ_B sweeps,
// which span several decades. n must be ≥ 2 and 0 < lo < hi.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		t := float64(i) / float64(n-1)
		out[i] = math.Exp(llo + t*(lhi-llo))
	}
	out[0], out[n-1] = lo, hi // exact endpoints despite rounding
	return out
}

// LinSpace returns n values linearly spaced over [lo, hi] inclusive.
// n must be ≥ 2 and hi > lo.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return nil
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// ArgmaxP returns the sweep point with the highest progress; useful for
// locating the empirical sweet spot against TauBOpt. Returns a zero
// point for an empty sweep.
func ArgmaxP(points []SweepPoint) SweepPoint {
	var best SweepPoint
	for i, pt := range points {
		if i == 0 || pt.P > best.P {
			best = pt
		}
	}
	return best
}
