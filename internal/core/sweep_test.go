package core

import (
	"math"
	"testing"
)

func TestLogSpace(t *testing.T) {
	v := LogSpace(0.1, 1000, 5)
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	if v[0] != 0.1 || v[4] != 1000 {
		t.Errorf("endpoints %v, %v not exact", v[0], v[4])
	}
	for i := 1; i < len(v); i++ {
		ratio := v[i] / v[i-1]
		if !almostEq(ratio, 10, 1e-9) {
			t.Errorf("step %d ratio = %g, want 10", i, ratio)
		}
	}
	if LogSpace(0, 10, 5) != nil || LogSpace(10, 1, 5) != nil || LogSpace(1, 10, 1) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestLinSpace(t *testing.T) {
	v := LinSpace(0, 10, 6)
	want := []float64{0, 2, 4, 6, 8, 10}
	for i := range want {
		if !almostEq(v[i], want[i], 1e-12) {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if LinSpace(5, 5, 3) != nil || LinSpace(0, 1, 1) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestSweepTauBShape(t *testing.T) {
	p := DefaultParams()
	xs := LogSpace(0.1, 100, 50)
	pts := p.SweepTauB(xs, DeadAverage)
	if len(pts) != len(xs) {
		t.Fatalf("len = %d, want %d", len(pts), len(xs))
	}
	for i, pt := range pts {
		if pt.X != xs[i] {
			t.Errorf("point %d x = %g, want %g", i, pt.X, xs[i])
		}
		if math.IsNaN(pt.P) || pt.P < 0 {
			t.Errorf("point %d p = %g out of range", i, pt.P)
		}
	}
}

// TestSweepPeakNearTauBOpt: the empirical argmax of a fine τ_B sweep must
// straddle the closed-form optimum.
func TestSweepPeakNearTauBOpt(t *testing.T) {
	p := DefaultParams()
	xs := LogSpace(0.01, 200, 4000)
	best := ArgmaxP(p.SweepTauB(xs, DeadAverage))
	opt := p.TauBOpt()
	if math.Abs(best.X-opt)/opt > 0.02 {
		t.Fatalf("sweep peak at %g, closed form at %g", best.X, opt)
	}
}

func TestSweepOmegaBMonotone(t *testing.T) {
	p := DefaultParams()
	pts := p.SweepOmegaB([]float64{0.01, 0.1, 1, 10}, DeadAverage)
	for i := 1; i < len(pts); i++ {
		if pts[i].P > pts[i-1].P {
			t.Errorf("progress should fall with Ω_B: %v then %v", pts[i-1], pts[i])
		}
	}
}

func TestArgmaxPEmpty(t *testing.T) {
	got := ArgmaxP(nil)
	if got.X != 0 || got.P != 0 {
		t.Fatalf("empty argmax should be zero point, got %+v", got)
	}
}

func TestMonitorOverhead(t *testing.T) {
	if got := MonitorOverhead(0.8, 0.4); !almostEq(got, 0.48, 1e-12) {
		t.Errorf("40%% ADC overhead on 0.8: got %g, want 0.48", got)
	}
	if got := MonitorOverhead(0.8, 0); got != 0.8 {
		t.Errorf("no overhead: got %g", got)
	}
	if got := MonitorOverhead(0.8, -1); got != 0.8 {
		t.Errorf("negative overhead clamps: got %g", got)
	}
	if got := MonitorOverhead(0.8, 1); got != 0 {
		t.Errorf("total overhead: got %g, want 0", got)
	}
}
