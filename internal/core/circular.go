package core

import (
	"fmt"
	"math"
)

// Circular buffers for idempotency (Sec. VI-B). On architectures like
// Clank, a store to a location read since the last checkpoint (a
// write-after-read idempotency violation) forces a backup. Storing an
// array of n elements in a circular buffer of N ≥ n slots postpones the
// violation: on average N − n + 1 stores separate consecutive violations,
// so the buffer size is a software knob for the backup cadence.

// CircularBufferPlan is the outcome of sizing a circular buffer against a
// target backup period.
type CircularBufferPlan struct {
	N          int     // chosen buffer size (slots)
	NPow2      int     // N rounded up to a power of two (cheap modular indexing)
	StoresBetw float64 // stores between violations, N − n + 1 (+w with a write-back buffer)
	TauB       float64 // resulting cycles between backups
	Target     float64 // the τ_B the plan aimed for
}

// StoresBetweenViolations returns the average number of stores to the
// array between idempotency violations for buffer size N, array size n
// and a hardware write-back buffer of w entries: N − n + 1 + w
// (footnote 4 of the paper). N = n is the conventional, violate-every-
// iteration case; N = 2n is double buffering.
func StoresBetweenViolations(bufN, arrayN, writeback int) float64 {
	s := float64(bufN - arrayN + 1 + writeback)
	if s < 1 {
		return 1
	}
	return s
}

// OptimalCircularBuffer solves Eq. 15 for the buffer size N_opt that
// matches the architecture's optimal backup period:
//
//	(N_opt − n + 1)·τ_store = τ_B,opt
//
// where tauStore is the average cycles between store instructions
// (obtained by profiling) and tauBOpt typically comes from
// Params.TauBOpt. writeback is the size of a hardware write-back buffer
// (0 if none). The returned plan reports both the exact N and its
// power-of-two rounding.
func OptimalCircularBuffer(arrayN int, tauStore, tauBOpt float64, writeback int) (CircularBufferPlan, error) {
	if arrayN <= 0 {
		return CircularBufferPlan{}, fmt.Errorf("%w: array size n = %d", ErrNonPositive, arrayN)
	}
	if tauStore <= 0 {
		return CircularBufferPlan{}, fmt.Errorf("%w: τ_store = %v", ErrNonPositive, tauStore)
	}
	if tauBOpt < 0 {
		return CircularBufferPlan{}, fmt.Errorf("%w: τ_B,opt = %v", ErrNegative, tauBOpt)
	}
	stores := tauBOpt / tauStore
	n := int(math.Round(stores)) + arrayN - 1 - writeback
	if n < arrayN {
		n = arrayN // cannot shrink below the array itself
	}
	plan := CircularBufferPlan{
		N:          n,
		NPow2:      nextPow2(n),
		StoresBetw: StoresBetweenViolations(n, arrayN, writeback),
		Target:     tauBOpt,
	}
	plan.TauB = plan.StoresBetw * tauStore
	return plan, nil
}

// nextPow2 returns the smallest power of two ≥ v (and ≥ 1).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
