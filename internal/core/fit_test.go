package core

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticSweep generates (τ_B, p) points from known parameters in the
// fit's regime, optionally with multiplicative noise.
func syntheticSweep(p Params, noise float64, seed int64) []SweepPoint {
	rng := rand.New(rand.NewSource(seed))
	var pts []SweepPoint
	for _, tb := range LogSpace(1, 2*p.E/p.Epsilon, 30) {
		v := p.WithTauB(tb).Progress()
		if noise > 0 {
			v *= 1 + noise*rng.NormFloat64()
		}
		pts = append(pts, SweepPoint{X: tb, P: v})
	}
	return pts
}

func TestFitSweepRecoversCoefficients(t *testing.T) {
	p := DefaultParams() // a=0.005, b=1, c=0.1, r=0
	fc, err := FitSweep(syntheticSweep(p, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Residual > 1e-4 {
		t.Fatalf("residual %g on noiseless data", fc.Residual)
	}
	// identifiable combinations of the generator
	a := p.Epsilon / (2 * p.E)
	b := p.OmegaB * p.AB / p.Epsilon
	c := p.OmegaB * p.AlphaB / p.Epsilon
	wantS := 1 / (1 + c)
	wantA := a
	wantB := b / (1 + c)
	if math.Abs(fc.S-wantS)/wantS > 0.02 {
		t.Errorf("S = %g, want %g", fc.S, wantS)
	}
	if math.Abs(fc.A-wantA)/wantA > 0.05 {
		t.Errorf("Ã = %g, want %g", fc.A, wantA)
	}
	if math.Abs(fc.B-wantB)/wantB > 0.10 {
		t.Errorf("B̃ = %g, want %g", fc.B, wantB)
	}
	// the fitted curve's optimum must match the generator's
	if opt := fc.TauBOpt(); math.Abs(opt-p.TauBOpt())/p.TauBOpt() > 0.05 {
		t.Errorf("fitted τ_B,opt %g, want %g", opt, p.TauBOpt())
	}
	// and decomposing at the true r recovers the physical coefficients
	ga, gb, gc, err := fc.Decompose(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ga-a)/a > 0.05 || math.Abs(gb-b)/b > 0.10 || math.Abs(gc-c) > 0.03 {
		t.Errorf("decomposed (%g, %g, %g), want (%g, %g, %g)", ga, gb, gc, a, b, c)
	}
}

func TestFitSweepWithNoise(t *testing.T) {
	p := DefaultParams()
	fc, err := FitSweep(syntheticSweep(p, 0.02, 7))
	if err != nil {
		t.Fatal(err)
	}
	// 2% multiplicative noise: the optimum should still land within 20%
	if opt := fc.TauBOpt(); math.Abs(opt-p.TauBOpt())/p.TauBOpt() > 0.20 {
		t.Errorf("noisy fit τ_B,opt %g, want ≈%g", opt, p.TauBOpt())
	}
	if fc.Residual <= 0 {
		t.Error("noise should leave a residual")
	}
}

// TestFitSweepRestoreDegeneracy documents why the fit is three-
// parameter: a restore fraction r and a proportional cost c that
// produce the same (S, Ã, B̃) are indistinguishable from sweep data,
// and Decompose maps the fit onto whichever r the caller pins.
func TestFitSweepRestoreDegeneracy(t *testing.T) {
	withRestore := DefaultParams()
	withRestore.OmegaR = 1
	withRestore.AR = 10 // r = 0.1
	fc, err := FitSweep(syntheticSweep(withRestore, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Residual > 1e-4 {
		t.Fatalf("residual %g: the 3-parameter form must fit the r>0 curve", fc.Residual)
	}
	// decomposing with the true r recovers the generator's c = 0.1
	_, _, c, err := fc.Decompose(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.1) > 0.03 {
		t.Errorf("c = %g at true r, want 0.1", c)
	}
	// decomposing with r = 0 folds the restore loss into a larger c —
	// consistent by construction, larger than the true value
	_, _, cAt0, err := fc.Decompose(0)
	if err != nil {
		t.Fatal(err)
	}
	if cAt0 <= c {
		t.Errorf("folding restores into c should enlarge it: %g vs %g", cAt0, c)
	}
}

func TestFitSweepErrors(t *testing.T) {
	if _, err := FitSweep(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := FitSweep([]SweepPoint{{X: 1, P: 0.5}, {X: 2, P: 0.5}}); err == nil {
		t.Error("two points accepted")
	}
	bad := []SweepPoint{{X: -1, P: 0.5}, {X: 1, P: 0.5}, {X: 2, P: 0.5}}
	if _, err := FitSweep(bad); err == nil {
		t.Error("nonpositive τ_B accepted")
	}
}

func TestDecomposeErrors(t *testing.T) {
	fc := FitCoefficients{S: 0.9, A: 0.01, B: 1}
	if _, _, _, err := fc.Decompose(-0.1); err == nil {
		t.Error("negative r accepted")
	}
	if _, _, _, err := fc.Decompose(1); err == nil {
		t.Error("r = 1 accepted")
	}
	// r so large that (1−r)/S < 1 implies negative c
	if _, _, _, err := fc.Decompose(0.5); err == nil {
		t.Error("inconsistent r accepted")
	}
	bad := FitCoefficients{S: 0}
	if _, _, _, err := bad.Decompose(0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestFitCoefficientsEvalClamps(t *testing.T) {
	fc := FitCoefficients{S: 0.9, A: 0.1, B: 1}
	if fc.Eval(100) != 0 {
		t.Error("overdrawn regime should clamp to 0")
	}
	if fc.Eval(5) <= 0 {
		t.Error("interior point should be positive")
	}
	if (FitCoefficients{}).TauBOpt() != 0 {
		t.Error("degenerate coefficients should have no optimum")
	}
}

func TestFitCoefficientsParams(t *testing.T) {
	p := DefaultParams()
	fc, err := FitSweep(syntheticSweep(p, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := fc.Params(p.E, p.Epsilon, 0)
	if err != nil {
		t.Fatal(err)
	}
	// the materialized model must reproduce the original progress curve
	for _, tb := range []float64{2, 10, 50} {
		want := p.WithTauB(tb).Progress()
		got := mat.WithTauB(tb).Progress()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("τ_B=%g: materialized p %g, want %g", tb, got, want)
		}
	}
	if _, err := fc.Params(p.E, p.Epsilon, 0.99); err == nil {
		t.Error("inconsistent restore fraction accepted")
	}
}
