package core

import "testing"

func TestStoresBetweenViolations(t *testing.T) {
	// N = n: conventional case, violation every store (plus write-back w).
	if got := StoresBetweenViolations(100, 100, 0); got != 1 {
		t.Errorf("N=n: got %g, want 1", got)
	}
	// N = 2n: double buffering.
	if got := StoresBetweenViolations(200, 100, 0); got != 101 {
		t.Errorf("N=2n: got %g, want 101", got)
	}
	// Write-back buffer adds w (footnote 4).
	if got := StoresBetweenViolations(100, 100, 8); got != 9 {
		t.Errorf("w=8: got %g, want 9", got)
	}
	// Degenerate: never below one store between violations.
	if got := StoresBetweenViolations(10, 100, 0); got != 1 {
		t.Errorf("N<n: got %g, want clamp to 1", got)
	}
}

func TestOptimalCircularBufferSolvesEq15(t *testing.T) {
	// τ_B,opt = 1000 cycles, stores every 10 cycles → 100 stores between
	// violations → N = n + 99.
	plan, err := OptimalCircularBuffer(64, 10, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 64+99 {
		t.Errorf("N = %d, want %d", plan.N, 64+99)
	}
	if !almostEq(plan.TauB, 1000, 1e-9) {
		t.Errorf("resulting τ_B = %g, want 1000", plan.TauB)
	}
	if plan.NPow2 != 256 {
		t.Errorf("NPow2 = %d, want 256", plan.NPow2)
	}
}

func TestOptimalCircularBufferWritebackDiscount(t *testing.T) {
	// A hardware write-back buffer of w entries already postpones
	// violations by w stores; the software buffer shrinks accordingly.
	plain, err := OptimalCircularBuffer(64, 10, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := OptimalCircularBuffer(64, 10, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wb.N != plain.N-8 {
		t.Errorf("write-back should shave 8 slots: %d vs %d", wb.N, plain.N)
	}
	if !almostEq(wb.TauB, 1000, 1e-9) {
		t.Errorf("write-back plan τ_B = %g, want 1000", wb.TauB)
	}
}

func TestOptimalCircularBufferNeverBelowArray(t *testing.T) {
	// If the optimal cadence is "every store", the buffer cannot shrink
	// below the array itself (N = n is the conventional layout).
	plan, err := OptimalCircularBuffer(64, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 64 {
		t.Errorf("N = %d, want clamp to array size 64", plan.N)
	}
}

func TestOptimalCircularBufferErrors(t *testing.T) {
	if _, err := OptimalCircularBuffer(0, 10, 100, 0); err == nil {
		t.Error("zero array size should error")
	}
	if _, err := OptimalCircularBuffer(10, 0, 100, 0); err == nil {
		t.Error("zero τ_store should error")
	}
	if _, err := OptimalCircularBuffer(10, 10, -1, 0); err == nil {
		t.Error("negative τ_B,opt should error")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 63: 64, 64: 64, 65: 128, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestCircularBufferEndToEnd ties Eq. 9 and Eq. 15 together the way a
// programmer would: compute the architecture's τ_B,opt, then size the
// buffer to hit it.
func TestCircularBufferEndToEnd(t *testing.T) {
	arch := DefaultParams()
	arch.E = 1e4
	tauOpt := arch.TauBOpt()
	if tauOpt <= 0 {
		t.Fatal("expected interior optimum")
	}
	const tauStore = 7.0
	plan, err := OptimalCircularBuffer(128, tauStore, tauOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The achieved τ_B should land within one store period of optimal.
	if diff := plan.TauB - tauOpt; diff > tauStore || diff < -tauStore {
		t.Errorf("achieved τ_B %g misses optimum %g by more than one store period", plan.TauB, tauOpt)
	}
	// And progress at the achieved cadence should be within a hair of the
	// progress at the true optimum.
	pAt := arch.WithTauB(plan.TauB).Progress()
	pOpt := arch.WithTauB(tauOpt).Progress()
	if pAt < pOpt*0.999 {
		t.Errorf("progress at planned τ_B (%g) should be near optimal (%g)", pAt, pOpt)
	}
}
