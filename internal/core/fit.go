package core

import (
	"fmt"
	"math"

	"ehmodel/internal/stats"
)

// Inverse modeling: recover EH-model coefficients from measured
// (τ_B, p) sweep points. This is the characterization workflow run
// backwards — an architect with a handful of hardware measurements at
// different backup intervals fits the model once, then explores the
// whole design space analytically.
//
// In the paper's derivation regime (ε_C = 0, restore independent of
// τ_D) Eq. 8 collapses to
//
//	p(τ_B) = (1 − a·τ_B − r) / (1 + b/τ_B + c)
//	a = ε/(2E)   b = Ω_B·A_B/ε   c = Ω_B·α_B/ε   r = e_R/E
//
// A (τ_B, p) sweep cannot identify all four: dividing through shows
// only three combinations are observable,
//
//	p(τ_B) = S · (1 − Ã·τ_B) / (1 + B̃/τ_B)
//	S = (1−r)/(1+c)   Ã = a/(1−r)   B̃ = b/(1+c)
//
// so FitSweep recovers (S, Ã, B̃); Decompose splits them back into the
// physical coefficients once the caller pins the restore fraction r
// from an independent measurement.

// FitCoefficients are the identifiable shape parameters of a progress
// sweep.
type FitCoefficients struct {
	S float64 // overall scale (1−r)/(1+c) ∈ (0, 1]
	A float64 // Ã: dead-energy slope, a/(1−r)
	B float64 // B̃: compulsory backup cost in cycles, b/(1+c)

	// Residual is the root-mean-square error of the fit.
	Residual float64
}

// Eval reproduces the fitted progress curve.
func (fc FitCoefficients) Eval(tauB float64) float64 {
	p := fc.S * (1 - fc.A*tauB) / (1 + fc.B/tauB)
	if p < 0 {
		return 0
	}
	return p
}

// TauBOpt returns the fitted curve's optimal backup interval — Eq. 9
// expressed in the identifiable coefficients.
func (fc FitCoefficients) TauBOpt() float64 {
	if fc.A == 0 || fc.B == 0 {
		return 0
	}
	return fc.B * (math.Sqrt(1/(fc.A*fc.B)+1) - 1)
}

// Decompose splits the identifiable coefficients into the physical
// ones given the restore fraction r = e_R/E (0 when restores are free
// or measured separately).
func (fc FitCoefficients) Decompose(r float64) (a, b, c float64, err error) {
	if r < 0 || r >= 1 {
		return 0, 0, 0, fmt.Errorf("ehmodel: restore fraction %g outside [0, 1)", r)
	}
	if fc.S <= 0 {
		return 0, 0, 0, fmt.Errorf("ehmodel: non-positive fitted scale %g", fc.S)
	}
	onePlusC := (1 - r) / fc.S
	if onePlusC < 1 {
		return 0, 0, 0, fmt.Errorf("ehmodel: scale %g implies negative proportional cost at r=%g", fc.S, r)
	}
	return fc.A * (1 - r), fc.B * onePlusC, onePlusC - 1, nil
}

// Params materializes model parameters consistent with the fit for a
// chosen supply E, per-cycle energy ε and restore fraction r (the fit
// only determines shape; the caller supplies the scales).
func (fc FitCoefficients) Params(e, eps, r float64) (Params, error) {
	// The caller's (E, ε) set the scale; the backup costs follow from
	// the decomposed b and c (the decomposed slope a is implied by
	// E and ε and need not be materialized separately).
	_, b, c, err := fc.Decompose(r)
	if err != nil {
		return Params{}, err
	}
	p := DefaultParams()
	p.E = e
	p.Epsilon = eps
	p.OmegaB = 1
	p.AB = b * eps
	p.AlphaB = c * eps
	p.OmegaR = 1
	p.AR = r * e
	p.AlphaR = 0
	p.TauB = math.Max(fc.TauBOpt(), 1)
	return p, p.Validate()
}

// FitSweep fits the identifiable progress curve to measured sweep
// points by least squares (Nelder–Mead over log-transformed
// coefficients, so positivity is structural). At least three points
// are required and the sweep should straddle the progress peak.
func FitSweep(points []SweepPoint) (FitCoefficients, error) {
	if len(points) < 3 {
		return FitCoefficients{}, fmt.Errorf("ehmodel: fit needs ≥3 sweep points, have %d", len(points))
	}
	maxX := 0.0
	for _, pt := range points {
		if pt.X <= 0 {
			return FitCoefficients{}, fmt.Errorf("ehmodel: fit needs positive τ_B, have %g", pt.X)
		}
		maxX = math.Max(maxX, pt.X)
	}
	x0 := []float64{
		math.Log(0.9),        // S
		math.Log(0.5 / maxX), // Ã from the high-τ_B rolloff
		math.Log(1.0),        // B̃
	}
	obj := func(x []float64) float64 {
		fc := FitCoefficients{S: math.Exp(x[0]), A: math.Exp(x[1]), B: math.Exp(x[2])}
		var ss float64
		for _, pt := range points {
			d := fc.Eval(pt.X) - pt.P
			ss += d * d
		}
		return ss
	}
	best, val, err := stats.NelderMead(obj, x0, stats.NelderMeadOptions{MaxIter: 8000})
	if err != nil {
		return FitCoefficients{}, err
	}
	fc := FitCoefficients{S: math.Exp(best[0]), A: math.Exp(best[1]), B: math.Exp(best[2])}
	fc.Residual = math.Sqrt(val / float64(len(points)))
	return fc, nil
}
