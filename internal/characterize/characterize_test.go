package characterize

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
	"ehmodel/internal/trace"
)

func TestRunClankProducesProfile(t *testing.T) {
	r, err := RunClank(context.Background(), "ds", trace.MultiPeak, ClankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TauB.N == 0 {
		t.Fatal("no τ_B samples")
	}
	// the default configuration must span several active periods so
	// dead-cycle (τ_D) statistics exist (Fig. 9)
	if len(r.Result.Periods) < 3 {
		t.Fatalf("only %d periods; characterization needs several", len(r.Result.Periods))
	}
	if r.TauD.N == 0 {
		t.Fatal("no τ_D samples — no power failures observed")
	}
	if r.TauB.Mean <= 0 {
		t.Fatalf("mean τ_B %g", r.TauB.Mean)
	}
	// ds violates idempotency every iteration; backups must come far
	// more often than the watchdog
	if r.TauB.Mean > 2000 {
		t.Errorf("ds mean τ_B %g suspiciously large", r.TauB.Mean)
	}
	if r.Stats.Violations == 0 {
		t.Error("ds should trigger idempotency violations")
	}
}

func TestRunClankUnknownBench(t *testing.T) {
	if _, err := RunClank(context.Background(), "nope", trace.Ramp, ClankConfig{}); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

// TestTauDBoundedByTauB: dead cycles at a power failure cannot exceed
// the prevailing backup cadence by much (τ_D ≤ τ_B in the model; the
// measured analogue allows the in-flight interval).
func TestTauDBoundedByTauB(t *testing.T) {
	r, err := RunClank(context.Background(), "counter", trace.Spikes, ClankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// counter commits on violations only at loop granularity; dead
	// cycles per period should not exceed the watchdog period plus one
	// interval.
	if r.TauD.Max > 2*8000+100 {
		t.Errorf("τ_D max %g far exceeds the watchdog bound", r.TauD.Max)
	}
}

// TestTraceInsensitivity reproduces the paper's §V-B observation: τ_B
// distributions are nearly identical across trace shapes because every
// active period carries the same supply.
func TestTraceInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace characterization is slow")
	}
	runs, errs, err := TauBProfile(context.Background(), []string{"lzfx"}, ClankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Fatalf("dropped runs: %v", errs)
	}
	if len(runs) != 3 {
		t.Fatalf("expected 3 trace runs, got %d", len(runs))
	}
	base := runs[0].TauB.Mean
	for _, r := range runs[1:] {
		ratio := r.TauB.Mean / base
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("τ_B should be trace-insensitive: %v gives %g vs %g",
				r.Trace, r.TauB.Mean, base)
		}
	}
}

func TestDefaultWatchdogs(t *testing.T) {
	wds := DefaultWatchdogs()
	if len(wds) != 12 || wds[0] != 250 || wds[11] != 3000 {
		t.Fatalf("watchdog sweep wrong: %v", wds)
	}
}

func TestAlphaBProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("α_B sweep is slow")
	}
	runs, errs, err := AlphaBProfile(context.Background(), []string{"ds", "sha"}, []uint64{250, 500, 1000}, 1, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Fatalf("dropped runs: %v", errs)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	for _, r := range runs {
		if r.AlphaB.Mean <= 0 {
			t.Errorf("%s: zero α_B", r.Bench)
		}
		if r.AlphaB.Mean > 4 {
			t.Errorf("%s: α_B %g bytes/cycle implausible", r.Bench, r.AlphaB.Mean)
		}
		if len(r.PerWatchdog) != 3 {
			t.Errorf("%s: %d watchdog points", r.Bench, len(r.PerWatchdog))
		}
	}
	// ds rewrites a 16-word histogram: its unique-bytes-per-cycle should
	// exceed sha's, which only stores its digest at the end.
	if runs[0].AlphaB.Mean <= runs[1].AlphaB.Mean {
		t.Errorf("ds α_B (%g) should exceed sha α_B (%g)",
			runs[0].AlphaB.Mean, runs[1].AlphaB.Mean)
	}
}

func TestAlphaBUnknownBench(t *testing.T) {
	if _, _, err := AlphaBProfile(context.Background(), []string{"nope"}, []uint64{250}, 1, runner.Options{}); err == nil {
		t.Fatal("unknown bench accepted")
	}
}
