// Package characterize reproduces the paper's §V-B simulator
// characterization: running MiBench-like kernels on a Clank-style
// architecture fed by RF voltage traces to profile the time between
// backups τ_B (Fig. 8) and dead cycles τ_D (Fig. 9), and running the
// hypothetical mixed-volatility store-queue processor across watchdog
// settings to profile application state α_B (Fig. 10). All sweeps build
// sweep plans and run through the memoizing executor; Clank's post-run
// counters travel through the result store as cell extras.
package characterize

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// ClankConfig parametrizes the §V-B Clank runs.
type ClankConfig struct {
	// PeriodCycles sizes the capacitor so one full active period holds
	// roughly this many ALU cycles of energy (default 20000, comfortably
	// above the 8000-cycle watchdog but far below a workload's length so
	// every run spans many power failures).
	PeriodCycles float64
	// Scale is the workload problem-size multiplier (default 6, sized so
	// each benchmark crosses several active periods).
	Scale int
	// TraceSeconds is the generated trace length (default 10 s).
	TraceSeconds float64
	// HarvestR and HarvestEta configure the transducer. The default
	// 20 kΩ keeps peak harvested power below the core's draw, so the
	// supply is genuinely intermittent (ε_C < ε); smaller resistances
	// can sustain the device indefinitely during trace peaks.
	HarvestR   float64
	HarvestEta float64
	// Run configures the parallel sweep engine for the profile sweeps
	// (worker count, per-run deadline).
	Run runner.Options
}

func (c *ClankConfig) setDefaults() {
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 20000
	}
	if c.Scale == 0 {
		c.Scale = 6
	}
	if c.TraceSeconds == 0 {
		c.TraceSeconds = 10
	}
	if c.HarvestR == 0 {
		c.HarvestR = 20000
	}
	if c.HarvestEta == 0 {
		c.HarvestEta = 0.7
	}
}

// ClankRun is one benchmark × trace characterization result.
type ClankRun struct {
	Bench  string
	Trace  trace.Kind
	TauB   stats.Summary // cycles between backups
	TauD   stats.Summary // dead cycles per failed period
	Stats  strategy.ClankStats
	Result *device.Result
}

// clankCell builds the one-benchmark × trace cell behind RunClank.
// Clank's violation/overflow/watchdog counters live on the strategy, not
// the Result, so the Extras hook serializes them into the store — a
// cache hit recalls them without a strategy instance.
func clankCell(bench string, kind trace.Kind, cfg ClankConfig) sweep.Cell {
	return sweep.Cell{
		Label: fmt.Sprintf("clank %s under %v trace", bench, kind),
		Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
			cfg := cfg
			cfg.setDefaults()
			w, ok := workload.Get(bench)
			if !ok {
				return device.Config{}, nil, fmt.Errorf("characterize: unknown workload %q", bench)
			}
			prog, err := w.Build(workload.Options{Seg: asm.FRAM, Scale: cfg.Scale})
			if err != nil {
				return device.Config{}, nil, err
			}
			pm := energy.CortexM0Power() // Clank is modelled on a Cortex-M0+
			e := cfg.PeriodCycles * pm.EnergyPerCycle(energy.ClassALU)
			capC, vmax, von, voff := device.FixedSupplyConfig(e)
			tr := trace.Generate(kind, cfg.TraceSeconds, 1e-3, 7+int64(kind))
			h, err := energy.NewHarvester(tr, cfg.HarvestR, cfg.HarvestEta)
			if err != nil {
				return device.Config{}, nil, err
			}
			return device.Config{
				Prog:      prog,
				Power:     pm,
				CapC:      capC,
				CapVMax:   vmax,
				VOn:       von,
				VOff:      voff,
				Harvester: h,
			}, strategy.NewClank(), nil
		},
		Extras: func(s device.Strategy, res *device.Result) (any, error) {
			return s.(*strategy.Clank).Stats(), nil
		},
		Verify: func(res *device.Result) error {
			if !res.Completed {
				return fmt.Errorf("characterize: %s did not complete under %v (periods=%d)", bench, kind, len(res.Periods))
			}
			return nil
		},
	}
}

// clankRunFrom assembles the characterization row from a cell result,
// decoding the stored Clank counters.
func clankRunFrom(bench string, kind trace.Kind, cr *sweep.CellResult) (*ClankRun, error) {
	r := &ClankRun{
		Bench:  bench,
		Trace:  kind,
		TauB:   stats.Summarize(cr.Result.TauBSamples()),
		TauD:   stats.Summarize(cr.Result.TauDSamples()),
		Result: cr.Result,
	}
	if _, err := cr.DecodeExtras(&r.Stats); err != nil {
		return nil, fmt.Errorf("characterize: %s/%v extras: %w", bench, kind, err)
	}
	return r, nil
}

// RunClank executes one benchmark under Clank powered by the given
// trace kind and returns its τ_B/τ_D profile.
func RunClank(ctx context.Context, bench string, kind trace.Kind, cfg ClankConfig) (*ClankRun, error) {
	all, errs := sweep.Run(ctx, []sweep.Cell{clankCell(bench, kind, cfg)}, cfg.Run)
	if len(errs) > 0 {
		return nil, errs[0].Err
	}
	return clankRunFrom(bench, kind, &all[0])
}

// TauBProfile runs every benchmark across every trace kind in parallel
// — the data behind Figs. 8 and 9 — as a plan grouped per benchmark.
// Surviving rows are returned ordered benchmark-major, trace-minor
// regardless of completion order; failed runs are dropped and reported
// in errs.
func TauBProfile(ctx context.Context, benches []string, cfg ClankConfig) (out []*ClankRun, errs runner.Errors, err error) {
	if err := knownBenches(benches); err != nil {
		return nil, nil, err
	}
	kinds := trace.Kinds()
	type job struct {
		bench string
		kind  trace.Kind
	}
	var jobs []job
	plan := sweep.NewPlan("characterize-taub")
	for _, bench := range benches {
		g := plan.Group(bench)
		for _, kind := range kinds {
			jobs = append(jobs, job{bench: bench, kind: kind})
			g.Add(clankCell(bench, kind, cfg))
		}
	}
	all, errs := sweep.RunPlan(ctx, plan, cfg.Run)
	failed := errs.FailedSet()
	var evalErrs runner.Errors
	for i, j := range jobs {
		if failed[i] {
			continue
		}
		r, rerr := clankRunFrom(j.bench, j.kind, &all[i])
		if rerr != nil {
			evalErrs = append(evalErrs, &runner.RunError{
				Index: i,
				Label: fmt.Sprintf("clank %s under %v trace", j.bench, j.kind),
				Err:   rerr,
			})
			continue
		}
		out = append(out, r)
	}
	if len(evalErrs) > 0 {
		errs = append(errs, evalErrs...)
	}
	return out, errs, nil
}

// knownBenches rejects unknown benchmark names up front, so a typo is
// a setup error rather than a silently dropped sweep point.
func knownBenches(benches []string) error {
	for _, b := range benches {
		if _, ok := workload.Get(b); !ok {
			return fmt.Errorf("characterize: unknown workload %q", b)
		}
	}
	return nil
}

// AlphaBRun is one benchmark's α_B profile across watchdog settings
// (Fig. 10).
type AlphaBRun struct {
	Bench string
	// PerWatchdog holds the mean α_B (bytes/cycle) for each watchdog
	// period, index-aligned with the Watchdogs argument.
	PerWatchdog []float64
	// AlphaB summarizes the per-watchdog means: its Mean is the bar of
	// Fig. 10 and its SEM the error bar.
	AlphaB stats.Summary
}

// DefaultWatchdogs is the paper's Fig. 10 sweep: 250–3000 cycles in
// increments of 250.
func DefaultWatchdogs() []uint64 {
	var out []uint64
	for w := uint64(250); w <= 3000; w += 250 {
		out = append(out, w)
	}
	return out
}

// AlphaBProfile characterizes application state per cycle on the
// mixed-volatility store-queue processor across watchdog periods. The
// plan holds one group per benchmark with a cell per watchdog setting —
// historically the watchdog sweep ran serially inside one point, but as
// individual cells every setting parallelizes and memoizes. The bar is
// still the per-benchmark mean over watchdogs, and errs still reports
// whole benchmarks (a benchmark is dropped if any of its watchdog runs
// failed, indexed as before by benchmark position).
func AlphaBProfile(ctx context.Context, benches []string, watchdogs []uint64, scale int, run runner.Options) (out []*AlphaBRun, errs runner.Errors, err error) {
	if scale <= 0 {
		scale = 1
	}
	if err := knownBenches(benches); err != nil {
		return nil, nil, err
	}
	plan := sweep.NewPlan("characterize-alphab")
	for _, bench := range benches {
		bench := bench
		g := plan.Group(bench)
		for _, wd := range watchdogs {
			wd := wd
			g.Add(sweep.Cell{
				Label: fmt.Sprintf("mixed-volatility α_B profile of %s wd=%d", bench, wd),
				Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
					w, ok := workload.Get(bench)
					if !ok {
						return device.Config{}, nil, fmt.Errorf("characterize: unknown workload %q", bench)
					}
					prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: scale})
					if err != nil {
						return device.Config{}, nil, err
					}
					pm := energy.MSP430Power()
					// ample fixed supply: α_B is a workload property, not a
					// power property
					capC, vmax, von, voff := device.FixedSupplyConfig(1.0)
					return device.Config{
						Prog:    prog,
						Power:   pm,
						CapC:    capC,
						CapVMax: vmax,
						VOn:     von,
						VOff:    voff,
					}, strategy.NewMixedVolatility(wd), nil
				},
				Verify: func(res *device.Result) error {
					if !res.Completed {
						return fmt.Errorf("characterize: %s watchdog %d did not complete", bench, wd)
					}
					return nil
				},
			})
		}
	}
	all, cellErrs := sweep.RunPlan(ctx, plan, run)
	failed := cellErrs.FailedSet()
	for bi, bench := range benches {
		ar := &AlphaBRun{Bench: bench}
		var benchErr error
		for wi := range watchdogs {
			i := bi*len(watchdogs) + wi
			if failed[i] {
				if benchErr == nil {
					for _, re := range cellErrs {
						if re.Index == i {
							benchErr = re.Err
							break
						}
					}
				}
				continue
			}
			ar.PerWatchdog = append(ar.PerWatchdog, stats.Mean(all[i].Result.AlphaBSamples()))
		}
		if benchErr != nil {
			errs = append(errs, &runner.RunError{
				Index: bi,
				Label: "mixed-volatility α_B profile of " + bench,
				Err:   benchErr,
			})
			continue
		}
		ar.AlphaB = stats.Summarize(ar.PerWatchdog)
		out = append(out, ar)
	}
	return out, errs, nil
}
