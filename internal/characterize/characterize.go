// Package characterize reproduces the paper's §V-B simulator
// characterization: running MiBench-like kernels on a Clank-style
// architecture fed by RF voltage traces to profile the time between
// backups τ_B (Fig. 8) and dead cycles τ_D (Fig. 9), and running the
// hypothetical mixed-volatility store-queue processor across watchdog
// settings to profile application state α_B (Fig. 10).
package characterize

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// ClankConfig parametrizes the §V-B Clank runs.
type ClankConfig struct {
	// PeriodCycles sizes the capacitor so one full active period holds
	// roughly this many ALU cycles of energy (default 20000, comfortably
	// above the 8000-cycle watchdog but far below a workload's length so
	// every run spans many power failures).
	PeriodCycles float64
	// Scale is the workload problem-size multiplier (default 6, sized so
	// each benchmark crosses several active periods).
	Scale int
	// TraceSeconds is the generated trace length (default 10 s).
	TraceSeconds float64
	// HarvestR and HarvestEta configure the transducer. The default
	// 20 kΩ keeps peak harvested power below the core's draw, so the
	// supply is genuinely intermittent (ε_C < ε); smaller resistances
	// can sustain the device indefinitely during trace peaks.
	HarvestR   float64
	HarvestEta float64
	// Run configures the parallel sweep engine for the profile sweeps
	// (worker count, per-run deadline).
	Run runner.Options
}

func (c *ClankConfig) setDefaults() {
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 20000
	}
	if c.Scale == 0 {
		c.Scale = 6
	}
	if c.TraceSeconds == 0 {
		c.TraceSeconds = 10
	}
	if c.HarvestR == 0 {
		c.HarvestR = 20000
	}
	if c.HarvestEta == 0 {
		c.HarvestEta = 0.7
	}
}

// ClankRun is one benchmark × trace characterization result.
type ClankRun struct {
	Bench  string
	Trace  trace.Kind
	TauB   stats.Summary // cycles between backups
	TauD   stats.Summary // dead cycles per failed period
	Stats  strategy.ClankStats
	Result *device.Result
}

// RunClank executes one benchmark under Clank powered by the given
// trace kind and returns its τ_B/τ_D profile.
func RunClank(ctx context.Context, bench string, kind trace.Kind, cfg ClankConfig) (*ClankRun, error) {
	cfg.setDefaults()
	w, ok := workload.Get(bench)
	if !ok {
		return nil, fmt.Errorf("characterize: unknown workload %q", bench)
	}
	prog, err := w.Build(workload.Options{Seg: asm.FRAM, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	pm := energy.CortexM0Power() // Clank is modelled on a Cortex-M0+
	e := cfg.PeriodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	tr := trace.Generate(kind, cfg.TraceSeconds, 1e-3, 7+int64(kind))
	h, err := energy.NewHarvester(tr, cfg.HarvestR, cfg.HarvestEta)
	if err != nil {
		return nil, err
	}
	cl := strategy.NewClank()
	d, err := device.New(device.Config{
		Prog:       prog,
		Power:      pm,
		CapC:       capC,
		CapVMax:    vmax,
		VOn:        von,
		VOff:       voff,
		Harvester:  h,
		RunTimeout: cfg.Run.RunTimeout,
		Interrupt:  runner.Interrupt(ctx),
	}, cl)
	if err != nil {
		return nil, err
	}
	res, err := d.Run()
	if err != nil {
		return nil, err
	}
	if !res.Completed {
		return nil, fmt.Errorf("characterize: %s did not complete under %v (periods=%d)", bench, kind, len(res.Periods))
	}
	return &ClankRun{
		Bench:  bench,
		Trace:  kind,
		TauB:   stats.Summarize(res.TauBSamples()),
		TauD:   stats.Summarize(res.TauDSamples()),
		Stats:  cl.Stats(),
		Result: res,
	}, nil
}

// TauBProfile runs every benchmark across every trace kind in parallel
// — the data behind Figs. 8 and 9. Surviving rows are returned ordered
// benchmark-major, trace-minor regardless of completion order; failed
// runs are dropped and reported in errs.
func TauBProfile(ctx context.Context, benches []string, cfg ClankConfig) (out []*ClankRun, errs runner.Errors, err error) {
	if err := knownBenches(benches); err != nil {
		return nil, nil, err
	}
	kinds := trace.Kinds()
	type job struct {
		bench string
		kind  trace.Kind
	}
	var jobs []job
	for _, bench := range benches {
		for _, kind := range kinds {
			jobs = append(jobs, job{bench: bench, kind: kind})
		}
	}
	o := cfg.Run
	o.Label = func(i int) string {
		return fmt.Sprintf("clank %s under %v trace", jobs[i].bench, jobs[i].kind)
	}
	runs, errs := runner.Map(ctx, len(jobs), o, func(i int) (*ClankRun, error) {
		return RunClank(ctx, jobs[i].bench, jobs[i].kind, cfg)
	})
	for _, r := range runs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, errs, nil
}

// knownBenches rejects unknown benchmark names up front, so a typo is
// a setup error rather than a silently dropped sweep point.
func knownBenches(benches []string) error {
	for _, b := range benches {
		if _, ok := workload.Get(b); !ok {
			return fmt.Errorf("characterize: unknown workload %q", b)
		}
	}
	return nil
}

// AlphaBRun is one benchmark's α_B profile across watchdog settings
// (Fig. 10).
type AlphaBRun struct {
	Bench string
	// PerWatchdog holds the mean α_B (bytes/cycle) for each watchdog
	// period, index-aligned with the Watchdogs argument.
	PerWatchdog []float64
	// AlphaB summarizes the per-watchdog means: its Mean is the bar of
	// Fig. 10 and its SEM the error bar.
	AlphaB stats.Summary
}

// DefaultWatchdogs is the paper's Fig. 10 sweep: 250–3000 cycles in
// increments of 250.
func DefaultWatchdogs() []uint64 {
	var out []uint64
	for w := uint64(250); w <= 3000; w += 250 {
		out = append(out, w)
	}
	return out
}

// AlphaBProfile characterizes application state per cycle on the
// mixed-volatility store-queue processor across watchdog periods. One
// sweep point is a whole benchmark (its watchdog sweep runs serially
// inside the point, since the bar is the mean over watchdogs); failed
// benchmarks are dropped and reported in errs.
func AlphaBProfile(ctx context.Context, benches []string, watchdogs []uint64, scale int, run runner.Options) (out []*AlphaBRun, errs runner.Errors, err error) {
	if scale <= 0 {
		scale = 1
	}
	if err := knownBenches(benches); err != nil {
		return nil, nil, err
	}
	o := run
	o.Label = func(i int) string { return "mixed-volatility α_B profile of " + benches[i] }
	runs, errs := runner.Map(ctx, len(benches), o, func(i int) (*AlphaBRun, error) {
		bench := benches[i]
		w, ok := workload.Get(bench)
		if !ok {
			return nil, fmt.Errorf("characterize: unknown workload %q", bench)
		}
		prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: scale})
		if err != nil {
			return nil, err
		}
		ar := &AlphaBRun{Bench: bench}
		for _, wd := range watchdogs {
			pm := energy.MSP430Power()
			// ample fixed supply: α_B is a workload property, not a
			// power property
			capC, vmax, von, voff := device.FixedSupplyConfig(1.0)
			d, err := device.New(device.Config{
				Prog:       prog,
				Power:      pm,
				CapC:       capC,
				CapVMax:    vmax,
				VOn:        von,
				VOff:       voff,
				RunTimeout: run.RunTimeout,
				Interrupt:  runner.Interrupt(ctx),
			}, strategy.NewMixedVolatility(wd))
			if err != nil {
				return nil, err
			}
			res, err := d.Run()
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("characterize: %s watchdog %d did not complete", bench, wd)
			}
			ar.PerWatchdog = append(ar.PerWatchdog, stats.Mean(res.AlphaBSamples()))
		}
		ar.AlphaB = stats.Summarize(ar.PerWatchdog)
		return ar, nil
	})
	for _, r := range runs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, errs, nil
}
