package mem

import (
	"math/rand"
	"testing"
)

func newCache(t *testing.T, block, sets, ways int) *Cache {
	t.Helper()
	c, err := NewCache(block, sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCacheValidation(t *testing.T) {
	cases := []struct{ block, sets, ways int }{
		{0, 4, 1}, {3, 4, 1}, {6, 4, 1},
		{32, 0, 1}, {32, 3, 1},
		{32, 4, 0},
	}
	for _, c := range cases {
		if _, err := NewCache(c.block, c.sets, c.ways); err == nil {
			t.Errorf("NewCache(%d,%d,%d) accepted", c.block, c.sets, c.ways)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := newCache(t, 32, 4, 2)
	if hit, _ := c.Access(0, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(4, false); !hit {
		t.Error("same-block access missed")
	}
	if hit, _ := c.Access(31, false); !hit {
		t.Error("end of block missed")
	}
	if hit, _ := c.Access(32, false); hit {
		t.Error("next block hit cold")
	}
	st := c.Stats()
	if st.Loads != 4 || st.LoadMisses != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheDirtyTracking(t *testing.T) {
	c := newCache(t, 32, 8, 2)
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	if got := c.DirtyBlocks(); got != 2 {
		t.Errorf("dirty blocks = %d, want 2", got)
	}
	if got := c.DirtyBytes(); got != 64 {
		t.Errorf("dirty bytes = %d, want 64", got)
	}
	if n := c.FlushDirty(); n != 2 {
		t.Errorf("flushed %d, want 2", n)
	}
	if c.DirtyBlocks() != 0 {
		t.Error("dirty blocks survive flush")
	}
	// store-to-clean block re-dirties
	c.Access(0, true)
	if c.DirtyBlocks() != 1 {
		t.Error("re-dirty failed")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// direct-mapped-ish: 1 set, 2 ways; three distinct blocks force LRU.
	c := newCache(t, 32, 1, 2)
	c.Access(0, true)            // block 0, dirty
	c.Access(32, false)          // block 1
	c.Access(0, false)           // touch block 0: block 1 becomes LRU
	_, wb := c.Access(64, false) // evicts block 1 (clean)
	if wb {
		t.Error("clean eviction reported writeback")
	}
	// now cache holds block 0 (dirty, MRU from earlier) and block 2
	c.Access(64, false)         // touch block 2
	_, wb = c.Access(96, false) // evicts block 0 (dirty)
	if !wb {
		t.Error("dirty eviction missed writeback")
	}
	if st := c.Stats(); st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(t, 32, 4, 2)
	c.Access(0, true)
	c.Invalidate()
	if c.DirtyBlocks() != 0 {
		t.Error("dirty survived invalidate")
	}
	if hit, _ := c.Access(0, false); hit {
		t.Error("hit after invalidate")
	}
}

func TestCacheResetStats(t *testing.T) {
	c := newCache(t, 32, 4, 2)
	c.Access(0, true)
	c.ResetStats()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("stats after reset: %+v", st)
	}
}

// TestStoreMajorVsLoadMajorTranspose reproduces the §VI-A intuition
// directly on the cache model: for B[j][i] = A[i][j] with row-major
// arrays, iterating in load-major order dirties β_block/β_store times
// more blocks per backup window than store-major order.
func TestStoreMajorVsLoadMajorTranspose(t *testing.T) {
	const (
		n         = 64 // matrix dimension
		wordBytes = 4
		block     = 32
	)
	aBase := uint32(0)
	bBase := uint32(n * n * wordBytes)
	const storesPerBackup = block / wordBytes // backup every β_block/β_store stores

	// run executes the transpose with the given index order, taking a
	// backup (flush of all dirty blocks) every storesPerBackup stores,
	// and returns total bytes written back to NVM.
	run := func(storeMajor bool) int {
		c := newCache(t, block, 64, 4)
		backupBytes, stores := 0, 0
		for i := 0; i < 8; i++ {
			for j := 0; j < n; j++ {
				var la, sa uint32
				if storeMajor {
					la = aBase + uint32((j*n+i)*wordBytes) // strided loads
					sa = bBase + uint32((i*n+j)*wordBytes) // contiguous stores
				} else {
					la = aBase + uint32((i*n+j)*wordBytes) // contiguous loads
					sa = bBase + uint32((j*n+i)*wordBytes) // strided stores
				}
				c.Access(la, false)
				if _, wb := c.Access(sa, true); wb {
					backupBytes += block
				}
				if stores++; stores%storesPerBackup == 0 {
					backupBytes += c.FlushDirty() * block
				}
			}
		}
		return backupBytes
	}

	lmBytes, smBytes := run(false), run(true)
	if lmBytes <= smBytes {
		t.Fatalf("load-major should cause more backup traffic: %d vs %d bytes", lmBytes, smBytes)
	}
	// the paper's inflation factor is β_block/β_store = 8 here
	if ratio := float64(lmBytes) / float64(smBytes); ratio < 4 {
		t.Errorf("backup traffic ratio %.2f, expected near %d", ratio, storesPerBackup)
	}
}

// Property-style randomized check: DirtyBlocks never exceeds capacity and
// FlushDirty returns exactly DirtyBlocks.
func TestCacheDirtyInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := newCache(t, 16, 8, 2)
	for i := 0; i < 10000; i++ {
		c.Access(uint32(r.Intn(1<<14))&^3, r.Intn(2) == 0)
		if d := c.DirtyBlocks(); d > 16 {
			t.Fatalf("dirty blocks %d exceed capacity", d)
		}
	}
	want := c.DirtyBlocks()
	if got := c.FlushDirty(); got != want {
		t.Fatalf("FlushDirty %d != DirtyBlocks %d", got, want)
	}
}
