package mem

import (
	"bytes"
	"testing"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(4096, 65536)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	cases := []struct{ sram, fram int }{
		{0, 4096}, {-4, 4096}, {6, 4096},
		{4096, 0}, {4096, -4}, {4096, 6},
		{int(FRAMBase) + 4, 4096},
	}
	for _, c := range cases {
		if _, err := NewSystem(c.sram, c.fram); err == nil {
			t.Errorf("NewSystem(%d, %d) accepted", c.sram, c.fram)
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	s := newSys(t)
	for _, addr := range []uint32{0, 4, 4092, FRAMBase, FRAMBase + 65532} {
		if err := s.StoreWord(addr, 0xDEADBEEF); err != nil {
			t.Fatalf("store %#x: %v", addr, err)
		}
		v, err := s.LoadWord(addr)
		if err != nil {
			t.Fatalf("load %#x: %v", addr, err)
		}
		if v != 0xDEADBEEF {
			t.Errorf("addr %#x: got %#x", addr, v)
		}
	}
}

func TestByteRoundTrip(t *testing.T) {
	s := newSys(t)
	if err := s.StoreByte(5, 0x7F); err != nil {
		t.Fatal(err)
	}
	b, err := s.LoadByte(5)
	if err != nil || b != 0x7F {
		t.Fatalf("byte round trip: %v %#x", err, b)
	}
}

func TestAccessErrors(t *testing.T) {
	s := newSys(t)
	if _, err := s.LoadWord(2); err == nil {
		t.Error("misaligned load accepted")
	}
	if err := s.StoreWord(2, 0); err == nil {
		t.Error("misaligned store accepted")
	}
	if _, err := s.LoadWord(4096); err == nil {
		t.Error("hole between SRAM and FRAM accepted")
	}
	if _, err := s.LoadWord(FRAMBase + 65536); err == nil {
		t.Error("past FRAM end accepted")
	}
	if _, err := s.LoadByte(0xFFFFFFF0); err == nil {
		t.Error("far unmapped byte accepted")
	}
}

func TestRegionClassification(t *testing.T) {
	s := newSys(t)
	if s.Region(0) != RegionSRAM || s.Region(4095) != RegionSRAM {
		t.Error("SRAM misclassified")
	}
	if s.Region(FRAMBase) != RegionFRAM || s.Region(FRAMBase+65535) != RegionFRAM {
		t.Error("FRAM misclassified")
	}
	if s.Region(4096) != RegionInvalid || s.Region(FRAMBase+65536) != RegionInvalid {
		t.Error("invalid space misclassified")
	}
	if RegionSRAM.String() != "sram" || RegionFRAM.String() != "fram" || RegionInvalid.String() != "invalid" {
		t.Error("region names wrong")
	}
}

func TestLoseVolatile(t *testing.T) {
	s := newSys(t)
	s.StoreWord(0, 0x12345678)
	s.StoreWord(FRAMBase, 0xCAFEBABE)
	s.LoseVolatile()
	v, _ := s.LoadWord(0)
	if v == 0x12345678 {
		t.Error("SRAM survived power loss")
	}
	v, _ = s.LoadWord(FRAMBase)
	if v != 0xCAFEBABE {
		t.Error("FRAM lost on power loss")
	}
}

func TestSnapshotRestoreSRAM(t *testing.T) {
	s := newSys(t)
	s.StoreWord(8, 42)
	snap := s.SnapshotSRAM()
	s.StoreWord(8, 99)
	s.LoseVolatile()
	if err := s.RestoreSRAM(snap); err != nil {
		t.Fatal(err)
	}
	v, _ := s.LoadWord(8)
	if v != 42 {
		t.Errorf("restored value %d, want 42", v)
	}
	if err := s.RestoreSRAM(make([]byte, 3)); err == nil {
		t.Error("wrong-size snapshot accepted")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	s := newSys(t)
	snap := s.SnapshotSRAM()
	s.StoreWord(0, 7)
	if bytes.Equal(snap[:4], s.SnapshotSRAM()[:4]) {
		t.Error("snapshot aliases live memory")
	}
}

func TestImages(t *testing.T) {
	s := newSys(t)
	if err := s.WriteFRAMImage([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	v, _ := s.LoadWord(FRAMBase)
	if v != 0x04030201 {
		t.Errorf("FRAM image word %#x", v)
	}
	if err := s.WriteSRAMImage([]byte{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	v, _ = s.LoadWord(SRAMBase)
	if v != 0x06070809 {
		t.Errorf("SRAM image word %#x", v)
	}
	if err := s.WriteFRAMImage(make([]byte, s.FRAMSize()+1)); err == nil {
		t.Error("oversized FRAM image accepted")
	}
	if err := s.WriteSRAMImage(make([]byte, s.SRAMSize()+1)); err == nil {
		t.Error("oversized SRAM image accepted")
	}
}

func TestSizes(t *testing.T) {
	s := newSys(t)
	if s.SRAMSize() != 4096 || s.FRAMSize() != 65536 {
		t.Errorf("sizes %d/%d", s.SRAMSize(), s.FRAMSize())
	}
}
