package mem

import "fmt"

// Cache models the mixed-volatility cache of §VI-A: a volatile,
// set-associative, writeback cache in front of nonvolatile memory. Its
// distinguishing feature for intermittent computing is that every dirty
// block must be written back to NVM when a backup is taken, and
// dirtiness is tracked at block granularity — so store locality controls
// backup traffic the way load locality controls miss traffic.
type Cache struct {
	blockSize int
	sets      int
	ways      int

	tags  [][]uint64 // per set, per way: block number + 1 (0 = invalid)
	dirty [][]bool
	lru   [][]uint64 // per set, per way: last-touch tick
	tick  uint64

	stats CacheStats
}

// CacheStats counts accesses since construction or ResetStats.
type CacheStats struct {
	Loads       uint64
	LoadMisses  uint64
	Stores      uint64
	StoreMisses uint64
	Writebacks  uint64 // dirty blocks written back (evictions + flushes)
}

// NewCache builds a cache. blockSize must be a power of two ≥ 4; sets a
// power of two ≥ 1; ways ≥ 1.
func NewCache(blockSize, sets, ways int) (*Cache, error) {
	if blockSize < 4 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("mem: block size %d must be a power of two ≥ 4", blockSize)
	}
	if sets < 1 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: set count %d must be a power of two ≥ 1", sets)
	}
	if ways < 1 {
		return nil, fmt.Errorf("mem: ways %d must be ≥ 1", ways)
	}
	c := &Cache{blockSize: blockSize, sets: sets, ways: ways}
	c.tags = make([][]uint64, sets)
	c.dirty = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.dirty[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c, nil
}

// BlockSize returns the block size in bytes.
func (c *Cache) BlockSize() int { return c.blockSize }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Access simulates one load or store at addr. It returns whether the
// access hit and whether a dirty block was evicted (a writeback to NVM).
func (c *Cache) Access(addr uint32, isStore bool) (hit, writeback bool) {
	c.tick++
	block := uint64(addr) / uint64(c.blockSize)
	set := int(block % uint64(c.sets))
	key := block + 1

	if isStore {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}

	// Hit path.
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == key {
			c.lru[set][w] = c.tick
			if isStore {
				c.dirty[set][w] = true
			}
			return true, false
		}
	}

	// Miss: pick the LRU way (empty ways have tick 0 and win).
	if isStore {
		c.stats.StoreMisses++
	} else {
		c.stats.LoadMisses++
	}
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	writeback = c.tags[set][victim] != 0 && c.dirty[set][victim]
	if writeback {
		c.stats.Writebacks++
	}
	c.tags[set][victim] = key
	c.dirty[set][victim] = isStore
	c.lru[set][victim] = c.tick
	return false, writeback
}

// DirtyBlocks returns how many blocks are currently dirty — the backup
// payload a mixed-volatility system must write to NVM at a checkpoint.
func (c *Cache) DirtyBlocks() int {
	n := 0
	for s := range c.dirty {
		for w := range c.dirty[s] {
			if c.dirty[s][w] {
				n++
			}
		}
	}
	return n
}

// DirtyBytes returns the backup payload in bytes (dirty blocks ×
// block size) — the α_B·τ_B quantity of Eq. 4 for cache-based systems.
func (c *Cache) DirtyBytes() int { return c.DirtyBlocks() * c.blockSize }

// FlushDirty marks all dirty blocks clean and returns how many were
// flushed; the device calls it when a backup commits.
func (c *Cache) FlushDirty() int {
	n := 0
	for s := range c.dirty {
		for w := range c.dirty[s] {
			if c.dirty[s][w] {
				c.dirty[s][w] = false
				n++
				c.stats.Writebacks++
			}
		}
	}
	return n
}

// Invalidate empties the cache (used on power loss for a volatile cache).
func (c *Cache) Invalidate() {
	c.tick = 0
	for s := range c.tags {
		for w := range c.tags[s] {
			c.tags[s][w] = 0
			c.dirty[s][w] = false
			c.lru[s][w] = 0
		}
	}
}
