// Package mem models the memory side of the intermittent device: a
// volatile SRAM region that loses its contents on power failure, a
// nonvolatile FRAM region that survives, and (for the §VI-A case study)
// a mixed-volatility writeback cache that tracks dirty blocks at block
// granularity.
//
// The layout follows the MSP430FR5994 the paper measures on — a small
// SRAM alongside a large FRAM — with EH32's Harvard code space kept
// outside this data address space.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Address-space layout.
const (
	// SRAMBase is the start of volatile memory.
	SRAMBase uint32 = 0x00000
	// FRAMBase is the start of nonvolatile memory.
	FRAMBase uint32 = 0x20000
)

// Region classifies an address.
type Region int

const (
	// RegionSRAM is volatile memory.
	RegionSRAM Region = iota
	// RegionFRAM is nonvolatile memory.
	RegionFRAM
	// RegionInvalid is unmapped space.
	RegionInvalid
)

func (r Region) String() string {
	switch r {
	case RegionSRAM:
		return "sram"
	case RegionFRAM:
		return "fram"
	}
	return "invalid"
}

// corruptByte is the fill pattern volatile memory decays to on a power
// failure. A non-zero pattern makes accidental reliance on lost state
// visible instead of silently reading zeros.
const corruptByte = 0xAB

// System is the device's data memory.
type System struct {
	sram []byte
	fram []byte
}

// NewSystem allocates a memory system. Sizes are in bytes and must be
// positive multiples of 4 with SRAM small enough not to overlap FRAM.
func NewSystem(sramSize, framSize int) (*System, error) {
	if sramSize <= 0 || sramSize%4 != 0 {
		return nil, fmt.Errorf("mem: sram size %d must be a positive multiple of 4", sramSize)
	}
	if framSize <= 0 || framSize%4 != 0 {
		return nil, fmt.Errorf("mem: fram size %d must be a positive multiple of 4", framSize)
	}
	if uint32(sramSize) > FRAMBase-SRAMBase {
		return nil, fmt.Errorf("mem: sram size %d overlaps FRAM base %#x", sramSize, FRAMBase)
	}
	return &System{
		sram: make([]byte, sramSize),
		fram: make([]byte, framSize),
	}, nil
}

// SRAMSize and FRAMSize report the configured sizes in bytes.
func (s *System) SRAMSize() int { return len(s.sram) }
func (s *System) FRAMSize() int { return len(s.fram) }

// Region classifies addr.
func (s *System) Region(addr uint32) Region {
	switch {
	case addr >= SRAMBase && addr < SRAMBase+uint32(len(s.sram)):
		return RegionSRAM
	case addr >= FRAMBase && addr < FRAMBase+uint32(len(s.fram)):
		return RegionFRAM
	default:
		return RegionInvalid
	}
}

// backing returns the slice and offset for an access of size bytes.
func (s *System) backing(addr uint32, size int) ([]byte, int, error) {
	switch s.Region(addr) {
	case RegionSRAM:
		off := int(addr - SRAMBase)
		if off+size > len(s.sram) {
			return nil, 0, fmt.Errorf("mem: access at %#x size %d crosses SRAM end", addr, size)
		}
		return s.sram, off, nil
	case RegionFRAM:
		off := int(addr - FRAMBase)
		if off+size > len(s.fram) {
			return nil, 0, fmt.Errorf("mem: access at %#x size %d crosses FRAM end", addr, size)
		}
		return s.fram, off, nil
	default:
		return nil, 0, fmt.Errorf("mem: unmapped address %#x", addr)
	}
}

// LoadWord reads a 32-bit little-endian word. addr must be 4-aligned.
func (s *System) LoadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("mem: misaligned word load at %#x", addr)
	}
	b, off, err := s.backing(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[off:]), nil
}

// StoreWord writes a 32-bit little-endian word. addr must be 4-aligned.
func (s *System) StoreWord(addr uint32, v uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("mem: misaligned word store at %#x", addr)
	}
	b, off, err := s.backing(addr, 4)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b[off:], v)
	return nil
}

// LoadByte reads one byte.
func (s *System) LoadByte(addr uint32) (byte, error) {
	b, off, err := s.backing(addr, 1)
	if err != nil {
		return 0, err
	}
	return b[off], nil
}

// StoreByte writes one byte.
func (s *System) StoreByte(addr uint32, v byte) error {
	b, off, err := s.backing(addr, 1)
	if err != nil {
		return err
	}
	b[off] = v
	return nil
}

// LoseVolatile corrupts all SRAM contents, modelling a power failure.
// FRAM is untouched.
func (s *System) LoseVolatile() {
	for i := range s.sram {
		s.sram[i] = corruptByte
	}
}

// SnapshotSRAM returns a copy of volatile memory — the application-state
// payload of a full checkpoint.
func (s *System) SnapshotSRAM() []byte {
	return append([]byte(nil), s.sram...)
}

// RestoreSRAM reinstates a snapshot taken by SnapshotSRAM.
func (s *System) RestoreSRAM(snap []byte) error {
	if len(snap) != len(s.sram) {
		return fmt.Errorf("mem: snapshot size %d != sram size %d", len(snap), len(s.sram))
	}
	copy(s.sram, snap)
	return nil
}

// RestoreSRAMPrefix reinstates a partial snapshot covering the first
// len(snap) bytes of SRAM — the footprint-sized checkpoint images of
// full-memory strategies. Memory beyond the prefix keeps its power-loss
// corruption pattern, as on real hardware.
func (s *System) RestoreSRAMPrefix(snap []byte) error {
	if len(snap) > len(s.sram) {
		return fmt.Errorf("mem: snapshot size %d exceeds sram size %d", len(snap), len(s.sram))
	}
	copy(s.sram, snap)
	return nil
}

// SnapshotFRAM copies nonvolatile memory; tests use it to compare
// committed state across runs.
func (s *System) SnapshotFRAM() []byte {
	return append([]byte(nil), s.fram...)
}

// WriteFRAMImage installs an initial data image at the start of FRAM;
// loaders use it to place nonvolatile program data.
func (s *System) WriteFRAMImage(img []byte) error {
	if len(img) > len(s.fram) {
		return fmt.Errorf("mem: image %d bytes exceeds FRAM %d", len(img), len(s.fram))
	}
	copy(s.fram, img)
	return nil
}

// WriteSRAMImage installs an initial data image at the start of SRAM.
func (s *System) WriteSRAMImage(img []byte) error {
	if len(img) > len(s.sram) {
		return fmt.Errorf("mem: image %d bytes exceeds SRAM %d", len(img), len(s.sram))
	}
	copy(s.sram, img)
	return nil
}
