// Package trace provides harvested-voltage traces for driving the
// intermittent-device simulator. The paper's characterization (§V-B)
// uses recorded RF traces from Mementos; those recordings are not
// redistributable, so this package generates deterministic synthetic
// traces with the three shapes the paper describes:
//
//  1. two short spikes above 5 V with troughs close to 0 V,
//  2. a gradual ramp from near 0 V to about 2.5 V, and
//  3. multiple peaks of 3.5–5.5 V with troughs of 0–1.5 V.
//
// The paper reports that its characterization results are insensitive to
// trace shape because each active period carries a similar energy supply;
// the synthetic traces preserve exactly the properties the paper states.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// Trace is a harvested open-circuit voltage signal sampled at a fixed
// period.
type Trace struct {
	Name     string
	SamplesV []float64 // voltage at each sample point (V)
	PeriodS  float64   // seconds between samples
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 {
	return float64(len(t.SamplesV)) * t.PeriodS
}

// VoltageAt returns the linearly interpolated voltage at time ts seconds.
// The trace repeats cyclically, so simulations may run longer than one
// recording.
func (t *Trace) VoltageAt(ts float64) float64 {
	if len(t.SamplesV) == 0 {
		return 0
	}
	if len(t.SamplesV) == 1 {
		return t.SamplesV[0]
	}
	pos := math.Mod(ts/t.PeriodS, float64(len(t.SamplesV)))
	if pos < 0 {
		pos += float64(len(t.SamplesV))
	}
	i := int(pos)
	frac := pos - float64(i)
	j := (i + 1) % len(t.SamplesV)
	return t.SamplesV[i]*(1-frac) + t.SamplesV[j]*frac
}

// Stats summarizes a trace for experiment logs.
type Stats struct {
	MinV, MaxV, MeanV float64
}

// Stats returns min/max/mean voltage.
func (t *Trace) Stats() Stats {
	if len(t.SamplesV) == 0 {
		return Stats{}
	}
	s := Stats{MinV: t.SamplesV[0], MaxV: t.SamplesV[0]}
	sum := 0.0
	for _, v := range t.SamplesV {
		s.MinV = math.Min(s.MinV, v)
		s.MaxV = math.Max(s.MaxV, v)
		sum += v
	}
	s.MeanV = sum / float64(len(t.SamplesV))
	return s
}

// Kind identifies one of the three §V-B trace shapes.
type Kind int

const (
	// Spikes is trace 1: two short spikes over 5 V, troughs near 0 V.
	Spikes Kind = iota
	// Ramp is trace 2: a gradual increase from near 0 V to ~2.5 V.
	Ramp
	// MultiPeak is trace 3: several 3.5–5.5 V peaks with 0–1.5 V troughs.
	MultiPeak
)

func (k Kind) String() string {
	switch k {
	case Spikes:
		return "spikes"
	case Ramp:
		return "ramp"
	case MultiPeak:
		return "multipeak"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all three shapes in paper order.
func Kinds() []Kind { return []Kind{Spikes, Ramp, MultiPeak} }

// Generate builds a deterministic synthetic trace of the given kind.
// duration is in seconds; period the sample spacing in seconds; seed
// makes distinct deterministic instances.
func Generate(k Kind, duration, period float64, seed int64) *Trace {
	n := int(duration / period)
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	switch k {
	case Spikes:
		genSpikes(s, rng)
	case Ramp:
		genRamp(s, rng)
	case MultiPeak:
		genMultiPeak(s, rng)
	}
	return &Trace{Name: k.String(), SamplesV: s, PeriodS: period}
}

// genSpikes: baseline noise near 0 V with two narrow >5 V spikes placed
// in the first and second halves of the recording.
func genSpikes(s []float64, rng *rand.Rand) {
	n := len(s)
	for i := range s {
		s[i] = 0.05 * rng.Float64() // troughs very close to 0 V
	}
	width := n / 60
	if width < 1 {
		width = 1
	}
	centers := []int{n/4 + rng.Intn(n/8+1), 3*n/4 + rng.Intn(n/8+1)}
	for _, c := range centers {
		peak := 5.2 + 0.6*rng.Float64() // just over 5 V
		for i := 0; i < n; i++ {
			d := float64(i-c) / float64(width)
			s[i] += peak * math.Exp(-d*d)
		}
	}
}

// genRamp: gradual rise from near 0 V to close to 2.5 V with mild ripple.
func genRamp(s []float64, rng *rand.Rand) {
	n := len(s)
	for i := range s {
		t := float64(i) / float64(n-1)
		v := 2.5*t + 0.05*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		s[i] = v
	}
}

// genMultiPeak: a slow oscillation between 0–1.5 V troughs and 3.5–5.5 V
// peaks, with per-peak amplitude jitter.
func genMultiPeak(s []float64, rng *rand.Rand) {
	n := len(s)
	const peaks = 6
	_ = rng // jitter is span-hashed for per-peak stability
	for i := range s {
		t := float64(i) / float64(n)
		phase := 2 * math.Pi * peaks * t
		// raise the sinusoid into [0,1] and sharpen it so troughs are wide
		u := (1 + math.Sin(phase)) / 2
		trough := 1.5 * pseudoJitter(i+n, n/peaks) // 0–1.5 V
		peakAmp := 3.5 + 2.0*pseudoJitter(i, n/peaks)
		v := trough + u*u*(peakAmp-trough)
		if v > 5.5 {
			v = 5.5
		}
		s[i] = v
	}
}

// pseudoJitter produces a value in [0,1) that is constant across each
// peak-sized span so a whole peak shares one amplitude.
func pseudoJitter(i, span int) float64 {
	if span <= 0 {
		span = 1
	}
	// deterministic per-span hash
	k := i / span
	h := uint64(k)*0x9e3779b97f4a7c15 + 0x123456789
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%1000) / 1000
}

// Constant returns a flat trace at the given voltage — useful for tests
// and for modelling a bench power supply.
func Constant(v, duration, period float64) *Trace {
	n := int(duration / period)
	if n < 2 {
		n = 2
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return &Trace{Name: "constant", SamplesV: s, PeriodS: period}
}

// WriteCSV writes "time_s,voltage_v" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "voltage_v"}); err != nil {
		return err
	}
	for i, v := range t.SamplesV {
		rec := []string{
			strconv.FormatFloat(float64(i)*t.PeriodS, 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseError reports an invalid trace CSV, naming the offending line.
// Line is 1-based and counts the header, matching editor line numbers.
type ParseError struct {
	Line int
	Msg  string
	Err  error // underlying cause, when any
}

func (e *ParseError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: csv line %d: %s: %v", e.Line, e.Msg, e.Err)
	}
	return fmt.Sprintf("trace: csv line %d: %s", e.Line, e.Msg)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ReadCSV parses a trace written by WriteCSV. The sample period is
// inferred from the first two timestamps. Malformed input — ragged
// rows, unparsable numbers, non-finite or negative voltages, non-finite
// or non-increasing timestamps — yields a *ParseError naming the line,
// so a bad recording fails loudly instead of driving the harvester with
// garbage.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // report ragged rows ourselves, with line numbers
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(recs) < 3 {
		return nil, fmt.Errorf("trace: csv needs a header and ≥2 samples, have %d rows", len(recs))
	}
	recs = recs[1:] // drop header
	samples := make([]float64, len(recs))
	times := make([]float64, len(recs))
	for i, rec := range recs {
		line := i + 2
		if len(rec) != 2 {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("%d fields, want 2", len(rec))}
		}
		if times[i], err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("time %q", rec[0]), Err: err}
		}
		if math.IsNaN(times[i]) || math.IsInf(times[i], 0) {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("time %q is not finite", rec[0])}
		}
		if i > 0 && times[i] <= times[i-1] {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("time %g does not increase past %g", times[i], times[i-1])}
		}
		if samples[i], err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("voltage %q", rec[1]), Err: err}
		}
		if math.IsNaN(samples[i]) || math.IsInf(samples[i], 0) {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("voltage %q is not finite", rec[1])}
		}
		if samples[i] < 0 {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("voltage %g is negative — a harvested open-circuit voltage cannot be", samples[i])}
		}
	}
	return &Trace{Name: name, SamplesV: samples, PeriodS: times[1] - times[0]}, nil
}
