package trace

import (
	"bytes"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestGenerateSpikesShape(t *testing.T) {
	tr := Generate(Spikes, 10, 0.001, 1)
	s := tr.Stats()
	if s.MaxV < 5.0 {
		t.Errorf("spikes trace must exceed 5 V, max %g", s.MaxV)
	}
	if s.MinV > 0.2 {
		t.Errorf("spikes troughs must be near 0 V, min %g", s.MinV)
	}
	// spikes are short: less than 15% of samples should sit above 2 V
	high := 0
	for _, v := range tr.SamplesV {
		if v > 2 {
			high++
		}
	}
	if frac := float64(high) / float64(len(tr.SamplesV)); frac > 0.15 {
		t.Errorf("spikes should be narrow: %.1f%% of samples above 2 V", frac*100)
	}
}

func TestGenerateRampShape(t *testing.T) {
	tr := Generate(Ramp, 10, 0.001, 2)
	s := tr.Stats()
	if s.MinV > 0.3 {
		t.Errorf("ramp should start near 0 V, min %g", s.MinV)
	}
	if s.MaxV < 2.2 || s.MaxV > 2.9 {
		t.Errorf("ramp should reach ≈2.5 V, max %g", s.MaxV)
	}
	// trend: mean of second half well above mean of first half
	n := len(tr.SamplesV)
	var a, b float64
	for i, v := range tr.SamplesV {
		if i < n/2 {
			a += v
		} else {
			b += v
		}
	}
	if b <= a {
		t.Error("ramp should trend upward")
	}
}

func TestGenerateMultiPeakShape(t *testing.T) {
	tr := Generate(MultiPeak, 10, 0.001, 3)
	s := tr.Stats()
	if s.MaxV < 3.5 || s.MaxV > 5.5+1e-9 {
		t.Errorf("multipeak peaks must reach 3.5–5.5 V, max %g", s.MaxV)
	}
	if s.MinV < 0 || s.MinV > 1.5 {
		t.Errorf("multipeak troughs must stay within 0–1.5 V, min %g", s.MinV)
	}
	// count rising crossings of the midline to confirm multiple peaks
	crossings := 0
	mid := (s.MaxV + s.MinV) / 2
	for i := 1; i < len(tr.SamplesV); i++ {
		if tr.SamplesV[i-1] < mid && tr.SamplesV[i] >= mid {
			crossings++
		}
	}
	if crossings < 3 {
		t.Errorf("expected multiple peaks, found %d midline crossings", crossings)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		a := Generate(k, 5, 0.001, 42)
		b := Generate(k, 5, 0.001, 42)
		if len(a.SamplesV) != len(b.SamplesV) {
			t.Fatalf("%v: lengths differ", k)
		}
		for i := range a.SamplesV {
			if a.SamplesV[i] != b.SamplesV[i] {
				t.Fatalf("%v: sample %d differs: %g vs %g", k, i, a.SamplesV[i], b.SamplesV[i])
			}
		}
	}
}

func TestVoltageAtInterpolation(t *testing.T) {
	tr := &Trace{SamplesV: []float64{0, 2, 4}, PeriodS: 1}
	if got := tr.VoltageAt(0.5); got != 1 {
		t.Errorf("V(0.5) = %g, want 1", got)
	}
	if got := tr.VoltageAt(1); got != 2 {
		t.Errorf("V(1) = %g, want 2", got)
	}
	// cyclic wrap: t=2.5 is halfway from sample 2 (4 V) back to sample 0 (0 V)
	if got := tr.VoltageAt(2.5); got != 2 {
		t.Errorf("V(2.5) wrap = %g, want 2", got)
	}
	if got := tr.VoltageAt(3.0); got != 0 {
		t.Errorf("V(3) wrap = %g, want 0", got)
	}
}

func TestVoltageAtDegenerate(t *testing.T) {
	empty := &Trace{}
	if got := empty.VoltageAt(1); got != 0 {
		t.Errorf("empty trace voltage = %g", got)
	}
	single := &Trace{SamplesV: []float64{3.3}, PeriodS: 1}
	if got := single.VoltageAt(99); got != 3.3 {
		t.Errorf("single-sample trace voltage = %g", got)
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(3.0, 1, 0.01)
	if tr.Duration() != 1.0 {
		t.Errorf("duration = %g, want 1", tr.Duration())
	}
	for _, ts := range []float64{0, 0.123, 0.5, 0.99} {
		if got := tr.VoltageAt(ts); got != 3.0 {
			t.Errorf("V(%g) = %g, want 3", ts, got)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(Ramp, 1, 0.01, 7)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "ramp")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.SamplesV) != len(orig.SamplesV) {
		t.Fatalf("length %d, want %d", len(back.SamplesV), len(orig.SamplesV))
	}
	if math.Abs(back.PeriodS-orig.PeriodS) > 1e-12 {
		t.Fatalf("period %g, want %g", back.PeriodS, orig.PeriodS)
	}
	for i := range orig.SamplesV {
		if back.SamplesV[i] != orig.SamplesV[i] {
			t.Fatalf("sample %d: %g != %g", i, back.SamplesV[i], orig.SamplesV[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		// line is the 1-based CSV line a *ParseError must name; 0 means
		// any error type is acceptable (structural, not row-level).
		line int
	}{
		{"too short", "time_s,voltage_v\n0,1\n", 0},
		{"bad time", "time_s,voltage_v\nx,1\n0.1,2\n", 2},
		{"bad voltage", "time_s,voltage_v\n0,x\n0.1,2\n", 2},
		{"ragged row", "time_s,voltage_v\n0,1\n0.1,2,3\n", 3},
		{"missing field", "time_s,voltage_v\n0,1\n0.1\n", 3},
		{"nan voltage", "time_s,voltage_v\n0,1\n0.1,NaN\n", 3},
		{"inf voltage", "time_s,voltage_v\n0,1\n0.1,+Inf\n", 3},
		{"negative voltage", "time_s,voltage_v\n0,1\n0.1,-0.5\n", 3},
		{"nan time", "time_s,voltage_v\n0,1\nNaN,2\n", 3},
		{"inf time", "time_s,voltage_v\n0,1\nInf,2\n", 3},
		{"repeated time", "time_s,voltage_v\n0,1\n0,2\n0.1,3\n", 3},
		{"backwards time", "time_s,voltage_v\n0,1\n0.2,2\n0.1,3\n", 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(c.data), "t")
			if err == nil {
				t.Fatal("expected error")
			}
			if c.line == 0 {
				return
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if pe.Line != c.line {
				t.Fatalf("error names line %d, want %d: %v", pe.Line, c.line, pe)
			}
		})
	}
}

// TestParseErrorUnwrap: the strconv cause stays reachable for callers
// that want to distinguish syntax from semantics.
func TestParseErrorUnwrap(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("time_s,voltage_v\nbogus,1\n0.1,2\n"), "t")
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Fatalf("parse cause lost: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Spikes.String() != "spikes" || Ramp.String() != "ramp" || MultiPeak.String() != "multipeak" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should include value")
	}
	if len(Kinds()) != 3 {
		t.Error("three kinds expected")
	}
}
