package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// CacheFingerprint returns a stable content hash of the trace — name,
// sample period, and the exact bit pattern of every voltage sample — so
// the memoization layer (internal/sweep) can fold a harvester's supply
// into a cell key. Two traces with equal fingerprints drive simulations
// identically; generator parameters (kind, seed) need no separate
// representation because they are fully captured by the samples.
func (t *Trace) CacheFingerprint() string {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(t.Name)))
	h.Write(b[:])
	h.Write([]byte(t.Name))
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(t.PeriodS))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(len(t.SamplesV)))
	h.Write(b[:])
	for _, v := range t.SamplesV {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return "trace:" + hex.EncodeToString(h.Sum(nil))
}
