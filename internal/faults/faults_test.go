package faults

import (
	"reflect"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"full valid", Plan{TornWriteProb: 0.5, BitFlipRate: 1e-3, StaleRestoreProb: 1, RandomCutMeanCycles: 5000}, true},
		{"torn prob negative", Plan{TornWriteProb: -0.1}, false},
		{"torn prob above one", Plan{TornWriteProb: 1.5}, false},
		{"bitflip rate nan", Plan{BitFlipRate: nan()}, false},
		{"stale prob above one", Plan{StaleRestoreProb: 2}, false},
		{"cut mean negative", Plan{RandomCutMeanCycles: -1}, false},
		{"cut mean inf", Plan{RandomCutMeanCycles: inf()}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func nan() float64 { f := 0.0; return f / f }
func inf() float64 { f := 1.0; return f / (f - 1) }

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		spec string
		want Plan
		ok   bool
	}{
		{"", Plan{}, true},
		{"none", Plan{}, true},
		{"  none  ", Plan{}, true},
		{"cycles:100", Plan{CutCycles: []uint64{100}}, true},
		{"cycles:100,2500, 90000", Plan{CutCycles: []uint64{100, 2500, 90000}}, true},
		{"random:mean=5000", Plan{RandomCutMeanCycles: 5000}, true},
		{"random:mean=0.5", Plan{RandomCutMeanCycles: 0.5}, true},
		{"bogus", Plan{}, false},
		{"cycles:abc", Plan{}, false},
		{"cycles:-5", Plan{}, false},
		{"random:5000", Plan{}, false},
		{"random:mean=zero", Plan{}, false},
		{"random:mean=0", Plan{}, false},
		{"random:mean=-10", Plan{}, false},
		// Non-finite means parse as floats but produce a plan Validate
		// rejects; ParseSchedule must refuse them at the gate.
		{"random:mean=NaN", Plan{}, false},
		{"random:mean=+Inf", Plan{}, false},
		{"random:mean=-Inf", Plan{}, false},
		{"cycles:", Plan{}, false},
		{"cycles:100,,200", Plan{}, false},
		{"cycles:1e3", Plan{}, false},
		{"laser:beam", Plan{}, false},
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			var p Plan
			err := p.ParseSchedule(c.spec)
			if (err == nil) != c.ok {
				t.Fatalf("ParseSchedule(%q) = %v, want ok=%v", c.spec, err, c.ok)
			}
			if err == nil && !reflect.DeepEqual(p, c.want) {
				t.Fatalf("ParseSchedule(%q) plan = %+v, want %+v", c.spec, p, c.want)
			}
		})
	}
}

// FuzzParseSchedule: no spec may panic the parser, and any accepted
// spec must yield a plan that validates and builds an injector — parse
// success implies a runnable schedule.
func FuzzParseSchedule(f *testing.F) {
	f.Add("")
	f.Add("none")
	f.Add("cycles:100,2500,90000")
	f.Add("random:mean=5000")
	f.Add("random:mean=0.5")
	f.Add("cycles:18446744073709551615")
	f.Add("laser:beam")
	f.Add("random:mean=NaN")
	f.Fuzz(func(t *testing.T, spec string) {
		var p Plan
		if err := p.ParseSchedule(spec); err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseSchedule(%q) accepted a plan Validate rejects: %v", spec, err)
		}
		if _, err := New(p); err != nil {
			t.Fatalf("ParseSchedule(%q) accepted a plan New rejects: %v", spec, err)
		}
	})
}

func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{
		Seed:                42,
		RandomCutMeanCycles: 3000,
		TornWriteProb:       0.01,
		BitFlipRate:         0.1,
		StaleRestoreProb:    0.3,
	}
	record := func() ([]bool, []int, [][]uint32, []bool) {
		inj, err := New(plan)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var cuts []bool
		var tears []int
		var flipped [][]uint32
		var stale []bool
		for step := 0; step < 200; step++ {
			cuts = append(cuts, inj.PowerCutDue(uint64(step)*500))
			tears = append(tears, inj.TearBackup(64))
			words := []uint32{0xdeadbeef, 0x12345678, 0, 0xffffffff}
			inj.FlipBits(words)
			flipped = append(flipped, words)
			stale = append(stale, inj.ForceStale())
		}
		return cuts, tears, flipped, stale
	}
	c1, t1, f1, s1 := record()
	c2, t2, f2, s2 := record()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(t1, t2) ||
		!reflect.DeepEqual(f1, f2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("two injectors with the same plan made different decisions")
	}
}

func TestBeginRunResets(t *testing.T) {
	plan := Plan{Seed: 7, RandomCutMeanCycles: 1000, TornWriteProb: 0.05, BitFlipRate: 0.2}
	inj, err := New(plan)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	trace := func() []int {
		var out []int
		for step := 0; step < 100; step++ {
			if inj.PowerCutDue(uint64(step) * 300) {
				out = append(out, -1000-step)
			}
			out = append(out, inj.TearBackup(128))
		}
		return out
	}
	first := trace()
	inj.BeginRun()
	second := trace()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("BeginRun did not rewind the injector to its initial state")
	}
}

func TestDeterministicCutsFireOnce(t *testing.T) {
	inj, err := New(Plan{CutCycles: []uint64{500, 200, 200, 900}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Each scheduled cut fires at the first poll at-or-after its cycle
	// count, and never again.
	if inj.PowerCutDue(100) {
		t.Fatal("cut before any scheduled cycle")
	}
	if !inj.PowerCutDue(250) {
		t.Fatal("missed cuts at 200")
	}
	if inj.PowerCutDue(250) {
		t.Fatal("cut at 200 fired twice")
	}
	if !inj.PowerCutDue(1000) {
		t.Fatal("missed cuts at 500/900")
	}
	if inj.PowerCutDue(5_000_000) {
		t.Fatal("exhausted schedule kept firing")
	}
}

func TestRandomCutsHaveSensibleSpacing(t *testing.T) {
	const mean = 2000.0
	inj, err := New(Plan{Seed: 11, RandomCutMeanCycles: mean})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cuts := 0
	const horizon = 4_000_000
	for cyc := uint64(0); cyc < horizon; cyc += 100 {
		if inj.PowerCutDue(cyc) {
			cuts++
		}
	}
	// Expected ~horizon/mean = 2000 cuts; allow wide slack, but the rate
	// must be in the right ballpark for the schedule to mean anything.
	want := horizon / mean
	if float64(cuts) < want/2 || float64(cuts) > want*2 {
		t.Fatalf("random schedule produced %d cuts over %d cycles, want ≈%g", cuts, horizon, want)
	}
}

func TestTearBackup(t *testing.T) {
	inj, err := New(Plan{Seed: 3, TornWriteProb: 0.02})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := inj.TearBackup(0); got != -1 {
		t.Fatalf("TearBackup(0) = %d, want -1", got)
	}
	tears := 0
	for trial := 0; trial < 5000; trial++ {
		k := inj.TearBackup(50)
		if k < -1 || k >= 50 {
			t.Fatalf("tear index %d outside [-1,50)", k)
		}
		if k >= 0 {
			tears++
		}
	}
	// P(tear within 50 words at p=0.02) = 1-0.98^50 ≈ 0.636.
	if tears < 2000 || tears > 4500 {
		t.Fatalf("%d/5000 backups torn, want roughly 64%%", tears)
	}

	// p = 0: never tears.
	off, err := New(Plan{Seed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for trial := 0; trial < 100; trial++ {
		if off.TearBackup(1<<20) != -1 {
			t.Fatal("tear with zero probability")
		}
	}

	// p = 1: always tears at word 0 — no word ever survives.
	always, err := New(Plan{Seed: 3, TornWriteProb: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for trial := 0; trial < 100; trial++ {
		if got := always.TearBackup(16); got != 0 {
			t.Fatalf("TearBackup at p=1 = %d, want 0", got)
		}
	}
}

func TestFlipBits(t *testing.T) {
	// Rate 0: untouched.
	off, err := New(Plan{Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	words := []uint32{1, 2, 3, 4}
	orig := append([]uint32(nil), words...)
	if n := off.FlipBits(words); n != 0 || !reflect.DeepEqual(words, orig) {
		t.Fatalf("FlipBits at rate 0 flipped %d words: %v", n, words)
	}

	// Rate 1: every word changed by exactly one bit.
	on, err := New(Plan{Seed: 5, BitFlipRate: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	words = make([]uint32, 64)
	n := on.FlipBits(words)
	if n != len(words) {
		t.Fatalf("FlipBits at rate 1 reported %d flips, want %d", n, len(words))
	}
	for i, w := range words {
		if popcount(w) != 1 {
			t.Fatalf("word %d = %#x changed by %d bits, want exactly 1", i, w, popcount(w))
		}
	}
}

func popcount(w uint32) int {
	n := 0
	for w != 0 {
		n += int(w & 1)
		w >>= 1
	}
	return n
}
