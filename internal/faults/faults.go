// Package faults attacks the intermittent-device simulator. An Injector
// plugs into the device loop (device.Config.Faults) and can kill power
// mid-backup at word granularity (torn multi-word FRAM checkpoint
// writes), flip bits in stored checkpoints, drop the supply on a
// deterministic or seeded-random cycle schedule independent of the
// capacitor model, and force restores from a stale checkpoint slot. Its
// validation mode (NaiveCommit) downgrades the device to a single-slot,
// unvalidated commit — the broken protocol the crash-consistency auditor
// (audit.go) must provably catch.
//
// Everything is deterministic for a given Plan.Seed, so any failing
// schedule is reproducible from a logged seed.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ehmodel/internal/device"
)

// Plan configures an Injector.
type Plan struct {
	// Seed drives every randomized decision. Runs with equal plans are
	// identical.
	Seed int64

	// CutCycles are absolute consumed-cycle counts at which the supply
	// is dropped, independent of the capacitor model.
	CutCycles []uint64
	// RandomCutMeanCycles, when positive, additionally drops the supply
	// at seeded-random intervals with this mean (exponential spacing).
	RandomCutMeanCycles float64

	// TornWriteProb is the per-word probability that the supply dies
	// immediately after that word of a checkpoint write lands — a torn
	// multi-word FRAM write. Scaling with image size is what makes one
	// rate fair across runtimes: a full-SRAM snapshot (~2k words) is
	// exposed to failure far longer than a register-only record.
	TornWriteProb float64
	// BitFlipRate is the per-stored-word probability, applied at every
	// restore, of flipping one random bit — FRAM corruption while
	// dormant.
	BitFlipRate float64
	// StaleRestoreProb is the per-restore probability of distrusting the
	// newest valid checkpoint and recovering from the older slot.
	StaleRestoreProb float64

	// NaiveCommit selects the single-slot, no-CRC validation mode.
	NaiveCommit bool
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"torn-write probability", p.TornWriteProb},
		{"bit-flip rate", p.BitFlipRate},
		{"stale-restore probability", p.StaleRestoreProb},
	} {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return fmt.Errorf("faults: %s %g outside [0,1]", pr.name, pr.v)
		}
	}
	if p.RandomCutMeanCycles < 0 || math.IsNaN(p.RandomCutMeanCycles) || math.IsInf(p.RandomCutMeanCycles, 0) {
		return fmt.Errorf("faults: random cut mean %g must be ≥ 0 and finite", p.RandomCutMeanCycles)
	}
	return nil
}

// Injector implements device.FaultInjector. Create one per device run
// configuration; BeginRun resets it, so a single injector may be reused
// across sequential runs.
type Injector struct {
	plan Plan

	rng     *rand.Rand
	cuts    []uint64 // sorted deterministic schedule
	cutIdx  int
	nextRnd uint64 // next random cut, cycle count; 0 = disabled
}

// New builds an injector from the plan.
func New(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{plan: p}
	inj.BeginRun()
	return inj, nil
}

// Plan returns the injector's configuration.
func (i *Injector) Plan() Plan { return i.plan }

// BeginRun implements device.FaultInjector: rewind the schedule and
// reseed the generator so repeated runs are identical.
func (i *Injector) BeginRun() {
	i.rng = rand.New(rand.NewSource(i.plan.Seed))
	i.cuts = append(i.cuts[:0], i.plan.CutCycles...)
	sort.Slice(i.cuts, func(a, b int) bool { return i.cuts[a] < i.cuts[b] })
	i.cutIdx = 0
	i.nextRnd = 0
	if i.plan.RandomCutMeanCycles > 0 {
		i.nextRnd = i.drawInterval()
	}
}

// drawInterval samples the next random inter-cut gap (≥ 1 cycle).
func (i *Injector) drawInterval() uint64 {
	gap := i.rng.ExpFloat64() * i.plan.RandomCutMeanCycles
	if gap < 1 {
		gap = 1
	}
	return uint64(gap)
}

// PowerCutDue implements device.FaultInjector.
func (i *Injector) PowerCutDue(cycles uint64) bool {
	due := false
	for i.cutIdx < len(i.cuts) && i.cuts[i.cutIdx] <= cycles {
		i.cutIdx++
		due = true
	}
	if i.nextRnd > 0 && cycles >= i.nextRnd {
		for i.nextRnd <= cycles {
			i.nextRnd += i.drawInterval()
		}
		due = true
	}
	return due
}

// NextPowerCut implements device.FaultInjector: peek at the earliest
// pending cut (deterministic schedule or the pre-drawn random cut)
// without advancing either.
func (i *Injector) NextPowerCut() uint64 {
	next := device.NoPowerCut
	if i.cutIdx < len(i.cuts) {
		next = i.cuts[i.cutIdx]
	}
	if i.nextRnd > 0 && i.nextRnd < next {
		next = i.nextRnd
	}
	return next
}

// TearBackup implements device.FaultInjector. The tear point is sampled
// geometrically: each word write independently survives with probability
// 1-p, and the first failure inside the image tears the backup there.
func (i *Injector) TearBackup(nWords int) int {
	p := i.plan.TornWriteProb
	if nWords <= 0 || p == 0 {
		return -1
	}
	u := i.rng.Float64()
	if u == 0 {
		u = 0.5
	}
	k := math.Log(u) / math.Log(1-p) // +Inf when p == 1 divides to 0
	if !(k < float64(nWords)) {
		return -1
	}
	return int(k)
}

// FlipBits implements device.FaultInjector.
func (i *Injector) FlipBits(words []uint32) int {
	if i.plan.BitFlipRate == 0 {
		return 0
	}
	flips := 0
	for idx := range words {
		if i.rng.Float64() < i.plan.BitFlipRate {
			words[idx] ^= 1 << uint(i.rng.Intn(32))
			flips++
		}
	}
	return flips
}

// ForceStale implements device.FaultInjector.
func (i *Injector) ForceStale() bool {
	return i.plan.StaleRestoreProb > 0 && i.rng.Float64() < i.plan.StaleRestoreProb
}

// NaiveCommit implements device.FaultInjector.
func (i *Injector) NaiveCommit() bool { return i.plan.NaiveCommit }

var _ device.FaultInjector = (*Injector)(nil)

// ParseSchedule parses a power-cut schedule specification into the
// plan's cut fields:
//
//	"none" or ""          no scheduled cuts
//	"cycles:N,N,..."      deterministic cuts at absolute cycle counts
//	"random:mean=N"       seeded-random cuts with mean interval N cycles
func (p *Plan) ParseSchedule(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil
	}
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("faults: schedule %q needs the form kind:args", spec)
	}
	switch kind {
	case "cycles":
		for _, f := range strings.Split(arg, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return fmt.Errorf("faults: schedule cycle %q: %w", f, err)
			}
			p.CutCycles = append(p.CutCycles, v)
		}
	case "random":
		val, found := strings.CutPrefix(arg, "mean=")
		if !found {
			return fmt.Errorf("faults: random schedule %q needs mean=N", arg)
		}
		mean, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("faults: random schedule mean %q: %w", val, err)
		}
		if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
			return fmt.Errorf("faults: random schedule mean %g must be > 0 and finite", mean)
		}
		p.RandomCutMeanCycles = mean
	default:
		return fmt.Errorf("faults: unknown schedule kind %q (want cycles: or random:)", kind)
	}
	return nil
}
