package faults

import (
	"context"
	"testing"

	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// campaignCell returns the standard campaign benchmark cell: the timer
// runtime downgraded to the naive single-slot commit, counting to 2000.
// A cut inside a (non-first) checkpoint write tears the only slot and
// the un-validated restore silently diverges — the known torn-state
// violation the campaign must find efficiently.
func campaignCell(t *testing.T) (strategy.Spec, string) {
	t.Helper()
	spec, ok := strategy.Lookup("timer")
	if !ok {
		t.Fatal("timer strategy missing")
	}
	return spec, "counter"
}

func TestCampaignFindsNaiveCommitTornState(t *testing.T) {
	ctx := context.Background()
	spec, wl := campaignCell(t)
	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Plan:     Plan{NaiveCommit: true},
		Budget:   64,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("campaign missed the naive-commit violation in %d schedules over %d windows",
			rep.Schedules, rep.Coverage.Frontier)
	}
	v := rep.Violations[0]
	if v.Class != obsv.ClassTornState {
		t.Fatalf("found class %s, want %s", v.Class, obsv.ClassTornState)
	}
	if rep.FirstFinding < 1 || rep.FirstFinding > rep.Schedules {
		t.Fatalf("FirstFinding = %d outside [1, %d]", rep.FirstFinding, rep.Schedules)
	}
	if rep.Coverage.Attacked < 1 || rep.Coverage.Attacked > rep.Coverage.Frontier {
		t.Fatalf("coverage %d/%d inconsistent", rep.Coverage.Attacked, rep.Coverage.Frontier)
	}

	// The minimized counterexample is a single cut that replays
	// deterministically to the same verdict class — twice.
	if len(v.Case.Cuts) != 1 {
		t.Fatalf("shrinker left %d cuts, want 1 (case %s)", len(v.Case.Cuts), v.Case)
	}
	for i := 0; i < 2; i++ {
		c, err := ParseCase(v.Case.String())
		if err != nil {
			t.Fatalf("ParseCase(%q): %v", v.Case.String(), err)
		}
		out, err := ReplayCase(ctx, c, runner.Options{})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if !out.HasClass(v.Class) {
			t.Fatalf("replay %d of %q lost the %s verdict: %v", i, v.Case, v.Class, out.Violations)
		}
	}
}

// uniformFirstFinding measures the baseline the campaign competes
// against: single uniformly random cuts over the probe's cycle space,
// same per-run environment, counted until the first violation (capped
// at budget).
func uniformFirstFinding(ctx context.Context, t *testing.T, spec strategy.Spec, wl string, space uint64, seed uint64, budget int) int {
	t.Helper()
	w, ok := workload.Get(wl)
	if !ok {
		t.Fatalf("workload %s missing", wl)
	}
	opts := workload.Options{Seg: spec.Seg}
	prog, err := w.Build(opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := w.Ref(opts)
	for k := 1; k <= budget; k++ {
		cut := 1 + splitmix(seed^uint64(k)<<20)%space
		c := Case{Strategy: spec.Name, Workload: wl, Seed: int64(seed),
			Cuts: []uint64{cut}, Naive: true}
		out, err := AuditRun(ctx, Options{}, spec.New(), prog, want, c)
		if err != nil {
			t.Fatalf("uniform schedule %d: %v", k, err)
		}
		if out != nil && len(out.Violations) > 0 {
			return k
		}
	}
	return budget + 1
}

// TestCampaignBeatsUniformRandom is the search-efficiency acceptance
// check: the frontier-biased campaign must find the naive-commit
// torn-state violation in at most 25% of the schedules uniform-random
// placement needs, averaged over several uniform streams.
func TestCampaignBeatsUniformRandom(t *testing.T) {
	ctx := context.Background()
	spec, wl := campaignCell(t)

	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Plan:     Plan{NaiveCommit: true},
		Budget:   64,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if rep.Ok() || rep.FirstFinding == 0 {
		t.Fatal("campaign found nothing; efficiency comparison impossible")
	}

	const budget = 64
	total := 0
	streams := []uint64{101, 202, 303, 404, 505}
	for _, s := range streams {
		total += uniformFirstFinding(ctx, t, spec, wl, rep.ProbeCycles, s, budget)
	}
	uniformMean := float64(total) / float64(len(streams))
	t.Logf("campaign first finding: schedule %d; uniform mean over %d streams: %.1f",
		rep.FirstFinding, len(streams), uniformMean)
	if ratio := float64(rep.FirstFinding) / uniformMean; ratio > 0.25 {
		t.Fatalf("campaign needed %d schedules vs uniform mean %.1f (ratio %.2f > 0.25)",
			rep.FirstFinding, uniformMean, ratio)
	}
}

// TestCampaignCleanCell guards the other direction: against the honest
// two-slot protocol with a cuts-only mix the campaign must come up
// empty while still covering its frontier.
func TestCampaignCleanCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spends the whole budget finding nothing")
	}
	ctx := context.Background()
	spec, wl := campaignCell(t)
	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Budget:   16,
		Seed:     11,
		Oracle:   true,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("honest protocol violated: %v", rep.Violations)
	}
	if rep.Schedules != 16 {
		t.Fatalf("clean campaign stopped after %d schedules, want the full 16", rep.Schedules)
	}
	if rep.Coverage.Attacked == 0 {
		t.Fatal("campaign attacked no windows")
	}
}

// TestCampaignMetricsExported checks the obsv wiring end to end: a
// finding campaign must surface schedule, coverage, finding and shrink
// statistics through the standard metrics aggregation.
func TestCampaignMetricsExported(t *testing.T) {
	ctx := context.Background()
	spec, wl := campaignCell(t)
	coll := obsv.NewCollector()
	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Plan:     Plan{NaiveCommit: true},
		Budget:   64,
		Seed:     7,
		Observe:  coll.Tracer(),
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if rep.Ok() {
		t.Fatal("campaign found nothing; metrics comparison impossible")
	}
	m := coll.Aggregate()
	if got := m.CampaignSchedules; got != uint64(rep.Schedules) {
		t.Errorf("CampaignSchedules = %d, want %d", got, rep.Schedules)
	}
	if got := m.CampaignFrontier; got != uint64(rep.Coverage.Frontier) {
		t.Errorf("CampaignFrontier = %d, want %d", got, rep.Coverage.Frontier)
	}
	if got := m.CampaignAttacked; got != uint64(rep.Coverage.Attacked) {
		t.Errorf("CampaignAttacked = %d, want %d", got, rep.Coverage.Attacked)
	}
	if got := m.CampaignFindings; got != uint64(len(rep.Violations)) {
		t.Errorf("CampaignFindings = %d, want %d", got, len(rep.Violations))
	}
	if m.Verdicts[obsv.ClassTornState] == 0 {
		t.Error("torn-state verdict not counted")
	}
	if m.ShrinkRuns.Count == 0 {
		t.Error("shrink statistics not exported")
	}
	if m.CaseCuts.Count != uint64(len(rep.Violations)) {
		t.Errorf("CaseCuts.Count = %d, want one observation per finding (%d)", m.CaseCuts.Count, len(rep.Violations))
	}
}
