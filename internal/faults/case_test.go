package faults

import (
	"reflect"
	"testing"
)

// TestCaseStringRoundTrip: ParseCase(c.String()) must reproduce c for
// every shape of case the auditor and campaign print.
func TestCaseStringRoundTrip(t *testing.T) {
	cases := []Case{
		{Strategy: "timer", Workload: "counter", Seed: 1},
		{Strategy: "clank", Workload: "qsort", Seed: -3},
		{Strategy: "timer", Workload: "counter", Seed: 7, Cuts: []uint64{3284}, Naive: true},
		{Strategy: "chain", Workload: "sense", Seed: 1, Cuts: []uint64{400}, Stale: 1, Oracle: true},
		{Strategy: "timer+sense", Workload: "sense", Seed: 2, MeanCut: 7000,
			Torn: 0.001, Flips: 0.0015, Stale: 0.05, Oracle: true, Fresh: 500,
			Period: 20000, Periods: 20000},
		{Strategy: "dino", Workload: "ds", Seed: 9, Cuts: []uint64{100, 2500, 90000}},
	}
	for _, c := range cases {
		s := c.String()
		got, err := ParseCase(s)
		if err != nil {
			t.Errorf("ParseCase(%q): %v", s, err)
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("round trip of %q:\n got %+v\nwant %+v", s, got, c)
		}
		// The printed form is canonical: re-printing reproduces it.
		if again := got.String(); again != s {
			t.Errorf("String not canonical: %q re-printed as %q", s, again)
		}
	}
}

func TestParseCaseErrors(t *testing.T) {
	bad := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no slash", "timer seed=1"},
		{"empty strategy", "/counter seed=1"},
		{"empty workload", "timer/ seed=1"},
		{"missing seed value", "timer/counter seed="},
		{"seed not a number", "timer/counter seed=abc"},
		{"unknown token", "timer/counter seed=1 laser=9"},
		{"bare unknown flag", "timer/counter seed=1 turbo"},
		{"naive with value", "timer/counter seed=1 naive=1"},
		{"oracle with value", "timer/counter seed=1 oracle=yes"},
		{"cuts empty element", "timer/counter seed=1 cuts=100,,200"},
		{"cuts negative", "timer/counter seed=1 cuts=-5"},
		{"torn negative", "timer/counter seed=1 torn=-0.1"},
		{"torn nan", "timer/counter seed=1 torn=NaN"},
		{"mean inf", "timer/counter seed=1 mean=+Inf"},
		{"fresh not a number", "timer/counter seed=1 fresh=soon"},
		{"period nan", "timer/counter seed=1 period=NaN"},
		{"periods fractional", "timer/counter seed=1 periods=1.5"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			got, err := ParseCase(c.in)
			if err == nil {
				t.Fatalf("ParseCase(%q) accepted as %+v", c.in, got)
			}
		})
	}
}

// TestParseCaseWhitespace: token spacing is free-form; the parse is
// insensitive to runs of spaces.
func TestParseCaseWhitespace(t *testing.T) {
	a, err := ParseCase("timer/counter seed=1 cuts=5,9 naive")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCase("  timer/counter   seed=1   cuts=5,9   naive  ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("whitespace changed the parse: %+v vs %+v", a, b)
	}
}

// FuzzParseCase: no input may panic the parser, and any accepted input
// must round-trip through the canonical printed form.
func FuzzParseCase(f *testing.F) {
	f.Add("timer/counter seed=1")
	f.Add("chain/sense seed=1 cuts=400 stale=1 oracle period=20000 periods=20000")
	f.Add("timer/counter seed=7 cuts=3284 naive")
	f.Add("a/b seed=0 mean=1e9 torn=1 flips=1 stale=1 fresh=18446744073709551615")
	f.Add("  /  = naive oracle cuts=")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCase(s)
		if err != nil {
			return
		}
		printed := c.String()
		again, err := ParseCase(printed)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", printed, s, err)
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("round trip unstable for %q:\n first %+v\nsecond %+v", s, c, again)
		}
	})
}
