package faults

import (
	"context"
	"reflect"
	"testing"

	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// oracle_test.go — regression tests for the formal correctness oracle:
// violations the final-output comparison is provably blind to, pinned
// to their verdict classes.

// replayedInputCase is the seeded freshness violation: the sense
// workload under chain with one supply cut and a forced stale restore.
// The rollback crosses a commit that already persisted input #0, the
// reboot re-reads it, and a later commit persists it again. Because the
// simulated environment is deterministic, the re-read returns the same
// value and the final output still matches the continuous oracle —
// exactly the violation the PR-1 final-memory check cannot see.
const replayedInputCase = "chain/sense seed=1 cuts=400 stale=1 oracle"

func TestOracleCatchesReplayedInput(t *testing.T) {
	ctx := context.Background()
	c, err := ParseCase(replayedInputCase)
	if err != nil {
		t.Fatalf("ParseCase: %v", err)
	}
	out, err := ReplayCase(ctx, c, runner.Options{})
	if err != nil {
		t.Fatalf("ReplayCase: %v", err)
	}

	// The run is invisible to the final-memory check: it completes and
	// its committed output equals the continuous execution's.
	if !out.Completed {
		t.Fatal("run did not complete; the scenario must finish to show the blind spot")
	}
	spec, _ := strategy.Lookup("chain")
	w, _ := workload.Get("sense")
	want := w.Ref(workload.Options{Seg: spec.Seg})
	if !reflect.DeepEqual(out.Output, want) {
		t.Fatalf("final output diverged (got %v, want %v); the scenario must pass the output check", out.Output, want)
	}
	if out.HasClass(obsv.ClassTornState) || out.HasClass(obsv.ClassIncomplete) {
		t.Fatalf("base auditor flagged the run (%v); the scenario must only be visible to the oracle", out.Violations)
	}

	// The oracle sees the duplicated committed observation.
	if !out.HasClass(obsv.ClassReplayedInput) {
		t.Fatalf("oracle missed the replayed input; violations: %v", out.Violations)
	}

	// Without the oracle the identical schedule reports nothing — the
	// blind spot this oracle exists to close.
	blind := c
	blind.Oracle = false
	bout, err := ReplayCase(ctx, blind, runner.Options{})
	if err != nil {
		t.Fatalf("ReplayCase (oracle off): %v", err)
	}
	if len(bout.Violations) != 0 {
		t.Fatalf("final-output auditor reported %v without the oracle; scenario no longer isolates the blind spot", bout.Violations)
	}
}

// TestOracleReplayDeterministic pins the repro contract: replaying the
// printed case string reproduces the identical verdict classes.
func TestOracleReplayDeterministic(t *testing.T) {
	ctx := context.Background()
	c, err := ParseCase(replayedInputCase)
	if err != nil {
		t.Fatalf("ParseCase: %v", err)
	}
	first, err := ReplayCase(ctx, c, runner.Options{})
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	// Round-trip through the printed (enriched) form, as -repro does.
	again, err := ParseCase(first.Case.String())
	if err != nil {
		t.Fatalf("ParseCase(%q): %v", first.Case.String(), err)
	}
	second, err := ReplayCase(ctx, again, runner.Options{})
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !reflect.DeepEqual(first.Classes(), second.Classes()) {
		t.Fatalf("replay diverged: first %v, second %v", first.Classes(), second.Classes())
	}
}

// TestOracleTimeliness checks the input-freshness obligation: under a
// plain timer runtime the sense workload's reads sit uncommitted until
// the next periodic checkpoint, so a tight freshness bound is violated
// even on fault-free power. Wrapping the same runtime in SenseCommit
// (commit immediately after every input read) restores timeliness.
func TestOracleTimeliness(t *testing.T) {
	ctx := context.Background()
	spec, ok := strategy.Lookup("timer")
	if !ok {
		t.Fatal("timer strategy missing")
	}
	w, ok := workload.Get("sense")
	if !ok {
		t.Fatal("sense workload missing")
	}
	opts := workload.Options{Seg: spec.Seg}
	prog, err := w.Build(opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := w.Ref(opts)

	// Fault-free plan (seed only) so the verdict isolates the
	// checkpoint cadence, not the attack mix.
	o := Options{Plan: Plan{Seed: 1}, Oracle: true, FreshnessBound: 500}

	bare, err := AuditRun(ctx, o, spec.New(), prog, want, Case{Strategy: "timer", Workload: "sense", Seed: 1})
	if err != nil {
		t.Fatalf("AuditRun (timer): %v", err)
	}
	if !bare.Completed {
		t.Fatal("timer run did not complete")
	}
	if !bare.HasClass(obsv.ClassTimeliness) {
		t.Fatalf("timer/sense with bound 500 should violate timeliness; violations: %v", bare.Violations)
	}

	protected, err := AuditRun(ctx, o, strategy.NewSenseCommit(spec.New()), prog, want,
		Case{Strategy: "timer+sense", Workload: "sense", Seed: 1})
	if err != nil {
		t.Fatalf("AuditRun (timer+sense): %v", err)
	}
	if !protected.Completed || !reflect.DeepEqual(protected.Output, want) {
		t.Fatalf("SenseCommit wrapper broke the run: completed=%v output=%v", protected.Completed, protected.Output)
	}
	if len(protected.Violations) != 0 {
		t.Fatalf("SenseCommit should satisfy the freshness bound; violations: %v", protected.Violations)
	}
}

// TestOracleCleanUnderHonestProtocol guards against false positives:
// the two-slot protocol under the crash-model attack mix (supply cuts
// and torn checkpoint writes) must stay violation-free with the oracle
// attached — an honest reboot restores the latest valid commit, so
// re-execution covers only uncommitted work and no committed
// observation is ever duplicated. The dormant-state attacks are
// excluded deliberately, because against them replayed inputs are TRUE
// positives for any input-unprotected runtime: a forced stale restore
// rolls back past a commit by construction
// (TestOracleCatchesReplayedInput relies on exactly that), and bit
// flips can corrupt every stored slot, forcing a cold start that
// re-reads already-committed inputs.
func TestOracleCleanUnderHonestProtocol(t *testing.T) {
	ctx := context.Background()
	plan := DefaultPlan()
	plan.StaleRestoreProb = 0
	plan.BitFlipRate = 0
	rep, err := Audit(ctx, Options{
		Workloads: []string{"sense", "counter"},
		Schedules: 2,
		BaseSeed:  3,
		Plan:      plan,
		Oracle:    true,
	})
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("false positive: %v", v)
		}
		t.Fatalf("%d oracle violations under the honest protocol", len(rep.Violations))
	}
}
