package faults

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// The differential crash-consistency auditor: run strategy × workload
// matrices under randomized failure schedules and assert that the
// committed output of every faulted intermittent run equals the
// continuous-power oracle. Any divergence — wrong output, a simulator
// error raised by restoring corrupt state, or a run that starves — is a
// Violation carrying the exact case that reproduces it. With
// Options.Oracle set, the device additionally records its observation
// sequence and the formal correctness oracle (oracle.go) classifies
// violations the final-output comparison cannot see: replayed inputs,
// stale output re-exposure and input-freshness breaches.
//
// Correctness under attack is fail-stop, not fail-silent: a run either
// commits output identical to the oracle, or detects that its
// nonvolatile state cannot be recovered consistently and aborts with
// device.ErrUnrecoverable (counted in Report.Unrecoverable). The latter
// arises for runtimes that keep mutable data in FRAM (Clank, Ratchet,
// NVP) when corruption or a forced stale restore would roll execution
// back past a commit whose FRAM stores are already permanent — no
// checkpoint protocol can undo those, so detecting the hazard is the
// honest outcome. Silently diverging instead is exactly what the naive
// single-slot mode does, and what the auditor exists to catch.

// Violation is one correctness failure the auditor caught, tagged with
// its verdict class. Its Case is self-contained (the fault plan is
// embedded), so String prints a schedule `ehsim -audit -repro` replays
// verbatim.
type Violation struct {
	Case Case
	// Class is the verdict taxonomy entry; Detail carries the first
	// witnessing instance for the oracle-side classes.
	Class  obsv.VerdictClass
	Detail string
	// Err is non-nil when the run aborted (e.g. the device restored a
	// corrupt checkpoint); otherwise Got/Want may carry the diverging
	// committed output.
	Err       error
	Got, Want []uint32
	// Incomplete marks a run that hit its period/cycle limits without
	// halting (Class is ClassIncomplete).
	Incomplete bool
}

func (v Violation) String() string {
	head := fmt.Sprintf("[%s] %s", v.Class, v.Case)
	switch {
	case v.Err != nil:
		return fmt.Sprintf("%s: %v", head, v.Err)
	case v.Incomplete:
		return fmt.Sprintf("%s: run did not complete", head)
	case v.Detail != "":
		return fmt.Sprintf("%s: %s", head, v.Detail)
	default:
		return fmt.Sprintf("%s: committed output diverged from oracle\n got %v\nwant %v", head, v.Got, v.Want)
	}
}

// Options configures an audit sweep.
type Options struct {
	// Strategies to audit; nil means the full strategy catalog.
	Strategies []strategy.Spec
	// Workloads to audit by name; nil means the default set
	// {counter, ds, crc, qsort}.
	Workloads []string
	// Schedules is the number of seeded failure schedules per
	// strategy × workload cell (default 8).
	Schedules int
	// BaseSeed derives each cell's schedule seeds; equal base seeds
	// reproduce the whole sweep.
	BaseSeed int64
	// Plan is the fault mix template. Its Seed field is overwritten per
	// schedule. A zero plan gets a default attack: random supply cuts,
	// torn writes, bit flips and forced stale restores all enabled.
	Plan Plan
	// Oracle attaches the observation recorder to every run and applies
	// the formal correctness classification (oracle.go) on top of the
	// final-output comparison.
	Oracle bool
	// FreshnessBound is the timeliness obligation in executed cycles: a
	// committed input older than this at its commit is a violation.
	// Zero disables the check. Only meaningful with Oracle.
	FreshnessBound uint64
	// PeriodCycles is the per-period energy budget in ALU cycles
	// (default 20000, matching the strategy integration tests).
	PeriodCycles float64
	// MaxPeriods bounds each run (default 20000).
	MaxPeriods int
	// Run configures the parallel sweep engine (worker count, per-run
	// deadline). The report is assembled in input order, so it is
	// identical at any worker count.
	Run runner.Options
}

// DefaultWorkloads is the audit's standard workload set: a WAR-free
// counter, a pointer-chasing data structure, a table-driven CRC and a
// recursive sort — four distinct store/restore behaviour classes.
var DefaultWorkloads = []string{"counter", "ds", "crc", "qsort"}

// DefaultPlan is the standard attack mix: seeded-random supply cuts at a
// mean interval well under a period, torn checkpoint writes, bit flips
// in stored checkpoints and occasional forced stale restores. Tear and
// flip rates are per word, so exposure scales with checkpoint image
// size; at ~40-word footprint images the rates land a tear every few
// hundred backups and roughly one flip per run — enough to exercise CRC
// rejection, slot fallback, fail-stop detection and cold restarts
// across a sweep without starving high-frequency checkpointers.
func DefaultPlan() Plan {
	return Plan{
		RandomCutMeanCycles: 7000,
		TornWriteProb:       1e-3,
		BitFlipRate:         1e-3,
		StaleRestoreProb:    0.05,
	}
}

// CaseVerdict is one audited schedule's outcome, for the machine-
// parseable per-schedule audit log: "ok" (output matched the oracle),
// "violation" (crash consistency broke), or "unrecoverable" (honest
// fail-stop — the device detected that no consistent recovery existed).
// Classes lists the verdict classes of a violation outcome.
type CaseVerdict struct {
	Case    Case
	Outcome string
	Classes []obsv.VerdictClass
}

// Report aggregates an audit sweep.
type Report struct {
	Runs       int
	Violations []Violation
	// Verdicts lists every completed schedule's outcome in input order
	// (dropped cells — deadline, panic, cancellation — are absent; they
	// appear in the runner's error summary instead).
	Verdicts []CaseVerdict
	// Classes counts reported violations per verdict class.
	Classes [obsv.NumVerdictClasses]int
	// Unrecoverable counts runs that fail-stopped with
	// device.ErrUnrecoverable: the device detected that no
	// crash-consistent recovery existed. These are successful
	// detections, not violations.
	Unrecoverable int
	// Faults sums the per-run fault reports — evidence the attack
	// surface was actually exercised.
	Faults device.FaultReport
}

// Ok reports whether every audited run matched the oracle.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (o *Options) setDefaults() {
	if o.Strategies == nil {
		o.Strategies = strategy.Catalog()
	}
	if o.Workloads == nil {
		o.Workloads = DefaultWorkloads
	}
	if o.Schedules == 0 {
		o.Schedules = 8
	}
	if reflect.DeepEqual(o.Plan, Plan{}) {
		o.Plan = DefaultPlan()
	}
	if o.PeriodCycles == 0 {
		o.PeriodCycles = 20000
	}
	if o.MaxPeriods == 0 {
		o.MaxPeriods = 20000
	}
}

// caseSeed derives a per-cell, per-schedule seed from the base seed.
// splitmix-style mixing keeps neighbouring cells decorrelated while
// staying reproducible.
func caseSeed(base int64, strat, wl string, k int) int64 {
	h := uint64(base)*0x9e3779b97f4a7c15 + uint64(k+1)
	for _, s := range []string{strat, wl} {
		for _, c := range s {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
	}
	h ^= h >> 33
	return int64(h & 0x7fffffffffffffff)
}

// Audit runs the sweep through the parallel sweep engine and returns
// the report. Setup errors (unknown workload, bad plan, a benchmark
// that fails to build) abort with an error before any schedule runs;
// crash-consistency failures are collected as violations instead. Runs
// that the engine drops (cancellation, per-run deadline, panic) are
// excluded from the report, which is returned partially populated
// alongside the runner errors.
func Audit(ctx context.Context, o Options) (*Report, error) {
	o.setDefaults()
	if err := o.Plan.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		spec strategy.Spec
		prog *asm.Program
		want []uint32
		c    Case
	}
	var cells []cell
	for _, spec := range o.Strategies {
		for _, wname := range o.Workloads {
			w, ok := workload.Get(wname)
			if !ok {
				return nil, fmt.Errorf("faults: unknown workload %q", wname)
			}
			opts := workload.Options{Seg: spec.Seg}
			prog, err := w.Build(opts)
			if err != nil {
				return nil, fmt.Errorf("faults: building %s for %s: %w", wname, spec.Name, err)
			}
			want := w.Ref(opts)
			for k := 0; k < o.Schedules; k++ {
				c := Case{Strategy: spec.Name, Workload: wname, Seed: caseSeed(o.BaseSeed, spec.Name, wname, k)}
				cells = append(cells, cell{spec: spec, prog: prog, want: want, c: c})
			}
		}
	}
	ro := o.Run
	ro.Label = func(i int) string { return "audit " + cells[i].c.String() }
	results, errs := runner.Map(ctx, len(cells), ro, func(i int) (*RunOutcome, error) {
		cl := cells[i]
		return AuditRun(ctx, o, cl.spec.New(), cl.prog, cl.want, cl.c)
	})
	failed := errs.FailedSet()

	rep := &Report{}
	for i := range cells {
		if failed[i] {
			continue
		}
		r := results[i]
		rep.Runs++
		accumulate(&rep.Faults, r.Faults)
		outcome := "ok"
		if r.Unrecoverable {
			rep.Unrecoverable++
			outcome = "unrecoverable"
		}
		var classes []obsv.VerdictClass
		if len(r.Violations) > 0 {
			outcome = "violation"
			for _, v := range r.Violations {
				rep.Violations = append(rep.Violations, v)
				rep.Classes[v.Class]++
				classes = append(classes, v.Class)
			}
		}
		rep.Verdicts = append(rep.Verdicts, CaseVerdict{Case: cells[i].c, Outcome: outcome, Classes: classes})
	}
	if len(errs) > 0 {
		return rep, errs
	}
	return rep, nil
}

// RunOutcome is one audited schedule's full result: the (enriched,
// replayable) case, every violation found with its verdict class, the
// fail-stop flag, the exercised-fault evidence, and — in oracle mode —
// the raw observation log for callers that classify further.
type RunOutcome struct {
	Case       Case
	Violations []Violation
	// Unrecoverable marks an honest fail-stop: the device detected that
	// no crash-consistent recovery existed. A successful detection, not
	// a violation.
	Unrecoverable bool
	Completed     bool
	Output        []uint32
	Faults        device.FaultReport
	// Log is the observation record of the run (oracle mode only).
	Log *device.ObsLog
}

// Classes returns the distinct verdict classes among the violations.
func (r *RunOutcome) Classes() []obsv.VerdictClass {
	out := make([]obsv.VerdictClass, 0, len(r.Violations))
	for _, v := range r.Violations {
		out = append(out, v.Class)
	}
	return out
}

// HasClass reports whether some violation carries the class.
func (r *RunOutcome) HasClass(class obsv.VerdictClass) bool {
	for _, v := range r.Violations {
		if v.Class == class {
			return true
		}
	}
	return false
}

// AuditRun runs one faulted schedule of prog under a caller-supplied
// strategy instance and checks it against the continuous oracle's
// output want. It is the single-cell core of Audit, exported so callers
// that need to inspect strategy-side state after the run (e.g. Clank's
// violation words in the analyzer's cross-validation) can hold on to
// strat. Zero fields of o pick the same defaults as Audit. A bare case
// runs o.Plan reseeded with c.Seed; a self-contained case (embedded
// plan fields, e.g. one produced by ParseCase or the campaign shrinker)
// overrides the plan and the oracle/run-shape options entirely.
func AuditRun(ctx context.Context, o Options, strat device.Strategy, prog *asm.Program, want []uint32, c Case) (*RunOutcome, error) {
	o.setDefaults()
	plan := o.Plan
	if c.hasPlan() {
		plan = c.plan()
	} else {
		plan.Seed = c.Seed
	}
	if c.Oracle {
		o.Oracle = true
	}
	if c.Fresh > 0 {
		o.FreshnessBound = c.Fresh
	}
	if c.Period > 0 {
		o.PeriodCycles = c.Period
	}
	if c.Periods > 0 {
		o.MaxPeriods = c.Periods
	}
	var rec *device.ObsLog
	if o.Oracle {
		rec = &device.ObsLog{}
	}
	res, err := runCase(ctx, &o, strat, prog, plan, rec, nil)
	out := &RunOutcome{Case: enrich(c, &o, plan), Log: rec}
	switch {
	case errors.Is(err, device.ErrUnrecoverable):
		// Honest fail-stop: the device detected unrecoverable NVM state
		// instead of silently diverging.
		out.Unrecoverable = true
		return out, nil
	case errors.Is(err, device.ErrDeadlineExceeded) || ctx.Err() != nil:
		// Resource exhaustion, not a consistency verdict: let the sweep
		// engine record this cell as dropped rather than misreporting it
		// as a violation.
		return nil, err
	case err != nil:
		out.Violations = append(out.Violations,
			Violation{Case: out.Case, Class: obsv.ClassTornState, Err: err})
		return out, nil
	}
	out.Completed = res.Completed
	out.Output = res.Output
	out.Faults = res.Faults
	if !res.Completed {
		out.Violations = append(out.Violations,
			Violation{Case: out.Case, Class: obsv.ClassIncomplete, Incomplete: true})
	} else if !reflect.DeepEqual(res.Output, want) {
		out.Violations = append(out.Violations,
			Violation{Case: out.Case, Class: obsv.ClassTornState, Got: res.Output, Want: want})
	}
	if rec != nil {
		claimed := false
		if ip, ok := strat.(device.InputProtector); ok {
			claimed = ip.InputsProtected()
		}
		for _, v := range classify(rec, want, o.FreshnessBound, claimed, out.Case) {
			if !out.HasClass(v.Class) {
				out.Violations = append(out.Violations, v)
			}
		}
	}
	return out, nil
}

// enrich returns c as a self-contained case: the exact plan that ran
// plus the oracle and run-shape settings needed to replay it verbatim.
func enrich(c Case, o *Options, plan Plan) Case {
	c = c.withPlan(plan)
	c.Oracle = o.Oracle
	c.Fresh = o.FreshnessBound
	c.Period = o.PeriodCycles
	c.Periods = o.MaxPeriods
	return c
}

// runCase executes one faulted device run: injector from plan, fixed
// supply sized for o.PeriodCycles, optional observation recorder and
// tracer. It is shared by the sweep auditor and the adversarial
// campaign so a shrunk counterexample replays in exactly the
// environment that found it.
func runCase(ctx context.Context, o *Options, strat device.Strategy, prog *asm.Program, plan Plan, rec *device.ObsLog, obs obsv.Tracer) (*device.Result, error) {
	inj, err := New(plan)
	if err != nil {
		return nil, err
	}
	pm := energy.MSP430Power()
	e := o.PeriodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: o.MaxPeriods, MaxCycles: 2_000_000_000,
		Faults:     inj,
		Record:     rec,
		Observe:    obs,
		RunTimeout: o.Run.RunTimeout,
		Interrupt:  runner.Interrupt(ctx),
	}
	d, err := device.New(cfg, strat)
	if err != nil {
		return nil, fmt.Errorf("faults: configuring %s/%s: %w", strat.Name(), prog.Name, err)
	}
	return d.Run()
}

// ReplayCase rebuilds and re-runs one self-contained case — the
// `ehsim -audit -repro` path. The strategy is resolved from the catalog
// (a "+sense" suffix wraps it in the SenseCommit input-freshness
// protocol) and the workload's continuous reference is recomputed, so
// the outcome depends on nothing but the case string.
func ReplayCase(ctx context.Context, c Case, run runner.Options) (*RunOutcome, error) {
	name := c.Strategy
	wrap := false
	if base, ok := strings.CutSuffix(name, "+sense"); ok {
		name, wrap = base, true
	}
	spec, ok := strategy.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("faults: unknown strategy %q", c.Strategy)
	}
	w, ok := workload.Get(c.Workload)
	if !ok {
		return nil, fmt.Errorf("faults: unknown workload %q", c.Workload)
	}
	opts := workload.Options{Seg: spec.Seg}
	prog, err := w.Build(opts)
	if err != nil {
		return nil, fmt.Errorf("faults: building %s: %w", c.Workload, err)
	}
	strat := spec.New()
	if wrap {
		strat = strategy.NewSenseCommit(strat)
	}
	o := Options{Run: run}
	if !c.hasPlan() {
		// A bare case replays under the default sweep attack, matching
		// how Audit would have run it.
		o.Plan = DefaultPlan()
	}
	return AuditRun(ctx, o, strat, prog, w.Ref(opts), c)
}

func accumulate(total *device.FaultReport, r device.FaultReport) {
	total.PowerCuts += r.PowerCuts
	total.InjectedTears += r.InjectedTears
	total.TornBackups += r.TornBackups
	total.BitFlips += r.BitFlips
	total.CRCRejections += r.CRCRejections
	total.StaleRestores += r.StaleRestores
	total.ForcedStale += r.ForcedStale
	total.ColdRestarts += r.ColdRestarts
}
