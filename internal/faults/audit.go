package faults

import (
	"context"
	"errors"
	"fmt"
	"reflect"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// The differential crash-consistency auditor: run strategy × workload
// matrices under randomized failure schedules and assert that the
// committed output of every faulted intermittent run equals the
// continuous-power oracle. Any divergence — wrong output, a simulator
// error raised by restoring corrupt state, or a run that starves — is a
// Violation carrying the exact seed that reproduces it.
//
// Correctness under attack is fail-stop, not fail-silent: a run either
// commits output identical to the oracle, or detects that its
// nonvolatile state cannot be recovered consistently and aborts with
// device.ErrUnrecoverable (counted in Report.Unrecoverable). The latter
// arises for runtimes that keep mutable data in FRAM (Clank, Ratchet,
// NVP) when corruption or a forced stale restore would roll execution
// back past a commit whose FRAM stores are already permanent — no
// checkpoint protocol can undo those, so detecting the hazard is the
// honest outcome. Silently diverging instead is exactly what the naive
// single-slot mode does, and what the auditor exists to catch.

// Case identifies one audited run.
type Case struct {
	Strategy string
	Workload string
	// Seed is the injector seed of this schedule; it fully reproduces
	// the run.
	Seed int64
}

func (c Case) String() string {
	return fmt.Sprintf("%s/%s seed=%d", c.Strategy, c.Workload, c.Seed)
}

// Violation is one crash-consistency failure the auditor caught.
type Violation struct {
	Case Case
	// Err is non-nil when the run aborted (e.g. the device restored a
	// corrupt checkpoint); otherwise Got/Want carry the diverging
	// committed output.
	Err       error
	Got, Want []uint32
	// Incomplete marks a run that hit its period/cycle limits without
	// halting.
	Incomplete bool
}

func (v Violation) String() string {
	switch {
	case v.Err != nil:
		return fmt.Sprintf("%s: %v", v.Case, v.Err)
	case v.Incomplete:
		return fmt.Sprintf("%s: run did not complete", v.Case)
	default:
		return fmt.Sprintf("%s: committed output diverged from oracle\n got %v\nwant %v", v.Case, v.Got, v.Want)
	}
}

// Options configures an audit sweep.
type Options struct {
	// Strategies to audit; nil means the full strategy catalog.
	Strategies []strategy.Spec
	// Workloads to audit by name; nil means the default set
	// {counter, ds, crc, qsort}.
	Workloads []string
	// Schedules is the number of seeded failure schedules per
	// strategy × workload cell (default 8).
	Schedules int
	// BaseSeed derives each cell's schedule seeds; equal base seeds
	// reproduce the whole sweep.
	BaseSeed int64
	// Plan is the fault mix template. Its Seed field is overwritten per
	// schedule. A zero plan gets a default attack: random supply cuts,
	// torn writes, bit flips and forced stale restores all enabled.
	Plan Plan
	// PeriodCycles is the per-period energy budget in ALU cycles
	// (default 20000, matching the strategy integration tests).
	PeriodCycles float64
	// MaxPeriods bounds each run (default 20000).
	MaxPeriods int
	// Run configures the parallel sweep engine (worker count, per-run
	// deadline). The report is assembled in input order, so it is
	// identical at any worker count.
	Run runner.Options
}

// DefaultWorkloads is the audit's standard workload set: a WAR-free
// counter, a pointer-chasing data structure, a table-driven CRC and a
// recursive sort — four distinct store/restore behaviour classes.
var DefaultWorkloads = []string{"counter", "ds", "crc", "qsort"}

// DefaultPlan is the standard attack mix: seeded-random supply cuts at a
// mean interval well under a period, torn checkpoint writes, bit flips
// in stored checkpoints and occasional forced stale restores. Tear and
// flip rates are per word, so exposure scales with checkpoint image
// size; at ~40-word footprint images the rates land a tear every few
// hundred backups and roughly one flip per run — enough to exercise CRC
// rejection, slot fallback, fail-stop detection and cold restarts
// across a sweep without starving high-frequency checkpointers.
func DefaultPlan() Plan {
	return Plan{
		RandomCutMeanCycles: 7000,
		TornWriteProb:       1e-3,
		BitFlipRate:         1e-3,
		StaleRestoreProb:    0.05,
	}
}

// CaseVerdict is one audited schedule's outcome, for the machine-
// parseable per-schedule audit log: "ok" (output matched the oracle),
// "violation" (crash consistency broke), or "unrecoverable" (honest
// fail-stop — the device detected that no consistent recovery existed).
type CaseVerdict struct {
	Case    Case
	Outcome string
}

// Report aggregates an audit sweep.
type Report struct {
	Runs       int
	Violations []Violation
	// Verdicts lists every completed schedule's outcome in input order
	// (dropped cells — deadline, panic, cancellation — are absent; they
	// appear in the runner's error summary instead).
	Verdicts []CaseVerdict
	// Unrecoverable counts runs that fail-stopped with
	// device.ErrUnrecoverable: the device detected that no
	// crash-consistent recovery existed. These are successful
	// detections, not violations.
	Unrecoverable int
	// Faults sums the per-run fault reports — evidence the attack
	// surface was actually exercised.
	Faults device.FaultReport
}

// Ok reports whether every audited run matched the oracle.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (o *Options) setDefaults() {
	if o.Strategies == nil {
		o.Strategies = strategy.Catalog()
	}
	if o.Workloads == nil {
		o.Workloads = DefaultWorkloads
	}
	if o.Schedules == 0 {
		o.Schedules = 8
	}
	if reflect.DeepEqual(o.Plan, Plan{}) {
		o.Plan = DefaultPlan()
	}
	if o.PeriodCycles == 0 {
		o.PeriodCycles = 20000
	}
	if o.MaxPeriods == 0 {
		o.MaxPeriods = 20000
	}
}

// caseSeed derives a per-cell, per-schedule seed from the base seed.
// splitmix-style mixing keeps neighbouring cells decorrelated while
// staying reproducible.
func caseSeed(base int64, strat, wl string, k int) int64 {
	h := uint64(base)*0x9e3779b97f4a7c15 + uint64(k+1)
	for _, s := range []string{strat, wl} {
		for _, c := range s {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
	}
	h ^= h >> 33
	return int64(h & 0x7fffffffffffffff)
}

// Audit runs the sweep through the parallel sweep engine and returns
// the report. Setup errors (unknown workload, bad plan, a benchmark
// that fails to build) abort with an error before any schedule runs;
// crash-consistency failures are collected as violations instead. Runs
// that the engine drops (cancellation, per-run deadline, panic) are
// excluded from the report, which is returned partially populated
// alongside the runner errors.
func Audit(ctx context.Context, o Options) (*Report, error) {
	o.setDefaults()
	if err := o.Plan.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		spec strategy.Spec
		prog *asm.Program
		want []uint32
		c    Case
	}
	var cells []cell
	for _, spec := range o.Strategies {
		for _, wname := range o.Workloads {
			w, ok := workload.Get(wname)
			if !ok {
				return nil, fmt.Errorf("faults: unknown workload %q", wname)
			}
			opts := workload.Options{Seg: spec.Seg}
			prog, err := w.Build(opts)
			if err != nil {
				return nil, fmt.Errorf("faults: building %s for %s: %w", wname, spec.Name, err)
			}
			want := w.Ref(opts)
			for k := 0; k < o.Schedules; k++ {
				c := Case{Strategy: spec.Name, Workload: wname, Seed: caseSeed(o.BaseSeed, spec.Name, wname, k)}
				cells = append(cells, cell{spec: spec, prog: prog, want: want, c: c})
			}
		}
	}
	type cellResult struct {
		v             *Violation
		faults        device.FaultReport
		unrecoverable bool
	}
	ro := o.Run
	ro.Label = func(i int) string { return "audit " + cells[i].c.String() }
	results, errs := runner.Map(ctx, len(cells), ro, func(i int) (cellResult, error) {
		cl := cells[i]
		v, faults, unrec, err := auditOne(ctx, o, cl.spec, cl.prog, cl.want, cl.c)
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{v: v, faults: faults, unrecoverable: unrec}, nil
	})
	failed := errs.FailedSet()

	rep := &Report{}
	for i := range cells {
		if failed[i] {
			continue
		}
		r := results[i]
		rep.Runs++
		accumulate(&rep.Faults, r.faults)
		outcome := "ok"
		if r.unrecoverable {
			rep.Unrecoverable++
			outcome = "unrecoverable"
		}
		if r.v != nil {
			rep.Violations = append(rep.Violations, *r.v)
			outcome = "violation"
		}
		rep.Verdicts = append(rep.Verdicts, CaseVerdict{Case: cells[i].c, Outcome: outcome})
	}
	if len(errs) > 0 {
		return rep, errs
	}
	return rep, nil
}

// auditOne runs a single faulted case against the oracle. The
// unrecoverable return marks an honest fail-stop (the device detected
// that no crash-consistent recovery existed) — a successful detection,
// not a violation.
func auditOne(ctx context.Context, o Options, spec strategy.Spec, prog *asm.Program, want []uint32, c Case) (*Violation, device.FaultReport, bool, error) {
	return AuditRun(ctx, o, spec.New(), prog, want, c)
}

// AuditRun runs one faulted schedule of prog under a caller-supplied
// strategy instance and checks the committed output against want. It is
// the single-cell core of Audit, exported so callers that need to
// inspect strategy-side state after the run (e.g. Clank's violation
// words in the analyzer's cross-validation) can hold on to strat. Zero
// fields of o pick the same defaults as Audit; c.Seed drives the fault
// schedule.
func AuditRun(ctx context.Context, o Options, strat device.Strategy, prog *asm.Program, want []uint32, c Case) (*Violation, device.FaultReport, bool, error) {
	o.setDefaults()
	plan := o.Plan
	plan.Seed = c.Seed
	inj, err := New(plan)
	if err != nil {
		return nil, device.FaultReport{}, false, err
	}
	pm := energy.MSP430Power()
	e := o.PeriodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: o.MaxPeriods, MaxCycles: 2_000_000_000,
		Faults:     inj,
		RunTimeout: o.Run.RunTimeout,
		Interrupt:  runner.Interrupt(ctx),
	}
	d, err := device.New(cfg, strat)
	if err != nil {
		return nil, device.FaultReport{}, false, fmt.Errorf("faults: configuring %s: %w", c, err)
	}
	res, err := d.Run()
	if errors.Is(err, device.ErrUnrecoverable) {
		// Honest fail-stop: the device detected unrecoverable NVM state
		// instead of silently diverging.
		return nil, device.FaultReport{}, true, nil
	}
	if errors.Is(err, device.ErrDeadlineExceeded) || ctx.Err() != nil {
		// Resource exhaustion, not a consistency verdict: let the sweep
		// engine record this cell as dropped rather than misreporting it
		// as a violation.
		return nil, device.FaultReport{}, false, err
	}
	if err != nil {
		return &Violation{Case: c, Err: err}, device.FaultReport{}, false, nil
	}
	if !res.Completed {
		return &Violation{Case: c, Incomplete: true}, res.Faults, false, nil
	}
	if !reflect.DeepEqual(res.Output, want) {
		return &Violation{Case: c, Got: res.Output, Want: want}, res.Faults, false, nil
	}
	return nil, res.Faults, false, nil
}

func accumulate(total *device.FaultReport, r device.FaultReport) {
	total.PowerCuts += r.PowerCuts
	total.InjectedTears += r.InjectedTears
	total.TornBackups += r.TornBackups
	total.BitFlips += r.BitFlips
	total.CRCRejections += r.CRCRejections
	total.StaleRestores += r.StaleRestores
	total.ForcedStale += r.ForcedStale
	total.ColdRestarts += r.ColdRestarts
}
