package faults

import (
	"context"
	"fmt"
	"sort"

	"ehmodel/internal/analyze"
	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/obsv"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// campaign.go — the adversarial fault-search engine. Uniform-random
// power-cut placement wastes most of its budget in the long stretches
// where a cut is harmless (the device re-executes from the last commit
// and converges). The interesting cuts cluster at coverage frontiers:
// inside a checkpoint's commit window (tearing the two-phase — or, in
// naive mode, single-slot — write), just after a commit (maximal
// rollback with fresh nonvolatile state behind it), between an input
// observation and the commit that would persist it, right after a
// store to a statically identified WAR-hazard word, and around
// tracking-buffer-full flushes. A Campaign mines those windows from an
// instrumented probe run, then spends its schedule budget round-robin
// across them with seeded jitter, tracks which windows were actually
// attacked (schedule-space coverage), and delta-debugs every violation
// down to a minimal, deterministically replayable Case.

// CampaignOptions configures one adversarial campaign against a single
// strategy × workload cell.
type CampaignOptions struct {
	// Strategy under attack. Required.
	Strategy strategy.Spec
	// Workload name. Required.
	Workload string
	// Plan is the base attack mix applied to every schedule (cut fields
	// are overwritten per schedule). The zero plan means cuts only —
	// the pure schedule-search setting. NaiveCommit is honored.
	Plan Plan
	// Budget is the maximum number of attack schedules (default 64).
	Budget int
	// Seed drives the jitter of cut placement inside windows.
	Seed int64
	// MaxFindings stops the campaign early once this many distinct
	// verdict classes have produced minimized counterexamples
	// (default 1; ≤ 0 keeps going until Budget).
	MaxFindings int
	// Oracle attaches the observation recorder to every attack run and
	// classifies with the formal oracle; without it only final-output
	// divergence, run errors and starvation are detected.
	Oracle bool
	// FreshnessBound is the oracle's timeliness obligation in executed
	// cycles (0 = unbounded).
	FreshnessBound uint64
	// PeriodCycles / MaxPeriods shape each run (defaults 20000/20000).
	PeriodCycles float64
	MaxPeriods   int
	// Observe receives the campaign's progress events (EvCampaign*) and
	// every attack run's device events. Optional.
	Observe obsv.Tracer
}

// Window is one coverage-frontier interval of consumed-cycle positions
// a power cut should land in.
type Window struct {
	// Kind is "commit", "post-commit", "sense-commit", "hazard-store",
	// "buffer-full", "task-commit" (a task runtime's privatization-
	// buffer flush exposure) or "reexec-prefix" (the re-executed span
	// right after a non-cold reboot).
	Kind string
	Lo   uint64
	Hi   uint64 // inclusive
}

// Coverage summarizes the schedule-space coverage of a campaign.
type Coverage struct {
	// Frontier is the number of windows mined from the probe run;
	// Attacked how many received at least one scheduled cut.
	Frontier int
	Attacked int
}

// CampaignReport is the outcome of one adversarial campaign.
type CampaignReport struct {
	Strategy string
	Workload string
	// ProbeCycles is the fault-free probe run's total consumed cycles;
	// ProbeCommits its checkpoint count — the searched space.
	ProbeCycles  uint64
	ProbeCommits int
	// Windows are the mined coverage frontiers.
	Windows []Window
	// Schedules is the number of attack schedules actually launched;
	// FirstFinding the 1-based ordinal of the first violating schedule
	// (0 when none violated) — the search-efficiency measure.
	Schedules    int
	FirstFinding int
	Coverage     Coverage
	// Violations are the minimized counterexamples, at most one per
	// verdict class, each with a self-contained replayable Case.
	Violations []Violation
	// ShrinkRuns counts the candidate runs the minimizer spent.
	ShrinkRuns int
}

// Ok reports whether the campaign found no violation.
func (r *CampaignReport) Ok() bool { return len(r.Violations) == 0 }

func (o *CampaignOptions) setDefaults() {
	if o.Budget == 0 {
		o.Budget = 64
	}
	if o.MaxFindings == 0 {
		o.MaxFindings = 1
	}
	if o.PeriodCycles == 0 {
		o.PeriodCycles = 20000
	}
	if o.MaxPeriods == 0 {
		o.MaxPeriods = 20000
	}
}

// splitmix is the jitter generator for cut placement: deterministic,
// stateless, decorrelated across (seed, window, attempt).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tap collects the probe-run events frontier mining needs (buffer-full
// flush and task-commit positions) while forwarding to an optional
// downstream tracer.
type tap struct {
	next        obsv.Tracer
	bufferFull  []uint64
	taskCommits []uint64
}

func (t *tap) Event(e obsv.Event) {
	switch {
	case e.Type == obsv.EvTrigger && obsv.TriggerReason(e.Arg) == obsv.TrigBufferFull,
		e.Type == obsv.EvWARFlush && obsv.TriggerReason(e.Arg2) == obsv.TrigBufferFull:
		t.bufferFull = append(t.bufferFull, e.Cycles)
	case e.Type == obsv.EvTaskCommit:
		t.taskCommits = append(t.taskCommits, e.Cycles)
	}
	if t.next != nil {
		t.next.Event(e)
	}
}

// Campaign runs one adversarial fault-search campaign and returns its
// report. Runs are sequential (the search is adaptive in principle and
// each run is short); cancel ctx to stop early — the report covers the
// schedules completed so far.
func Campaign(ctx context.Context, o CampaignOptions) (*CampaignReport, error) {
	o.setDefaults()
	if o.Strategy.New == nil {
		return nil, fmt.Errorf("faults: campaign needs a strategy")
	}
	w, ok := workload.Get(o.Workload)
	if !ok {
		return nil, fmt.Errorf("faults: unknown workload %q", o.Workload)
	}
	wopts := workload.Options{Seg: o.Strategy.Seg}
	prog, err := w.Build(wopts)
	if err != nil {
		return nil, fmt.Errorf("faults: building %s: %w", o.Workload, err)
	}
	want := w.Ref(wopts)

	emit := func(t obsv.EventType, arg, arg2 uint64) {
		if o.Observe != nil {
			o.Observe.Event(obsv.Event{Type: t, Arg: arg, Arg2: arg2})
		}
	}

	ro := Options{
		Oracle:         o.Oracle,
		FreshnessBound: o.FreshnessBound,
		PeriodCycles:   o.PeriodCycles,
		MaxPeriods:     o.MaxPeriods,
		Plan:           DefaultPlan(), // non-zero so setDefaults leaves it alone; never used as a schedule
	}

	rep := &CampaignReport{Strategy: o.Strategy.Name, Workload: o.Workload}

	// Probe: one cut-free run with the recorder attached (and the
	// injector present, so backup/restore accounting matches the
	// attacked runs cycle for cycle), mapping commit windows, committed
	// input observations, hazard-word stores and buffer-full flushes.
	probePlan := o.Plan
	probePlan.CutCycles = nil
	probePlan.RandomCutMeanCycles = 0
	probePlan.TornWriteProb = 0
	probePlan.BitFlipRate = 0
	probePlan.StaleRestoreProb = 0
	probePlan.Seed = o.Seed
	rec := &device.ObsLog{}
	if hints, aerr := analyze.Analyze(prog, analyze.Options{}); aerr == nil {
		if words := hints.HazardWords(); len(words) > 0 {
			rec.HazardWords = make(map[uint32]struct{}, len(words))
			for _, a := range words {
				rec.HazardWords[a] = struct{}{}
			}
		}
	}
	probeTap := &tap{next: o.Observe}
	res, err := runCase(ctx, &ro, o.Strategy.New(), prog, probePlan, rec, probeTap)
	if err != nil {
		return nil, fmt.Errorf("faults: campaign probe: %w", err)
	}
	if !res.Completed {
		return nil, fmt.Errorf("faults: campaign probe did not complete (%d periods)", len(res.Periods))
	}
	rep.ProbeCycles = res.TotalCycles
	rep.ProbeCommits = len(rec.Commits)
	rep.Windows = mineWindows(rec, probeTap, res.TotalCycles)
	rep.Coverage.Frontier = len(rep.Windows)
	emit(obsv.EvCampaignProbe, uint64(len(rep.Windows)), res.TotalCycles)
	if len(rep.Windows) == 0 {
		emit(obsv.EvCampaignCoverage, 0, 0)
		return rep, nil
	}

	// Attack: round-robin the schedule budget across the frontier
	// windows with seeded jitter, so every window is hit before any is
	// hit twice and repeated visits land on fresh offsets.
	attacked := make([]bool, len(rep.Windows))
	classes := make(map[obsv.VerdictClass]bool)
	for k := 0; k < o.Budget; k++ {
		if ctx.Err() != nil {
			break
		}
		wi := k % len(rep.Windows)
		win := rep.Windows[wi]
		span := win.Hi - win.Lo + 1
		cut := win.Lo + splitmix(uint64(o.Seed)^uint64(wi)<<32^uint64(k))%span
		plan := o.Plan
		plan.CutCycles = []uint64{cut}
		plan.Seed = o.Seed
		c := Case{Strategy: o.Strategy.Name, Workload: o.Workload, Seed: o.Seed,
			Oracle: o.Oracle, Fresh: o.FreshnessBound}
		c = c.withPlan(plan)
		rep.Schedules++
		emit(obsv.EvCampaignSchedule, uint64(wi), cut)
		out, err := AuditRun(ctx, ro, o.Strategy.New(), prog, want, c)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return rep, fmt.Errorf("faults: campaign schedule %d: %w", k, err)
		}
		attacked[wi] = true
		for _, v := range out.Violations {
			if classes[v.Class] {
				continue
			}
			classes[v.Class] = true
			if rep.FirstFinding == 0 {
				rep.FirstFinding = rep.Schedules
			}
			emit(obsv.EvCampaignFinding, uint64(v.Class), cut)
			min, runs := shrink(ctx, &ro, &o, prog, want, v)
			rep.ShrinkRuns += runs
			emit(obsv.EvCampaignShrink, uint64(runs), uint64(len(min.Case.Cuts)))
			rep.Violations = append(rep.Violations, min)
		}
		if o.MaxFindings > 0 && len(rep.Violations) >= o.MaxFindings {
			break
		}
	}
	for _, a := range attacked {
		if a {
			rep.Coverage.Attacked++
		}
	}
	emit(obsv.EvCampaignCoverage, uint64(rep.Coverage.Attacked), uint64(rep.Coverage.Frontier))
	return rep, nil
}

// mineWindows derives the coverage-frontier windows from a probe run's
// observation log. Windows are clamped to the probe's cycle span and
// deduplicated; order is deterministic (commit windows first, then
// post-commit, sense-commit, hazard-store, buffer-full, task-commit,
// reexec-prefix).
func mineWindows(rec *device.ObsLog, t *tap, total uint64) []Window {
	var out []Window
	add := func(kind string, lo, hi uint64) {
		if hi > total {
			hi = total
		}
		if lo < 1 {
			lo = 1
		}
		if lo > hi {
			return
		}
		out = append(out, Window{Kind: kind, Lo: lo, Hi: hi})
	}
	const after = 64 // cycles of post-event exposure to attack
	for i := range rec.Commits {
		co := &rec.Commits[i]
		// Inside the backup write: tears the in-flight image. The very
		// first commit's tear is usually harmless (the slot was empty,
		// cold start is legal), but it still probes the protocol.
		if co.Cycle > co.Start+1 {
			add("commit", co.Start+1, co.Cycle-1)
		}
		// Right after the commit: maximal rollback distance for the next
		// failure, with fresh nonvolatile state behind it.
		add("post-commit", co.Cycle+1, co.Cycle+after)
		// Between a committed input observation and its commit: forces
		// the observation to be re-executed after the reboot.
		for _, si := range co.Senses {
			s := &rec.Senses[si]
			if co.Cycle > s.Cycle {
				add("sense-commit", s.Cycle, co.Cycle-1)
			}
		}
	}
	for i := range rec.HazardStores {
		hs := &rec.HazardStores[i]
		add("hazard-store", hs.Cycle+1, hs.Cycle+after)
	}
	for _, c := range t.bufferFull {
		lo := uint64(1)
		if c > 32 {
			lo = c - 32
		}
		add("buffer-full", lo, c+32)
	}
	// Task-runtime frontiers, mined only when the probe observed task
	// commits so non-task cells keep their exact legacy window lists:
	// the exposure right after a privatization-buffer flush (the
	// two-phase commit write span plus the fresh task's opening), and
	// the re-executed prefix after each non-cold reboot — the span a
	// task-based runtime must replay idempotently.
	if len(t.taskCommits) > 0 {
		for _, c := range t.taskCommits {
			add("task-commit", c+1, c+after)
		}
		const maxReexec = 16
		reexec := 0
		for i := range rec.Boots {
			b := &rec.Boots[i]
			if b.Cold {
				continue
			}
			add("reexec-prefix", b.Cycle+1, b.Cycle+after)
			if reexec++; reexec >= maxReexec {
				break
			}
		}
	}
	// Deduplicate identical intervals (sense windows inside one commit
	// region often coincide) while preserving first-seen order.
	seen := make(map[Window]int, len(out))
	dedup := out[:0]
	for _, w := range out {
		key := Window{Kind: w.Kind, Lo: w.Lo, Hi: w.Hi}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = len(dedup)
		dedup = append(dedup, w)
	}
	return dedup
}

// shrink minimizes a violating case delta-debugging-style: first strip
// the stochastic attack mix, then ddmin the cut set, then push the
// first cut as late as it will go — the smallest, latest-failing
// schedule is the most informative counterexample. Every accepted step
// must reproduce a violation of the same class. Returns the minimized
// violation and the number of candidate runs spent.
func shrink(ctx context.Context, ro *Options, o *CampaignOptions, prog *asm.Program, want []uint32, v Violation) (Violation, int) {
	runs := 0
	best := v
	try := func(c Case) (Violation, bool) {
		if ctx.Err() != nil {
			return Violation{}, false
		}
		runs++
		out, err := AuditRun(ctx, *ro, o.Strategy.New(), prog, want, c)
		if err != nil {
			return Violation{}, false
		}
		for _, cand := range out.Violations {
			if cand.Class == v.Class {
				return cand, true
			}
		}
		return Violation{}, false
	}

	// Step 1: drop the stochastic mix — pure deterministic cuts (plus
	// the protocol mode) make the repro independent of RNG draws.
	c := best.Case
	if c.MeanCut > 0 || c.Torn > 0 || c.Flips > 0 || c.Stale > 0 {
		cand := c
		cand.MeanCut, cand.Torn, cand.Flips, cand.Stale = 0, 0, 0, 0
		if min, ok := try(cand); ok {
			best, c = min, cand
		}
	}

	// Step 2: ddmin over the cut set (complement reduction).
	cuts := append([]uint64(nil), c.Cuts...)
	n := 2
	for len(cuts) >= 2 && n <= len(cuts) {
		chunk := (len(cuts) + n - 1) / n
		reduced := false
		for i := 0; i < len(cuts); i += chunk {
			complement := append(append([]uint64(nil), cuts[:i]...), cuts[min(i+chunk, len(cuts)):]...)
			cand := c
			cand.Cuts = complement
			if m, ok := try(cand); ok {
				cuts = complement
				best, c = m, cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cuts) {
				break
			}
			n = min(n*2, len(cuts))
		}
	}

	// Step 3: push the first cut later (doubling probe then binary
	// search), bounded — the latest failing first cut pins the frontier
	// the violation lives on.
	if len(c.Cuts) > 0 {
		c.Cuts = cuts
		sort.Slice(c.Cuts, func(a, b int) bool { return c.Cuts[a] < c.Cuts[b] })
		withFirst := func(v uint64) Case {
			cand := c
			cand.Cuts = append([]uint64(nil), c.Cuts...)
			cand.Cuts[0] = v
			return cand
		}
		hi := c.Cuts[0]
		step := uint64(1)
		for probes := 0; probes < 8; probes++ {
			if m, ok := try(withFirst(hi + step)); ok {
				hi += step
				best = m
				c.Cuts[0] = hi
				step *= 2
			} else {
				break
			}
		}
		// Binary refine between the last good (hi) and first bad (hi+step).
		badLo, badHi := hi, hi+step
		for probes := 0; probes < 8 && badLo+1 < badHi; probes++ {
			mid := badLo + (badHi-badLo)/2
			if m, ok := try(withFirst(mid)); ok {
				badLo = mid
				best = m
				c.Cuts[0] = mid
			} else {
				badHi = mid
			}
		}
	}

	// Confirm: the minimized case must reproduce deterministically on a
	// fresh replay before it is reported.
	if m, ok := try(best.Case); ok {
		best = m
	}
	return best, runs
}
