package faults

import (
	"fmt"

	"ehmodel/internal/device"
	"ehmodel/internal/obsv"
)

// oracle.go — the formal correctness oracle. A faulted intermittent run
// is correct when its committed observation sequence is equivalent to
// *some* continuous-power execution of the same program (the
// formal-foundations criterion). The final-output comparison the base
// auditor performs is necessary but not sufficient: a run can commit a
// replayed input observation, re-expose already-committed output, or
// commit an input long after it was read, and still converge to the
// oracle's final memory because the simulated environment is
// deterministic. classify replays the device's observation log
// (device.ObsLog) against these obligations and assigns verdict
// classes.
//
// Operational semantics, per class:
//
//   - replayed-input: some input index is persisted by two distinct
//     checkpoint commits. A bare re-read after a reboot is legal — the
//     first read was never committed, so the continuous execution that
//     performed only the second read explains the trace. Once a commit
//     has persisted the observation, a rollback past that commit
//     re-reads the input and a later commit persists it again: no
//     single continuous execution reads one input twice.
//   - stale-output: a commit rewrites an output-log position an earlier
//     commit already exposed, with a different word. The externally
//     visible stream then contains two values for one position.
//   - timeliness: the first capture of an input predates the commit
//     that persists it by more than the freshness bound (in executed
//     cycles). The first read is the environment interaction; sitting
//     on it across power failures before committing violates the
//     input-freshness obligation even though the value is "right".
//   - torn-state: a committed output word differs from the continuous
//     oracle's word at that position (or extends past the oracle's
//     output) — committed state matching no continuous execution.
//
// One Violation per class per run is reported; Detail carries the first
// witnessing instance.

// classify checks an observation log against the continuous execution's
// expected output and returns at most one Violation per verdict class.
// claimed notes that the strategy advertised input protection
// (device.InputProtector), so a replayed-input finding also flags the
// broken claim. bound 0 disables the timeliness obligation.
func classify(log *device.ObsLog, want []uint32, bound uint64, claimed bool, c Case) []Violation {
	if log == nil {
		return nil
	}
	var out []Violation
	var seen [obsv.NumVerdictClasses]bool
	add := func(class obsv.VerdictClass, detail string) {
		if seen[class] {
			return
		}
		seen[class] = true
		out = append(out, Violation{Case: c, Class: class, Detail: detail})
	}

	// Replayed inputs: one sense index persisted by two distinct commits.
	committedBy := make(map[uint32]int)
	for i := range log.Senses {
		s := &log.Senses[i]
		if !s.Committed {
			continue
		}
		if first, ok := committedBy[s.Index]; ok && first != s.Commit {
			d := fmt.Sprintf("input #%d committed by checkpoint seq=%d and again by seq=%d",
				s.Index, log.Commits[first].Seq, log.Commits[s.Commit].Seq)
			if claimed {
				d += "; the runtime claims input protection"
			}
			add(obsv.ClassReplayedInput, d)
		} else if !ok {
			committedBy[s.Index] = s.Commit
		}
	}

	// Output stream: walk commits in commit order, tracking every
	// position ever exposed. A commit whose OutBase regressed rewrites
	// exposed positions; a different word there is a stale-output
	// violation. Independently, every committed word must match the
	// continuous oracle at its position (torn-state evidence even when
	// the final output later converges).
	var exposed []uint32
	for ci := range log.Commits {
		co := &log.Commits[ci]
		for j, w := range co.Out {
			pos := co.OutBase + j
			switch {
			case pos < len(exposed):
				if exposed[pos] != w {
					add(obsv.ClassStaleOutput, fmt.Sprintf(
						"commit seq=%d rewrote output[%d] as %#x over previously exposed %#x",
						co.Seq, pos, w, exposed[pos]))
				}
				exposed[pos] = w
			case pos == len(exposed):
				exposed = append(exposed, w)
			default:
				// A gap would be a recorder invariant breach; widen
				// defensively so classification can continue.
				for len(exposed) < pos {
					exposed = append(exposed, 0)
				}
				exposed = append(exposed, w)
			}
			if pos >= len(want) {
				add(obsv.ClassTornState, fmt.Sprintf(
					"commit seq=%d committed output[%d]=%#x past the oracle's %d outputs",
					co.Seq, pos, w, len(want)))
			} else if want[pos] != w {
				add(obsv.ClassTornState, fmt.Sprintf(
					"commit seq=%d committed output[%d]=%#x, continuous oracle has %#x",
					co.Seq, pos, w, want[pos]))
			}
		}
	}

	// Timeliness: the age of a committed input is measured from its
	// first capture — re-reading after a reboot does not refresh the
	// obligation, because the program first interacted with the
	// environment at the original read.
	if bound > 0 {
		first := make(map[uint32]uint64)
		for i := range log.Senses {
			s := &log.Senses[i]
			if _, ok := first[s.Index]; !ok {
				first[s.Index] = s.Cycle
			}
		}
		for ci := range log.Commits {
			co := &log.Commits[ci]
			for _, si := range co.Senses {
				idx := log.Senses[si].Index
				if age := co.Cycle - first[idx]; age > bound {
					add(obsv.ClassTimeliness, fmt.Sprintf(
						"input #%d first read at cycle %d, committed at cycle %d: age %d exceeds freshness bound %d",
						idx, first[idx], co.Cycle, age, bound))
				}
			}
		}
	}
	return out
}
