package faults

import (
	"context"
	"reflect"
	"testing"

	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
)

// TestAuditQuick is the always-on smoke sweep: every strategy × every
// default workload under a couple of seeded attack schedules.
func TestAuditQuick(t *testing.T) {
	rep, err := Audit(context.Background(), Options{Schedules: 2, BaseSeed: 1})
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("%d/%d runs violated crash consistency", len(rep.Violations), rep.Runs)
	}
	wantRuns := len(strategy.Catalog()) * len(DefaultWorkloads) * 2
	if rep.Runs != wantRuns {
		t.Fatalf("Runs = %d, want %d", rep.Runs, wantRuns)
	}
}

// TestAuditAllStrategies is the acceptance sweep: the full strategy
// catalog × {counter, ds, crc, qsort} under 100 seeded failure schedules
// per cell, with torn writes, bit flips, random supply cuts and forced
// stale restores all enabled. Every run must either match the
// continuous-power oracle or fail-stop with a detected-unrecoverable
// abort — and the attack surface must demonstrably have been exercised.
func TestAuditAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("full 100-schedule audit sweep skipped in -short")
	}
	rep, err := Audit(context.Background(), Options{Schedules: 100, BaseSeed: 2026})
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Ok() {
		for i, v := range rep.Violations {
			if i == 20 {
				t.Errorf("... and %d more", len(rep.Violations)-20)
				break
			}
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("%d/%d runs violated crash consistency", len(rep.Violations), rep.Runs)
	}
	wantRuns := len(strategy.Catalog()) * len(DefaultWorkloads) * 100
	if rep.Runs != wantRuns {
		t.Fatalf("Runs = %d, want %d", rep.Runs, wantRuns)
	}
	// The sweep only proves something if the attack actually landed.
	f := rep.Faults
	if f.PowerCuts == 0 || f.TornBackups == 0 || f.BitFlips == 0 ||
		f.CRCRejections == 0 || f.StaleRestores == 0 || f.ColdRestarts == 0 {
		t.Fatalf("attack surface not exercised: %+v", f)
	}
	if rep.Unrecoverable == 0 {
		t.Fatal("no run exercised the fail-stop unrecoverable-state detection")
	}
	t.Logf("runs=%d unrecoverable=%d faults=%+v", rep.Runs, rep.Unrecoverable, f)
}

// TestNaiveCommitCaught proves the auditor has teeth: downgrading the
// device to the naive single-slot, unvalidated commit (the protocol the
// two-phase design replaces) under the same attack mix must produce
// crash-consistency violations.
func TestNaiveCommitCaught(t *testing.T) {
	plan := DefaultPlan()
	plan.NaiveCommit = true
	// Tears hit the naive path's single slot hard; raise the rate so a
	// short sweep reliably corrupts at least one mid-write image.
	plan.TornWriteProb = 0.01
	plan.BitFlipRate = 0.01
	rep, err := Audit(context.Background(), Options{
		Workloads: []string{"counter", "ds"},
		Schedules: 6,
		BaseSeed:  7,
		Plan:      plan,
	})
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("naive single-slot commit survived %d attacked runs undetected — the auditor is blind", rep.Runs)
	}
	t.Logf("naive commit caught: %d violations in %d runs (first: %v)", len(rep.Violations), rep.Runs, rep.Violations[0])
}

// TestAuditDeterministic: equal Options reproduce the whole sweep,
// violations and fault tallies included.
func TestAuditDeterministic(t *testing.T) {
	opts := Options{
		Strategies: pick(t, "hibernus", "clank", "dino"),
		Workloads:  []string{"counter", "crc"},
		Schedules:  3,
		BaseSeed:   99,
	}
	r1, err := Audit(context.Background(), opts)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	r2, err := Audit(context.Background(), opts)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same options produced different reports:\n%+v\n%+v", r1, r2)
	}
	// The worker count must not change the report: the sweep engine
	// merges in input order, so the parallel audit is byte-identical to
	// the serial one.
	for _, workers := range []int{1, 8} {
		o := opts
		o.Run = runner.Options{Workers: workers}
		r, err := Audit(context.Background(), o)
		if err != nil {
			t.Fatalf("Audit(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(r1, r) {
			t.Fatalf("workers=%d changed the report:\n%+v\n%+v", workers, r1, r)
		}
	}
}

// TestAuditRejectsBadSetup: setup failures are errors, not violations.
func TestAuditRejectsBadSetup(t *testing.T) {
	if _, err := Audit(context.Background(), Options{Workloads: []string{"no-such-workload"}, Schedules: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Audit(context.Background(), Options{Schedules: 1, Plan: Plan{TornWriteProb: 2}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func pick(t *testing.T, names ...string) []strategy.Spec {
	t.Helper()
	specs := make([]strategy.Spec, 0, len(names))
	for _, n := range names {
		s, ok := strategy.Lookup(n)
		if !ok {
			t.Fatalf("strategy %q not in catalog", n)
		}
		specs = append(specs, s)
	}
	return specs
}
