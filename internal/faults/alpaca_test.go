package faults

import (
	"context"
	"testing"

	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
)

// alpacaCell resolves the task-runtime audit cell: the checkpoint-free
// Alpaca family against the counter workload. The naive flag picks the
// deliberately broken variant whose task commits write a single slot
// in place with no CRC validation.
func alpacaCell(t *testing.T, naive bool) (strategy.Spec, string) {
	t.Helper()
	name := "alpaca"
	if naive {
		name = "alpaca-naive"
	}
	spec, ok := strategy.Lookup(name)
	if !ok {
		t.Fatalf("%s strategy missing", name)
	}
	return spec, "counter"
}

// TestCampaignFindsAlpacaNaiveCommit is the task-runtime regression
// pin: the campaign must catch the non-atomic in-place task commit of
// alpaca-naive as a torn-state violation (the strategy itself requests
// the naive protocol via device.NaiveCommitter — the attack plan is
// cuts-only), and the minimized counterexample must replay
// deterministically from its serialized Case.
func TestCampaignFindsAlpacaNaiveCommit(t *testing.T) {
	ctx := context.Background()
	spec, wl := alpacaCell(t, true)
	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Budget:   64,
		Seed:     7,
		Oracle:   true,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("campaign missed the alpaca-naive violation in %d schedules over %d windows",
			rep.Schedules, rep.Coverage.Frontier)
	}
	v := rep.Violations[0]
	if v.Class != obsv.ClassTornState {
		t.Fatalf("found class %s, want %s", v.Class, obsv.ClassTornState)
	}
	if rep.FirstFinding < 1 || rep.FirstFinding > rep.Schedules {
		t.Fatalf("FirstFinding = %d outside [1, %d]", rep.FirstFinding, rep.Schedules)
	}

	// The task-runtime frontier must be part of the mined windows: the
	// probe observes task commits, so task-commit exposure windows (and
	// reboot re-execution prefixes, when the probe rebooted) exist.
	kinds := make(map[string]int)
	for _, w := range rep.Windows {
		kinds[w.Kind]++
	}
	if kinds["task-commit"] == 0 {
		t.Errorf("no task-commit windows mined (kinds: %v)", kinds)
	}

	for i := 0; i < 2; i++ {
		c, err := ParseCase(v.Case.String())
		if err != nil {
			t.Fatalf("ParseCase(%q): %v", v.Case.String(), err)
		}
		out, err := ReplayCase(ctx, c, runner.Options{})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if !out.HasClass(v.Class) {
			t.Fatalf("replay %d of %q lost the %s verdict: %v", i, v.Case, v.Class, out.Violations)
		}
	}
}

// TestCampaignCleanAlpaca is the other half of the family claim: the
// honest two-phase task commit survives the same bounded campaign,
// oracle attached, with zero verdicts.
func TestCampaignCleanAlpaca(t *testing.T) {
	if testing.Short() {
		t.Skip("spends the whole budget finding nothing")
	}
	ctx := context.Background()
	spec, wl := alpacaCell(t, false)
	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Budget:   16,
		Seed:     11,
		Oracle:   true,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("honest task protocol violated: %v", rep.Violations)
	}
	if rep.Schedules != 16 {
		t.Fatalf("clean campaign stopped after %d schedules, want the full 16", rep.Schedules)
	}
	if rep.Coverage.Attacked == 0 {
		t.Fatal("campaign attacked no windows")
	}
}

// TestAlpacaTaskMetricsExported checks the task-runtime observability
// wiring end to end: an audited alpaca run must surface task commits,
// re-executions and privatization-buffer bytes through the standard
// metrics aggregation.
func TestAlpacaTaskMetricsExported(t *testing.T) {
	ctx := context.Background()
	spec, wl := alpacaCell(t, false)
	coll := obsv.NewCollector()
	rep, err := Campaign(ctx, CampaignOptions{
		Strategy: spec,
		Workload: wl,
		Budget:   4,
		Seed:     3,
		Observe:  coll.Tracer(),
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("clean alpaca cell violated: %v", rep.Violations)
	}
	m := coll.Aggregate()
	if m.TasksCommitted == 0 {
		t.Error("TasksCommitted = 0, want task commits from the probe and attack runs")
	}
	if m.TaskPrivBytes.Count != m.TasksCommitted {
		t.Errorf("TaskPrivBytes.Count = %d, want one observation per commit (%d)",
			m.TaskPrivBytes.Count, m.TasksCommitted)
	}
	if m.TaskReexecutions == 0 {
		t.Error("TaskReexecutions = 0, want re-executions after injected power cuts")
	}
}
