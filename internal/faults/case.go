package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Case identifies one audited run. A bare case (only Strategy, Workload
// and Seed set) replays under the ambient Options.Plan — the sweep
// convention. A case whose plan fields are set is self-contained: the
// embedded fields rebuild the exact fault plan and oracle configuration,
// so the printed form is a complete, replayable counterexample. The
// auditor and the adversarial campaign enrich every reported violation's
// Case this way, and Case.String / ParseCase round-trip the result
// through `ehsim -audit -repro`.
type Case struct {
	Strategy string
	Workload string
	// Seed is the injector seed of this schedule; together with the plan
	// fields it fully reproduces the run.
	Seed int64

	// Embedded fault plan (see Plan). All-zero means "not embedded":
	// replay falls back to the ambient plan.
	Cuts    []uint64 // deterministic power-cut cycles
	MeanCut float64  // random-cut mean interval, cycles
	Torn    float64  // per-word torn-write probability
	Flips   float64  // per-word bit-flip rate
	Stale   float64  // forced stale-restore probability
	Naive   bool     // single-slot unvalidated commit mode

	// Oracle configuration carried for replay: whether to attach the
	// observation recorder, and the timeliness bound in executed cycles
	// (0 = unbounded).
	Oracle bool
	Fresh  uint64

	// Run shape overrides; zero picks the Options defaults.
	Period  float64 // per-period energy budget, ALU cycles
	Periods int     // max power-on periods
}

// hasPlan reports whether the case embeds a fault plan of its own.
func (c Case) hasPlan() bool {
	return len(c.Cuts) > 0 || c.MeanCut > 0 || c.Torn > 0 || c.Flips > 0 ||
		c.Stale > 0 || c.Naive
}

// plan rebuilds the embedded fault plan.
func (c Case) plan() Plan {
	return Plan{
		Seed:                c.Seed,
		CutCycles:           append([]uint64(nil), c.Cuts...),
		RandomCutMeanCycles: c.MeanCut,
		TornWriteProb:       c.Torn,
		BitFlipRate:         c.Flips,
		StaleRestoreProb:    c.Stale,
		NaiveCommit:         c.Naive,
	}
}

// withPlan returns a copy of c carrying p as its embedded plan, making
// the case self-contained.
func (c Case) withPlan(p Plan) Case {
	c.Cuts = append([]uint64(nil), p.CutCycles...)
	sort.Slice(c.Cuts, func(a, b int) bool { return c.Cuts[a] < c.Cuts[b] })
	c.MeanCut = p.RandomCutMeanCycles
	c.Torn = p.TornWriteProb
	c.Flips = p.BitFlipRate
	c.Stale = p.StaleRestoreProb
	c.Naive = p.NaiveCommit
	return c
}

// String prints the case in the replayable token form ParseCase reads:
//
//	strategy/workload seed=N [cuts=a,b] [mean=M] [torn=P] [flips=P]
//	                  [stale=P] [naive] [oracle] [fresh=N] [period=P]
//	                  [periods=N]
//
// Zero-valued optional fields are omitted, so a bare sweep case keeps
// the familiar "strat/wl seed=N" shape.
func (c Case) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s seed=%d", c.Strategy, c.Workload, c.Seed)
	if len(c.Cuts) > 0 {
		b.WriteString(" cuts=")
		for i, v := range c.Cuts {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(v, 10))
		}
	}
	if c.MeanCut > 0 {
		fmt.Fprintf(&b, " mean=%g", c.MeanCut)
	}
	if c.Torn > 0 {
		fmt.Fprintf(&b, " torn=%g", c.Torn)
	}
	if c.Flips > 0 {
		fmt.Fprintf(&b, " flips=%g", c.Flips)
	}
	if c.Stale > 0 {
		fmt.Fprintf(&b, " stale=%g", c.Stale)
	}
	if c.Naive {
		b.WriteString(" naive")
	}
	if c.Oracle {
		b.WriteString(" oracle")
	}
	if c.Fresh > 0 {
		fmt.Fprintf(&b, " fresh=%d", c.Fresh)
	}
	if c.Period > 0 {
		fmt.Fprintf(&b, " period=%g", c.Period)
	}
	if c.Periods > 0 {
		fmt.Fprintf(&b, " periods=%d", c.Periods)
	}
	return b.String()
}

// ParseCase parses the Case.String token form back into a Case, so a
// violation printed by the auditor or campaign can be replayed verbatim
// (`ehsim -audit -repro "<case>"`). It is the inverse of String:
// ParseCase(c.String()) reproduces c up to zero-valued optional fields.
func ParseCase(s string) (Case, error) {
	var c Case
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return c, fmt.Errorf("faults: empty case")
	}
	strat, wl, ok := strings.Cut(fields[0], "/")
	if !ok || strat == "" || wl == "" {
		return c, fmt.Errorf("faults: case %q must start with strategy/workload", fields[0])
	}
	c.Strategy, c.Workload = strat, wl
	for _, tok := range fields[1:] {
		key, val, hasVal := strings.Cut(tok, "=")
		switch key {
		case "naive":
			if hasVal {
				return c, fmt.Errorf("faults: case token %q takes no value", tok)
			}
			c.Naive = true
		case "oracle":
			if hasVal {
				return c, fmt.Errorf("faults: case token %q takes no value", tok)
			}
			c.Oracle = true
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("faults: case seed %q: %w", val, err)
			}
			c.Seed = v
		case "cuts":
			for _, f := range strings.Split(val, ",") {
				v, err := strconv.ParseUint(f, 10, 64)
				if err != nil {
					return c, fmt.Errorf("faults: case cut %q: %w", f, err)
				}
				c.Cuts = append(c.Cuts, v)
			}
		case "mean", "torn", "flips", "stale", "period":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return c, fmt.Errorf("faults: case %s=%q: want a finite number ≥ 0", key, val)
			}
			switch key {
			case "mean":
				c.MeanCut = v
			case "torn":
				c.Torn = v
			case "flips":
				c.Flips = v
			case "stale":
				c.Stale = v
			case "period":
				c.Period = v
			}
		case "fresh":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("faults: case fresh %q: %w", val, err)
			}
			c.Fresh = v
		case "periods":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return c, fmt.Errorf("faults: case periods %q: want an integer ≥ 0", val)
			}
			c.Periods = v
		default:
			return c, fmt.Errorf("faults: unknown case token %q", tok)
		}
	}
	return c, nil
}
