package asm

import (
	"testing"

	"ehmodel/internal/isa"
)

// TestEveryEmitter drives each instruction emitter once and checks the
// emitted opcode and operands — a within-package safety net for the
// builder surface the workloads rely on.
func TestEveryEmitter(t *testing.T) {
	b := New("emitters")
	b.Seg(SRAM)
	b.Word("w", 0)

	type want struct {
		op  isa.Op
		rd  isa.Reg
		rs1 isa.Reg
		rs2 isa.Reg
		imm int32
	}
	var wants []want
	emit := func(w want, f func()) {
		f()
		wants = append(wants, w)
	}

	r1, r2, r3 := isa.R1, isa.R2, isa.R3
	emit(want{op: isa.ADD, rd: r1, rs1: r2, rs2: r3}, func() { b.Add(r1, r2, r3) })
	emit(want{op: isa.SUB, rd: r1, rs1: r2, rs2: r3}, func() { b.Sub(r1, r2, r3) })
	emit(want{op: isa.AND, rd: r1, rs1: r2, rs2: r3}, func() { b.And(r1, r2, r3) })
	emit(want{op: isa.OR, rd: r1, rs1: r2, rs2: r3}, func() { b.Or(r1, r2, r3) })
	emit(want{op: isa.XOR, rd: r1, rs1: r2, rs2: r3}, func() { b.Xor(r1, r2, r3) })
	emit(want{op: isa.SLL, rd: r1, rs1: r2, rs2: r3}, func() { b.Sll(r1, r2, r3) })
	emit(want{op: isa.SRL, rd: r1, rs1: r2, rs2: r3}, func() { b.Srl(r1, r2, r3) })
	emit(want{op: isa.SRA, rd: r1, rs1: r2, rs2: r3}, func() { b.Sra(r1, r2, r3) })
	emit(want{op: isa.SLT, rd: r1, rs1: r2, rs2: r3}, func() { b.Slt(r1, r2, r3) })
	emit(want{op: isa.SLTU, rd: r1, rs1: r2, rs2: r3}, func() { b.Sltu(r1, r2, r3) })
	emit(want{op: isa.MUL, rd: r1, rs1: r2, rs2: r3}, func() { b.Mul(r1, r2, r3) })
	emit(want{op: isa.DIV, rd: r1, rs1: r2, rs2: r3}, func() { b.Div(r1, r2, r3) })
	emit(want{op: isa.REM, rd: r1, rs1: r2, rs2: r3}, func() { b.Rem(r1, r2, r3) })

	emit(want{op: isa.ADDI, rd: r1, rs1: r2, imm: 5}, func() { b.Addi(r1, r2, 5) })
	emit(want{op: isa.ANDI, rd: r1, rs1: r2, imm: 5}, func() { b.Andi(r1, r2, 5) })
	emit(want{op: isa.ORI, rd: r1, rs1: r2, imm: 5}, func() { b.Ori(r1, r2, 5) })
	emit(want{op: isa.XORI, rd: r1, rs1: r2, imm: 5}, func() { b.Xori(r1, r2, 5) })
	emit(want{op: isa.SLLI, rd: r1, rs1: r2, imm: 5}, func() { b.Slli(r1, r2, 5) })
	emit(want{op: isa.SRLI, rd: r1, rs1: r2, imm: 5}, func() { b.Srli(r1, r2, 5) })
	emit(want{op: isa.SRAI, rd: r1, rs1: r2, imm: 5}, func() { b.Srai(r1, r2, 5) })
	emit(want{op: isa.SLTI, rd: r1, rs1: r2, imm: 5}, func() { b.Slti(r1, r2, 5) })
	emit(want{op: isa.LUI, rd: r1, imm: 5}, func() { b.Lui(r1, 5) })

	emit(want{op: isa.LW, rd: r1, rs1: r2, imm: 4}, func() { b.Lw(r1, r2, 4) })
	emit(want{op: isa.LB, rd: r1, rs1: r2, imm: 4}, func() { b.Lb(r1, r2, 4) })
	emit(want{op: isa.LBU, rd: r1, rs1: r2, imm: 4}, func() { b.Lbu(r1, r2, 4) })
	emit(want{op: isa.SW, rd: r1, rs1: r2, imm: 4}, func() { b.Sw(r1, r2, 4) })
	emit(want{op: isa.SB, rd: r1, rs1: r2, imm: 4}, func() { b.Sb(r1, r2, 4) })

	emit(want{op: isa.JALR, rd: r1, rs1: r2, imm: 0}, func() { b.Jalr(r1, r2, 0) })
	emit(want{op: isa.SYS, imm: int32(isa.SysChkpt)}, func() { b.Chkpt() })
	emit(want{op: isa.SYS, imm: int32(isa.SysTaskBegin)}, func() { b.TaskBegin() })
	emit(want{op: isa.SYS, imm: int32(isa.SysTaskEnd)}, func() { b.TaskEnd() })
	emit(want{op: isa.SYS, rs1: r2, imm: int32(isa.SysOut)}, func() { b.Out(r2) })
	emit(want{op: isa.SYS, rd: r1, imm: int32(isa.SysSense)}, func() { b.Sense(r1) })
	emit(want{op: isa.ADDI, rd: isa.R0, rs1: isa.R0}, func() { b.Nop() })
	emit(want{op: isa.ADD, rd: r1, rs1: r2}, func() { b.Mv(r1, r2) })
	emit(want{op: isa.SYS, imm: int32(isa.SysHalt)}, func() { b.Halt() })

	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != len(wants) {
		t.Fatalf("emitted %d instructions, expected %d", len(p.Code), len(wants))
	}
	for i, w := range wants {
		in := p.Code[i]
		if in.Op != w.op || in.Rd != w.rd || in.Rs1 != w.rs1 || in.Imm != w.imm {
			t.Errorf("instr %d: got %+v, want %+v", i, in, w)
		}
		if w.op.IsRType() && in.Rs2 != w.rs2 {
			t.Errorf("instr %d: rs2 %v, want %v", i, in.Rs2, w.rs2)
		}
	}
}

// TestBranchEmitters checks every conditional branch resolves its label.
func TestBranchEmitters(t *testing.T) {
	b := New("branches")
	b.Label("t")
	b.Beq(isa.R1, isa.R2, "t")
	b.Bne(isa.R1, isa.R2, "t")
	b.Blt(isa.R1, isa.R2, "t")
	b.Bge(isa.R1, isa.R2, "t")
	b.Bltu(isa.R1, isa.R2, "t")
	b.Bgeu(isa.R1, isa.R2, "t")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
	for i, op := range ops {
		if p.Code[i].Op != op {
			t.Errorf("branch %d: %v, want %v", i, p.Code[i].Op, op)
		}
		if p.Code[i].Imm != int32(-i) {
			t.Errorf("branch %d: offset %d, want %d", i, p.Code[i].Imm, -i)
		}
	}
}

// TestPCHelper: PC reports the next instruction slot.
func TestPCHelper(t *testing.T) {
	b := New("pc")
	if b.PC() != 0 {
		t.Error("fresh builder PC != 0")
	}
	b.Nop()
	if b.PC() != 1 {
		t.Error("PC after one instruction != 1")
	}
	if _, ok := b.Symbol("none"); ok {
		t.Error("undefined symbol found")
	}
	b.Seg(SRAM)
	b.Word("x", 1)
	if a, ok := b.Symbol("x"); !ok || a != 0 {
		t.Errorf("symbol x at %#x ok=%v", a, ok)
	}
}
