package asm

import (
	"errors"
	"strings"
	"testing"

	"ehmodel/internal/isa"
)

func TestListing(t *testing.T) {
	b := New("demo")
	b.Seg(SRAM)
	b.Word("count", 0)
	b.Seg(FRAM)
	b.Word("table", 1, 2)
	b.La(isa.R1, "count")
	b.Label("loop")
	b.Addi(isa.R2, isa.R2, 1)
	b.Bne(isa.R2, isa.R3, "loop")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	out := p.Listing()
	for _, want := range []string{
		`program "demo"`,
		"loop:",
		"addi",
		"bne",
		"sys halt",
		"symbols:",
		"count",
		"table",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// one line per instruction plus headers
	if lines := strings.Count(out, "\n"); lines < len(p.Code)+3 {
		t.Errorf("listing too short: %d lines", lines)
	}
}

func TestWhere(t *testing.T) {
	b := New("where")
	b.Nop() // 0: before any label
	b.Label("loop")
	b.Nop() // 1: loop
	b.Nop() // 2: loop+1
	b.Label("tail")
	b.Label("alias") // two labels at the same index: tie breaks to "alias"
	b.Halt()         // 3
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range map[uint32]string{
		0: "0", 1: "loop", 2: "loop+1", 3: "alias",
	} {
		if got := p.Where(i); got != want {
			t.Errorf("Where(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestLineFor: the diagnostic line carries the index, the label-relative
// position, the encoding and the disassembly text.
func TestLineFor(t *testing.T) {
	b := New("line")
	b.Label("loop")
	b.Addi(isa.R2, isa.R2, 1)
	b.Bne(isa.R2, isa.R3, "loop")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	line := p.LineFor(1)
	for _, want := range []string{"1", "loop+1", "bne"} {
		if !strings.Contains(line, want) {
			t.Errorf("LineFor(1) = %q, missing %q", line, want)
		}
	}
	if got := p.LineFor(uint32(len(p.Code))); got != "" {
		t.Errorf("out-of-range LineFor = %q, want empty", got)
	}
}

// TestBuildErrorContext: Assemble-time failures are *BuildError values
// whose message embeds the offending instruction's rendered text, not
// just its index.
func TestBuildErrorContext(t *testing.T) {
	b := New("bad")
	b.Addi(isa.R1, isa.R0, 7)
	b.Jump("nowhere")
	_, err := b.Assemble()
	var be *BuildError
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("expected *BuildError, got %T: %v", err, err)
	}
	if be.Site != 1 || be.Prog != "bad" {
		t.Errorf("site/prog = %d/%q, want 1/%q", be.Site, be.Prog, "bad")
	}
	if !strings.Contains(be.Line, "jal") {
		t.Errorf("Line = %q, want the rendered jal instruction", be.Line)
	}
	for _, want := range []string{"nowhere", "jal", "instruction 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}

// TestBuildErrorOutOfRangeLabel: a fixup that cannot reach its target
// reports the branch site with context.
func TestBuildErrorOutOfRangeLabel(t *testing.T) {
	b := New("far")
	b.Jal(isa.R0, "end") // absolute target beyond imm18 range
	for i := 0; i < isa.ImmMax+2; i++ {
		b.Nop()
	}
	b.Label("end")
	b.Halt()
	_, err := b.Assemble()
	var be *BuildError
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("expected *BuildError, got %T: %v", err, err)
	}
	if be.Site != 0 || !strings.Contains(err.Error(), "out of immediate range") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestBuildErrorEmptyProgram: the program-wide case has no site.
func TestBuildErrorEmptyProgram(t *testing.T) {
	_, err := New("empty2").Assemble()
	var be *BuildError
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("expected *BuildError, got %T: %v", err, err)
	}
	if be.Site != -1 || be.Line != "" {
		t.Errorf("program-wide error carries site %d line %q", be.Site, be.Line)
	}
}
