package asm

import (
	"strings"
	"testing"

	"ehmodel/internal/isa"
)

func TestListing(t *testing.T) {
	b := New("demo")
	b.Seg(SRAM)
	b.Word("count", 0)
	b.Seg(FRAM)
	b.Word("table", 1, 2)
	b.La(isa.R1, "count")
	b.Label("loop")
	b.Addi(isa.R2, isa.R2, 1)
	b.Bne(isa.R2, isa.R3, "loop")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	out := p.Listing()
	for _, want := range []string{
		`program "demo"`,
		"loop:",
		"addi",
		"bne",
		"sys halt",
		"symbols:",
		"count",
		"table",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// one line per instruction plus headers
	if lines := strings.Count(out, "\n"); lines < len(p.Code)+3 {
		t.Errorf("listing too short: %d lines", lines)
	}
}
