package asm

import (
	"strings"
	"testing"

	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

func TestAssembleSimpleLoop(t *testing.T) {
	b := New("loop")
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 10)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Bne(isa.R1, isa.R2, "top")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 5 {
		t.Fatalf("expected 5 instructions, got %d", len(p.Code))
	}
	// branch at index 3 targets index 2: offset −1
	if p.Code[3].Imm != -1 {
		t.Errorf("branch offset = %d, want -1", p.Code[3].Imm)
	}
	if len(p.Words) != len(p.Code) {
		t.Error("words not aligned with code")
	}
}

func TestForwardBranch(t *testing.T) {
	b := New("fwd")
	b.Beq(isa.R0, isa.R0, "done") // index 0 → index 2: offset +2
	b.Nop()
	b.Label("done")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 2 {
		t.Errorf("forward branch offset = %d, want 2", p.Code[0].Imm)
	}
}

func TestJalAbsolute(t *testing.T) {
	b := New("jal")
	b.Jump("end")
	b.Nop()
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.JAL || p.Code[0].Imm != 3 {
		t.Errorf("jal = %+v, want absolute target 3", p.Code[0])
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := New("bad")
	b.Jump("nowhere")
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := New("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate-label error, got %v", err)
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := New("empty").Assemble(); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestImmediateRangeChecked(t *testing.T) {
	b := New("imm")
	b.Addi(isa.R1, isa.R0, isa.ImmMax+1)
	b.Halt()
	if _, err := b.Assemble(); err == nil {
		t.Fatal("oversized immediate accepted")
	}
}

func TestDataDirectives(t *testing.T) {
	b := New("data")
	b.Seg(SRAM)
	b.Word("counter", 42)
	b.Space("buf", 16)
	b.Seg(FRAM)
	b.Word("table", 1, 2, 3)
	b.Bytes("msg", []byte("hi"))
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if a := p.Symbols["counter"]; a != mem.SRAMBase {
		t.Errorf("counter at %#x", a)
	}
	if a := p.Symbols["buf"]; a != mem.SRAMBase+4 {
		t.Errorf("buf at %#x", a)
	}
	if a := p.Symbols["table"]; a != mem.FRAMBase {
		t.Errorf("table at %#x", a)
	}
	if a := p.Symbols["msg"]; a != mem.FRAMBase+12 {
		t.Errorf("msg at %#x", a)
	}
	if len(p.SRAMImage) != 20 {
		t.Errorf("sram image %d bytes, want 20", len(p.SRAMImage))
	}
	// table contents little-endian
	if p.FRAMImage[0] != 1 || p.FRAMImage[4] != 2 || p.FRAMImage[8] != 3 {
		t.Errorf("table image wrong: % x", p.FRAMImage[:12])
	}
}

func TestWordAlignmentAfterBytes(t *testing.T) {
	b := New("align")
	b.Seg(SRAM)
	b.Bytes("odd", []byte{1, 2, 3}) // 3 bytes
	b.Word("w", 7)                  // must align to 4
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if a := p.Symbols["w"]; a != mem.SRAMBase+4 {
		t.Errorf("w at %#x, want aligned %#x", a, mem.SRAMBase+4)
	}
}

func TestDuplicateSymbol(t *testing.T) {
	b := New("dupsym")
	b.Word("x", 1)
	b.Word("x", 2)
	b.Halt()
	if _, err := b.Assemble(); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
}

func TestNegativeSpace(t *testing.T) {
	b := New("negspace")
	b.Space("x", -1)
	b.Halt()
	if _, err := b.Assemble(); err == nil {
		t.Fatal("negative space accepted")
	}
}

func TestLaUndefined(t *testing.T) {
	b := New("la")
	b.La(isa.R1, "missing")
	b.Halt()
	if _, err := b.Assemble(); err == nil {
		t.Fatal("La of undefined symbol accepted")
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	b := New("li")
	b.Li(isa.R1, 5)          // one ADDI
	b.Li(isa.R2, 0xDEADBEEF) // LUI+ORI
	b.Li(isa.R3, 0x20000)    // FRAM base: LUI only (low bits zero)
	b.Li(isa.R4, 0x20004)    // past ImmMax with nonzero low bits
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.ADDI {
		t.Errorf("small Li should be one ADDI, got %v", p.Code[0].Op)
	}
	if p.Code[1].Op != isa.LUI || p.Code[2].Op != isa.ORI {
		t.Errorf("large Li should be LUI+ORI, got %v %v", p.Code[1].Op, p.Code[2].Op)
	}
	if p.Code[3].Op != isa.LUI {
		t.Errorf("aligned Li should be a lone LUI, got %v", p.Code[3].Op)
	}
	// the fourth Li starts right after the lone LUI
	if p.Code[4].Op != isa.LUI || p.Code[5].Op != isa.ORI {
		t.Errorf("Li(0x20004) should be LUI+ORI, got %v %v", p.Code[4].Op, p.Code[5].Op)
	}
}

func TestCallRet(t *testing.T) {
	b := New("call")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.JAL || p.Code[0].Rd != isa.LR {
		t.Errorf("call = %+v", p.Code[0])
	}
	if p.Code[2].Op != isa.JALR || p.Code[2].Rd != isa.R0 || p.Code[2].Rs1 != isa.LR {
		t.Errorf("ret = %+v", p.Code[2])
	}
}

func TestFirstErrorSticks(t *testing.T) {
	b := New("sticky")
	b.Addi(isa.R1, isa.R0, isa.ImmMax+1) // error 1
	b.La(isa.R2, "missing")              // would be error 2
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "immediate") {
		t.Fatalf("first error should win, got %v", err)
	}
}

func TestSegmentString(t *testing.T) {
	if SRAM.String() != "sram" || FRAM.String() != "fram" {
		t.Error("segment names wrong")
	}
}

func TestProgramIsolation(t *testing.T) {
	b := New("iso")
	b.Seg(SRAM)
	b.Word("x", 1)
	b.Nop()
	b.Halt()
	p, _ := b.Assemble()
	p.SRAMImage[0] = 99
	p2, _ := b.Assemble()
	if p2.SRAMImage[0] == 99 {
		t.Error("assembled images share backing storage")
	}
}
