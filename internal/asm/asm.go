// Package asm provides a programmatic assembler for EH32. Workloads are
// written against a Builder — labels, branches, data directives and a
// few pseudo-instructions — and assembled into a Program the device
// simulator loads. It plays the role GCC plays in the paper's
// evaluation: turning benchmark kernels into machine code with known
// addresses and instruction mixes.
package asm

import (
	"fmt"

	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

// Segment selects where a data directive is placed.
type Segment int

const (
	// SRAM places data in volatile memory (checkpointed, lost on power
	// failure) — the layout conventional systems like Mementos use.
	SRAM Segment = iota
	// FRAM places data in nonvolatile memory — the layout Clank-style
	// and NVP systems use.
	FRAM
)

func (s Segment) String() string {
	if s == SRAM {
		return "sram"
	}
	return "fram"
}

// Program is an assembled EH32 binary image.
type Program struct {
	Name      string
	Code      []isa.Instr
	Words     []uint32 // binary encodings, index-aligned with Code
	SRAMImage []byte
	FRAMImage []byte
	Symbols   map[string]uint32 // data symbol → absolute address
	Labels    map[string]uint32 // code label → instruction index
	Entry     uint32
}

// BuildError is an Assemble-time failure. Besides the program name and
// instruction index it carries the offending instruction's rendered
// text, so diagnostics show the source line rather than a bare number.
type BuildError struct {
	Prog string
	Site int    // instruction index; -1 when program-wide
	Line string // rendered instruction at Site; "" when program-wide
	Msg  string
}

func (e *BuildError) Error() string {
	switch {
	case e.Site < 0:
		return fmt.Sprintf("asm(%s): %s", e.Prog, e.Msg)
	case e.Line != "":
		return fmt.Sprintf("asm(%s): instruction %d `%s`: %s", e.Prog, e.Site, e.Line, e.Msg)
	default:
		return fmt.Sprintf("asm(%s): instruction %d: %s", e.Prog, e.Site, e.Msg)
	}
}

// buildErr constructs a BuildError for instruction index site, rendering
// the instruction text when the site is in range.
func (b *Builder) buildErr(site int, format string, args ...any) *BuildError {
	line := ""
	if site >= 0 && site < len(b.code) {
		line = b.code[site].String()
	}
	return &BuildError{Prog: b.name, Site: site, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// fixupKind distinguishes how a label reference is patched.
type fixupKind int

const (
	fixRelative fixupKind = iota // branch: imm = target − site
	fixAbsolute                  // jal: imm = target
)

type fixup struct {
	site  int // instruction index to patch
	label string
	kind  fixupKind
}

// Builder accumulates instructions and data, then assembles them.
// Methods record the first error and make subsequent calls no-ops, so
// straight-line building code needs a single error check at Assemble.
type Builder struct {
	name    string
	code    []isa.Instr
	labels  map[string]uint32
	fixups  []fixup
	symbols map[string]uint32
	sram    []byte
	fram    []byte
	seg     Segment
	err     error
}

// New returns an empty Builder for a named program.
func New(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]uint32),
		symbols: make(map[string]uint32),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm(%s): %s", b.name, fmt.Sprintf(format, args...))
	}
}

// emit appends one instruction.
func (b *Builder) emit(in isa.Instr) {
	if b.err != nil {
		return
	}
	b.code = append(b.code, in)
}

// PC returns the index the next instruction will occupy.
func (b *Builder) PC() uint32 { return uint32(len(b.code)) }

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if b.err != nil {
		return
	}
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// --- data directives ---

// Seg switches the active data segment for subsequent directives.
func (b *Builder) Seg(s Segment) { b.seg = s }

// segBuf returns the active segment's buffer pointer and base address.
func (b *Builder) segBuf() (*[]byte, uint32) {
	if b.seg == SRAM {
		return &b.sram, mem.SRAMBase
	}
	return &b.fram, mem.FRAMBase
}

// defineSymbol registers name at the current end of the active segment,
// word-aligned, and returns its address.
func (b *Builder) defineSymbol(name string) uint32 {
	buf, base := b.segBuf()
	for len(*buf)%4 != 0 {
		*buf = append(*buf, 0)
	}
	addr := base + uint32(len(*buf))
	if name != "" {
		if _, dup := b.symbols[name]; dup {
			b.fail("duplicate symbol %q", name)
			return addr
		}
		b.symbols[name] = addr
	}
	return addr
}

// Word defines a symbol holding the given 32-bit values.
func (b *Builder) Word(name string, vals ...uint32) {
	if b.err != nil {
		return
	}
	b.defineSymbol(name)
	buf, _ := b.segBuf()
	for _, v := range vals {
		*buf = append(*buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// Bytes defines a symbol holding raw bytes.
func (b *Builder) Bytes(name string, data []byte) {
	if b.err != nil {
		return
	}
	b.defineSymbol(name)
	buf, _ := b.segBuf()
	*buf = append(*buf, data...)
}

// Space defines a symbol with n zero bytes.
func (b *Builder) Space(name string, n int) {
	if b.err != nil {
		return
	}
	if n < 0 {
		b.fail("negative space %d for %q", n, name)
		return
	}
	b.Bytes(name, make([]byte, n))
}

// --- R-type ---

func (b *Builder) rtype(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd = rs1 + rs2; the remaining R-type helpers follow suit.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.ADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.SUB, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.AND, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg)   { b.rtype(isa.OR, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.XOR, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.SLL, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.SRL, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.SRA, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.SLT, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) { b.rtype(isa.SLTU, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.MUL, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.DIV, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg)  { b.rtype(isa.REM, rd, rs1, rs2) }

// --- I-type ---

func (b *Builder) itype(op isa.Op, rd, rs1 isa.Reg, imm int32) {
	if b.err != nil {
		return
	}
	if !isa.FitsImm(imm) {
		b.fail("%v immediate %d out of range", op, imm)
		return
	}
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Addi emits rd = rs1 + imm; the remaining I-type helpers follow suit.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int32) { b.itype(isa.ADDI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int32) { b.itype(isa.ANDI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int32)  { b.itype(isa.ORI, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int32) { b.itype(isa.XORI, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int32) { b.itype(isa.SLLI, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int32) { b.itype(isa.SRLI, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int32) { b.itype(isa.SRAI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int32) { b.itype(isa.SLTI, rd, rs1, imm) }
func (b *Builder) Lui(rd isa.Reg, imm int32)       { b.itype(isa.LUI, rd, isa.R0, imm) }

// --- memory ---

// Lw emits rd = mem32[rs1+off]; Lb/Lbu are the byte variants.
func (b *Builder) Lw(rd, rs1 isa.Reg, off int32)  { b.itype(isa.LW, rd, rs1, off) }
func (b *Builder) Lb(rd, rs1 isa.Reg, off int32)  { b.itype(isa.LB, rd, rs1, off) }
func (b *Builder) Lbu(rd, rs1 isa.Reg, off int32) { b.itype(isa.LBU, rd, rs1, off) }

// Sw emits mem32[base+off] = src; Sb is the byte variant.
func (b *Builder) Sw(src, base isa.Reg, off int32) { b.itype(isa.SW, src, base, off) }
func (b *Builder) Sb(src, base isa.Reg, off int32) { b.itype(isa.SB, src, base, off) }

// --- control flow ---

func (b *Builder) branch(op isa.Op, a, rb isa.Reg, label string) {
	if b.err != nil {
		return
	}
	b.fixups = append(b.fixups, fixup{site: len(b.code), label: label, kind: fixRelative})
	b.emit(isa.Instr{Op: op, Rd: a, Rs1: rb})
}

// Beq branches to label when a == b; the other helpers mirror their ops.
func (b *Builder) Beq(a, rb isa.Reg, label string)  { b.branch(isa.BEQ, a, rb, label) }
func (b *Builder) Bne(a, rb isa.Reg, label string)  { b.branch(isa.BNE, a, rb, label) }
func (b *Builder) Blt(a, rb isa.Reg, label string)  { b.branch(isa.BLT, a, rb, label) }
func (b *Builder) Bge(a, rb isa.Reg, label string)  { b.branch(isa.BGE, a, rb, label) }
func (b *Builder) Bltu(a, rb isa.Reg, label string) { b.branch(isa.BLTU, a, rb, label) }
func (b *Builder) Bgeu(a, rb isa.Reg, label string) { b.branch(isa.BGEU, a, rb, label) }

// Jal jumps to label, saving the return address in rd.
func (b *Builder) Jal(rd isa.Reg, label string) {
	if b.err != nil {
		return
	}
	b.fixups = append(b.fixups, fixup{site: len(b.code), label: label, kind: fixAbsolute})
	b.emit(isa.Instr{Op: isa.JAL, Rd: rd})
}

// Jalr jumps to rs1+imm, saving the return address in rd.
func (b *Builder) Jalr(rd, rs1 isa.Reg, imm int32) { b.itype(isa.JALR, rd, rs1, imm) }

// Call is Jal with the conventional link register.
func (b *Builder) Call(label string) { b.Jal(isa.LR, label) }

// Ret returns through the link register.
func (b *Builder) Ret() { b.Jalr(isa.R0, isa.LR, 0) }

// Jump is an unconditional jump that clobbers no register.
func (b *Builder) Jump(label string) { b.Jal(isa.R0, label) }

// --- SYS ---

func (b *Builder) sys(s isa.Sys, rd, rs1 isa.Reg) {
	b.emit(isa.Instr{Op: isa.SYS, Rd: rd, Rs1: rs1, Imm: int32(s)})
}

// Halt stops the program; the runtime commits final state.
func (b *Builder) Halt() { b.sys(isa.SysHalt, isa.R0, isa.R0) }

// Chkpt marks a Mementos-style checkpoint site.
func (b *Builder) Chkpt() { b.sys(isa.SysChkpt, isa.R0, isa.R0) }

// TaskBegin and TaskEnd delimit DINO/Chain-style atomic tasks.
func (b *Builder) TaskBegin() { b.sys(isa.SysTaskBegin, isa.R0, isa.R0) }
func (b *Builder) TaskEnd()   { b.sys(isa.SysTaskEnd, isa.R0, isa.R0) }

// Out appends rs's value to the commit-buffered output stream.
func (b *Builder) Out(rs isa.Reg) { b.sys(isa.SysOut, isa.R0, rs) }

// Sense reads the next deterministic sensor sample into rd.
func (b *Builder) Sense(rd isa.Reg) { b.sys(isa.SysSense, rd, isa.R0) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Addi(isa.R0, isa.R0, 0) }

// --- pseudo-instructions ---

// Mv copies rs to rd.
func (b *Builder) Mv(rd, rs isa.Reg) { b.Add(rd, rs, isa.R0) }

// Li loads an arbitrary 32-bit constant, expanding to LUI+ORI when the
// value does not fit the 18-bit immediate.
func (b *Builder) Li(rd isa.Reg, v uint32) {
	if isa.FitsImm(int32(v)) {
		b.Addi(rd, isa.R0, int32(v))
		return
	}
	hi := v >> 14 // 18 significant bits
	lo := int32(v & 0x3FFF)
	s := int32(hi)
	if hi > uint32(isa.ImmMax) {
		s = int32(hi) - (1 << 18)
	}
	b.Lui(rd, s)
	if lo != 0 {
		b.Ori(rd, rd, lo)
	}
}

// La loads a data symbol's address. The symbol must exist by Assemble
// time; La is resolved immediately, so define data before referencing
// it.
func (b *Builder) La(rd isa.Reg, symbol string) {
	if b.err != nil {
		return
	}
	addr, ok := b.symbols[symbol]
	if !ok {
		b.fail("undefined symbol %q (define data before La)", symbol)
		return
	}
	b.Li(rd, addr)
}

// Symbol returns a defined data symbol's address.
func (b *Builder) Symbol(name string) (uint32, bool) {
	a, ok := b.symbols[name]
	return a, ok
}

// Assemble resolves labels, encodes every instruction and returns the
// program.
func (b *Builder) Assemble() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.code) == 0 {
		return nil, b.buildErr(-1, "empty program")
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, b.buildErr(f.site, "undefined label %q", f.label)
		}
		var imm int32
		switch f.kind {
		case fixRelative:
			imm = int32(target) - int32(f.site)
		case fixAbsolute:
			imm = int32(target)
		}
		if !isa.FitsImm(imm) {
			return nil, b.buildErr(f.site, "label %q out of immediate range", f.label)
		}
		b.code[f.site].Imm = imm
	}
	words := make([]uint32, len(b.code))
	for i, in := range b.code {
		w, err := in.Encode()
		if err != nil {
			return nil, b.buildErr(i, "%v", err)
		}
		words[i] = w
	}
	return &Program{
		Name:      b.name,
		Code:      append([]isa.Instr(nil), b.code...),
		Words:     words,
		SRAMImage: append([]byte(nil), b.sram...),
		FRAMImage: append([]byte(nil), b.fram...),
		Symbols:   copyMap(b.symbols),
		Labels:    copyMap(b.labels),
	}, nil
}

func copyMap(m map[string]uint32) map[string]uint32 {
	out := make(map[string]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
