package asm

import (
	"fmt"
	"sort"
	"strings"
)

// Listing renders a human-readable disassembly of the program: every
// instruction with its index, encoding and any label, followed by the
// data symbol table. It is the inspection surface ehsim's -list flag
// exposes.
func (p *Program) Listing() string {
	labelAt := make(map[uint32][]string)
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for _, names := range labelAt {
		sort.Strings(names)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "program %q: %d instructions, %d B sram data, %d B fram data\n",
		p.Name, len(p.Code), len(p.SRAMImage), len(p.FRAMImage))
	for i, in := range p.Code {
		for _, l := range labelAt[uint32(i)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %5d  %08x  %v\n", i, p.Words[i], in)
	}

	if len(p.Symbols) > 0 {
		b.WriteString(p.symbolTable())
	}
	return b.String()
}

// Where returns a human-readable position for instruction index i: the
// nearest preceding code label plus offset ("shift+2"), or the bare
// index when no label precedes i.
func (p *Program) Where(i uint32) string {
	best, bestIdx, found := "", uint32(0), false
	for name, idx := range p.Labels {
		if idx > i {
			continue
		}
		// Prefer the closest label; break ties lexicographically so the
		// rendering is deterministic.
		if !found || idx > bestIdx || (idx == bestIdx && name < best) {
			best, bestIdx, found = name, idx, true
		}
	}
	if !found {
		return fmt.Sprintf("%d", i)
	}
	if i == bestIdx {
		return best
	}
	return fmt.Sprintf("%s+%d", best, i-bestIdx)
}

// LineFor renders instruction i as one source listing line — index,
// label-relative position, encoding and disassembly — the context text
// diagnostics embed so findings read like the -list output. Out-of-range
// indices render as an empty string.
func (p *Program) LineFor(i uint32) string {
	if int(i) >= len(p.Code) {
		return ""
	}
	return fmt.Sprintf("%5d (%s)  %08x  %v", i, p.Where(i), p.Words[i], p.Code[i])
}

func (p *Program) symbolTable() string {
	var b strings.Builder
	b.WriteString("symbols:\n")
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return p.Symbols[names[i]] < p.Symbols[names[j]] })
	for _, n := range names {
		fmt.Fprintf(&b, "  %-20s %#x\n", n, p.Symbols[n])
	}
	return b.String()
}
