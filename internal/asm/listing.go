package asm

import (
	"fmt"
	"sort"
	"strings"
)

// Listing renders a human-readable disassembly of the program: every
// instruction with its index, encoding and any label, followed by the
// data symbol table. It is the inspection surface ehsim's -list flag
// exposes.
func (p *Program) Listing() string {
	labelAt := make(map[uint32][]string)
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for _, names := range labelAt {
		sort.Strings(names)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "program %q: %d instructions, %d B sram data, %d B fram data\n",
		p.Name, len(p.Code), len(p.SRAMImage), len(p.FRAMImage))
	for i, in := range p.Code {
		for _, l := range labelAt[uint32(i)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %5d  %08x  %v\n", i, p.Words[i], in)
	}

	if len(p.Symbols) > 0 {
		b.WriteString("symbols:\n")
		names := make([]string, 0, len(p.Symbols))
		for n := range p.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return p.Symbols[names[i]] < p.Symbols[names[j]] })
		for _, n := range names {
			fmt.Fprintf(&b, "  %-20s %#x\n", n, p.Symbols[n])
		}
	}
	return b.String()
}
