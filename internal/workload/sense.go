package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// sense is Table II's sensor-statistics benchmark: sample the ADC K
// times into a buffer, then compute the integer mean and variance in a
// second pass. The first pass is store-heavy (write-first friendly);
// the second pass re-reads the buffer.
func init() {
	register(Workload{
		Name: "sense",
		Desc: "Table II SENSE: mean/variance statistics over ADC samples",
		Build: func(o Options) (*asm.Program, error) {
			k := 64 * o.scale()
			b := asm.New("sense")
			b.Seg(o.Seg)
			b.Space("buf", 4*k)

			// Pass 1: sample.
			b.La(isa.R1, "buf")
			b.Li(isa.R2, uint32(k)) // remaining
			b.Li(isa.R3, 0)         // sum
			b.Label("sample")
			b.TaskBegin()
			b.Sense(isa.R4)
			b.Andi(isa.R4, isa.R4, 0x3FF) // 10-bit ADC
			b.Sw(isa.R4, isa.R1, 0)
			b.Add(isa.R3, isa.R3, isa.R4)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, -1)
			b.Chkpt()
			b.Bne(isa.R2, isa.R0, "sample")

			// mean = sum / k
			b.Li(isa.R5, uint32(k))
			b.Div(isa.R6, isa.R3, isa.R5) // mean

			// Pass 2: accumulate squared deviations.
			b.La(isa.R1, "buf")
			b.Li(isa.R2, uint32(k))
			b.Li(isa.R7, 0) // acc
			b.Label("dev")
			b.TaskBegin()
			b.Lw(isa.R4, isa.R1, 0)
			b.Sub(isa.R8, isa.R4, isa.R6)
			b.Mul(isa.R8, isa.R8, isa.R8)
			b.Add(isa.R7, isa.R7, isa.R8)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, -1)
			b.Chkpt()
			b.Bne(isa.R2, isa.R0, "dev")

			b.Div(isa.R9, isa.R7, isa.R5) // variance
			b.Out(isa.R6)
			b.Out(isa.R9)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			k := 64 * o.scale()
			var sum uint32
			samples := make([]uint32, k)
			for i := 0; i < k; i++ {
				samples[i] = cpu.SenseValue(uint32(i)) & 0x3FF
				sum += samples[i]
			}
			mean := sum / uint32(k)
			var acc uint32
			for _, s := range samples {
				d := s - mean // wraps like the 32-bit hardware
				acc += d * d
			}
			return []uint32{mean, acc / uint32(k)}
		},
	})
}
