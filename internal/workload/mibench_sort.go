package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// qsortInput derives the unsorted array (values kept below 2³¹ so
// signed compares work).
func qsortInput(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = cpu.SenseValue(uint32(i+5000)) & 0x7FFFFFFF
	}
	return out
}

// qsortRef sorts and folds a position-weighted checksum.
func qsortRef(n int) []uint32 {
	a := qsortInput(n)
	// insertion sort, mirroring the kernel exactly
	for i := 1; i < n; i++ {
		key := a[i]
		j := i - 1
		for j >= 0 && a[j] > key {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = key
	}
	var chk uint32
	for i, v := range a {
		chk += v * uint32(i+1)
	}
	return []uint32{chk}
}

// qsort is the MiBench in-place sort kernel (insertion sort at this
// problem size). The shift loop's load-from-a[j], store-to-a[j+1]
// pattern generates dense write-after-read violations under Clank.
func init() {
	register(Workload{
		Name: "qsort",
		Desc: "MiBench qsort: in-place sort (insertion kernel) with checksum",
		Build: func(o Options) (*asm.Program, error) {
			n := 48 * o.scale()
			b := asm.New("qsort")
			b.Seg(o.Seg)
			b.Word("arr", qsortInput(n)...)

			b.La(isa.R1, "arr")
			b.Li(isa.R2, uint32(n))
			b.Li(isa.R3, 1) // i
			b.Chkpt()       // checkpoint site between setup and the first iteration

			b.Label("outer")
			b.TaskBegin()
			b.Slli(isa.TR, isa.R3, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(isa.R4, isa.TR, 0)    // key = a[i]
			b.Addi(isa.R5, isa.R3, -1) // j
			b.Label("shift")
			b.Blt(isa.R5, isa.R0, "place")
			b.Slli(isa.TR, isa.R5, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(isa.R6, isa.TR, 0) // a[j]
			b.Bge(isa.R4, isa.R6, "place")
			b.Sw(isa.R6, isa.TR, 4) // a[j+1] = a[j]
			b.Addi(isa.R5, isa.R5, -1)
			b.Jump("shift")
			b.Label("place")
			b.Addi(isa.R5, isa.R5, 1)
			b.Slli(isa.TR, isa.R5, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Sw(isa.R4, isa.TR, 0) // a[j+1] = key
			b.TaskEnd()
			b.Addi(isa.R3, isa.R3, 1)
			b.Chkpt()
			b.Blt(isa.R3, isa.R2, "outer")

			// checksum pass
			b.Li(isa.R3, 0) // i
			b.Li(isa.R4, 0) // chk
			b.Label("chk")
			b.Slli(isa.TR, isa.R3, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(isa.R5, isa.TR, 0)
			b.Addi(isa.R6, isa.R3, 1)
			b.Mul(isa.R5, isa.R5, isa.R6)
			b.Add(isa.R4, isa.R4, isa.R5)
			b.Addi(isa.R3, isa.R3, 1)
			b.Blt(isa.R3, isa.R2, "chk")
			b.Out(isa.R4)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return qsortRef(48 * o.scale())
		},
	})
}
