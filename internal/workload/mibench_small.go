package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// bitcountWords derives the popcount input set.
func bitcountWords(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = cpu.SenseValue(uint32(i + 2000))
	}
	return out
}

// bitcount is the MiBench popcount kernel (Kernighan's loop), almost
// entirely ALU work over a read-only table.
func init() {
	register(Workload{
		Name: "bitcount",
		Desc: "MiBench bitcount: Kernighan popcount over a word table",
		Build: func(o Options) (*asm.Program, error) {
			n := 96 * o.scale()
			b := asm.New("bitcount")
			b.Seg(asm.FRAM)
			b.Word("tab", bitcountWords(n)...)
			b.Seg(o.Seg)
			b.Word("total", 0)

			b.La(isa.R1, "tab")
			b.La(isa.R2, "total")
			b.Li(isa.R3, uint32(n))
			b.Li(isa.R4, 0) // total
			b.Chkpt()       // checkpoint site between setup and the first iteration

			b.Label("word")
			b.TaskBegin()
			b.Lw(isa.R5, isa.R1, 0)
			b.Label("kern")
			b.Beq(isa.R5, isa.R0, "donebits")
			b.Addi(isa.R6, isa.R5, -1)
			b.And(isa.R5, isa.R5, isa.R6) // clear lowest set bit
			b.Addi(isa.R4, isa.R4, 1)
			b.Jump("kern")
			b.Label("donebits")
			b.Sw(isa.R4, isa.R2, 0)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R3, isa.R3, -1)
			b.Chkpt()
			b.Bne(isa.R3, isa.R0, "word")

			b.Out(isa.R4)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			var total uint32
			for _, w := range bitcountWords(96 * o.scale()) {
				for w != 0 {
					w &= w - 1
					total++
				}
			}
			return []uint32{total}
		},
	})
}

// basicmathPairs derives (a, b) operand pairs bounded to 16 bits so the
// integer square-root loop stays short.
func basicmathPairs(n int) [][2]uint32 {
	out := make([][2]uint32, n)
	for i := range out {
		out[i][0] = cpu.SenseValue(uint32(i+3000))&0xFFFF + 1
		out[i][1] = cpu.SenseValue(uint32(i+4000))&0xFFFF + 1
	}
	return out
}

// basicmathRef mirrors the kernel: sum of gcd(a,b) and isqrt(a) over the
// pair set.
func basicmathRef(n int) []uint32 {
	var sum uint32
	for _, p := range basicmathPairs(n) {
		a, b := p[0], p[1]
		for b != 0 {
			a, b = b, a%b
		}
		sum += a // gcd
		x := p[0]
		r := uint32(0)
		for (r+1)*(r+1) <= x {
			r++
		}
		sum += r // isqrt
	}
	return []uint32{sum}
}

// basicmath is the MiBench math kernel: Euclid's gcd and an integer
// square root per operand pair — register-resident compute with almost
// no stores.
func init() {
	register(Workload{
		Name: "basicmath",
		Desc: "MiBench basicmath: gcd and integer sqrt over operand pairs",
		Build: func(o Options) (*asm.Program, error) {
			n := 24 * o.scale()
			pairs := basicmathPairs(n)
			flat := make([]uint32, 0, 2*n)
			for _, p := range pairs {
				flat = append(flat, p[0], p[1])
			}
			b := asm.New("basicmath")
			b.Seg(asm.FRAM)
			b.Word("pairs", flat...)
			b.Seg(o.Seg)
			b.Word("sum", 0)

			b.La(isa.R1, "pairs")
			b.La(isa.R2, "sum")
			b.Li(isa.R3, uint32(n))
			b.Li(isa.R4, 0) // sum
			b.Chkpt()       // checkpoint site between setup and the first iteration

			b.Label("pair")
			b.TaskBegin()
			b.Lw(isa.R5, isa.R1, 0) // a
			b.Lw(isa.R6, isa.R1, 4) // b
			b.Mv(isa.R9, isa.R5)    // keep a for isqrt
			// gcd
			b.Label("gcd")
			b.Beq(isa.R6, isa.R0, "gcdDone")
			b.Rem(isa.R7, isa.R5, isa.R6)
			b.Mv(isa.R5, isa.R6)
			b.Mv(isa.R6, isa.R7)
			b.Jump("gcd")
			b.Label("gcdDone")
			b.Add(isa.R4, isa.R4, isa.R5)
			// isqrt: r=0; while (r+1)² ≤ x: r++
			b.Li(isa.R7, 0)
			b.Label("sqrt")
			b.Addi(isa.R8, isa.R7, 1)
			b.Mul(isa.R10, isa.R8, isa.R8)
			b.Blt(isa.R9, isa.R10, "sqrtDone") // x < (r+1)² → stop
			b.Mv(isa.R7, isa.R8)
			b.Jump("sqrt")
			b.Label("sqrtDone")
			b.Add(isa.R4, isa.R4, isa.R7)
			b.Sw(isa.R4, isa.R2, 0)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 8)
			b.Addi(isa.R3, isa.R3, -1)
			b.Chkpt()
			b.Bne(isa.R3, isa.R0, "pair")

			b.Out(isa.R4)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return basicmathRef(24 * o.scale())
		},
	})
}
