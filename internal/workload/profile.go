package workload

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/mem"
)

// Profile summarizes a program's continuous execution: the inputs an
// architect needs to parameterize the EH model by hand (instruction
// mix, store density for α_B estimates, τ_store for Eq. 15 planning).
type Profile struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	// StoreEveryCycles is the mean τ_store (cycles between stores).
	StoreEveryCycles float64
	// UniqueStoreWords is the distinct words written — the upper bound
	// on a run's store-queue payload.
	UniqueStoreWords int
	// SRAMFootprint is the initialized volatile data size in bytes.
	SRAMFootprint int
	Output        []uint32
}

// ProfileProgram executes prog continuously and gathers its profile.
func ProfileProgram(prog *asm.Program, maxSteps uint64) (*Profile, error) {
	ms, err := mem.NewSystem(8*1024, 256*1024)
	if err != nil {
		return nil, err
	}
	if err := ms.WriteSRAMImage(prog.SRAMImage); err != nil {
		return nil, err
	}
	if err := ms.WriteFRAMImage(prog.FRAMImage); err != nil {
		return nil, err
	}
	c := &cpu.Core{}
	p := &Profile{SRAMFootprint: len(prog.SRAMImage)}
	seen := make(map[uint32]struct{})
	for steps := uint64(0); !c.Halted; steps++ {
		if steps >= maxSteps {
			return nil, fmt.Errorf("workload: %q did not halt within %d steps", prog.Name, maxSteps)
		}
		st, err := c.Step(prog.Code, ms)
		if err != nil {
			return nil, err
		}
		p.Instructions++
		p.Cycles += st.Cycles
		if st.HasAccess {
			if st.Access.Store {
				p.Stores++
				seen[st.Access.Addr&^3] = struct{}{}
			} else {
				p.Loads++
			}
		}
	}
	p.UniqueStoreWords = len(seen)
	if p.Stores > 0 {
		p.StoreEveryCycles = float64(p.Cycles) / float64(p.Stores)
	}
	p.Output = append([]uint32(nil), c.OutBuf...)
	return p, nil
}
