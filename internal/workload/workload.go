// Package workload provides the benchmark programs of the paper's
// evaluation, written for EH32: the six hardware-validation benchmarks
// of Table II (RSA, CRC, SENSE, AR, MIDI, DS), the counter
// microbenchmark of §V-A, and a MiBench-like kernel set for the Clank
// characterization of §V-B (susan, lzfx, sha, dijkstra, qsort,
// stringsearch, bitcount, basicmath).
//
// Every workload carries a pure-Go reference oracle computing the exact
// committed output the program must produce, which the test suite uses
// to prove that intermittent execution under every strategy is
// equivalent to continuous execution.
//
// Programs mark Mementos checkpoint sites (Chkpt) at loop latches and
// DINO task boundaries (TaskBegin/TaskEnd) around natural atomic units,
// so the same binary serves every runtime. Data placement is selectable:
// SRAM for checkpointing systems, FRAM for Clank/NVP-style nonvolatile
// main memory.
package workload

import (
	"fmt"
	"sort"

	"ehmodel/internal/asm"
)

// Options configure a workload build.
type Options struct {
	// Seg places mutable data in SRAM (checkpointing runtimes) or FRAM
	// (nonvolatile-memory runtimes).
	Seg asm.Segment
	// Scale multiplies the problem size; 0 means 1.
	Scale int
}

func (o Options) scale() int {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// Workload is one benchmark: an EH32 program builder plus its oracle.
type Workload struct {
	Name string
	Desc string
	// Build assembles the program for the given options.
	Build func(Options) (*asm.Program, error)
	// Ref computes the committed output a correct run must produce.
	Ref func(Options) []uint32
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Get returns a workload by name.
func Get(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// All returns every workload sorted by name.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted workload names.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// TableII returns the six hardware-validation benchmarks in the paper's
// order.
func TableII() []Workload {
	var out []Workload
	for _, n := range []string{"rsa", "crc", "sense", "ar", "midi", "ds"} {
		w, ok := Get(n)
		if !ok {
			panic("workload: Table II benchmark missing: " + n)
		}
		out = append(out, w)
	}
	return out
}

// MiBench returns the characterization kernel set of §V-B.
func MiBench() []Workload {
	var out []Workload
	for _, n := range []string{"susan", "lzfx", "sha", "dijkstra", "qsort", "stringsearch", "bitcount", "basicmath"} {
		w, ok := Get(n)
		if !ok {
			panic("workload: MiBench kernel missing: " + n)
		}
		out = append(out, w)
	}
	return out
}
