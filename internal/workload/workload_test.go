package workload

import (
	"reflect"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
)

// TestAllWorkloadsMatchOracle is the foundational correctness check:
// every workload, in both data placements, produces exactly its
// reference output when run continuously.
func TestAllWorkloadsMatchOracle(t *testing.T) {
	for _, w := range All() {
		for _, seg := range []asm.Segment{asm.SRAM, asm.FRAM} {
			w, seg := w, seg
			t.Run(w.Name+"/"+seg.String(), func(t *testing.T) {
				t.Parallel()
				opts := Options{Seg: seg}
				prog, err := w.Build(opts)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				out, cycles, err := device.RunContinuous(prog, 0, 0, 50_000_000)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if cycles == 0 {
					t.Fatal("no cycles executed")
				}
				want := w.Ref(opts)
				if !reflect.DeepEqual(out, want) {
					t.Fatalf("output mismatch:\n got %v\nwant %v", out, want)
				}
			})
		}
	}
}

// TestScaleGrowsWork: Scale must increase executed cycles.
func TestScaleGrowsWork(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p1, err := w.Build(Options{Seg: asm.SRAM, Scale: 1})
			if err != nil {
				t.Fatal(err)
			}
			p2, err := w.Build(Options{Seg: asm.SRAM, Scale: 2})
			if err != nil {
				t.Fatal(err)
			}
			_, c1, err := device.RunContinuous(p1, 0, 0, 100_000_000)
			if err != nil {
				t.Fatal(err)
			}
			_, c2, err := device.RunContinuous(p2, 0, 0, 100_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if c2 <= c1 {
				t.Errorf("scale 2 (%d cycles) should exceed scale 1 (%d)", c2, c1)
			}
		})
	}
}

func TestRegistryContents(t *testing.T) {
	if len(TableII()) != 6 {
		t.Error("Table II must have six benchmarks")
	}
	if len(MiBench()) != 8 {
		t.Error("MiBench set must have eight kernels")
	}
	if _, ok := Get("counter"); !ok {
		t.Error("counter missing")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown workload found")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Error("Names/All mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestOptionsScaleDefault(t *testing.T) {
	if (Options{}).scale() != 1 || (Options{Scale: -3}).scale() != 1 || (Options{Scale: 4}).scale() != 4 {
		t.Error("scale defaulting wrong")
	}
}

// TestWorkloadsHaveRuntimeMarkers: every workload must expose checkpoint
// sites and task boundaries so Mementos and DINO have hooks.
func TestWorkloadsHaveRuntimeMarkers(t *testing.T) {
	for _, w := range All() {
		prog, err := w.Build(Options{Seg: asm.SRAM})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var chkpt, taskEnd bool
		for _, in := range prog.Code {
			if in.Op.String() == "sys" {
				switch in.Imm {
				case 1:
					chkpt = true
				case 3:
					taskEnd = true
				}
			}
		}
		if !chkpt {
			t.Errorf("%s: no checkpoint sites", w.Name)
		}
		if !taskEnd {
			t.Errorf("%s: no task boundaries", w.Name)
		}
	}
}
