package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// shaWords derives the deterministic message schedule.
func shaWords(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = cpu.SenseValue(uint32(i + 1000)) // distinct from SysSense stream
	}
	return out
}

func rotl(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// shaRef mirrors the ARX mixing rounds of the kernel.
func shaRef(n int) []uint32 {
	a, b, c, d := uint32(0x67452301), uint32(0xEFCDAB89), uint32(0x98BADCFE), uint32(0x10325476)
	for _, w := range shaWords(n) {
		a += w
		d ^= a
		d = rotl(d, 16)
		c += d
		b ^= c
		b = rotl(b, 12)
		a += b
		a = rotl(a, 7)
	}
	return []uint32{a, b, c, d}
}

// sha is the MiBench hashing kernel: ARX (add-rotate-xor) rounds over a
// word stream, state held entirely in registers — minimal store traffic
// means long idempotent regions (watchdog-dominated τ_B under Clank).
func init() {
	register(Workload{
		Name: "sha",
		Desc: "MiBench sha: ARX hash rounds over a message word stream",
		Build: func(o Options) (*asm.Program, error) {
			n := 128 * o.scale()
			b := asm.New("sha")
			b.Seg(asm.FRAM)
			b.Word("msg", shaWords(n)...)
			b.Seg(o.Seg)
			b.Space("digest", 16)

			// rotl emits rd = rotl(rs, k) via TR.
			rot := func(rd isa.Reg, k int32) {
				b.Srli(isa.TR, rd, 32-k)
				b.Slli(rd, rd, k)
				b.Or(rd, rd, isa.TR)
			}

			b.La(isa.R1, "msg")
			b.Li(isa.R2, uint32(n))
			b.Li(isa.R5, 0x67452301)
			b.Li(isa.R6, 0xEFCDAB89)
			b.Li(isa.R7, 0x98BADCFE)
			b.Li(isa.R8, 0x10325476)

			b.Label("round")
			b.TaskBegin()
			b.Lw(isa.R9, isa.R1, 0)
			b.Add(isa.R5, isa.R5, isa.R9) // a += w
			b.Xor(isa.R8, isa.R8, isa.R5) // d ^= a
			rot(isa.R8, 16)
			b.Add(isa.R7, isa.R7, isa.R8) // c += d
			b.Xor(isa.R6, isa.R6, isa.R7) // b ^= c
			rot(isa.R6, 12)
			b.Add(isa.R5, isa.R5, isa.R6) // a += b
			rot(isa.R5, 7)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, -1)
			b.Chkpt()
			b.Bne(isa.R2, isa.R0, "round")

			// persist digest, then emit it
			b.La(isa.R3, "digest")
			b.Sw(isa.R5, isa.R3, 0)
			b.Sw(isa.R6, isa.R3, 4)
			b.Sw(isa.R7, isa.R3, 8)
			b.Sw(isa.R8, isa.R3, 12)
			b.Out(isa.R5)
			b.Out(isa.R6)
			b.Out(isa.R7)
			b.Out(isa.R8)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return shaRef(128 * o.scale())
		},
	})
}
