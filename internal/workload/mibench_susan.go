package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// susan image dimensions (fixed; Scale repeats the smoothing pass).
const (
	susanW = 16
	susanH = 16
)

func susanInput() []byte {
	img := make([]byte, susanW*susanH)
	for i := range img {
		img[i] = pat(i)
	}
	return img
}

// susanRef runs the 3×3 mean smoothing the kernel computes and returns
// the accumulated checksum over all passes.
func susanRef(passes int) uint32 {
	in := susanInput()
	var chk uint32
	for p := 0; p < passes; p++ {
		for y := 1; y < susanH-1; y++ {
			for x := 1; x < susanW-1; x++ {
				sum := uint32(0)
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						sum += uint32(in[(y+dy)*susanW+(x+dx)])
					}
				}
				chk += sum / 9
			}
		}
	}
	return chk
}

// susan is the MiBench image-smoothing kernel: a 3×3 mean filter over a
// grayscale image, writing the smoothed image to a separate buffer.
// Loads dominate stores 9:1, so idempotent regions are long (§V-B shows
// susan's τ_B among the largest).
func init() {
	register(Workload{
		Name: "susan",
		Desc: "MiBench susan: 3×3 mean smoothing over a grayscale image",
		Build: func(o Options) (*asm.Program, error) {
			passes := o.scale()
			b := asm.New("susan")
			b.Seg(asm.FRAM)
			b.Bytes("img", susanInput())
			b.Seg(o.Seg)
			b.Space("out", susanW*susanH)

			b.La(isa.R1, "img")
			b.La(isa.R2, "out")
			b.Li(isa.R9, 0) // checksum
			b.Li(isa.R12, uint32(passes))
			b.Chkpt() // checkpoint site between setup and the first iteration

			b.Label("pass")
			b.Li(isa.R3, 1) // y
			b.Label("row")
			b.Li(isa.R4, 1) // x
			b.Label("col")
			b.TaskBegin()
			// R5 = &img[y*W+x]
			b.Slli(isa.R5, isa.R3, 4) // y*16
			b.Add(isa.R5, isa.R5, isa.R4)
			b.Add(isa.R6, isa.R5, isa.R2) // &out[...], before clobbering index
			b.Add(isa.R5, isa.R5, isa.R1)
			// 3×3 sum into R7
			b.Li(isa.R7, 0)
			for _, off := range []int32{-17, -16, -15, -1, 0, 1, 15, 16, 17} {
				b.Lbu(isa.R8, isa.R5, off)
				b.Add(isa.R7, isa.R7, isa.R8)
			}
			b.Li(isa.R8, 9)
			b.Div(isa.R7, isa.R7, isa.R8)
			b.Sb(isa.R7, isa.R6, 0)
			b.Add(isa.R9, isa.R9, isa.R7) // checksum accumulator
			b.TaskEnd()
			b.Addi(isa.R4, isa.R4, 1)
			b.Li(isa.R10, susanW-1)
			b.Blt(isa.R4, isa.R10, "col")
			b.Chkpt()
			b.Addi(isa.R3, isa.R3, 1)
			b.Li(isa.R10, susanH-1)
			b.Blt(isa.R3, isa.R10, "row")
			b.Addi(isa.R12, isa.R12, -1)
			b.Bne(isa.R12, isa.R0, "pass")

			b.Out(isa.R9)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return []uint32{susanRef(o.scale())}
		},
	})
}
