package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// dsBuckets is the histogram size of the DS data logger.
const dsBuckets = 16

// ds is Table II's key-value histogram data logger: each sensor sample
// hashes to a bucket whose counter is incremented in memory. The
// per-sample read-modify-write of a histogram word is the classic
// idempotency-violation pattern (like lzfx, DS backs up frequently
// under Clank).
func init() {
	register(Workload{
		Name: "ds",
		Desc: "Table II DS: key-value histogram data logger",
		Build: func(o Options) (*asm.Program, error) {
			n := 160 * o.scale()
			b := asm.New("ds")
			b.Seg(o.Seg)
			b.Space("hist", 4*dsBuckets)

			b.La(isa.R1, "hist")
			b.Li(isa.R2, uint32(n))
			b.Li(isa.R9, 2654435761) // Knuth multiplicative hash
			b.Chkpt()                // checkpoint site between setup and the first iteration

			b.Label("sample")
			b.TaskBegin()
			b.Sense(isa.R3)
			b.Mul(isa.R4, isa.R3, isa.R9)
			b.Srli(isa.R4, isa.R4, 28) // top 4 bits → bucket 0..15
			b.Slli(isa.R4, isa.R4, 2)
			b.Add(isa.R4, isa.R4, isa.R1)
			b.Lw(isa.R5, isa.R4, 0)
			b.Addi(isa.R5, isa.R5, 1)
			b.Sw(isa.R5, isa.R4, 0)
			b.TaskEnd()
			b.Addi(isa.R2, isa.R2, -1)
			b.Chkpt()
			b.Bne(isa.R2, isa.R0, "sample")

			// dump histogram
			b.Li(isa.R2, dsBuckets)
			b.Label("dump")
			b.Lw(isa.R3, isa.R1, 0)
			b.Out(isa.R3)
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, -1)
			b.Bne(isa.R2, isa.R0, "dump")
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			n := 160 * o.scale()
			hist := make([]uint32, dsBuckets)
			for i := 0; i < n; i++ {
				s := cpu.SenseValue(uint32(i))
				hist[s*2654435761>>28]++
			}
			return hist
		},
	})
}
