package workload

import (
	"reflect"
	"testing"

	"ehmodel/internal/device"
)

func TestTransposeBothOrdersMatchRef(t *testing.T) {
	want := TransposeRef(16)
	for _, order := range []TransposeOrder{LoadMajor, StoreMajor} {
		prog, err := Transpose(order, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		out, cycles, err := device.RunContinuous(prog, 0, 0, 10_000_000)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if cycles == 0 {
			t.Fatalf("%v: no work", order)
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("%v: output %v, want %v", order, out, want)
		}
	}
}

func TestTransposeOrdersDifferOnlyInAccessPattern(t *testing.T) {
	lm, err := Transpose(LoadMajor, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Transpose(StoreMajor, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Code) != len(sm.Code) {
		t.Fatalf("orders should have identical instruction counts: %d vs %d",
			len(lm.Code), len(sm.Code))
	}
	// same work, same cycles — only the addresses differ
	_, c1, err := device.RunContinuous(lm, 0, 0, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := device.RunContinuous(sm, 0, 0, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("cycle counts differ without a cache: %d vs %d", c1, c2)
	}
}
