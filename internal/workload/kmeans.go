package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// k-means parameters: 1-D sensor samples clustered into kmK centroids
// over kmIters Lloyd iterations.
const (
	kmK     = 4
	kmN     = 48
	kmIters = 5
)

// kmeansSamples mirrors the program's fill loop: the live SysSense
// stream starts at sequence zero.
func kmeansSamples(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = cpu.SenseValue(uint32(i)) & 0x3FF
	}
	return out
}

// kmeansRef mirrors the kernel: integer Lloyd iterations with absolute
// distance, ties to the lower centroid index, empty clusters keeping
// their centroid.
func kmeansRef(n, iters int) []uint32 {
	samples := kmeansSamples(n)
	centroids := [kmK]uint32{128, 384, 640, 896}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		var sum, cnt [kmK]uint32
		for i, s := range samples {
			best, bestD := 0, uint32(1<<31)
			for c := 0; c < kmK; c++ {
				d := s - centroids[c]
				if int32(d) < 0 {
					d = -d
				}
				if d < bestD {
					bestD, best = d, c
				}
			}
			assign[i] = best
			sum[best] += s
			cnt[best]++
		}
		for c := 0; c < kmK; c++ {
			if cnt[c] > 0 {
				centroids[c] = sum[c] / cnt[c]
			}
		}
	}
	var chk uint32
	for _, a := range assign {
		chk = chk*5 + uint32(a)
	}
	out := make([]uint32, 0, kmK+1)
	out = append(out, centroids[:]...)
	return append(out, chk)
}

// kmeans is a sensing-analytics kernel: Lloyd's algorithm on 1-D ADC
// samples. Each iteration re-reads the sample buffer and
// read-modifies-writes per-cluster accumulators — a WAR-dense profile
// between ds and sense.
func init() {
	register(Workload{
		Name: "kmeans",
		Desc: "k-means clustering of ADC samples (integer Lloyd iterations)",
		Build: func(o Options) (*asm.Program, error) {
			n := kmN * o.scale()
			b := asm.New("kmeans")
			b.Seg(o.Seg)
			b.Space("samples", 4*n)
			b.Space("assign", 4*n)
			b.Word("centroids", 128, 384, 640, 896)
			b.Space("sum", 4*kmK)
			b.Space("cnt", 4*kmK)

			// sample once into the buffer
			b.La(isa.R1, "samples")
			b.Li(isa.R2, uint32(n))
			b.Label("fill")
			b.Sense(isa.R3)
			b.Andi(isa.R3, isa.R3, 0x3FF)
			b.Sw(isa.R3, isa.R1, 0)
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, -1)
			b.Chkpt()
			b.Bne(isa.R2, isa.R0, "fill")

			b.Li(isa.R12, kmIters)
			b.Label("iter")
			// zero accumulators
			b.La(isa.R1, "sum")
			b.La(isa.R2, "cnt")
			for c := 0; c < kmK; c++ {
				b.Sw(isa.R0, isa.R1, int32(4*c))
				b.Sw(isa.R0, isa.R2, int32(4*c))
			}
			// assignment pass
			b.La(isa.R1, "samples")
			b.La(isa.R2, "assign")
			b.Li(isa.R3, uint32(n)) // remaining
			b.Label("assignLoop")
			b.TaskBegin()
			b.Lw(isa.R4, isa.R1, 0) // s
			b.Li(isa.R5, 0)         // best index
			b.Li(isa.R6, 0x7FFFFFFF)
			b.Li(isa.R7, 0) // candidate c
			b.Label("dist")
			b.La(isa.TR, "centroids")
			b.Slli(isa.R8, isa.R7, 2)
			b.Add(isa.R8, isa.R8, isa.TR)
			b.Lw(isa.R8, isa.R8, 0)
			b.Sub(isa.R8, isa.R4, isa.R8)
			b.Srai(isa.R9, isa.R8, 31) // abs
			b.Xor(isa.R8, isa.R8, isa.R9)
			b.Sub(isa.R8, isa.R8, isa.R9)
			b.Bge(isa.R8, isa.R6, "noBest")
			b.Mv(isa.R6, isa.R8)
			b.Mv(isa.R5, isa.R7)
			b.Label("noBest")
			b.Addi(isa.R7, isa.R7, 1)
			b.Li(isa.TR, kmK)
			b.Blt(isa.R7, isa.TR, "dist")
			// record assignment; bump sum/cnt (RMW)
			b.Sw(isa.R5, isa.R2, 0)
			b.La(isa.TR, "sum")
			b.Slli(isa.R7, isa.R5, 2)
			b.Add(isa.R7, isa.R7, isa.TR)
			b.Lw(isa.R8, isa.R7, 0)
			b.Add(isa.R8, isa.R8, isa.R4)
			b.Sw(isa.R8, isa.R7, 0)
			b.La(isa.TR, "cnt")
			b.Slli(isa.R7, isa.R5, 2)
			b.Add(isa.R7, isa.R7, isa.TR)
			b.Lw(isa.R8, isa.R7, 0)
			b.Addi(isa.R8, isa.R8, 1)
			b.Sw(isa.R8, isa.R7, 0)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, 4)
			b.Addi(isa.R3, isa.R3, -1)
			b.Chkpt()
			b.Bne(isa.R3, isa.R0, "assignLoop")
			// update pass
			b.La(isa.R1, "centroids")
			b.La(isa.R2, "sum")
			b.La(isa.R3, "cnt")
			b.Li(isa.R7, 0)
			b.Label("update")
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.R8, isa.TR, isa.R3)
			b.Lw(isa.R8, isa.R8, 0) // cnt
			b.Beq(isa.R8, isa.R0, "skipC")
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.R9, isa.TR, isa.R2)
			b.Lw(isa.R9, isa.R9, 0) // sum
			b.Div(isa.R9, isa.R9, isa.R8)
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.R8, isa.TR, isa.R1)
			b.Sw(isa.R9, isa.R8, 0)
			b.Label("skipC")
			b.Addi(isa.R7, isa.R7, 1)
			b.Li(isa.TR, kmK)
			b.Blt(isa.R7, isa.TR, "update")
			b.Addi(isa.R12, isa.R12, -1)
			b.Chkpt()
			b.Bne(isa.R12, isa.R0, "iter")

			// emit centroids and an assignment checksum
			b.La(isa.R1, "centroids")
			for c := 0; c < kmK; c++ {
				b.Lw(isa.R2, isa.R1, int32(4*c))
				b.Out(isa.R2)
			}
			b.La(isa.R1, "assign")
			b.Li(isa.R2, uint32(n))
			b.Li(isa.R3, 0)
			b.Label("chk")
			b.Lw(isa.R4, isa.R1, 0)
			b.Li(isa.TR, 5)
			b.Mul(isa.R3, isa.R3, isa.TR)
			b.Add(isa.R3, isa.R3, isa.R4)
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, -1)
			b.Bne(isa.R2, isa.R0, "chk")
			b.Out(isa.R3)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return kmeansRef(kmN*o.scale(), kmIters)
		},
	})
}
