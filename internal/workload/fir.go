package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// firTaps is the 8-tap integer filter kernel used by the fir workload.
var firTaps = [8]uint32{1, 3, 7, 12, 12, 7, 3, 1}

// fir is a sensing-pipeline kernel beyond the paper's suites: an 8-tap
// integer FIR filter over a sliding window of ADC samples, the
// archetypal duty of an energy-harvesting sensor node. The sample
// window lives in memory as a shift register — store-then-load traffic
// between taps with moderate WAR density.
func init() {
	register(Workload{
		Name: "fir",
		Desc: "8-tap integer FIR filter over streaming ADC samples",
		Build: func(o Options) (*asm.Program, error) {
			n := 80 * o.scale()
			b := asm.New("fir")
			b.Seg(asm.FRAM)
			b.Word("taps", firTaps[:]...)
			b.Seg(o.Seg)
			b.Space("window", 4*8)
			b.Word("acc", 0)

			b.La(isa.R1, "window")
			b.La(isa.R2, "taps")
			b.La(isa.R3, "acc")
			b.Li(isa.R4, uint32(n)) // remaining samples
			b.Li(isa.R5, 0)         // checksum of filter outputs
			b.Chkpt()               // checkpoint site between setup and the first iteration

			b.Label("sample")
			b.TaskBegin()
			// shift the window up: w[7]←w[6]…w[1]←w[0] (read-then-write
			// WAR pattern per slot)
			for i := 7; i >= 1; i-- {
				b.Lw(isa.R6, isa.R1, int32(4*(i-1)))
				b.Sw(isa.R6, isa.R1, int32(4*i))
			}
			b.Sense(isa.R6)
			b.Andi(isa.R6, isa.R6, 0x3FF)
			b.Sw(isa.R6, isa.R1, 0)
			// dot product window · taps
			b.Li(isa.R7, 0)
			for i := 0; i < 8; i++ {
				b.Lw(isa.R8, isa.R1, int32(4*i))
				b.Lw(isa.R9, isa.R2, int32(4*i))
				b.Mul(isa.R8, isa.R8, isa.R9)
				b.Add(isa.R7, isa.R7, isa.R8)
			}
			b.Srli(isa.R7, isa.R7, 5) // scale by the tap gain (Σtaps ≈ 2⁵·1.4)
			b.Sw(isa.R7, isa.R3, 0)   // log the filtered value
			// fold into checksum
			b.Li(isa.TR, 31)
			b.Mul(isa.R5, isa.R5, isa.TR)
			b.Add(isa.R5, isa.R5, isa.R7)
			b.TaskEnd()
			b.Addi(isa.R4, isa.R4, -1)
			b.Chkpt()
			b.Bne(isa.R4, isa.R0, "sample")

			b.Out(isa.R5)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			n := 80 * o.scale()
			var window [8]uint32
			var chk uint32
			for i := 0; i < n; i++ {
				copy(window[1:], window[:7])
				window[0] = cpu.SenseValue(uint32(i)) & 0x3FF
				var acc uint32
				for k := 0; k < 8; k++ {
					acc += window[k] * firTaps[k]
				}
				acc >>= 5
				chk = chk*31 + acc
			}
			return []uint32{chk}
		},
	})
}
