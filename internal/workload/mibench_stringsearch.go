package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

const ssNeedle = "sensor"

// ssText builds the haystack: filler prose with the needle planted at a
// known cadence.
func ssText(n int) []byte {
	filler := []byte("energy harvesting devices compute intermittently when the sensor charge allows forward progress and the sensor sleeps otherwise. ")
	out := make([]byte, n)
	for i := range out {
		out[i] = filler[i%len(filler)]
	}
	return out
}

// ssRef mirrors the naive scan: match count and a position checksum.
func ssRef(n int) []uint32 {
	text := ssText(n)
	needle := []byte(ssNeedle)
	var count, chk uint32
	for i := 0; i+len(needle) <= len(text); i++ {
		match := true
		for k := range needle {
			if text[i+k] != needle[k] {
				match = false
				break
			}
		}
		if match {
			count++
			chk = chk*17 + uint32(i)
		}
	}
	return []uint32{count, chk}
}

// stringsearch is the MiBench substring-search kernel: a naive scan
// whose inner comparison loop is pure loads — long idempotent regions
// punctuated by rare match logging.
func init() {
	register(Workload{
		Name: "stringsearch",
		Desc: "MiBench stringsearch: naive substring scan with match log",
		Build: func(o Options) (*asm.Program, error) {
			n := 512 * o.scale()
			needle := []byte(ssNeedle)
			b := asm.New("stringsearch")
			b.Seg(asm.FRAM)
			b.Bytes("text", ssText(n))
			b.Bytes("needle", needle)
			b.Seg(o.Seg)
			b.Word("matches", 0)

			b.La(isa.R1, "text")
			b.La(isa.R2, "needle")
			b.La(isa.R3, "matches")
			b.Li(isa.R4, uint32(n-len(needle))) // last start index
			b.Li(isa.R5, 0)                     // i
			b.Li(isa.R6, 0)                     // count
			b.Li(isa.R7, 0)                     // chk
			b.Li(isa.R12, uint32(len(needle)))
			b.Chkpt() // checkpoint site between setup and the first iteration

			b.Label("scan")
			b.TaskBegin()
			b.Li(isa.R8, 0) // k
			b.Label("cmp")
			b.Add(isa.TR, isa.R1, isa.R5)
			b.Add(isa.TR, isa.TR, isa.R8)
			b.Lbu(isa.R9, isa.TR, 0)
			b.Add(isa.TR, isa.R2, isa.R8)
			b.Lbu(isa.R10, isa.TR, 0)
			b.Bne(isa.R9, isa.R10, "miss")
			b.Addi(isa.R8, isa.R8, 1)
			b.Blt(isa.R8, isa.R12, "cmp")
			// match
			b.Addi(isa.R6, isa.R6, 1)
			b.Li(isa.TR, 17)
			b.Mul(isa.R7, isa.R7, isa.TR)
			b.Add(isa.R7, isa.R7, isa.R5)
			b.Sw(isa.R6, isa.R3, 0) // log running count
			b.Label("miss")
			b.TaskEnd()
			b.Addi(isa.R5, isa.R5, 1)
			b.Chkpt()
			b.Bge(isa.R4, isa.R5, "scan") // while i ≤ last

			b.Out(isa.R6)
			b.Out(isa.R7)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return ssRef(512 * o.scale())
		},
	})
}
