package workload

import (
	"fmt"
	"math/rand"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// Random generates a random but deterministic, always-terminating EH32
// program for differential testing: a counted loop whose body is a
// random mix of ALU operations, bounded array loads/stores, sensor
// reads, outputs and runtime markers, followed by an array checksum.
// Programs generated with the same seed are identical, so the
// continuous run is a precise oracle for any intermittent run.
func Random(seed int64, seg asm.Segment) (*asm.Program, error) {
	rng := rand.New(rand.NewSource(seed))
	b := asm.New(fmt.Sprintf("random-%d", seed))

	const arrWords = 32
	init := make([]uint32, arrWords)
	for i := range init {
		init[i] = rng.Uint32()
	}
	b.Seg(seg)
	b.Word("arr", init...)

	// R1 = array base, R2 = loop counter; R4–R11 are working registers.
	work := []isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9, isa.R10, isa.R11}
	b.La(isa.R1, "arr")
	for _, r := range work {
		b.Li(r, rng.Uint32())
	}
	iters := 100 + rng.Intn(200)
	b.Li(isa.R2, uint32(iters))

	pick := func() isa.Reg { return work[rng.Intn(len(work))] }

	b.Label("loop")
	b.TaskBegin()
	for n := 4 + rng.Intn(12); n > 0; n-- {
		switch rng.Intn(12) {
		case 0, 1, 2: // three-register ALU
			ops := []func(rd, a, c isa.Reg){b.Add, b.Sub, b.Xor, b.And, b.Or, b.Mul}
			ops[rng.Intn(len(ops))](pick(), pick(), pick())
		case 3: // division family (edge semantics are defined)
			if rng.Intn(2) == 0 {
				b.Div(pick(), pick(), pick())
			} else {
				b.Rem(pick(), pick(), pick())
			}
		case 4: // immediate ALU
			b.Addi(pick(), pick(), int32(rng.Intn(8191)-4096))
		case 5: // shifts
			sh := []func(rd, a isa.Reg, imm int32){b.Slli, b.Srli, b.Srai}
			sh[rng.Intn(len(sh))](pick(), pick(), int32(rng.Intn(32)))
		case 6, 7: // bounded array load: mask keeps the offset word-aligned
			idx, dst := pick(), pick()
			b.Andi(isa.TR, idx, (arrWords-1)*4)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(dst, isa.TR, 0)
		case 8, 9: // bounded array store
			idx, src := pick(), pick()
			b.Andi(isa.TR, idx, (arrWords-1)*4)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Sw(src, isa.TR, 0)
		case 10: // sensor read
			b.Sense(pick())
		case 11: // checkpoint site
			b.Chkpt()
		}
	}
	// occasional mid-loop output keeps the committed stream interesting
	// without exploding it
	if rng.Intn(3) == 0 {
		b.Andi(isa.TR, isa.R2, 63)
		b.Bne(isa.TR, isa.R0, "noout")
		b.Out(pick())
		b.Label("noout")
	}
	b.TaskEnd()
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")

	// checksum the array and the working registers
	b.Li(isa.R2, arrWords)
	b.Li(isa.R3, 0)
	b.Mv(isa.R12, isa.R1)
	b.Label("sum")
	b.Lw(isa.TR, isa.R12, 0)
	b.Add(isa.R3, isa.R3, isa.TR)
	b.Addi(isa.R12, isa.R12, 4)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "sum")
	b.Out(isa.R3)
	for _, r := range work {
		b.Xor(isa.R3, isa.R3, r)
	}
	b.Out(isa.R3)
	b.Halt()
	return b.Assemble()
}
