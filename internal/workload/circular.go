package workload

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// CircularBuffer builds the Listing 2 kernel of §VI-B: an array of n
// logical elements stored in a circular buffer of bufN ≥ n slots. Each
// outer iteration applies f(x) = 3x+1 to every element, reading slot
// (head+i) mod N and writing slot (head+n+i) mod N, then advances head
// by n. With bufN = n this is the conventional in-place update — an
// idempotency violation on every store under Clank; growing bufN
// postpones violations by bufN − n + 1 stores.
//
// The program is not in the registry because its buffer size is an
// experiment parameter rather than a workload property.
func CircularBuffer(n, bufN, iters int, seg asm.Segment) (*asm.Program, error) {
	if n <= 0 || bufN < n || iters <= 0 {
		return nil, fmt.Errorf("workload: bad circular buffer shape n=%d N=%d iters=%d", n, bufN, iters)
	}
	init := make([]uint32, bufN)
	for i := range init {
		init[i] = uint32(i*7 + 3)
	}
	b := asm.New(fmt.Sprintf("circbuf-n%d-N%d", n, bufN))
	b.Seg(seg)
	b.Word("buf", init...)

	b.La(isa.R1, "buf")
	b.Li(isa.R2, 0)             // head (element index)
	b.Li(isa.R3, uint32(iters)) // outer remaining
	b.Li(isa.R10, uint32(bufN))
	b.Li(isa.R11, uint32(n))

	b.Label("outer")
	b.TaskBegin()
	b.Li(isa.R4, 0) // i
	b.Label("inner")
	// src = (head + i) % N
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Rem(isa.R5, isa.R5, isa.R10)
	b.Slli(isa.R5, isa.R5, 2)
	b.Add(isa.R5, isa.R5, isa.R1)
	b.Lw(isa.R6, isa.R5, 0)
	// f(x) = 3x + 1
	b.Li(isa.TR, 3)
	b.Mul(isa.R6, isa.R6, isa.TR)
	b.Addi(isa.R6, isa.R6, 1)
	// dst = (head + n + i) % N
	b.Add(isa.R7, isa.R2, isa.R11)
	b.Add(isa.R7, isa.R7, isa.R4)
	b.Rem(isa.R7, isa.R7, isa.R10)
	b.Slli(isa.R7, isa.R7, 2)
	b.Add(isa.R7, isa.R7, isa.R1)
	b.Sw(isa.R6, isa.R7, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.Blt(isa.R4, isa.R11, "inner")
	// head = (head + n) % N
	b.Add(isa.R2, isa.R2, isa.R11)
	b.Rem(isa.R2, isa.R2, isa.R10)
	b.TaskEnd()
	b.Addi(isa.R3, isa.R3, -1)
	b.Chkpt()
	b.Bne(isa.R3, isa.R0, "outer")

	// checksum over the whole buffer
	b.Li(isa.R4, 0) // i
	b.Li(isa.R5, 0) // chk
	b.Label("chk")
	b.Slli(isa.TR, isa.R4, 2)
	b.Add(isa.TR, isa.TR, isa.R1)
	b.Lw(isa.R6, isa.TR, 0)
	b.Add(isa.R5, isa.R5, isa.R6)
	b.Addi(isa.R4, isa.R4, 1)
	b.Blt(isa.R4, isa.R10, "chk")
	b.Out(isa.R5)
	b.Halt()
	return b.Assemble()
}

// CircularBufferRef mirrors CircularBuffer's committed output.
func CircularBufferRef(n, bufN, iters int) []uint32 {
	buf := make([]uint32, bufN)
	for i := range buf {
		buf[i] = uint32(i*7 + 3)
	}
	head := 0
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			src := (head + i) % bufN
			dst := (head + n + i) % bufN
			buf[dst] = buf[src]*3 + 1
		}
		head = (head + n) % bufN
	}
	var chk uint32
	for _, v := range buf {
		chk += v
	}
	return []uint32{chk}
}

// CircularBufferStoreCycles returns τ_store, the cycles between store
// instructions in the kernel's inner loop (for Eq. 15 planning). The
// inner loop body is fixed, so this is a constant of the kernel.
func CircularBufferStoreCycles() float64 {
	// inner loop: add(1) rem(8) slli(1) add(1) lw(2) li(1) mul(2)
	// addi(1) add(1) add(1) rem(8) slli(1) add(1) sw(2) addi(1)
	// blt(2) = 34 cycles per iteration, one store each
	return 34
}
