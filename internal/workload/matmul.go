package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

const mmN = 12 // matrix dimension

func matmulInput(which int) []uint32 {
	out := make([]uint32, mmN*mmN)
	for i := range out {
		out[i] = uint32(i*31+which*17+5) & 0xFF
	}
	return out
}

// matmulRef computes C = A×B with wrapping 32-bit arithmetic and folds
// C into a checksum.
func matmulRef() []uint32 {
	a, b := matmulInput(1), matmulInput(2)
	var chk uint32
	for i := 0; i < mmN; i++ {
		for j := 0; j < mmN; j++ {
			var acc uint32
			for k := 0; k < mmN; k++ {
				acc += a[i*mmN+k] * b[k*mmN+j]
			}
			chk = chk*31 + acc
		}
	}
	return []uint32{chk}
}

// matmul is a dense integer matrix multiply: long read-only streaming
// with one store per output element — the read-dominant profile at the
// opposite end of the spectrum from ds/lzfx.
func init() {
	register(Workload{
		Name: "matmul",
		Desc: "dense integer matrix multiply with output checksum",
		Build: func(o Options) (*asm.Program, error) {
			reps := o.scale()
			b := asm.New("matmul")
			b.Seg(asm.FRAM)
			b.Word("A", matmulInput(1)...)
			b.Word("B", matmulInput(2)...)
			b.Seg(o.Seg)
			b.Space("C", 4*mmN*mmN)

			b.La(isa.R1, "A")
			b.La(isa.R2, "B")
			b.La(isa.R3, "C")
			b.Li(isa.R12, uint32(reps))
			b.Chkpt() // checkpoint site between setup and the first iteration

			b.Label("rep")
			b.Li(isa.R11, 0) // checksum
			b.Li(isa.R4, 0)  // i
			b.Label("rows")
			b.Li(isa.R5, 0) // j
			b.Label("cols")
			b.TaskBegin()
			b.Li(isa.R6, 0) // k
			b.Li(isa.R7, 0) // acc
			b.Label("dot")
			// a[i*N+k]
			b.Li(isa.TR, mmN)
			b.Mul(isa.R8, isa.R4, isa.TR)
			b.Add(isa.R8, isa.R8, isa.R6)
			b.Slli(isa.R8, isa.R8, 2)
			b.Add(isa.R8, isa.R8, isa.R1)
			b.Lw(isa.R8, isa.R8, 0)
			// b[k*N+j]
			b.Li(isa.TR, mmN)
			b.Mul(isa.R9, isa.R6, isa.TR)
			b.Add(isa.R9, isa.R9, isa.R5)
			b.Slli(isa.R9, isa.R9, 2)
			b.Add(isa.R9, isa.R9, isa.R2)
			b.Lw(isa.R9, isa.R9, 0)
			b.Mul(isa.R8, isa.R8, isa.R9)
			b.Add(isa.R7, isa.R7, isa.R8)
			b.Addi(isa.R6, isa.R6, 1)
			b.Li(isa.TR, mmN)
			b.Blt(isa.R6, isa.TR, "dot")
			// C[i*N+j] = acc; chk = chk*31 + acc
			b.Li(isa.TR, mmN)
			b.Mul(isa.R8, isa.R4, isa.TR)
			b.Add(isa.R8, isa.R8, isa.R5)
			b.Slli(isa.R8, isa.R8, 2)
			b.Add(isa.R8, isa.R8, isa.R3)
			b.Sw(isa.R7, isa.R8, 0)
			b.Li(isa.TR, 31)
			b.Mul(isa.R11, isa.R11, isa.TR)
			b.Add(isa.R11, isa.R11, isa.R7)
			b.TaskEnd()
			b.Addi(isa.R5, isa.R5, 1)
			b.Li(isa.TR, mmN)
			b.Blt(isa.R5, isa.TR, "cols")
			b.Chkpt()
			b.Addi(isa.R4, isa.R4, 1)
			b.Li(isa.TR, mmN)
			b.Blt(isa.R4, isa.TR, "rows")
			b.Addi(isa.R12, isa.R12, -1)
			b.Bne(isa.R12, isa.R0, "rep")

			b.Out(isa.R11)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return matmulRef() // every rep recomputes the same product
		},
	})
}
