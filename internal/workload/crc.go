package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// pat generates the deterministic input byte pattern shared by the
// workloads and their oracles.
func pat(i int) byte { return byte(i*31 + 7) }

func patBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = pat(i)
	}
	return out
}

const crcPoly = 0xEDB88320

// crcRef is the bitwise CRC-32 the EH32 program computes.
func crcRef(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crcPoly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// crc is Table II's checksum benchmark: bitwise CRC-32 over a pattern
// buffer, logging the running CRC to memory once per byte (the store
// stream checkpointing systems must track).
func init() {
	register(Workload{
		Name: "crc",
		Desc: "Table II CRC: bitwise CRC-32 checksum over a buffer",
		Build: func(o Options) (*asm.Program, error) {
			n := 96 * o.scale()
			b := asm.New("crc")
			// input is immutable: always FRAM
			b.Seg(asm.FRAM)
			b.Bytes("input", patBytes(n))
			b.Seg(o.Seg)
			b.Word("running", 0)

			b.La(isa.R1, "input")
			b.La(isa.R2, "running")
			b.Li(isa.R3, uint32(n)) // remaining
			b.Li(isa.R5, 0xFFFFFFFF)
			b.Li(isa.R9, crcPoly)
			b.Chkpt() // checkpoint site between setup and the first iteration

			b.Label("outer")
			b.TaskBegin()
			b.Lbu(isa.R6, isa.R1, 0)
			b.Xor(isa.R5, isa.R5, isa.R6)
			b.Li(isa.R7, 8)
			b.Label("inner")
			b.Andi(isa.R8, isa.R5, 1)
			b.Srli(isa.R5, isa.R5, 1)
			b.Beq(isa.R8, isa.R0, "skip")
			b.Xor(isa.R5, isa.R5, isa.R9)
			b.Label("skip")
			b.Addi(isa.R7, isa.R7, -1)
			b.Bne(isa.R7, isa.R0, "inner")
			b.Sw(isa.R5, isa.R2, 0) // log running CRC
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 1)
			b.Addi(isa.R3, isa.R3, -1)
			b.Chkpt()
			b.Bne(isa.R3, isa.R0, "outer")

			b.Xori(isa.R5, isa.R5, -1) // final inversion
			b.Out(isa.R5)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return []uint32{crcRef(patBytes(96 * o.scale()))}
		},
	})
}
