package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

const (
	lzfxHashBuckets = 64
	lzfxHashMul     = 2654435761
)

// lzfxInput builds compressible input: a repeating phrase with a little
// positional perturbation so both matches and literals occur.
func lzfxInput(n int) []byte {
	phrase := []byte("the quick brown fox jumps over the lazy dog. ")
	out := make([]byte, n)
	for i := range out {
		out[i] = phrase[i%len(phrase)]
		if i%97 == 0 {
			out[i] ^= 1 // occasional mutation breaks runs of matches
		}
	}
	return out
}

func lzfxHash(b0, b1, b2 uint32) uint32 {
	return ((b0*33+b1)*33 + b2) * lzfxHashMul >> 26 // 6 bits → 64 buckets
}

// lzfxRef mirrors the EH32 kernel: greedy LZ with a 64-entry hash table
// of last positions and fixed-length-3 matches, emitting a token stream
// folded into a checksum.
func lzfxRef(n int) []uint32 {
	in := lzfxInput(n)
	htab := make([]uint32, lzfxHashBuckets)
	var chk, count uint32
	i := uint32(0)
	limit := uint32(n - 2)
	for i < limit {
		h := lzfxHash(uint32(in[i]), uint32(in[i+1]), uint32(in[i+2]))
		ref := htab[h]
		htab[h] = i + 1
		var token uint32
		if ref != 0 && ref-1 < i &&
			in[ref-1] == in[i] && in[ref] == in[i+1] && in[ref+1] == in[i+2] {
			token = 0x8000 | (i - (ref - 1))
			i += 3
		} else {
			token = uint32(in[i])
			i++
		}
		chk = chk*31 + token
		count++
	}
	return []uint32{count, chk}
}

// lzfx is the MiBench compression kernel: every iteration reads and then
// rewrites a hash-table word — a guaranteed idempotency violation —
// which is why the paper observes lzfx backing up most frequently under
// Clank (Fig. 8).
func init() {
	register(Workload{
		Name: "lzfx",
		Desc: "MiBench lzfx: greedy LZ compression with a position hash table",
		Build: func(o Options) (*asm.Program, error) {
			n := 256 * o.scale()
			b := asm.New("lzfx")
			b.Seg(asm.FRAM)
			b.Bytes("input", lzfxInput(n))
			b.Seg(o.Seg)
			b.Space("htab", 4*lzfxHashBuckets)

			b.La(isa.R1, "input")
			b.La(isa.R2, "htab")
			b.Li(isa.R3, 0)           // i
			b.Li(isa.R4, uint32(n-2)) // limit
			b.Li(isa.R5, 0)           // chk
			b.Li(isa.R6, 0)           // count
			b.Chkpt()                 // checkpoint site between setup and the first iteration

			b.Label("loop")
			b.TaskBegin()
			b.Add(isa.R7, isa.R1, isa.R3)
			b.Lbu(isa.R8, isa.R7, 0)
			b.Lbu(isa.R9, isa.R7, 1)
			b.Lbu(isa.R10, isa.R7, 2)
			// h = ((b0*33+b1)*33+b2)*K >> 26
			b.Li(isa.TR, 33)
			b.Mul(isa.R11, isa.R8, isa.TR)
			b.Add(isa.R11, isa.R11, isa.R9)
			b.Mul(isa.R11, isa.R11, isa.TR)
			b.Add(isa.R11, isa.R11, isa.R10)
			b.Li(isa.TR, lzfxHashMul)
			b.Mul(isa.R11, isa.R11, isa.TR)
			b.Srli(isa.R11, isa.R11, 26)
			b.Slli(isa.R11, isa.R11, 2)
			b.Add(isa.R11, isa.R11, isa.R2) // &htab[h]
			b.Lw(isa.R12, isa.R11, 0)       // ref
			b.Addi(isa.TR, isa.R3, 1)
			b.Sw(isa.TR, isa.R11, 0) // htab[h] = i+1 — WAR violation
			b.Beq(isa.R12, isa.R0, "lit")
			b.Addi(isa.R12, isa.R12, -1) // ref-1
			b.Bge(isa.R12, isa.R3, "lit")
			b.Add(isa.TR, isa.R1, isa.R12)
			b.Lbu(isa.R7, isa.TR, 0)
			b.Bne(isa.R7, isa.R8, "lit")
			b.Lbu(isa.R7, isa.TR, 1)
			b.Bne(isa.R7, isa.R9, "lit")
			b.Lbu(isa.R7, isa.TR, 2)
			b.Bne(isa.R7, isa.R10, "lit")
			// match token: 0x8000 | (i − (ref−1))
			b.Sub(isa.R7, isa.R3, isa.R12)
			b.Li(isa.TR, 0x8000)
			b.Or(isa.R7, isa.R7, isa.TR)
			b.Addi(isa.R3, isa.R3, 3)
			b.Jump("emit")
			b.Label("lit")
			b.Mv(isa.R7, isa.R8)
			b.Addi(isa.R3, isa.R3, 1)
			b.Label("emit")
			b.Li(isa.TR, 31)
			b.Mul(isa.R5, isa.R5, isa.TR)
			b.Add(isa.R5, isa.R5, isa.R7)
			b.Addi(isa.R6, isa.R6, 1)
			b.TaskEnd()
			b.Chkpt()
			b.Blt(isa.R3, isa.R4, "loop")

			b.Out(isa.R6)
			b.Out(isa.R5)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return lzfxRef(256 * o.scale())
		},
	})
}
