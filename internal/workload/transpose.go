package workload

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// TransposeOrder selects the loop nest order of Listing 1 (§VI-A).
type TransposeOrder int

const (
	// LoadMajor is the conventional order: the inner loop walks the
	// source array contiguously, scattering stores across destination
	// blocks.
	LoadMajor TransposeOrder = iota
	// StoreMajor walks the destination contiguously, scattering loads.
	StoreMajor
)

func (o TransposeOrder) String() string {
	if o == StoreMajor {
		return "store-major"
	}
	return "load-major"
}

// Transpose builds the Listing 1 matrix-transpose kernel,
// B[j][i] = A[i][j], over an n×n word matrix in the given order,
// repeated reps times (re-transposing in place alternating buffers).
// Data always lives in FRAM: the kernel exists to exercise the
// mixed-volatility cache of §VI-A. The committed output is a checksum
// of B.
func Transpose(order TransposeOrder, n, reps int) (*asm.Program, error) {
	if n <= 0 || n&(n-1) != 0 || n > 64 {
		return nil, fmt.Errorf("workload: transpose n=%d must be a power of two ≤ 64", n)
	}
	if reps <= 0 {
		return nil, fmt.Errorf("workload: transpose reps=%d must be positive", reps)
	}
	shift := 0
	for 1<<shift < n {
		shift++
	}
	src := make([]uint32, n*n)
	for i := range src {
		src[i] = uint32(i*2654435761 + 17)
	}
	b := asm.New("transpose-" + order.String())
	b.Seg(asm.FRAM)
	b.Word("A", src...)
	b.Space("B", 4*n*n)

	b.La(isa.R1, "A")
	b.La(isa.R2, "B")
	b.Li(isa.R12, uint32(reps))

	b.Label("rep")
	b.Li(isa.R3, 0) // i
	b.Label("rows")
	b.Li(isa.R4, 0) // j
	b.Label("cols")
	b.TaskBegin()
	// load-major: read A[i][j] (contiguous in j), write B[j][i]
	// store-major: read A[j][i], write B[i][j] (contiguous in j)
	if order == LoadMajor {
		b.Slli(isa.R5, isa.R3, int32(shift)) // i*n
		b.Add(isa.R5, isa.R5, isa.R4)        // +j
		b.Slli(isa.R6, isa.R4, int32(shift)) // j*n
		b.Add(isa.R6, isa.R6, isa.R3)        // +i
	} else {
		b.Slli(isa.R5, isa.R4, int32(shift)) // j*n
		b.Add(isa.R5, isa.R5, isa.R3)        // +i
		b.Slli(isa.R6, isa.R3, int32(shift)) // i*n
		b.Add(isa.R6, isa.R6, isa.R4)        // +j
	}
	b.Slli(isa.R5, isa.R5, 2)
	b.Add(isa.R5, isa.R5, isa.R1)
	b.Lw(isa.R7, isa.R5, 0)
	b.Slli(isa.R6, isa.R6, 2)
	b.Add(isa.R6, isa.R6, isa.R2)
	b.Sw(isa.R7, isa.R6, 0)
	b.TaskEnd()
	b.Addi(isa.R4, isa.R4, 1)
	b.Li(isa.TR, uint32(n))
	b.Blt(isa.R4, isa.TR, "cols")
	b.Chkpt()
	b.Addi(isa.R3, isa.R3, 1)
	b.Li(isa.TR, uint32(n))
	b.Blt(isa.R3, isa.TR, "rows")
	b.Addi(isa.R12, isa.R12, -1)
	b.Bne(isa.R12, isa.R0, "rep")

	// checksum B
	b.Li(isa.R3, uint32(n*n))
	b.Li(isa.R4, 0)
	b.Mv(isa.R5, isa.R2)
	b.Label("chk")
	b.Lw(isa.TR, isa.R5, 0)
	b.Add(isa.R4, isa.R4, isa.TR)
	b.Addi(isa.R5, isa.R5, 4)
	b.Addi(isa.R3, isa.R3, -1)
	b.Bne(isa.R3, isa.R0, "chk")
	b.Out(isa.R4)
	b.Halt()
	return b.Assemble()
}

// TransposeRef returns the committed output both orders must produce
// (the transpose itself is order-independent).
func TransposeRef(n int) []uint32 {
	src := make([]uint32, n*n)
	for i := range src {
		src[i] = uint32(i*2654435761 + 17)
	}
	var chk uint32
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			chk += src[i*n+j] // B[j][i] = A[i][j]
		}
	}
	return []uint32{chk}
}
