package workload

import (
	"reflect"
	"testing"

	"ehmodel/internal/asm"
)

func TestProfileProgram(t *testing.T) {
	w, _ := Get("ds")
	opts := Options{Seg: asm.SRAM}
	prog, err := w.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileProgram(prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions == 0 || p.Cycles < p.Instructions {
		t.Fatalf("implausible counts: %+v", p)
	}
	if p.Stores == 0 || p.Loads == 0 {
		t.Fatal("ds performs loads and stores")
	}
	// ds increments 16 histogram words and dumps them
	if p.UniqueStoreWords != 16 {
		t.Errorf("unique store words = %d, want 16", p.UniqueStoreWords)
	}
	if p.StoreEveryCycles <= 0 {
		t.Error("no τ_store")
	}
	if !reflect.DeepEqual(p.Output, w.Ref(opts)) {
		t.Error("profile output diverges from oracle")
	}
	if p.SRAMFootprint != len(prog.SRAMImage) {
		t.Error("footprint mismatch")
	}
}

func TestProfileProgramTimeout(t *testing.T) {
	w, _ := Get("counter")
	prog, _ := w.Build(Options{Seg: asm.SRAM})
	if _, err := ProfileProgram(prog, 10); err == nil {
		t.Fatal("step budget should trip")
	}
}
