package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// AR parameters: windowed activity recognition over a 3-axis
// accelerometer. Per window of arWindow samples per axis, the summed
// deviation from mid-scale classifies the window as idle/walk/run.
const (
	arWindow = 8
	arThIdle = 1500
	arThWalk = 3000
)

// ar is Table II's activity-recognition benchmark. The class histogram
// lives in memory and is read-modified-written once per window — the
// DINO AR benchmark's store pattern.
func init() {
	register(Workload{
		Name: "ar",
		Desc: "Table II AR: activity recognition from 3-axis sensor windows",
		Build: func(o Options) (*asm.Program, error) {
			windows := 12 * o.scale()
			b := asm.New("ar")
			b.Seg(o.Seg)
			b.Space("counts", 12) // three class counters

			b.La(isa.R1, "counts")
			b.Li(isa.R2, uint32(windows))
			b.Li(isa.R9, 128) // mid-scale
			b.Chkpt()         // checkpoint site between setup and the first iteration

			b.Label("window")
			b.TaskBegin()
			b.Li(isa.R3, arWindow*3) // samples in window
			b.Li(isa.R4, 0)          // deviation accumulator
			b.Label("acc")
			b.Sense(isa.R5)
			b.Andi(isa.R5, isa.R5, 0xFF)
			b.Sub(isa.R5, isa.R5, isa.R9) // signed deviation
			b.Srai(isa.R6, isa.R5, 31)    // abs(): mask = sign
			b.Xor(isa.R5, isa.R5, isa.R6)
			b.Sub(isa.R5, isa.R5, isa.R6)
			b.Add(isa.R4, isa.R4, isa.R5)
			b.Addi(isa.R3, isa.R3, -1)
			b.Bne(isa.R3, isa.R0, "acc")

			// classify into R7 ∈ {0,1,2} → byte offset R7*4
			b.Li(isa.R7, 0)
			b.Slti(isa.R8, isa.R4, arThIdle)
			b.Bne(isa.R8, isa.R0, "bump")
			b.Li(isa.R7, 4)
			b.Slti(isa.R8, isa.R4, arThWalk)
			b.Bne(isa.R8, isa.R0, "bump")
			b.Li(isa.R7, 8)
			b.Label("bump")
			b.Add(isa.R7, isa.R7, isa.R1)
			b.Lw(isa.R8, isa.R7, 0)
			b.Addi(isa.R8, isa.R8, 1)
			b.Sw(isa.R8, isa.R7, 0)
			b.TaskEnd()
			b.Addi(isa.R2, isa.R2, -1)
			b.Chkpt()
			b.Bne(isa.R2, isa.R0, "window")

			b.Lw(isa.R3, isa.R1, 0)
			b.Out(isa.R3)
			b.Lw(isa.R3, isa.R1, 4)
			b.Out(isa.R3)
			b.Lw(isa.R3, isa.R1, 8)
			b.Out(isa.R3)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			windows := 12 * o.scale()
			counts := [3]uint32{}
			seq := uint32(0)
			for w := 0; w < windows; w++ {
				dev := int32(0)
				for s := 0; s < arWindow*3; s++ {
					v := int32(cpu.SenseValue(seq) & 0xFF)
					seq++
					d := v - 128
					if d < 0 {
						d = -d
					}
					dev += d
				}
				switch {
				case dev < arThIdle:
					counts[0]++
				case dev < arThWalk:
					counts[1]++
				default:
					counts[2]++
				}
			}
			return counts[:]
		},
	})
}
