package workload

import (
	"reflect"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
)

func TestCircularBufferMatchesRef(t *testing.T) {
	for _, tc := range []struct{ n, bufN, iters int }{
		{8, 8, 3},  // conventional in-place
		{8, 16, 3}, // double buffering
		{8, 21, 5}, // non-power-of-two wrap
		{32, 64, 2},
	} {
		prog, err := CircularBuffer(tc.n, tc.bufN, tc.iters, asm.FRAM)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		out, _, err := device.RunContinuous(prog, 0, 0, 10_000_000)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := CircularBufferRef(tc.n, tc.bufN, tc.iters)
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("%+v: got %v want %v", tc, out, want)
		}
	}
}

func TestCircularBufferValidation(t *testing.T) {
	cases := []struct{ n, bufN, iters int }{
		{0, 8, 1}, {8, 4, 1}, {8, 8, 0},
	}
	for _, tc := range cases {
		if _, err := CircularBuffer(tc.n, tc.bufN, tc.iters, asm.FRAM); err == nil {
			t.Errorf("%+v accepted", tc)
		}
	}
}

func TestCircularBufferStoreCycles(t *testing.T) {
	// verify the documented constant against an actual instruction walk:
	// count cycles between the first two stores in a continuous run.
	prog, err := CircularBuffer(8, 16, 1, asm.FRAM)
	if err != nil {
		t.Fatal(err)
	}
	// crude but faithful: the inner loop executes n stores over
	// n·τ_store cycles; measure total run cycles of the inner phase by
	// comparing two iteration counts.
	p1, _ := CircularBuffer(8, 16, 1, asm.FRAM)
	p2, _ := CircularBuffer(8, 16, 2, asm.FRAM)
	_, c1, err := device.RunContinuous(p1, 0, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := device.RunContinuous(p2, 0, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	perOuter := float64(c2 - c1) // one extra outer iteration = n stores
	perStore := perOuter / 8
	want := CircularBufferStoreCycles()
	if diff := perStore - want; diff > 3 || diff < -3 {
		t.Fatalf("measured τ_store %g, documented %g", perStore, want)
	}
	_ = prog
}
