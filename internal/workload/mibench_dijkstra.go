package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// Dijkstra graph parameters. Edges and weights are computed on the fly
// from the vertex pair: an edge (u,v) exists when (u+v)%3 == 0, with
// weight ((u*7+v*13)%9)+1. Vertex 0 is the source.
const (
	djV   = 12
	djInf = 0x3FFFFFFF
)

func djEdge(u, v int) (weight uint32, ok bool) {
	if u == v || (u+v)%3 != 0 {
		return 0, false
	}
	return uint32((u*7+v*13)%9) + 1, true
}

// dijkstraRef computes the reference distance vector using the same
// O(V²) scan the EH32 kernel performs.
func dijkstraRef() []uint32 {
	dist := make([]uint32, djV)
	visited := make([]bool, djV)
	for i := range dist {
		dist[i] = djInf
	}
	dist[0] = 0
	for iter := 0; iter < djV; iter++ {
		u, best := -1, uint32(djInf+1)
		for v := 0; v < djV; v++ {
			if !visited[v] && dist[v] < best {
				best, u = dist[v], v
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for v := 0; v < djV; v++ {
			if w, ok := djEdge(u, v); ok && best+w < dist[v] {
				dist[v] = best + w
			}
		}
	}
	return dist[1:]
}

// dijkstra is the MiBench shortest-path kernel. The relaxation step's
// load-then-conditional-store of dist[v] produces data-dependent
// idempotency violations — the mid-frequency Clank profile.
func init() {
	register(Workload{
		Name: "dijkstra",
		Desc: "MiBench dijkstra: single-source shortest paths, O(V²) scan",
		Build: func(o Options) (*asm.Program, error) {
			// Scale repeats the whole computation (re-initializing state).
			reps := o.scale()
			b := asm.New("dijkstra")
			b.Seg(o.Seg)
			b.Space("dist", 4*djV)
			b.Space("vis", 4*djV)

			b.La(isa.R1, "dist")
			b.La(isa.R2, "vis")
			b.Li(isa.R12, uint32(reps))
			b.Chkpt() // checkpoint site between setup and the first iteration

			b.Label("rep")
			// init: dist[i] = INF, vis[i] = 0, dist[0] = 0
			b.Li(isa.R7, 0)
			b.Li(isa.R8, djInf)
			b.Label("init")
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Sw(isa.R8, isa.TR, 0)
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.TR, isa.TR, isa.R2)
			b.Sw(isa.R0, isa.TR, 0)
			b.Addi(isa.R7, isa.R7, 1)
			b.Slti(isa.TR, isa.R7, djV)
			b.Bne(isa.TR, isa.R0, "init")
			b.Sw(isa.R0, isa.R1, 0) // dist[0] = 0

			b.Li(isa.R4, djV) // outer iterations
			b.Label("outer")
			b.TaskBegin()
			// find min unvisited: R5 = u (−1 none), R6 = best
			b.Li(isa.R5, 0xFFFFFFFF)
			b.Li(isa.R6, djInf+1)
			b.Li(isa.R7, 0) // v
			b.Label("scan")
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.TR, isa.TR, isa.R2)
			b.Lw(isa.R8, isa.TR, 0) // visited?
			b.Bne(isa.R8, isa.R0, "scanNext")
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(isa.R9, isa.TR, 0)
			b.Bge(isa.R9, isa.R6, "scanNext")
			b.Mv(isa.R6, isa.R9)
			b.Mv(isa.R5, isa.R7)
			b.Label("scanNext")
			b.Addi(isa.R7, isa.R7, 1)
			b.Slti(isa.TR, isa.R7, djV)
			b.Bne(isa.TR, isa.R0, "scan")
			b.Blt(isa.R5, isa.R0, "done") // no unvisited vertex left

			// visited[u] = 1
			b.Slli(isa.TR, isa.R5, 2)
			b.Add(isa.TR, isa.TR, isa.R2)
			b.Li(isa.R8, 1)
			b.Sw(isa.R8, isa.TR, 0)

			// relax neighbours
			b.Li(isa.R7, 0) // v
			b.Label("relax")
			b.Beq(isa.R7, isa.R5, "relaxNext")
			b.Add(isa.R8, isa.R5, isa.R7)
			b.Li(isa.TR, 3)
			b.Rem(isa.R8, isa.R8, isa.TR)
			b.Bne(isa.R8, isa.R0, "relaxNext")
			// w = ((u*7 + v*13) % 9) + 1
			b.Li(isa.TR, 7)
			b.Mul(isa.R8, isa.R5, isa.TR)
			b.Li(isa.TR, 13)
			b.Mul(isa.R9, isa.R7, isa.TR)
			b.Add(isa.R8, isa.R8, isa.R9)
			b.Li(isa.TR, 9)
			b.Rem(isa.R8, isa.R8, isa.TR)
			b.Addi(isa.R8, isa.R8, 1)
			b.Add(isa.R8, isa.R8, isa.R6) // cand = best + w
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(isa.R9, isa.TR, 0)
			b.Bge(isa.R8, isa.R9, "relaxNext")
			b.Sw(isa.R8, isa.TR, 0)
			b.Label("relaxNext")
			b.Addi(isa.R7, isa.R7, 1)
			b.Slti(isa.TR, isa.R7, djV)
			b.Bne(isa.TR, isa.R0, "relax")

			b.TaskEnd()
			b.Chkpt()
			b.Addi(isa.R4, isa.R4, -1)
			b.Bne(isa.R4, isa.R0, "outer")
			b.Label("done")

			b.Addi(isa.R12, isa.R12, -1)
			b.Bne(isa.R12, isa.R0, "rep")

			// dump dist[1..V-1]
			b.Li(isa.R7, 1)
			b.Label("dump")
			b.Slli(isa.TR, isa.R7, 2)
			b.Add(isa.TR, isa.TR, isa.R1)
			b.Lw(isa.R8, isa.TR, 0)
			b.Out(isa.R8)
			b.Addi(isa.R7, isa.R7, 1)
			b.Slti(isa.TR, isa.R7, djV)
			b.Bne(isa.TR, isa.R0, "dump")
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return dijkstraRef() // repetitions recompute identical state
		},
	})
}
