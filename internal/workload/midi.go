package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// midi is Table II's audio-based data logger: sensor samples are turned
// into note/velocity events; an event is logged (to memory and to the
// committed output stream) whenever the note changes. The "last note"
// word in memory is read and conditionally rewritten per sample.
func init() {
	register(Workload{
		Name: "midi",
		Desc: "Table II MIDI: audio event data logging",
		Build: func(o Options) (*asm.Program, error) {
			n := 100 * o.scale()
			b := asm.New("midi")
			b.Seg(o.Seg)
			b.Word("last", 0xFFFFFFFF)
			b.Space("log", 4*n)

			b.La(isa.R1, "last")
			b.La(isa.R2, "log")
			b.Li(isa.R3, uint32(n)) // remaining
			b.Li(isa.R4, 0)         // event index
			b.Chkpt()               // checkpoint site between setup and the first iteration

			b.Label("sample")
			b.TaskBegin()
			b.Sense(isa.R5)
			b.Andi(isa.R6, isa.R5, 0x7F) // note
			b.Srli(isa.R7, isa.R5, 7)
			b.Andi(isa.R7, isa.R7, 0x7F) // velocity
			b.Lw(isa.R8, isa.R1, 0)      // last note
			b.Beq(isa.R6, isa.R8, "same")
			// event: (index<<16) | (note<<8) | velocity
			b.Slli(isa.R9, isa.R4, 16)
			b.Slli(isa.R10, isa.R6, 8)
			b.Or(isa.R9, isa.R9, isa.R10)
			b.Or(isa.R9, isa.R9, isa.R7)
			b.Sw(isa.R9, isa.R2, 0)
			b.Addi(isa.R2, isa.R2, 4)
			b.Out(isa.R9)
			b.Sw(isa.R6, isa.R1, 0) // update last note
			b.Addi(isa.R4, isa.R4, 1)
			b.Label("same")
			b.TaskEnd()
			b.Addi(isa.R3, isa.R3, -1)
			b.Chkpt()
			b.Bne(isa.R3, isa.R0, "sample")

			b.Out(isa.R4) // event count trailer
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			n := 100 * o.scale()
			var out []uint32
			last := uint32(0xFFFFFFFF)
			idx := uint32(0)
			for i := 0; i < n; i++ {
				s := cpu.SenseValue(uint32(i))
				note := s & 0x7F
				vel := (s >> 7) & 0x7F
				if note != last {
					out = append(out, idx<<16|note<<8|vel)
					last = note
					idx++
				}
			}
			return append(out, idx)
		},
	})
}
