package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// counter is the §V-A validation microbenchmark: increment a counter in
// memory until done, backing up under whatever runtime hosts it. Each
// iteration is a task and a checkpoint site. The read-modify-write of
// the counter word is an idempotency violation per iteration under
// Clank — the "conventional" case of Listing 2.
func init() {
	register(Workload{
		Name: "counter",
		Desc: "§V-A counter microbenchmark: N memory increments",
		Build: func(o Options) (*asm.Program, error) {
			n := int32(2000 * o.scale())
			b := asm.New("counter")
			b.Seg(o.Seg)
			b.Word("count", 0)

			b.La(isa.R1, "count")
			b.Li(isa.R2, uint32(n))
			b.Li(isa.R3, 0) // i
			b.Chkpt()       // checkpoint site between setup and the first iteration
			b.Label("loop")
			b.TaskBegin()
			b.Lw(isa.R4, isa.R1, 0)
			b.Addi(isa.R4, isa.R4, 1)
			b.Sw(isa.R4, isa.R1, 0)
			b.TaskEnd()
			b.Addi(isa.R3, isa.R3, 1)
			b.Chkpt()
			b.Blt(isa.R3, isa.R2, "loop")

			b.Lw(isa.R4, isa.R1, 0)
			b.Out(isa.R4)
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			return []uint32{uint32(2000 * o.scale())}
		},
	})
}
