package workload

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// RSA parameters: a toy keypair small enough that every intermediate of
// square-and-multiply fits 32 bits (n² < 2³¹).
const (
	rsaN = 33227 // 149 × 223
	rsaE = 65537 // 2^16 + 1
)

// modExpRef computes m^e mod n with 32-bit arithmetic exactly as the
// EH32 kernel does.
func modExpRef(m, e, n uint32) uint32 {
	result := uint32(1)
	base := m % n
	for e > 0 {
		if e&1 != 0 {
			result = result * base % n
		}
		base = base * base % n
		e >>= 1
	}
	return result
}

// rsaMessages derives the deterministic plaintext block sequence.
func rsaMessages(count int) []uint32 {
	out := make([]uint32, count)
	for i := range out {
		out[i] = uint32(i*2654435761+12345) % rsaN
	}
	return out
}

// rsa is Table II's encryption benchmark: square-and-multiply modular
// exponentiation of a message sequence. Each message is one task;
// ciphertexts are logged to a memory buffer and the output stream.
func init() {
	register(Workload{
		Name: "rsa",
		Desc: "Table II RSA: modular exponentiation data encryption",
		Build: func(o Options) (*asm.Program, error) {
			count := 6 * o.scale()
			msgs := rsaMessages(count)
			b := asm.New("rsa")
			b.Seg(asm.FRAM)
			b.Word("msgs", msgs...)
			b.Seg(o.Seg)
			b.Space("cipher", 4*count)

			b.La(isa.R1, "msgs")
			b.La(isa.R2, "cipher")
			b.Li(isa.R3, uint32(count))
			b.Li(isa.R10, rsaN)
			b.Chkpt() // checkpoint site between setup and the first iteration

			b.Label("msg")
			b.TaskBegin()
			b.Lw(isa.R4, isa.R1, 0) // m
			// modexp: R5=result, R6=base, R7=e
			b.Li(isa.R5, 1)
			b.Rem(isa.R6, isa.R4, isa.R10)
			b.Li(isa.R7, rsaE)
			b.Label("expo")
			b.Andi(isa.R8, isa.R7, 1)
			b.Beq(isa.R8, isa.R0, "noMul")
			b.Mul(isa.R5, isa.R5, isa.R6)
			b.Rem(isa.R5, isa.R5, isa.R10)
			b.Label("noMul")
			b.Mul(isa.R6, isa.R6, isa.R6)
			b.Rem(isa.R6, isa.R6, isa.R10)
			b.Srli(isa.R7, isa.R7, 1)
			b.Bne(isa.R7, isa.R0, "expo")
			// log ciphertext
			b.Sw(isa.R5, isa.R2, 0)
			b.Out(isa.R5)
			b.TaskEnd()
			b.Addi(isa.R1, isa.R1, 4)
			b.Addi(isa.R2, isa.R2, 4)
			b.Addi(isa.R3, isa.R3, -1)
			b.Chkpt()
			b.Bne(isa.R3, isa.R0, "msg")
			b.Halt()
			return b.Assemble()
		},
		Ref: func(o Options) []uint32 {
			msgs := rsaMessages(6 * o.scale())
			out := make([]uint32, len(msgs))
			for i, m := range msgs {
				out[i] = modExpRef(m, rsaE, rsaN)
			}
			return out
		},
	})
}
