package obsv

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Field is one key=value pair of a structured text line.
type Field struct {
	K string
	V any
}

// F64 formats a float compactly for logfmt values.
func fmtValue(v any) string {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\"=") {
			return strconv.Quote(x)
		}
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case error:
		return strconv.Quote(x.Error())
	default:
		return fmt.Sprint(x)
	}
}

// Logger writes machine-parseable logfmt lines (`name k=v k=v ...`).
// It is the shared formatter behind the text sink and the audit
// verdict output, and is safe for concurrent use.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
	// Prefix, when non-empty, opens every line (e.g. a run label).
	Prefix string
}

// NewLogger returns a Logger writing to w.
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// Line writes one structured record.
func (l *Logger) Line(name string, fields ...Field) {
	var b strings.Builder
	if l.Prefix != "" {
		b.WriteString(l.Prefix)
		b.WriteByte(' ')
	}
	b.WriteString(name)
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.K)
		b.WriteByte('=')
		b.WriteString(fmtValue(f.V))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// TextSink renders events as logfmt lines through a Logger — the
// human-readable (and grep/awk-parseable) trace form.
type TextSink struct {
	L *Logger
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{L: NewLogger(w)} }

// Event implements Tracer.
func (s *TextSink) Event(e Event) {
	s.L.Line("ev."+e.Type.String(), eventFields(e)...)
}

// eventFields renders an event's payload with type-appropriate names.
func eventFields(e Event) []Field {
	fs := make([]Field, 0, 8)
	if e.Tid != 0 {
		fs = append(fs, Field{"tid", e.Tid})
	}
	fs = append(fs,
		Field{"period", e.Period},
		Field{"cyc", e.Cycles},
		Field{"t", e.TimeS},
	)
	switch e.Type {
	case EvRunBegin:
		fs = append(fs, Field{"engine", engineName(e.Arg)})
	case EvPowerOn:
		fs = append(fs, Field{"charge_s", e.F})
	case EvRestore:
		fs = append(fs, Field{"bytes", e.Arg}, Field{"slot", e.Arg2}, Field{"e_j", e.F})
	case EvCheckpointBegin:
		fs = append(fs, Field{"bytes", e.Arg})
	case EvCheckpointCommit:
		fs = append(fs, Field{"bytes", e.Arg}, Field{"tau_b", e.Arg2}, Field{"e_j", e.F})
	case EvBrownOut:
		fs = append(fs, Field{"dead_cycles", e.Arg}, Field{"active_cycles", e.Arg2})
	case EvRunEnd:
		fs = append(fs, Field{"completed", e.Arg == 1})
	case EvDeadline:
		fs = append(fs, Field{"boundary_cyc", e.Arg})
	case EvBatchHorizon:
		fs = append(fs, Field{"budget", e.Arg}, Field{"strategy_horizon", horizonStr(e.Arg2)})
	case EvTrigger:
		fs = append(fs, Field{"reason", TriggerReason(e.Arg).String()}, Field{"detail", e.Arg2})
	case EvWARFlush:
		fs = append(fs, Field{"occupancy", e.Arg}, Field{"reason", TriggerReason(e.Arg2).String()})
	case EvFaultTear:
		fs = append(fs, Field{"injected", e.Arg2 == 1})
	case EvFaultBitFlips:
		fs = append(fs, Field{"bits", e.Arg})
	case EvCRCReject:
		fs = append(fs, Field{"slot", e.Arg})
	case EvStaleRestore:
		fs = append(fs, Field{"slot", e.Arg}, Field{"forced", e.Arg2 == 1})
	case EvUnrecoverable:
		fs = append(fs, Field{"restore_seq", e.Arg}, Field{"lost_stores", e.Arg2})
	}
	return fs
}

func engineName(v uint64) string {
	if v == 1 {
		return "batched"
	}
	return "reference"
}

func horizonStr(v uint64) string {
	if v == ^uint64(0) {
		return "inf"
	}
	return strconv.FormatUint(v, 10)
}
