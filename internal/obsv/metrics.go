package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Histogram is a loss-free mergeable log2-bucket histogram over
// uint64 samples. Bucket i holds samples whose value has bit length i
// (bucket 0 is the value 0), so merging two histograms is exact bucket
// addition — no rebinning, no sample loss across sweep workers.
type Histogram struct {
	Buckets [65]uint64 `json:"buckets"`
	Count   uint64     `json:"count"`
	Sum     uint64     `json:"sum"`
	Min     uint64     `json:"min"`
	Max     uint64     `json:"max"`
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Merge folds other into h, exactly.
func (h *Histogram) Merge(other *Histogram) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// top of the bucket holding the q·Count-th sample, clamped to Max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			top := uint64(1)<<uint(i) - 1
			if top > h.Max {
				top = h.Max
			}
			return top
		}
	}
	return h.Max
}

// FloatStat is a mergeable summary of float64 samples (energies,
// charge times) — count/sum/min/max without bucketing.
type FloatStat struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Observe records one sample.
func (s *FloatStat) Observe(v float64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Count++
	s.Sum += v
}

// Merge folds other into s.
func (s *FloatStat) Merge(other *FloatStat) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 || other.Min < s.Min {
		s.Min = other.Min
	}
	if s.Count == 0 || other.Max > s.Max {
		s.Max = other.Max
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Mean returns the sample mean (0 when empty).
func (s *FloatStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Metrics derives per-run counters and histograms from the event
// stream. It implements Tracer; give each device (or sweep worker) its
// own Metrics via a Collector and merge at export time — merging is
// loss-free, so aggregation order does not matter.
type Metrics struct {
	Runs          uint64 `json:"runs"`
	CompletedRuns uint64 `json:"completed_runs"`

	Periods    uint64 `json:"periods"` // power-on count
	BrownOuts  uint64 `json:"brown_outs"`
	Sleeps     uint64 `json:"sleeps"`
	Halts      uint64 `json:"halts"`
	Deadlines  uint64 `json:"deadlines"`
	Backups    uint64 `json:"backups"` // committed checkpoints
	BackupFail uint64 `json:"backup_fails"`
	Restores   uint64 `json:"restores"`
	ColdStarts uint64 `json:"cold_starts"`

	// τ_B / τ_D breakdown: committed cycles are the sum of exec-cycle
	// spans behind committed backups; dead cycles are the re-executed
	// work lost to brown-outs.
	CommittedCycles uint64 `json:"committed_cycles"`
	DeadCycles      uint64 `json:"dead_cycles"`

	OnCycles    Histogram `json:"on_cycles_per_period"`
	TauD        Histogram `json:"dead_cycles_per_period"`
	TauB        Histogram `json:"exec_cycles_per_backup"`
	CkptBytes   Histogram `json:"checkpoint_bytes"`
	ChargeS     FloatStat `json:"charge_seconds"`
	CkptEnergy  FloatStat `json:"checkpoint_energy_j"`
	RestoreErgy FloatStat `json:"restore_energy_j"`

	Triggers        [NumTriggerReasons]uint64 `json:"-"`
	WARFlushes      uint64                    `json:"war_flushes"`
	BufferHighWater uint64                    `json:"buffer_high_water"`

	FaultPowerCuts  uint64 `json:"fault_power_cuts"`
	FaultTears      uint64 `json:"fault_tears"`
	FaultBitFlips   uint64 `json:"fault_bit_flips"`
	CRCRejects      uint64 `json:"crc_rejects"`
	StaleRestores   uint64 `json:"stale_restores"`
	Unrecoverables  uint64 `json:"unrecoverables"`
	BatchedHorizons uint64 `json:"batched_horizons"`

	// Verdicts counts correctness-oracle violations by class (EvVerdict
	// and EvCampaignFinding both land here, so sweep and campaign
	// findings share one export).
	Verdicts [NumVerdictClasses]uint64 `json:"-"`

	// Adversarial fault-campaign statistics (internal/faults.Campaign):
	// schedules launched, frontier windows discovered/attacked (the
	// schedule-space coverage pair), findings before shrinking, and the
	// shrinker's cost and result-size distributions.
	CampaignSchedules uint64    `json:"campaign_schedules"`
	CampaignFrontier  uint64    `json:"campaign_frontier_windows"`
	CampaignAttacked  uint64    `json:"campaign_attacked_windows"`
	CampaignFindings  uint64    `json:"campaign_findings"`
	ShrinkRuns        Histogram `json:"campaign_shrink_runs"`
	CaseCuts          Histogram `json:"campaign_case_cuts"`

	// Task-runtime statistics (strategy.Alpaca): atomic task commits,
	// post-reboot task re-executions, and the privatization-buffer
	// bytes flushed per commit.
	TasksCommitted   uint64    `json:"tasks_committed"`
	TaskReexecutions uint64    `json:"task_reexecutions"`
	TaskPrivBytes    Histogram `json:"task_priv_bytes"`

	// Static WCEC verifier results (internal/analyze.WCEC, surfaced via
	// EvWCECRegion): per-region certificate/livelock/unknown verdict
	// counts for the configurations a driver preflighted.
	WCECCertified uint64 `json:"wcec_certified"`
	WCECLivelock  uint64 `json:"wcec_livelock"`
	WCECUnknown   uint64 `json:"wcec_unknown"`

	// Result-store accounting (internal/sweep): cells answered from the
	// store, cells simulated and stored, cells run uncached (unhashable
	// configuration, caching off), identical in-flight cells collapsed by
	// singleflight, and failed store writes. Populated by AddCache.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheBypass uint64 `json:"cache_bypass"`
	CacheDedup  uint64 `json:"cache_dedup"`
	CacheErrors uint64 `json:"cache_errors"`

	// Request accounting (cmd/ehserve, and any front end that serves
	// queries): request count, failed requests, and a log2 latency
	// histogram in microseconds. Populated by ObserveRequest.
	Requests      uint64    `json:"requests"`
	RequestErrors uint64    `json:"request_errors"`
	RequestUS     Histogram `json:"request_latency_us"`

	// ErrorClasses carries the sweep runner's per-class failure counts
	// (AddErrorClass); nil until the first class is added.
	ErrorClasses map[string]uint64 `json:"error_classes,omitempty"`
}

// AddCache folds result-store counters into the export.
func (m *Metrics) AddCache(hits, misses, bypass, dedup, errors uint64) {
	m.CacheHits += hits
	m.CacheMisses += misses
	m.CacheBypass += bypass
	m.CacheDedup += dedup
	m.CacheErrors += errors
}

// ObserveRequest records one served request: its latency in
// microseconds (negative durations clamp to zero) and whether it failed.
func (m *Metrics) ObserveRequest(us int64, failed bool) {
	if us < 0 {
		us = 0
	}
	m.Requests++
	if failed {
		m.RequestErrors++
	}
	m.RequestUS.Observe(uint64(us))
}

// Event implements Tracer.
func (m *Metrics) Event(e Event) {
	switch e.Type {
	case EvRunBegin:
		m.Runs++
	case EvRunEnd:
		if e.Arg == 1 {
			m.CompletedRuns++
		}
	case EvPowerOn:
		m.Periods++
		m.ChargeS.Observe(e.F)
	case EvRestore:
		m.Restores++
		m.RestoreErgy.Observe(e.F)
	case EvColdStart:
		m.ColdStarts++
	case EvCheckpointCommit:
		m.Backups++
		m.CommittedCycles += e.Arg2
		m.TauB.Observe(e.Arg2)
		m.CkptBytes.Observe(e.Arg)
		m.CkptEnergy.Observe(e.F)
	case EvCheckpointFail:
		m.BackupFail++
	case EvBrownOut:
		m.BrownOuts++
		m.DeadCycles += e.Arg
		m.TauD.Observe(e.Arg)
		m.OnCycles.Observe(e.Arg2)
	case EvSleep:
		m.Sleeps++
	case EvHalt:
		m.Halts++
	case EvDeadline:
		m.Deadlines++
	case EvBatchHorizon:
		m.BatchedHorizons++
	case EvTrigger:
		if e.Arg < uint64(NumTriggerReasons) {
			m.Triggers[e.Arg]++
		}
	case EvWARFlush:
		m.WARFlushes++
		if e.Arg > m.BufferHighWater {
			m.BufferHighWater = e.Arg
		}
	case EvFaultPowerCut:
		m.FaultPowerCuts++
	case EvFaultTear:
		m.FaultTears++
	case EvFaultBitFlips:
		m.FaultBitFlips += e.Arg
	case EvCRCReject:
		m.CRCRejects++
	case EvStaleRestore:
		m.StaleRestores++
	case EvUnrecoverable:
		m.Unrecoverables++
	case EvVerdict:
		if e.Arg < uint64(NumVerdictClasses) {
			m.Verdicts[e.Arg]++
		}
	case EvCampaignProbe:
		m.CampaignFrontier += e.Arg
	case EvCampaignSchedule:
		m.CampaignSchedules++
	case EvCampaignFinding:
		m.CampaignFindings++
		if e.Arg < uint64(NumVerdictClasses) {
			m.Verdicts[e.Arg]++
		}
	case EvCampaignShrink:
		m.ShrinkRuns.Observe(e.Arg)
		m.CaseCuts.Observe(e.Arg2)
	case EvCampaignCoverage:
		m.CampaignAttacked += e.Arg
	case EvTaskCommit:
		m.TasksCommitted++
		m.TaskPrivBytes.Observe(e.Arg)
	case EvTaskReexec:
		m.TaskReexecutions++
	case EvWCECRegion:
		switch e.Arg {
		case WCECArgCertified:
			m.WCECCertified++
		case WCECArgLivelock:
			m.WCECLivelock++
		default:
			m.WCECUnknown++
		}
	}
}

// EvWCECRegion Arg codes: the static verifier's per-region verdict.
const (
	WCECArgCertified uint64 = 0
	WCECArgLivelock  uint64 = 1
	WCECArgUnknown   uint64 = 2
)

// AddErrorClass records a sweep-runner failure class count (the
// runner.Errors summary) into the export.
func (m *Metrics) AddErrorClass(class string, n uint64) {
	if n == 0 {
		return
	}
	if m.ErrorClasses == nil {
		m.ErrorClasses = map[string]uint64{}
	}
	m.ErrorClasses[class] += n
}

// Merge folds other into m, loss-free.
func (m *Metrics) Merge(other *Metrics) {
	m.Runs += other.Runs
	m.CompletedRuns += other.CompletedRuns
	m.Periods += other.Periods
	m.BrownOuts += other.BrownOuts
	m.Sleeps += other.Sleeps
	m.Halts += other.Halts
	m.Deadlines += other.Deadlines
	m.Backups += other.Backups
	m.BackupFail += other.BackupFail
	m.Restores += other.Restores
	m.ColdStarts += other.ColdStarts
	m.CommittedCycles += other.CommittedCycles
	m.DeadCycles += other.DeadCycles
	m.OnCycles.Merge(&other.OnCycles)
	m.TauD.Merge(&other.TauD)
	m.TauB.Merge(&other.TauB)
	m.CkptBytes.Merge(&other.CkptBytes)
	m.ChargeS.Merge(&other.ChargeS)
	m.CkptEnergy.Merge(&other.CkptEnergy)
	m.RestoreErgy.Merge(&other.RestoreErgy)
	for i := range m.Triggers {
		m.Triggers[i] += other.Triggers[i]
	}
	m.WARFlushes += other.WARFlushes
	if other.BufferHighWater > m.BufferHighWater {
		m.BufferHighWater = other.BufferHighWater
	}
	m.FaultPowerCuts += other.FaultPowerCuts
	m.FaultTears += other.FaultTears
	m.FaultBitFlips += other.FaultBitFlips
	m.CRCRejects += other.CRCRejects
	m.StaleRestores += other.StaleRestores
	m.Unrecoverables += other.Unrecoverables
	m.BatchedHorizons += other.BatchedHorizons
	for i := range m.Verdicts {
		m.Verdicts[i] += other.Verdicts[i]
	}
	m.CampaignSchedules += other.CampaignSchedules
	m.CampaignFrontier += other.CampaignFrontier
	m.CampaignAttacked += other.CampaignAttacked
	m.CampaignFindings += other.CampaignFindings
	m.ShrinkRuns.Merge(&other.ShrinkRuns)
	m.CaseCuts.Merge(&other.CaseCuts)
	m.TasksCommitted += other.TasksCommitted
	m.TaskReexecutions += other.TaskReexecutions
	m.TaskPrivBytes.Merge(&other.TaskPrivBytes)
	m.WCECCertified += other.WCECCertified
	m.WCECLivelock += other.WCECLivelock
	m.WCECUnknown += other.WCECUnknown
	m.CacheHits += other.CacheHits
	m.CacheMisses += other.CacheMisses
	m.CacheBypass += other.CacheBypass
	m.CacheDedup += other.CacheDedup
	m.CacheErrors += other.CacheErrors
	m.Requests += other.Requests
	m.RequestErrors += other.RequestErrors
	m.RequestUS.Merge(&other.RequestUS)
	for k, v := range other.ErrorClasses {
		m.AddErrorClass(k, v)
	}
}

// rows flattens the metrics into ordered name/value pairs for CSV.
func (m *Metrics) rows() [][2]string {
	f := func(v float64) string { return fmt.Sprintf("%g", v) }
	u := func(v uint64) string { return itoa(v) }
	out := [][2]string{
		{"runs", u(m.Runs)},
		{"completed_runs", u(m.CompletedRuns)},
		{"periods", u(m.Periods)},
		{"brown_outs", u(m.BrownOuts)},
		{"sleeps", u(m.Sleeps)},
		{"halts", u(m.Halts)},
		{"deadlines", u(m.Deadlines)},
		{"backups", u(m.Backups)},
		{"backup_fails", u(m.BackupFail)},
		{"restores", u(m.Restores)},
		{"cold_starts", u(m.ColdStarts)},
		{"committed_cycles", u(m.CommittedCycles)},
		{"dead_cycles", u(m.DeadCycles)},
		{"war_flushes", u(m.WARFlushes)},
		{"buffer_high_water", u(m.BufferHighWater)},
		{"fault_power_cuts", u(m.FaultPowerCuts)},
		{"fault_tears", u(m.FaultTears)},
		{"fault_bit_flips", u(m.FaultBitFlips)},
		{"crc_rejects", u(m.CRCRejects)},
		{"stale_restores", u(m.StaleRestores)},
		{"unrecoverables", u(m.Unrecoverables)},
		{"batched_horizons", u(m.BatchedHorizons)},
	}
	hist := func(name string, h *Histogram) {
		out = append(out,
			[2]string{name + "_count", u(h.Count)},
			[2]string{name + "_mean", f(h.Mean())},
			[2]string{name + "_min", u(h.Min)},
			[2]string{name + "_p50", u(h.Quantile(0.50))},
			[2]string{name + "_p99", u(h.Quantile(0.99))},
			[2]string{name + "_max", u(h.Max)},
		)
	}
	hist("on_cycles_per_period", &m.OnCycles)
	hist("dead_cycles_per_period", &m.TauD)
	hist("exec_cycles_per_backup", &m.TauB)
	hist("checkpoint_bytes", &m.CkptBytes)
	stat := func(name string, s *FloatStat) {
		out = append(out,
			[2]string{name + "_count", u(s.Count)},
			[2]string{name + "_mean", f(s.Mean())},
			[2]string{name + "_min", f(s.Min)},
			[2]string{name + "_max", f(s.Max)},
		)
	}
	stat("charge_seconds", &m.ChargeS)
	stat("checkpoint_energy_j", &m.CkptEnergy)
	stat("restore_energy_j", &m.RestoreErgy)
	out = append(out,
		[2]string{"campaign_schedules", u(m.CampaignSchedules)},
		[2]string{"campaign_frontier_windows", u(m.CampaignFrontier)},
		[2]string{"campaign_attacked_windows", u(m.CampaignAttacked)},
		[2]string{"campaign_findings", u(m.CampaignFindings)},
	)
	hist("campaign_shrink_runs", &m.ShrinkRuns)
	hist("campaign_case_cuts", &m.CaseCuts)
	out = append(out,
		[2]string{"tasks_committed", u(m.TasksCommitted)},
		[2]string{"task_reexecutions", u(m.TaskReexecutions)},
	)
	hist("task_priv_bytes", &m.TaskPrivBytes)
	// WCEC rows appear only when a verifier actually ran, so exports
	// from drivers without the preflight keep their exact prior shape.
	if m.WCECCertified+m.WCECLivelock+m.WCECUnknown > 0 {
		out = append(out,
			[2]string{"wcec_certified", u(m.WCECCertified)},
			[2]string{"wcec_livelock", u(m.WCECLivelock)},
			[2]string{"wcec_unknown", u(m.WCECUnknown)},
		)
	}
	// Cache and request rows appear only when a result store / request
	// front end actually ran, so exports from plain sweeps keep their
	// exact prior shape (same conditional idiom as the WCEC rows above).
	if m.CacheHits+m.CacheMisses+m.CacheBypass+m.CacheDedup+m.CacheErrors > 0 {
		out = append(out,
			[2]string{"cache_hits", u(m.CacheHits)},
			[2]string{"cache_misses", u(m.CacheMisses)},
			[2]string{"cache_bypass", u(m.CacheBypass)},
			[2]string{"cache_dedup", u(m.CacheDedup)},
			[2]string{"cache_errors", u(m.CacheErrors)},
		)
	}
	if m.Requests > 0 {
		out = append(out,
			[2]string{"requests", u(m.Requests)},
			[2]string{"request_errors", u(m.RequestErrors)},
		)
		hist("request_latency_us", &m.RequestUS)
	}
	for c := VerdictClass(0); c < NumVerdictClasses; c++ {
		if m.Verdicts[c] != 0 {
			out = append(out, [2]string{"verdict_" + c.String(), u(m.Verdicts[c])})
		}
	}
	for r := TriggerReason(0); r < NumTriggerReasons; r++ {
		if m.Triggers[r] != 0 {
			out = append(out, [2]string{"trigger_" + r.String(), u(m.Triggers[r])})
		}
	}
	classes := make([]string, 0, len(m.ErrorClasses))
	for k := range m.ErrorClasses {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		out = append(out, [2]string{"error_" + k, u(m.ErrorClasses[k])})
	}
	return out
}

// WriteCSV exports the metrics as `name,value` rows with a header.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "metric,value\n"); err != nil {
		return err
	}
	for _, row := range m.rows() {
		if _, err := fmt.Fprintf(w, "%s,%s\n", row[0], row[1]); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON exports the metrics as an indented JSON document, with
// trigger counts keyed by reason name.
func (m *Metrics) WriteJSON(w io.Writer) error {
	type alias Metrics // avoid recursing into MarshalJSON
	doc := struct {
		*alias
		Triggers map[string]uint64 `json:"triggers,omitempty"`
		Verdicts map[string]uint64 `json:"verdicts,omitempty"`
	}{alias: (*alias)(m)}
	for r := TriggerReason(0); r < NumTriggerReasons; r++ {
		if m.Triggers[r] != 0 {
			if doc.Triggers == nil {
				doc.Triggers = map[string]uint64{}
			}
			doc.Triggers[r.String()] = m.Triggers[r]
		}
	}
	for c := VerdictClass(0); c < NumVerdictClasses; c++ {
		if m.Verdicts[c] != 0 {
			if doc.Verdicts == nil {
				doc.Verdicts = map[string]uint64{}
			}
			doc.Verdicts[c.String()] = m.Verdicts[c]
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// Collector hands out per-worker Metrics sinks and aggregates them
// loss-free at export time. Each Tracer() result is single-goroutine
// (the worker's own device feeds it); only registration and Aggregate
// take the lock, so the hot path never contends.
type Collector struct {
	mu    sync.Mutex
	parts []*Metrics
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Tracer registers and returns a fresh per-worker Metrics sink.
func (c *Collector) Tracer() *Metrics {
	m := &Metrics{}
	c.mu.Lock()
	c.parts = append(c.parts, m)
	c.mu.Unlock()
	return m
}

// Aggregate merges every registered sink into one Metrics. Call it
// after the sweep's workers have finished.
func (c *Collector) Aggregate() *Metrics {
	out := &Metrics{}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.parts {
		out.Merge(p)
	}
	return out
}
