package obsv

import "sync"

// Time-series metrics: the /metrics snapshot sampled on an interval
// into a fixed ring of per-interval deltas, so "requests per second
// over the last hour" and "p99 latency over time" are queryable from
// the service itself without an external scraper.

// Sample is one interval's activity delta. Counter fields are the
// increase over the interval; the latency quantiles are computed from
// the interval's own histogram delta (not the lifetime histogram), so
// they describe what the service did *during* the interval.
type Sample struct {
	// UnixMS stamps the end of the interval; DurMS is its length.
	UnixMS int64 `json:"unix_ms"`
	DurMS  int64 `json:"dur_ms"`

	Requests      uint64 `json:"requests"`
	RequestErrors uint64 `json:"request_errors"`
	// LatencyP50US/LatencyP99US are log2-bucket upper bounds over the
	// interval's requests (0 when the interval served none).
	LatencyP50US uint64 `json:"latency_p50_us"`
	LatencyP99US uint64 `json:"latency_p99_us"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheDedup  uint64 `json:"cache_dedup"`
	CacheBypass uint64 `json:"cache_bypass"`

	Traces uint64 `json:"traces"`
	Spans  uint64 `json:"spans"`
}

// Series is a fixed-size ring of samples; Add past capacity overwrites
// the oldest. Safe for concurrent use.
type Series struct {
	mu   sync.Mutex
	buf  []Sample
	next int
	full bool
}

// DefaultSeriesWindow retains 360 samples — an hour at the service's
// default 10 s sampling interval.
const DefaultSeriesWindow = 360

// NewSeries builds a ring holding capacity samples (≤ 0 selects
// DefaultSeriesWindow).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesWindow
	}
	return &Series{buf: make([]Sample, capacity)}
}

// Cap returns the ring's capacity.
func (s *Series) Cap() int { return len(s.buf) }

// Add appends one sample, overwriting the oldest past capacity.
func (s *Series) Add(v Sample) {
	s.mu.Lock()
	s.buf[s.next] = v
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
	s.mu.Unlock()
}

// Snapshot returns the retained samples oldest-first.
func (s *Series) Snapshot() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]Sample, s.next)
		copy(out, s.buf[:s.next])
		return out
	}
	out := make([]Sample, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// DeltaFrom returns the histogram of samples observed since prev (which
// must be an earlier snapshot of the same histogram — buckets are
// monotone counters, so the subtraction is exact). Min/Max cannot be
// recovered per-interval; the delta's Min is the lower bound of its
// lowest occupied bucket and Max the current lifetime Max, keeping
// Quantile an upper bound over the interval.
func (h *Histogram) DeltaFrom(prev *Histogram) Histogram {
	var d Histogram
	d.Count = h.Count - prev.Count
	d.Sum = h.Sum - prev.Sum
	for i := range d.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	if d.Count == 0 {
		return d
	}
	d.Max = h.Max
	for i, c := range d.Buckets {
		if c > 0 {
			if i > 0 {
				d.Min = 1 << (i - 1)
			}
			break
		}
	}
	return d
}
