package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceIDParse(t *testing.T) {
	id := NewTraceID()
	if id == (TraceID{}) {
		t.Fatal("zero trace ID generated")
	}
	back, ok := ParseTraceID(id.String())
	if !ok || back != id {
		t.Fatalf("round trip: %v %v", back, ok)
	}
	for _, bad := range []string{"", "abc", "zzzzzzzzzzzzzzzz", "0000000000000000", id.String() + "00"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
	b, err := id.MarshalText()
	if err != nil || string(b) != id.String() {
		t.Fatalf("MarshalText: %q %v", b, err)
	}
}

// TestStartSpanDisabled: with no trace in the context, StartSpan returns
// the context unchanged and a nil span whose methods are all no-ops —
// and the whole disabled round trip allocates nothing.
func TestStartSpanDisabled(t *testing.T) {
	ctx := context.Background()
	sctx, sp := StartSpan(ctx, "x")
	if sctx != ctx {
		t.Fatal("disabled StartSpan rewrote the context")
	}
	if sp != nil {
		t.Fatal("disabled StartSpan returned a live span")
	}
	// Every nil-receiver method must be callable.
	sp.SetAttr("k", "v")
	sp.SetUint("n", 1)
	sp.SetBool("b", true)
	sp.Finish()
	if TraceFrom(ctx) != nil {
		t.Fatal("TraceFrom invented a trace")
	}
	if id := AddSpan(ctx, "x", time.Now(), time.Now()); id != 0 {
		t.Fatalf("disabled AddSpan returned span %d", id)
	}

	allocs := testing.AllocsPerRun(100, func() {
		c2, s2 := StartSpan(ctx, "x")
		s2.SetAttr("k", "v")
		s2.SetUint("n", 1)
		s2.Finish()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

// TestSpanTree: spans nest under their context parents, retroactive
// spans land under the current span, and the rendered tree reflects it.
func TestSpanTree(t *testing.T) {
	tr := NewTrace(NewTraceID(), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}

	ctx, root := StartSpan(ctx, "request")
	root.SetAttr("path", "/v1/figure")
	cctx, cell := StartSpan(ctx, "cell")
	_, dev := StartSpan(cctx, "device.run")
	dev.SetUint("periods", 3)
	dev.Finish()
	cell.Finish()
	AddSpan(ctx, "render", time.Now(), time.Now(), Attr{Key: "figure", Val: "fig5"})
	root.Finish()

	td := TraceFrom(ctx).Snapshot()
	if len(td.Spans) != 4 {
		t.Fatalf("%d spans recorded", len(td.Spans))
	}
	roots := td.Tree()
	if len(roots) != 1 || roots[0].Name != "request" {
		t.Fatalf("tree roots: %+v", roots)
	}
	req := roots[0]
	if req.Attrs["path"] != "/v1/figure" {
		t.Fatalf("root attrs %v", req.Attrs)
	}
	if len(req.Children) != 2 {
		t.Fatalf("root has %d children, want cell+render", len(req.Children))
	}
	var cellNode *SpanNode
	for _, c := range req.Children {
		if c.Name == "cell" {
			cellNode = c
		}
	}
	if cellNode == nil || len(cellNode.Children) != 1 || cellNode.Children[0].Name != "device.run" {
		t.Fatalf("cell subtree wrong: %+v", cellNode)
	}
	if cellNode.Children[0].Attrs["periods"] != "3" {
		t.Fatalf("device.run attrs %v", cellNode.Children[0].Attrs)
	}

	var buf bytes.Buffer
	if err := td.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceID string      `json:"trace_id"`
		Spans   int         `json:"spans"`
		Tree    []*SpanNode `json:"tree"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != tr.ID.String() || doc.Spans != 4 || len(doc.Tree) != 1 {
		t.Fatalf("tree doc: %+v", doc)
	}
}

// TestTraceSpanLimit: past the limit, spans are counted as dropped
// instead of growing the trace.
func TestTraceSpanLimit(t *testing.T) {
	tr := NewTrace(NewTraceID(), 2)
	for i := 0; i < 5; i++ {
		tr.AddSpan("s", 0, time.Now(), time.Now())
	}
	td := tr.Snapshot()
	if len(td.Spans) != 2 || td.Dropped != 3 {
		t.Fatalf("spans %d dropped %d", len(td.Spans), td.Dropped)
	}
}

// TestSpanCounter: lifecycle events fold into span attributes.
func TestSpanCounter(t *testing.T) {
	tr := NewTrace(NewTraceID(), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "device.run")
	c := NewSpanCounter(sp)
	c.Event(Event{Type: EvPowerOn})
	c.Event(Event{Type: EvPowerOn})
	c.Event(Event{Type: EvCheckpointCommit})
	c.Event(Event{Type: EvBrownOut})
	c.Event(Event{Type: EvRunEnd, Arg: 1, Cycles: 1234})
	c.Flush()
	sp.Finish()

	node := tr.Snapshot().Tree()[0]
	want := map[string]string{
		"periods": "2", "backups": "1", "brown_outs": "1",
		"simcycles": "1234", "completed": "true",
	}
	for k, v := range want {
		if node.Attrs[k] != v {
			t.Errorf("attr %s = %q, want %q", k, node.Attrs[k], v)
		}
	}

	// A nil-span counter still counts without attributing anywhere.
	nc := NewSpanCounter(nil)
	nc.Event(Event{Type: EvPowerOn})
	nc.Flush()
}

// TestTraceStore: FIFO retention with eviction, replacement on a reused
// ID, and cumulative stats unaffected by eviction.
func TestTraceStore(t *testing.T) {
	st := NewTraceStore(2)
	ids := []TraceID{NewTraceID(), NewTraceID(), NewTraceID()}
	for i, id := range ids {
		td := &TraceData{ID: id, Spans: make([]Span, i+1)}
		st.Add(td)
	}
	if st.Len() != 2 {
		t.Fatalf("len %d", st.Len())
	}
	if _, ok := st.Get(ids[0]); ok {
		t.Fatal("oldest trace not evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("trace %s lost", id)
		}
	}
	// Re-adding an existing ID replaces without evicting others.
	st.Add(&TraceData{ID: ids[1], Spans: make([]Span, 9)})
	if st.Len() != 2 {
		t.Fatalf("replacement changed len to %d", st.Len())
	}
	if td, _ := st.Get(ids[1]); len(td.Spans) != 9 {
		t.Fatal("replacement did not take")
	}
	traces, spans := st.Stats()
	if traces != 4 || spans != 1+2+3+9 {
		t.Fatalf("stats %d traces %d spans", traces, spans)
	}
}

// TestWriteSpansChrome: the exported span timeline is valid Chrome
// trace_event JSON with one complete event per span.
func TestWriteSpansChrome(t *testing.T) {
	tr := NewTrace(NewTraceID(), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "request")
	_, cell := StartSpan(ctx, "cell")
	cell.SetAttr("outcome", "miss")
	cell.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := WriteSpansChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Args map[string]any  `json:"args"`
			Dur  json.RawMessage `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events for 2 spans", len(doc.TraceEvents))
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "cell" {
			found = true
			if ev.Args["outcome"] != "miss" {
				t.Errorf("cell args %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("cell span missing from export")
	}
}
