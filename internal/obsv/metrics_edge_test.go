package obsv

import "testing"

// Direct edge-case coverage for the histogram quantile and float-stat
// merge logic the /metrics and /v1/metrics/series exports lean on.

func TestHistogramQuantileEdges(t *testing.T) {
	// Empty histogram: every quantile is 0, including the extremes.
	var empty Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d", q, got)
		}
	}

	// Only zeros: bucket 0 answers every quantile exactly.
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(0)
	if zeros.Quantile(0.5) != 0 || zeros.Quantile(1) != 0 {
		t.Errorf("all-zero histogram: p50=%d p100=%d", zeros.Quantile(0.5), zeros.Quantile(1))
	}

	// A single occupied bucket: every quantile lands in it, and the
	// bucket's upper bound is clamped to the observed Max.
	var single Histogram
	single.Observe(100) // bucket 7, top 127
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := single.Quantile(q); got != 100 {
			t.Errorf("single-sample Quantile(%g) = %d, want Max-clamped 100", q, got)
		}
	}

	// q=0 rounds up to the first sample; q=1 reaches the last. With two
	// distinct buckets they must not collapse onto one answer.
	var two Histogram
	two.Observe(1)
	two.Observe(1000)
	if lo, hi := two.Quantile(0), two.Quantile(1); lo != 1 || hi != 1000 {
		t.Errorf("two-bucket extremes: p0=%d p100=%d, want 1 and 1000", lo, hi)
	}

	// The quantile is an upper bound: for samples inside one bucket it
	// reports the bucket top clamped to Max, never below a sample's
	// bucket floor.
	var mid Histogram
	mid.Observe(9) // bucket 4 (values 8..15)
	if got := mid.Quantile(0.5); got != 9 {
		t.Errorf("upper-bound clamp: %d, want 9", got)
	}
}

func TestFloatStatMergeEdges(t *testing.T) {
	// Merging an empty stat is a no-op.
	a := FloatStat{}
	a.Observe(2)
	a.Observe(8)
	before := a
	a.Merge(&FloatStat{})
	if a != before {
		t.Fatalf("empty merge changed stat: %+v", a)
	}

	// Merging into an empty stat copies the other side, including Min
	// (the empty side's zero Min must not win).
	b := FloatStat{}
	src := FloatStat{}
	src.Observe(5)
	src.Observe(7)
	b.Merge(&src)
	if b != src {
		t.Fatalf("merge into empty: %+v, want %+v", b, src)
	}

	// Negative samples: Min tracks below zero, Merge preserves it.
	neg := FloatStat{}
	neg.Observe(-3)
	pos := FloatStat{}
	pos.Observe(4)
	pos.Merge(&neg)
	if pos.Min != -3 || pos.Max != 4 || pos.Count != 2 || pos.Sum != 1 {
		t.Fatalf("negative merge: %+v", pos)
	}

	// Merge with self doubles count and sum and keeps the extremes.
	self := FloatStat{}
	self.Observe(1)
	self.Observe(9)
	cp := self
	self.Merge(&cp)
	if self.Count != 4 || self.Sum != 20 || self.Min != 1 || self.Max != 9 {
		t.Fatalf("self merge: %+v", self)
	}
	if self.Mean() != 5 {
		t.Fatalf("self merge mean %g", self.Mean())
	}
}
