package obsv

// Tracer receives lifecycle events. Implementations attached to a
// single device may assume single-goroutine access; sinks shared
// across sweep workers (ChromeSink, Collector-managed Metrics) handle
// their own synchronization and say so.
type Tracer interface {
	Event(Event)
}

// Multi fans one event stream into several sinks, in order.
type Multi []Tracer

// Event implements Tracer.
func (m Multi) Event(e Event) {
	for _, t := range m {
		if t != nil {
			t.Event(e)
		}
	}
}

// Combine builds the smallest tracer covering the non-nil arguments:
// nil for none, the sink itself for one, a Multi otherwise.
func Combine(ts ...Tracer) Tracer {
	var out Multi
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// WithTid wraps a tracer so every event carries the given thread id —
// how concurrent sweep devices share one Chrome sink without their
// spans interleaving into nonsense.
func WithTid(t Tracer, tid int32) Tracer {
	if t == nil {
		return nil
	}
	return tidTracer{t: t, tid: tid}
}

type tidTracer struct {
	t   Tracer
	tid int32
}

func (tt tidTracer) Event(e Event) {
	e.Tid = tt.tid
	tt.t.Event(e)
}

// SliceSink records every event in order; the golden-trace tests use it.
type SliceSink struct {
	Events []Event
}

// Event implements Tracer.
func (s *SliceSink) Event(e Event) { s.Events = append(s.Events, e) }

// Types returns the recorded event types, skipping engine-diagnostic
// events when filter is true.
func (s *SliceSink) Types(filter bool) []EventType {
	out := make([]EventType, 0, len(s.Events))
	for _, e := range s.Events {
		if filter && e.Type.EngineDiagnostic() {
			continue
		}
		out = append(out, e.Type)
	}
	return out
}
