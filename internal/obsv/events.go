// Package obsv is the simulator's zero-cost observability layer:
// typed lifecycle events emitted by the device engines, the runtime
// strategies and the fault injector, fanned into pluggable sinks —
// a Chrome trace_event JSON writer (chrome://tracing / Perfetto), a
// human-readable logfmt text log, a compact binary ring buffer for
// always-on flight recording, and a loss-free metrics aggregator.
//
// The layer's contract is that disabling it costs a nil check and
// nothing else: an Event is a fixed-size value (no pointers, no
// strings), emission sites fire only at lifecycle granularity (periods,
// checkpoints, batches — never per instruction), and the device's
// disabled path is a single `if obs == nil` guard. The engine benchmark
// guard test (internal/device) pins the disabled path at zero extra
// allocations and within a small ns/op tolerance of the committed
// BENCH_core.json baseline.
package obsv

// EventType identifies one lifecycle event. The vocabulary is shared
// by both execution engines; events marked engine-diagnostic below are
// the only ones whose presence may differ between the batched and
// reference engines (everything else is emitted at points the
// equivalence oracle proves bit-identical).
type EventType uint8

const (
	// EvNone is the zero value; sinks ignore it.
	EvNone EventType = iota
	// EvRunBegin opens a run. Arg is the resolved engine
	// (0 reference, 1 batched).
	EvRunBegin
	// EvPowerOn begins an active period: the capacitor reached VOn.
	// F is the recharge time in seconds that preceded the period.
	EvPowerOn
	// EvRestore reinstated a committed checkpoint at boot. Arg is the
	// restored payload bytes, Arg2 the slot index, F the restore energy
	// in joules (transfer + surcharge).
	EvRestore
	// EvColdStart booted from the program image: no usable checkpoint.
	EvColdStart
	// EvCheckpointBegin starts a backup. Arg is the payload bytes.
	EvCheckpointBegin
	// EvCheckpointCommit landed a backup's commit record. Arg is the
	// payload bytes, Arg2 the executed cycles since the previous
	// committed backup (a τ_B sample), F the backup energy in joules.
	EvCheckpointCommit
	// EvCheckpointFail is a backup the supply killed before the commit
	// record completed; the previous checkpoint remains live.
	EvCheckpointFail
	// EvBrownOut ends an active period by supply death. Arg is the
	// period's dead (uncommitted) cycles — a τ_D sample — and Arg2 its
	// total active cycles.
	EvBrownOut
	// EvSleep enters the post-backup idle burn (Payload.ThenSleep):
	// the device sleeps until the supply dies.
	EvSleep
	// EvHalt is the program's final commit landing; the run is complete.
	EvHalt
	// EvRunEnd closes a run. Arg is 1 when the program completed.
	EvRunEnd
	// EvDeadline is the wall-clock RunTimeout expiring. Arg is the
	// poll-boundary cycle count also reported in DeadlineError.
	EvDeadline
	// EvBatchHorizon is the batched engine choosing a batch budget
	// (engine-diagnostic: the reference engine never emits it). Arg is
	// the granted budget in cycles, Arg2 the strategy's declared
	// horizon.
	EvBatchHorizon
	// EvTrigger is a strategy requesting a backup. Arg is a
	// TriggerReason; Arg2 is reason-specific detail (the violating
	// word for TrigWAR, the payload bytes for task commits, ...).
	EvTrigger
	// EvWARFlush is an idempotency-tracking runtime (Clank, Ratchet,
	// CacheVolatile) flushing its read/write-first sets. Arg is the
	// combined occupancy at the flush — the buffer high-water metric —
	// and Arg2 a TriggerReason explaining why.
	EvWARFlush
	// EvFaultPowerCut is the injector cutting the supply mid-flight.
	EvFaultPowerCut
	// EvFaultTear is a backup torn mid-write. Arg2 is 1 when the tear
	// was injected deliberately (vs. a supply death).
	EvFaultTear
	// EvFaultBitFlips reports stored checkpoint words corrupted at a
	// restore. Arg is the number of bits flipped.
	EvFaultBitFlips
	// EvCRCReject is the restore path rejecting a checkpoint slot after
	// CRC validation failed. Arg is the slot index.
	EvCRCReject
	// EvStaleRestore is a restore falling back to the older slot.
	// Arg is the slot restored; Arg2 is 1 when the injector forced it.
	EvStaleRestore
	// EvUnrecoverable is the honest fail-stop: the device detected that
	// no crash-consistent recovery exists. Arg is the newest surviving
	// checkpoint sequence, Arg2 the FRAM stores no rollback can undo.
	EvUnrecoverable
	// EvVerdict is the correctness oracle flagging one violation class
	// on a run (internal/faults). Arg is a VerdictClass.
	EvVerdict
	// EvCampaignProbe is the adversarial fault campaign's frontier
	// discovery pass completing. Arg is the number of coverage-frontier
	// windows mined from the probe run, Arg2 the probe's total cycles.
	EvCampaignProbe
	// EvCampaignSchedule is one biased fault schedule being launched.
	// Arg2 is the placed power-cut cycle.
	EvCampaignSchedule
	// EvCampaignFinding is a campaign schedule producing a violation
	// (before shrinking). Arg is the VerdictClass.
	EvCampaignFinding
	// EvCampaignShrink is a counterexample minimized: Arg is the number
	// of candidate runs the shrinker spent, Arg2 the minimized case's
	// final power-cut count.
	EvCampaignShrink
	// EvCampaignCoverage closes a campaign: Arg is the number of
	// frontier windows actually attacked, Arg2 the total discovered —
	// the schedule-space coverage summary.
	EvCampaignCoverage
	// EvTaskCommit is a task-based runtime (Alpaca) atomically
	// committing a task's privatized write set at a task boundary.
	// Arg is the committed payload bytes (the privatization-buffer
	// flush), Arg2 the committing task's entry PC.
	EvTaskCommit
	// EvTaskReexec is a task-based runtime restarting the interrupted
	// task from its last committed boundary after a reboot. Arg is the
	// resumed entry PC.
	EvTaskReexec
	// EvWCECRegion is one static WCEC verifier verdict: Arg is the
	// verdict code (0 certified, 1 livelock, 2 unknown), Arg2 the
	// region's entry PC.
	EvWCECRegion

	// NumEventTypes bounds the vocabulary for sink lookup tables.
	NumEventTypes
)

var eventNames = [NumEventTypes]string{
	EvNone:             "none",
	EvRunBegin:         "run-begin",
	EvPowerOn:          "power-on",
	EvRestore:          "restore",
	EvColdStart:        "cold-start",
	EvCheckpointBegin:  "checkpoint-begin",
	EvCheckpointCommit: "checkpoint-commit",
	EvCheckpointFail:   "checkpoint-fail",
	EvBrownOut:         "brown-out",
	EvSleep:            "sleep",
	EvHalt:             "halt",
	EvRunEnd:           "run-end",
	EvDeadline:         "deadline",
	EvBatchHorizon:     "batch-horizon",
	EvTrigger:          "trigger",
	EvWARFlush:         "war-flush",
	EvFaultPowerCut:    "fault-power-cut",
	EvFaultTear:        "fault-tear",
	EvFaultBitFlips:    "fault-bit-flips",
	EvCRCReject:        "crc-reject",
	EvStaleRestore:     "stale-restore",
	EvUnrecoverable:    "unrecoverable",
	EvVerdict:          "verdict",
	EvCampaignProbe:    "campaign-probe",
	EvCampaignSchedule: "campaign-schedule",
	EvCampaignFinding:  "campaign-finding",
	EvCampaignShrink:   "campaign-shrink",
	EvCampaignCoverage: "campaign-coverage",
	EvTaskCommit:       "task-commit",
	EvTaskReexec:       "task-reexec",
	EvWCECRegion:       "wcec-region",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return "event-" + itoa(uint64(t))
}

// EngineDiagnostic reports whether the event's presence is allowed to
// differ between the batched and reference engines. The golden-trace
// test filters these out before asserting cross-engine equality.
func (t EventType) EngineDiagnostic() bool { return t == EvBatchHorizon }

// VerdictClass classifies a correctness-oracle violation (EvVerdict /
// EvCampaignFinding Arg; internal/faults assigns them). The vocabulary
// follows the formal-foundations taxonomy: equivalence to *some*
// continuous execution, including input-freshness obligations.
type VerdictClass uint8

const (
	// ClassTornState is committed state diverging from every continuous
	// execution: a corrupt restore, a committed output word that is not
	// the oracle's word at that position, or a wrong final memory.
	ClassTornState VerdictClass = iota
	// ClassReplayedInput is a committed input observation that
	// duplicates one an earlier commit already persisted — after a
	// rollback past a commit, the input was re-read and re-committed,
	// so committed state mixes two distinct environment readings.
	ClassReplayedInput
	// ClassStaleOutput is a commit re-exposing output positions an
	// earlier commit already made externally visible — under a live
	// environment the re-emitted words may differ from those already
	// observed.
	ClassStaleOutput
	// ClassTimeliness is a committed input older than the configured
	// freshness bound at the commit that consumed it.
	ClassTimeliness
	// ClassIncomplete is a run that starved before halting — not a
	// divergence, but not equivalent to any continuous execution
	// either.
	ClassIncomplete

	// NumVerdictClasses bounds the enum for metrics arrays.
	NumVerdictClasses
)

var verdictNames = [NumVerdictClasses]string{
	ClassTornState:     "torn-state",
	ClassReplayedInput: "replayed-input",
	ClassStaleOutput:   "stale-output",
	ClassTimeliness:    "timeliness",
	ClassIncomplete:    "incomplete",
}

func (c VerdictClass) String() string {
	if int(c) < len(verdictNames) && verdictNames[c] != "" {
		return verdictNames[c]
	}
	return "class-" + itoa(uint64(c))
}

// ParseVerdictClass maps a class name back to its enum value.
func ParseVerdictClass(s string) (VerdictClass, bool) {
	for c := VerdictClass(0); c < NumVerdictClasses; c++ {
		if verdictNames[c] == s {
			return c, true
		}
	}
	return 0, false
}

// TriggerReason classifies why a strategy requested a backup (EvTrigger
// Arg) or flushed its tracking buffers (EvWARFlush Arg2).
type TriggerReason uint64

const (
	// TrigNone is the zero value.
	TrigNone TriggerReason = iota
	// TrigTimer is a fixed-interval watchdog expiring (Timer,
	// Speculative's periodic branch).
	TrigTimer
	// TrigThreshold is a low-voltage comparator firing (Hibernus,
	// Speculative's final backup, threshold NVP, Mementos' site check).
	TrigThreshold
	// TrigSite is a compiler-inserted checkpoint site (Mementos).
	TrigSite
	// TrigTaskEnd is a task-boundary commit (DINO, Chain).
	TrigTaskEnd
	// TrigWAR is a write-after-read idempotency violation (Clank,
	// Ratchet, CacheVolatile).
	TrigWAR
	// TrigBufferFull is a tracking-buffer overflow (Clank).
	TrigBufferFull
	// TrigWatchdog is a region-length cap (Clank, Ratchet,
	// MixedVolatility, CacheVolatile watchdogs).
	TrigWatchdog
	// TrigBoot is a mandatory boot-time checkpoint anchoring
	// re-execution (Clank, Ratchet, CacheVolatile, NVP cold starts).
	TrigBoot
	// TrigEveryCycle is the per-cycle flip-flop flush of every-cycle
	// NVP. Emitted once per power-on, not per cycle — a per-instruction
	// event stream would swamp every sink.
	TrigEveryCycle
	// TrigSense is an input-observation commit: the SenseCommit wrapper
	// checkpointing immediately after a SENSE so the captured input
	// cannot be re-read by a post-reboot replay.
	TrigSense

	// NumTriggerReasons bounds the enum for metrics arrays.
	NumTriggerReasons
)

var triggerNames = [NumTriggerReasons]string{
	TrigNone:       "none",
	TrigTimer:      "timer",
	TrigThreshold:  "threshold",
	TrigSite:       "site",
	TrigTaskEnd:    "task-end",
	TrigWAR:        "war",
	TrigBufferFull: "buffer-full",
	TrigWatchdog:   "watchdog",
	TrigBoot:       "boot",
	TrigEveryCycle: "every-cycle",
	TrigSense:      "sense",
}

func (r TriggerReason) String() string {
	if int(r) < len(triggerNames) && triggerNames[r] != "" {
		return triggerNames[r]
	}
	return "reason-" + itoa(uint64(r))
}

// Event is one observability record. It is a fixed-size value with no
// pointers so emission never allocates and the ring buffer can store
// it verbatim; sinks that need run identity (program, strategy, engine
// flag) receive it at construction, not per event.
type Event struct {
	// Type is the vocabulary entry; Arg/Arg2/F are its typed payload
	// (see the EventType docs).
	Type EventType
	// Tid distinguishes concurrent devices sharing one sink (the
	// Chrome sink maps it to a trace thread); a device's own emissions
	// leave it zero and a wrapping tracer assigns it.
	Tid int32
	// Period is the index of the active period the event belongs to
	// (the period being set up, for charge-phase events).
	Period int32
	// Cycles is the device's consumed-cycle position.
	Cycles uint64
	// TimeS is the simulated wall-clock position in seconds.
	TimeS float64
	// Arg and Arg2 are event-specific integers.
	Arg, Arg2 uint64
	// F is an event-specific float (energy in joules, seconds, ...).
	F float64
}

// itoa is a tiny allocation-free-enough uint formatter used by the
// String methods (kept off strconv to avoid pulling it into the hot
// path's import graph — String is never called on the disabled path).
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
