package obsv

import "testing"

// TestSeriesRing: the ring returns samples oldest-first and overwrites
// past capacity.
func TestSeriesRing(t *testing.T) {
	s := NewSeries(3)
	if s.Cap() != 3 {
		t.Fatalf("cap %d", s.Cap())
	}
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring returned %d samples", len(got))
	}
	for i := 1; i <= 2; i++ {
		s.Add(Sample{UnixMS: int64(i)})
	}
	got := s.Snapshot()
	if len(got) != 2 || got[0].UnixMS != 1 || got[1].UnixMS != 2 {
		t.Fatalf("partial ring: %+v", got)
	}
	for i := 3; i <= 5; i++ {
		s.Add(Sample{UnixMS: int64(i)})
	}
	got = s.Snapshot()
	if len(got) != 3 {
		t.Fatalf("full ring holds %d", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].UnixMS != want {
			t.Fatalf("wrapped ring order: %+v", got)
		}
	}
}

// TestHistogramDeltaFrom: the interval delta is exact bucket
// subtraction, with quantiles describing only the interval's samples.
func TestHistogramDeltaFrom(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	prev := h // snapshot

	// An empty interval yields an all-zero delta.
	d := h.DeltaFrom(&prev)
	if d.Count != 0 || d.Sum != 0 || d.Quantile(0.99) != 0 {
		t.Fatalf("empty delta: %+v", d)
	}

	// New samples far above the old ones: the delta's quantiles must
	// reflect only the new interval, not the lifetime distribution.
	h.Observe(100_000)
	h.Observe(200_000)
	d = h.DeltaFrom(&prev)
	if d.Count != 2 || d.Sum != 300_000 {
		t.Fatalf("delta count/sum: %+v", d)
	}
	if p50 := d.Quantile(0.50); p50 < 100_000/2 {
		t.Fatalf("delta p50 %d reflects pre-interval samples", p50)
	}
	if d.Min == 0 || d.Min > 100_000 {
		t.Fatalf("delta min %d outside the occupied bucket bound", d.Min)
	}
	if d.Max != h.Max {
		t.Fatalf("delta max %d, want lifetime max %d", d.Max, h.Max)
	}

	// Delta from a zero snapshot is the histogram itself (bucket-wise).
	var zero Histogram
	d = h.DeltaFrom(&zero)
	if d.Count != h.Count || d.Sum != h.Sum {
		t.Fatalf("delta from zero: %+v", d)
	}
}
