package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestEventTypeNames(t *testing.T) {
	for ty := EvNone; ty < NumEventTypes; ty++ {
		if ty.String() == "" || strings.HasPrefix(ty.String(), "event-") {
			t.Errorf("event type %d has no name", ty)
		}
	}
	for r := TrigNone; r < NumTriggerReasons; r++ {
		if r.String() == "" || strings.HasPrefix(r.String(), "reason-") {
			t.Errorf("trigger reason %d has no name", r)
		}
	}
	if got := EventType(200).String(); got != "event-200" {
		t.Errorf("unknown event name = %q", got)
	}
}

func TestCombine(t *testing.T) {
	if Combine() != nil || Combine(nil, nil) != nil {
		t.Fatal("Combine of nothing must be nil")
	}
	a := &SliceSink{}
	if Combine(nil, a) != Tracer(a) {
		t.Fatal("Combine of one sink must be the sink itself")
	}
	b := &SliceSink{}
	m := Combine(a, b)
	m.Event(Event{Type: EvPowerOn})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("fan-out failed: %d/%d", len(a.Events), len(b.Events))
	}
}

func TestWithTid(t *testing.T) {
	s := &SliceSink{}
	WithTid(s, 7).Event(Event{Type: EvHalt})
	if s.Events[0].Tid != 7 {
		t.Fatalf("tid = %d, want 7", s.Events[0].Tid)
	}
	if WithTid(nil, 3) != nil {
		t.Fatal("WithTid(nil) must stay nil")
	}
}

func TestSliceSinkTypesFilter(t *testing.T) {
	s := &SliceSink{}
	s.Event(Event{Type: EvPowerOn})
	s.Event(Event{Type: EvBatchHorizon})
	s.Event(Event{Type: EvBrownOut})
	if got := s.Types(true); len(got) != 2 || got[0] != EvPowerOn || got[1] != EvBrownOut {
		t.Fatalf("filtered types = %v", got)
	}
	if got := s.Types(false); len(got) != 3 {
		t.Fatalf("unfiltered types = %v", got)
	}
}

func TestRingWrapAndSnapshot(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Event(Event{Type: EvPowerOn, Cycles: uint64(i)})
	}
	if r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := uint64(i + 2); e.Cycles != want {
			t.Fatalf("snapshot[%d].Cycles = %d, want %d", i, e.Cycles, want)
		}
	}
}

func TestRingBinaryRoundTrip(t *testing.T) {
	r := NewRing(8)
	want := []Event{
		{Type: EvRunBegin, Arg: 1},
		{Type: EvPowerOn, Tid: 3, Period: 9, Cycles: 12345, TimeS: 1.5, F: 0.25},
		{Type: EvUnrecoverable, Arg: 42, Arg2: 7, TimeS: math.Pi},
	}
	for _, e := range want {
		r.Event(e)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRing(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if _, err := ReadRing(bytes.NewReader([]byte("XXXX00000000"))); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Sum != 1106 || h.Min != 0 || h.Max != 1000 {
		t.Fatalf("stats: %+v", h)
	}
	if got := h.Mean(); math.Abs(got-1106.0/6) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if h.Quantile(0) != 0 || h.Quantile(1.0) != 1000 {
		t.Fatalf("quantiles: p0=%d p100=%d", h.Quantile(0), h.Quantile(1.0))
	}
	var other Histogram
	other.Observe(5000)
	h.Merge(&other)
	if h.Count != 7 || h.Max != 5000 {
		t.Fatalf("merged: %+v", h)
	}
	var empty Histogram
	h.Merge(&empty)
	if h.Count != 7 {
		t.Fatal("merging empty changed count")
	}
}

func TestMetricsDerivation(t *testing.T) {
	var m Metrics
	feed := []Event{
		{Type: EvRunBegin},
		{Type: EvPowerOn, F: 0.5},
		{Type: EvRestore, Arg: 64, F: 1e-6},
		{Type: EvCheckpointBegin, Arg: 64},
		{Type: EvCheckpointCommit, Arg: 64, Arg2: 1000, F: 2e-6},
		{Type: EvBrownOut, Arg: 200, Arg2: 1500},
		{Type: EvPowerOn, F: 0.25},
		{Type: EvColdStart},
		{Type: EvCheckpointFail},
		{Type: EvTrigger, Arg: uint64(TrigWAR)},
		{Type: EvWARFlush, Arg: 17, Arg2: uint64(TrigWAR)},
		{Type: EvFaultBitFlips, Arg: 3},
		{Type: EvHalt},
		{Type: EvRunEnd, Arg: 1},
	}
	for _, e := range feed {
		m.Event(e)
	}
	if m.Runs != 1 || m.CompletedRuns != 1 || m.Periods != 2 {
		t.Fatalf("run counts: %+v", m)
	}
	if m.Backups != 1 || m.BackupFail != 1 || m.Restores != 1 || m.ColdStarts != 1 {
		t.Fatalf("ckpt counts: %+v", m)
	}
	if m.CommittedCycles != 1000 || m.DeadCycles != 200 {
		t.Fatalf("cycle split: committed=%d dead=%d", m.CommittedCycles, m.DeadCycles)
	}
	if m.Triggers[TrigWAR] != 1 || m.WARFlushes != 1 || m.BufferHighWater != 17 {
		t.Fatalf("war: %+v", m)
	}
	if m.FaultBitFlips != 3 || m.Halts != 1 {
		t.Fatalf("faults: %+v", m)
	}

	var m2 Metrics
	m2.Event(Event{Type: EvWARFlush, Arg: 5, Arg2: uint64(TrigWatchdog)})
	m2.AddErrorClass("deadline", 2)
	m.AddErrorClass("deadline", 1)
	m.Merge(&m2)
	if m.WARFlushes != 2 || m.BufferHighWater != 17 {
		t.Fatalf("merged war: %+v", m)
	}
	if m.ErrorClasses["deadline"] != 3 {
		t.Fatalf("error classes: %v", m.ErrorClasses)
	}
}

func TestMetricsExport(t *testing.T) {
	var m Metrics
	m.Event(Event{Type: EvPowerOn, F: 0.5})
	m.Event(Event{Type: EvTrigger, Arg: uint64(TrigTimer)})
	m.AddErrorClass("panic", 4)

	var csv bytes.Buffer
	if err := m.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "metric,value\n") {
		t.Fatalf("missing CSV header: %q", out[:40])
	}
	for _, want := range []string{"periods,1", "trigger_timer,1", "error_panic,4", "charge_seconds_mean,0.5"} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	trig, ok := doc["triggers"].(map[string]any)
	if !ok || trig["timer"] != float64(1) {
		t.Fatalf("triggers export: %v", doc["triggers"])
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	a, b := c.Tracer(), c.Tracer()
	a.Event(Event{Type: EvPowerOn, F: 1})
	b.Event(Event{Type: EvPowerOn, F: 2})
	b.Event(Event{Type: EvBrownOut, Arg: 10, Arg2: 20})
	agg := c.Aggregate()
	if agg.Periods != 2 || agg.BrownOuts != 1 || agg.DeadCycles != 10 {
		t.Fatalf("aggregate: %+v", agg)
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	events := []Event{
		{Type: EvRunBegin, Arg: 1},
		{Type: EvPowerOn, Period: 0, TimeS: 1.0, F: 0.5},
		{Type: EvCheckpointBegin, Period: 0, TimeS: 1.1, Arg: 64},
		{Type: EvCheckpointCommit, Period: 0, TimeS: 1.2, Arg: 64, Arg2: 500},
		{Type: EvBrownOut, Period: 0, TimeS: 1.3, Arg: 100, Arg2: 900},
		{Type: EvPowerOn, Period: 1, TimeS: 2.0, F: 0.7},
		{Type: EvCheckpointBegin, Period: 1, TimeS: 2.1, Arg: 64},
		// run dies mid-checkpoint: sink must still balance the spans
		{Type: EvRunEnd},
	}
	for _, e := range events {
		s.Event(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int64   `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	depth := map[string]int{}
	var sawCharge bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			depth[ev.Name]++
		case "E":
			depth[ev.Name]--
			if depth[ev.Name] < 0 {
				t.Fatalf("unbalanced E for %q", ev.Name)
			}
		case "X":
			if ev.Name == "charge" {
				sawCharge = true
				if ev.Dur <= 0 {
					t.Fatalf("charge span without duration: %+v", ev)
				}
			}
		}
	}
	for name, d := range depth {
		if d != 0 {
			t.Fatalf("span %q left open (depth %d)", name, d)
		}
	}
	if !sawCharge {
		t.Fatal("no charge X event emitted")
	}
}

func TestTextSinkAndLogger(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Event(Event{Type: EvCheckpointCommit, Period: 2, Cycles: 999, TimeS: 0.5, Arg: 64, Arg2: 1000, F: 1e-6})
	s.Event(Event{Type: EvWARFlush, Arg: 9, Arg2: uint64(TrigWAR)})
	out := buf.String()
	for _, want := range []string{"ev.checkpoint-commit", "period=2", "cyc=999", "bytes=64", "tau_b=1000", "ev.war-flush", "occupancy=9", "reason=war"} {
		if !strings.Contains(out, want) {
			t.Errorf("text sink missing %q:\n%s", want, out)
		}
	}

	var lbuf bytes.Buffer
	l := NewLogger(&lbuf)
	l.Prefix = "audit"
	l.Line("verdict", Field{"case", "hibernus/counter"}, Field{"outcome", "ok"}, Field{"msg", "has space"})
	got := lbuf.String()
	if got != "audit verdict case=hibernus/counter outcome=ok msg=\"has space\"\n" {
		t.Fatalf("logfmt line = %q", got)
	}
}

func TestMetricsWCECCounters(t *testing.T) {
	var m Metrics
	feed := []Event{
		{Type: EvWCECRegion, Arg: WCECArgCertified, Arg2: 0},
		{Type: EvWCECRegion, Arg: WCECArgCertified, Arg2: 4},
		{Type: EvWCECRegion, Arg: WCECArgLivelock, Arg2: 9},
		{Type: EvWCECRegion, Arg: WCECArgUnknown, Arg2: 11},
	}
	for _, e := range feed {
		m.Event(e)
	}
	if m.WCECCertified != 2 || m.WCECLivelock != 1 || m.WCECUnknown != 1 {
		t.Fatalf("verdict counters: %+v", m)
	}

	var m2 Metrics
	m2.Event(Event{Type: EvWCECRegion, Arg: WCECArgLivelock})
	m.Merge(&m2)
	if m.WCECLivelock != 2 {
		t.Fatalf("merged livelock count: %d", m.WCECLivelock)
	}

	var csv bytes.Buffer
	if err := m.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"wcec_certified,2", "wcec_livelock,2", "wcec_unknown,1"} {
		if !strings.Contains(csv.String(), row) {
			t.Errorf("CSV lacks %q:\n%s", row, csv.String())
		}
	}

	// Runs with no verifier events keep the previous CSV shape: the
	// wcec rows only appear when a verdict was recorded.
	var empty Metrics
	var csv2 bytes.Buffer
	if err := empty.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv2.String(), "wcec_") {
		t.Errorf("empty metrics should omit wcec rows:\n%s", csv2.String())
	}
}
