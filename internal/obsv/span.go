package obsv

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Request-scoped tracing. Where the Event vocabulary records what one
// simulated device did (at simulated-time positions), a Span records
// what the *serving stack* did in wall-clock time: parsing a request,
// looking up a cache, waiting on a singleflight leader, running one
// simulation cell. Spans form a tree per trace (one trace per request),
// are carried through the call stack via context.Context, and obey the
// same contract as the rest of this package: when no trace is attached
// to the context, StartSpan returns a nil *Span whose methods are
// no-ops, and the disabled path performs no allocation — a context
// lookup and a nil check, nothing else.

// TraceID identifies one trace: 8 random bytes rendered as 16 hex
// characters, the format of the X-EH-Trace header.
type TraceID [8]byte

// NewTraceID returns a fresh random trace ID.
func NewTraceID() TraceID {
	var id TraceID
	// crypto/rand.Read never fails on supported platforms (it panics
	// instead); no error path to handle.
	rand.Read(id[:]) //nolint:errcheck
	return id
}

// ParseTraceID decodes the 16-hex-character header form. The zero ID is
// rejected so "absent" and "present" never alias.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if id == (TraceID{}) {
		return TraceID{}, false
	}
	return id, true
}

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText renders the ID in header form for JSON payloads.
func (id TraceID) MarshalText() ([]byte, error) {
	out := make([]byte, 2*len(id))
	hex.Encode(out, id[:])
	return out, nil
}

// SpanID numbers spans within one trace; 0 means "no span" (a root's
// parent).
type SpanID uint64

// Attr is one span attribute. Values are strings so the set stays
// closed under JSON round-trips; use Span.SetUint for counters.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one timed operation inside a trace. A *Span returned by
// StartSpan is live until End; all methods are safe on a nil receiver
// (the disabled-tracing case) and must be called from the goroutine
// that started the span.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr

	tr *Trace
}

// SetAttr attaches a string attribute. No-op on a nil span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// SetUint attaches an integer attribute. No-op on a nil span.
func (s *Span) SetUint(key string, v uint64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: itoa(v)})
}

// SetBool attaches a boolean attribute. No-op on a nil span.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	val := "false"
	if v {
		val = "true"
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// Finish stamps the end time and records the span onto its trace.
// No-op on a nil span; a second call is ignored.
func (s *Span) Finish() {
	if s == nil || s.tr == nil {
		return
	}
	s.End = time.Now()
	s.tr.record(*s)
	s.tr = nil
}

// DefaultSpanLimit bounds the spans one trace retains; past it the
// trace counts drops instead of growing without bound (a runaway sweep
// must not turn a request trace into a memory leak).
const DefaultSpanLimit = 4096

// Trace is one in-progress trace: an ID, a start time and the bounded
// set of completed spans. It is safe for concurrent use — sweep workers
// on different goroutines record spans of the same request.
type Trace struct {
	ID    TraceID
	Start time.Time

	mu      sync.Mutex
	next    SpanID
	spans   []Span
	limit   int
	dropped uint64
}

// NewTrace starts a trace retaining at most limit spans (≤ 0 selects
// DefaultSpanLimit).
func NewTrace(id TraceID, limit int) *Trace {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Trace{ID: id, Start: time.Now(), limit: limit}
}

func (t *Trace) nextID() SpanID {
	t.mu.Lock()
	t.next++
	id := t.next
	t.mu.Unlock()
	return id
}

func (t *Trace) record(sp Span) {
	sp.tr = nil
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// AddSpan records an already-completed span directly — how retroactive
// spans (a singleflight wait only known to have happened once the
// leader returns) enter the trace. Returns the new span's ID.
func (t *Trace) AddSpan(name string, parent SpanID, start, end time.Time, attrs ...Attr) SpanID {
	id := t.nextID()
	t.record(Span{ID: id, Parent: parent, Name: name, Start: start, End: end, Attrs: attrs})
	return id
}

// Snapshot freezes the trace into an exportable TraceData. Spans are
// ordered by start time so the tree renders deterministically.
func (t *Trace) Snapshot() *TraceData {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return &TraceData{ID: t.ID, Start: t.Start, Spans: spans, Dropped: dropped}
}

// spanCtx is the context payload: the trace plus the current span (the
// parent of whatever starts next). Stored as a pointer so the disabled
// lookup is a single interface assertion with no allocation.
type spanCtx struct {
	tr *Trace
	id SpanID
}

type spanCtxKey struct{}

// ContextWithTrace attaches tr as the context's active trace; spans
// started below parent to the trace root. A nil tr returns ctx
// unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, &spanCtx{tr: tr})
}

// TraceFrom returns the context's active trace, or nil when tracing is
// disabled for this request.
func TraceFrom(ctx context.Context) *Trace {
	if sc, ok := ctx.Value(spanCtxKey{}).(*spanCtx); ok {
		return sc.tr
	}
	return nil
}

// StartSpan opens a span named name under the context's current span.
// With no trace attached it returns ctx unchanged and a nil *Span —
// every Span method is a no-op on nil, so call sites need no guard and
// the disabled path allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sc, ok := ctx.Value(spanCtxKey{}).(*spanCtx)
	if !ok {
		return ctx, nil
	}
	sp := &Span{
		ID:     sc.tr.nextID(),
		Parent: sc.id,
		Name:   name,
		Start:  time.Now(),
		tr:     sc.tr,
	}
	return context.WithValue(ctx, spanCtxKey{}, &spanCtx{tr: sc.tr, id: sp.ID}), sp
}

// AddSpan records a completed [start, end] span named name under the
// context's current span; no-op (returning 0) when tracing is disabled.
func AddSpan(ctx context.Context, name string, start, end time.Time, attrs ...Attr) SpanID {
	sc, ok := ctx.Value(spanCtxKey{}).(*spanCtx)
	if !ok {
		return 0
	}
	return sc.tr.AddSpan(name, sc.id, start, end, attrs...)
}

// TraceData is a frozen trace: what the trace store retains and the
// JSON/Chrome exporters consume.
type TraceData struct {
	ID      TraceID   `json:"trace_id"`
	Start   time.Time `json:"start"`
	Spans   []Span    `json:"-"`
	Dropped uint64    `json:"dropped,omitempty"`
}

// SpanNode is one node of the rendered span tree.
type SpanNode struct {
	ID       SpanID            `json:"id"`
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"` // offset from trace start
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Tree assembles the span forest: roots (parent 0 or unknown) in start
// order, children nested under their parents.
func (td *TraceData) Tree() []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(td.Spans))
	for i := range td.Spans {
		sp := &td.Spans[i]
		n := &SpanNode{
			ID:      sp.ID,
			Name:    sp.Name,
			StartUS: sp.Start.Sub(td.Start).Microseconds(),
			DurUS:   sp.End.Sub(sp.Start).Microseconds(),
		}
		if len(sp.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				n.Attrs[a.Key] = a.Val
			}
		}
		nodes[sp.ID] = n
	}
	var roots []*SpanNode
	for i := range td.Spans {
		sp := &td.Spans[i]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			parent.Children = append(parent.Children, nodes[sp.ID])
		} else {
			roots = append(roots, nodes[sp.ID])
		}
	}
	return roots
}

// WriteTree renders the trace as an indented JSON span tree — the
// /v1/trace/{id} payload and the ehfigs -trace-spans file format.
func (td *TraceData) WriteTree(w io.Writer) error {
	doc := struct {
		TraceID TraceID     `json:"trace_id"`
		Start   time.Time   `json:"start"`
		Spans   int         `json:"spans"`
		Dropped uint64      `json:"dropped,omitempty"`
		Tree    []*SpanNode `json:"tree"`
	}{TraceID: td.ID, Start: td.Start, Spans: len(td.Spans), Dropped: td.Dropped, Tree: td.Tree()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// SpanCounter folds a device's lifecycle event stream into summary
// attributes on a span: how many active periods, committed backups and
// brown-outs a simulation cell saw, its final simulated-cycle position
// and whether it completed. It implements Tracer and, like any
// per-device sink, assumes single-goroutine access; call Flush after
// the run to attach the attributes.
type SpanCounter struct {
	sp        *Span
	periods   uint64
	backups   uint64
	brownOuts uint64
	cycles    uint64
	completed bool
}

// NewSpanCounter builds a counter attributing onto sp (which may be
// nil; the counter then still counts but Flush does nothing).
func NewSpanCounter(sp *Span) *SpanCounter { return &SpanCounter{sp: sp} }

// Event implements Tracer.
func (c *SpanCounter) Event(e Event) {
	switch e.Type {
	case EvPowerOn:
		c.periods++
	case EvCheckpointCommit:
		c.backups++
	case EvBrownOut:
		c.brownOuts++
	case EvRunEnd:
		c.cycles = e.Cycles
		c.completed = e.Arg == 1
	}
}

// Flush writes the accumulated counts onto the span.
func (c *SpanCounter) Flush() {
	if c.sp == nil {
		return
	}
	c.sp.SetUint("periods", c.periods)
	c.sp.SetUint("backups", c.backups)
	c.sp.SetUint("brown_outs", c.brownOuts)
	c.sp.SetUint("simcycles", c.cycles)
	c.sp.SetBool("completed", c.completed)
}
