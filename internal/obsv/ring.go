package obsv

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Ring is a fixed-capacity flight recorder: it keeps the most recent
// events and overwrites the oldest once full, so an always-on recorder
// costs a bounded, pointer-free allocation made once up front. On an
// unrecoverable error the CLIs dump the snapshot so the last moments
// before the failure are never lost.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRing returns a recorder holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Event implements Tracer.
func (r *Ring) Event(e Event) {
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many events were overwritten since creation.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Snapshot returns the retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, r.Len())
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset empties the ring without releasing its storage.
func (r *Ring) Reset() {
	r.next = 0
	r.wrapped = false
	r.dropped = 0
}

// Binary flight-recorder format: an 8-byte header ("EHTR", a version
// byte, 3 reserved bytes), a little-endian uint32 event count, then
// count fixed-width records of eventWireSize bytes each.
const (
	ringMagic     = "EHTR"
	ringVersion   = 1
	eventWireSize = 1 + 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8 // type,pad,tid,period,cycles,timeS,arg,arg2,f
)

// WriteTo dumps the snapshot in the binary flight-recorder format.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	events := r.Snapshot()
	var n int64
	hdr := make([]byte, 12)
	copy(hdr, ringMagic)
	hdr[4] = ringVersion
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(events)))
	m, err := w.Write(hdr)
	n += int64(m)
	if err != nil {
		return n, err
	}
	rec := make([]byte, eventWireSize)
	for _, e := range events {
		rec[0] = byte(e.Type)
		rec[1] = 0
		binary.LittleEndian.PutUint32(rec[2:], uint32(e.Tid))
		binary.LittleEndian.PutUint32(rec[6:], uint32(e.Period))
		binary.LittleEndian.PutUint64(rec[10:], e.Cycles)
		binary.LittleEndian.PutUint64(rec[18:], math.Float64bits(e.TimeS))
		binary.LittleEndian.PutUint64(rec[26:], e.Arg)
		binary.LittleEndian.PutUint64(rec[34:], e.Arg2)
		binary.LittleEndian.PutUint64(rec[42:], math.Float64bits(e.F))
		m, err = w.Write(rec)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadRing decodes a binary flight-recorder dump back into events.
func ReadRing(r io.Reader) ([]Event, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("obsv: ring header: %w", err)
	}
	if string(hdr[:4]) != ringMagic {
		return nil, fmt.Errorf("obsv: ring dump: bad magic %q", hdr[:4])
	}
	if hdr[4] != ringVersion {
		return nil, fmt.Errorf("obsv: ring dump: unsupported version %d", hdr[4])
	}
	count := binary.LittleEndian.Uint32(hdr[8:])
	events := make([]Event, 0, count)
	rec := make([]byte, eventWireSize)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("obsv: ring record %d: %w", i, err)
		}
		events = append(events, Event{
			Type:   EventType(rec[0]),
			Tid:    int32(binary.LittleEndian.Uint32(rec[2:])),
			Period: int32(binary.LittleEndian.Uint32(rec[6:])),
			Cycles: binary.LittleEndian.Uint64(rec[10:]),
			TimeS:  math.Float64frombits(binary.LittleEndian.Uint64(rec[18:])),
			Arg:    binary.LittleEndian.Uint64(rec[26:]),
			Arg2:   binary.LittleEndian.Uint64(rec[34:]),
			F:      math.Float64frombits(binary.LittleEndian.Uint64(rec[42:])),
		})
	}
	return events, nil
}

// DumpText renders the snapshot through a TextSink — the human-facing
// form of a flight-recorder dump.
func (r *Ring) DumpText(w io.Writer) {
	sink := NewTextSink(w)
	for _, e := range r.Snapshot() {
		sink.Event(e)
	}
	if r.dropped > 0 {
		sink.L.Line("ring.dropped", Field{"events", r.dropped})
	}
}
