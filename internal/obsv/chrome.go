package obsv

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// ChromeSink writes the Chrome trace_event JSON format, loadable in
// chrome://tracing and https://ui.perfetto.dev. Active periods and
// checkpoints become duration (B/E) spans, charge phases become
// complete (X) events, and everything else becomes an instant, so a
// power trace reads as alternating charge/active blocks with backup
// slices nested inside the active ones.
//
// The sink is mutex-guarded: concurrent sweep devices may share one
// sink as long as each is wrapped in WithTid so its spans land on a
// distinct trace thread. Close must be called to finalize the JSON.
type ChromeSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	first  bool
	// per-tid open-span state, so unbalanced sequences (a run dying
	// mid-checkpoint) still produce well-formed B/E nesting.
	open map[int32]*chromeOpen
	err  error
}

type chromeOpen struct {
	active bool
	ckpt   bool
}

// NewChromeSink starts a trace_event stream on w. If w is also an
// io.Closer, Close closes it after finalizing the JSON.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true, open: map[int32]*chromeOpen{}}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

func (s *ChromeSink) state(tid int32) *chromeOpen {
	st := s.open[tid]
	if st == nil {
		st = &chromeOpen{}
		s.open[tid] = st
	}
	return st
}

// Event implements Tracer.
func (s *ChromeSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	ts := e.TimeS * 1e6 // trace_event timestamps are microseconds
	st := s.state(e.Tid)
	switch e.Type {
	case EvPowerOn:
		if e.F > 0 {
			s.emit(e.Tid, "X", "charge", ts-e.F*1e6, e.F*1e6, argPairs{{"period", uint64(uint32(e.Period))}})
		}
		s.emit(e.Tid, "B", "active", ts, 0, argPairs{{"period", uint64(uint32(e.Period))}})
		st.active = true
	case EvCheckpointBegin:
		s.emit(e.Tid, "B", "checkpoint", ts, 0, argPairs{{"bytes", e.Arg}})
		st.ckpt = true
	case EvCheckpointCommit:
		if st.ckpt {
			s.emit(e.Tid, "E", "checkpoint", ts, 0, argPairs{{"bytes", e.Arg}, {"tau_b_cycles", e.Arg2}})
			st.ckpt = false
		}
	case EvCheckpointFail:
		if st.ckpt {
			s.emit(e.Tid, "E", "checkpoint", ts, 0, argPairs{{"failed", 1}})
			st.ckpt = false
		}
	case EvBrownOut, EvHalt, EvRunEnd, EvDeadline:
		if st.ckpt {
			s.emit(e.Tid, "E", "checkpoint", ts, 0, nil)
			st.ckpt = false
		}
		if st.active {
			var args argPairs
			if e.Type == EvBrownOut {
				args = argPairs{{"dead_cycles", e.Arg}, {"active_cycles", e.Arg2}}
			}
			s.emit(e.Tid, "E", "active", ts, 0, args)
			st.active = false
		}
		if e.Type != EvBrownOut {
			s.instant(e, ts)
		}
	default:
		s.instant(e, ts)
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
}

func (s *ChromeSink) instant(e Event, ts float64) {
	s.emit(e.Tid, "i", e.Type.String(), ts, 0, argPairs{{"arg", e.Arg}, {"arg2", e.Arg2}})
}

type argPairs []struct {
	k string
	v uint64
}

func (s *ChromeSink) emit(tid int32, ph, name string, ts, dur float64, args argPairs) {
	if s.first {
		s.first = false
	} else {
		s.w.WriteByte(',')
	}
	fmt.Fprintf(s.w, `{"name":%q,"cat":"eh","ph":%q,"pid":1,"tid":%d,"ts":%s`,
		name, ph, tid, jsonFloat(ts))
	if ph == "X" {
		fmt.Fprintf(s.w, `,"dur":%s`, jsonFloat(dur))
	}
	if ph == "i" {
		s.w.WriteString(`,"s":"t"`)
	}
	if len(args) > 0 {
		s.w.WriteString(`,"args":{`)
		for i, a := range args {
			if i > 0 {
				s.w.WriteByte(',')
			}
			fmt.Fprintf(s.w, `%q:%d`, a.k, a.v)
		}
		s.w.WriteByte('}')
	}
	s.w.WriteByte('}')
}

// jsonFloat renders a timestamp without exponent notation (Perfetto's
// legacy JSON importer is picky about scientific notation in ts).
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// WriteSpansChrome renders a frozen request trace in the same Chrome
// trace_event format the device sink above emits, so a span tree opens
// in chrome://tracing / Perfetto next to device timelines. Every span
// becomes a complete ("X") event on one thread; the viewers derive
// nesting from time containment, which holds because child spans live
// inside their parents. Timestamps are microseconds from trace start.
func WriteSpansChrome(w io.Writer, td *TraceData) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i := range td.Spans {
		sp := &td.Spans[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		ts := float64(sp.Start.Sub(td.Start).Nanoseconds()) / 1e3
		dur := float64(sp.End.Sub(sp.Start).Nanoseconds()) / 1e3
		fmt.Fprintf(bw, `{"name":%q,"cat":"eh-request","ph":"X","pid":1,"tid":1,"ts":%s,"dur":%s`,
			sp.Name, jsonFloat(ts), jsonFloat(dur))
		bw.WriteString(`,"args":{"span_id":` + itoa(uint64(sp.ID)) + `,"parent":` + itoa(uint64(sp.Parent)))
		for _, a := range sp.Attrs {
			fmt.Fprintf(bw, `,%q:%q`, a.Key, a.Val)
		}
		bw.WriteString(`}}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// Close terminates the JSON document and closes the underlying writer
// when it is closable. The sink must not be used afterwards.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteString(`]}`)
	s.w.WriteByte('\n')
	err := s.w.Flush()
	if s.err != nil {
		err = s.err
	}
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
