package obsv

import "sync"

// TraceStore is the bounded in-memory retention layer behind
// GET /v1/trace/{id}: the most recent Capacity traces in FIFO order,
// plus cumulative counters for the shutdown summary. Safe for
// concurrent use.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	order []TraceID
	m     map[TraceID]*TraceData

	traces uint64 // traces ever added (including since-evicted ones)
	spans  uint64 // spans ever recorded across those traces
}

// DefaultTraceCapacity retains the last 256 request traces — enough to
// debug a burst, small enough to never matter next to the result store.
const DefaultTraceCapacity = 256

// NewTraceStore builds a store retaining at most capacity traces (≤ 0
// selects DefaultTraceCapacity).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{cap: capacity, m: make(map[TraceID]*TraceData)}
}

// Add retains td, evicting the oldest trace past capacity. A re-used
// trace ID replaces the stored trace without double-counting eviction
// order.
func (s *TraceStore) Add(td *TraceData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces++
	s.spans += uint64(len(td.Spans))
	if _, ok := s.m[td.ID]; ok {
		s.m[td.ID] = td
		return
	}
	for len(s.order) >= s.cap {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.m, old)
	}
	s.order = append(s.order, td.ID)
	s.m[td.ID] = td
}

// Get returns the trace by ID.
func (s *TraceStore) Get(id TraceID) (*TraceData, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.m[id]
	return td, ok
}

// Len returns the number of traces currently retained.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Stats returns the cumulative trace and span counts (not reduced by
// eviction) — the numbers the service's drain summary reports.
func (s *TraceStore) Stats() (traces, spans uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces, s.spans
}
