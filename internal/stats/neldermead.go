package stats

import (
	"fmt"
	"math"
)

// NelderMeadOptions tune the downhill-simplex minimizer.
type NelderMeadOptions struct {
	// MaxIter bounds iterations (default 2000).
	MaxIter int
	// Tol is the convergence threshold on the simplex's function-value
	// spread (default 1e-12).
	Tol float64
	// Step is the initial simplex displacement per coordinate
	// (default 0.1, relative to |x|+1).
	Step float64
}

func (o *NelderMeadOptions) setDefaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 2000
	}
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	if o.Step == 0 {
		o.Step = 0.1
	}
}

// NelderMead minimizes f starting from x0 using the downhill-simplex
// method — the standard derivative-free workhorse for the small
// parameter-fitting problems the model characterization needs. It
// returns the best point found and its value.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64, error) {
	opts.setDefaults()
	n := len(x0)
	if n == 0 {
		return nil, 0, fmt.Errorf("stats: empty start point")
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	// initial simplex
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += opts.Step * (math.Abs(p[i-1]) + 1)
		}
		pts[i] = p
		vals[i] = f(p)
		if math.IsNaN(vals[i]) {
			return nil, 0, fmt.Errorf("stats: objective NaN at start simplex")
		}
	}

	order := func() {
		// insertion sort by value; simplexes are tiny
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
	}
	centroid := func() []float64 {
		c := make([]float64, n)
		for _, p := range pts[:n] {
			for k, v := range p {
				c[k] += v
			}
		}
		for k := range c {
			c[k] /= float64(n)
		}
		return c
	}
	combine := func(c, p []float64, t float64) []float64 {
		out := make([]float64, n)
		for k := range out {
			out[k] = c[k] + t*(c[k]-p[k])
		}
		return out
	}

	// xspread is the simplex extent; value-spread alone can hit zero on
	// plateaus or symmetric kinks while the simplex is still large.
	xspread := func() float64 {
		s := 0.0
		for k := 0; k < n; k++ {
			s = math.Max(s, math.Abs(pts[n][k]-pts[0][k]))
		}
		return s
	}

	order()
	for iter := 0; iter < opts.MaxIter; iter++ {
		if vals[n]-vals[0] <= opts.Tol*(math.Abs(vals[0])+opts.Tol) &&
			xspread() <= 1e-9*(math.Abs(pts[0][0])+1) {
			break
		}
		c := centroid()
		refl := combine(c, pts[n], alpha)
		fr := f(refl)
		switch {
		case fr < vals[0]:
			exp := combine(c, pts[n], gamma)
			if fe := f(exp); fe < fr {
				pts[n], vals[n] = exp, fe
			} else {
				pts[n], vals[n] = refl, fr
			}
		case fr < vals[n-1]:
			pts[n], vals[n] = refl, fr
		default:
			contr := combine(c, pts[n], -rho)
			if fc := f(contr); fc < vals[n] {
				pts[n], vals[n] = contr, fc
			} else {
				for i := 1; i <= n; i++ {
					for k := range pts[i] {
						pts[i][k] = pts[0][k] + sigma*(pts[i][k]-pts[0][k])
					}
					vals[i] = f(pts[i])
				}
			}
		}
		order()
	}
	return pts[0], vals[0], nil
}
