// Package stats provides the small statistical toolkit the EH model
// evaluation needs: means with standard error (the error bars of
// Figs. 8–10), geometric means (the model-error metric of Fig. 6),
// Pearson correlation (Fig. 7) and simple summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator), or 0
// for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SEM returns the standard error of the mean — the standard deviation
// divided by √n — which the paper uses for the error bars of Figs. 8–10.
func SEM(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// GeoMean returns the geometric mean of positive values; zero or
// negative entries are skipped (matching how geomean error is reported
// over strictly positive error magnitudes). Returns 0 when nothing
// qualifies.
func GeoMean(xs []float64) float64 {
	logSum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, or an error if the lengths differ, fewer than two points are
// given, or either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: constant series has no correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Percentile returns the p-th percentile (0–100) by linear interpolation
// between order statistics. Input order is preserved (an internal copy is
// sorted). Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the characterization
// experiments report per benchmark.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	SEM    float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.SEM = SEM(xs)
	s.Median = Median(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// RelErr returns |got−want|/|want| as a fraction; it is the per-benchmark
// model error aggregated by GeoMean in the Fig. 6 reproduction. A zero
// want with nonzero got returns +Inf.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
