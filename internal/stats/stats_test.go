package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !feq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); !feq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %g, want 0", got)
	}
}

func TestSEM(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	want := StdDev(xs) / 3
	if got := SEM(xs); !feq(got, want, 1e-12) {
		t.Errorf("SEM = %g, want %g", got, want)
	}
	if got := SEM(nil); got != 0 {
		t.Errorf("SEM(nil) = %g", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 10, 100}); !feq(got, 10, 1e-9) {
		t.Errorf("GeoMean = %g, want 10", got)
	}
	// zeros and negatives skipped
	if got := GeoMean([]float64{0, -5, 4, 9}); !feq(got, 6, 1e-9) {
		t.Errorf("GeoMean with skips = %g, want 6", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean of nothing positive = %g, want 0", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !feq(r, 1, 1e-12) {
		t.Errorf("perfect correlation: r=%g err=%v", r, err)
	}
	inv := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, inv)
	if err != nil || !feq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation: r=%g err=%v", r, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := Pearson([]float64{3, 3, 3}, ys[:3]); err == nil {
		t.Error("constant series should error")
	}
}

func TestPercentileMedian(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Median(xs); got != 35 {
		t.Errorf("Median = %g, want 35", got)
	}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("P0 = %g, want 15", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %g, want 50", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %g, want 20", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
	// input must not be reordered
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if !reflect.DeepEqual(orig, []float64{3, 1, 2}) {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 || s.Median != 4 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary: %+v", z)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); !feq(got, 0.1, 1e-12) {
		t.Errorf("RelErr = %g, want 0.1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(1,0) = %g, want +Inf", got)
	}
}

// Property: mean lies within [min, max]; SEM ≤ StdDev; shifting all data
// by a constant shifts the mean by the same constant and leaves the
// spread untouched.
func TestPropSummaryInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 2 + r.Intn(50)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.NormFloat64() * 100
			}
			vals[0] = reflect.ValueOf(xs)
		},
	}
	f := func(xs []float64) bool {
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.SEM > s.StdDev+1e-12 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 1000
		}
		s2 := Summarize(shifted)
		return feq(s2.Mean, s.Mean+1000, 1e-6) && feq(s2.StdDev, s.StdDev, 1e-6)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Pearson correlation is invariant under positive affine
// transforms of either series and bounded by [−1, 1].
func TestPropPearsonInvariance(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 3 + r.Intn(30)
			xs, ys := make([]float64, n), make([]float64, n)
			for i := range xs {
				xs[i] = r.NormFloat64()
				ys[i] = r.NormFloat64()
			}
			vals[0] = reflect.ValueOf(xs)
			vals[1] = reflect.ValueOf(ys)
		},
	}
	f := func(xs, ys []float64) bool {
		r1, err := Pearson(xs, ys)
		if err != nil {
			return true // constant draws are legitimately rejected
		}
		if r1 < -1-1e-9 || r1 > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 3*x + 7
		}
		r2, err := Pearson(scaled, ys)
		return err == nil && feq(r1, r2, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
