package stats

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2)
	}
	x, v, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+2) > 1e-4 {
		t.Fatalf("minimum at %v", x)
	}
	if v > 1e-8 {
		t.Fatalf("value %g", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("rosenbrock minimum at %v", x)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 7) }
	x, _, err := NelderMead(f, []float64{0}, NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-3 {
		t.Fatalf("1-d minimum at %v", x)
	}
}

func TestNelderMeadErrors(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Error("empty start accepted")
	}
	nan := func([]float64) float64 { return math.NaN() }
	if _, _, err := NelderMead(nan, []float64{1}, NelderMeadOptions{}); err == nil {
		t.Error("NaN objective accepted")
	}
}
