// Package runner is the resilient parallel sweep engine every
// multi-run evaluation driver routes through: a bounded worker pool
// with panic isolation, per-run deadlines (enforced inside device.Run
// via Config.RunTimeout/Interrupt), cancellation, and ordered merging
// of results.
//
// The engine's load-bearing property is the determinism invariant:
// because every sweep point is an independent, seeded simulation and
// results are merged in input order regardless of completion order, a
// sweep produces byte-identical figures and CSVs at any worker count.
// That is what makes parallelism safe for a reproduction repo — speed
// never changes the science.
//
// Failure is per-point, not per-sweep. A panicking simulation is
// recovered into a typed *RunError (wrapping a *PanicError that carries
// the stack); a run that blows its wall-clock budget surfaces the
// device's typed ErrDeadlineExceeded; a cancelled context marks the
// points that never started. Surviving points are always returned, so
// drivers can degrade gracefully: drop the failed points, note the
// failures on the figure, and keep the sweep's output usable.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"ehmodel/internal/device"
)

// Options configures a sweep execution. The zero value runs with
// GOMAXPROCS workers and no per-run deadline.
type Options struct {
	// Workers bounds concurrent sweep points; ≤ 0 means GOMAXPROCS.
	Workers int
	// RunTimeout is the wall-clock budget of one sweep point. Drivers
	// pass it into device.Config.RunTimeout, where a coarse cycle-batch
	// check aborts a runaway simulation with ErrDeadlineExceeded. Zero
	// means no deadline.
	RunTimeout time.Duration
	// Label names sweep point i in error reports (e.g. "fig5 τ_B=360").
	// Nil falls back to "point i".
	Label func(i int) string
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) label(i int) string {
	if o.Label != nil {
		return o.Label(i)
	}
	return fmt.Sprintf("point %d", i)
}

// RunError is one failed sweep point, carrying enough context (index
// and the driver-supplied label, which should name the point's
// seed/config) to replay the run in isolation.
type RunError struct {
	// Index is the point's input-order position in the sweep.
	Index int
	// Label identifies the point's configuration for replay.
	Label string
	// Err is the underlying failure: a *PanicError, the device's
	// ErrDeadlineExceeded, a context cancellation, or the simulation's
	// own error.
	Err error
}

func (e *RunError) Error() string { return fmt.Sprintf("%s: %v", e.Label, e.Err) }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// PanicError is a panicking simulation converted into a value: the
// recovered payload plus the goroutine stack at the panic site. The
// sweep engine guarantees a panic in one point never kills the process
// or the rest of the sweep.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Errors aggregates a sweep's failed points in input order. A nil
// Errors means every point succeeded.
type Errors []*RunError

func (e Errors) Error() string {
	switch len(e) {
	case 0:
		return "runner: no failed points"
	case 1:
		return "runner: " + e[0].Error()
	default:
		return fmt.Sprintf("runner: %d sweep points failed; first: %s", len(e), e[0].Error())
	}
}

// Unwrap exposes the individual point failures, so errors.Is/As on the
// aggregate reach the typed errors inside (ErrDeadlineExceeded,
// *PanicError, a cancellation cause, ...).
func (e Errors) Unwrap() []error {
	out := make([]error, len(e))
	for i, re := range e {
		out[i] = re
	}
	return out
}

// FailedSet returns the failed input indices as a set, for dropping
// those points while assembling figures.
func (e Errors) FailedSet() map[int]bool {
	if len(e) == 0 {
		return nil
	}
	s := make(map[int]bool, len(e))
	for _, re := range e {
		s[re.Index] = true
	}
	return s
}

// Summary is a one-line account of the failures sized for a figure
// note: how many of the sweep's points failed, a breakdown by kind
// (program bugs, panics, deadlines, stalled supplies, cancellations),
// and why the first one did, verbatim, for replay.
func (e Errors) Summary(total int) string {
	if len(e) == 0 {
		return fmt.Sprintf("all %d points ok", total)
	}
	counts := make(map[string]int)
	var order []string
	for _, re := range e {
		k := errKind(re.Err)
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	return fmt.Sprintf("%d/%d points failed (%s) and were dropped; first: %s",
		len(e), total, strings.Join(parts, ", "), e[0].Error())
}

// ClassCounts buckets the failed points by kind — the same classes as
// Summary (program, panic, deadline, no-progress, cancelled, other) —
// for the observability layer's metrics export (error_<class> rows).
// Nil when every point succeeded.
func (e Errors) ClassCounts() map[string]uint64 {
	if len(e) == 0 {
		return nil
	}
	out := make(map[string]uint64, 4)
	for _, re := range e {
		out[errKind(re.Err)]++
	}
	return out
}

// errKind buckets one point failure for the summary breakdown. Program
// errors name workload bugs (the PC left the code), panics name harness
// or strategy bugs, deadlines and no-progress name runs the sweep gave
// up on, and cancellations are the caller's own context.
func errKind(err error) string {
	var panicErr *PanicError
	var progErr *device.ProgramError
	switch {
	case errors.As(err, &progErr):
		return "program"
	case errors.As(err, &panicErr):
		return "panic"
	case errors.Is(err, device.ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, device.ErrNoProgress):
		return "no-progress"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	}
	return "other"
}

// Interrupt adapts a context into the poll function device.Config
// expects: non-blocking, nil while the context lives, and the
// cancellation cause once it is done. Pass a nil context to disable.
func Interrupt(ctx context.Context) func() error {
	if ctx == nil {
		return nil
	}
	return func() error {
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		default:
			return nil
		}
	}
}

// workerKey carries the worker slot executing the current point, for
// provenance records that want to name the worker.
type workerKey struct{}

// WorkerFrom returns the worker slot (0-based) running the current
// sweep point, or -1 outside a MapCtx worker.
func WorkerFrom(ctx context.Context) int {
	if w, ok := ctx.Value(workerKey{}).(int); ok {
		return w
	}
	return -1
}

// Map runs fn for every index in [0, n) on a bounded worker pool and
// returns the results merged in input order. results[i] holds fn(i)'s
// value for every succeeded point and the zero value for failed ones;
// errs lists the failures in input order (nil when the sweep is clean).
//
// Each invocation is isolated: a panic inside fn(i) is recovered into a
// *PanicError and recorded against point i only. When ctx is cancelled,
// points already running finish (or abort via the Interrupt hook the
// driver wired into the device) and points not yet started are marked
// failed with the cancellation cause — the partial results that did
// complete are still returned, in order.
func Map[T any](ctx context.Context, n int, o Options, fn func(i int) (T, error)) ([]T, Errors) {
	return MapCtx(ctx, n, o, func(_ context.Context, i int) (T, error) { return fn(i) })
}

// MapCtx is Map with the worker's context threaded into fn: the same
// bounded pool, panic isolation and ordered merge, plus a per-worker
// context carrying the worker slot (WorkerFrom) so request-scoped
// layers above — tracing spans, provenance records — know which slot
// resolved each point. fn must treat its context as request-scoped:
// it is derived from ctx and shared by every point the worker runs.
func MapCtx[T any](ctx context.Context, n int, o Options, fn func(ctx context.Context, i int) (T, error)) ([]T, Errors) {
	results := make([]T, n)
	if n <= 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	perPoint := make([]*RunError, n)

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.workers(n); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := context.WithValue(ctx, workerKey{}, w)
			for i := range idx {
				v, err := runOne(wctx, i, fn)
				if err != nil {
					perPoint[i] = &RunError{Index: i, Label: o.label(i), Err: err}
				} else {
					results[i] = v
				}
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			cause := context.Cause(ctx)
			for j := i; j < n; j++ {
				perPoint[j] = &RunError{Index: j, Label: o.label(j), Err: cause}
			}
			break feed
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()

	var errs Errors
	for _, e := range perPoint {
		if e != nil {
			errs = append(errs, e)
		}
	}
	return results, errs
}

// runOne invokes fn(ctx, i) with panic isolation.
func runOne[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}
