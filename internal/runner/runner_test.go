package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/strategy"
)

// TestMapOrdered: results land at their input index regardless of the
// worker count or completion order.
func TestMapOrdered(t *testing.T) {
	const n = 37
	for _, workers := range []int{0, 1, 2, 8, 64} {
		res, errs := Map(context.Background(), n, Options{Workers: workers}, func(i int) (int, error) {
			// Stagger completion so late indices often finish first.
			time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
			return i * i, nil
		})
		if errs != nil {
			t.Fatalf("workers=%d: unexpected errors: %v", workers, errs)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapEmpty: a zero-length sweep returns immediately and cleanly.
func TestMapEmpty(t *testing.T) {
	res, errs := Map(context.Background(), 0, Options{}, func(i int) (int, error) { return i, nil })
	if len(res) != 0 || errs != nil {
		t.Fatalf("empty sweep: res=%v errs=%v", res, errs)
	}
}

// TestMapPanicIsolation: a panic in one point becomes a typed *RunError
// wrapping a *PanicError for that index only; every other point's result
// survives and the process does not die.
func TestMapPanicIsolation(t *testing.T) {
	const n = 9
	res, errs := Map(context.Background(), n, Options{Workers: 4}, func(i int) (int, error) {
		if i == 3 {
			panic("injected simulation bug")
		}
		return i + 100, nil
	})
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	var re *RunError
	if !errors.As(errs, &re) || re.Index != 3 {
		t.Fatalf("not a *RunError for index 3: %v", errs)
	}
	var pe *PanicError
	if !errors.As(re, &pe) {
		t.Fatalf("RunError does not wrap *PanicError: %v", re)
	}
	if pe.Value != "injected simulation bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload/stack missing: value=%v stackLen=%d", pe.Value, len(pe.Stack))
	}
	failed := errs.FailedSet()
	for i := 0; i < n; i++ {
		switch {
		case i == 3:
			if !failed[i] {
				t.Fatalf("index 3 not in FailedSet")
			}
		case failed[i]:
			t.Fatalf("index %d wrongly failed", i)
		default:
			if res[i] != i+100 {
				t.Fatalf("res[%d] = %d, want %d", i, res[i], i+100)
			}
		}
	}
	if s := errs.Summary(n); !strings.Contains(s, "1/9") || !strings.Contains(s, "panic") {
		t.Fatalf("Summary = %q", s)
	}
}

// TestMapErrorCarriesLabel: the driver-supplied label (the replay
// handle) is attached to the failing point's error.
func TestMapErrorCarriesLabel(t *testing.T) {
	boom := errors.New("boom")
	_, errs := Map(context.Background(), 3, Options{
		Workers: 1,
		Label:   func(i int) string { return fmt.Sprintf("seed=%d", 1000+i) },
	}, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if len(errs) != 1 || !errors.Is(errs, boom) {
		t.Fatalf("errs = %v", errs)
	}
	if got := errs[0].Error(); got != "seed=1001: boom" {
		t.Fatalf("error string = %q", got)
	}
}

// TestSummaryClassifiesProgramErrors: a workload whose PC runs off the
// end surfaces through a sweep as a typed *device.ProgramError, and the
// failure summary buckets it as a program bug — distinct from panics
// and generic errors — so a sweep report points at the workload, not
// the harness.
func TestSummaryClassifiesProgramErrors(t *testing.T) {
	b := asm.New("runaway")
	b.Nop() // falls off the end
	prog, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pm := energy.MSP430Power()
	capC, vmax, von, voff := device.FixedSupplyConfig(20000 * pm.EnergyPerCycle(energy.ClassALU))
	_, errs := Map(context.Background(), 3, Options{Workers: 2}, func(i int) (int, error) {
		if i != 1 {
			return i, errors.New("unrelated harness failure")
		}
		d, err := device.New(device.Config{
			Prog: prog, Power: pm,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			MaxPeriods: 4, MaxCycles: 1 << 20,
		}, strategy.NewTimer(1000, 0.1))
		if err != nil {
			return 0, err
		}
		_, err = d.Run()
		return 0, err
	})
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3: %v", len(errs), errs)
	}
	var perr *device.ProgramError
	if !errors.As(errs, &perr) {
		t.Fatalf("no *device.ProgramError in %v", errs)
	}
	if perr.Program != "runaway" {
		t.Fatalf("ProgramError.Program = %q, want %q", perr.Program, "runaway")
	}
	s := errs.Summary(3)
	if !strings.Contains(s, "1 program") || !strings.Contains(s, "2 other") {
		t.Fatalf("Summary = %q, want a '1 program' and a '2 other' bucket", s)
	}
}

// TestMapPreCanceled: a sweep started under a dead context fails every
// point with the cancellation cause without running any of them.
func TestMapPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	const n = 6
	res, errs := Map(ctx, n, Options{Workers: 2}, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if len(res) != n {
		t.Fatalf("len(res) = %d", len(res))
	}
	if len(errs) != n {
		t.Fatalf("got %d errors, want %d: %v", len(errs), n, errs)
	}
	for _, re := range errs {
		if !errors.Is(re, context.Canceled) {
			t.Fatalf("point %d failed with %v, want context.Canceled", re.Index, re.Err)
		}
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d points ran under a pre-canceled context", got)
	}
}

// TestMapMidSweepCancel: cancellation during the sweep does not hang;
// every point either completed or carries a cancellation error, and the
// completed prefix is returned.
func TestMapMidSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 20
	res, errs := Map(ctx, n, Options{Workers: 4}, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 42, nil
		}
		<-ctx.Done() // a long run that only aborts via cancellation
		return 0, ctx.Err()
	})
	failed := errs.FailedSet()
	if failed[0] || res[0] != 42 {
		t.Fatalf("point 0 should have completed: res[0]=%d failed=%v", res[0], failed[0])
	}
	for i := 1; i < n; i++ {
		if !failed[i] {
			t.Fatalf("point %d neither failed nor blocked on cancellation", i)
		}
	}
	for _, re := range errs {
		if !errors.Is(re, context.Canceled) {
			t.Fatalf("point %d failed with %v, want context.Canceled", re.Index, re.Err)
		}
	}
}

// TestOptionsWorkersClamp: worker-count resolution — ≤0 means
// GOMAXPROCS, and the pool never exceeds the point count.
func TestOptionsWorkersClamp(t *testing.T) {
	if got := (Options{Workers: 5}).workers(3); got != 3 {
		t.Errorf("5 workers for 3 points resolved to %d", got)
	}
	if got := (Options{Workers: 2}).workers(100); got != 2 {
		t.Errorf("explicit 2 workers resolved to %d", got)
	}
	if got := (Options{Workers: -1}).workers(1); got != 1 {
		t.Errorf("negative workers for 1 point resolved to %d", got)
	}
	if got := (Options{}).workers(10_000); got < 1 {
		t.Errorf("default workers resolved to %d", got)
	}
}

// TestInterruptAdapter: the context→poll-function adapter is nil-safe,
// quiet while the context lives, and reports the cause once canceled.
func TestInterruptAdapter(t *testing.T) {
	if Interrupt(nil) != nil {
		t.Fatal("nil context should disable the hook")
	}
	ctx, cancel := context.WithCancel(context.Background())
	poll := Interrupt(ctx)
	if err := poll(); err != nil {
		t.Fatalf("live context polled as %v", err)
	}
	cancel()
	if err := poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context polled as %v", err)
	}
}

// ---------------------------------------------------------------------
// Integration: a real device sweep where one point's strategy panics
// and another point runs a program that never halts. The sweep must
// degrade exactly those two points — typed errors, replayable labels —
// while the healthy point completes.

// panicStrategy is a Timer whose PostStep blows up partway through the
// run, modeling a buggy runtime policy.
type panicStrategy struct {
	*strategy.Timer
	steps int
}

func (s *panicStrategy) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	s.steps++
	if s.steps > 100 {
		panic("strategy bug after 100 steps")
	}
	return s.Timer.PostStep(d, st)
}

// Horizon opts out of batching: the panic trigger counts PostStep
// calls, which only match instructions in per-step mode.
func (s *panicStrategy) Horizon(*device.Device) uint64 { return 1 }

func counterProgram(t *testing.T, n uint32) *asm.Program {
	t.Helper()
	b := asm.New("counter")
	b.Word("count", 0)
	b.La(isa.R1, "count")
	b.Li(isa.R2, n)
	b.Li(isa.R3, 0)
	b.Label("top")
	b.Lw(isa.R4, isa.R1, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.Sw(isa.R4, isa.R1, 0)
	b.Addi(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "top")
	b.Lw(isa.R4, isa.R1, 0)
	b.Out(isa.R4)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spinProgram(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.New("spin")
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, 1)
	b.Jump("loop")
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSweepDegradesPanicAndDeadline(t *testing.T) {
	ctx := context.Background()
	good := counterProgram(t, 500)
	spin := spinProgram(t)

	type point struct {
		prog    *asm.Program
		strat   device.Strategy
		timeout time.Duration
	}
	points := []point{
		{good, strategy.NewTimer(4000, 0.1), 0},
		{good, &panicStrategy{Timer: strategy.NewTimer(4000, 0.1)}, 0},
		{spin, strategy.NewTimer(4000, 0.1), 50 * time.Millisecond},
	}
	o := Options{
		Workers: len(points),
		Label:   func(i int) string { return []string{"healthy", "panicking", "spinning"}[i] },
	}
	res, errs := Map(ctx, len(points), o, func(i int) (*device.Result, error) {
		p := points[i]
		capC, vmax, von, voff := device.FixedSupplyConfig(1e-6)
		d, err := device.New(device.Config{
			Prog:       p.prog,
			Power:      energy.MSP430Power(),
			CapC:       capC,
			CapVMax:    vmax,
			VOn:        von,
			VOff:       voff,
			RunTimeout: p.timeout,
			Interrupt:  Interrupt(ctx),
		}, p.strat)
		if err != nil {
			return nil, err
		}
		return d.Run()
	})

	if len(errs) != 2 {
		t.Fatalf("got %d failed points, want 2: %v", len(errs), errs)
	}
	failed := errs.FailedSet()
	if failed[0] || !failed[1] || !failed[2] {
		t.Fatalf("wrong failure set: %v", failed)
	}

	// The healthy point completed and produced the expected output.
	if res[0] == nil || !res[0].Completed {
		t.Fatalf("healthy point did not complete: %+v", res[0])
	}
	if len(res[0].Output) != 1 || res[0].Output[0] != 500 {
		t.Fatalf("healthy point output = %v", res[0].Output)
	}

	// The panicking strategy surfaced as a typed, labeled panic error.
	var pe *PanicError
	if !errors.As(errs[0], &pe) {
		t.Fatalf("point 1 error is not a *PanicError: %v", errs[0])
	}
	if errs[0].Label != "panicking" {
		t.Fatalf("point 1 label = %q", errs[0].Label)
	}

	// The non-halting run was cut off by the device's deadline check.
	if !errors.Is(errs[1], device.ErrDeadlineExceeded) {
		t.Fatalf("point 2 error is not ErrDeadlineExceeded: %v", errs[1])
	}
	var de *device.DeadlineError
	if !errors.As(errs[1], &de) || de.Cycles == 0 {
		t.Fatalf("point 2 deadline detail missing: %v", errs[1])
	}
}

// TestMapCtxWorkerSlots: every point sees a valid worker slot via
// WorkerFrom, results stay input-ordered, and a plain context reports
// no slot.
func TestMapCtxWorkerSlots(t *testing.T) {
	if WorkerFrom(context.Background()) != -1 {
		t.Fatal("background context has a worker slot")
	}
	const n, workers = 32, 4
	slots := make([]int, n)
	res, errs := MapCtx(context.Background(), n, Options{Workers: workers},
		func(ctx context.Context, i int) (int, error) {
			slots[i] = WorkerFrom(ctx)
			return i * i, nil
		})
	if len(errs) != 0 {
		t.Fatal(errs[0])
	}
	for i, s := range slots {
		if s < 0 || s >= workers {
			t.Fatalf("point %d ran on slot %d (want 0..%d)", i, s, workers-1)
		}
		if res[i] != i*i {
			t.Fatalf("result %d misordered: %d", i, res[i])
		}
	}
}

// TestMapCtxPanicIsolation: a panic inside the ctx-taking fn is
// recovered per-point, like Map's.
func TestMapCtxPanicIsolation(t *testing.T) {
	res, errs := MapCtx(context.Background(), 3, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i, nil
		})
	if len(errs) != 1 || errs[0].Index != 1 {
		t.Fatalf("errs %v", errs)
	}
	var pe *PanicError
	if !errors.As(errs[0].Err, &pe) {
		t.Fatalf("panic not typed: %v", errs[0].Err)
	}
	if res[0] != 0 || res[2] != 2 {
		t.Fatal("surviving points lost")
	}
}
