package strategy

import (
	"ehmodel/internal/analyze"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Alpaca models the checkpoint-free task-based runtime of Maeng,
// Colin & Lucia: the program is decomposed into idempotent tasks, a
// task's writes go to privatized buffers, and the buffers flush to
// the live image with a two-phase atomic commit at the task boundary.
// There are no checkpoints in the programmer's sense — the only
// persistent record is the last committed task boundary, and a reboot
// re-executes the interrupted task from that boundary.
//
// The task boundaries come from the static decomposition pass
// (analyze.Tasks): programmer SysTaskEnd markers plus the WAR-cut
// boundaries that make every task idempotent, so re-execution is
// always safe. The simulator realizes privatization with the dirty
// word set of the in-flight task — the commit payload is the
// architectural state plus exactly the words the task produced — and
// rides the device's two-slot CRC-validated commit protocol for the
// two-phase atomicity. Programs whose addresses the static pass
// cannot fully resolve fall back to committing at SysTaskEnd markers
// only (the Chain discipline), which is still correct: boundaries
// only ever shrink the re-executed span.
//
// Static tasks can be tiny — a hot loop with a WAR hazard cuts a
// boundary every iteration — and committing each one would pay the
// backup transfer (and expose a commit window to faults) hundreds of
// times more often than any checkpoint runtime. Like the adaptive
// task-sizing literature (Coala), the runtime therefore coalesces
// consecutive tasks: a boundary only triggers a commit once at least
// Coalesce instructions ran since the last one; earlier boundaries
// are skipped and recorded as the coalesced span. Skipping is sound
// because the commit image snapshots the data footprint, so a restore
// rolls memory back to the committed boundary no matter how many
// skipped boundaries re-execution will recross.
type Alpaca struct {
	base
	naive bool

	// Coalesce is the minimum number of executed instructions between
	// boundary commits. Boundaries reached earlier are skipped (the
	// privatized write set keeps accumulating). Zero selects
	// DefaultCoalesce; 1 commits at every boundary.
	Coalesce int

	table  *analyze.TaskTable
	bounds map[uint32]struct{} // static task-boundary PCs
	dirty  map[uint32]struct{} // privatized words of the in-flight task
	entry  uint32              // boundary the in-flight task started at
	span   []uint32            // task entries coalesced since the last commit

	recordCommits bool
	commits       []TaskCommit
}

// DefaultCoalesce is the default minimum instruction count between
// boundary commits. It puts the commit cadence in the same regime as
// the checkpoint runtimes, so the audit's per-word fault rates expose
// the alpaca family comparably instead of hitting its (otherwise
// per-loop-iteration) commits hundreds of times more often.
const DefaultCoalesce = 256

// TaskCommit records one committed (possibly coalesced) task for
// cross-validation against the static per-task footprints: the
// boundary PC the span entered at, the entries of the further tasks
// coalesced into the commit, and the privatized words it flushed.
type TaskCommit struct {
	Entry uint32
	Span  []uint32
	Words []uint32
}

// maxRecordedCommits caps the cross-validation log so long audited
// runs cannot grow it without bound.
const maxRecordedCommits = 1 << 14

// NewAlpaca returns the task-based runtime.
func NewAlpaca() *Alpaca {
	a := &Alpaca{}
	a.Reset()
	return a
}

// NewAlpacaNaive returns the deliberately broken variant: it runs the
// same task protocol but tells the device to commit non-atomically in
// place (single slot, no CRC validation), so a power failure inside a
// commit window leaves torn state a restart then trusts. It exists as
// the adversarial campaign's known-bad target and is not in the
// catalog.
func NewAlpacaNaive() *Alpaca {
	a := NewAlpaca()
	a.naive = true
	return a
}

// Name implements device.Strategy.
func (a *Alpaca) Name() string {
	if a.naive {
		return "alpaca-naive"
	}
	return "alpaca"
}

// NaiveCommit implements device.NaiveCommitter: the naive variant
// asks the device for non-atomic in-place commits (effective only
// under a fault injector, so fault-free runs of both variants are
// identical).
func (a *Alpaca) NaiveCommit() bool { return a.naive }

// RecordCommits enables the per-commit log Commits returns, for the
// footprint cross-validation tests.
func (a *Alpaca) RecordCommits() { a.recordCommits = true }

// Commits returns the recorded task commits (nil unless
// RecordCommits was called before the run).
func (a *Alpaca) Commits() []TaskCommit { return a.commits }

// Table returns the static task table Attach derived, or nil when the
// decomposition fell back to SysTaskEnd markers only.
func (a *Alpaca) Table() *analyze.TaskTable { return a.table }

// Reset drops the in-flight task's privatized writes and coalesced
// span.
func (a *Alpaca) Reset() {
	a.dirty = make(map[uint32]struct{})
	a.span = nil
}

// coalesce returns the effective minimum instruction count between
// boundary commits.
func (a *Alpaca) coalesce() int {
	if a.Coalesce > 0 {
		return a.Coalesce
	}
	return DefaultCoalesce
}

// maxSpan caps the recorded coalesced span: re-execution recrosses the
// same skipped boundaries, and the span only feeds footprint
// cross-validation, so duplicates beyond the cap carry no information.
const maxSpan = 1 << 10

// skip records a boundary the runtime coalesced past instead of
// committing at.
func (a *Alpaca) skip(entry uint32) {
	if len(a.span) < maxSpan {
		a.span = append(a.span, entry)
	}
}

// Attach runs the static task decomposition over the device's program.
// A program the pass cannot decompose (unresolvable addresses, e.g.
// fuzzer-generated code) keeps a nil table and commits at SysTaskEnd
// markers only.
func (a *Alpaca) Attach(d *device.Device) {
	cfg := d.Cfg()
	a.table = nil
	a.bounds = nil
	tt, err := analyze.Tasks(cfg.Prog, analyze.Options{
		SRAMSize: cfg.SRAMSize,
		FRAMSize: cfg.FRAMSize,
	})
	if err == nil {
		a.table = tt
		a.bounds = tt.BoundarySet()
	}
	a.entry = 0
	a.commits = nil
}

// Boot anchors re-execution: the in-flight task restarts at the PC the
// last committed boundary recorded.
func (a *Alpaca) Boot(d *device.Device) *device.Payload {
	a.Reset()
	a.entry = d.PC()
	if d.HasCheckpoint() {
		d.Trace(obsv.EvTaskReexec, uint64(a.entry), 0)
	}
	return nil
}

func (a *Alpaca) payload() device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  4 * len(a.dirty),
		SaveSRAM:  true,
	}
}

// record appends the in-flight (possibly coalesced) task to the
// cross-validation log when enabled.
func (a *Alpaca) record() {
	if !a.recordCommits || len(a.commits) >= maxRecordedCommits {
		return
	}
	words := make([]uint32, 0, len(a.dirty))
	for w := range a.dirty {
		words = append(words, w)
	}
	var span []uint32
	if len(a.span) > 0 {
		span = append(span, a.span...)
	}
	a.commits = append(a.commits, TaskCommit{Entry: a.entry, Span: span, Words: words})
}

// commit flushes the privatized buffer and opens the next task at pc.
func (a *Alpaca) commit(d *device.Device, pc uint32) *device.Payload {
	p := a.payload()
	d.Trace(obsv.EvTaskCommit, uint64(p.AppBytes), uint64(a.entry))
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigTaskEnd), uint64(p.Bytes()))
	a.record()
	a.Reset()
	a.entry = pc
	return &p
}

// PreStep commits at static WAR-cut boundaries — once the coalescing
// threshold has accumulated — and privatizes the in-flight task's
// writes. ExecSinceBackup (which resets on every backup and restore)
// doubles as the coalescing counter, so right after a restore the
// device never re-commits an empty task at the boundary it woke up on.
func (a *Alpaca) PreStep(d *device.Device, _ isa.Instr, acc device.AccessPreview) *device.Payload {
	var p *device.Payload
	if a.bounds != nil && d.ExecSinceBackup() > 0 {
		if pc := d.PC(); isBound(a.bounds, pc) {
			if d.ExecSinceBackup() >= uint64(a.coalesce()) {
				p = a.commit(d, pc)
			} else {
				a.skip(pc)
			}
		}
	}
	if acc.Valid && acc.Store {
		a.dirty[acc.Addr&^3] = struct{}{}
	}
	return p
}

// PostStep commits at programmer task ends, under the same coalescing
// rule as the static boundaries.
func (a *Alpaca) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if !st.HasSys || st.Sys != isa.SysTaskEnd {
		return nil
	}
	if d.ExecSinceBackup() < uint64(a.coalesce()) {
		a.skip(d.PC())
		return nil
	}
	return a.commit(d, d.PC())
}

// FinalPayload commits whatever the trailing span produced.
func (a *Alpaca) FinalPayload(d *device.Device) device.Payload {
	p := a.payload()
	a.record()
	a.Reset()
	return p
}

func isBound(bounds map[uint32]struct{}, pc uint32) bool {
	_, ok := bounds[pc]
	return ok
}

// Regions implements device.RegionObserver: Alpaca commits only at the
// static task boundaries of analyze.Tasks (coalescing skips commit
// opportunities, it never adds any), so task-mode WCEC verdicts apply.
func (a *Alpaca) Regions() device.RegionScheme { return device.RegionTaskBoundaries }

var (
	_ device.Strategy       = (*Alpaca)(nil)
	_ device.NaiveCommitter = (*Alpaca)(nil)
	_ device.RegionObserver = (*Alpaca)(nil)
)
