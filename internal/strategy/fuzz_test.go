package strategy

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"ehmodel/internal/device"
	"ehmodel/internal/workload"
)

// fuzzBaseSeed is the first program-generator seed the fuzz matrix
// tries. Override it with EHSIM_FUZZ_SEED to replay a reported failure
// or to sweep a fresh region of the program space; every failure message
// names the exact seed, so any finding reproduces with
// EHSIM_FUZZ_SEED=<seed> and the generator's determinism
// (TestRandomDeterministic) guarantees the replay is faithful.
func fuzzBaseSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("EHSIM_FUZZ_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("EHSIM_FUZZ_SEED=%q: %v", s, err)
	}
	return v
}

// TestFuzzEquivalence differentially tests the whole stack: random
// terminating programs must produce identical committed output under
// every runtime strategy and aggressive intermittency as under
// continuous execution. This is the strongest correctness statement the
// simulator makes — any bug in checkpoint contents, restore paths,
// idempotency tracking or output commit logic shows up here.
func TestFuzzEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing matrix is slow")
	}
	const seeds = 24
	base := fuzzBaseSeed(t)
	t.Logf("fuzz seeds %d..%d (override with EHSIM_FUZZ_SEED)", base, base+seeds-1)
	for _, c := range allCombos() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for seed := base; seed < base+seeds; seed++ {
				prog, err := workload.Random(seed, c.Seg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				want, _, err := device.RunContinuous(prog, 0, 0, 50_000_000)
				if err != nil {
					t.Fatalf("seed %d oracle: %v", seed, err)
				}
				d, err := device.New(fixedCfg(prog, 20000), c.New())
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				res, err := d.Run()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Completed {
					t.Fatalf("seed %d: incomplete after %d periods", seed, len(res.Periods))
				}
				if !reflect.DeepEqual(res.Output, want) {
					t.Fatalf("seed %d: output diverged\n got %v\nwant %v", seed, res.Output, want)
				}
			}
		})
	}
}

// TestRandomDeterministic: the generator must be reproducible — the
// oracle property depends on it.
func TestRandomDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a, err := workload.Random(seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.Random(seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Code, b.Code) || !reflect.DeepEqual(a.SRAMImage, b.SRAMImage) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
	a, _ := workload.Random(1, 0)
	b, _ := workload.Random(2, 0)
	if reflect.DeepEqual(a.Code, b.Code) {
		t.Fatal("different seeds produced identical programs")
	}
}
