package strategy

import (
	"reflect"
	"testing"

	"ehmodel/internal/device"
	"ehmodel/internal/workload"
)

// TestFuzzEquivalence differentially tests the whole stack: random
// terminating programs must produce identical committed output under
// every runtime strategy and aggressive intermittency as under
// continuous execution. This is the strongest correctness statement the
// simulator makes — any bug in checkpoint contents, restore paths,
// idempotency tracking or output commit logic shows up here.
func TestFuzzEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing matrix is slow")
	}
	const seeds = 24
	for _, c := range allCombos() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= seeds; seed++ {
				prog, err := workload.Random(seed, c.seg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				want, _, err := device.RunContinuous(prog, 0, 0, 50_000_000)
				if err != nil {
					t.Fatalf("seed %d oracle: %v", seed, err)
				}
				d, err := device.New(fixedCfg(prog, 20000), c.make())
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				res, err := d.Run()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Completed {
					t.Fatalf("seed %d: incomplete after %d periods", seed, len(res.Periods))
				}
				if !reflect.DeepEqual(res.Output, want) {
					t.Fatalf("seed %d: output diverged\n got %v\nwant %v", seed, res.Output, want)
				}
			}
		})
	}
}

// TestRandomDeterministic: the generator must be reproducible — the
// oracle property depends on it.
func TestRandomDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a, err := workload.Random(seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.Random(seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Code, b.Code) || !reflect.DeepEqual(a.SRAMImage, b.SRAMImage) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
	a, _ := workload.Random(1, 0)
	b, _ := workload.Random(2, 0)
	if reflect.DeepEqual(a.Code, b.Code) {
		t.Fatal("different seeds produced identical programs")
	}
}
