package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Hibernus is the single-backup system of Balsamo et al.: an analog
// comparator watches the supply voltage, and when the stored energy can
// only just cover a full checkpoint, the system saves all volatile state
// once and sleeps until the supply dies (§II, §IV-B).
type Hibernus struct {
	base
	// Margin scales the backup-cost threshold; the backup fires when
	// stored energy ≤ Margin × cost of a full checkpoint. Values just
	// above 1 maximize work per period but risk incomplete backups
	// under load transients; the default is 2.
	Margin float64
	// CheckPeriod is the comparator sampling interval in cycles
	// (default 16).
	CheckPeriod uint64

	sinceCheck uint64
	armed      bool // backup not yet taken this period
}

// NewHibernus returns a Hibernus strategy with default margin and
// sampling period.
func NewHibernus() *Hibernus {
	return &Hibernus{Margin: 2, CheckPeriod: 16}
}

// Name implements device.Strategy.
func (h *Hibernus) Name() string { return "hibernus" }

// Boot arms the comparator for the new period.
func (h *Hibernus) Boot(*device.Device) *device.Payload {
	h.armed = true
	h.sinceCheck = 0
	return nil
}

// Reset loses the volatile comparator state.
func (h *Hibernus) Reset() {
	h.armed = false
	h.sinceCheck = 0
}

// PostStep samples the supply and triggers the one hibernation backup.
func (h *Hibernus) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if !h.armed {
		return nil
	}
	h.sinceCheck += st.Cycles
	if h.CheckPeriod > 0 && h.sinceCheck < h.CheckPeriod {
		return nil
	}
	h.sinceCheck = 0
	p := fullPayload(d)
	if d.StoredEnergy() > h.Margin*d.BackupCost(p) {
		return nil
	}
	h.armed = false
	p.ThenSleep = true
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigThreshold), uint64(p.Bytes()))
	return &p
}

// Horizon promises no backup before the comparator's next sample: the
// batched engine ends its batch exactly at the cycle-count crossing
// where PostStep resets sinceCheck, so the sampling phase — and the
// stored energy the sample reads — match the per-step engine bit for
// bit. (With the default 16-cycle period this sits below the engine's
// minimum batch, so Hibernus effectively runs per-step; the promise
// still has to be exact for any larger CheckPeriod.)
func (h *Hibernus) Horizon(*device.Device) uint64 {
	if !h.armed {
		return device.HorizonInfinite
	}
	if h.CheckPeriod == 0 || h.sinceCheck >= h.CheckPeriod {
		return 1
	}
	return h.CheckPeriod - h.sinceCheck
}

// ObservedSys reports that the comparator ignores SYS codes.
func (h *Hibernus) ObservedSys() isa.SysMask { return 0 }

// FinalPayload commits the completed program's state.
func (h *Hibernus) FinalPayload(d *device.Device) device.Payload {
	return fullPayload(d)
}

var _ device.Strategy = (*Hibernus)(nil)
var _ device.Strategy = (*Timer)(nil)
