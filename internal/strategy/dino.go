package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// DINO is the task-based system of Lucia & Ransford: programs are
// decomposed into atomic tasks (SysTaskBegin/SysTaskEnd in EH32) and a
// checkpoint of volatile state plus versioned data is taken at every
// task boundary, guaranteeing each task executes effectively-once (§II).
type DINO struct {
	base
}

// NewDINO returns a DINO strategy.
func NewDINO() *DINO { return &DINO{} }

// Name implements device.Strategy.
func (dn *DINO) Name() string { return "dino" }

// PostStep checkpoints at every task end.
func (dn *DINO) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if !st.HasSys || st.Sys != isa.SysTaskEnd {
		return nil
	}
	p := fullPayload(d)
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigTaskEnd), uint64(p.Bytes()))
	return &p
}

// Horizon is unbounded: DINO backs up only at task boundaries, never on
// a cycle count.
func (dn *DINO) Horizon(*device.Device) uint64 { return device.HorizonInfinite }

// ObservedSys declares the task boundaries, so the batched engine ends
// a batch — and delivers PostStep — at every SysTaskEnd and nowhere
// else.
func (dn *DINO) ObservedSys() isa.SysMask { return isa.SysTaskEnd.Mask() }

// FinalPayload commits the completed program's state.
func (dn *DINO) FinalPayload(d *device.Device) device.Payload {
	return fullPayload(d)
}

// Regions implements device.RegionObserver: DINO commits only at task
// boundary SYS sites, a subset of the checkpoint-site set, so
// checkpoint-mode WCEC livelock verdicts apply conservatively (its
// commit opportunities are never closer than the verifier assumed).
func (dn *DINO) Regions() device.RegionScheme { return device.RegionCheckpointSites }

var (
	_ device.Strategy       = (*DINO)(nil)
	_ device.RegionObserver = (*DINO)(nil)
)
