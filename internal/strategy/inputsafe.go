package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// SenseCommit wraps another strategy with an input-freshness protocol:
// a full checkpoint is committed immediately after every SENSE, so each
// captured input value is durably bound to forward progress before the
// program can act on it. Without this, a power failure between a SENSE
// and the wrapped runtime's next commit rolls the program back past the
// observation and the re-execution re-reads the input — formally legal
// (the first capture was never committed) but it stretches the
// observation-to-commit latency the timeliness oracle measures, and
// under a stale restore the already-committed capture can be observed
// twice. SenseCommit bounds the committed-observation latency to the
// checkpoint cost itself and advertises the guarantee through
// InputsProtected, which the correctness oracle cross-checks.
//
// The wrapper only makes sense for SRAM-resident runtimes (the commit
// is a fullPayload snapshot); pair it with timer/hibernus-class inner
// strategies.
type SenseCommit struct {
	inner device.Strategy
}

// NewSenseCommit wraps inner with post-SENSE commits.
func NewSenseCommit(inner device.Strategy) *SenseCommit {
	return &SenseCommit{inner: inner}
}

// Name implements device.Strategy.
func (s *SenseCommit) Name() string { return s.inner.Name() + "+sense" }

// Attach implements device.Strategy.
func (s *SenseCommit) Attach(d *device.Device) { s.inner.Attach(d) }

// Boot implements device.Strategy.
func (s *SenseCommit) Boot(d *device.Device) *device.Payload { return s.inner.Boot(d) }

// PreStep implements device.Strategy.
func (s *SenseCommit) PreStep(d *device.Device, in isa.Instr, acc device.AccessPreview) *device.Payload {
	return s.inner.PreStep(d, in, acc)
}

// PostStep commits after every SENSE and otherwise defers to the
// wrapped strategy.
func (s *SenseCommit) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if st.HasSys && st.Sys == isa.SysSense {
		p := fullPayload(d)
		d.Trace(obsv.EvTrigger, uint64(obsv.TrigSense), uint64(p.Bytes()))
		return &p
	}
	return s.inner.PostStep(d, st)
}

// FinalPayload implements device.Strategy.
func (s *SenseCommit) FinalPayload(d *device.Device) device.Payload {
	return s.inner.FinalPayload(d)
}

// Horizon defers to the wrapped strategy; the extra SENSE trigger is a
// declared SYS site (ObservedSys), which the batching contract already
// honors inside any horizon.
func (s *SenseCommit) Horizon(d *device.Device) uint64 { return s.inner.Horizon(d) }

// ReplaySafe implements device.Strategy.
func (s *SenseCommit) ReplaySafe() bool { return s.inner.ReplaySafe() }

// Reset implements device.Strategy.
func (s *SenseCommit) Reset() { s.inner.Reset() }

// ObservedSys adds SysSense to the wrapped strategy's observed set so
// the batched engine delivers a PostStep at every SENSE. A wrapped
// strategy without SysObserver is treated as observing every SYS code,
// matching the engine's own conservative default.
func (s *SenseCommit) ObservedSys() isa.SysMask {
	if so, ok := s.inner.(device.SysObserver); ok {
		return so.ObservedSys() | isa.SysSense.Mask()
	}
	return isa.AllSys
}

// InputsProtected declares the committed-observation guarantee: every
// commit lands at most one instruction after the SENSE it captures, so
// no committed observation can be re-read by a later re-execution.
func (s *SenseCommit) InputsProtected() bool { return true }

var (
	_ device.Strategy       = (*SenseCommit)(nil)
	_ device.SysObserver    = (*SenseCommit)(nil)
	_ device.InputProtector = (*SenseCommit)(nil)
)
