package strategy_test

import (
	"context"
	"errors"
	"testing"

	"ehmodel/internal/analyze"
	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/faults"
	"ehmodel/internal/strategy"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// wcecSample keeps the cross-validation matrix affordable: three
// workloads with distinct loop structure, against every runtime that
// declares its commit-point scheme.
var wcecSample = []string{"counter", "crc", "ds"}

// fixedCfg mirrors the internal test helper of package strategy: a
// bench-supply device config with the given per-period budget in ALU
// cycles.
func fixedCfg(prog *asm.Program, cyclesOfEnergy float64) device.Config {
	pm := energy.MSP430Power()
	e := cyclesOfEnergy * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	return device.Config{
		Prog:       prog,
		Power:      pm,
		CapC:       capC,
		CapVMax:    vmax,
		VOn:        von,
		VOff:       voff,
		MaxPeriods: 20000,
		MaxCycles:  2_000_000_000,
	}
}

// wcecTableFor runs the verifier under the region semantics the
// runtime declares.
func wcecTableFor(t *testing.T, prog *asm.Program, strat device.Strategy, budgetCycles float64) *analyze.WCECTable {
	t.Helper()
	ro, ok := strat.(device.RegionObserver)
	if !ok {
		t.Fatalf("%s does not declare a region scheme", strat.Name())
	}
	mode := analyze.WCECCheckpoint
	if ro.Regions() == device.RegionTaskBoundaries {
		mode = analyze.WCECTask
	}
	pm := energy.MSP430Power()
	tbl, err := analyze.WCEC(prog, analyze.WCECOptions{
		Mode: mode, Power: pm,
		BudgetJ: budgetCycles * pm.EnergyPerCycle(energy.ClassALU),
	})
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	return tbl
}

// checkObserved asserts the central cross-validation invariant: every
// dynamically observed region traversal is bounded by the static
// certificate for the same entry. Returns the traversal total for the
// caller's vacuity guard.
func checkObserved(t *testing.T, label string, tbl *analyze.WCECTable, m *strategy.RegionMeter) uint64 {
	t.Helper()
	var total uint64
	for pc, obs := range m.Observed() {
		r := tbl.RegionAt(int(pc))
		if r == nil {
			t.Errorf("%s: meter booked a traversal at pc %d with no static region", label, pc)
			continue
		}
		total += obs.Traversals
		if r.WCUnbounded {
			continue // ∞ bounds everything
		}
		if obs.MaxCycles > r.WCCycles {
			t.Errorf("%s: region entry=%d observed %d cycles > static WCEC %d",
				label, pc, obs.MaxCycles, r.WCCycles)
		}
		if obs.MaxEnergy > r.WCEnergy*(1+1e-9) {
			t.Errorf("%s: region entry=%d observed %g J > static WCE %g J",
				label, pc, obs.MaxEnergy, r.WCEnergy)
		}
	}
	return total
}

// regionSchemeSpecs returns the catalog runtimes that declare static
// region semantics (the ones WCEC certificates are binding for).
func regionSchemeSpecs(t *testing.T) []strategy.Spec {
	t.Helper()
	var out []strategy.Spec
	for _, spec := range strategy.Catalog() {
		if _, ok := spec.New().(device.RegionObserver); ok {
			out = append(out, spec)
		}
	}
	if len(out) < 4 {
		t.Fatalf("expected at least mementos/dino/chain/alpaca to declare regions, got %d", len(out))
	}
	return out
}

// TestWCECBoundsDynamicClean checks dynamic ≤ static on clean
// (fault-free) runs for every region-declaring runtime × sample
// workload × both engines, on the bench supply.
func TestWCECBoundsDynamicClean(t *testing.T) {
	const budgetCycles = 20000
	for _, spec := range regionSchemeSpecs(t) {
		for _, wname := range wcecSample {
			for _, eng := range []device.Engine{device.EngineBatched, device.EngineReference} {
				spec, wname, eng := spec, wname, eng
				t.Run(spec.Name+"/"+wname+"/"+eng.String(), func(t *testing.T) {
					t.Parallel()
					w, ok := workload.Get(wname)
					if !ok {
						t.Fatalf("no workload %q", wname)
					}
					prog, err := w.Build(workload.Options{Seg: spec.Seg})
					if err != nil {
						t.Fatal(err)
					}
					inner := spec.New()
					tbl := wcecTableFor(t, prog, inner, budgetCycles)
					meter := strategy.NewRegionMeter(inner, tbl)
					cfg := fixedCfg(prog, budgetCycles)
					cfg.Engine = eng
					d, err := device.New(cfg, meter)
					if err != nil {
						t.Fatal(err)
					}
					res, err := d.Run()
					if err != nil {
						t.Fatal(err)
					}
					if !res.Completed {
						t.Fatalf("did not complete: %d periods", len(res.Periods))
					}
					if total := checkObserved(t, spec.Name+"/"+wname, tbl, meter); total == 0 {
						t.Error("vacuous: no region traversal was measured")
					}
				})
			}
		}
	}
}

// TestWCECBoundsDynamicHarvested repeats the invariant under a real
// harvester-driven supply: brown-outs now interrupt traversals at
// arbitrary points, which the meter must discard, never book over a
// bound.
func TestWCECBoundsDynamicHarvested(t *testing.T) {
	const budgetCycles = 6000
	for _, spec := range regionSchemeSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			w, _ := workload.Get("counter")
			prog, err := w.Build(workload.Options{Seg: spec.Seg})
			if err != nil {
				t.Fatal(err)
			}
			inner := spec.New()
			tbl := wcecTableFor(t, prog, inner, budgetCycles)
			meter := strategy.NewRegionMeter(inner, tbl)
			tr := trace.Generate(trace.MultiPeak, 20, 1e-3, 42)
			h, err := energy.NewHarvester(tr, 3000, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fixedCfg(prog, budgetCycles)
			cfg.Harvester = h
			d, err := device.New(cfg, meter)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("did not complete: %d periods", len(res.Periods))
			}
			if total := checkObserved(t, spec.Name+"/harvested", tbl, meter); total == 0 {
				t.Error("vacuous: no region traversal was measured")
			}
		})
	}
}

// TestWCECBoundsDynamicFaulted repeats the invariant under the audit
// engine's fault mix (random power cuts plus stochastic corruption):
// whatever the injected outcome, no observed traversal may exceed its
// certificate.
func TestWCECBoundsDynamicFaulted(t *testing.T) {
	const budgetCycles = 20000
	for _, spec := range regionSchemeSpecs(t) {
		for _, seed := range []int64{1, 2} {
			spec, seed := spec, seed
			t.Run(spec.Name, func(t *testing.T) {
				t.Parallel()
				w, _ := workload.Get("crc")
				opts := workload.Options{Seg: spec.Seg}
				prog, err := w.Build(opts)
				if err != nil {
					t.Fatal(err)
				}
				inner := spec.New()
				tbl := wcecTableFor(t, prog, inner, budgetCycles)
				meter := strategy.NewRegionMeter(inner, tbl)
				out, err := faults.AuditRun(context.Background(), faults.Options{},
					meter, prog, w.Ref(opts),
					faults.Case{Strategy: spec.Name, Workload: "crc", Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if out.Unrecoverable {
					t.Skip("honest fail-stop; nothing to cross-validate")
				}
				if total := checkObserved(t, spec.Name+"/faulted", tbl, meter); total == 0 {
					t.Error("vacuous: no region traversal was measured")
				}
			})
		}
	}
}

// TestWCECLivelockStaticAndDynamic is the end-to-end acceptance case:
// a deliberately undersized capacitor (5 ALU cycles per charge, less
// than any commit path) is flagged statically as livelock AND the
// simulated device diagnoses the same livelock dynamically via
// NoProgressError.
func TestWCECLivelockStaticAndDynamic(t *testing.T) {
	const budgetCycles = 5
	spec, ok := strategy.Lookup("alpaca")
	if !ok {
		t.Fatal("no alpaca in catalog")
	}
	w, _ := workload.Get("counter")
	prog, err := w.Build(workload.Options{Seg: spec.Seg})
	if err != nil {
		t.Fatal(err)
	}

	// Static verdict: some region's best case already exceeds E_max.
	tbl := wcecTableFor(t, prog, spec.New(), budgetCycles)
	fl := tbl.FirstLivelock()
	if fl == nil {
		t.Fatalf("expected a static livelock verdict at %d cycles:\n%s", budgetCycles, tbl.String())
	}

	// Dynamic twin: the device detects the repeating doomed charge and
	// names a region entry the static table knows.
	cfg := fixedCfg(prog, budgetCycles)
	cfg.DetectLivelock = true
	d, err := device.New(cfg, spec.New())
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	var np *device.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("run did not report no-progress: %v", err)
	}
	if !np.Livelock {
		t.Fatalf("expected a livelock diagnosis, got %v", np)
	}
	if tbl.RegionAt(int(np.RegionEntry)) == nil {
		t.Errorf("dynamic region entry=%d is not a static region entry", np.RegionEntry)
	}
}
