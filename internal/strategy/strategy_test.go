package strategy

import (
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/workload"
)

// buildWorkload assembles a registered workload for tests.
func buildWorkload(t *testing.T, name string, seg asm.Segment) *asm.Program {
	t.Helper()
	w, ok := workload.Get(name)
	if !ok {
		t.Fatalf("workload %q missing", name)
	}
	p, err := w.Build(workload.Options{Seg: seg})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, prog *asm.Program, s device.Strategy, cyclesOfEnergy float64) *device.Result {
	t.Helper()
	d, err := device.New(fixedCfg(prog, cyclesOfEnergy), s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTimerIntervals: the timer's measured τ_B must sit at its period.
func TestTimerIntervals(t *testing.T) {
	prog := buildWorkload(t, "counter", asm.SRAM)
	res := run(t, prog, NewTimer(800, 0.1), 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if mean := res.MeanTauB(); mean < 780 || mean > 830 {
		t.Fatalf("mean τ_B %g, want ≈800", mean)
	}
	// app bytes per backup ≈ α_B·τ_B = 80
	for _, p := range res.Periods {
		for i, ab := range p.AppBytes {
			if i == len(p.AppBytes)-1 {
				continue // final partial interval
			}
			if ab < 70 || ab > 90 {
				t.Fatalf("app bytes %d, want ≈80", ab)
			}
		}
	}
}

// TestHibernusSingleBackupPerPeriod: at most one (sleep-terminated)
// backup per failed period, and idle energy is burned after it.
func TestHibernusSingleBackupPerPeriod(t *testing.T) {
	prog := buildWorkload(t, "crc", asm.SRAM)
	res := run(t, prog, NewHibernus(), 15000)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	for i, p := range res.Periods {
		final := i == len(res.Periods)-1
		if !final && p.Backups > 1 {
			t.Fatalf("period %d has %d backups; Hibernus is single-backup", i, p.Backups)
		}
		if !final && p.Backups == 1 && p.IdleCycles == 0 {
			t.Errorf("period %d backed up but never slept", i)
		}
		if !final && p.Backups == 1 && p.DeadCycles != 0 {
			t.Errorf("period %d has %d dead cycles despite hibernating", i, p.DeadCycles)
		}
	}
}

// TestDINOBackupsMatchTasks: every committed backup in a full-energy run
// corresponds to a task end (plus the final commit).
func TestDINOBackupsMatchTasks(t *testing.T) {
	prog := buildWorkload(t, "rsa", asm.SRAM)
	// ample energy: single period, every task commits exactly once
	res := run(t, prog, NewDINO(), 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// rsa has 6 tasks (one per message) + final commit
	if got := res.Backups(); got != 7 {
		t.Fatalf("backups = %d, want 7 (6 tasks + final)", got)
	}
}

// TestClankViolationDetection drives Clank through a crafted access
// sequence and checks the decision at each point.
func TestClankViolationDetection(t *testing.T) {
	c := NewClank()
	load := func(addr uint32) *device.Payload {
		return c.PreStep(nil, isa.Instr{}, device.AccessPreview{Valid: true, Addr: addr, Size: 4})
	}
	store := func(addr uint32) *device.Payload {
		return c.PreStep(nil, isa.Instr{}, device.AccessPreview{Valid: true, Addr: addr, Size: 4, Store: true})
	}

	if p := load(0x100); p != nil {
		t.Fatal("first load should not checkpoint")
	}
	if p := store(0x200); p != nil {
		t.Fatal("store to untouched word should not checkpoint")
	}
	if p := store(0x200); p != nil {
		t.Fatal("store to write-first word should not checkpoint")
	}
	if p := load(0x200); p != nil {
		t.Fatal("load of own write should not checkpoint")
	}
	if p := store(0x100); p == nil {
		t.Fatal("write-after-read must checkpoint")
	}
	if c.Stats().Violations != 1 {
		t.Fatalf("violations = %d", c.Stats().Violations)
	}
	// after the violation the region restarted; the same store is now
	// write-first
	if p := store(0x100); p != nil {
		t.Fatal("store after its own violation checkpoint should be clean")
	}
}

// TestClankBufferOverflow: filling the read-first buffer forces a
// checkpoint.
func TestClankBufferOverflow(t *testing.T) {
	c := NewClank()
	for i := 0; i < c.ReadFirstEntries; i++ {
		if p := c.PreStep(nil, isa.Instr{}, device.AccessPreview{Valid: true, Addr: uint32(i * 4)}); p != nil {
			t.Fatalf("load %d overflowed early", i)
		}
	}
	if p := c.PreStep(nil, isa.Instr{}, device.AccessPreview{Valid: true, Addr: 0x4000}); p == nil {
		t.Fatal("9th distinct load should overflow the 8-entry buffer")
	}
	if c.Stats().BufferFulls != 1 {
		t.Fatalf("buffer fulls = %d", c.Stats().BufferFulls)
	}
}

// TestClankWatchdog: with no memory traffic at all, only the watchdog
// checkpoints, at its period.
func TestClankWatchdog(t *testing.T) {
	b := asm.New("aluonly")
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 40000)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "top")
	b.Out(isa.R1)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClank()
	res := run(t, prog, c, 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if c.Stats().WatchdogFires == 0 {
		t.Fatal("watchdog never fired on an ALU-only kernel")
	}
	if c.Stats().Violations != 0 || c.Stats().BufferFulls != 0 {
		t.Fatalf("unexpected memory-driven checkpoints: %+v", c.Stats())
	}
	if mean := res.MeanTauB(); mean > float64(c.WatchdogCycles)+10 {
		t.Fatalf("mean τ_B %g exceeds watchdog %d", mean, c.WatchdogCycles)
	}
}

// TestClankStorePatternsDriveTauB: lzfx (a violation per iteration) must
// back up far more often than sha (no violations).
func TestClankStorePatternsDriveTauB(t *testing.T) {
	tau := func(name string) float64 {
		res := run(t, buildWorkload(t, name, asm.FRAM), NewClank(), 1e9)
		if !res.Completed {
			t.Fatalf("%s incomplete", name)
		}
		return res.MeanTauB()
	}
	// sha's τ_B is bounded by read-first buffer overflows on its message
	// stream, not the watchdog, so the gap is a factor rather than
	// orders of magnitude.
	lz, sh := tau("lzfx"), tau("sha")
	if lz*2 > sh {
		t.Fatalf("lzfx τ_B (%g) should be well below sha's (%g)", lz, sh)
	}
}

// TestMixedVolatilityTracksStores: α_B samples reflect the store
// footprint between watchdog backups.
func TestMixedVolatilityTracksStores(t *testing.T) {
	prog := buildWorkload(t, "ds", asm.SRAM)
	m := NewMixedVolatility(500)
	res := run(t, prog, m, 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	samples := res.AlphaBSamples()
	if len(samples) == 0 {
		t.Fatal("no α_B samples")
	}
	for _, s := range samples {
		if s < 0 || s > 4 {
			t.Fatalf("α_B sample %g bytes/cycle out of plausible range", s)
		}
	}
}

// TestNVPEveryCycleTauB: per-instruction backup means τ_B of a few
// cycles.
func TestNVPEveryCycleTauB(t *testing.T) {
	prog := buildWorkload(t, "counter", asm.FRAM)
	res := run(t, prog, NewNVPEveryCycle(), 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if mean := res.MeanTauB(); mean > 10 {
		t.Fatalf("NVP mean τ_B %g, want a few cycles", mean)
	}
}

// TestNVPThresholdSingleBackup: like Hibernus but saving only registers.
func TestNVPThresholdSingleBackup(t *testing.T) {
	prog := buildWorkload(t, "counter", asm.FRAM)
	res := run(t, prog, NewNVPThreshold(), 20000)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	for i, p := range res.Periods {
		limit := 1
		if i == 0 {
			limit = 2 // cold start takes a mandatory boot checkpoint
		}
		if i < len(res.Periods)-1 && p.Backups > limit {
			t.Fatalf("period %d: %d backups in threshold NVP", i, p.Backups)
		}
	}
}

// TestMementosChecksOnlyAtSites: a program with no checkpoint sites
// never backs up under Mementos (except the final commit).
func TestMementosChecksOnlyAtSites(t *testing.T) {
	b := asm.New("nosites")
	b.Seg(asm.SRAM)
	b.Word("x", 0)
	b.La(isa.R1, "x")
	b.Li(isa.R2, 500)
	b.Li(isa.R3, 0)
	b.Label("top")
	b.Addi(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "top")
	b.Out(isa.R3)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, prog, NewMementos(), 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.Backups() != 1 { // final commit only
		t.Fatalf("backups = %d, want only the final commit", res.Backups())
	}
}

// TestFullPayloadCoversFootprint: the SRAM payload includes the arch
// state and the program's data footprint.
func TestFullPayloadCoversFootprint(t *testing.T) {
	prog := buildWorkload(t, "sense", asm.SRAM)
	d, err := device.New(fixedCfg(prog, 1e9), NewDINO())
	if err != nil {
		t.Fatal(err)
	}
	p := fullPayload(d)
	if p.ArchBytes != cpu.ArchStateBytes {
		t.Errorf("arch bytes %d", p.ArchBytes)
	}
	if p.AppBytes < 256 { // sense buffer is 64 words
		t.Errorf("app bytes %d below the sense buffer size", p.AppBytes)
	}
	if !p.SaveSRAM {
		t.Error("SRAM snapshot flag missing")
	}
}
