package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// MixedVolatility is the hypothetical processor of §V-B used to
// characterize application state (Fig. 10): a parametrized watchdog
// timer decides when to back up, and an unbounded store queue tracks
// which words were modified since the last backup — the backup payload
// is exactly that modified data (α_B·τ_B of Eq. 4) plus architectural
// state.
type MixedVolatility struct {
	base
	// WatchdogCycles is the backup period (the paper sweeps 250–3000).
	WatchdogCycles uint64

	dirty map[uint32]struct{} // modified words since last backup
}

// NewMixedVolatility returns the strategy with the given watchdog
// period.
func NewMixedVolatility(watchdog uint64) *MixedVolatility {
	m := &MixedVolatility{WatchdogCycles: watchdog}
	m.Reset()
	return m
}

// Name implements device.Strategy.
func (m *MixedVolatility) Name() string { return "mixvol" }

// Reset drops the volatile store queue.
func (m *MixedVolatility) Reset() {
	m.dirty = make(map[uint32]struct{})
}

// DirtyBytes is the current store-queue payload in bytes.
func (m *MixedVolatility) DirtyBytes() int { return 4 * len(m.dirty) }

// PreStep records stores into the queue.
func (m *MixedVolatility) PreStep(_ *device.Device, _ isa.Instr, acc device.AccessPreview) *device.Payload {
	if acc.Valid && acc.Store {
		m.dirty[acc.Addr&^3] = struct{}{}
	}
	return nil
}

func (m *MixedVolatility) payload(d *device.Device) device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  m.DirtyBytes(),
		SaveSRAM:  true,
	}
}

// PostStep fires the watchdog backup.
func (m *MixedVolatility) PostStep(d *device.Device, _ cpu.Step) *device.Payload {
	if m.WatchdogCycles == 0 || d.ExecSinceBackup() < m.WatchdogCycles {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigWatchdog), d.ExecSinceBackup())
	d.Trace(obsv.EvWARFlush, uint64(len(m.dirty)), uint64(obsv.TrigWatchdog))
	p := m.payload(d)
	m.Reset() // queue drains into the checkpoint
	return &p
}

// FinalPayload commits the remaining modified data.
func (m *MixedVolatility) FinalPayload(d *device.Device) device.Payload {
	p := m.payload(d)
	m.Reset()
	return p
}

var _ device.Strategy = (*MixedVolatility)(nil)
