package strategy

import (
	"sort"

	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Clank is the idempotency-tracking architecture of Hicks (§V-B): main
// memory is nonvolatile, and hardware buffers watch the address stream
// for write-after-read violations. Storing to a word whose first access
// since the last checkpoint was a read would break re-execution, so a
// register checkpoint is taken just before such a store commits. A
// watchdog forces a checkpoint if no violation occurs for WatchdogCycles.
//
// Workloads run under Clank must keep mutable data in FRAM.
type Clank struct {
	base
	// ReadFirstEntries and WriteFirstEntries size the two tracking
	// buffers; the paper's configuration uses 8 each.
	ReadFirstEntries  int
	WriteFirstEntries int
	// WatchdogCycles forces a checkpoint after this many executed
	// cycles without one; the paper uses 8000.
	WatchdogCycles uint64
	// ArchBytes is the checkpoint size; the paper's Cortex-M0+ target
	// saves 20 32-bit registers (80 bytes).
	ArchBytes int

	readFirst  map[uint32]struct{}
	writeFirst map[uint32]struct{}
	stats      ClankStats
	// violated records every word whose store triggered a WAR violation
	// over the whole run. Like stats it is analysis-side bookkeeping and
	// survives Reset; the static analyzer's hazard set must cover it.
	violated map[uint32]struct{}
}

// ClankStats counts why checkpoints happened. The counters describe
// the whole run (analysis-side bookkeeping), so they survive Reset.
type ClankStats struct {
	Violations    uint64 // write-after-read idempotency violations
	BufferFulls   uint64 // tracking-buffer overflows
	WatchdogFires uint64
}

// NewClank returns a Clank strategy with the paper's configuration:
// 8-entry read-first and write-first buffers, an 8000-cycle watchdog and
// an 80-byte register checkpoint.
func NewClank() *Clank {
	c := &Clank{
		ReadFirstEntries:  8,
		WriteFirstEntries: 8,
		WatchdogCycles:    8000,
		ArchBytes:         80,
	}
	c.Reset()
	return c
}

// Name implements device.Strategy.
func (c *Clank) Name() string { return "clank" }

// Stats is exported for the characterization experiments.
func (c *Clank) Stats() ClankStats { return c.stats }

// ViolationWords returns the sorted set of words whose stores raised
// WAR violations at any point in the run. The analyze package's
// cross-validation asserts this is a subset of the static hazard set.
func (c *Clank) ViolationWords() []uint32 {
	out := make([]uint32, 0, len(c.violated))
	for w := range c.violated {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *Clank) payload() device.Payload {
	return device.Payload{ArchBytes: c.ArchBytes}
}

// Reset drops the volatile tracking buffers (lost at power failure and
// cleared by every checkpoint).
func (c *Clank) Reset() {
	c.readFirst = make(map[uint32]struct{}, c.ReadFirstEntries)
	c.writeFirst = make(map[uint32]struct{}, c.WriteFirstEntries)
}

// Boot takes the mandatory initial checkpoint on a cold start so that
// re-execution never reaches back past the first instruction.
func (c *Clank) Boot(d *device.Device) *device.Payload {
	if d.HasCheckpoint() {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigBoot), 0)
	p := c.payload()
	return &p
}

// occupancy is the combined tracking-buffer fill, the EvWARFlush
// high-water sample.
func (c *Clank) occupancy() uint64 {
	return uint64(len(c.readFirst) + len(c.writeFirst))
}

// PreStep detects idempotency violations before the access commits.
func (c *Clank) PreStep(d *device.Device, _ isa.Instr, acc device.AccessPreview) *device.Payload {
	if !acc.Valid {
		return nil
	}
	word := acc.Addr &^ 3
	if acc.Store {
		if _, ok := c.writeFirst[word]; ok {
			return nil // writing our own data: idempotent
		}
		if _, ok := c.readFirst[word]; ok {
			// Write-after-read violation: checkpoint, then track the
			// store as write-first in the fresh region.
			c.stats.Violations++
			if c.violated == nil {
				c.violated = make(map[uint32]struct{})
			}
			c.violated[word] = struct{}{}
			d.Trace(obsv.EvTrigger, uint64(obsv.TrigWAR), uint64(word))
			d.Trace(obsv.EvWARFlush, c.occupancy(), uint64(obsv.TrigWAR))
			c.clearAndTrackWrite(word)
			p := c.payload()
			return &p
		}
		if len(c.writeFirst) >= c.WriteFirstEntries {
			c.stats.BufferFulls++
			d.Trace(obsv.EvTrigger, uint64(obsv.TrigBufferFull), uint64(word))
			d.Trace(obsv.EvWARFlush, c.occupancy(), uint64(obsv.TrigBufferFull))
			c.clearAndTrackWrite(word)
			p := c.payload()
			return &p
		}
		c.writeFirst[word] = struct{}{}
		return nil
	}
	// Load path.
	if _, ok := c.writeFirst[word]; ok {
		return nil
	}
	if _, ok := c.readFirst[word]; ok {
		return nil
	}
	if len(c.readFirst) >= c.ReadFirstEntries {
		c.stats.BufferFulls++
		d.Trace(obsv.EvTrigger, uint64(obsv.TrigBufferFull), uint64(word))
		d.Trace(obsv.EvWARFlush, c.occupancy(), uint64(obsv.TrigBufferFull))
		c.Reset()
		c.readFirst[word] = struct{}{}
		p := c.payload()
		return &p
	}
	c.readFirst[word] = struct{}{}
	return nil
}

// clearAndTrackWrite starts a fresh idempotent region whose first access
// is the pending store.
func (c *Clank) clearAndTrackWrite(word uint32) {
	c.Reset()
	c.writeFirst[word] = struct{}{}
}

// PostStep runs the watchdog.
func (c *Clank) PostStep(d *device.Device, _ cpu.Step) *device.Payload {
	if c.WatchdogCycles == 0 || d.ExecSinceBackup() < c.WatchdogCycles {
		return nil
	}
	c.stats.WatchdogFires++
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigWatchdog), d.ExecSinceBackup())
	d.Trace(obsv.EvWARFlush, c.occupancy(), uint64(obsv.TrigWatchdog))
	c.Reset() // a checkpoint ends the region; tracking restarts
	p := c.payload()
	return &p
}

// Horizon stays at 1 (per-step) deliberately: Clank's PreStep must
// inspect every memory access to catch write-after-read violations
// before the store commits, and no sound cycle-count headroom exists —
// the very next instruction can violate. Batching would skip PreStep
// for the whole window, which the Horizon contract forbids for a
// strategy whose PreStep can fire.
func (c *Clank) Horizon(*device.Device) uint64 { return 1 }

// FinalPayload commits the register state at halt.
func (c *Clank) FinalPayload(*device.Device) device.Payload {
	return device.Payload{ArchBytes: c.ArchBytes}
}

var _ device.Strategy = (*Clank)(nil)
