package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Mementos is the checkpoint-site system of Ransford et al.: the
// compiler inserts voltage checks at loop latches and function returns
// (SysChkpt sites in EH32 programs); when the supply is below a
// threshold at a site, all volatile state is checkpointed and execution
// continues until the supply dies or recovers (§II).
type Mementos struct {
	base
	// Margin scales the minimum threshold as a multiple of the full
	// checkpoint cost.
	Margin float64
	// SupplyFrac places the voltage-check threshold as a fraction of
	// the full period supply. Mementos can only act at program sites,
	// whose spacing is workload-dependent, so the real system sets its
	// V_check conservatively high; 0.5 means "start checkpointing once
	// half the energy is gone" (default 0.5).
	SupplyFrac float64
	// MinGapCycles suppresses back-to-back checkpoints at consecutive
	// sites while below threshold; at least this many executed cycles
	// must separate two backups (default 512).
	MinGapCycles uint64
}

// NewMementos returns a Mementos strategy with default parameters.
func NewMementos() *Mementos {
	return &Mementos{Margin: 3, SupplyFrac: 0.5, MinGapCycles: 512}
}

// Name implements device.Strategy.
func (m *Mementos) Name() string { return "mementos" }

// PostStep checkpoints at SysChkpt sites when the supply is low.
func (m *Mementos) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if !st.HasSys || st.Sys != isa.SysChkpt {
		return nil
	}
	if d.ExecSinceBackup() < m.MinGapCycles {
		return nil
	}
	p := fullPayload(d)
	threshold := m.Margin * d.BackupCost(p)
	if frac := m.SupplyFrac * d.FullSupply(); frac > threshold {
		threshold = frac
	}
	if d.StoredEnergy() > threshold {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigSite), uint64(p.Bytes()))
	return &p
}

// Horizon is unbounded: Mementos acts only at compiler-inserted sites,
// never on a cycle count, so batches are limited solely by the SYS
// sites it declares below.
func (m *Mementos) Horizon(*device.Device) uint64 { return device.HorizonInfinite }

// ObservedSys declares the checkpoint sites, so the batched engine ends
// a batch — and delivers PostStep — at every SysChkpt and nowhere else.
func (m *Mementos) ObservedSys() isa.SysMask { return isa.SysChkpt.Mask() }

// FinalPayload commits the completed program's state.
func (m *Mementos) FinalPayload(d *device.Device) device.Payload {
	return fullPayload(d)
}

// Regions implements device.RegionObserver: Mementos commits only at
// the program's checkpoint-site SYS instructions (the voltage gate
// selects *which* sites commit, never a site-free PC), so checkpoint-
// mode WCEC verdicts apply.
func (m *Mementos) Regions() device.RegionScheme { return device.RegionCheckpointSites }

var (
	_ device.Strategy       = (*Mementos)(nil)
	_ device.RegionObserver = (*Mementos)(nil)
)
