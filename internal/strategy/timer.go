package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Timer is the fixed-interval multi-backup system of the paper's first
// validation experiment (§V-A, Fig. 5): an interrupt fires every TauB
// executed cycles and the application backs up its architectural state
// plus AlphaB·TauB bytes of application data.
type Timer struct {
	base
	// TauB is the backup period in executed cycles; must be > 0.
	TauB uint64
	// AlphaB is the application state growth rate in bytes/cycle
	// (§V-A uses 0.1).
	AlphaB float64
	// SnapshotSRAM controls whether checkpoints capture volatile memory
	// contents. The Fig. 5 experiment keeps its state in SRAM, so the
	// default (true via NewTimer) restores it faithfully.
	SnapshotSRAM bool
}

// NewTimer returns a timer strategy with the paper's defaults.
func NewTimer(tauB uint64, alphaB float64) *Timer {
	return &Timer{TauB: tauB, AlphaB: alphaB, SnapshotSRAM: true}
}

// Name implements device.Strategy.
func (t *Timer) Name() string { return "timer" }

func (t *Timer) payload(cycles uint64) device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  int(t.AlphaB * float64(cycles)),
		SaveSRAM:  t.SnapshotSRAM,
	}
}

// PostStep fires a backup when the watchdog period elapses.
func (t *Timer) PostStep(d *device.Device, _ cpu.Step) *device.Payload {
	if t.TauB == 0 || d.ExecSinceBackup() < t.TauB {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigTimer), d.ExecSinceBackup())
	p := t.payload(d.ExecSinceBackup())
	return &p
}

// Horizon promises no backup until the watchdog period elapses: the
// batched engine ends its batch exactly where the executed-cycle
// counter crosses TauB, which is the same instruction the per-step
// engine fires on.
func (t *Timer) Horizon(d *device.Device) uint64 {
	if t.TauB == 0 {
		return device.HorizonInfinite
	}
	exec := d.ExecSinceBackup()
	if exec >= t.TauB {
		return 1
	}
	return t.TauB - exec
}

// ObservedSys reports that the watchdog ignores SYS codes entirely, so
// batches need not end at them.
func (t *Timer) ObservedSys() isa.SysMask { return 0 }

// FinalPayload commits the remaining partial interval at halt.
func (t *Timer) FinalPayload(d *device.Device) device.Payload {
	return t.payload(d.ExecSinceBackup())
}
