package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// NVP models a nonvolatile processor (§II): all memory is nonvolatile
// and a small amount of architectural state is flushed to nonvolatile
// flip-flops either every cycle (multi-backup, the Ma et al. HPCA'15
// design) or once per period at a voltage threshold (single-backup).
//
// Workloads run under NVP must keep mutable data in FRAM.
type NVP struct {
	base
	// EveryCycle selects per-cycle flip-flop backup; otherwise the
	// processor backs up once when the stored energy nears the backup
	// cost (threshold mode).
	EveryCycle bool
	// ArchBytes is the state flushed per backup. Per-cycle designs with
	// dirty-tracking save only the PC and modified registers (default 8
	// bytes); threshold designs save the full register file.
	ArchBytes int
	// Margin is the threshold multiplier for single-backup mode.
	Margin float64

	armed bool
}

// NewNVPEveryCycle returns the per-cycle backup configuration.
func NewNVPEveryCycle() *NVP {
	return &NVP{EveryCycle: true, ArchBytes: 8, Margin: 2}
}

// NewNVPThreshold returns the single-backup configuration saving the
// full register file.
func NewNVPThreshold() *NVP {
	return &NVP{ArchBytes: cpu.ArchStateBytes, Margin: 2}
}

// Name implements device.Strategy.
func (n *NVP) Name() string {
	if n.EveryCycle {
		return "nvp-everycycle"
	}
	return "nvp-threshold"
}

// Boot arms the threshold comparator. The every-cycle design announces
// its per-cycle flush mode here, once per power-on — a per-instruction
// event stream would swamp every sink.
func (n *NVP) Boot(d *device.Device) *device.Payload {
	n.armed = true
	if n.EveryCycle {
		d.Trace(obsv.EvTrigger, uint64(obsv.TrigEveryCycle), 0)
	}
	if d.HasCheckpoint() {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigBoot), 0)
	p := device.Payload{ArchBytes: n.ArchBytes}
	return &p
}

// Reset loses the comparator arm state.
func (n *NVP) Reset() { n.armed = false }

// PostStep backs up per the configured mode.
func (n *NVP) PostStep(d *device.Device, _ cpu.Step) *device.Payload {
	p := device.Payload{ArchBytes: n.ArchBytes}
	if n.EveryCycle {
		return &p
	}
	if !n.armed {
		return nil
	}
	if d.StoredEnergy() > n.Margin*d.BackupCost(p) {
		return nil
	}
	n.armed = false
	p.ThenSleep = true
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigThreshold), uint64(p.Bytes()))
	return &p
}

// Horizon distinguishes the two designs. The every-cycle processor
// backs up after literally every instruction, so it opts out of
// batching. The threshold design uses the device's conservative
// brown-out-style bound: the stored energy cannot reach the trigger
// threshold within the returned cycle count (worst active class, no
// harvest credit), so the comparator — which the per-step engine polls
// every instruction — provably stays quiet for the whole batch, and
// near the threshold the horizon collapses to per-step execution.
func (n *NVP) Horizon(d *device.Device) uint64 {
	if n.EveryCycle {
		return 1
	}
	if !n.armed {
		return device.HorizonInfinite
	}
	p := device.Payload{ArchBytes: n.ArchBytes}
	return d.CyclesAboveEnergy(n.Margin * d.BackupCost(p))
}

// ObservedSys reports that the comparator ignores SYS codes.
func (n *NVP) ObservedSys() isa.SysMask { return 0 }

// FinalPayload commits the final architectural state.
func (n *NVP) FinalPayload(*device.Device) device.Payload {
	return device.Payload{ArchBytes: n.ArchBytes}
}

// ReplaySafe distinguishes the two NVP designs: the every-cycle
// processor's replay window is a single instruction whose inputs the
// checkpoint restores, so re-execution is idempotent; the threshold
// design checkpoints just-in-time on a voltage warning and guarantees
// nothing about stores it has not yet saved — an unwarned reset (or a
// torn threshold backup) after nonvolatile stores is unrecoverable.
func (n *NVP) ReplaySafe() bool { return n.EveryCycle }

var _ device.Strategy = (*NVP)(nil)
