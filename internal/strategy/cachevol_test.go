package strategy

import (
	"reflect"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/workload"
)

// cacheCfg is fixedCfg plus a mixed-volatility cache.
func cacheCfg(prog *asm.Program, cyclesOfEnergy float64) device.Config {
	cfg := fixedCfg(prog, cyclesOfEnergy)
	cfg.CacheBlockSize = 32
	cfg.CacheSets = 16
	cfg.CacheWays = 2
	return cfg
}

// TestCacheVolatileEquivalence: the hybrid-cache runtime must commit
// oracle-identical output across FRAM-resident workloads under
// intermittent power.
func TestCacheVolatileEquivalence(t *testing.T) {
	for _, name := range []string{"counter", "ds", "crc", "qsort"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, ok := workload.Get(name)
			if !ok {
				t.Fatal("missing workload")
			}
			opts := workload.Options{Seg: asm.FRAM}
			prog, err := w.Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			d, err := device.New(cacheCfg(prog, 20000), NewCacheVolatile())
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("incomplete after %d periods", len(res.Periods))
			}
			if !reflect.DeepEqual(res.Output, w.Ref(opts)) {
				t.Fatalf("output mismatch: got %v want %v", res.Output, w.Ref(opts))
			}
		})
	}
}

// TestCacheVolatileEquivalenceTranspose covers both Listing 1 orders.
func TestCacheVolatileEquivalenceTranspose(t *testing.T) {
	want := workload.TransposeRef(16)
	for _, order := range []workload.TransposeOrder{workload.LoadMajor, workload.StoreMajor} {
		prog, err := workload.Transpose(order, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		d, err := device.New(cacheCfg(prog, 20000), NewCacheVolatile())
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("%v: completed=%v output=%v", order, res.Completed, res.Output)
		}
	}
}

// TestCacheVolatilePayloadsTrackDirtyBlocks: backup app bytes must be
// multiples of the block size and bounded by cache capacity.
func TestCacheVolatilePayloadsTrackDirtyBlocks(t *testing.T) {
	w, _ := workload.Get("ds")
	prog, err := w.Build(workload.Options{Seg: asm.FRAM})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheCfg(prog, 20000)
	d, err := device.New(cfg, NewCacheVolatile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil || !res.Completed {
		t.Fatalf("run failed: %v", err)
	}
	capacity := cfg.CacheBlockSize * cfg.CacheSets * cfg.CacheWays
	saw := false
	for _, p := range res.Periods {
		for _, ab := range p.AppBytes {
			if ab%cfg.CacheBlockSize != 0 {
				t.Fatalf("payload %d not block-aligned", ab)
			}
			if ab > capacity {
				t.Fatalf("payload %d exceeds cache capacity %d", ab, capacity)
			}
			if ab > 0 {
				saw = true
			}
		}
	}
	if !saw {
		t.Fatal("no dirty payloads observed")
	}
}

// TestCacheVolatileFuzz: random programs with FRAM data under the
// hybrid-cache runtime.
func TestCacheVolatileFuzz(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		prog, err := workload.Random(seed, asm.FRAM)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := device.RunContinuous(prog, 0, 0, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		d, err := device.New(cacheCfg(prog, 20000), NewCacheVolatile())
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("seed %d: completed=%v got %v want %v", seed, res.Completed, res.Output, want)
		}
	}
}
