package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// CacheVolatile is the checkpoint-aware hybrid-cache architecture of
// §VI-A (after Li et al. and Xie et al.): a volatile writeback cache
// sits in front of nonvolatile memory, and every checkpoint must write
// the cache's dirty blocks back — so the backup payload is exactly the
// application's dirty footprint at block granularity, the α_B·τ_B
// quantity whose load/store-locality sensitivity the case study
// analyzes.
//
// Correctness follows the Clank/Ratchet discipline: a store to a word
// read since the last checkpoint cuts the region first, so re-executed
// regions are idempotent. The device must be configured with a cache
// (Config.CacheBlockSize > 0) and the workload's data must live in
// FRAM.
type CacheVolatile struct {
	base
	// WatchdogCycles bounds the region length (default 4000).
	WatchdogCycles uint64
	// ArchBytes per checkpoint (default cpu.ArchStateBytes).
	ArchBytes int

	readFirst  map[uint32]struct{}
	writeFirst map[uint32]struct{}
}

// NewCacheVolatile returns the strategy with defaults.
func NewCacheVolatile() *CacheVolatile {
	c := &CacheVolatile{WatchdogCycles: 4000, ArchBytes: cpu.ArchStateBytes}
	c.Reset()
	return c
}

// Name implements device.Strategy.
func (c *CacheVolatile) Name() string { return "cachevol" }

// CacheBlockSize implements device.CacheSizer: a device assembled
// without an explicit cache geometry gets the 32-byte blocks the §VI-A
// case study uses (with the device's default 16 sets × 2 ways), so the
// catalog entry is runnable everywhere a plain config is.
func (c *CacheVolatile) CacheBlockSize() int { return 32 }

// Reset drops the volatile tracking sets.
func (c *CacheVolatile) Reset() {
	c.readFirst = make(map[uint32]struct{})
	c.writeFirst = make(map[uint32]struct{})
}

func (c *CacheVolatile) payload(d *device.Device) device.Payload {
	app := 0
	if cache := d.Cache(); cache != nil {
		app = cache.DirtyBytes()
	}
	return device.Payload{
		ArchBytes:  c.ArchBytes,
		AppBytes:   app,
		FlushCache: true,
	}
}

// Boot anchors re-execution with an initial checkpoint on cold start.
func (c *CacheVolatile) Boot(d *device.Device) *device.Payload {
	if d.HasCheckpoint() {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigBoot), 0)
	p := c.payload(d)
	return &p
}

// PreStep cuts the region before a write-after-read commits.
func (c *CacheVolatile) PreStep(d *device.Device, _ isa.Instr, acc device.AccessPreview) *device.Payload {
	if !acc.Valid {
		return nil
	}
	word := acc.Addr &^ 3
	if acc.Store {
		if _, ok := c.writeFirst[word]; ok {
			return nil
		}
		if _, ok := c.readFirst[word]; ok {
			d.Trace(obsv.EvTrigger, uint64(obsv.TrigWAR), uint64(word))
			d.Trace(obsv.EvWARFlush, uint64(len(c.readFirst)+len(c.writeFirst)), uint64(obsv.TrigWAR))
			c.Reset()
			c.writeFirst[word] = struct{}{}
			p := c.payload(d)
			return &p
		}
		c.writeFirst[word] = struct{}{}
		return nil
	}
	if _, ok := c.writeFirst[word]; ok {
		return nil
	}
	c.readFirst[word] = struct{}{}
	return nil
}

// PostStep runs the watchdog.
func (c *CacheVolatile) PostStep(d *device.Device, _ cpu.Step) *device.Payload {
	if c.WatchdogCycles == 0 || d.ExecSinceBackup() < c.WatchdogCycles {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigWatchdog), d.ExecSinceBackup())
	d.Trace(obsv.EvWARFlush, uint64(len(c.readFirst)+len(c.writeFirst)), uint64(obsv.TrigWatchdog))
	c.Reset()
	p := c.payload(d)
	return &p
}

// FinalPayload commits the remaining dirty data.
func (c *CacheVolatile) FinalPayload(d *device.Device) device.Payload {
	return c.payload(d)
}

var (
	_ device.Strategy   = (*CacheVolatile)(nil)
	_ device.CacheSizer = (*CacheVolatile)(nil)
)
