package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Chain models the task-and-channel system of Colin & Lucia (§II, §IV-A):
// programs are decomposed into atomic tasks whose outputs flow through
// nonvolatile channels. A task's writes are buffered and commit at the
// task boundary, so the commit payload is exactly the data the task
// produced — far smaller than DINO's full-memory checkpoint — plus the
// task pointer and registers. On a power failure the current task
// restarts from its boundary.
//
// The simulator realizes channel semantics with a store queue: words
// written since the last commit form the channel payload; the restore
// reinstates the committed volatile image, so partial task execution
// never leaks (effectively-once semantics).
type Chain struct {
	base
	dirty map[uint32]struct{} // words written by the in-flight task
}

// NewChain returns a Chain strategy.
func NewChain() *Chain {
	c := &Chain{}
	c.Reset()
	return c
}

// Name implements device.Strategy.
func (c *Chain) Name() string { return "chain" }

// Reset drops the in-flight task's write set.
func (c *Chain) Reset() { c.dirty = make(map[uint32]struct{}) }

// PreStep records the task's writes (the channel payload).
func (c *Chain) PreStep(_ *device.Device, _ isa.Instr, acc device.AccessPreview) *device.Payload {
	if acc.Valid && acc.Store {
		c.dirty[acc.Addr&^3] = struct{}{}
	}
	return nil
}

func (c *Chain) payload() device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  4 * len(c.dirty),
		SaveSRAM:  true,
	}
}

// PostStep commits the channel at every task end.
func (c *Chain) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if !st.HasSys || st.Sys != isa.SysTaskEnd {
		return nil
	}
	p := c.payload()
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigTaskEnd), uint64(p.Bytes()))
	c.Reset()
	return &p
}

// FinalPayload commits whatever the trailing code produced.
func (c *Chain) FinalPayload(*device.Device) device.Payload {
	p := c.payload()
	c.Reset()
	return p
}

// Regions implements device.RegionObserver: Chain commits only at task
// boundary SYS sites, so checkpoint-mode WCEC verdicts apply (see the
// DINO note — a subset of the site set only makes livelock verdicts
// conservative).
func (c *Chain) Regions() device.RegionScheme { return device.RegionCheckpointSites }

var (
	_ device.Strategy       = (*Chain)(nil)
	_ device.RegionObserver = (*Chain)(nil)
)
