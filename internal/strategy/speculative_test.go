package strategy

import (
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/workload"
)

// TestSpeculativeBeatsTimer: converting dead tails into a cheap final
// backup must raise progress over the plain timer at the same τ_B.
func TestSpeculativeBeatsTimer(t *testing.T) {
	// big enough that the run spans many periods at this supply
	w, _ := workload.Get("counter")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	const tauB = 6000 // long intervals: plenty of dead energy to save
	plain := run(t, prog, NewTimer(tauB, 0.1), 20000)
	spec := run(t, prog, NewSpeculative(tauB, 0.1), 20000)
	if !plain.Completed || !spec.Completed {
		t.Fatal("incomplete")
	}
	if spec.MeasuredProgress() <= plain.MeasuredProgress() {
		t.Fatalf("speculative %.4f should beat timer %.4f",
			spec.MeasuredProgress(), plain.MeasuredProgress())
	}
	// and the saved energy shows up as vanished dead cycles
	if spec.Breakdown().Dead >= plain.Breakdown().Dead {
		t.Fatalf("speculative dead %.3g should undercut timer's %.3g",
			spec.Breakdown().Dead, plain.Breakdown().Dead)
	}
}

// TestSpeculativeApproachesBestCaseBound: measured progress must land
// between the model's average-case estimate and its best-case (τ_D = 0)
// ceiling — the Spendthrift bound of §IV-A2.
func TestSpeculativeApproachesBestCaseBound(t *testing.T) {
	w, _ := workload.Get("counter")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	const tauB = 6000
	res := run(t, prog, NewSpeculative(tauB, 0.1), 20000)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	pm := energy.MSP430Power()
	params := core.Params{
		E:       res.MeanSupply(),
		Epsilon: res.MeasuredEpsilon(),
		TauB:    tauB,
		SigmaB:  2,
		OmegaB:  pm.EnergyPerCycle(energy.ClassMem) / 2,
		AB:      float64(cpu.ArchStateBytes),
		AlphaB:  0.1,
		SigmaR:  2,
		OmegaR:  pm.EnergyPerCycle(energy.ClassMem) / 2,
		AR:      float64(cpu.ArchStateBytes) + 0.1*tauB,
	}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	bound := params.SpendthriftBound()
	meas := res.MeasuredProgress()
	if meas > bound+0.02 {
		t.Fatalf("measured %.4f exceeds the Spendthrift bound %.4f", meas, bound)
	}
	avg := params.Progress()
	if meas < avg-0.02 {
		t.Fatalf("measured %.4f below even the average-case estimate %.4f", meas, avg)
	}
}

// TestSpeculativeEquivalence: correctness is untouched by speculation.
func TestSpeculativeEquivalence(t *testing.T) {
	for _, name := range []string{"ds", "crc", "midi"} {
		w, _ := workload.Get(name)
		opts := workload.Options{Seg: asm.SRAM}
		prog, err := w.Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		d, err := device.New(fixedCfg(prog, 20000), NewSpeculative(1500, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s incomplete", name)
		}
		want := w.Ref(opts)
		if len(res.Output) != len(want) {
			t.Fatalf("%s: output length %d want %d", name, len(res.Output), len(want))
		}
		for i := range want {
			if res.Output[i] != want[i] {
				t.Fatalf("%s: output[%d] = %d want %d", name, i, res.Output[i], want[i])
			}
		}
	}
}
