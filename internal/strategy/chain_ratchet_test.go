package strategy

import (
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/stats"
)

// TestChainPayloadTracksTaskWrites: Chain's commit payload is the data
// the task wrote, not the whole memory — its defining advantage over
// DINO.
func TestChainPayloadTracksTaskWrites(t *testing.T) {
	prog := buildWorkload(t, "ds", asm.SRAM)
	chain := NewChain()
	resChain := run(t, prog, chain, 1e9)
	if !resChain.Completed {
		t.Fatal("chain incomplete")
	}
	dino := NewDINO()
	resDino := run(t, prog, dino, 1e9)
	if !resDino.Completed {
		t.Fatal("dino incomplete")
	}
	chainPayload := stats.Mean(resChain.PayloadSamples())
	dinoPayload := stats.Mean(resDino.PayloadSamples())
	if chainPayload >= dinoPayload {
		t.Fatalf("chain payload (%g B) should undercut DINO's full snapshot (%g B)",
			chainPayload, dinoPayload)
	}
	// ds tasks write one histogram word: payload ≈ arch + 4 bytes
	if chainPayload > 90 {
		t.Errorf("chain payload %g B implausibly large for ds", chainPayload)
	}
}

// TestChainProgressBeatsDINO: smaller commits mean more forward
// progress on the same energy.
func TestChainProgressBeatsDINO(t *testing.T) {
	prog := buildWorkload(t, "sense", asm.SRAM)
	resChain := run(t, prog, NewChain(), 20000)
	resDino := run(t, prog, NewDINO(), 20000)
	if !resChain.Completed || !resDino.Completed {
		t.Fatal("incomplete")
	}
	if resChain.MeasuredProgress() <= resDino.MeasuredProgress() {
		t.Fatalf("chain p=%g should beat dino p=%g",
			resChain.MeasuredProgress(), resDino.MeasuredProgress())
	}
}

// TestRatchetViolationDetection mirrors the Clank unit test without
// buffer-capacity effects.
func TestRatchetViolationDetection(t *testing.T) {
	r := NewRatchet()
	load := func(addr uint32) *device.Payload {
		return r.PreStep(nil, isa.Instr{}, device.AccessPreview{Valid: true, Addr: addr, Size: 4})
	}
	store := func(addr uint32) *device.Payload {
		return r.PreStep(nil, isa.Instr{}, device.AccessPreview{Valid: true, Addr: addr, Size: 4, Store: true})
	}
	// fill far past Clank's 8-entry capacity: no forced checkpoints
	for i := 0; i < 100; i++ {
		if p := load(uint32(0x1000 + i*4)); p != nil {
			t.Fatalf("load %d checkpointed without a WAR", i)
		}
	}
	if p := store(0x2000); p != nil {
		t.Fatal("store to fresh word checkpointed")
	}
	if p := store(0x1000); p == nil {
		t.Fatal("write-after-read must checkpoint")
	}
	if r.Violations() != 1 {
		t.Fatalf("violations = %d", r.Violations())
	}
}

// TestRatchetFewerCheckpointsThanClank: without buffer-capacity
// overflows, Ratchet checkpoints no more often than Clank on a
// load-heavy kernel.
func TestRatchetFewerCheckpointsThanClank(t *testing.T) {
	prog := buildWorkload(t, "susan", asm.FRAM)
	resRatchet := run(t, prog, NewRatchet(), 1e9)
	resClank := run(t, prog, NewClank(), 1e9)
	if !resRatchet.Completed || !resClank.Completed {
		t.Fatal("incomplete")
	}
	if resRatchet.Backups() > resClank.Backups() {
		t.Fatalf("ratchet (%d backups) should not exceed clank (%d) on susan",
			resRatchet.Backups(), resClank.Backups())
	}
}

// TestRatchetRegionCap: ALU-only code checkpoints at the section cap.
func TestRatchetRegionCap(t *testing.T) {
	b := asm.New("aluonly")
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 30000)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "top")
	b.Out(isa.R1)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRatchet()
	res := run(t, prog, r, 1e9)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if mean := res.MeanTauB(); mean > float64(r.MaxRegion)+10 {
		t.Fatalf("mean τ_B %g exceeds region cap %d", mean, r.MaxRegion)
	}
	if r.Violations() != 0 {
		t.Fatal("ALU-only code cannot violate idempotency")
	}
}
