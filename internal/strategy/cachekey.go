package strategy

import (
	"fmt"
	"strconv"

	"ehmodel/internal/device"
)

// This file implements device.CacheKeyer for every catalog runtime, so
// their runs are content-addressable in the sweep result store. Each key
// reads the live field values — drivers tune parameters after
// construction (cl.WatchdogCycles = …), and the key must follow.
//
// The contract (see device.CacheKeyer): equal Name() + equal CacheKey()
// ⇒ bit-identical simulation. Keys therefore enumerate every public
// tuning knob; a knob added to a strategy must be added to its key.
// Wrappers holding run-specific state the driver reads back (RegionMeter)
// deliberately do not implement the interface and bypass the store.
// Clank's post-run Stats are not key-relevant — they are outputs, carried
// through the store by the cell's Extras hook.

// fkey renders a float64 with full round-trip precision for key strings.
func fkey(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CacheKey identifies a Timer configuration.
func (t *Timer) CacheKey() string {
	return fmt.Sprintf("timer τB=%d αB=%s sram=%t", t.TauB, fkey(t.AlphaB), t.SnapshotSRAM)
}

// CacheKey identifies a Speculative configuration.
func (s *Speculative) CacheKey() string {
	return fmt.Sprintf("speculative τB=%d αB=%s margin=%s check=%d",
		s.TauB, fkey(s.AlphaB), fkey(s.Margin), s.CheckPeriod)
}

// CacheKey identifies a Hibernus configuration.
func (h *Hibernus) CacheKey() string {
	return fmt.Sprintf("hibernus margin=%s check=%d", fkey(h.Margin), h.CheckPeriod)
}

// CacheKey identifies a Mementos configuration.
func (m *Mementos) CacheKey() string {
	return fmt.Sprintf("mementos margin=%s frac=%s gap=%d",
		fkey(m.Margin), fkey(m.SupplyFrac), m.MinGapCycles)
}

// CacheKey identifies DINO (parameter-free).
func (dn *DINO) CacheKey() string { return "dino" }

// CacheKey identifies Chain (parameter-free).
func (c *Chain) CacheKey() string { return "chain" }

// CacheKey identifies an Alpaca configuration. An instance with commit
// recording enabled opts out: the driver reads the live commit log after
// the run, which a cache hit cannot supply.
func (a *Alpaca) CacheKey() string {
	if a.recordCommits {
		return ""
	}
	return fmt.Sprintf("alpaca naive=%t coalesce=%d", a.naive, a.Coalesce)
}

// CacheKey identifies a Clank configuration. Post-run Stats are outputs,
// not parameters; cells that need them carry them via Extras.
func (c *Clank) CacheKey() string {
	return fmt.Sprintf("clank rf=%d wf=%d wd=%d arch=%d",
		c.ReadFirstEntries, c.WriteFirstEntries, c.WatchdogCycles, c.ArchBytes)
}

// CacheKey identifies a Ratchet configuration.
func (r *Ratchet) CacheKey() string {
	return fmt.Sprintf("ratchet region=%d arch=%d", r.MaxRegion, r.ArchBytes)
}

// CacheKey identifies an NVP configuration.
func (n *NVP) CacheKey() string {
	return fmt.Sprintf("nvp every=%t arch=%d margin=%s", n.EveryCycle, n.ArchBytes, fkey(n.Margin))
}

// CacheKey identifies a MixedVolatility configuration.
func (m *MixedVolatility) CacheKey() string {
	return fmt.Sprintf("mixvol wd=%d", m.WatchdogCycles)
}

// CacheKey identifies a CacheVolatile configuration.
func (c *CacheVolatile) CacheKey() string {
	return fmt.Sprintf("cachevol wd=%d arch=%d", c.WatchdogCycles, c.ArchBytes)
}

// CacheKey identifies a SenseCommit wrapper by its inner runtime's key;
// an unkeyable inner keeps the wrapper unkeyable.
func (s *SenseCommit) CacheKey() string {
	ck, ok := s.inner.(device.CacheKeyer)
	if !ok {
		return ""
	}
	inner := ck.CacheKey()
	if inner == "" {
		return ""
	}
	return "sense(" + inner + ")"
}
