package strategy

import (
	"reflect"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// allCombos exercises the shared catalog: every strategy under its
// default parameters with the data placement its memory model requires.
func allCombos() []Spec { return Catalog() }

// fixedCfg builds a bench-supply device config with the given per-period
// energy expressed in ALU cycles.
func fixedCfg(prog *asm.Program, cyclesOfEnergy float64) device.Config {
	pm := energy.MSP430Power()
	e := cyclesOfEnergy * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	return device.Config{
		Prog:       prog,
		Power:      pm,
		CapC:       capC,
		CapVMax:    vmax,
		VOn:        von,
		VOff:       voff,
		MaxPeriods: 20000,
		MaxCycles:  2_000_000_000,
	}
}

// TestEquivalenceAcrossStrategies is the central correctness theorem of
// the simulator: for every workload × strategy, the committed output of
// an aggressively intermittent run equals the continuous-run oracle.
func TestEquivalenceAcrossStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is slow")
	}
	for _, c := range allCombos() {
		for _, w := range workload.All() {
			c, w := c, w
			t.Run(c.Name+"/"+w.Name, func(t *testing.T) {
				t.Parallel()
				opts := workload.Options{Seg: c.Seg}
				prog, err := w.Build(opts)
				if err != nil {
					t.Fatal(err)
				}
				// Periods must exceed Clank's 8000-cycle watchdog, or a
				// workload forming one unbounded idempotent region (e.g.
				// counter) can livelock — a real Clank deployment
				// constraint, not a simulator artifact.
				d, err := device.New(fixedCfg(prog, 20000), c.New())
				if err != nil {
					t.Fatal(err)
				}
				res, err := d.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !res.Completed {
					t.Fatalf("did not complete: %d periods, %d cycles, %d backups",
						len(res.Periods), res.TotalCycles, res.Backups())
				}
				want := w.Ref(opts)
				if !reflect.DeepEqual(res.Output, want) {
					t.Fatalf("output mismatch after %d periods:\n got %v\nwant %v",
						len(res.Periods), res.Output, want)
				}
				if p := res.MeasuredProgress(); p <= 0 || p > 1 {
					t.Errorf("progress %g out of range", p)
				}
			})
		}
	}
}

// TestEquivalenceUnderHarvestedPower repeats the equivalence check with
// a real harvester driving the supply (the §V-B setup) for a workload
// sample on Clank.
func TestEquivalenceUnderHarvestedPower(t *testing.T) {
	for _, kind := range trace.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			w, _ := workload.Get("counter")
			opts := workload.Options{Seg: asm.FRAM}
			prog, err := w.Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.Generate(kind, 20, 1e-3, 42)
			h, err := energy.NewHarvester(tr, 3000, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fixedCfg(prog, 6000)
			cfg.Harvester = h
			d, err := device.New(cfg, NewClank())
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("did not complete under %v trace: %d periods", kind, len(res.Periods))
			}
			if !reflect.DeepEqual(res.Output, w.Ref(opts)) {
				t.Fatalf("output mismatch: %v", res.Output)
			}
			if res.TimeS <= 0 {
				t.Error("no simulated time elapsed")
			}
		})
	}
}

// TestStrategyNames ensures unique, stable names (results are keyed on
// them).
func TestStrategyNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range allCombos() {
		n := c.New().Name()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate strategy name %q", n)
		}
		seen[n] = true
	}
}
