package strategy

import (
	"ehmodel/internal/analyze"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
)

// RegionObs is the dynamic evidence RegionMeter gathers for one atomic
// region: how often the region was traversed entry-to-commit, and the
// costliest observed traversal. Cross-validation compares MaxCycles /
// MaxEnergy against the static WCEC bound for the same entry.
type RegionObs struct {
	Traversals uint64
	MaxCycles  uint64
	MaxEnergy  float64
}

// RegionMeter wraps a runtime strategy and measures the compute cost of
// every *static region traversal* — the execution from a region entry
// of the WCEC table to the commit point that ends the region (executing
// a boundary SYS, or arriving at a commit-before cut PC). Traversals,
// not commits: a runtime may decline to commit at a crossing (Mementos'
// voltage gate, Alpaca's coalescing) without changing where the static
// region ends, so metering the crossings keeps the dynamic measurement
// comparable to the per-region static bound on every runtime.
//
// The meter is pure observation: it never requests a backup of its own,
// delegates every Strategy call to the wrapped runtime verbatim, and
// returns Horizon 1 — the contract's per-step opt-out — so it sees
// every instruction on both engines identically. Traversals that start
// anywhere other than a known static entry (a restore into the middle
// of a region resumes at the interrupted PC) are not measured: the
// meter idles until the next boundary crossing opens a region at a
// known entry. Partial traversals cut short by a brown-out or by the
// final halt are discarded, which can only under-report — exactly the
// right direction for checking dynamic ≤ static.
type RegionMeter struct {
	inner device.Strategy

	sysBounds isa.SysMask
	cuts      map[uint32]struct{}
	entries   map[uint32]struct{}
	epc       [energy.NumClasses]float64

	measuring bool
	entry     uint32
	cyc       uint64
	e         float64

	obs map[uint32]*RegionObs
}

// NewRegionMeter wraps inner with a traversal meter for the regions of
// the given WCEC table, so the measured entries and cut points are
// consistent with the static analysis by construction.
func NewRegionMeter(inner device.Strategy, t *analyze.WCECTable) *RegionMeter {
	m := &RegionMeter{
		inner:   inner,
		cuts:    make(map[uint32]struct{}),
		entries: make(map[uint32]struct{}),
		obs:     make(map[uint32]*RegionObs),
	}
	if t.Mode == analyze.WCECTask {
		m.sysBounds = isa.MaskOf(isa.SysTaskEnd)
	} else {
		m.sysBounds = isa.MaskOf(analyze.DefaultBoundaries()...)
	}
	for i := range t.Regions {
		r := &t.Regions[i]
		m.entries[uint32(r.Entry)] = struct{}{}
		if r.Kind == analyze.TaskWARCut {
			m.cuts[uint32(r.Entry)] = struct{}{}
		}
	}
	return m
}

// Observed returns the per-region evidence keyed by entry PC.
func (m *RegionMeter) Observed() map[uint32]RegionObs {
	out := make(map[uint32]RegionObs, len(m.obs))
	for pc, o := range m.obs {
		out[pc] = *o
	}
	return out
}

func (m *RegionMeter) start(pc uint32) {
	m.measuring = true
	m.entry = pc
	m.cyc, m.e = 0, 0
}

// close books the completed traversal against its entry.
func (m *RegionMeter) close() {
	o := m.obs[m.entry]
	if o == nil {
		o = &RegionObs{}
		m.obs[m.entry] = o
	}
	o.Traversals++
	if m.cyc > o.MaxCycles {
		o.MaxCycles = m.cyc
	}
	if m.e > o.MaxEnergy {
		o.MaxEnergy = m.e
	}
	m.cyc, m.e = 0, 0
}

// Name implements device.Strategy.
func (m *RegionMeter) Name() string { return m.inner.Name() + "+meter" }

// Attach caches the power model's per-class cycle energy and attaches
// the wrapped runtime.
func (m *RegionMeter) Attach(d *device.Device) {
	pm := d.Cfg().Power
	for c := 0; c < energy.NumClasses; c++ {
		m.epc[c] = pm.EnergyPerCycle(energy.InstrClass(c))
	}
	m.inner.Attach(d)
}

// Boot opens a traversal when the period resumes at a known static
// entry; a mid-region restore leaves the meter idle until the next
// boundary crossing.
func (m *RegionMeter) Boot(d *device.Device) *device.Payload {
	p := m.inner.Boot(d)
	if _, ok := m.entries[d.PC()]; ok {
		m.start(d.PC())
	} else {
		m.measuring = false
		m.cyc, m.e = 0, 0
	}
	return p
}

// PreStep closes the traversal at commit-before cut PCs — the edge into
// the cut is already accumulated, the cut instruction belongs to the
// next region — and opens the next one at the cut.
func (m *RegionMeter) PreStep(d *device.Device, in isa.Instr, acc device.AccessPreview) *device.Payload {
	pc := d.PC()
	if m.measuring {
		if _, cut := m.cuts[pc]; cut && m.cyc > 0 {
			m.close()
			m.entry = pc
		}
	} else if _, ok := m.entries[pc]; ok {
		m.start(pc)
	}
	return m.inner.PreStep(d, in, acc)
}

// PostStep accumulates the executed instruction and closes the
// traversal after a boundary SYS (whose own cost the static bound
// includes too).
func (m *RegionMeter) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	atBound := st.HasSys && m.sysBounds.Has(st.Sys)
	if m.measuring {
		ci := st.Class
		if ci < 0 || int(ci) >= energy.NumClasses {
			ci = energy.ClassALU
		}
		m.cyc += st.Cycles
		m.e += float64(st.Cycles) * m.epc[ci]
		if atBound {
			m.close()
			if _, ok := m.entries[d.PC()]; ok {
				m.entry = d.PC()
			} else {
				m.measuring = false
			}
		}
	} else if atBound {
		if _, ok := m.entries[d.PC()]; ok {
			m.start(d.PC())
		}
	}
	return m.inner.PostStep(d, st)
}

// FinalPayload closes the halting traversal (short of the halt
// instruction's own cycle, which PostStep never sees — under-reporting
// is the sound direction) and delegates the final commit.
func (m *RegionMeter) FinalPayload(d *device.Device) device.Payload {
	if m.measuring && m.cyc > 0 {
		m.close()
		m.measuring = false
	}
	return m.inner.FinalPayload(d)
}

// Horizon opts out of batching: the meter needs the exact per-step
// protocol so every instruction's class and cycles flow through
// PostStep on both engines identically.
func (m *RegionMeter) Horizon(*device.Device) uint64 { return 1 }

// ReplaySafe delegates to the wrapped runtime.
func (m *RegionMeter) ReplaySafe() bool { return m.inner.ReplaySafe() }

// Reset discards the partial traversal lost to the power failure and
// resets the wrapped runtime.
func (m *RegionMeter) Reset() {
	m.measuring = false
	m.cyc, m.e = 0, 0
	m.inner.Reset()
}

var _ device.Strategy = (*RegionMeter)(nil)
