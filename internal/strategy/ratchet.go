package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// Ratchet models the compiler-only system of Van Der Woude & Hicks
// (§II): the compiler decomposes the program into idempotent sections
// and inserts a register checkpoint before every write-after-read
// memory dependence, with a section-length cap so re-execution stays
// bounded. Unlike Clank there is no tracking hardware — the compiler's
// static analysis is conservative but unbounded, which the simulator
// realizes as unbounded dynamic read/write sets (a static analysis
// would checkpoint at least this often).
//
// Workloads run under Ratchet must keep mutable data in FRAM.
type Ratchet struct {
	base
	// MaxRegion caps idempotent-section length in executed cycles
	// (default 4000).
	MaxRegion uint64
	// ArchBytes is the register-checkpoint size (default
	// cpu.ArchStateBytes).
	ArchBytes int

	readFirst  map[uint32]struct{}
	writeFirst map[uint32]struct{}
	violations uint64
}

// NewRatchet returns a Ratchet strategy with defaults.
func NewRatchet() *Ratchet {
	r := &Ratchet{MaxRegion: 4000, ArchBytes: cpu.ArchStateBytes}
	r.Reset()
	return r
}

// Name implements device.Strategy.
func (r *Ratchet) Name() string { return "ratchet" }

// Violations counts WAR-driven checkpoints across the run.
func (r *Ratchet) Violations() uint64 { return r.violations }

// Reset drops the section's access sets.
func (r *Ratchet) Reset() {
	r.readFirst = make(map[uint32]struct{})
	r.writeFirst = make(map[uint32]struct{})
}

func (r *Ratchet) payload() device.Payload {
	return device.Payload{ArchBytes: r.ArchBytes}
}

// Boot checkpoints once on a cold start so re-execution is anchored.
func (r *Ratchet) Boot(d *device.Device) *device.Payload {
	if d.HasCheckpoint() {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigBoot), 0)
	p := r.payload()
	return &p
}

// PreStep cuts the section before a write-after-read commits.
func (r *Ratchet) PreStep(d *device.Device, _ isa.Instr, acc device.AccessPreview) *device.Payload {
	if !acc.Valid {
		return nil
	}
	word := acc.Addr &^ 3
	if acc.Store {
		if _, ok := r.writeFirst[word]; ok {
			return nil
		}
		if _, ok := r.readFirst[word]; ok {
			r.violations++
			d.Trace(obsv.EvTrigger, uint64(obsv.TrigWAR), uint64(word))
			d.Trace(obsv.EvWARFlush, uint64(len(r.readFirst)+len(r.writeFirst)), uint64(obsv.TrigWAR))
			r.Reset()
			r.writeFirst[word] = struct{}{}
			p := r.payload()
			return &p
		}
		r.writeFirst[word] = struct{}{}
		return nil
	}
	if _, ok := r.writeFirst[word]; ok {
		return nil
	}
	r.readFirst[word] = struct{}{}
	return nil
}

// PostStep enforces the compiler's section-length cap.
func (r *Ratchet) PostStep(d *device.Device, _ cpu.Step) *device.Payload {
	if r.MaxRegion == 0 || d.ExecSinceBackup() < r.MaxRegion {
		return nil
	}
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigWatchdog), d.ExecSinceBackup())
	d.Trace(obsv.EvWARFlush, uint64(len(r.readFirst)+len(r.writeFirst)), uint64(obsv.TrigWatchdog))
	r.Reset()
	p := r.payload()
	return &p
}

// FinalPayload commits the registers at halt.
func (r *Ratchet) FinalPayload(*device.Device) device.Payload {
	return r.payload()
}

var _ device.Strategy = (*Ratchet)(nil)
