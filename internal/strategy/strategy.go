// Package strategy implements the backup/restore runtimes the paper
// validates and characterizes, as policies plugged into the device
// simulator:
//
//   - Timer: fixed-interval multi-backup (the Fig. 5 validation setup).
//   - Speculative: a timer that defers the final backup to a
//     low-voltage comparator, trading restore risk for backup count.
//   - Hibernus: single-backup at a low-voltage threshold [Balsamo'15].
//   - Mementos: voltage-gated checkpoints at program sites [Ransford'11].
//   - DINO: task-boundary backups [Lucia'15].
//   - Chain: task-boundary commits of store-queue channel payloads
//     [Colin & Lucia'16].
//   - Alpaca: checkpoint-free task execution with write privatization
//     and atomic commits at statically derived task boundaries
//     [Maeng'17]; the boundaries come from the analyze.Tasks WAR-cut
//     decomposition pass. An alpaca-naive variant with a non-atomic
//     in-place commit exists outside the catalog as the adversarial
//     auditor's known-bad target.
//   - Clank: idempotency-violation checkpoints with read-first/
//     write-first buffers and a watchdog [Hicks'17].
//   - Ratchet: compiler-style WAR-cut checkpointing without hardware
//     buffers [Van Der Woude'16].
//   - NVP: a nonvolatile processor backing up every cycle or at a
//     voltage threshold [Ma'15].
//   - MixedVolatility: the hypothetical store-queue processor of §V-B
//     used to characterize α_B (Fig. 10).
//   - CacheVolatile: a volatile cache over nonvolatile main memory
//     whose write-backs are gated by Clank-style WAR tracking.
//   - SenseCommit (the +sense wrapper): forces a commit after every
//     SENSE so committed inputs cannot be re-observed by a replay.
//
// Strategies that keep mutable data in volatile SRAM (Timer,
// Speculative, Hibernus, Mementos, DINO, Chain, Alpaca,
// MixedVolatility) snapshot SRAM in their checkpoints; Clank, Ratchet,
// NVP and CacheVolatile assume nonvolatile main memory, so workloads
// run under them must place their data in FRAM.
package strategy

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
)

// Spec names a runnable strategy configuration: a constructor with
// default parameters and the data segment its memory model requires.
// The catalog is shared by the integration tests, the crash-consistency
// auditor and the CLI so every runtime's restore path is exercised by
// all of them.
type Spec struct {
	Name string
	Seg  asm.Segment
	New  func() device.Strategy
}

// Catalog lists every strategy with its default parameters.
func Catalog() []Spec {
	return []Spec{
		{"timer", asm.SRAM, func() device.Strategy { return NewTimer(1000, 0.1) }},
		{"speculative", asm.SRAM, func() device.Strategy { return NewSpeculative(1000, 0.1) }},
		{"hibernus", asm.SRAM, func() device.Strategy { return NewHibernus() }},
		{"mementos", asm.SRAM, func() device.Strategy { return NewMementos() }},
		{"dino", asm.SRAM, func() device.Strategy { return NewDINO() }},
		{"mixvol", asm.SRAM, func() device.Strategy { return NewMixedVolatility(1000) }},
		{"chain", asm.SRAM, func() device.Strategy { return NewChain() }},
		{"alpaca", asm.SRAM, func() device.Strategy { return NewAlpaca() }},
		{"clank", asm.FRAM, func() device.Strategy { return NewClank() }},
		{"ratchet", asm.FRAM, func() device.Strategy { return NewRatchet() }},
		{"nvp-everycycle", asm.FRAM, func() device.Strategy { return NewNVPEveryCycle() }},
		{"nvp-threshold", asm.FRAM, func() device.Strategy { return NewNVPThreshold() }},
		{"cachevol", asm.FRAM, func() device.Strategy { return NewCacheVolatile() }},
	}
}

// extras are runnable by name but excluded from the catalog — and so
// from the clean-strategy matrices — because they are deliberately
// broken audit targets.
func extras() []Spec {
	return []Spec{
		{"alpaca-naive", asm.SRAM, func() device.Strategy { return NewAlpacaNaive() }},
	}
}

// Lookup finds a catalog entry (or a non-catalog extra, such as the
// known-bad alpaca-naive) by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range extras() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// base provides no-op hook implementations strategies embed.
type base struct{}

func (base) Attach(*device.Device)                                                   {}
func (base) Boot(*device.Device) *device.Payload                                     { return nil }
func (base) PreStep(*device.Device, isa.Instr, device.AccessPreview) *device.Payload { return nil }
func (base) PostStep(*device.Device, cpu.Step) *device.Payload                       { return nil }
func (base) ReplaySafe() bool                                                        { return true }
func (base) Reset()                                                                  {}

// Horizon defaults to 1: embedders keep the exact per-instruction
// PreStep/PostStep protocol unless they override it with a real bound.
func (base) Horizon(*device.Device) uint64 { return 1 }

// fullPayload is the checkpoint of SRAM-resident systems: architectural
// state plus the program's volatile data footprint.
func fullPayload(d *device.Device) device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  d.SRAMFootprint(),
		SaveSRAM:  true,
	}
}
