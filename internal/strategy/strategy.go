// Package strategy implements the backup/restore runtimes the paper
// validates and characterizes, as policies plugged into the device
// simulator:
//
//   - Timer: fixed-interval multi-backup (the Fig. 5 validation setup).
//   - Hibernus: single-backup at a low-voltage threshold [Balsamo'15].
//   - Mementos: voltage-gated checkpoints at program sites [Ransford'11].
//   - DINO: task-boundary backups [Lucia'15].
//   - Clank: idempotency-violation checkpoints with read-first/
//     write-first buffers and a watchdog [Hicks'17].
//   - NVP: a nonvolatile processor backing up every cycle [Ma'15].
//   - MixedVolatility: the hypothetical store-queue processor of §V-B
//     used to characterize α_B (Fig. 10).
//
// Strategies that keep mutable data in volatile SRAM (Timer, Hibernus,
// Mementos, DINO, MixedVolatility) snapshot SRAM in their checkpoints;
// Clank and NVP assume nonvolatile main memory, so workloads run under
// them must place their data in FRAM.
package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
)

// base provides no-op hook implementations strategies embed.
type base struct{}

func (base) Attach(*device.Device)                                                   {}
func (base) Boot(*device.Device) *device.Payload                                     { return nil }
func (base) PreStep(*device.Device, isa.Instr, device.AccessPreview) *device.Payload { return nil }
func (base) PostStep(*device.Device, cpu.Step) *device.Payload                       { return nil }
func (base) Reset()                                                                  {}

// fullPayload is the checkpoint of SRAM-resident systems: architectural
// state plus the program's volatile data footprint.
func fullPayload(d *device.Device) device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  d.SRAMFootprint(),
		SaveSRAM:  true,
	}
}
