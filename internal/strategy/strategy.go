// Package strategy implements the backup/restore runtimes the paper
// validates and characterizes, as policies plugged into the device
// simulator:
//
//   - Timer: fixed-interval multi-backup (the Fig. 5 validation setup).
//   - Hibernus: single-backup at a low-voltage threshold [Balsamo'15].
//   - Mementos: voltage-gated checkpoints at program sites [Ransford'11].
//   - DINO: task-boundary backups [Lucia'15].
//   - Clank: idempotency-violation checkpoints with read-first/
//     write-first buffers and a watchdog [Hicks'17].
//   - NVP: a nonvolatile processor backing up every cycle [Ma'15].
//   - MixedVolatility: the hypothetical store-queue processor of §V-B
//     used to characterize α_B (Fig. 10).
//
// Strategies that keep mutable data in volatile SRAM (Timer, Hibernus,
// Mementos, DINO, MixedVolatility) snapshot SRAM in their checkpoints;
// Clank and NVP assume nonvolatile main memory, so workloads run under
// them must place their data in FRAM.
package strategy

import (
	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
)

// Spec names a runnable strategy configuration: a constructor with
// default parameters and the data segment its memory model requires.
// The catalog is shared by the integration tests, the crash-consistency
// auditor and the CLI so every runtime's restore path is exercised by
// all of them.
type Spec struct {
	Name string
	Seg  asm.Segment
	New  func() device.Strategy
}

// Catalog lists every strategy with its default parameters.
func Catalog() []Spec {
	return []Spec{
		{"timer", asm.SRAM, func() device.Strategy { return NewTimer(1000, 0.1) }},
		{"speculative", asm.SRAM, func() device.Strategy { return NewSpeculative(1000, 0.1) }},
		{"hibernus", asm.SRAM, func() device.Strategy { return NewHibernus() }},
		{"mementos", asm.SRAM, func() device.Strategy { return NewMementos() }},
		{"dino", asm.SRAM, func() device.Strategy { return NewDINO() }},
		{"mixvol", asm.SRAM, func() device.Strategy { return NewMixedVolatility(1000) }},
		{"chain", asm.SRAM, func() device.Strategy { return NewChain() }},
		{"clank", asm.FRAM, func() device.Strategy { return NewClank() }},
		{"ratchet", asm.FRAM, func() device.Strategy { return NewRatchet() }},
		{"nvp-everycycle", asm.FRAM, func() device.Strategy { return NewNVPEveryCycle() }},
		{"nvp-threshold", asm.FRAM, func() device.Strategy { return NewNVPThreshold() }},
	}
}

// Lookup finds a catalog entry by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// base provides no-op hook implementations strategies embed.
type base struct{}

func (base) Attach(*device.Device)                                                   {}
func (base) Boot(*device.Device) *device.Payload                                     { return nil }
func (base) PreStep(*device.Device, isa.Instr, device.AccessPreview) *device.Payload { return nil }
func (base) PostStep(*device.Device, cpu.Step) *device.Payload                       { return nil }
func (base) ReplaySafe() bool                                                        { return true }
func (base) Reset()                                                                  {}

// Horizon defaults to 1: embedders keep the exact per-instruction
// PreStep/PostStep protocol unless they override it with a real bound.
func (base) Horizon(*device.Device) uint64 { return 1 }

// fullPayload is the checkpoint of SRAM-resident systems: architectural
// state plus the program's volatile data footprint.
func fullPayload(d *device.Device) device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  d.SRAMFootprint(),
		SaveSRAM:  true,
	}
}
