package strategy

import (
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/obsv"
)

// Speculative is the §IV-A2 design point: a multi-backup timer that
// additionally watches the supply and, when only a safety margin's
// worth of energy remains, takes one final backup and sleeps — trading
// up to τ_B/2 of dead execution for a small idle tail. Its progress
// approaches the model's best-case (τ_D = 0) bound, which the paper
// identifies as the ceiling for speculative schedulers like
// Spendthrift.
type Speculative struct {
	base
	// TauB is the periodic backup interval in executed cycles.
	TauB uint64
	// AlphaB is application state per cycle (payload sizing, as Timer).
	AlphaB float64
	// Margin scales the final-backup threshold (default 1.3 — just
	// enough headroom to finish the backup).
	Margin float64
	// CheckPeriod is the supply-sampling interval in cycles (default 16).
	CheckPeriod uint64

	sinceCheck uint64
	armed      bool
}

// NewSpeculative returns the strategy with defaults.
func NewSpeculative(tauB uint64, alphaB float64) *Speculative {
	return &Speculative{TauB: tauB, AlphaB: alphaB, Margin: 1.3, CheckPeriod: 16}
}

// Name implements device.Strategy.
func (s *Speculative) Name() string { return "speculative" }

// Boot arms the end-of-period monitor.
func (s *Speculative) Boot(*device.Device) *device.Payload {
	s.armed = true
	s.sinceCheck = 0
	return nil
}

// Reset loses the monitor state.
func (s *Speculative) Reset() {
	s.armed = false
	s.sinceCheck = 0
}

func (s *Speculative) payload(d *device.Device, cycles uint64) device.Payload {
	return device.Payload{
		ArchBytes: cpu.ArchStateBytes,
		AppBytes:  int(s.AlphaB * float64(cycles)),
		SaveSRAM:  true,
	}
}

// PostStep fires periodic backups and the speculative final one.
func (s *Speculative) PostStep(d *device.Device, st cpu.Step) *device.Payload {
	if s.TauB > 0 && d.ExecSinceBackup() >= s.TauB {
		d.Trace(obsv.EvTrigger, uint64(obsv.TrigTimer), d.ExecSinceBackup())
		p := s.payload(d, d.ExecSinceBackup())
		return &p
	}
	if !s.armed {
		return nil
	}
	s.sinceCheck += st.Cycles
	if s.CheckPeriod > 0 && s.sinceCheck < s.CheckPeriod {
		return nil
	}
	s.sinceCheck = 0
	p := s.payload(d, d.ExecSinceBackup())
	if d.StoredEnergy() > s.Margin*d.BackupCost(p) {
		return nil
	}
	s.armed = false
	p.ThenSleep = true
	d.Trace(obsv.EvTrigger, uint64(obsv.TrigThreshold), uint64(p.Bytes()))
	return &p
}

// Horizon stays at 1 (per-step) deliberately: PostStep returns on the
// TauB branch *before* accumulating sinceCheck, so the comparator's
// sampling phase depends on which individual instructions coincide with
// watchdog firings. A batch would accumulate the whole window into
// sinceCheck and shift that phase, diverging from the per-step engine.
func (s *Speculative) Horizon(*device.Device) uint64 { return 1 }

// FinalPayload commits the remaining interval at halt.
func (s *Speculative) FinalPayload(d *device.Device) device.Payload {
	return s.payload(d, d.ExecSinceBackup())
}

var _ device.Strategy = (*Speculative)(nil)
