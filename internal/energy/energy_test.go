package energy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ehmodel/internal/trace"
)

func TestNewCapacitorValidation(t *testing.T) {
	if _, err := NewCapacitor(0, 5, 1); err == nil {
		t.Error("zero capacitance accepted")
	}
	if _, err := NewCapacitor(1e-6, 0, 0); err == nil {
		t.Error("zero rated voltage accepted")
	}
	if _, err := NewCapacitor(1e-6, 5, 6); err == nil {
		t.Error("initial voltage above rating accepted")
	}
	if _, err := NewCapacitor(1e-6, 5, -1); err == nil {
		t.Error("negative initial voltage accepted")
	}
}

func TestCapacitorEnergy(t *testing.T) {
	c, err := NewCapacitor(100e-6, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 100e-6 * 9
	if got := c.Energy(); math.Abs(got-want) > 1e-15 {
		t.Errorf("E = %g, want %g", got, want)
	}
}

func TestCapacitorStoreDraw(t *testing.T) {
	c, _ := NewCapacitor(100e-6, 5, 0)
	in := c.Store(1e-3)
	if in != 1e-3 {
		t.Errorf("absorbed %g, want all", in)
	}
	if got := c.Energy(); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("stored energy %g", got)
	}
	if !c.Draw(0.5e-3) {
		t.Error("draw within budget should succeed")
	}
	if c.Draw(10) {
		t.Error("overdraw should report failure")
	}
	if c.Voltage() != 0 {
		t.Error("overdraw should empty the capacitor")
	}
}

func TestCapacitorClampsAtRating(t *testing.T) {
	c, _ := NewCapacitor(100e-6, 5, 4.9)
	absorbed := c.Store(1) // way more than the headroom
	if c.Voltage() != 5 {
		t.Errorf("voltage %g, want clamp at 5", c.Voltage())
	}
	headroom := 0.5 * 100e-6 * (25 - 4.9*4.9)
	if math.Abs(absorbed-headroom) > 1e-12 {
		t.Errorf("absorbed %g, want headroom %g", absorbed, headroom)
	}
}

func TestCapacitorUsableEnergy(t *testing.T) {
	c, _ := NewCapacitor(100e-6, 5, 0)
	want := 0.5 * 100e-6 * (2.99*2.99 - 1.88*1.88)
	if got := c.UsableEnergy(2.99, 1.88); math.Abs(got-want) > 1e-15 {
		t.Errorf("usable = %g, want %g", got, want)
	}
}

func TestSetVoltageClamps(t *testing.T) {
	c, _ := NewCapacitor(1e-6, 5, 0)
	c.SetVoltage(99)
	if c.Voltage() != 5 {
		t.Errorf("clamp high: %g", c.Voltage())
	}
	c.SetVoltage(-1)
	if c.Voltage() != 0 {
		t.Errorf("clamp low: %g", c.Voltage())
	}
}

// Property: a Store followed by a Draw of the same amount restores the
// stored energy (within float tolerance), provided no clamping occurs.
func TestPropCapacitorConservation(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Float64() * 2)    // v0 in [0,2)
			vals[1] = reflect.ValueOf(r.Float64() * 1e-4) // j well below headroom
		},
	}
	f := func(v0, j float64) bool {
		c, err := NewCapacitor(100e-6, 10, v0)
		if err != nil {
			return true
		}
		e0 := c.Energy()
		c.Store(j)
		if !c.Draw(j) {
			return true // drained to zero: allowed when e0 ≈ 0
		}
		return math.Abs(c.Energy()-e0) < 1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHarvesterValidation(t *testing.T) {
	src := trace.Constant(3, 1, 0.01)
	if _, err := NewHarvester(nil, 1, 1); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewHarvester(src, 0, 1); err == nil {
		t.Error("zero resistance accepted")
	}
	if _, err := NewHarvester(src, 1, 0); err == nil {
		t.Error("zero efficiency accepted")
	}
	if _, err := NewHarvester(src, 1, 1.5); err == nil {
		t.Error("efficiency above 1 accepted")
	}
}

func TestHarvesterPower(t *testing.T) {
	src := trace.Constant(2, 1, 0.01)
	h, err := NewHarvester(src, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 4 / 100
	if got := h.PowerAt(0.5); math.Abs(got-want) > 1e-15 {
		t.Errorf("P = %g, want %g", got, want)
	}
	if got := h.EnergyOver(0, 0.1); math.Abs(got-want*0.1) > 1e-15 {
		t.Errorf("E = %g, want %g", got, want*0.1)
	}
}

func TestHarvesterZeroVoltage(t *testing.T) {
	src := trace.Constant(0, 1, 0.01)
	h, _ := NewHarvester(src, 100, 1)
	if got := h.PowerAt(0.3); got != 0 {
		t.Errorf("power at 0 V = %g", got)
	}
}

func TestMSP430PowerNumbers(t *testing.T) {
	pm := MSP430Power()
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1.2 mW @16 MHz = 75 pJ/cycle for memory ops
	if got := pm.EnergyPerCycle(ClassMem); math.Abs(got-75e-12) > 1e-15 {
		t.Errorf("mem energy/cycle = %g, want 75 pJ", got)
	}
	// 1.05 mW @16 MHz = 65.625 pJ/cycle
	if got := pm.EnergyPerCycle(ClassALU); math.Abs(got-65.625e-12) > 1e-15 {
		t.Errorf("alu energy/cycle = %g, want 65.625 pJ", got)
	}
	if got := pm.CyclePeriod(); math.Abs(got-62.5e-9) > 1e-18 {
		t.Errorf("cycle period = %g, want 62.5 ns", got)
	}
}

func TestCortexM0Power(t *testing.T) {
	pm := CortexM0Power()
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	if pm.EnergyPerCycle(ClassMem) <= pm.EnergyPerCycle(ClassALU) {
		t.Error("memory ops should cost more than ALU ops")
	}
	if pm.EnergyPerCycle(ClassIdle) >= pm.EnergyPerCycle(ClassALU) {
		t.Error("idle should cost less than active")
	}
}

func TestEnergyPerCycleOutOfRange(t *testing.T) {
	pm := MSP430Power()
	if got := pm.EnergyPerCycle(InstrClass(99)); got != pm.EnergyPerCycle(ClassALU) {
		t.Errorf("out-of-range class should default to ALU, got %g", got)
	}
}

func TestPowerModelValidate(t *testing.T) {
	pm := MSP430Power()
	pm.FreqHz = 0
	if err := pm.Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	pm = MSP430Power()
	pm.PowerW[ClassMem] = -1
	if err := pm.Validate(); err == nil {
		t.Error("negative power accepted")
	}
}

func TestMonitor(t *testing.T) {
	m := Monitor{ThresholdV: 2.2, CheckCost: 1e-9, CheckPeriod: 100}
	if !m.ShouldSample(0) || !m.ShouldSample(200) {
		t.Error("sampling on period boundaries expected")
	}
	if m.ShouldSample(50) {
		t.Error("no sample off-period")
	}
	if !m.Fired(2.2) || !m.Fired(1.0) {
		t.Error("threshold crossing not detected")
	}
	if m.Fired(3.0) {
		t.Error("false trigger above threshold")
	}
	every := Monitor{CheckPeriod: 0}
	if !every.ShouldSample(7) {
		t.Error("period 0 means every cycle")
	}
}

func TestInstrClassString(t *testing.T) {
	if ClassALU.String() != "alu" || ClassMem.String() != "mem" || ClassIdle.String() != "idle" {
		t.Error("class names wrong")
	}
	if InstrClass(9).String() == "" {
		t.Error("unknown class should still render")
	}
}
