package energy

import "fmt"

// NVMProfile captures a nonvolatile-memory technology's checkpoint
// characteristics: the bandwidths and per-byte energy surcharges the
// device charges for backups and restores. The presets follow the
// technology discussion in the paper (§VI-A cites STT-RAM writes at
// ~10× read latency; Mementos used Flash, whose writes are slower and
// costlier still).
type NVMProfile struct {
	Name string
	// SigmaB and SigmaR are backup/restore bandwidths in bytes/cycle.
	SigmaB float64
	SigmaR float64
	// OmegaBExtra and OmegaRExtra are per-byte energy surcharges (J/B)
	// beyond the memory-class cycle energy.
	OmegaBExtra float64
	OmegaRExtra float64
}

// FRAM is the MSP430FR5994's ferroelectric memory: symmetric word
// access at two cycles per 4-byte word (§III), no surcharge.
func FRAM() NVMProfile {
	return NVMProfile{Name: "fram", SigmaB: 2, SigmaR: 2}
}

// STTRAM models spin-transfer-torque MRAM: reads as fast as FRAM,
// writes ~10× slower (§VI-A), with a write-energy surcharge from the
// switching current.
func STTRAM() NVMProfile {
	return NVMProfile{
		Name:        "sttram",
		SigmaB:      0.2,
		SigmaR:      2,
		OmegaBExtra: 50e-12, // ~50 pJ/B switching energy
	}
}

// Flash models NOR-flash checkpointing à la Mementos: word-program
// operations are two orders of magnitude slower than reads and
// expensive per byte (erase amortized in).
func Flash() NVMProfile {
	return NVMProfile{
		Name:        "flash",
		SigmaB:      0.02,
		SigmaR:      2,
		OmegaBExtra: 500e-12,
		OmegaRExtra: 5e-12,
	}
}

// NVMProfiles returns the built-in technology presets.
func NVMProfiles() []NVMProfile {
	return []NVMProfile{FRAM(), STTRAM(), Flash()}
}

// Validate checks the profile is physical.
func (n NVMProfile) Validate() error {
	if n.SigmaB <= 0 || n.SigmaR <= 0 {
		return fmt.Errorf("energy: nvm %q bandwidths must be positive", n.Name)
	}
	if n.OmegaBExtra < 0 || n.OmegaRExtra < 0 {
		return fmt.Errorf("energy: nvm %q surcharges must be ≥ 0", n.Name)
	}
	return nil
}
