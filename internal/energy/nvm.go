package energy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// NVMProfile captures a nonvolatile-memory technology's checkpoint
// characteristics: the bandwidths and per-byte energy surcharges the
// device charges for backups and restores. The presets follow the
// technology discussion in the paper (§VI-A cites STT-RAM writes at
// ~10× read latency; Mementos used Flash, whose writes are slower and
// costlier still).
type NVMProfile struct {
	Name string
	// SigmaB and SigmaR are backup/restore bandwidths in bytes/cycle.
	SigmaB float64
	SigmaR float64
	// OmegaBExtra and OmegaRExtra are per-byte energy surcharges (J/B)
	// beyond the memory-class cycle energy.
	OmegaBExtra float64
	OmegaRExtra float64
}

// FRAM is the MSP430FR5994's ferroelectric memory: symmetric word
// access at two cycles per 4-byte word (§III), no surcharge.
func FRAM() NVMProfile {
	return NVMProfile{Name: "fram", SigmaB: 2, SigmaR: 2}
}

// STTRAM models spin-transfer-torque MRAM: reads as fast as FRAM,
// writes ~10× slower (§VI-A), with a write-energy surcharge from the
// switching current.
func STTRAM() NVMProfile {
	return NVMProfile{
		Name:        "sttram",
		SigmaB:      0.2,
		SigmaR:      2,
		OmegaBExtra: 50e-12, // ~50 pJ/B switching energy
	}
}

// Flash models NOR-flash checkpointing à la Mementos: word-program
// operations are two orders of magnitude slower than reads and
// expensive per byte (erase amortized in).
func Flash() NVMProfile {
	return NVMProfile{
		Name:        "flash",
		SigmaB:      0.02,
		SigmaR:      2,
		OmegaBExtra: 500e-12,
		OmegaRExtra: 5e-12,
	}
}

// NVMProfiles returns the built-in technology presets.
func NVMProfiles() []NVMProfile {
	return []NVMProfile{FRAM(), STTRAM(), Flash()}
}

// Validate checks the profile is physical.
func (n NVMProfile) Validate() error {
	if n.SigmaB <= 0 || n.SigmaR <= 0 {
		return fmt.Errorf("energy: nvm %q bandwidths must be positive", n.Name)
	}
	if n.OmegaBExtra < 0 || n.OmegaRExtra < 0 {
		return fmt.Errorf("energy: nvm %q surcharges must be ≥ 0", n.Name)
	}
	return nil
}

// --- two-slot checkpoint area -------------------------------------------
//
// CheckpointArea models the reserved FRAM region a double-buffered
// checkpoint protocol writes to, at the granularity real FRAM offers: one
// word at a time, with no atomicity beyond the single word. A commit is
// only as atomic as the protocol built on top makes it — the device
// writes a payload slot word by word, then a commit record whose CRC word
// goes last. Power can fail between any two word writes (a torn write),
// and stored words can be corrupted in place, which is exactly what the
// fault injector exploits.

// CommitMagic marks a structurally present commit record.
const CommitMagic uint32 = 0x45484b31 // "EHK1"

// CommitRecordWords is the commit record size in 32-bit words:
// magic, seq lo, seq hi, committed output length, payload length, CRC.
const CommitRecordWords = 6

// CommitRecordBytes is the commit record size charged to the backup and
// restore paths when explicit commit accounting is enabled.
const CommitRecordBytes = CommitRecordWords * 4

// CommitRecord declares one slot's payload committed.
type CommitRecord struct {
	// Seq totally orders commits across both slots; the restore path
	// prefers the valid record with the highest Seq.
	Seq uint64
	// OutLen is the committed length of the output log in words.
	OutLen uint32
	// Len is the committed payload length in words.
	Len uint32
	// CRC guards the payload words and the record fields above.
	CRC uint32
}

// EncodeRecord lays the record out in write order. The CRC word is last
// on purpose: a record interrupted between any two word writes leaves a
// stale CRC that fails validation.
func (r CommitRecord) EncodeRecord() [CommitRecordWords]uint32 {
	return [CommitRecordWords]uint32{
		CommitMagic,
		uint32(r.Seq),
		uint32(r.Seq >> 32),
		r.OutLen,
		r.Len,
		r.CRC,
	}
}

// DecodeRecord parses raw record words; ok is false when the magic is
// absent (an empty or obliterated record).
func DecodeRecord(w [CommitRecordWords]uint32) (CommitRecord, bool) {
	if w[0] != CommitMagic {
		return CommitRecord{}, false
	}
	return CommitRecord{
		Seq:    uint64(w[1]) | uint64(w[2])<<32,
		OutLen: w[3],
		Len:    w[4],
		CRC:    w[5],
	}, true
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumSlot computes the CRC a commit record must carry for the given
// payload. The record's own ordering fields are folded in so a payload
// paired with a stale record is rejected too.
func ChecksumSlot(payload []uint32, r CommitRecord) uint32 {
	buf := make([]byte, 0, 4*(len(payload)+5))
	var w [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(CommitMagic)
	put(uint32(r.Seq))
	put(uint32(r.Seq >> 32))
	put(r.OutLen)
	put(r.Len)
	for _, v := range payload {
		put(v)
	}
	return crc32.Checksum(buf, castagnoli)
}

// CheckpointArea is the checkpoint region of the device's FRAM: two
// payload slots, their commit records, and an append-only output log.
// All mutation is word-granular.
type CheckpointArea struct {
	slots [2][]uint32
	recs  [2][CommitRecordWords]uint32
	out   []uint32
}

// NewCheckpointArea returns an erased checkpoint area.
func NewCheckpointArea() *CheckpointArea { return &CheckpointArea{} }

// EnsureSlot grows slot i to hold at least n words. Growth models the
// region being sized for the largest checkpoint; existing words keep
// their (possibly stale) contents, as real FRAM would.
func (a *CheckpointArea) EnsureSlot(i, n int) {
	if n > len(a.slots[i]) {
		grown := make([]uint32, n)
		copy(grown, a.slots[i])
		a.slots[i] = grown
	}
}

// WriteSlotWord writes one payload word. It is the unit of atomicity.
func (a *CheckpointArea) WriteSlotWord(i, idx int, w uint32) {
	a.EnsureSlot(i, idx+1)
	a.slots[i][idx] = w
}

// SlotWords exposes slot i's live backing words — the restore path reads
// them and the fault injector corrupts them in place.
func (a *CheckpointArea) SlotWords(i int) []uint32 { return a.slots[i] }

// WriteRecordWord writes one commit-record word.
func (a *CheckpointArea) WriteRecordWord(i, idx int, w uint32) {
	a.recs[i][idx] = w
}

// RecordWords exposes slot i's live record words for in-place corruption.
func (a *CheckpointArea) RecordWords(i int) []uint32 { return a.recs[i][:] }

// Record decodes slot i's commit record.
func (a *CheckpointArea) Record(i int) (CommitRecord, bool) {
	return DecodeRecord(a.recs[i])
}

// Validate reports whether slot i holds a structurally plausible,
// CRC-consistent committed checkpoint.
func (a *CheckpointArea) Validate(i int) bool {
	r, ok := a.Record(i)
	if !ok || int(r.Len) > len(a.slots[i]) {
		return false
	}
	return ChecksumSlot(a.slots[i][:r.Len], r) == r.CRC
}

// NextSeq returns one past the highest sequence number either record
// claims — derived from NVM, so it survives power failures without any
// volatile counter.
func (a *CheckpointArea) NextSeq() uint64 {
	var max uint64
	for i := 0; i < 2; i++ {
		if r, ok := a.Record(i); ok && r.Seq > max {
			max = r.Seq
		}
	}
	return max + 1
}

// WriteOut writes one output-log word at position idx. Words past the
// committed OutLen are scratch until a commit record advances over them.
func (a *CheckpointArea) WriteOut(idx int, w uint32) {
	if idx >= len(a.out) {
		grown := make([]uint32, idx+1)
		copy(grown, a.out)
		a.out = grown
	}
	a.out[idx] = w
}

// Out returns a copy of the first n committed output words.
func (a *CheckpointArea) Out(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	if n > len(a.out) {
		n = len(a.out)
	}
	return append([]uint32(nil), a.out[:n]...)
}
