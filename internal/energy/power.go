package energy

import "fmt"

// InstrClass buckets instructions by their power draw, following the
// paper's EnergyTrace measurement: "Load and store operations to memory
// consume 1.2 mW while all other instructions consume 1.05 mW" (§V-A).
type InstrClass int

const (
	// ClassALU covers arithmetic, logic, branches and moves.
	ClassALU InstrClass = iota
	// ClassMem covers loads and stores.
	ClassMem
	// ClassIdle covers stalled or sleeping cycles.
	ClassIdle
	numClasses
)

// NumClasses is the number of defined instruction classes, for callers
// that precompute per-class lookup tables.
const NumClasses = int(numClasses)

func (c InstrClass) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMem:
		return "mem"
	case ClassIdle:
		return "idle"
	}
	return fmt.Sprintf("InstrClass(%d)", int(c))
}

// PowerModel converts instruction classes to energy per cycle at a fixed
// clock frequency.
type PowerModel struct {
	FreqHz float64             // core clock
	PowerW [numClasses]float64 // power draw per class (W)
}

// MSP430Power returns the power model measured in §V-A of the paper on
// the MSP430FR5994 LaunchPad: 1.2 mW for memory operations, 1.05 mW for
// everything else, at a 16 MHz clock (the FRAM speed grade the paper's
// backup-bandwidth discussion uses). Idle draw is taken as 10% of ALU
// power, representing a low-power wait mode.
func MSP430Power() PowerModel {
	return PowerModel{
		FreqHz: 16e6,
		PowerW: [numClasses]float64{
			ClassALU:  1.05e-3,
			ClassMem:  1.2e-3,
			ClassIdle: 0.105e-3,
		},
	}
}

// CortexM0Power returns a power model for an ARM Cortex-M0+-class core
// (the Clank substrate of §V-B), using the ~30 µA/MHz active current of
// an STM32L0-class part at 3 V and 16 MHz.
func CortexM0Power() PowerModel {
	const activeW = 30e-6 * 16 * 3 // 30 µA/MHz · 16 MHz · 3 V = 1.44 mW
	return PowerModel{
		FreqHz: 16e6,
		PowerW: [numClasses]float64{
			ClassALU:  activeW,
			ClassMem:  activeW * 1.15, // memory ops draw slightly more
			ClassIdle: activeW * 0.1,
		},
	}
}

// EnergyPerCycle returns the joules one cycle of the given class costs.
func (pm PowerModel) EnergyPerCycle(c InstrClass) float64 {
	if c < 0 || c >= numClasses {
		c = ClassALU
	}
	return pm.PowerW[c] / pm.FreqHz
}

// CyclePeriod returns the wall-clock duration of one cycle in seconds.
func (pm PowerModel) CyclePeriod() float64 { return 1 / pm.FreqHz }

// Validate checks the model is physical.
func (pm PowerModel) Validate() error {
	if pm.FreqHz <= 0 {
		return fmt.Errorf("energy: frequency must be > 0, got %g", pm.FreqHz)
	}
	for c, p := range pm.PowerW {
		if p < 0 {
			return fmt.Errorf("energy: class %v power must be ≥ 0, got %g", InstrClass(c), p)
		}
	}
	return nil
}

// Monitor is an ADC-style supply-voltage monitor, the mechanism
// single-backup systems like Hibernus use to detect imminent power loss.
// Each check costs energy; §IV-B notes such monitoring can consume up to
// 40% of the budget in aggressive configurations.
type Monitor struct {
	ThresholdV  float64 // fires when the supply drops to or below this
	CheckCost   float64 // joules per sample
	CheckPeriod uint64  // cycles between samples
}

// ShouldSample reports whether the monitor samples on this cycle.
func (m Monitor) ShouldSample(cycle uint64) bool {
	if m.CheckPeriod == 0 {
		return true
	}
	return cycle%m.CheckPeriod == 0
}

// Fired reports whether a sampled voltage is at or below the threshold.
func (m Monitor) Fired(v float64) bool { return v <= m.ThresholdV }
