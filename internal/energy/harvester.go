package energy

import "fmt"

// VoltageSource supplies the ambient open-circuit voltage over time;
// *trace.Trace satisfies it.
type VoltageSource interface {
	VoltageAt(ts float64) float64
}

// Harvester converts an ambient voltage source into charging power using
// a simple resistive transducer model: the source can deliver
// P = η·V_s²/R. This preserves the property the paper relies on —
// charging power tracks the trace shape — without modelling impedance
// matching.
type Harvester struct {
	Source VoltageSource
	R      float64 // transducer series resistance (Ω), > 0
	Eta    float64 // conversion efficiency in (0, 1]
}

// NewHarvester validates and builds a harvester.
func NewHarvester(src VoltageSource, r, eta float64) (*Harvester, error) {
	if src == nil {
		return nil, fmt.Errorf("energy: harvester needs a voltage source")
	}
	if r <= 0 {
		return nil, fmt.Errorf("energy: transducer resistance must be > 0, got %g", r)
	}
	if eta <= 0 || eta > 1 {
		return nil, fmt.Errorf("energy: efficiency must be in (0,1], got %g", eta)
	}
	return &Harvester{Source: src, R: r, Eta: eta}, nil
}

// PowerAt returns the harvested power (W) at time ts seconds.
func (h *Harvester) PowerAt(ts float64) float64 {
	v := h.Source.VoltageAt(ts)
	if v <= 0 {
		return 0
	}
	return h.Eta * v * v / h.R
}

// EnergyOver integrates harvested energy over [t0, t0+dt] with a single
// midpoint sample — adequate for the per-cycle and per-window steps the
// simulator takes, which are far shorter than trace features.
func (h *Harvester) EnergyOver(t0, dt float64) float64 {
	return h.PowerAt(t0+dt/2) * dt
}
