package energy

import "testing"

func TestNVMPresets(t *testing.T) {
	profiles := NVMProfiles()
	if len(profiles) != 3 {
		t.Fatalf("%d presets", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate %s", p.Name)
		}
		seen[p.Name] = true
	}
	// write-speed ordering: FRAM fastest, Flash slowest
	if !(FRAM().SigmaB > STTRAM().SigmaB && STTRAM().SigmaB > Flash().SigmaB) {
		t.Error("write bandwidth ordering wrong")
	}
	// asymmetry: STT-RAM and Flash read faster than they write
	for _, p := range []NVMProfile{STTRAM(), Flash()} {
		if p.SigmaR <= p.SigmaB {
			t.Errorf("%s: expected read/write asymmetry", p.Name)
		}
	}
}

func TestNVMValidate(t *testing.T) {
	bad := NVMProfile{Name: "x", SigmaB: 0, SigmaR: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = NVMProfile{Name: "x", SigmaB: 1, SigmaR: 1, OmegaBExtra: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative surcharge accepted")
	}
}

func TestCommitRecordRoundtrip(t *testing.T) {
	r := CommitRecord{Seq: 1<<40 + 9, OutLen: 17, Len: 321, CRC: 0xdeadbeef}
	got, ok := DecodeRecord(r.EncodeRecord())
	if !ok {
		t.Fatal("record failed to decode")
	}
	if got != r {
		t.Fatalf("roundtrip %+v, want %+v", got, r)
	}
	// The CRC word must be the last one written: tearing just before it
	// leaves a record that cannot claim a different payload.
	enc := r.EncodeRecord()
	if enc[CommitRecordWords-1] != r.CRC {
		t.Fatalf("CRC word at %#x, must be last", enc[CommitRecordWords-1])
	}
}

func TestDecodeRecordRejectsMissingMagic(t *testing.T) {
	var empty [CommitRecordWords]uint32
	if _, ok := DecodeRecord(empty); ok {
		t.Fatal("erased record decoded")
	}
	bad := CommitRecord{Seq: 1}.EncodeRecord()
	bad[0] ^= 1
	if _, ok := DecodeRecord(bad); ok {
		t.Fatal("record with corrupt magic decoded")
	}
}

func TestChecksumSlotBindsRecordFields(t *testing.T) {
	payload := []uint32{1, 2, 3, 4}
	r := CommitRecord{Seq: 5, OutLen: 2, Len: 4}
	crc := ChecksumSlot(payload, r)
	if crc != ChecksumSlot(payload, r) {
		t.Fatal("checksum not deterministic")
	}
	// Any payload or ordering-field change must change the checksum, so a
	// payload paired with a stale or reshuffled record is rejected.
	if crc == ChecksumSlot([]uint32{1, 2, 3, 5}, r) {
		t.Error("payload change not detected")
	}
	for name, mut := range map[string]CommitRecord{
		"seq":    {Seq: 6, OutLen: 2, Len: 4},
		"outlen": {Seq: 5, OutLen: 3, Len: 4},
		"len":    {Seq: 5, OutLen: 2, Len: 3},
	} {
		if crc == ChecksumSlot(payload, mut) {
			t.Errorf("%s change not detected", name)
		}
	}
}

func TestCheckpointAreaCommitAndValidate(t *testing.T) {
	a := NewCheckpointArea()
	if a.Validate(0) || a.Validate(1) {
		t.Fatal("erased area validated")
	}
	if a.NextSeq() != 1 {
		t.Fatalf("NextSeq on erased area = %d, want 1", a.NextSeq())
	}

	payload := []uint32{10, 20, 30}
	for i, w := range payload {
		a.WriteSlotWord(0, i, w)
	}
	rec := CommitRecord{Seq: a.NextSeq(), OutLen: 0, Len: uint32(len(payload))}
	rec.CRC = ChecksumSlot(payload, rec)
	enc := rec.EncodeRecord()
	// Torn commit record: every prefix short of the CRC word must fail
	// validation — the commit only lands with the final word.
	for n := 0; n < CommitRecordWords; n++ {
		for i := 0; i < n; i++ {
			a.WriteRecordWord(0, i, enc[i])
		}
		if a.Validate(0) {
			t.Fatalf("slot validated with %d/%d record words written", n, CommitRecordWords)
		}
	}
	for i, w := range enc {
		a.WriteRecordWord(0, i, w)
	}
	if !a.Validate(0) {
		t.Fatal("committed slot failed validation")
	}
	if a.NextSeq() != rec.Seq+1 {
		t.Fatalf("NextSeq = %d, want %d", a.NextSeq(), rec.Seq+1)
	}

	// In-place corruption of any payload or record word breaks validation.
	a.SlotWords(0)[1] ^= 1 << 30
	if a.Validate(0) {
		t.Fatal("corrupt payload validated")
	}
	a.SlotWords(0)[1] ^= 1 << 30
	a.RecordWords(0)[4] ^= 1 // Len
	if a.Validate(0) {
		t.Fatal("corrupt record validated")
	}
	a.RecordWords(0)[4] ^= 1
	if !a.Validate(0) {
		t.Fatal("restored slot failed validation")
	}

	// A record claiming more payload than the slot holds is structural
	// garbage, not a checksum question.
	big := rec
	big.Len = uint32(len(a.SlotWords(0)) + 1)
	for i, w := range big.EncodeRecord() {
		a.WriteRecordWord(0, i, w)
	}
	if a.Validate(0) {
		t.Fatal("record overclaiming payload length validated")
	}
}

func TestCheckpointAreaEnsureSlotKeepsContents(t *testing.T) {
	a := NewCheckpointArea()
	a.WriteSlotWord(1, 0, 7)
	a.EnsureSlot(1, 8)
	if got := a.SlotWords(1); len(got) != 8 || got[0] != 7 {
		t.Fatalf("grown slot %v", got)
	}
	a.EnsureSlot(1, 2) // never shrinks
	if len(a.SlotWords(1)) != 8 {
		t.Fatal("EnsureSlot shrank the slot")
	}
}

func TestCheckpointAreaOutLog(t *testing.T) {
	a := NewCheckpointArea()
	if got := a.Out(4); got != nil {
		t.Fatalf("empty log returned %v", got)
	}
	a.WriteOut(0, 100)
	a.WriteOut(1, 101)
	a.WriteOut(2, 102)
	if got := a.Out(2); len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("Out(2) = %v", got)
	}
	// Requests past the log clamp; negative requests are empty.
	if got := a.Out(10); len(got) != 3 {
		t.Fatalf("Out(10) = %v, want 3 words", got)
	}
	if got := a.Out(-1); got != nil {
		t.Fatalf("Out(-1) = %v", got)
	}
	// The copy is detached from the live log.
	snap := a.Out(3)
	a.WriteOut(0, 999)
	if snap[0] != 100 {
		t.Fatal("Out returned a live alias")
	}
}
