package energy

import "testing"

func TestNVMPresets(t *testing.T) {
	profiles := NVMProfiles()
	if len(profiles) != 3 {
		t.Fatalf("%d presets", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate %s", p.Name)
		}
		seen[p.Name] = true
	}
	// write-speed ordering: FRAM fastest, Flash slowest
	if !(FRAM().SigmaB > STTRAM().SigmaB && STTRAM().SigmaB > Flash().SigmaB) {
		t.Error("write bandwidth ordering wrong")
	}
	// asymmetry: STT-RAM and Flash read faster than they write
	for _, p := range []NVMProfile{STTRAM(), Flash()} {
		if p.SigmaR <= p.SigmaB {
			t.Errorf("%s: expected read/write asymmetry", p.Name)
		}
	}
}

func TestNVMValidate(t *testing.T) {
	bad := NVMProfile{Name: "x", SigmaB: 0, SigmaR: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = NVMProfile{Name: "x", SigmaB: 1, SigmaR: 1, OmegaBExtra: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative surcharge accepted")
	}
}
