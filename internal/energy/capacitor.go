// Package energy models the power side of an energy-harvesting device
// (Fig. 1 of the paper): a transducer harvesting from an ambient source,
// a storage capacitor with power-on/power-off thresholds, the
// microcontroller power model that converts instruction classes to
// joules per cycle, and an ADC-style voltage monitor.
package energy

import (
	"fmt"
	"math"
)

// Capacitor stores harvested energy. Voltage and capacitance determine
// stored energy E = ½·C·V².
type Capacitor struct {
	C    float64 // capacitance in farads, > 0
	VMax float64 // maximum (rated) voltage, > 0
	v    float64 // current voltage
}

// NewCapacitor returns a capacitor at the given initial voltage.
func NewCapacitor(c, vMax, v0 float64) (*Capacitor, error) {
	if c <= 0 {
		return nil, fmt.Errorf("energy: capacitance must be > 0, got %g", c)
	}
	if vMax <= 0 {
		return nil, fmt.Errorf("energy: rated voltage must be > 0, got %g", vMax)
	}
	if v0 < 0 || v0 > vMax {
		return nil, fmt.Errorf("energy: initial voltage %g outside [0, %g]", v0, vMax)
	}
	return &Capacitor{C: c, VMax: vMax, v: v0}, nil
}

// Voltage returns the current voltage.
func (c *Capacitor) Voltage() float64 { return c.v }

// Energy returns the stored energy ½CV² in joules.
func (c *Capacitor) Energy() float64 { return 0.5 * c.C * c.v * c.v }

// SetVoltage forces the voltage (clamped to [0, VMax]); used to reset
// simulations.
func (c *Capacitor) SetVoltage(v float64) {
	c.v = math.Max(0, math.Min(v, c.VMax))
}

// Store deposits j joules, clamping at the rated voltage. It returns the
// energy actually absorbed (excess is discarded, as a real regulator
// would shunt it).
func (c *Capacitor) Store(j float64) float64 {
	if j <= 0 {
		return 0
	}
	e := c.Energy() + j
	vNew := math.Sqrt(2 * e / c.C)
	if vNew > c.VMax {
		absorbed := 0.5*c.C*c.VMax*c.VMax - c.Energy()
		c.v = c.VMax
		return math.Max(0, absorbed)
	}
	c.v = vNew
	return j
}

// Draw removes j joules. If the store holds less than j the capacitor is
// emptied and Draw reports false — the draw that caused the brownout.
func (c *Capacitor) Draw(j float64) bool {
	if j <= 0 {
		return true
	}
	e := c.Energy() - j
	if e <= 0 {
		c.v = 0
		return false
	}
	c.v = math.Sqrt(2 * e / c.C)
	return true
}

// UsableEnergy returns the energy available between two voltage
// thresholds, ½·C·(vHi² − vLo²) — the paper's per-active-period supply E
// when vHi = V_on and vLo = V_off.
func (c *Capacitor) UsableEnergy(vHi, vLo float64) float64 {
	return 0.5 * c.C * (vHi*vHi - vLo*vLo)
}

// Usable returns the energy a capacitance c farads holds between two
// voltage thresholds, ½·c·(vHi² − vLo²). It is the free-function twin
// of Capacitor.UsableEnergy for callers — the static WCEC verifier,
// CLI preflights — that need the E_max budget of a device configuration
// without instantiating a Capacitor.
func Usable(c, vHi, vLo float64) float64 {
	return 0.5 * c * (vHi*vHi - vLo*vLo)
}

// CyclesUntil returns how many cycles drawing ePerCycle joules each the
// capacitor can supply from its current voltage before dropping below
// vOff — the closed form ⌊½·C·(v² − vOff²) / ePerCycle⌋ instead of
// integrating the draw per instruction. The caller resolves an
// instruction class to its per-cycle energy (PowerModel.EnergyPerCycle)
// and passes the worst class it might execute for a conservative bound.
// A non-positive ePerCycle (an idle class priced at zero) never drains
// the store, so the count saturates at MaxUint64.
func (c *Capacitor) CyclesUntil(vOff, ePerCycle float64) uint64 {
	if ePerCycle <= 0 {
		return math.MaxUint64
	}
	avail := c.UsableEnergy(c.v, vOff)
	if avail <= 0 {
		return 0
	}
	n := avail / ePerCycle
	// Saturate well below the float64 integer-precision cliff.
	if n >= 1<<62 {
		return math.MaxUint64
	}
	return uint64(n)
}
