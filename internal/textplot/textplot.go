// Package textplot renders simple ASCII charts and tables for the
// command-line tools: line/scatter charts for the figure reproductions
// and horizontal bars for the characterization profiles.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled data set of a chart.
type Series struct {
	Label string
	Xs    []float64
	Ys    []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders series onto a width×height character grid with axis
// annotations. When xlog is true the x axis is logarithmic (all x must
// be positive).
func Chart(title string, series []Series, width, height int, xlog bool) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if xlog && x <= 0 {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return title + "\n(no data)\n"
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	tx := func(x float64) float64 {
		if xlog {
			return math.Log(x)
		}
		return x
	}
	lo, hi := tx(xmin), tx(xmax)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if xlog && x <= 0 {
				continue
			}
			col := int((tx(x) - lo) / (hi - lo) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.4g |%s|\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	scale := ""
	if xlog {
		scale = " (log)"
	}
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g%s\n", "", width/2, xmin, width-width/2, xmax, scale)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

// Bars renders a horizontal bar chart with optional ±err annotations.
func Bars(title string, labels []string, values, errs []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels) > i && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("=", n)
		fmt.Fprintf(&b, "  %-*s |%-*s| %.4g", maxLabel, label, width, bar, v)
		if errs != nil && i < len(errs) && errs[i] > 0 {
			fmt.Fprintf(&b, " ±%.3g", errs[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
