package textplot

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	s := []Series{
		{Label: "linear", Xs: []float64{1, 2, 3, 4}, Ys: []float64{1, 2, 3, 4}},
		{Label: "flat", Xs: []float64{1, 2, 3, 4}, Ys: []float64{2, 2, 2, 2}},
	}
	out := Chart("demo", s, 40, 10, false)
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* linear") || !strings.Contains(out, "o flat") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing markers")
	}
}

func TestChartLogAxis(t *testing.T) {
	s := []Series{{Label: "d", Xs: []float64{1, 10, 100, 1000}, Ys: []float64{1, 2, 3, 4}}}
	out := Chart("log", s, 40, 8, true)
	if !strings.Contains(out, "(log)") {
		t.Error("missing log annotation")
	}
	// log spacing: markers roughly evenly spread; the row containing Y=4
	// should have a marker near the right edge
	if !strings.Contains(out, "*") {
		t.Error("no markers")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", nil, 40, 8, false)
	if !strings.Contains(out, "no data") {
		t.Error("empty chart should say so")
	}
	// degenerate: log axis with nonpositive x only
	out = Chart("bad", []Series{{Xs: []float64{-1}, Ys: []float64{1}}}, 40, 8, true)
	if !strings.Contains(out, "no data") {
		t.Error("nonpositive log data should be dropped")
	}
}

func TestChartConstantSeries(t *testing.T) {
	s := []Series{{Label: "c", Xs: []float64{5}, Ys: []float64{3}}}
	out := Chart("const", s, 40, 8, false)
	if !strings.Contains(out, "*") {
		t.Error("single point should render")
	}
}

func TestBars(t *testing.T) {
	out := Bars("bars", []string{"aa", "b"}, []float64{10, 5}, []float64{1, 0}, 20)
	if !strings.Contains(out, "aa") || !strings.Contains(out, "±1") {
		t.Errorf("bad bars output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("want title+2 bars, got %d lines", len(lines))
	}
	// longest bar belongs to the max value
	if strings.Count(lines[1], "=") <= strings.Count(lines[2], "=") {
		t.Error("bar lengths not proportional")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("z", []string{"x"}, []float64{0}, nil, 10)
	if !strings.Contains(out, "x") {
		t.Error("zero bars should still render labels")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"a", "1"}, {"longer", "22"}})
	if !strings.Contains(out, "name") || !strings.Contains(out, "longer") {
		t.Errorf("bad table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("want header+sep+2 rows, got %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator misaligned with header")
	}
}
