// Package isa defines EH32, the small 32-bit RISC instruction set the
// intermittent-device simulator executes. EH32 is a clean substitute for
// the MSP430/Cortex-M0+ binaries of the paper's evaluation: what the EH
// model consumes is instruction mix, cycle counts and memory-access
// streams, all of which EH32 exposes precisely.
//
// Architecture summary:
//   - 16 general 32-bit registers; R0 is hardwired to zero.
//   - Harvard layout: code lives outside the data address space, so
//     checkpoints cover only registers and data memory.
//   - Fixed 32-bit instruction encoding:
//     [31:26] opcode | [25:22] rd | [21:18] rs1 | [17:0] imm18/rs2.
//   - The PC counts instructions (not bytes). Branches are PC-relative
//     in instructions; JAL/JALR are absolute.
//   - SYS provides the hooks intermittent runtimes need: HALT, CHKPT
//     (checkpoint site), TASK (task boundary), OUT (commit-buffered
//     output) and SENSE (deterministic sensor read).
package isa

import "fmt"

// Reg is a register index 0–15. R0 reads as zero and ignores writes.
type Reg uint8

// Register names. R13–R15 follow the conventional roles the assembler's
// call helpers use, but nothing in the ISA enforces them.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13: stack pointer
	LR // R14: link register
	TR // R15: temporary for assembler pseudo-ops
)

// NumRegs is the architectural register count.
const NumRegs = 16

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case TR:
		return "tr"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op enumerates EH32 opcodes.
type Op uint8

const (
	SYS Op = iota
	// R-type ALU.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	DIV
	REM
	// I-type ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI
	// Memory.
	LW
	LB
	LBU
	SW
	SB
	// Control flow.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL
	JALR
	numOps
)

var opNames = [numOps]string{
	SYS: "sys", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	MUL: "mul", DIV: "div", REM: "rem",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LUI: "lui",
	LW: "lw", LB: "lb", LBU: "lbu", SW: "sw", SB: "sb",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// IsRType reports whether the instruction's third operand is rs2.
func (o Op) IsRType() bool { return o >= ADD && o <= REM }

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= BEQ && o <= BGEU }

// IsLoad and IsStore classify memory operations.
func (o Op) IsLoad() bool  { return o == LW || o == LB || o == LBU }
func (o Op) IsStore() bool { return o == SW || o == SB }

// Sys enumerates SYS immediate codes.
type Sys uint32

const (
	// SysHalt stops execution; the runtime commits final state.
	SysHalt Sys = iota
	// SysChkpt marks a compiler/programmer checkpoint site (Mementos).
	SysChkpt
	// SysTaskBegin and SysTaskEnd delimit atomic tasks (DINO/Chain).
	SysTaskBegin
	SysTaskEnd
	// SysOut appends rs1's value to the volatile output buffer; outputs
	// commit to nonvolatile storage at the next backup.
	SysOut
	// SysSense loads a deterministic sensor sample into rd. The sample
	// index is architectural state, so replay after a restore re-reads
	// the same values.
	SysSense
	numSys
)

func (s Sys) String() string {
	names := [numSys]string{"halt", "chkpt", "task_begin", "task_end", "out", "sense"}
	if s < numSys {
		return names[s]
	}
	return fmt.Sprintf("sys(%d)", uint32(s))
}

// Valid reports whether s is a defined SYS code. The cpu rejects
// invalid codes at execution time; the static analyzer flags them
// before a cycle runs.
func (s Sys) Valid() bool { return s < numSys }

// SysMask is a bit set over SYS codes. The batched execution engine
// uses one to decide which SYS instructions end a batch: a strategy
// that only reacts to checkpoint sites or task boundaries declares
// those codes, and every other SYS executes inline.
type SysMask uint32

// AllSys has every defined SYS code set — the conservative mask for
// strategies that do not declare what they observe.
const AllSys SysMask = 1<<numSys - 1

// Mask returns the mask bit for s (zero for invalid codes).
func (s Sys) Mask() SysMask {
	if !s.Valid() {
		return 0
	}
	return 1 << s
}

// MaskOf builds the mask with the given codes set.
func MaskOf(ss ...Sys) SysMask {
	var m SysMask
	for _, s := range ss {
		m |= s.Mask()
	}
	return m
}

// Has reports whether s is in the mask.
func (m SysMask) Has(s Sys) bool { return m&s.Mask() != 0 }

// Instr is one decoded EH32 instruction.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32 // 18-bit signed payload for I/B/J forms
}

// Encoding field layout.
const (
	immBits = 18
	immMask = (1 << immBits) - 1
	// ImmMax and ImmMin bound the signed 18-bit immediate.
	ImmMax = 1<<(immBits-1) - 1
	ImmMin = -(1 << (immBits - 1))
)

// FitsImm reports whether v is representable in the 18-bit immediate.
func FitsImm(v int32) bool { return v >= ImmMin && v <= ImmMax }

// Encode packs the instruction into its 32-bit binary form.
func (in Instr) Encode() (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", in)
	}
	w := uint32(in.Op)<<26 | uint32(in.Rd)<<22 | uint32(in.Rs1)<<18
	if in.Op.IsRType() {
		w |= uint32(in.Rs2) << 14
		return w, nil
	}
	if !FitsImm(in.Imm) {
		return 0, fmt.Errorf("isa: immediate %d out of 18-bit range in %v", in.Imm, in)
	}
	w |= uint32(in.Imm) & immMask
	return w, nil
}

// Decode unpacks a 32-bit word into an instruction.
func Decode(w uint32) (Instr, error) {
	in := Instr{
		Op:  Op(w >> 26),
		Rd:  Reg(w >> 22 & 0xF),
		Rs1: Reg(w >> 18 & 0xF),
	}
	if !in.Op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d in word %#08x", in.Op, w)
	}
	if in.Op.IsRType() {
		in.Rs2 = Reg(w >> 14 & 0xF)
		return in, nil
	}
	imm := int32(w & immMask)
	if imm > ImmMax { // sign-extend
		imm -= 1 << immBits
	}
	in.Imm = imm
	return in, nil
}

// String renders the instruction in assembly-like syntax.
func (in Instr) String() string {
	switch {
	case in.Op == SYS:
		return fmt.Sprintf("sys %v rd=%v rs1=%v", Sys(in.Imm), in.Rd, in.Rs1)
	case in.Op.IsRType():
		return fmt.Sprintf("%v %v, %v, %v", in.Op, in.Rd, in.Rs1, in.Rs2)
	case in.Op.IsBranch():
		return fmt.Sprintf("%v %v, %v, %+d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op.IsStore():
		return fmt.Sprintf("%v %v, %d(%v)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsLoad():
		return fmt.Sprintf("%v %v, %d(%v)", in.Op, in.Rd, in.Imm, in.Rs1)
	default:
		return fmt.Sprintf("%v %v, %v, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	}
}
