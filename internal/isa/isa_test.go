package isa

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRType(t *testing.T) {
	in := Instr{Op: ADD, Rd: R3, Rs1: R4, Rs2: R5}
	w, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestEncodeDecodeImmediates(t *testing.T) {
	for _, imm := range []int32{0, 1, -1, 1000, -1000, ImmMax, ImmMin} {
		in := Instr{Op: ADDI, Rd: R1, Rs1: R2, Imm: imm}
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("imm %d: %v", imm, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("imm %d: %v", imm, err)
		}
		if out.Imm != imm {
			t.Errorf("imm %d decoded as %d", imm, out.Imm)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := (Instr{Op: ADDI, Imm: ImmMax + 1}).Encode(); err == nil {
		t.Error("oversized immediate accepted")
	}
	if _, err := (Instr{Op: ADDI, Imm: ImmMin - 1}).Encode(); err == nil {
		t.Error("undersized immediate accepted")
	}
	if _, err := (Instr{Op: numOps}).Encode(); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := (Instr{Op: ADD, Rd: 16}).Encode(); err == nil {
		t.Error("register 16 accepted")
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOps) << 26); err == nil {
		t.Error("invalid opcode word accepted")
	}
}

func TestFitsImm(t *testing.T) {
	if !FitsImm(0) || !FitsImm(ImmMax) || !FitsImm(ImmMin) {
		t.Error("in-range values rejected")
	}
	if FitsImm(ImmMax+1) || FitsImm(ImmMin-1) {
		t.Error("out-of-range values accepted")
	}
}

func TestOpClassifiers(t *testing.T) {
	if !ADD.IsRType() || ADDI.IsRType() || SYS.IsRType() {
		t.Error("IsRType misclassifies")
	}
	if !BEQ.IsBranch() || !BGEU.IsBranch() || JAL.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !LW.IsLoad() || !LBU.IsLoad() || SW.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !SW.IsStore() || !SB.IsStore() || LW.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !ADD.Valid() || Op(200).Valid() {
		t.Error("Valid misclassifies")
	}
}

func TestStrings(t *testing.T) {
	if R0.String() != "r0" || SP.String() != "sp" || LR.String() != "lr" || TR.String() != "tr" {
		t.Error("register names wrong")
	}
	if ADD.String() != "add" || Op(99).String() == "" {
		t.Error("op names wrong")
	}
	if SysHalt.String() != "halt" || Sys(99).String() == "" {
		t.Error("sys names wrong")
	}
	for _, in := range []Instr{
		{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3},
		{Op: ADDI, Rd: R1, Rs1: R2, Imm: -5},
		{Op: BEQ, Rd: R1, Rs1: R2, Imm: 8},
		{Op: LW, Rd: R1, Rs1: R2, Imm: 4},
		{Op: SW, Rd: R1, Rs1: R2, Imm: 4},
		{Op: SYS, Imm: int32(SysChkpt)},
	} {
		if s := in.String(); s == "" || strings.Contains(s, "%!") {
			t.Errorf("bad render: %q", s)
		}
	}
}

// Property: every encodable instruction round-trips exactly.
func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			in := Instr{
				Op:  Op(r.Intn(int(numOps))),
				Rd:  Reg(r.Intn(NumRegs)),
				Rs1: Reg(r.Intn(NumRegs)),
			}
			if in.Op.IsRType() {
				in.Rs2 = Reg(r.Intn(NumRegs))
			} else {
				in.Imm = int32(r.Intn(ImmMax-ImmMin+1)) + ImmMin
			}
			vals[0] = reflect.ValueOf(in)
		},
	}
	f := func(in Instr) bool {
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: distinct instructions encode to distinct words (the encoding
// is injective over the canonical field ranges).
func TestPropEncodingInjective(t *testing.T) {
	seen := map[uint32]Instr{}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		in := Instr{
			Op:  Op(r.Intn(int(numOps))),
			Rd:  Reg(r.Intn(NumRegs)),
			Rs1: Reg(r.Intn(NumRegs)),
		}
		if in.Op.IsRType() {
			in.Rs2 = Reg(r.Intn(NumRegs))
		} else {
			in.Imm = int32(r.Intn(ImmMax-ImmMin+1)) + ImmMin
		}
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[w]; ok && prev != in {
			t.Fatalf("collision: %v and %v both encode to %#08x", prev, in, w)
		}
		seen[w] = in
	}
}
