package isa

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRType(t *testing.T) {
	in := Instr{Op: ADD, Rd: R3, Rs1: R4, Rs2: R5}
	w, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestEncodeDecodeImmediates(t *testing.T) {
	for _, imm := range []int32{0, 1, -1, 1000, -1000, ImmMax, ImmMin} {
		in := Instr{Op: ADDI, Rd: R1, Rs1: R2, Imm: imm}
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("imm %d: %v", imm, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("imm %d: %v", imm, err)
		}
		if out.Imm != imm {
			t.Errorf("imm %d decoded as %d", imm, out.Imm)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := (Instr{Op: ADDI, Imm: ImmMax + 1}).Encode(); err == nil {
		t.Error("oversized immediate accepted")
	}
	if _, err := (Instr{Op: ADDI, Imm: ImmMin - 1}).Encode(); err == nil {
		t.Error("undersized immediate accepted")
	}
	if _, err := (Instr{Op: numOps}).Encode(); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := (Instr{Op: ADD, Rd: 16}).Encode(); err == nil {
		t.Error("register 16 accepted")
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOps) << 26); err == nil {
		t.Error("invalid opcode word accepted")
	}
}

// TestDecodeRejectsAllReservedOpcodes sweeps the entire reserved opcode
// space [numOps, 63]: every word carrying a reserved opcode must be
// rejected regardless of its operand bits, so a corrupted or
// hand-corrupted binary can never decode into a runnable instruction.
func TestDecodeRejectsAllReservedOpcodes(t *testing.T) {
	for op := uint32(numOps); op < 64; op++ {
		for _, rest := range []uint32{0, 0x03FFFFFF, 0x02A54321} {
			w := op<<26 | rest
			if _, err := Decode(w); err == nil {
				t.Fatalf("reserved opcode %d in word %#08x accepted", op, w)
			}
		}
	}
}

// TestDecodeImm18Boundaries pins the sign-extension of the 18-bit
// immediate at its edge encodings: 0x1FFFF is ImmMax, 0x20000 wraps to
// ImmMin, 0x3FFFF is −1.
func TestDecodeImm18Boundaries(t *testing.T) {
	cases := []struct {
		payload uint32
		want    int32
	}{
		{0x00000, 0},
		{0x1FFFF, ImmMax},
		{0x20000, ImmMin},
		{0x3FFFF, -1},
		{0x20001, ImmMin + 1},
	}
	for _, c := range cases {
		w := uint32(ADDI)<<26 | c.payload
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("payload %#x: %v", c.payload, err)
		}
		if in.Imm != c.want {
			t.Errorf("payload %#x decoded imm %d, want %d", c.payload, in.Imm, c.want)
		}
	}
}

// TestDecodeNeverPanics: every possible 32-bit word either decodes or
// errors — sampled densely across the opcode space with varied operand
// bits, the decoder must never panic or return an invalid register.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		w := r.Uint32()
		in, err := Decode(w)
		if err != nil {
			continue
		}
		if !in.Op.Valid() || in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			t.Fatalf("word %#08x decoded to out-of-range fields: %+v", w, in)
		}
	}
}

func TestSysValid(t *testing.T) {
	for s := SysHalt; s < numSys; s++ {
		if !s.Valid() {
			t.Errorf("defined sys code %v reported invalid", s)
		}
	}
	if Sys(numSys).Valid() || Sys(1<<17).Valid() {
		t.Error("reserved sys code reported valid")
	}
}

func TestFitsImm(t *testing.T) {
	if !FitsImm(0) || !FitsImm(ImmMax) || !FitsImm(ImmMin) {
		t.Error("in-range values rejected")
	}
	if FitsImm(ImmMax+1) || FitsImm(ImmMin-1) {
		t.Error("out-of-range values accepted")
	}
}

func TestOpClassifiers(t *testing.T) {
	if !ADD.IsRType() || ADDI.IsRType() || SYS.IsRType() {
		t.Error("IsRType misclassifies")
	}
	if !BEQ.IsBranch() || !BGEU.IsBranch() || JAL.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !LW.IsLoad() || !LBU.IsLoad() || SW.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !SW.IsStore() || !SB.IsStore() || LW.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !ADD.Valid() || Op(200).Valid() {
		t.Error("Valid misclassifies")
	}
}

func TestStrings(t *testing.T) {
	if R0.String() != "r0" || SP.String() != "sp" || LR.String() != "lr" || TR.String() != "tr" {
		t.Error("register names wrong")
	}
	if ADD.String() != "add" || Op(99).String() == "" {
		t.Error("op names wrong")
	}
	if SysHalt.String() != "halt" || Sys(99).String() == "" {
		t.Error("sys names wrong")
	}
	for _, in := range []Instr{
		{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3},
		{Op: ADDI, Rd: R1, Rs1: R2, Imm: -5},
		{Op: BEQ, Rd: R1, Rs1: R2, Imm: 8},
		{Op: LW, Rd: R1, Rs1: R2, Imm: 4},
		{Op: SW, Rd: R1, Rs1: R2, Imm: 4},
		{Op: SYS, Imm: int32(SysChkpt)},
	} {
		if s := in.String(); s == "" || strings.Contains(s, "%!") {
			t.Errorf("bad render: %q", s)
		}
	}
}

// Property: every encodable instruction round-trips exactly.
func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			in := Instr{
				Op:  Op(r.Intn(int(numOps))),
				Rd:  Reg(r.Intn(NumRegs)),
				Rs1: Reg(r.Intn(NumRegs)),
			}
			if in.Op.IsRType() {
				in.Rs2 = Reg(r.Intn(NumRegs))
			} else {
				in.Imm = int32(r.Intn(ImmMax-ImmMin+1)) + ImmMin
			}
			vals[0] = reflect.ValueOf(in)
		},
	}
	f := func(in Instr) bool {
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: distinct instructions encode to distinct words (the encoding
// is injective over the canonical field ranges).
func TestPropEncodingInjective(t *testing.T) {
	seen := map[uint32]Instr{}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		in := Instr{
			Op:  Op(r.Intn(int(numOps))),
			Rd:  Reg(r.Intn(NumRegs)),
			Rs1: Reg(r.Intn(NumRegs)),
		}
		if in.Op.IsRType() {
			in.Rs2 = Reg(r.Intn(NumRegs))
		} else {
			in.Imm = int32(r.Intn(ImmMax-ImmMin+1)) + ImmMin
		}
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[w]; ok && prev != in {
			t.Fatalf("collision: %v and %v both encode to %#08x", prev, in, w)
		}
		seen[w] = in
	}
}
