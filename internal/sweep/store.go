package sweep

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	"ehmodel/internal/device"
)

// Entry is one cell's stored outcome: the full simulation Result plus
// any strategy-side extras the cell's Extras hook captured after the
// live run (e.g. Clank's violation counters), serialized so cache hits
// can hand them back without a strategy instance. Prov records what the
// producing simulation cost (entries written before provenance existed
// decode with a nil Prov — a hit then reports ComputeUS 0).
type Entry struct {
	Result *device.Result  `json:"result"`
	Extras json.RawMessage `json:"extras,omitempty"`
	Prov   *StoredProv     `json:"prov,omitempty"`
}

// encodeEntry serializes an entry. JSON is the storage format on
// purpose: Go marshals float64 with the shortest representation that
// round-trips exactly, so a decoded Result is bit-identical to the live
// one and figures rendered from cache hits stay byte-identical.
// Entries containing non-finite floats fail to encode; the executor
// treats that as a bypass rather than storing a lossy approximation.
func encodeEntry(e *Entry) ([]byte, error) {
	return json.Marshal(e)
}

func decodeEntry(b []byte) (*Entry, error) {
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, err
	}
	if e.Result == nil {
		return nil, fmt.Errorf("sweep: entry has no result")
	}
	return &e, nil
}

// Store is a content-addressed result store: encoded entries keyed by
// cell hash. Implementations must be safe for concurrent use. Get
// returning ok=false means a miss — including any entry the store could
// not read back intact (corruption is a miss, never an error surfaced to
// the sweep).
type Store interface {
	Get(k Key) ([]byte, bool)
	Put(k Key, enc []byte) error
}

// MemStore is the in-memory tier: a byte-budgeted LRU over encoded
// entries. The zero budget means DefaultMemBudget.
type MemStore struct {
	mu     sync.Mutex
	budget int
	used   int
	order  *list.List // front = most recent; values are *memEntry
	items  map[Key]*list.Element
}

type memEntry struct {
	key Key
	enc []byte
}

// DefaultMemBudget bounds the in-memory tier at 512 MiB of encoded
// entries — small next to the simulations it saves, large enough to
// hold every cell of a full figure set.
const DefaultMemBudget = 512 << 20

// NewMemStore builds an LRU store holding at most budget encoded bytes
// (≤ 0 selects DefaultMemBudget).
func NewMemStore(budget int) *MemStore {
	if budget <= 0 {
		budget = DefaultMemBudget
	}
	return &MemStore{
		budget: budget,
		order:  list.New(),
		items:  make(map[Key]*list.Element),
	}
}

// Get returns the encoded entry and marks it most recently used.
func (s *MemStore) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*memEntry).enc, true
}

// Put inserts or refreshes an entry, evicting from the LRU tail until
// the byte budget holds. An entry larger than the whole budget is
// silently not cached.
func (s *MemStore) Put(k Key, enc []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		old := el.Value.(*memEntry)
		s.used += len(enc) - len(old.enc)
		old.enc = enc
		s.order.MoveToFront(el)
	} else {
		s.items[k] = s.order.PushFront(&memEntry{key: k, enc: enc})
		s.used += len(enc)
	}
	for s.used > s.budget && s.order.Len() > 0 {
		el := s.order.Back()
		me := el.Value.(*memEntry)
		s.order.Remove(el)
		delete(s.items, me.key)
		s.used -= len(me.enc)
	}
	return nil
}

// Len returns the number of cached entries.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Bytes returns the encoded bytes currently held.
func (s *MemStore) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Tiered layers the in-memory LRU over the on-disk CAS: gets hit memory
// first and promote disk hits; puts write through to both tiers.
type Tiered struct {
	Mem  *MemStore
	Disk *DiskStore
}

// NewTiered builds the standard two-tier store over dir.
func NewTiered(dir string, memBudget int) (*Tiered, error) {
	ds, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return &Tiered{Mem: NewMemStore(memBudget), Disk: ds}, nil
}

// Get checks memory, then disk (promoting a disk hit into memory).
func (t *Tiered) Get(k Key) ([]byte, bool) {
	if enc, ok := t.Mem.Get(k); ok {
		return enc, true
	}
	enc, ok := t.Disk.Get(k)
	if !ok {
		return nil, false
	}
	t.Mem.Put(k, enc) //nolint:errcheck // MemStore.Put cannot fail
	return enc, true
}

// Put writes through to both tiers; the disk write's error is the
// caller's to count, the memory tier never fails.
func (t *Tiered) Put(k Key, enc []byte) error {
	t.Mem.Put(k, enc) //nolint:errcheck // MemStore.Put cannot fail
	return t.Disk.Put(k, enc)
}
