// Package sweep is the memoizing execution layer between the experiment
// drivers and internal/runner: sweeps are declarative plans whose leaf
// nodes are single device.Run cells, each keyed by a canonical content
// hash of everything that determines its Result — workload image,
// strategy parameters, supply, device configuration, engine, and a
// code-version stamp. A store-aware executor answers keyed cells from a
// two-tier result store (in-memory LRU over an on-disk CAS) and
// collapses identical in-flight cells with singleflight, so repeated and
// overlapping sweeps only simulate what has never been simulated before.
//
// The layer inherits runner's determinism invariant and extends it with
// a second axis: figures are byte-identical at any worker count and any
// cache temperature. That holds because a cell's key covers every input
// of the simulation, results round-trip losslessly through the store
// (float64s survive JSON exactly), and cells whose inputs cannot be
// proven hashable — fault injectors, observation recorders, strategies
// without a CacheKey — bypass the store entirely rather than risk a
// stale answer.
package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
)

// CodeVersion is the cache-epoch stamp folded into every cell key.
// Bump it whenever a change anywhere in the simulator could alter any
// Result bit-for-bit (engine fixes, accounting changes, strategy
// semantics): old store entries then miss instead of serving results the
// current code would not produce.
const CodeVersion = "ehmodel-cells-v1"

// Key is a cell's canonical content hash — the address of its Result in
// the store.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (the on-disk entry name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("sweep: bad key %q: %v", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("sweep: bad key %q: want %d bytes, got %d", s, len(k), len(b))
	}
	copy(k[:], b)
	return k, nil
}

// SourceFingerprinter is the optional identity a harvester's voltage
// source exposes for cache keying: a stable string covering every sample
// the source will ever return. *trace.Trace implements it. A harvester
// whose source does not is unhashable, and its cells bypass the store.
type SourceFingerprinter interface {
	CacheFingerprint() string
}

// CellKey computes the canonical content hash of one simulation cell, or
// ok=false when the cell must bypass the store: a fault injector or
// observation recorder is attached (their outputs are not part of the
// key), the strategy does not expose its parameters via
// device.CacheKeyer (or returns an empty key to opt out), or the
// harvester's source cannot be fingerprinted.
//
// The key covers the defaulted config exactly as device.New resolves it
// (defaults applied, the strategy's CacheSizer block size, the resolved
// engine), so equivalent configs spelled differently hash identically.
// Environmental fields — RunTimeout, Interrupt, Observe — are excluded:
// they never change a Result unless they abort the run, and aborted runs
// are never stored.
func CellKey(cfg device.Config, strat device.Strategy) (Key, bool) {
	return cellKey(cfg, strat, CodeVersion)
}

// cellKey is CellKey with the version stamp injectable for tests.
func cellKey(cfg device.Config, strat device.Strategy, version string) (Key, bool) {
	if cfg.Faults != nil || cfg.Record != nil {
		return Key{}, false
	}
	if strat == nil || cfg.Prog == nil {
		return Key{}, false
	}
	ck, ok := strat.(device.CacheKeyer)
	if !ok {
		return Key{}, false
	}
	stratKey := ck.CacheKey()
	if stratKey == "" {
		return Key{}, false
	}
	var sourceFP string
	if cfg.Harvester != nil {
		fp, ok := cfg.Harvester.Source.(SourceFingerprinter)
		if !ok {
			return Key{}, false
		}
		sourceFP = fp.CacheFingerprint()
	}

	cfg = cfg.WithDefaults(strat)

	w := newKeyWriter()
	w.str("version", version)
	w.str("strategy", strat.Name())
	w.str("strategy-key", stratKey)
	hashProgram(w, cfg.Prog)

	w.str("engine", cfg.Engine.Resolved().String())
	w.u64("sram", uint64(cfg.SRAMSize))
	w.u64("fram", uint64(cfg.FRAMSize))

	w.f64("freq", cfg.Power.FreqHz)
	for c := 0; c < energy.NumClasses; c++ {
		w.f64("power", cfg.Power.PowerW[c])
	}

	w.f64("capC", cfg.CapC)
	w.f64("capVMax", cfg.CapVMax)
	w.f64("vOn", cfg.VOn)
	w.f64("vOff", cfg.VOff)

	if cfg.Harvester != nil {
		w.str("harvester", sourceFP)
		w.f64("harvesterR", cfg.Harvester.R)
		w.f64("harvesterEta", cfg.Harvester.Eta)
	}

	w.f64("sigmaB", cfg.SigmaB)
	w.f64("sigmaR", cfg.SigmaR)
	w.f64("omegaB", cfg.OmegaBExtra)
	w.f64("omegaR", cfg.OmegaRExtra)

	w.u64("cacheBlock", uint64(cfg.CacheBlockSize))
	w.u64("cacheSets", uint64(cfg.CacheSets))
	w.u64("cacheWays", uint64(cfg.CacheWays))

	w.u64("maxCycles", cfg.MaxCycles)
	w.u64("maxPeriods", uint64(cfg.MaxPeriods))
	w.bool("livelock", cfg.DetectLivelock)

	var k Key
	w.h.Sum(k[:0])
	return k, true
}

// hashProgram folds the complete workload image into the key: code,
// literal pool, initial memory images, entry point, and the symbol and
// label tables static passes key on (task decomposition reads them via
// the program, so they are simulation inputs, not metadata).
func hashProgram(w *keyWriter, p *asm.Program) {
	w.str("prog", p.Name)
	w.u64("entry", uint64(p.Entry))
	w.u64("ninstr", uint64(len(p.Code)))
	for _, in := range p.Code {
		var buf [20]byte
		binary.LittleEndian.PutUint32(buf[0:], uint32(in.Op))
		binary.LittleEndian.PutUint32(buf[4:], uint32(in.Rd))
		binary.LittleEndian.PutUint32(buf[8:], uint32(in.Rs1))
		binary.LittleEndian.PutUint32(buf[12:], uint32(in.Rs2))
		binary.LittleEndian.PutUint32(buf[16:], uint32(in.Imm))
		w.h.Write(buf[:])
	}
	w.u32s("words", p.Words)
	w.bytes("sramImage", p.SRAMImage)
	w.bytes("framImage", p.FRAMImage)
	hashSymTable(w, "symbols", p.Symbols)
	hashSymTable(w, "labels", p.Labels)
}

func hashSymTable(w *keyWriter, tag string, m map[string]uint32) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	w.u64(tag, uint64(len(names)))
	for _, n := range names {
		w.str(tag, n)
		w.u64(tag, uint64(m[n]))
	}
}

// keyWriter writes tagged, length-prefixed fields into a running hash so
// no two distinct field sequences can collide by concatenation.
type keyWriter struct {
	h   hash.Hash
	buf [8]byte
}

func newKeyWriter() *keyWriter { return &keyWriter{h: sha256.New()} }

func (w *keyWriter) raw(tag string, payload []byte) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(len(tag)))
	w.h.Write(w.buf[:])
	w.h.Write([]byte(tag))
	binary.LittleEndian.PutUint64(w.buf[:], uint64(len(payload)))
	w.h.Write(w.buf[:])
	w.h.Write(payload)
}

func (w *keyWriter) str(tag, s string) { w.raw(tag, []byte(s)) }

func (w *keyWriter) u64(tag string, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.raw(tag, b[:])
}

// f64 hashes the exact bit pattern, so keys distinguish every float the
// simulation could distinguish (including -0 from +0).
func (w *keyWriter) f64(tag string, v float64) { w.u64(tag, math.Float64bits(v)) }

func (w *keyWriter) bool(tag string, v bool) {
	if v {
		w.u64(tag, 1)
	} else {
		w.u64(tag, 0)
	}
}

func (w *keyWriter) bytes(tag string, b []byte) { w.raw(tag, b) }

func (w *keyWriter) u32s(tag string, vs []uint32) {
	b := make([]byte, 8+4*len(vs))
	binary.LittleEndian.PutUint64(b, uint64(len(vs)))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[8+4*i:], v)
	}
	w.raw(tag, b)
}
