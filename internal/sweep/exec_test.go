package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ehmodel/internal/device"
	"ehmodel/internal/runner"
)

// testCell wraps testContent as an executable cell.
func testCell(t testing.TB, scale int, tauB uint64) Cell {
	return Cell{
		Label: fmt.Sprintf("counter scale=%d τB=%d", scale, tauB),
		Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
			cfg, s := testContent(t, scale, tauB, 10000)
			return cfg, s, nil
		},
	}
}

// scrubEnv clears the per-run environmental fields (the ones CellKey
// excludes) so configs can be compared on content.
func scrubEnv(cfg device.Config) device.Config {
	cfg.Interrupt = nil
	cfg.Observe = nil
	cfg.RunTimeout = 0
	return cfg
}

func run1(t *testing.T, e *Executor, cells []Cell, workers int) []CellResult {
	t.Helper()
	res, errs := e.Run(context.Background(), cells, runner.Options{Workers: workers})
	if len(errs) != 0 {
		t.Fatal(errs[0])
	}
	return res
}

// TestExecutorColdWarm: a second run of the same cells is answered
// entirely from the store with bit-identical results.
func TestExecutorColdWarm(t *testing.T) {
	e := NewExecutor(NewMemStore(0))
	cells := []Cell{testCell(t, 1, 2000), testCell(t, 1, 3000), testCell(t, 2, 2000)}

	cold := run1(t, e, cells, 2)
	st := e.Stats()
	if st.Hits != 0 || st.Misses != 3 || st.Bypass != 0 {
		t.Fatalf("cold stats %+v", st)
	}
	for i, r := range cold {
		if r.Cached {
			t.Fatalf("cell %d: cold run reported cached", i)
		}
		if !r.HasKey {
			t.Fatalf("cell %d: hashable cell has no key", i)
		}
	}

	warm := run1(t, e, cells, 3)
	st = e.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("warm stats %+v", st)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("cell %d: warm run not cached", i)
		}
		if !reflect.DeepEqual(cold[i].Result, warm[i].Result) {
			t.Fatalf("cell %d: cached result differs from live result", i)
		}
		if !reflect.DeepEqual(scrubEnv(cold[i].Cfg), scrubEnv(warm[i].Cfg)) {
			t.Fatalf("cell %d: cached cfg differs", i)
		}
	}
}

// TestExecutorDedupWithinRun: the same content appearing as multiple
// cells of one run is simulated once; the rest are hits or singleflight
// followers.
func TestExecutorDedupWithinRun(t *testing.T) {
	e := NewExecutor(NewMemStore(0))
	var cells []Cell
	for i := 0; i < 6; i++ {
		cells = append(cells, testCell(t, 1, 2000))
	}
	res := run1(t, e, cells, 4)
	st := e.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d simulations for 6 identical cells (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Dedup != 5 {
		t.Fatalf("hits %d + dedup %d ≠ 5", st.Hits, st.Dedup)
	}
	for i := 1; i < len(res); i++ {
		if !reflect.DeepEqual(res[0].Result, res[i].Result) {
			t.Fatalf("cell %d diverged", i)
		}
	}
}

// TestExecutorBypass: nil store, NoCache, and unhashable cells all run
// live and are counted as bypasses.
func TestExecutorBypass(t *testing.T) {
	// Nil store: everything bypasses (the library-default executor).
	e := NewExecutor(nil)
	res := run1(t, e, []Cell{testCell(t, 1, 2000)}, 1)
	if st := e.Stats(); st.Bypass != 1 || st.Total() != 1 {
		t.Fatalf("nil-store stats %+v", st)
	}
	if res[0].HasKey || res[0].Cached {
		t.Fatalf("bypass cell carries cache state: %+v", res[0])
	}

	// NoCache forces a bypass even with a store attached.
	e = NewExecutor(NewMemStore(0))
	c := testCell(t, 1, 2000)
	c.NoCache = true
	run1(t, e, []Cell{c, c}, 1)
	if st := e.Stats(); st.Bypass != 2 || st.Misses != 0 {
		t.Fatalf("NoCache stats %+v", st)
	}

	// An unhashable strategy bypasses too.
	u := Cell{
		Label: "unkeyed",
		Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
			cfg, s := testContent(t, 1, 2000, 10000)
			_ = s
			return cfg, optedOutStrategy{Strategy: s}, nil
		},
	}
	_, errs := e.Run(context.Background(), []Cell{u}, runner.Options{})
	// The opted-out wrapper cannot actually run (it has no real
	// implementation behind Name etc. beyond the embedded strategy), so
	// accept either a clean bypass or a strategy error — the point is it
	// was counted as bypass, not stored.
	_ = errs
	if st := e.Stats(); st.Bypass < 3 {
		t.Fatalf("unhashable cell not bypassed: %+v", st)
	}
}

// TestExecutorVerifyAppliesToCachedResults: a Verify rejection must fire
// identically on the cold (live) and warm (cached) paths, and the
// rejected result must still be stored.
func TestExecutorVerifyAppliesToCachedResults(t *testing.T) {
	e := NewExecutor(NewMemStore(0))
	fail := fmt.Errorf("policy says no")
	c := testCell(t, 1, 2000)
	c.Verify = func(res *device.Result) error { return fail }

	_, errs := e.Run(context.Background(), []Cell{c}, runner.Options{})
	if len(errs) != 1 || errs[0].Err != fail {
		t.Fatalf("cold verify: %v", errs)
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Fatalf("rejected result not stored: %+v", st)
	}
	_, errs = e.Run(context.Background(), []Cell{c}, runner.Options{})
	if len(errs) != 1 || errs[0].Err != fail {
		t.Fatalf("warm verify: %v", errs)
	}
	if st := e.Stats(); st.Hits != 1 {
		t.Fatalf("verify-rejected cell was not served from store: %+v", st)
	}
}

// TestExecutorExtrasRoundTrip: driver-side extras survive the store.
func TestExecutorExtrasRoundTrip(t *testing.T) {
	type stats struct {
		Periods int `json:"periods"`
	}
	e := NewExecutor(NewMemStore(0))
	c := testCell(t, 1, 2000)
	c.Extras = func(s device.Strategy, res *device.Result) (any, error) {
		return stats{Periods: len(res.Periods)}, nil
	}
	cold := run1(t, e, []Cell{c}, 1)
	warm := run1(t, e, []Cell{c}, 1)
	var a, b stats
	if ok, err := cold[0].DecodeExtras(&a); !ok || err != nil {
		t.Fatalf("cold extras: %v %v", ok, err)
	}
	if ok, err := warm[0].DecodeExtras(&b); !ok || err != nil {
		t.Fatalf("warm extras: %v %v", ok, err)
	}
	if a != b || a.Periods == 0 {
		t.Fatalf("extras mismatch: %+v vs %+v", a, b)
	}
	if !warm[0].Cached {
		t.Fatal("second run not cached")
	}
}

// TestExecutorBuildError: a failing Build fails only its own cell.
func TestExecutorBuildError(t *testing.T) {
	e := NewExecutor(NewMemStore(0))
	boom := fmt.Errorf("no such workload")
	cells := []Cell{
		testCell(t, 1, 2000),
		{Label: "broken", Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
			return device.Config{}, nil, boom
		}},
	}
	res, errs := e.Run(context.Background(), cells, runner.Options{})
	if len(errs) != 1 || errs[0].Index != 1 || errs[0].Err != boom {
		t.Fatalf("errs %v", errs)
	}
	if res[0].Result == nil {
		t.Fatal("healthy cell lost")
	}
}

// TestFlightGroupCollapse exercises the singleflight directly: N
// concurrent calls for one key yield one leader and N−1 followers
// sharing the leader's entry.
func TestFlightGroupCollapse(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	ent := &Entry{Result: nil}

	// The leader enters fn and blocks; every follower spawned after
	// `started` finds the in-flight call and waits on it.
	leaderOut := make(chan error, 1)
	go func() {
		e, shared, err := g.do(context.Background(), key(1), func() (*Entry, error) {
			calls.Add(1)
			close(started)
			<-release
			return ent, nil
		})
		if e != ent || shared {
			err = fmt.Errorf("leader: ent=%p shared=%v", e, shared)
		}
		leaderOut <- err
	}()
	<-started

	const followers = 7
	type out struct {
		ent    *Entry
		shared bool
		err    error
	}
	outs := make(chan out, followers)
	for i := 0; i < followers; i++ {
		go func() {
			e, shared, err := g.do(context.Background(), key(1), func() (*Entry, error) {
				calls.Add(1)
				return ent, nil
			})
			outs <- out{e, shared, err}
		}()
	}
	// Give the followers time to park on the flight, then release.
	waitForFlightWaiters(t, &g)
	close(release)

	if err := <-leaderOut; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < followers; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.ent != ent {
			t.Fatal("follower got a different entry")
		}
		if !o.shared {
			t.Fatal("a follower became a leader despite the in-flight call")
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d executions for 8 concurrent calls", got)
	}
}

// waitForFlightWaiters gives follower goroutines a moment to enter do()
// and park. The flight's presence is checkable; the parked waiters are
// not, so a short grace period follows.
func waitForFlightWaiters(t *testing.T, g *flightGroup) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		inFlight := len(g.m)
		g.mu.Unlock()
		if inFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never formed")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
}

// TestFlightGroupFollowerCancellation: a follower whose context dies
// stops waiting without killing the leader.
func TestFlightGroupFollowerCancellation(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), key(2), func() (*Entry, error) {
			close(started)
			<-release
			return &Entry{}, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.do(ctx, key(2), func() (*Entry, error) {
		t.Error("canceled follower became a leader")
		return nil, nil
	})
	if !shared || err == nil {
		t.Fatalf("shared=%v err=%v, want canceled follower", shared, err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
}

// TestPlanTree: depth-first leaf order, Len, and fingerprint
// sensitivity to content and structure.
func TestPlanTree(t *testing.T) {
	build := func() *Plan {
		p := NewPlan("root")
		p.Add(testCell(t, 1, 1000))
		g1 := p.Group("g1")
		g1.Add(testCell(t, 1, 2000))
		g1.Add(testCell(t, 1, 3000))
		g2 := p.Group("g2")
		g2.Add(testCell(t, 2, 2000))
		return p
	}
	p := build()
	if p.Len() != 4 {
		t.Fatalf("len %d", p.Len())
	}
	cells := p.Cells()
	want := []string{
		"counter scale=1 τB=1000",
		"counter scale=1 τB=2000",
		"counter scale=1 τB=3000",
		"counter scale=2 τB=2000",
	}
	for i, c := range cells {
		if c.Label != want[i] {
			t.Fatalf("leaf %d = %q, want %q", i, c.Label, want[i])
		}
	}

	ctx := context.Background()
	f1, err := p.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := build().Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("identical plans fingerprint differently")
	}
	// Changing one cell's content changes the root fingerprint.
	p3 := build()
	p3.Add(testCell(t, 3, 1000))
	f3, err := p3.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("content change invisible to fingerprint")
	}
	// Bypass leaves are salted by position+label, not aliased.
	p4 := build()
	c := testCell(t, 1, 1000)
	c.NoCache = true
	p4.Add(c)
	p5 := build()
	c2 := testCell(t, 1, 1000)
	c2.NoCache = true
	c2.Label = "other"
	p5.Add(c2)
	f4, _ := p4.Fingerprint(ctx)
	f5, _ := p5.Fingerprint(ctx)
	if f4 == f5 {
		t.Fatal("bypass leaves aliased")
	}

	// RunPlan returns results in leaf order through the default executor.
	res, errs := RunPlan(ctx, p, runner.Options{Workers: 2})
	if len(errs) != 0 {
		t.Fatal(errs[0])
	}
	if len(res) != 4 {
		t.Fatalf("%d results", len(res))
	}
}

// TestExecutorDiskWarm: a fresh executor over the same disk store
// answers a repeated sweep without simulating (cross-process warmth).
func TestExecutorDiskWarm(t *testing.T) {
	dir := t.TempDir()
	cells := []Cell{testCell(t, 1, 2000), testCell(t, 1, 3000)}

	t1, err := NewTiered(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewExecutor(t1)
	cold := run1(t, e1, cells, 2)

	t2, err := NewTiered(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewExecutor(t2) // fresh memory tier: only disk is warm
	warm := run1(t, e2, cells, 2)
	st := e2.Stats()
	if st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("disk-warm stats %+v", st)
	}
	for i := range warm {
		if !reflect.DeepEqual(cold[i].Result, warm[i].Result) {
			t.Fatalf("cell %d: disk round trip changed the result", i)
		}
	}
}

// TestEntryEncodingRejectsNonFinite: entries with NaN results fail to
// encode (the executor then serves without storing).
func TestEntryEncoding(t *testing.T) {
	ent := &Entry{Result: &device.Result{}, Extras: json.RawMessage(`{"k":1}`)}
	enc, err := encodeEntry(ent)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Result == nil || string(back.Extras) != `{"k":1}` {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := decodeEntry([]byte(`{"extras":{}}`)); err == nil {
		t.Fatal("entry without result accepted")
	}
	if _, err := decodeEntry([]byte(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
