package sweep

import (
	"context"
	"testing"

	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
)

// tracedRun executes cells with a trace and a provenance log attached
// and returns both alongside the results.
func tracedRun(t *testing.T, e *Executor, cells []Cell, workers int) (*obsv.TraceData, *ProvLog) {
	t.Helper()
	tr := obsv.NewTrace(obsv.NewTraceID(), 0)
	pl := NewProvLog(0)
	ctx := WithProvLog(obsv.ContextWithTrace(context.Background(), tr), pl)
	_, errs := e.Run(ctx, cells, runner.Options{Workers: workers})
	if len(errs) != 0 {
		t.Fatal(errs[0])
	}
	return tr.Snapshot(), pl
}

// spansNamed returns the trace's spans with the given name.
func spansNamed(td *obsv.TraceData, name string) []*obsv.SpanNode {
	var out []*obsv.SpanNode
	var walk func(ns []*obsv.SpanNode)
	walk = func(ns []*obsv.SpanNode) {
		for _, n := range ns {
			if n.Name == name {
				out = append(out, n)
			}
			walk(n.Children)
		}
	}
	walk(td.Tree())
	return out
}

// TestExecutorCellSpans: a traced cold run records one "cell" span per
// cell with its outcome and a nested "device.run" span carrying the
// simulation's lifecycle counts; the warm run's cells are hits with no
// device.run underneath.
func TestExecutorCellSpans(t *testing.T) {
	e := NewExecutor(NewMemStore(0))
	cells := []Cell{testCell(t, 1, 2000), testCell(t, 1, 3000)}

	cold, _ := tracedRun(t, e, cells, 2)
	cellSpans := spansNamed(cold, "cell")
	if len(cellSpans) != 2 {
		t.Fatalf("cold run recorded %d cell spans", len(cellSpans))
	}
	for _, sp := range cellSpans {
		if sp.Attrs["outcome"] != "miss" {
			t.Fatalf("cold cell outcome %q", sp.Attrs["outcome"])
		}
		if sp.Attrs["completed"] != "true" || sp.Attrs["simcycles"] == "" || sp.Attrs["simcycles"] == "0" {
			t.Fatalf("cold cell attrs %v", sp.Attrs)
		}
		var dev *obsv.SpanNode
		for _, c := range sp.Children {
			if c.Name == "device.run" {
				dev = c
			}
		}
		if dev == nil {
			t.Fatal("cell span has no device.run child")
		}
		if dev.Attrs["periods"] == "" || dev.Attrs["backups"] == "" {
			t.Fatalf("device.run attrs %v", dev.Attrs)
		}
	}

	warm, _ := tracedRun(t, e, cells, 2)
	for _, sp := range spansNamed(warm, "cell") {
		if sp.Attrs["outcome"] != "hit" {
			t.Fatalf("warm cell outcome %q", sp.Attrs["outcome"])
		}
	}
	if n := len(spansNamed(warm, "device.run")); n != 0 {
		t.Fatalf("warm run simulated: %d device.run spans", n)
	}
}

// TestExecutorProvenance: the provenance log mirrors the executor's
// outcome accounting, carries worker slots, and recovers the producing
// run's compute cost from the stored entry on hits.
func TestExecutorProvenance(t *testing.T) {
	e := NewExecutor(NewMemStore(0))
	cells := []Cell{testCell(t, 1, 2000), testCell(t, 1, 3000)}

	_, cold := tracedRun(t, e, cells, 2)
	recs := cold.Cells()
	if len(recs) != 2 {
		t.Fatalf("%d cold records", len(recs))
	}
	if cold.ComputedCells() != 2 {
		t.Fatalf("cold computed %d", cold.ComputedCells())
	}
	for _, p := range recs {
		if p.Outcome != "miss" || !p.Computed() {
			t.Fatalf("cold record %+v", p)
		}
		if p.Key == "" || p.Label == "" {
			t.Fatalf("record missing identity: %+v", p)
		}
		if p.Worker < 0 || p.Worker > 1 {
			t.Fatalf("worker slot %d", p.Worker)
		}
		if p.ComputeUS <= 0 || p.WallUS <= 0 || p.SimCycles == 0 || !p.Completed {
			t.Fatalf("cold record costs: %+v", p)
		}
	}

	_, warm := tracedRun(t, e, cells, 2)
	if warm.ComputedCells() != 0 {
		t.Fatalf("warm run computed %d cells", warm.ComputedCells())
	}
	for _, p := range warm.Cells() {
		if p.Outcome != "hit" {
			t.Fatalf("warm outcome %q", p.Outcome)
		}
		// The hit's ComputeUS is the cold run's cost, recovered from the
		// stored entry's provenance stub.
		if p.ComputeUS <= 0 {
			t.Fatalf("hit lost the stored compute cost: %+v", p)
		}
	}

	// Bypass: provenance still records, without a key.
	eb := NewExecutor(nil)
	_, bp := tracedRun(t, eb, []Cell{testCell(t, 1, 2000)}, 1)
	recs = bp.Cells()
	if len(recs) != 1 || recs[0].Outcome != "bypass" || recs[0].Key != "" || !recs[0].Computed() {
		t.Fatalf("bypass record %+v", recs)
	}
}

// TestStoredProvPersisted: the compute-cost stub rides inside the CAS
// entry, and entries stored before provenance existed decode to a hit
// with ComputeUS 0.
func TestStoredProvPersisted(t *testing.T) {
	store := NewMemStore(0)
	e := NewExecutor(store)
	c := testCell(t, 1, 2000)
	run1(t, e, []Cell{c}, 1)

	cfg, strat, err := c.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	k, ok := CellKey(cfg, strat)
	if !ok {
		t.Fatal("cell not keyable")
	}
	enc, ok := store.Get(k)
	if !ok {
		t.Fatal("entry not stored")
	}
	ent, err := decodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if ent.Prov == nil || ent.Prov.ComputeUS <= 0 || ent.Prov.CreatedUnixMS <= 0 || ent.Prov.Label != c.Label {
		t.Fatalf("stored prov %+v", ent.Prov)
	}

	// A pre-provenance entry (no prov field) still decodes and hits.
	legacy, err := decodeEntry([]byte(`{"result":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Prov != nil {
		t.Fatal("legacy entry grew provenance")
	}
	if storedComputeUS(legacy) != 0 {
		t.Fatal("legacy compute cost not zero")
	}
}

// TestProvLogLimit: records past the limit are counted, not stored, and
// OnCell still fires for every record.
func TestProvLogLimit(t *testing.T) {
	l := NewProvLog(2)
	seen := 0
	l.OnCell = func(CellProv) { seen++ }
	for i := 0; i < 5; i++ {
		l.add(CellProv{Label: "x", Outcome: "miss"})
	}
	if len(l.Cells()) != 2 || l.Dropped() != 3 {
		t.Fatalf("cells %d dropped %d", len(l.Cells()), l.Dropped())
	}
	if seen != 5 {
		t.Fatalf("OnCell fired %d times", seen)
	}
}

// TestProvFromAbsent: with no log attached the lookup returns nil and
// the executor's disabled path stays inert.
func TestProvFromAbsent(t *testing.T) {
	if ProvFrom(context.Background()) != nil {
		t.Fatal("ProvFrom invented a log")
	}
	if got := WithProvLog(context.Background(), nil); got != context.Background() {
		t.Fatal("nil log rewrote the context")
	}
}
