package sweep

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"time"

	"ehmodel/internal/device"
	"ehmodel/internal/obsv"
	"ehmodel/internal/runner"
)

// Cell is one sweep leaf: everything needed to run (or recall) a single
// simulation.
type Cell struct {
	// Label names the cell in error reports and progress accounting.
	Label string
	// Build assembles the cell's config and strategy. It runs inside the
	// worker pool (program assembly is part of the cell's work) and must
	// be deterministic: the same cell must always build the same content.
	// The executor wires RunTimeout and Interrupt itself; Build should
	// leave them unset.
	Build func(ctx context.Context) (device.Config, device.Strategy, error)
	// Extras, when non-nil, runs after a live simulation with the
	// strategy still attached and returns driver-visible data to store
	// alongside the Result (e.g. Clank's violation counters). The value
	// must be JSON-serializable; cache hits return it decoded into
	// CellResult.Extras without a strategy instance.
	Extras func(s device.Strategy, res *device.Result) (any, error)
	// Verify, when non-nil, validates the result — cached or live — and
	// its error fails the point (e.g. "run must complete"). Rejected
	// results are still stored: a cell that fails policy cold must fail
	// identically warm.
	Verify func(res *device.Result) error
	// NoCache forces a bypass even when the cell is hashable.
	NoCache bool
}

// CellResult is one executed (or recalled) cell.
type CellResult struct {
	// Result is the simulation outcome.
	Result *device.Result
	// Cfg is the defaulted config exactly as device.Cfg() would report
	// it, available on cache hits without a device.
	Cfg device.Config
	// Key is the cell's content hash; HasKey is false for bypassed cells.
	Key    Key
	HasKey bool
	// Cached reports whether Result came from the store (a singleflight
	// follower's shared result counts as cached).
	Cached bool
	// Extras is the stored extras payload (nil when the cell has none).
	Extras json.RawMessage
}

// DecodeExtras unmarshals the cell's extras into v; it is a no-op
// returning false when the cell carries none.
func (r *CellResult) DecodeExtras(v any) (bool, error) {
	if len(r.Extras) == 0 {
		return false, nil
	}
	if err := json.Unmarshal(r.Extras, v); err != nil {
		return false, err
	}
	return true, nil
}

// Stats is a snapshot of an executor's cache accounting.
type Stats struct {
	// Hits answered a cell from the store; Misses simulated and stored;
	// Bypass ran uncached (unhashable cell, NoCache, or no store);
	// Dedup collapsed onto an identical in-flight cell (singleflight
	// followers); StoreErrors counts failed store writes (the sweep
	// continues — a broken store degrades to slower, never to wrong).
	Hits, Misses, Bypass, Dedup, StoreErrors uint64
}

// Total returns how many cells the executor resolved.
func (s Stats) Total() uint64 { return s.Hits + s.Misses + s.Bypass + s.Dedup }

// Executor runs cells through the store with singleflight dedup,
// layered on runner.Map for bounded workers, panic isolation and ordered
// merge. A nil-store executor degrades to plain runner semantics (every
// cell a bypass), which is the library default — caching is opt-in at
// the CLI/service layer via SetDefault.
type Executor struct {
	store   Store
	flights flightGroup

	hits, misses, bypass, dedup, storeErrs atomic.Uint64
}

// NewExecutor builds an executor over store (nil disables caching).
func NewExecutor(store Store) *Executor { return &Executor{store: store} }

// Store returns the executor's backing store (nil when caching is off).
func (e *Executor) Store() Store { return e.store }

// Stats snapshots the cache counters.
func (e *Executor) Stats() Stats {
	return Stats{
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Bypass:      e.bypass.Load(),
		Dedup:       e.dedup.Load(),
		StoreErrors: e.storeErrs.Load(),
	}
}

// defaultExec is the process-wide executor sweep.Run resolves to; a CLI
// or service configures it once at startup (mirroring
// device.SetDefaultEngine), so drivers inherit caching without plumbing.
var defaultExec atomic.Pointer[Executor]

// SetDefault installs the process-wide executor. Call once, at startup.
func SetDefault(e *Executor) { defaultExec.Store(e) }

// Default returns the process-wide executor, creating an uncached one on
// first use.
func Default() *Executor {
	if e := defaultExec.Load(); e != nil {
		return e
	}
	e := NewExecutor(nil)
	if defaultExec.CompareAndSwap(nil, e) {
		return e
	}
	return defaultExec.Load()
}

// Run executes cells through the process-default executor.
func Run(ctx context.Context, cells []Cell, o runner.Options) ([]CellResult, runner.Errors) {
	return Default().Run(ctx, cells, o)
}

// Run executes the cells on runner's bounded worker pool and returns
// their results merged in input order: results[i] belongs to cells[i],
// failed points are zero-valued with the failure in errs — exactly
// runner.Map's contract, so figures stay byte-identical at any worker
// count and any cache temperature.
func (e *Executor) Run(ctx context.Context, cells []Cell, o runner.Options) ([]CellResult, runner.Errors) {
	if o.Label == nil {
		o.Label = func(i int) string { return cells[i].Label }
	}
	return runner.MapCtx(ctx, len(cells), o, func(ctx context.Context, i int) (CellResult, error) {
		return e.runCell(ctx, &cells[i], o)
	})
}

func (e *Executor) runCell(ctx context.Context, c *Cell, o runner.Options) (CellResult, error) {
	// Request-scoped observability: when the context carries a trace the
	// whole resolution becomes a "cell" span; when it carries a ProvLog
	// the outcome lands there too. Both are nil-disabled — with neither
	// attached this adds two time stamps and two context lookups per
	// cell, no allocation.
	start := time.Now()
	ctx, sp := obsv.StartSpan(ctx, "cell")
	sp.SetAttr("label", c.Label)

	cfg, strat, err := c.Build(ctx)
	if err != nil {
		return CellResult{}, failSpan(sp, err)
	}
	// Environmental wiring is the executor's job, applied uniformly so a
	// cell's identity never depends on it: neither field is part of the
	// key, and an aborted run is never stored.
	if cfg.RunTimeout == 0 {
		cfg.RunTimeout = o.RunTimeout
	}
	if cfg.Interrupt == nil {
		cfg.Interrupt = runner.Interrupt(ctx)
	}

	key, keyed := Key{}, false
	if e.store != nil && !c.NoCache {
		key, keyed = CellKey(cfg, strat)
	}
	if !keyed {
		e.bypass.Add(1)
		res, dcfg, extras, err := runLive(ctx, cfg, strat, c)
		if err != nil {
			return CellResult{}, failSpan(sp, err)
		}
		out := CellResult{Result: res, Cfg: dcfg, Extras: extras}
		e.noteCell(ctx, sp, c, "bypass", Key{}, false, res, start, 0)
		return out, verify(c, res)
	}

	if enc, ok := e.store.Get(key); ok {
		if ent, err := decodeEntry(enc); err == nil {
			e.hits.Add(1)
			e.noteCell(ctx, sp, c, "hit", key, true, ent.Result, start, storedComputeUS(ent))
			return e.finish(c, cfg, strat, key, ent, true)
		}
		// An undecodable entry (possible only if a foreign writer put
		// garbage in the store) is a miss; the rewrite below heals it.
	}

	waitStart := time.Now()
	ent, shared, err := e.flights.do(ctx, key, func() (*Entry, error) {
		live := time.Now()
		res, _, extras, err := runLive(ctx, cfg, strat, c)
		if err != nil {
			return nil, err
		}
		ent := &Entry{Result: res, Extras: extras, Prov: &StoredProv{
			Label:         c.Label,
			ComputeUS:     time.Since(live).Microseconds(),
			CreatedUnixMS: live.UnixMilli(),
		}}
		if enc, err := encodeEntry(ent); err == nil {
			if err := e.store.Put(key, enc); err != nil {
				e.storeErrs.Add(1)
			}
		} else {
			// Non-finite floats in the result: serve it, don't store it.
			e.storeErrs.Add(1)
		}
		return ent, nil
	})
	if err != nil {
		return CellResult{}, failSpan(sp, err)
	}
	outcome := "miss"
	if shared {
		e.dedup.Add(1)
		outcome = "dedup"
		// The follower's whole wait was on the leader's run; record it
		// retroactively (the span was only known to be a wait, not a
		// simulation, once the flight resolved).
		obsv.AddSpan(ctx, "singleflight.wait", waitStart, time.Now())
	} else {
		e.misses.Add(1)
	}
	e.noteCell(ctx, sp, c, outcome, key, true, ent.Result, start, storedComputeUS(ent))
	return e.finish(c, cfg, strat, key, ent, shared)
}

// failSpan closes sp recording err; nil-safe, returns err unchanged.
func failSpan(sp *obsv.Span, err error) error {
	sp.SetAttr("error", err.Error())
	sp.Finish()
	return err
}

// storedComputeUS recovers the producing run's cost from an entry.
func storedComputeUS(ent *Entry) int64 {
	if ent.Prov == nil {
		return 0
	}
	return ent.Prov.ComputeUS
}

// noteCell closes the cell span with its outcome and appends the
// provenance record when the request collects one.
func (e *Executor) noteCell(ctx context.Context, sp *obsv.Span, c *Cell, outcome string, key Key, keyed bool, res *device.Result, start time.Time, computeUS int64) {
	wallUS := time.Since(start).Microseconds()
	if computeUS == 0 && (outcome == "miss" || outcome == "bypass") {
		computeUS = wallUS
	}
	if sp != nil {
		sp.SetAttr("outcome", outcome)
		sp.SetUint("simcycles", res.TotalCycles)
		sp.SetBool("completed", res.Completed)
		sp.Finish()
	}
	pl := ProvFrom(ctx)
	if pl == nil {
		return
	}
	p := CellProv{
		Label:     c.Label,
		Outcome:   outcome,
		Worker:    runner.WorkerFrom(ctx),
		WallUS:    wallUS,
		SimCycles: res.TotalCycles,
		Periods:   len(res.Periods),
		Completed: res.Completed,
		ComputeUS: computeUS,
	}
	if keyed {
		p.Key = key.String()
	}
	pl.add(p)
}

// finish assembles a CellResult from a store or singleflight entry.
func (e *Executor) finish(c *Cell, cfg device.Config, strat device.Strategy, key Key, ent *Entry, cached bool) (CellResult, error) {
	out := CellResult{
		Result: ent.Result,
		Cfg:    cfg.WithDefaults(strat),
		Key:    key,
		HasKey: true,
		Cached: cached,
		Extras: ent.Extras,
	}
	return out, verify(c, ent.Result)
}

// runLive simulates the cell and captures its extras. When the context
// carries a trace, the simulation gets its own "device.run" span whose
// attributes (periods, backups, brown-outs, simcycles) are counted from
// the device's own lifecycle events: a SpanCounter is combined with
// whatever tracer the config or process default would have used, so
// tracing a request never displaces the metrics sink.
func runLive(ctx context.Context, cfg device.Config, strat device.Strategy, c *Cell) (*device.Result, device.Config, json.RawMessage, error) {
	_, sp := obsv.StartSpan(ctx, "device.run")
	var sc *obsv.SpanCounter
	if sp != nil {
		sc = obsv.NewSpanCounter(sp)
		obs := cfg.Observe
		if obs == nil {
			obs = device.DefaultObserver()
		}
		cfg.Observe = obsv.Combine(obs, sc)
	}
	d, err := device.New(cfg, strat)
	if err != nil {
		return nil, device.Config{}, nil, failSpan(sp, err)
	}
	res, err := d.Run()
	if sp != nil {
		sc.Flush()
	}
	if err != nil {
		return nil, device.Config{}, nil, failSpan(sp, err)
	}
	sp.Finish()
	var extras json.RawMessage
	if c.Extras != nil {
		v, err := c.Extras(strat, res)
		if err != nil {
			return nil, device.Config{}, nil, err
		}
		if v != nil {
			b, err := json.Marshal(v)
			if err != nil {
				return nil, device.Config{}, nil, err
			}
			extras = b
		}
	}
	return res, d.Cfg(), extras, nil
}

func verify(c *Cell, res *device.Result) error {
	if c.Verify == nil {
		return nil
	}
	return c.Verify(res)
}
