package sweep

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// DiskStore is the persistent tier: a content-addressed store under one
// directory, one file per cell keyed by its hex hash (sharded by the
// first byte so no directory grows unbounded). Writes are crash-safe —
// entries land in a temp file and are renamed into place, so a SIGINT
// mid-sweep can at worst leave an orphaned temp file, never a partial
// entry under a live name. Every load validates a magic header and a
// CRC32 of the payload; anything that fails (truncation, corruption, a
// format from another epoch) is treated as a miss and deleted, to be
// rewritten by the simulation that follows.
type DiskStore struct {
	dir string
}

// diskMagic versions the on-disk framing (independent of CodeVersion,
// which versions the simulation semantics inside the key).
const diskMagic = "EHCAS1\n"

// NewDiskStore opens (creating if needed) the CAS rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: disk store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create store dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	hex := k.String()
	return filepath.Join(s.dir, hex[:2], hex+".json")
}

// frame wraps an encoded entry for disk: magic, little-endian CRC32
// (Castagnoli) of the payload, payload.
func frame(enc []byte) []byte {
	out := make([]byte, 0, len(diskMagic)+4+len(enc))
	out = append(out, diskMagic...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(enc, castagnoli))
	out = append(out, crc[:]...)
	return append(out, enc...)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// unframe validates and strips the disk framing; any inconsistency is an
// error (the caller turns it into a miss).
func unframe(b []byte) ([]byte, error) {
	if len(b) < len(diskMagic)+4 {
		return nil, fmt.Errorf("sweep: entry truncated (%d bytes)", len(b))
	}
	if string(b[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("sweep: bad entry magic")
	}
	want := binary.LittleEndian.Uint32(b[len(diskMagic):])
	payload := b[len(diskMagic)+4:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("sweep: entry CRC mismatch (want %08x, got %08x)", want, got)
	}
	return payload, nil
}

// Get loads an entry; corrupt or unreadable entries are deleted and
// reported as misses so the cell is re-simulated and rewritten.
func (s *DiskStore) Get(k Key) ([]byte, bool) {
	p := s.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	payload, err := unframe(b)
	if err != nil {
		os.Remove(p)
		return nil, false
	}
	return payload, true
}

// Put writes an entry atomically: temp file in the final directory,
// fsync'd, renamed over the content-addressed name. Concurrent writers
// of the same key race harmlessly — both temp files carry identical
// content, and rename is atomic.
func (s *DiskStore) Put(k Key, enc []byte) error {
	p := s.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("sweep: store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-"+k.String()[:8]+"-*")
	if err != nil {
		return fmt.Errorf("sweep: store put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	framed := frame(enc)
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: store put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("sweep: store put: %w", err)
	}
	return nil
}

// DiskStats summarizes the persistent tier for store-stats artifacts.
type DiskStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Stats walks the store and counts live entries (temp files excluded).
func (s *DiskStore) Stats() (DiskStats, error) {
	var st DiskStats
	err := filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasPrefix(filepath.Base(path), ".tmp-") {
			return nil
		}
		st.Entries++
		st.Bytes += info.Size()
		return nil
	})
	return st, err
}
