package sweep

import (
	"math"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/strategy"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// testContent builds a small counter-workload cell configuration — the
// canonical hashable cell — for key and executor tests.
func testContent(t testing.TB, scale int, tauB uint64, periodCycles float64) (device.Config, device.Strategy) {
	t.Helper()
	w, ok := workload.Get("counter")
	if !ok {
		t.Fatal("no counter workload")
	}
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	pm := energy.MSP430Power()
	e := periodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: 50, MaxCycles: 1 << 62,
	}
	return cfg, strategy.NewTimer(tauB, 0.1)
}

func mustKey(t testing.TB, cfg device.Config, s device.Strategy) Key {
	t.Helper()
	k, ok := CellKey(cfg, s)
	if !ok {
		t.Fatal("cell unexpectedly unhashable")
	}
	return k
}

func TestCellKeyDeterministic(t *testing.T) {
	cfg, s := testContent(t, 2, 3000, 10000)
	k1 := mustKey(t, cfg, s)
	k2 := mustKey(t, cfg, s)
	if k1 != k2 {
		t.Fatalf("same content, different keys: %s vs %s", k1, k2)
	}
	// An equivalent config built independently must hash identically
	// (content addressing, not pointer identity).
	cfg2, s2 := testContent(t, 2, 3000, 10000)
	if k3 := mustKey(t, cfg2, s2); k3 != k1 {
		t.Fatalf("independently built identical content hashes differently")
	}
}

// TestCellKeySensitivity: every simulation-relevant field must move the
// key, and every environmental field must not.
func TestCellKeySensitivity(t *testing.T) {
	base, baseStrat := testContent(t, 2, 3000, 10000)
	baseKey := mustKey(t, base, baseStrat)

	seen := map[Key]string{baseKey: "base"}
	distinct := func(name string, cfg device.Config, s device.Strategy) {
		t.Helper()
		k := mustKey(t, cfg, s)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
			return
		}
		seen[k] = name
	}

	{ // code-version stamp (the injectable seam CellKey pins to CodeVersion)
		k, ok := cellKey(base, baseStrat, "ehmodel-cells-v999")
		if !ok {
			t.Fatal("unhashable under a different version")
		}
		if k == baseKey {
			t.Error("code-version bump did not change the key")
		}
	}
	{ // workload image
		cfg, _ := testContent(t, 3, 3000, 10000)
		distinct("prog scale", cfg, baseStrat)
	}
	{ // strategy parameters (via CacheKey)
		distinct("strategy τ_B", base, strategy.NewTimer(4000, 0.1))
		distinct("strategy α_B", base, strategy.NewTimer(3000, 0.2))
	}
	{ // a different strategy with the same parameters
		distinct("strategy kind", base, strategy.NewHibernus())
	}
	{ // supply
		cfg := base
		cfg.CapC *= 2
		distinct("capC", cfg, baseStrat)
	}
	{ // engine
		cfg := base
		cfg.Engine = device.EngineReference
		distinct("engine", cfg, baseStrat)
	}
	{ // bandwidths and NVM cost adjustments
		for _, m := range []struct {
			name string
			mut  func(*device.Config)
		}{
			{"sigmaB", func(c *device.Config) { c.SigmaB = 7 }},
			{"sigmaR", func(c *device.Config) { c.SigmaR = 7 }},
			{"omegaBExtra", func(c *device.Config) { c.OmegaBExtra = 1e-12 }},
			{"omegaRExtra", func(c *device.Config) { c.OmegaRExtra = 1e-12 }},
			{"sram", func(c *device.Config) { c.SRAMSize = 4 << 10 }},
			{"fram", func(c *device.Config) { c.FRAMSize = 128 << 10 }},
			{"cache", func(c *device.Config) { c.CacheBlockSize = 32; c.CacheSets = 16; c.CacheWays = 2 }},
			{"maxCycles", func(c *device.Config) { c.MaxCycles = 1 << 40 }},
			{"maxPeriods", func(c *device.Config) { c.MaxPeriods = 51 }},
			{"livelock", func(c *device.Config) { c.DetectLivelock = true }},
			{"vOff", func(c *device.Config) { c.VOff *= 1.01 }},
		} {
			cfg := base
			m.mut(&cfg)
			distinct(m.name, cfg, baseStrat)
		}
	}
	{ // harvester: fingerprinted source, R and Eta are all key material
		tr := trace.Generate(trace.MultiPeak, 1, 1e-3, 42)
		cfg := base
		cfg.Harvester = mustHarvester(t, tr, 40000, 0.7)
		distinct("harvester", cfg, baseStrat)
		cfg2 := base
		cfg2.Harvester = mustHarvester(t, tr, 40000, 0.8)
		distinct("harvester eta", cfg2, baseStrat)
		// MultiPeak is seed-independent by construction, so vary the seed
		// on Spikes, whose placement is drawn from the rng.
		cfg3 := base
		cfg3.Harvester = mustHarvester(t, trace.Generate(trace.Spikes, 1, 1e-3, 42), 40000, 0.7)
		distinct("harvester trace kind", cfg3, baseStrat)
		cfg4 := base
		cfg4.Harvester = mustHarvester(t, trace.Generate(trace.Spikes, 1, 1e-3, 43), 40000, 0.7)
		distinct("harvester trace seed", cfg4, baseStrat)
	}

	// Environmental fields must NOT move the key.
	{
		cfg := base
		cfg.RunTimeout = 123
		cfg.Interrupt = func() error { return nil }
		if k := mustKey(t, cfg, baseStrat); k != baseKey {
			t.Error("environmental fields (RunTimeout/Interrupt) leaked into the key")
		}
	}
}

// stubInjector is a non-nil FaultInjector; cellKey must refuse it
// before calling any method.
type stubInjector struct{ device.FaultInjector }

func TestCellKeyBypass(t *testing.T) {
	base, baseStrat := testContent(t, 2, 3000, 10000)

	check := func(name string, cfg device.Config, s device.Strategy) {
		t.Helper()
		if _, ok := CellKey(cfg, s); ok {
			t.Errorf("%s: expected bypass, got a key", name)
		}
	}

	{
		cfg := base
		cfg.Faults = stubInjector{}
		check("fault injector", cfg, baseStrat)
	}
	{
		cfg := base
		cfg.Record = &device.ObsLog{}
		check("observation recorder", cfg, baseStrat)
	}
	{
		cfg := base
		cfg.Prog = nil
		check("nil prog", cfg, baseStrat)
	}
	check("nil strategy", base, nil)
	// A strategy that does not implement CacheKeyer (RegionMeter is the
	// in-tree example: its post-run counters are read off the live
	// instance) bypasses before any of its methods are called.
	check("unkeyed strategy", base, unkeyedStrategy{})
	// An empty CacheKey is an explicit opt-out (Alpaca with commit
	// recording uses it).
	check("opted-out strategy", base, optedOutStrategy{})
	{
		// A harvester whose source has no fingerprint is unhashable.
		cfg := base
		cfg.Harvester = mustHarvester(t, constSource(2.5), 40000, 0.7)
		check("unfingerprintable source", cfg, baseStrat)
	}
}

func mustHarvester(t testing.TB, src energy.VoltageSource, r, eta float64) *energy.Harvester {
	t.Helper()
	h, err := energy.NewHarvester(src, r, eta)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// unkeyedStrategy is a Strategy that does not implement CacheKeyer;
// optedOutStrategy implements it but opts out with an empty key.
type unkeyedStrategy struct{ device.Strategy }

type optedOutStrategy struct{ device.Strategy }

func (optedOutStrategy) CacheKey() string { return "" }

// constSource is a VoltageSource without a CacheFingerprint.
type constSource float64

func (c constSource) VoltageAt(tSeconds float64) float64 { return float64(c) }

// FuzzCellKey fuzzes the canonicalizer's numeric surface: for any valid
// parameter tuple the key must be deterministic, and any single-field
// perturbation must change it.
func FuzzCellKey(f *testing.F) {
	f.Add(uint64(3000), 0.1, 1.0, 1.0, 50, uint64(1<<40))
	f.Add(uint64(1), 0.0, 0.5, 2.0, 1, uint64(1000))
	f.Add(uint64(1<<40), 100.0, 64.0, 64.0, 100000, uint64(1<<62))
	f.Fuzz(func(t *testing.T, tauB uint64, alphaB, sigmaB, sigmaR float64, maxPeriods int, maxCycles uint64) {
		if tauB == 0 || maxPeriods <= 0 || maxCycles == 0 {
			t.Skip()
		}
		for _, v := range []float64{alphaB, sigmaB, sigmaR} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Skip()
			}
		}
		if sigmaB == 0 || sigmaR == 0 {
			t.Skip()
		}
		cfg, _ := testContent(t, 1, tauB, 10000)
		cfg.SigmaB, cfg.SigmaR = sigmaB, sigmaR
		cfg.MaxPeriods, cfg.MaxCycles = maxPeriods, maxCycles
		s := strategy.NewTimer(tauB, alphaB)

		k1 := mustKey(t, cfg, s)
		if k2 := mustKey(t, cfg, s); k2 != k1 {
			t.Fatal("key not deterministic")
		}
		perturb := []struct {
			name string
			cfg  device.Config
			s    device.Strategy
		}{
			{"tauB", cfg, strategy.NewTimer(tauB+1, alphaB)},
			{"alphaB", cfg, strategy.NewTimer(tauB, alphaB+1)},
			{"sigmaB", with(cfg, func(c *device.Config) { c.SigmaB = sigmaB + 1 }), s},
			{"sigmaR", with(cfg, func(c *device.Config) { c.SigmaR = sigmaR + 1 }), s},
			{"maxPeriods", with(cfg, func(c *device.Config) { c.MaxPeriods = maxPeriods + 1 }), s},
			{"maxCycles", with(cfg, func(c *device.Config) { c.MaxCycles = maxCycles - 1 }), s},
		}
		for _, p := range perturb {
			if p.name == "maxCycles" && maxCycles-1 == 0 {
				continue
			}
			if k := mustKey(t, p.cfg, p.s); k == k1 {
				t.Errorf("perturbing %s did not change the key", p.name)
			}
		}
	})
}

func with(cfg device.Config, mut func(*device.Config)) device.Config {
	mut(&cfg)
	return cfg
}

func TestKeyStringRoundTrip(t *testing.T) {
	cfg, s := testContent(t, 2, 3000, 10000)
	k := mustKey(t, cfg, s)
	back, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatal("hex round trip lost the key")
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Error("short key accepted")
	}
}
