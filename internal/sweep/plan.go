package sweep

import (
	"context"
	"crypto/sha256"
	"fmt"

	"ehmodel/internal/runner"
)

// Plan is a sweep expressed as a tree: leaves are cells, interior nodes
// group the cells that share a configuration prefix (a figure, a
// duration, a benchmark). The grouping is what makes incremental sweeps
// cheap — a node's fingerprint is the Merkle hash of its subtree, so a
// re-run can tell at any granularity which segments are dirty (changed
// cells, changed code version) and which will be answered entirely from
// the store. Execution order is the tree's depth-first leaf order, and
// results come back in exactly that order, preserving runner's
// ordered-merge determinism.
type Plan struct {
	// Name labels the node in fingerprints and diagnostics.
	Name string

	cells    []Cell
	children []*Plan
}

// NewPlan builds an empty root node.
func NewPlan(name string) *Plan { return &Plan{Name: name} }

// Group appends and returns a child node. Cells added to the child sort
// after this node's own cells in execution order.
func (p *Plan) Group(name string) *Plan {
	c := &Plan{Name: name}
	p.children = append(p.children, c)
	return c
}

// Add appends a leaf cell to this node.
func (p *Plan) Add(c Cell) { p.cells = append(p.cells, c) }

// Len returns the number of leaves in the subtree.
func (p *Plan) Len() int {
	n := len(p.cells)
	for _, c := range p.children {
		n += c.Len()
	}
	return n
}

// Cells flattens the subtree into depth-first leaf order: a node's own
// cells, then each child's, recursively.
func (p *Plan) Cells() []Cell {
	out := make([]Cell, 0, p.Len())
	return p.appendCells(out)
}

func (p *Plan) appendCells(out []Cell) []Cell {
	out = append(out, p.cells...)
	for _, c := range p.children {
		out = c.appendCells(out)
	}
	return out
}

// Fingerprint computes the node's Merkle hash: a leaf contributes its
// cell key (or a per-position bypass marker when unhashable), an
// interior node hashes its name over its children's fingerprints. Two
// plans with equal fingerprints will execute identical cells in
// identical order — so a segment whose fingerprint matches a previous
// run's is answered entirely from the store. Building the fingerprint
// assembles each cell's config once (the same work a run would do).
func (p *Plan) Fingerprint(ctx context.Context) (Key, error) {
	w := newKeyWriter()
	if err := p.fold(ctx, w); err != nil {
		return Key{}, err
	}
	var k Key
	w.h.Sum(k[:0])
	return k, nil
}

func (p *Plan) fold(ctx context.Context, w *keyWriter) error {
	w.str("node", p.Name)
	w.u64("leaves", uint64(len(p.cells)))
	for i := range p.cells {
		c := &p.cells[i]
		cfg, strat, err := c.Build(ctx)
		if err != nil {
			return fmt.Errorf("sweep: plan %q cell %q: %w", p.Name, c.Label, err)
		}
		if key, ok := CellKey(cfg, strat); ok && !c.NoCache {
			w.bytes("cell", key[:])
		} else {
			// A bypass leaf has no content identity; salt it with its
			// position and label so it never aliases another.
			w.str("bypass", fmt.Sprintf("%d:%s", i, c.Label))
		}
	}
	w.u64("children", uint64(len(p.children)))
	for _, c := range p.children {
		sub := newKeyWriter()
		if err := c.fold(ctx, sub); err != nil {
			return err
		}
		var k [sha256.Size]byte
		sub.h.Sum(k[:0])
		w.bytes("child", k[:])
	}
	return nil
}

// RunPlan executes the plan's leaves through the process-default
// executor; results are in depth-first leaf order (the order Cells
// returns).
func RunPlan(ctx context.Context, p *Plan, o runner.Options) ([]CellResult, runner.Errors) {
	return Default().Run(ctx, p.Cells(), o)
}
