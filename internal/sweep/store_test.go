package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestMemStoreLRU(t *testing.T) {
	// Budget fits exactly two 8-byte entries.
	s := NewMemStore(16)
	s.Put(key(1), []byte("aaaaaaaa"))
	s.Put(key(2), []byte("bbbbbbbb"))
	if s.Len() != 2 || s.Bytes() != 16 {
		t.Fatalf("len %d bytes %d", s.Len(), s.Bytes())
	}
	// Touch 1 so 2 is the LRU victim.
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("lost entry 1")
	}
	s.Put(key(3), []byte("cccccccc"))
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := s.Get(key(3)); !ok {
		t.Fatal("new entry missing")
	}
}

func TestMemStoreUpdateAndOversize(t *testing.T) {
	s := NewMemStore(16)
	s.Put(key(1), []byte("aaaa"))
	s.Put(key(1), []byte("aaaaaaaaaaaa")) // refresh with a larger payload
	if got, _ := s.Get(key(1)); string(got) != "aaaaaaaaaaaa" {
		t.Fatalf("refresh lost: %q", got)
	}
	if s.Bytes() != 12 {
		t.Fatalf("bytes %d after refresh", s.Bytes())
	}
	// An entry larger than the whole budget is not cached (and evicts
	// everything trying).
	s.Put(key(2), make([]byte, 64))
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("oversized entry cached")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(key(1)); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"result":{"x":1}}`)
	if err := ds.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := ds.Get(key(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v %q", ok, got)
	}
	st, err := ds.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Bytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := NewDiskStore(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// entryPath digs out the one file the store wrote for k.
func entryPath(t *testing.T, ds *DiskStore, k Key) string {
	t.Helper()
	p := filepath.Join(ds.Dir(), k.String()[:2], k.String()+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDiskStoreCorruptionRecovery is the crash-safety contract: a
// truncated or bit-flipped entry is detected by the CRC framing,
// treated as a miss, deleted, and transparently rewritten by the next
// Put — the store heals instead of serving garbage.
func TestDiskStoreCorruptionRecovery(t *testing.T) {
	payload := []byte(`{"result":{"progress":0.5}}`)
	corruptions := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bitflip", func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		}},
		{"badmagic", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			ds, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.Put(key(7), payload); err != nil {
				t.Fatal(err)
			}
			p := entryPath(t, ds, key(7))
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, c.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := ds.Get(key(7)); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not deleted")
			}
			// The miss triggers a re-simulation whose Put heals the store.
			if err := ds.Put(key(7), payload); err != nil {
				t.Fatal(err)
			}
			got, ok := ds.Get(key(7))
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("store did not heal: ok=%v %q", ok, got)
			}
		})
	}
}

// TestDiskStoreNoTempLeakVisible: temp files never count as entries and
// never satisfy a Get.
func TestDiskStoreTempInvisible(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(ds.Dir(), key(9).String()[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: an orphaned temp file.
	if err := os.WriteFile(filepath.Join(shard, ".tmp-dead-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(key(9)); ok {
		t.Fatal("temp file served")
	}
	st, err := ds.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 {
		t.Fatalf("temp file counted: %+v", st)
	}
}

func TestTieredPromotion(t *testing.T) {
	ti, err := NewTiered(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"result":{}}`)
	// Seed disk only (as if written by a previous process).
	if err := ti.Disk.Put(key(4), payload); err != nil {
		t.Fatal(err)
	}
	if ti.Mem.Len() != 0 {
		t.Fatal("memory tier pre-populated")
	}
	got, ok := ti.Get(key(4))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("tiered get: ok=%v", ok)
	}
	if ti.Mem.Len() != 1 {
		t.Fatal("disk hit not promoted to memory")
	}
	// Put writes through to both tiers.
	if err := ti.Put(key(5), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := ti.Mem.Get(key(5)); !ok {
		t.Fatal("put skipped memory tier")
	}
	if _, ok := ti.Disk.Get(key(5)); !ok {
		t.Fatal("put skipped disk tier")
	}
}
