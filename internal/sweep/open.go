package sweep

import "fmt"

// OpenExecutor wires a front end's cache-mode flag into an executor:
// "mem" keeps results in an in-process LRU (dedup within one
// invocation), "disk" layers the LRU over the content-addressed store
// under dir (dedup across invocations and processes), "off" runs every
// cell uncached. Both ehfigs and ehserve resolve their -cache flags
// here so the modes cannot drift apart.
func OpenExecutor(mode, dir string) (*Executor, error) {
	switch mode {
	case "off":
		return NewExecutor(nil), nil
	case "mem":
		return NewExecutor(NewMemStore(0)), nil
	case "disk":
		st, err := NewTiered(dir, 0)
		if err != nil {
			return nil, err
		}
		return NewExecutor(st), nil
	default:
		return nil, fmt.Errorf("sweep: unknown cache mode %q (want mem, disk or off)", mode)
	}
}
