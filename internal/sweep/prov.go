package sweep

import (
	"context"
	"sync"
)

// Cell provenance: the record tying one served result to exactly how it
// was obtained — computed here, recalled from the store, coalesced onto
// an in-flight twin, or run uncached. A request that asks
// `?provenance=1` gets these back; the compute-cost half is also
// persisted inside the CAS entry so a cache hit can report what the
// original simulation cost, wherever and whenever it ran.

// CellProv is the provenance of one resolved cell within one request.
type CellProv struct {
	// Label is the cell's sweep label; Key its content hash in hex
	// (empty for bypassed cells).
	Label string `json:"label"`
	Key   string `json:"key,omitempty"`
	// Outcome is how the cell was answered: "hit", "miss", "dedup" or
	// "bypass" — the same classes as the executor's Stats counters.
	Outcome string `json:"outcome"`
	// Worker is the runner worker slot that resolved the cell (-1 when
	// run outside a worker pool).
	Worker int `json:"worker"`
	// WallUS is the wall-clock cost of resolving the cell in *this*
	// request — microseconds of simulation for a miss, of store lookup
	// for a hit, of waiting on the leader for a dedup.
	WallUS int64 `json:"wall_us"`
	// SimCycles and Periods summarize the simulation result; Completed
	// reports whether the program halted.
	SimCycles uint64 `json:"simcycles"`
	Periods   int    `json:"periods"`
	Completed bool   `json:"completed"`
	// ComputeUS is the producing simulation's wall-clock cost: equal to
	// WallUS for a miss or bypass, recovered from the CAS entry for a
	// hit (0 for entries stored before provenance existed).
	ComputeUS int64 `json:"compute_us"`
}

// Computed reports whether this cell ran a simulation in this request.
func (p *CellProv) Computed() bool { return p.Outcome == "miss" || p.Outcome == "bypass" }

// StoredProv is the compute-cost stub persisted inside each CAS entry:
// enough to answer "what did this result originally cost" on a hit.
type StoredProv struct {
	Label     string `json:"label"`
	ComputeUS int64  `json:"compute_us"`
	// CreatedUnixMS stamps when the producing simulation ran.
	CreatedUnixMS int64 `json:"created_unix_ms"`
}

// ProvLog collects the provenance records of one request. Attach it to
// the context with WithProvLog before running cells; the executor
// appends one record per resolved cell. Safe for concurrent use (sweep
// workers share one log). The zero-cost contract matches tracing: with
// no log in the context the executor performs a context lookup and
// nothing else.
type ProvLog struct {
	// OnCell, when set before the sweep starts, is invoked (outside the
	// log's lock) for every record as it lands — the live cell feed the
	// service's /v1/events stream publishes.
	OnCell func(CellProv)

	mu      sync.Mutex
	cells   []CellProv
	limit   int
	dropped uint64
}

// DefaultProvLimit bounds the records one request retains.
const DefaultProvLimit = 4096

// NewProvLog builds a log retaining at most limit records (≤ 0 selects
// DefaultProvLimit).
func NewProvLog(limit int) *ProvLog {
	if limit <= 0 {
		limit = DefaultProvLimit
	}
	return &ProvLog{limit: limit}
}

func (l *ProvLog) add(p CellProv) {
	l.mu.Lock()
	if len(l.cells) >= l.limit {
		l.dropped++
	} else {
		l.cells = append(l.cells, p)
	}
	l.mu.Unlock()
	if l.OnCell != nil {
		l.OnCell(p)
	}
}

// Cells returns the collected records in arrival order.
func (l *ProvLog) Cells() []CellProv {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]CellProv, len(l.cells))
	copy(out, l.cells)
	return out
}

// Dropped returns how many records the limit discarded.
func (l *ProvLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// ComputedCells counts records that ran a simulation in this request.
func (l *ProvLog) ComputedCells() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.cells {
		if l.cells[i].Computed() {
			n++
		}
	}
	return n
}

type provKey struct{}

// WithProvLog attaches l as the context's provenance collector. A nil l
// returns ctx unchanged.
func WithProvLog(ctx context.Context, l *ProvLog) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, provKey{}, l)
}

// ProvFrom returns the context's provenance collector, or nil.
func ProvFrom(ctx context.Context) *ProvLog {
	l, _ := ctx.Value(provKey{}).(*ProvLog)
	return l
}
