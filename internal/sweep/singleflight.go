package sweep

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent executions of the same cell key: the
// first arrival (the leader) runs the simulation, later arrivals
// (followers) block until it finishes and share its entry. A
// hand-rolled singleflight — the repo carries no external dependencies.
//
// No deadlock is possible under runner's bounded workers: a follower
// only ever waits on a leader that is already running in another worker
// slot, so the leader's completion is never queued behind its
// followers.
type flightGroup struct {
	mu sync.Mutex
	m  map[Key]*flightCall
}

type flightCall struct {
	done chan struct{}
	ent  *Entry
	err  error
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call's result. shared reports whether
// this caller was a follower. A follower whose context dies stops
// waiting and returns the context's cause; the leader's run is
// unaffected (its own interrupt wiring handles cancellation).
func (g *flightGroup) do(ctx context.Context, key Key, fn func() (*Entry, error)) (ent *Entry, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[Key]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.ent, true, c.err
		case <-ctx.Done():
			return nil, true, context.Cause(ctx)
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.ent, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.ent, false, c.err
}
