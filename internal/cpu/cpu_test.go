package cpu

import (
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

// runProgram builds, assembles and executes a program to completion (or
// maxSteps), returning the core and memory for inspection.
func runProgram(t *testing.T, build func(*asm.Builder), maxSteps int) (*Core, *mem.System) {
	t.Helper()
	b := asm.New(t.Name())
	build(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mem.NewSystem(4096, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSRAMImage(p.SRAMImage); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFRAMImage(p.FRAMImage); err != nil {
		t.Fatal(err)
	}
	c := &Core{}
	for i := 0; i < maxSteps && !c.Halted; i++ {
		if _, err := c.Step(p.Code, m); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !c.Halted {
		t.Fatalf("program did not halt within %d steps", maxSteps)
	}
	return c, m
}

func TestArithmetic(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Li(isa.R1, 20)
		b.Li(isa.R2, 7)
		b.Add(isa.R3, isa.R1, isa.R2)  // 27
		b.Sub(isa.R4, isa.R1, isa.R2)  // 13
		b.Mul(isa.R5, isa.R1, isa.R2)  // 140
		b.Div(isa.R6, isa.R1, isa.R2)  // 2
		b.Rem(isa.R7, isa.R1, isa.R2)  // 6
		b.And(isa.R8, isa.R1, isa.R2)  // 4
		b.Or(isa.R9, isa.R1, isa.R2)   // 23
		b.Xor(isa.R10, isa.R1, isa.R2) // 19
		b.Halt()
	}, 100)
	want := map[isa.Reg]uint32{
		isa.R3: 27, isa.R4: 13, isa.R5: 140, isa.R6: 2,
		isa.R7: 6, isa.R8: 4, isa.R9: 23, isa.R10: 19,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%v = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestShiftsAndCompares(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Li(isa.R1, 0x80000000)
		b.Li(isa.R2, 4)
		b.Srl(isa.R3, isa.R1, isa.R2)  // logical: 0x08000000
		b.Sra(isa.R4, isa.R1, isa.R2)  // arithmetic: 0xF8000000
		b.Sll(isa.R5, isa.R2, isa.R2)  // 64
		b.Slt(isa.R6, isa.R1, isa.R2)  // signed: -2^31 < 4 → 1
		b.Sltu(isa.R7, isa.R1, isa.R2) // unsigned: big ≥ 4 → 0
		b.Slti(isa.R8, isa.R2, 5)      // 4 < 5 → 1
		b.Srai(isa.R9, isa.R1, 1)      // 0xC0000000
		b.Srli(isa.R10, isa.R1, 1)     // 0x40000000
		b.Slli(isa.R11, isa.R2, 2)     // 16
		b.Halt()
	}, 100)
	want := map[isa.Reg]uint32{
		isa.R3: 0x08000000, isa.R4: 0xF8000000, isa.R5: 64,
		isa.R6: 1, isa.R7: 0, isa.R8: 1,
		isa.R9: 0xC0000000, isa.R10: 0x40000000, isa.R11: 16,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%v = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Li(isa.R1, 10)
		b.Li(isa.R2, 0)
		b.Div(isa.R3, isa.R1, isa.R2) // /0 → all ones
		b.Rem(isa.R4, isa.R1, isa.R2) // %0 → dividend
		b.Li(isa.R5, 0x80000000)      // INT_MIN
		b.Li(isa.R6, 0xFFFFFFFF)      // −1
		b.Div(isa.R7, isa.R5, isa.R6) // overflow → INT_MIN
		b.Rem(isa.R8, isa.R5, isa.R6) // overflow → 0
		b.Halt()
	}, 100)
	if c.Regs[isa.R3] != 0xFFFFFFFF {
		t.Errorf("div by zero = %#x", c.Regs[isa.R3])
	}
	if c.Regs[isa.R4] != 10 {
		t.Errorf("rem by zero = %d", c.Regs[isa.R4])
	}
	if c.Regs[isa.R7] != 0x80000000 {
		t.Errorf("overflow div = %#x", c.Regs[isa.R7])
	}
	if c.Regs[isa.R8] != 0 {
		t.Errorf("overflow rem = %d", c.Regs[isa.R8])
	}
}

func TestR0Hardwired(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Addi(isa.R0, isa.R0, 42)
		b.Add(isa.R1, isa.R0, isa.R0)
		b.Halt()
	}, 10)
	if c.Regs[isa.R0] != 0 || c.Regs[isa.R1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", c.Regs[isa.R0], c.Regs[isa.R1])
	}
}

func TestLoadsStores(t *testing.T) {
	c, m := runProgram(t, func(b *asm.Builder) {
		b.Seg(asm.SRAM)
		b.Word("w", 0)
		b.Seg(asm.FRAM)
		b.Word("nv", 0)
		b.La(isa.R1, "w")
		b.Li(isa.R2, 0x11223344)
		b.Sw(isa.R2, isa.R1, 0)
		b.Lw(isa.R3, isa.R1, 0)
		b.Lb(isa.R4, isa.R1, 3)  // sign-extended 0x11
		b.Lbu(isa.R5, isa.R1, 0) // zero-extended 0x44
		b.Sb(isa.R2, isa.R1, 0)  // low byte only
		b.La(isa.R6, "nv")
		b.Sw(isa.R2, isa.R6, 0)
		b.Halt()
	}, 100)
	if c.Regs[isa.R3] != 0x11223344 {
		t.Errorf("lw = %#x", c.Regs[isa.R3])
	}
	if c.Regs[isa.R4] != 0x11 {
		t.Errorf("lb = %#x", c.Regs[isa.R4])
	}
	if c.Regs[isa.R5] != 0x44 {
		t.Errorf("lbu = %#x", c.Regs[isa.R5])
	}
	v, _ := m.LoadWord(mem.FRAMBase)
	if v != 0x11223344 {
		t.Errorf("fram word = %#x", v)
	}
}

func TestSignExtendedLoadByte(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Seg(asm.SRAM)
		b.Word("w", 0x000000F0)
		b.La(isa.R1, "w")
		b.Lb(isa.R2, isa.R1, 0)  // 0xF0 → sign-extends to 0xFFFFFFF0
		b.Lbu(isa.R3, isa.R1, 0) // 0xF0 stays
		b.Halt()
	}, 20)
	if c.Regs[isa.R2] != 0xFFFFFFF0 {
		t.Errorf("lb = %#x", c.Regs[isa.R2])
	}
	if c.Regs[isa.R3] != 0xF0 {
		t.Errorf("lbu = %#x", c.Regs[isa.R3])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Li(isa.R1, 0)  // i
		b.Li(isa.R2, 10) // limit
		b.Li(isa.R3, 0)  // sum
		b.Label("top")
		b.Add(isa.R3, isa.R3, isa.R1)
		b.Addi(isa.R1, isa.R1, 1)
		b.Blt(isa.R1, isa.R2, "top")
		b.Halt()
	}, 1000)
	if c.Regs[isa.R3] != 45 {
		t.Errorf("sum 0..9 = %d, want 45", c.Regs[isa.R3])
	}
}

func TestCallReturn(t *testing.T) {
	c, _ := runProgram(t, func(b *asm.Builder) {
		b.Li(isa.R1, 5)
		b.Call("double")
		b.Out(isa.R2)
		b.Halt()
		b.Label("double")
		b.Add(isa.R2, isa.R1, isa.R1)
		b.Ret()
	}, 100)
	if c.Regs[isa.R2] != 10 {
		t.Errorf("double(5) = %d", c.Regs[isa.R2])
	}
	if len(c.OutBuf) != 1 || c.OutBuf[0] != 10 {
		t.Errorf("out buffer = %v", c.OutBuf)
	}
}

func TestSenseDeterministicAndSequential(t *testing.T) {
	run := func() (uint32, uint32) {
		c, _ := runProgram(t, func(b *asm.Builder) {
			b.Sense(isa.R1)
			b.Sense(isa.R2)
			b.Halt()
		}, 10)
		return c.Regs[isa.R1], c.Regs[isa.R2]
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Error("sensor values not deterministic across runs")
	}
	if a1 == a2 {
		t.Error("consecutive sensor samples should differ")
	}
}

func TestSenseReplayAfterRestore(t *testing.T) {
	// A sense, a snapshot, another sense; restoring the snapshot must
	// replay the second sense with the identical value.
	b := asm.New("sense")
	b.Sense(isa.R1)
	b.Sense(isa.R2)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mem.NewSystem(4096, 4096)
	c := &Core{}
	if _, err := c.Step(p.Code, m); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if _, err := c.Step(p.Code, m); err != nil {
		t.Fatal(err)
	}
	first := c.Regs[isa.R2]
	c.Restore(snap)
	if _, err := c.Step(p.Code, m); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R2] != first {
		t.Errorf("replayed sense %#x != original %#x", c.Regs[isa.R2], first)
	}
}

func TestStepAccounting(t *testing.T) {
	b := asm.New("acct")
	b.Seg(asm.SRAM)
	b.Word("w", 0)
	b.Addi(isa.R1, isa.R0, 1) // alu, 1 cycle
	b.Mul(isa.R2, isa.R1, isa.R1)
	b.Div(isa.R3, isa.R1, isa.R1)
	b.La(isa.R4, "w")
	b.Lw(isa.R5, isa.R4, 0)
	b.Sw(isa.R5, isa.R4, 0)
	b.Beq(isa.R0, isa.R1, "skip") // not taken
	b.Label("skip")
	b.Beq(isa.R0, isa.R0, "skip2") // taken
	b.Label("skip2")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mem.NewSystem(4096, 4096)
	c := &Core{}

	type expect struct {
		cycles uint64
		class  energy.InstrClass
		store  bool
		mem    bool
	}
	wants := []expect{
		{1, energy.ClassALU, false, false}, // addi
		{2, energy.ClassALU, false, false}, // mul
		{8, energy.ClassALU, false, false}, // div
		{1, energy.ClassALU, false, false}, // la → addi
		{2, energy.ClassMem, false, true},  // lw
		{2, energy.ClassMem, true, true},   // sw
		{1, energy.ClassALU, false, false}, // beq not taken
		{2, energy.ClassALU, false, false}, // beq taken
		{1, energy.ClassALU, false, false}, // halt
	}
	for i, w := range wants {
		st, err := c.Step(p.Code, m)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if st.Cycles != w.cycles {
			t.Errorf("step %d (%v): cycles %d, want %d", i, st.Instr.Op, st.Cycles, w.cycles)
		}
		if st.Class != w.class {
			t.Errorf("step %d: class %v, want %v", i, st.Class, w.class)
		}
		if st.HasAccess != w.mem {
			t.Errorf("step %d: access %v, want mem=%v", i, st.Access, w.mem)
		}
		if st.HasAccess && st.Access.Store != w.store {
			t.Errorf("step %d: store %v", i, st.Access.Store)
		}
	}
	if !c.Halted {
		t.Error("core should be halted")
	}
}

func TestStepErrors(t *testing.T) {
	m, _ := mem.NewSystem(4096, 4096)
	halted := &Core{Halted: true}
	if _, err := halted.Step([]isa.Instr{{Op: isa.ADD}}, m); err == nil {
		t.Error("step on halted core accepted")
	}
	runaway := &Core{PC: 5}
	if _, err := runaway.Step([]isa.Instr{{Op: isa.ADD}}, m); err == nil {
		t.Error("PC past code accepted")
	}
	badSys := &Core{}
	if _, err := badSys.Step([]isa.Instr{{Op: isa.SYS, Imm: 99}}, m); err == nil {
		t.Error("unknown syscall accepted")
	}
	badMem := &Core{}
	if _, err := badMem.Step([]isa.Instr{{Op: isa.LW, Rs1: isa.R0, Imm: int32(0x1FFFC)}}, m); err == nil {
		t.Error("unmapped load accepted")
	}
}

func TestSnapshotRestoreIsolation(t *testing.T) {
	c := &Core{}
	c.OutBuf = append(c.OutBuf, 1)
	snap := c.Snapshot()
	c.OutBuf = append(c.OutBuf, 2)
	c.Regs[1] = 99
	c.Restore(snap)
	if len(c.OutBuf) != 1 || c.OutBuf[0] != 1 {
		t.Errorf("restored outbuf %v", c.OutBuf)
	}
	if c.Regs[1] != 0 {
		t.Errorf("restored reg %d", c.Regs[1])
	}
	// mutating the restored core must not touch the snapshot
	c.OutBuf[0] = 77
	if snap.OutBuf[0] == 77 {
		t.Error("restore aliased the snapshot's output buffer")
	}
}

func TestResetCorrupts(t *testing.T) {
	c := &Core{}
	c.Regs[3] = 42
	c.PC = 7
	c.Reset()
	if c.Regs[3] == 42 || c.PC == 7 {
		t.Error("reset did not corrupt volatile state")
	}
	if c.Regs[0] != 0 {
		t.Error("r0 must remain 0 after reset")
	}
	if c.Halted {
		t.Error("reset core should not be halted")
	}
}

func TestHaltStaysPut(t *testing.T) {
	b := asm.New("halt")
	b.Halt()
	p, _ := b.Assemble()
	m, _ := mem.NewSystem(4096, 4096)
	c := &Core{}
	if _, err := c.Step(p.Code, m); err != nil {
		t.Fatal(err)
	}
	if !c.Halted || c.PC != 0 {
		t.Errorf("halt: halted=%v pc=%d", c.Halted, c.PC)
	}
}

func TestArchStateBytes(t *testing.T) {
	if ArchStateBytes != 72 {
		t.Errorf("arch state = %d bytes, want 72 (16 regs + pc + sense)", ArchStateBytes)
	}
}

// TestCyclesForMatchesStep executes one instruction of every cost class
// and checks CyclesFor agrees with what Step actually charged — the
// lockstep contract the static analyzer's path pricing relies on.
func TestCyclesForMatchesStep(t *testing.T) {
	b := asm.New("cycles")
	b.Seg(asm.SRAM)
	b.Word("w", 0)
	b.Li(isa.R1, 1) // addi
	b.Add(isa.R2, isa.R1, isa.R1)
	b.Mul(isa.R3, isa.R1, isa.R1)
	b.Div(isa.R4, isa.R1, isa.R1)
	b.Rem(isa.R5, isa.R1, isa.R1)
	b.La(isa.R6, "w")
	b.Lw(isa.R7, isa.R6, 0)
	b.Sw(isa.R7, isa.R6, 0)
	b.Lb(isa.R8, isa.R6, 0)
	b.Beq(isa.R1, isa.R0, "skip") // not taken
	b.Beq(isa.R1, isa.R1, "skip") // taken
	b.Label("skip")
	b.Jal(isa.LR, "sub")
	b.Chkpt()
	b.Halt()
	b.Label("sub")
	b.Ret() // jalr
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mem.NewSystem(4096, 4096)
	c := &Core{}
	for !c.Halted {
		st, err := c.Step(p.Code, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := CyclesFor(st.Instr, st.Taken); got != st.Cycles {
			t.Errorf("%v taken=%v: CyclesFor=%d, Step charged %d", st.Instr, st.Taken, got, st.Cycles)
		}
	}
}
