// Package cpu implements the cycle-level EH32 interpreter. The core is
// deliberately small and deterministic: every Step reports exactly how
// many cycles it took, which power class it belongs to, and what memory
// it touched — the raw quantities the intermittent-device simulator and
// the EH model's parameters (ε, α_B, τ_B) are built from.
package cpu

import (
	"fmt"

	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
)

// Memory is the data address space the core executes against.
// *mem.System satisfies it.
type Memory interface {
	LoadWord(addr uint32) (uint32, error)
	StoreWord(addr uint32, v uint32) error
	LoadByte(addr uint32) (byte, error)
	StoreByte(addr uint32, v byte) error
}

// Cycle costs per instruction kind. Loads and stores take two cycles —
// the FRAM word access time at 16 MHz the paper cites (§III).
const (
	cyclesALU    = 1
	cyclesMul    = 2
	cyclesDiv    = 8
	cyclesMem    = 2
	cyclesBranch = 1 // +1 when taken
	cyclesJump   = 2
	cyclesSys    = 1
)

// CyclesFor returns the cycle cost Step charges for in; taken selects
// the taken cost for conditional branches. The static analyzer prices
// paths with it, so it must stay in lockstep with Step's accounting.
func CyclesFor(in isa.Instr, taken bool) uint64 {
	switch {
	case in.Op == isa.MUL:
		return cyclesMul
	case in.Op == isa.DIV || in.Op == isa.REM:
		return cyclesDiv
	case in.Op.IsLoad() || in.Op.IsStore():
		return cyclesMem
	case in.Op.IsBranch():
		if taken {
			return cyclesBranch + 1
		}
		return cyclesBranch
	case in.Op == isa.JAL || in.Op == isa.JALR:
		return cyclesJump
	case in.Op == isa.SYS:
		return cyclesSys
	default:
		return cyclesALU
	}
}

// Access describes one data-memory access made by an instruction.
type Access struct {
	Addr  uint32
	Size  uint8 // bytes: 1 or 4
	Store bool
}

// Step reports what a single executed instruction did.
type Step struct {
	Instr  isa.Instr
	Cycles uint64
	Class  energy.InstrClass
	Access *Access // nil when no data memory was touched
	Sys    isa.Sys // valid when HasSys
	HasSys bool
	Taken  bool // branch taken / jump executed
}

// Core is the architectural state of one EH32 hart. The zero value is a
// reset core at PC 0.
type Core struct {
	PC       uint32
	Regs     [isa.NumRegs]uint32
	SenseSeq uint32   // next deterministic sensor sample index
	OutBuf   []uint32 // volatile output buffer, commits on backup
	Halted   bool
}

// Snapshot returns a deep copy of the architectural state; it is the
// register-file payload of a checkpoint.
func (c *Core) Snapshot() Core {
	cp := *c
	cp.OutBuf = append([]uint32(nil), c.OutBuf...)
	return cp
}

// Restore reinstates a snapshot taken by Snapshot.
func (c *Core) Restore(snap Core) {
	*c = snap
	c.OutBuf = append([]uint32(nil), snap.OutBuf...)
}

// Reset returns the core to power-on state with corrupted registers,
// modelling the loss of volatile state at a power failure.
func (c *Core) Reset() {
	const corrupt = 0xABABABAB
	c.PC = corrupt
	for i := range c.Regs {
		c.Regs[i] = corrupt
	}
	c.Regs[0] = 0
	c.SenseSeq = corrupt
	c.OutBuf = nil
	c.Halted = false
}

// ArchStateBytes is the size of the architectural state a full-register
// checkpoint saves: 16 registers, the PC and the sensor sequence
// counter, 4 bytes each.
const ArchStateBytes = (isa.NumRegs + 2) * 4

// SenseValue derives the deterministic sensor sample for index i. It is
// a splitmix64-style hash so replay after a restore reads identical
// values, keeping intermittent and continuous executions equivalent.
// Workload reference oracles use it to predict SysSense results.
func SenseValue(i uint32) uint32 {
	z := uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z ^ (z >> 31))
}

// setReg writes a register honouring the hardwired zero.
func (c *Core) setReg(r isa.Reg, v uint32) {
	if r != isa.R0 {
		c.Regs[r] = v
	}
}

// Step executes one instruction from code against m. The returned Step
// carries the cycle/energy accounting. Executing on a halted core or
// with the PC outside code is an error.
func (c *Core) Step(code []isa.Instr, m Memory) (Step, error) {
	if c.Halted {
		return Step{}, fmt.Errorf("cpu: step on halted core")
	}
	if int(c.PC) >= len(code) {
		return Step{}, fmt.Errorf("cpu: PC %d outside code (%d instructions)", c.PC, len(code))
	}
	in := code[c.PC]
	st := Step{Instr: in, Cycles: cyclesALU, Class: energy.ClassALU}
	next := c.PC + 1

	rs1 := c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]
	rd := c.Regs[in.Rd]
	imm := uint32(in.Imm)

	switch in.Op {
	case isa.ADD:
		c.setReg(in.Rd, rs1+rs2)
	case isa.SUB:
		c.setReg(in.Rd, rs1-rs2)
	case isa.AND:
		c.setReg(in.Rd, rs1&rs2)
	case isa.OR:
		c.setReg(in.Rd, rs1|rs2)
	case isa.XOR:
		c.setReg(in.Rd, rs1^rs2)
	case isa.SLL:
		c.setReg(in.Rd, rs1<<(rs2&31))
	case isa.SRL:
		c.setReg(in.Rd, rs1>>(rs2&31))
	case isa.SRA:
		c.setReg(in.Rd, uint32(int32(rs1)>>(rs2&31)))
	case isa.SLT:
		c.setReg(in.Rd, boolTo(int32(rs1) < int32(rs2)))
	case isa.SLTU:
		c.setReg(in.Rd, boolTo(rs1 < rs2))
	case isa.MUL:
		st.Cycles = cyclesMul
		c.setReg(in.Rd, rs1*rs2)
	case isa.DIV:
		st.Cycles = cyclesDiv
		c.setReg(in.Rd, div32(rs1, rs2))
	case isa.REM:
		st.Cycles = cyclesDiv
		c.setReg(in.Rd, rem32(rs1, rs2))

	case isa.ADDI:
		c.setReg(in.Rd, rs1+imm)
	case isa.ANDI:
		c.setReg(in.Rd, rs1&imm)
	case isa.ORI:
		c.setReg(in.Rd, rs1|imm)
	case isa.XORI:
		c.setReg(in.Rd, rs1^imm)
	case isa.SLLI:
		c.setReg(in.Rd, rs1<<(imm&31))
	case isa.SRLI:
		c.setReg(in.Rd, rs1>>(imm&31))
	case isa.SRAI:
		c.setReg(in.Rd, uint32(int32(rs1)>>(imm&31)))
	case isa.SLTI:
		c.setReg(in.Rd, boolTo(int32(rs1) < in.Imm))
	case isa.LUI:
		c.setReg(in.Rd, imm<<14)

	case isa.LW, isa.LB, isa.LBU:
		st.Cycles = cyclesMem
		st.Class = energy.ClassMem
		addr := rs1 + imm
		size := uint8(4)
		var v uint32
		var err error
		switch in.Op {
		case isa.LW:
			v, err = m.LoadWord(addr)
		case isa.LB:
			var b byte
			b, err = m.LoadByte(addr)
			v = uint32(int32(int8(b)))
			size = 1
		case isa.LBU:
			var b byte
			b, err = m.LoadByte(addr)
			v = uint32(b)
			size = 1
		}
		if err != nil {
			return Step{}, fmt.Errorf("cpu: pc %d: %w", c.PC, err)
		}
		c.setReg(in.Rd, v)
		st.Access = &Access{Addr: addr, Size: size}

	case isa.SW, isa.SB:
		st.Cycles = cyclesMem
		st.Class = energy.ClassMem
		addr := rs1 + imm
		var err error
		size := uint8(4)
		if in.Op == isa.SW {
			err = m.StoreWord(addr, rd)
		} else {
			err = m.StoreByte(addr, byte(rd))
			size = 1
		}
		if err != nil {
			return Step{}, fmt.Errorf("cpu: pc %d: %w", c.PC, err)
		}
		st.Access = &Access{Addr: addr, Size: size, Store: true}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		st.Cycles = cyclesBranch
		a, b := rd, rs1 // branches compare the Rd and Rs1 fields
		var taken bool
		switch in.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int32(a) < int32(b)
		case isa.BGE:
			taken = int32(a) >= int32(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		if taken {
			st.Cycles++
			st.Taken = true
			next = c.PC + uint32(in.Imm)
		}

	case isa.JAL:
		st.Cycles = cyclesJump
		st.Taken = true
		c.setReg(in.Rd, c.PC+1)
		next = uint32(in.Imm)

	case isa.JALR:
		st.Cycles = cyclesJump
		st.Taken = true
		c.setReg(in.Rd, c.PC+1)
		next = rs1 + imm

	case isa.SYS:
		st.Cycles = cyclesSys
		st.HasSys = true
		st.Sys = isa.Sys(in.Imm)
		switch st.Sys {
		case isa.SysHalt:
			c.Halted = true
			next = c.PC // stay put; device commits final state
		case isa.SysOut:
			c.OutBuf = append(c.OutBuf, rs1)
		case isa.SysSense:
			c.setReg(in.Rd, SenseValue(c.SenseSeq))
			c.SenseSeq++
		case isa.SysChkpt, isa.SysTaskBegin, isa.SysTaskEnd:
			// semantics belong to the runtime strategy
		default:
			return Step{}, fmt.Errorf("cpu: pc %d: unknown syscall %d", c.PC, in.Imm)
		}

	default:
		return Step{}, fmt.Errorf("cpu: pc %d: unimplemented op %v", c.PC, in.Op)
	}

	c.PC = next
	return st, nil
}

func boolTo(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// div32 implements signed division with RISC-V edge semantics:
// x/0 = −1 (all ones) and INT_MIN/−1 = INT_MIN.
func div32(a, b uint32) uint32 {
	if b == 0 {
		return 0xFFFFFFFF
	}
	sa, sb := int32(a), int32(b)
	if sa == -1<<31 && sb == -1 {
		return a
	}
	return uint32(sa / sb)
}

// rem32 implements signed remainder with RISC-V edge semantics:
// x%0 = x and INT_MIN%−1 = 0.
func rem32(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	sa, sb := int32(a), int32(b)
	if sa == -1<<31 && sb == -1 {
		return 0
	}
	return uint32(sa % sb)
}
