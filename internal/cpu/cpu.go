// Package cpu implements the cycle-level EH32 interpreter. The core is
// deliberately small and deterministic: every Step reports exactly how
// many cycles it took, which power class it belongs to, and what memory
// it touched — the raw quantities the intermittent-device simulator and
// the EH model's parameters (ε, α_B, τ_B) are built from.
package cpu

import (
	"fmt"

	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
)

// Memory is the data address space the core executes against.
// *mem.System satisfies it.
type Memory interface {
	LoadWord(addr uint32) (uint32, error)
	StoreWord(addr uint32, v uint32) error
	LoadByte(addr uint32) (byte, error)
	StoreByte(addr uint32, v byte) error
}

// Cycle costs per instruction kind. Loads and stores take two cycles —
// the FRAM word access time at 16 MHz the paper cites (§III).
const (
	cyclesALU    = 1
	cyclesMul    = 2
	cyclesDiv    = 8
	cyclesMem    = 2
	cyclesBranch = 1 // +1 when taken
	cyclesJump   = 2
	cyclesSys    = 1
)

// CyclesFor returns the cycle cost Step charges for in; taken selects
// the taken cost for conditional branches. The static analyzer prices
// paths with it, so it must stay in lockstep with Step's accounting.
func CyclesFor(in isa.Instr, taken bool) uint64 {
	switch {
	case in.Op == isa.MUL:
		return cyclesMul
	case in.Op == isa.DIV || in.Op == isa.REM:
		return cyclesDiv
	case in.Op.IsLoad() || in.Op.IsStore():
		return cyclesMem
	case in.Op.IsBranch():
		if taken {
			return cyclesBranch + 1
		}
		return cyclesBranch
	case in.Op == isa.JAL || in.Op == isa.JALR:
		return cyclesJump
	case in.Op == isa.SYS:
		return cyclesSys
	default:
		return cyclesALU
	}
}

// ClassFor returns the power class Step charges for in. Like CyclesFor
// it exists for the static analyzer's path pricing and must stay in
// lockstep with stepInto: loads and stores are ClassMem, everything
// else ClassALU.
func ClassFor(in isa.Instr) energy.InstrClass {
	if in.Op.IsLoad() || in.Op.IsStore() {
		return energy.ClassMem
	}
	return energy.ClassALU
}

// Access describes one data-memory access made by an instruction.
type Access struct {
	Addr  uint32
	Size  uint8 // bytes: 1 or 4
	Store bool
}

// Step reports what a single executed instruction did. It is a plain
// value: Step and StepN allocate nothing per instruction.
type Step struct {
	Instr     isa.Instr
	Cycles    uint64
	Class     energy.InstrClass
	Access    Access  // valid when HasAccess
	Sys       isa.Sys // valid when HasSys
	HasSys    bool
	HasAccess bool // a data-memory access happened
	Taken     bool // branch taken / jump executed
}

// Core is the architectural state of one EH32 hart. The zero value is a
// reset core at PC 0.
type Core struct {
	PC       uint32
	Regs     [isa.NumRegs]uint32
	SenseSeq uint32   // next deterministic sensor sample index
	OutBuf   []uint32 // volatile output buffer, commits on backup
	Halted   bool
}

// Snapshot returns a deep copy of the architectural state; it is the
// register-file payload of a checkpoint.
func (c *Core) Snapshot() Core {
	cp := *c
	cp.OutBuf = append([]uint32(nil), c.OutBuf...)
	return cp
}

// Restore reinstates a snapshot taken by Snapshot. The output buffer is
// copied once, into the core's existing backing array when it has the
// capacity — restores run on every reboot of an intermittent device, so
// the hot path must not allocate.
func (c *Core) Restore(snap Core) {
	out := append(c.OutBuf[:0], snap.OutBuf...)
	*c = snap
	c.OutBuf = out
}

// Reset returns the core to power-on state with corrupted registers,
// modelling the loss of volatile state at a power failure.
func (c *Core) Reset() {
	const corrupt = 0xABABABAB
	c.PC = corrupt
	for i := range c.Regs {
		c.Regs[i] = corrupt
	}
	c.Regs[0] = 0
	c.SenseSeq = corrupt
	c.OutBuf = nil
	c.Halted = false
}

// ArchStateBytes is the size of the architectural state a full-register
// checkpoint saves: 16 registers, the PC and the sensor sequence
// counter, 4 bytes each.
const ArchStateBytes = (isa.NumRegs + 2) * 4

// SenseValue derives the deterministic sensor sample for index i. It is
// a splitmix64-style hash so replay after a restore reads identical
// values, keeping intermittent and continuous executions equivalent.
// Workload reference oracles use it to predict SysSense results.
func SenseValue(i uint32) uint32 {
	z := uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z ^ (z >> 31))
}

// setReg writes a register honouring the hardwired zero.
func (c *Core) setReg(r isa.Reg, v uint32) {
	if r != isa.R0 {
		c.Regs[r] = v
	}
}

// Step executes one instruction from code against m. The returned Step
// carries the cycle/energy accounting. Executing on a halted core or
// with the PC outside code is an error.
func (c *Core) Step(code []isa.Instr, m Memory) (Step, error) {
	var st Step
	pc := c.PC
	if err := c.stepInto(code, m, &st); err != nil {
		return Step{}, err
	}
	// The instruction echo is filled here rather than in stepInto: the
	// batched engine never reads it, so the hot StepN loop should not
	// pay the copy on every instruction.
	st.Instr = code[pc]
	return st, nil
}

// StepInto executes one instruction like Step but writes the report
// into *st — everything except the Instr echo — and allocates nothing.
// It is the device engines' per-instruction entry point: st lives
// across calls, so a hot loop keeps a single report buffer instead of
// copying a Step per instruction.
func (c *Core) StepInto(code []isa.Instr, m Memory, st *Step) error {
	return c.stepInto(code, m, st)
}

// stepInto is the interpreter shared by Step and StepN: it executes one
// instruction and overwrites *st with its report (everything except the
// Instr echo, which only the Step wrapper fills). A single body keeps
// the per-step and batched engines incapable of semantic divergence.
// On error the core state is unchanged and *st is zeroed.
func (c *Core) stepInto(code []isa.Instr, m Memory, st *Step) error {
	if c.Halted {
		*st = Step{}
		return fmt.Errorf("cpu: step on halted core")
	}
	if int(c.PC) >= len(code) {
		*st = Step{}
		return fmt.Errorf("cpu: PC %d outside code (%d instructions)", c.PC, len(code))
	}
	in := code[c.PC]
	*st = Step{Cycles: cyclesALU, Class: energy.ClassALU}
	next := c.PC + 1

	rs1 := c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]
	rd := c.Regs[in.Rd]
	imm := uint32(in.Imm)

	switch in.Op {
	case isa.ADD:
		c.setReg(in.Rd, rs1+rs2)
	case isa.SUB:
		c.setReg(in.Rd, rs1-rs2)
	case isa.AND:
		c.setReg(in.Rd, rs1&rs2)
	case isa.OR:
		c.setReg(in.Rd, rs1|rs2)
	case isa.XOR:
		c.setReg(in.Rd, rs1^rs2)
	case isa.SLL:
		c.setReg(in.Rd, rs1<<(rs2&31))
	case isa.SRL:
		c.setReg(in.Rd, rs1>>(rs2&31))
	case isa.SRA:
		c.setReg(in.Rd, uint32(int32(rs1)>>(rs2&31)))
	case isa.SLT:
		c.setReg(in.Rd, boolTo(int32(rs1) < int32(rs2)))
	case isa.SLTU:
		c.setReg(in.Rd, boolTo(rs1 < rs2))
	case isa.MUL:
		st.Cycles = cyclesMul
		c.setReg(in.Rd, rs1*rs2)
	case isa.DIV:
		st.Cycles = cyclesDiv
		c.setReg(in.Rd, div32(rs1, rs2))
	case isa.REM:
		st.Cycles = cyclesDiv
		c.setReg(in.Rd, rem32(rs1, rs2))

	case isa.ADDI:
		c.setReg(in.Rd, rs1+imm)
	case isa.ANDI:
		c.setReg(in.Rd, rs1&imm)
	case isa.ORI:
		c.setReg(in.Rd, rs1|imm)
	case isa.XORI:
		c.setReg(in.Rd, rs1^imm)
	case isa.SLLI:
		c.setReg(in.Rd, rs1<<(imm&31))
	case isa.SRLI:
		c.setReg(in.Rd, rs1>>(imm&31))
	case isa.SRAI:
		c.setReg(in.Rd, uint32(int32(rs1)>>(imm&31)))
	case isa.SLTI:
		c.setReg(in.Rd, boolTo(int32(rs1) < in.Imm))
	case isa.LUI:
		c.setReg(in.Rd, imm<<14)

	case isa.LW, isa.LB, isa.LBU:
		st.Cycles = cyclesMem
		st.Class = energy.ClassMem
		addr := rs1 + imm
		size := uint8(4)
		var v uint32
		var err error
		switch in.Op {
		case isa.LW:
			v, err = m.LoadWord(addr)
		case isa.LB:
			var b byte
			b, err = m.LoadByte(addr)
			v = uint32(int32(int8(b)))
			size = 1
		case isa.LBU:
			var b byte
			b, err = m.LoadByte(addr)
			v = uint32(b)
			size = 1
		}
		if err != nil {
			*st = Step{}
			return fmt.Errorf("cpu: pc %d: %w", c.PC, err)
		}
		c.setReg(in.Rd, v)
		st.Access = Access{Addr: addr, Size: size}
		st.HasAccess = true

	case isa.SW, isa.SB:
		st.Cycles = cyclesMem
		st.Class = energy.ClassMem
		addr := rs1 + imm
		var err error
		size := uint8(4)
		if in.Op == isa.SW {
			err = m.StoreWord(addr, rd)
		} else {
			err = m.StoreByte(addr, byte(rd))
			size = 1
		}
		if err != nil {
			*st = Step{}
			return fmt.Errorf("cpu: pc %d: %w", c.PC, err)
		}
		st.Access = Access{Addr: addr, Size: size, Store: true}
		st.HasAccess = true

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		st.Cycles = cyclesBranch
		a, b := rd, rs1 // branches compare the Rd and Rs1 fields
		var taken bool
		switch in.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int32(a) < int32(b)
		case isa.BGE:
			taken = int32(a) >= int32(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		if taken {
			st.Cycles++
			st.Taken = true
			next = c.PC + uint32(in.Imm)
		}

	case isa.JAL:
		st.Cycles = cyclesJump
		st.Taken = true
		c.setReg(in.Rd, c.PC+1)
		next = uint32(in.Imm)

	case isa.JALR:
		st.Cycles = cyclesJump
		st.Taken = true
		c.setReg(in.Rd, c.PC+1)
		next = rs1 + imm

	case isa.SYS:
		st.Cycles = cyclesSys
		st.HasSys = true
		st.Sys = isa.Sys(in.Imm)
		switch st.Sys {
		case isa.SysHalt:
			c.Halted = true
			next = c.PC // stay put; device commits final state
		case isa.SysOut:
			c.OutBuf = append(c.OutBuf, rs1)
		case isa.SysSense:
			c.setReg(in.Rd, SenseValue(c.SenseSeq))
			c.SenseSeq++
		case isa.SysChkpt, isa.SysTaskBegin, isa.SysTaskEnd:
			// semantics belong to the runtime strategy
		default:
			*st = Step{}
			return fmt.Errorf("cpu: pc %d: unknown syscall %d", c.PC, in.Imm)
		}

	default:
		*st = Step{}
		return fmt.Errorf("cpu: pc %d: unimplemented op %v", c.PC, in.Op)
	}

	c.PC = next
	return nil
}

func boolTo(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// div32 implements signed division with RISC-V edge semantics:
// x/0 = −1 (all ones) and INT_MIN/−1 = INT_MIN.
func div32(a, b uint32) uint32 {
	if b == 0 {
		return 0xFFFFFFFF
	}
	sa, sb := int32(a), int32(b)
	if sa == -1<<31 && sb == -1 {
		return a
	}
	return uint32(sa / sb)
}

// rem32 implements signed remainder with RISC-V edge semantics:
// x%0 = x and INT_MIN%−1 = 0.
func rem32(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	sa, sb := int32(a), int32(b)
	if sa == -1<<31 && sb == -1 {
		return 0
	}
	return uint32(sa % sb)
}

// StopReason says why StepN ended a batch.
type StopReason uint8

const (
	// StopBudget: the cycle budget is exhausted. The final instruction
	// may overshoot the budget by up to its own cost minus one cycle
	// (seven cycles today): StepN starts an instruction whenever the
	// consumed count is still below the budget, which is exactly the
	// "fire at the first step at or past the threshold" semantics the
	// per-step engine has for cycle-counted triggers.
	StopBudget StopReason = iota
	// StopSys: the final instruction was a SYS the core halts on or the
	// caller's stop mask selects. The instruction has executed.
	StopSys
	// StopPCRange: the program counter left the code (fell or branched
	// off the end) before the next fetch. No instruction executed at
	// the bad PC.
	StopPCRange
)

// StepRec is the compact per-instruction record StepN appends to its
// sink: just what the device needs to replay the energy-accounting
// sequence of the per-step engine bit for bit. 8 bytes per instruction.
type StepRec struct {
	Cycles uint8 // 1..8 today; uint8 leaves headroom
	Class  uint8 // energy.InstrClass
	Flags  uint8 // RecAccess | RecStore
	_      uint8
	Addr   uint32 // access address, valid when RecAccess
}

// StepRec flag bits.
const (
	RecAccess uint8 = 1 << iota // the instruction touched data memory
	RecStore                    // ... and the access was a store
)

// BatchSink receives StepN's per-instruction records. The caller owns
// Recs and truncates it between batches; StepN only appends, so a sink
// reused with adequate capacity never allocates.
type BatchSink struct {
	Recs []StepRec
}

// Batch summarizes one StepN call.
type Batch struct {
	Cycles uint64 // total cycles consumed by executed instructions
	Steps  int    // instructions executed
	Stop   StopReason
	// HasSys/Sys describe the final executed instruction (not only
	// StopSys batches: a budget stop can land on an unmasked SYS).
	HasSys bool
	Sys    isa.Sys
}

// StepN executes instructions until the consumed cycles reach budget,
// appending one StepRec per instruction to sink. It stops early — after
// executing the instruction — at a halt or at any SYS in the stop mask,
// and stops before fetching when the PC leaves the code. A memory or
// decode error returns the batch of the instructions that did execute
// (the failing one changed no state, exactly like Step) alongside the
// error. StepN performs no allocation when the sink has capacity.
func (c *Core) StepN(code []isa.Instr, m Memory, budget uint64, stop isa.SysMask, sink *BatchSink) (Batch, error) {
	var b Batch
	var st Step
	for b.Cycles < budget && !c.Halted {
		if int(c.PC) >= len(code) {
			b.Stop = StopPCRange
			return b, nil
		}
		if err := c.stepInto(code, m, &st); err != nil {
			return b, err
		}
		flags := uint8(0)
		addr := uint32(0)
		if st.HasAccess {
			flags = RecAccess
			if st.Access.Store {
				flags |= RecStore
			}
			addr = st.Access.Addr
		}
		sink.Recs = append(sink.Recs, StepRec{
			Cycles: uint8(st.Cycles),
			Class:  uint8(st.Class),
			Flags:  flags,
			Addr:   addr,
		})
		b.Cycles += st.Cycles
		b.Steps++
		b.HasSys, b.Sys = st.HasSys, st.Sys
		if st.HasSys && (c.Halted || stop.Has(st.Sys)) {
			b.Stop = StopSys
			return b, nil
		}
	}
	b.Stop = StopBudget
	return b, nil
}
