package cpu

import (
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

// benchLoop builds the counter-style hot loop (load, add, store, index,
// branch) the engine benchmarks hammer: the §V-A instruction mix with
// one memory read-modify-write per iteration.
func benchLoop(b *testing.B) ([]isa.Instr, *mem.System) {
	b.Helper()
	bb := asm.New("benchloop")
	bb.Word("count", 0)
	bb.La(isa.R1, "count")
	bb.Li(isa.R2, 1<<30) // effectively endless; the driver bounds work
	bb.Li(isa.R3, 0)
	bb.Label("loop")
	bb.Lw(isa.R4, isa.R1, 0)
	bb.Addi(isa.R4, isa.R4, 1)
	bb.Sw(isa.R4, isa.R1, 0)
	bb.Addi(isa.R3, isa.R3, 1)
	bb.Blt(isa.R3, isa.R2, "loop")
	bb.Halt()
	p, err := bb.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	m, err := mem.NewSystem(4096, 65536)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.WriteSRAMImage(p.SRAMImage); err != nil {
		b.Fatal(err)
	}
	return p.Code, m
}

// BenchmarkStep measures the per-instruction interpreter, the unit of
// work the reference engine pays once per simulated instruction.
func BenchmarkStep(b *testing.B) {
	code, m := benchLoop(b)
	c := &Core{}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st, err := c.Step(code, m)
		if err != nil {
			b.Fatal(err)
		}
		cycles += st.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkStepN measures the batched interpreter: one call executes a
// 16 Ki-cycle budget and reports every step into a reused record sink.
// The allocs/op metric must stay at zero — the batched engine's hot
// loop is required to be allocation-free.
func BenchmarkStepN(b *testing.B) {
	code, m := benchLoop(b)
	c := &Core{}
	sink := &BatchSink{Recs: make([]StepRec, 0, 1<<14)}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		sink.Recs = sink.Recs[:0]
		bt, err := c.StepN(code, m, 1<<14, 0, sink)
		if err != nil {
			b.Fatal(err)
		}
		cycles += bt.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// TestStepNZeroAllocs pins the allocation-free contract: once the sink
// has capacity, a StepN call allocates nothing.
func TestStepNZeroAllocs(t *testing.T) {
	bb := asm.New("allocs")
	bb.Word("count", 0)
	bb.La(isa.R1, "count")
	bb.Li(isa.R2, 1<<30)
	bb.Li(isa.R3, 0)
	bb.Label("loop")
	bb.Lw(isa.R4, isa.R1, 0)
	bb.Addi(isa.R4, isa.R4, 1)
	bb.Sw(isa.R4, isa.R1, 0)
	bb.Addi(isa.R3, isa.R3, 1)
	bb.Blt(isa.R3, isa.R2, "loop")
	bb.Halt()
	p, err := bb.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mem.NewSystem(4096, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSRAMImage(p.SRAMImage); err != nil {
		t.Fatal(err)
	}
	c := &Core{}
	sink := &BatchSink{Recs: make([]StepRec, 0, 1<<12)}
	allocs := testing.AllocsPerRun(100, func() {
		sink.Recs = sink.Recs[:0]
		if _, err := c.StepN(p.Code, m, 1<<12, 0, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("StepN allocated %v times per call; the batched hot loop must be allocation-free", allocs)
	}
}

// TestStepZeroAllocs pins the same contract on the per-instruction
// path: the value-typed Step result must not escape to the heap.
func TestStepZeroAllocs(t *testing.T) {
	bb := asm.New("allocs1")
	bb.Word("count", 0)
	bb.La(isa.R1, "count")
	bb.Li(isa.R2, 1<<30)
	bb.Li(isa.R3, 0)
	bb.Label("loop")
	bb.Lw(isa.R4, isa.R1, 0)
	bb.Addi(isa.R4, isa.R4, 1)
	bb.Sw(isa.R4, isa.R1, 0)
	bb.Addi(isa.R3, isa.R3, 1)
	bb.Blt(isa.R3, isa.R2, "loop")
	bb.Halt()
	p, err := bb.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mem.NewSystem(4096, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSRAMImage(p.SRAMImage); err != nil {
		t.Fatal(err)
	}
	c := &Core{}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Step(p.Code, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocated %v times per call; want 0", allocs)
	}
}
