package analyze

import (
	"strings"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
	"ehmodel/internal/workload"
)

// rawProg hand-assembles an instruction sequence, bypassing the Builder
// so tests can exercise encodings the Builder refuses to emit.
func rawProg(t *testing.T, name string, code ...isa.Instr) *asm.Program {
	t.Helper()
	words := make([]uint32, len(code))
	for i, in := range code {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		words[i] = w
	}
	return &asm.Program{Name: name, Code: code, Words: words}
}

func mustAnalyze(t *testing.T, p *asm.Program) *Report {
	t.Helper()
	r, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze(%s): %v", p.Name, err)
	}
	return r
}

func findKind(r *Report, k Kind) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

func halt() isa.Instr { return isa.Instr{Op: isa.SYS, Imm: int32(isa.SysHalt)} }

// luiFRAM materialises mem.FRAMBase (0x20000 = 8<<14) in one LUI.
func luiFRAM(rd isa.Reg) isa.Instr { return isa.Instr{Op: isa.LUI, Rd: rd, Imm: 8} }

func TestUninitReadLint(t *testing.T) {
	p := rawProg(t, "uninit",
		isa.Instr{Op: isa.ADD, Rd: isa.R2, Rs1: isa.R3, Rs2: isa.R4},
		halt(),
	)
	r := mustAnalyze(t, p)
	fs := findKind(r, KindUninitRead)
	if len(fs) != 2 {
		t.Fatalf("want 2 uninit-read findings (r3, r4), got %d: %+v", len(fs), fs)
	}
	for _, f := range fs {
		if f.Sev != SevError || f.PC != 0 {
			t.Errorf("finding %+v: want error severity at pc 0", f)
		}
	}
}

func TestNoUninitAfterWrite(t *testing.T) {
	p := rawProg(t, "init-ok",
		isa.Instr{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R0, Imm: 7},
		isa.Instr{Op: isa.ADD, Rd: isa.R2, Rs1: isa.R3, Rs2: isa.R0},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindUninitRead); len(fs) != 0 {
		t.Fatalf("unexpected uninit findings: %+v", fs)
	}
}

func TestInvalidSysLint(t *testing.T) {
	p := rawProg(t, "badsys",
		isa.Instr{Op: isa.SYS, Imm: 40},
		halt(),
	)
	r := mustAnalyze(t, p)
	fs := findKind(r, KindBadSys)
	if len(fs) != 1 || fs[0].Sev != SevError {
		t.Fatalf("want one invalid-sys error, got %+v", fs)
	}
}

func TestBadTargetLint(t *testing.T) {
	p := rawProg(t, "badtarget",
		isa.Instr{Op: isa.BEQ, Rd: isa.R0, Rs1: isa.R0, Imm: 100},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindBadTarget); len(fs) != 1 {
		t.Fatalf("want one bad-branch-target finding, got %+v", fs)
	}
}

func TestUnreachableLint(t *testing.T) {
	p := rawProg(t, "unreach",
		isa.Instr{Op: isa.JAL, Rd: isa.R0, Imm: 2},
		isa.Instr{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 5},
		halt(),
	)
	r := mustAnalyze(t, p)
	fs := findKind(r, KindUnreachable)
	if len(fs) != 1 || fs[0].PC != 1 {
		t.Fatalf("want unreachable finding at pc 1, got %+v", fs)
	}
}

func TestCallConventionLint(t *testing.T) {
	p := rawProg(t, "callconv",
		isa.Instr{Op: isa.JAL, Rd: isa.R3, Imm: 1},
		halt(),
	)
	r := mustAnalyze(t, p)
	fs := findKind(r, KindCallConv)
	if len(fs) != 1 || fs[0].Sev != SevWarn {
		t.Fatalf("want one calling-convention warning for jal r3, got %+v", fs)
	}
}

func TestMisalignedLint(t *testing.T) {
	p := rawProg(t, "misaligned",
		isa.Instr{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 2},
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindMisaligned); len(fs) != 1 {
		t.Fatalf("want one misaligned finding, got %+v", fs)
	}
}

func TestOutOfBoundsLint(t *testing.T) {
	p := rawProg(t, "oob",
		isa.Instr{Op: isa.LUI, Rd: isa.R1, Imm: 24}, // 0x60000: one past FRAM end
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindOOB); len(fs) != 1 {
		t.Fatalf("want one out-of-bounds finding, got %+v", fs)
	}
}

func TestDeadStoreLint(t *testing.T) {
	p := rawProg(t, "deadstore",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.SW, Rd: isa.R0, Rs1: isa.R1},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindDeadStore); len(fs) != 1 || fs[0].PC != 1 {
		t.Fatalf("want one dead-store finding at pc 1, got %+v", fs)
	}
}

func TestLoopWithoutCheckpointLint(t *testing.T) {
	p := rawProg(t, "storeloop",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 10},
		// loop: sw; addi -1; bne r2, r0, loop
		isa.Instr{Op: isa.SW, Rd: isa.R0, Rs1: isa.R1},
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1},
		isa.Instr{Op: isa.BNE, Rd: isa.R2, Rs1: isa.R0, Imm: -2},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindLoopNoBoundary); len(fs) != 1 {
		t.Fatalf("want one loop-without-checkpoint finding, got %+v", fs)
	}
	// The loop is a simple cycle: sw(2) + addi(1) + bne taken(2) = 5
	// cycles around, one store.
	ts, ok := r.TauStore()
	if !ok || ts != 5 {
		t.Fatalf("TauStore = %v, %v; want 5, true", ts, ok)
	}
}

func TestWARBeforeFirstCheckpoint(t *testing.T) {
	p := rawProg(t, "war-boot",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1},
		isa.Instr{Op: isa.SW, Rd: isa.R2, Rs1: isa.R1},
		halt(),
	)
	r := mustAnalyze(t, p)
	if fs := findKind(r, KindWARBoot); len(fs) != 1 || fs[0].PC != 2 {
		t.Fatalf("want war-before-first-checkpoint at pc 2, got %+v", fs)
	}
	if !r.HazardWord(mem.FRAMBase) {
		t.Error("HazardWord(FRAMBase) = false, want true")
	}
	if r.HazardWord(mem.FRAMBase + 4) {
		t.Error("HazardWord(FRAMBase+4) = true, want false")
	}
}

func TestCheckpointClearsRegionButNotGlobal(t *testing.T) {
	p := rawProg(t, "war-chkpt",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1},
		isa.Instr{Op: isa.SYS, Imm: int32(isa.SysChkpt)},
		isa.Instr{Op: isa.SW, Rd: isa.R2, Rs1: isa.R1},
		halt(),
	)
	r := mustAnalyze(t, p)
	if len(r.RegionHazards) != 0 {
		t.Fatalf("checkpoint should clear region state, got %+v", r.RegionHazards)
	}
	// Clank may checkpoint anywhere, so the read still reaches the store.
	if len(r.Hazards) != 1 || r.Hazards[0].PC != 3 {
		t.Fatalf("want one global hazard at pc 3, got %+v", r.Hazards)
	}
	if fs := findKind(r, KindWARGlobal); len(fs) != 1 {
		t.Fatalf("want one war-global finding, got %+v", fs)
	}
}

func TestMustWriteKillsHazard(t *testing.T) {
	p := rawProg(t, "war-kill",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1},
		isa.Instr{Op: isa.SW, Rd: isa.R0, Rs1: isa.R1}, // violation, then word is write-first
		isa.Instr{Op: isa.SW, Rd: isa.R2, Rs1: isa.R1}, // idempotent: writing own data
		halt(),
	)
	r := mustAnalyze(t, p)
	if len(r.Hazards) != 1 || r.Hazards[0].PC != 2 {
		t.Fatalf("want the hazard only at the first store (pc 2), got %+v", r.Hazards)
	}
}

func TestCircularBufferAnalysis(t *testing.T) {
	const n, bufN, iters = 4, 8, 3
	p, err := workload.CircularBuffer(n, bufN, iters, asm.FRAM)
	if err != nil {
		t.Fatal(err)
	}
	r := mustAnalyze(t, p)

	// The inner loop is the kernel's fixed 34-cycle, one-store body; the
	// static τ_store must agree with the workload's published constant.
	ts, ok := r.TauStore()
	if !ok {
		t.Fatal("no simple store loop found in circular buffer kernel")
	}
	if want := workload.CircularBufferStoreCycles(); ts != want {
		t.Fatalf("static tau_store = %v, want %v", ts, want)
	}

	// Interval analysis must resolve the modular indexing: the access
	// footprint is exactly the bufN buffer slots, which is the provable
	// Clank tracking-buffer requirement.
	if r.Clank.ReadFirstEntries != bufN {
		t.Errorf("read-first bound = %d, want %d", r.Clank.ReadFirstEntries, bufN)
	}
	if r.Clank.WriteFirstEntries != bufN {
		t.Errorf("write-first bound = %d, want %d", r.Clank.WriteFirstEntries, bufN)
	}

	// Every buffer slot is hazardous (the head wraps over all of them);
	// words outside the buffer are not.
	buf, ok := p.Symbols["buf"]
	if !ok {
		t.Fatal("no buf symbol")
	}
	for i := 0; i < bufN; i++ {
		if !r.HazardWord(buf + uint32(4*i)) {
			t.Errorf("slot %d not in hazard set", i)
		}
	}
	if r.HazardWord(buf + uint32(4*bufN)) {
		t.Error("word past the buffer is in the hazard set")
	}
}

func TestEq15Check(t *testing.T) {
	p, err := workload.CircularBuffer(4, 8, 3, asm.FRAM)
	if err != nil {
		t.Fatal(err)
	}
	r := mustAnalyze(t, p)

	// N=8, n=4, no write-back: 5 stores between violations at 34
	// cycles/store predicts τ_B = 170.
	res, err := r.Eq15(4, 8, 0, 170)
	if err != nil {
		t.Fatal(err)
	}
	if res.TauB != 170 || !res.Satisfied {
		t.Errorf("Eq15: τ_B = %v satisfied=%v, want 170 satisfied", res.TauB, res.Satisfied)
	}
	if res.NOpt != 8 {
		t.Errorf("Eq15: N_opt = %d, want 8", res.NOpt)
	}

	// A smaller buffer misses the same target.
	res, err = r.Eq15(4, 6, 0, 170)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Errorf("Eq15: bufN=6 should not satisfy τ_B=170 (got τ_B=%v)", res.TauB)
	}
}

func TestRenderAndJSON(t *testing.T) {
	p := rawProg(t, "render",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1},
		isa.Instr{Op: isa.SW, Rd: isa.R2, Rs1: isa.R1},
		halt(),
	)
	r := mustAnalyze(t, p)
	text := r.Render()
	if !strings.Contains(text, "war-before-first-checkpoint") {
		t.Errorf("Render missing hazard line:\n%s", text)
	}
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"kind": "war-before-first-checkpoint"`) {
		t.Errorf("JSON missing finding kind:\n%s", js)
	}
}

func TestAnalyzeAllWorkloadsClean(t *testing.T) {
	// Every registered workload must analyze without structural errors:
	// no invalid SYS, no bad targets, no out-of-bounds or misaligned
	// accesses, no cold-boot register reads.
	for _, seg := range []asm.Segment{asm.SRAM, asm.FRAM} {
		for _, w := range workload.All() {
			p, err := w.Build(workload.Options{Seg: seg})
			if err != nil {
				t.Fatalf("%s: build: %v", w.Name, err)
			}
			r := mustAnalyze(t, p)
			for _, k := range []Kind{KindBadSys, KindBadTarget, KindOOB, KindMisaligned, KindUninitRead} {
				if fs := findKind(r, k); len(fs) != 0 {
					t.Errorf("%s/%v: unexpected %s findings: %+v", w.Name, seg, k, fs)
				}
			}
		}
	}
}
