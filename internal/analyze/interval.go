package analyze

// The register value domain: signed 64-bit intervals with ±∞ bounds,
// wide enough to hold every uint32 value and every int32-signed
// intermediate without wrapping. Constants are kept canonical in
// [0, 2³²); interval arithmetic saturates to ±∞ instead of modelling
// 32-bit wraparound, which keeps every operation an over-approximation
// of the machine result (and therefore keeps address resolution sound).

import "math"

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64

	maxU32 = int64(1)<<32 - 1
	maxS32 = int64(1)<<31 - 1
	minS32 = -int64(1) << 31
)

// ival is a closed interval [lo, hi]; lo > hi never occurs (the empty
// meet is reported separately).
type ival struct {
	lo, hi int64
}

var topIval = ival{negInf, posInf}

// cval is the canonical constant interval for a machine word.
func cval(v uint32) ival { return ival{int64(v), int64(v)} }

func (a ival) isConst() (uint32, bool) {
	if a.lo == a.hi && a.lo >= 0 && a.lo <= maxU32 {
		return uint32(a.lo), true
	}
	return 0, false
}

func (a ival) isTop() bool { return a.lo == negInf && a.hi == posInf }

// join is the interval hull.
func (a ival) join(b ival) ival {
	return ival{min64(a.lo, b.lo), max64(a.hi, b.hi)}
}

// widen jumps unstable bounds of next (relative to prev) outward so
// loop fixpoints terminate. Bounds land on the nearest value in ts (the
// program's immediate constants, sorted ascending) rather than straight
// at ±∞: loop-limit registers then stabilise at the comparison constant
// the branch refinement needs, instead of blowing past the signedness
// guard that makes refinement legal.
func (prev ival) widen(next ival, ts []int64) ival {
	w := next
	if next.lo < prev.lo {
		w.lo = widenDown(next.lo, ts)
	}
	if next.hi > prev.hi {
		w.hi = widenUp(next.hi, ts)
	}
	return w
}

// widenUp returns the smallest threshold ≥ v, or +∞.
func widenUp(v int64, ts []int64) int64 {
	for _, t := range ts {
		if t >= v {
			return t
		}
	}
	return posInf
}

// widenDown returns the largest threshold ≤ v, or −∞.
func widenDown(v int64, ts []int64) int64 {
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i] <= v {
			return ts[i]
		}
	}
	return negInf
}

// meet intersects; ok is false when the intersection is empty.
func (a ival) meet(b ival) (ival, bool) {
	m := ival{max64(a.lo, b.lo), min64(a.hi, b.hi)}
	if m.lo > m.hi {
		return a, false
	}
	return m, true
}

// --- arithmetic (saturating; exact only for const×const via uint32) ---

func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	// overflow check
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return posInf
		}
		return negInf
	}
	return s
}

func (a ival) add(b ival) ival {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			return cval(ca + cb) // exact with uint32 wrap
		}
	}
	return ival{satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)}
}

func (a ival) sub(b ival) ival {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			return cval(ca - cb)
		}
	}
	return ival{satAdd(a.lo, -min64(b.hi, posInf-1)), satAdd(a.hi, -max64(b.lo, negInf+1))}
}

// addImm adds a signed immediate.
func (a ival) addImm(imm int32) ival {
	return a.add(ival{int64(imm), int64(imm)})
}

// nonNeg reports whether every value in a is ≥ 0 (and finite below).
func (a ival) nonNeg() bool { return a.lo >= 0 }

// bounded reports whether a fits the uint32 value range — the premise
// for using it as an address.
func (a ival) bounded() bool { return a.lo >= 0 && a.hi <= maxU32 }

// shl shifts left by a constant amount, saturating on overflow.
func (a ival) shl(s uint32) ival {
	if ca, ok := a.isConst(); ok {
		return cval(ca << (s & 31))
	}
	s &= 31
	if !a.nonNeg() || a.hi > maxU32 {
		return topIval
	}
	lo, hi := a.lo<<s, a.hi<<s
	if hi>>s != a.hi { // overflow
		return ival{lo, posInf}
	}
	return ival{lo, hi}
}

// shr is a logical right shift by a constant amount.
func (a ival) shr(s uint32) ival {
	if ca, ok := a.isConst(); ok {
		return cval(ca >> (s & 31))
	}
	s &= 31
	if !a.bounded() {
		// A negative int32 reinterpreted as uint32 is huge; all we know
		// is the result fits 32−s bits.
		return ival{0, maxU32 >> s}
	}
	return ival{a.lo >> s, a.hi >> s}
}

// andMask bounds a bitwise AND with a constant mask m ≥ 0 (modular
// indexing with power-of-two buffers relies on this).
func (a ival) andMask(m uint32) ival {
	if ca, ok := a.isConst(); ok {
		return cval(ca & m)
	}
	return ival{0, int64(m)}
}

// orBound over-approximates OR/XOR of two non-negative intervals by the
// smallest all-ones mask covering both.
func orBound(a, b ival) ival {
	if !a.nonNeg() || !b.nonNeg() || a.hi > maxU32 || b.hi > maxU32 {
		return topIval
	}
	m := uint64(max64(a.hi, b.hi))
	// round up to all-ones
	m |= m >> 1
	m |= m >> 2
	m |= m >> 4
	m |= m >> 8
	m |= m >> 16
	m |= m >> 32
	return ival{0, int64(m)}
}

func (a ival) mul(b ival) ival {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			return cval(ca * cb)
		}
	}
	if a.nonNeg() && b.nonNeg() && a.hi <= maxU32 && b.hi <= maxU32 {
		hi := a.hi * b.hi
		if a.hi != 0 && hi/a.hi != b.hi {
			hi = posInf
		}
		return ival{a.lo * b.lo, hi}
	}
	return topIval
}

// remPos bounds a remainder by a known positive divisor: for a
// non-negative dividend the result is [0, c−1] (EH32 REM follows RISC-V
// semantics, so non-negative inputs give non-negative remainders).
func (a ival) remPos(c uint32) ival {
	if c == 0 {
		return topIval
	}
	if ca, ok := a.isConst(); ok {
		return cval(ca % c)
	}
	if a.nonNeg() && a.hi < int64(c) {
		return a // already within range
	}
	if a.nonNeg() {
		return ival{0, int64(c) - 1}
	}
	return topIval
}

func (a ival) divPos(c uint32) ival {
	if c == 0 {
		return topIval
	}
	if ca, ok := a.isConst(); ok {
		return cval(ca / c)
	}
	if a.nonNeg() {
		hi := a.hi
		if hi != posInf {
			hi /= int64(c)
		}
		return ival{a.lo / int64(c), hi}
	}
	return topIval
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
