package analyze

// Forward interval dataflow over the CFG. Each register holds an ival;
// the fixpoint widens after a few visits per block and branch edges
// refine the compared registers, which is what bounds array-index
// registers tightly enough to resolve store addresses to symbols.
//
// Soundness invariant: every register's interval contains the exact
// mathematical (unwrapped) result of the operations along every path.
// Wherever 32-bit wraparound could change the machine value, the
// interval necessarily leaves [0, 2³²), so address resolution (which
// demands bounded()) falls back to "unknown address" rather than
// resolving to the wrong symbol.

import (
	"sort"

	"ehmodel/internal/isa"
)

// widenAfter is the number of visits to a block before joins switch to
// widening.
const widenAfter = 3

// regState is the abstract machine state at a program point: one
// interval per register plus a may-be-uninitialized bit per register
// (set when some path reaches the point without writing the register
// since cold boot).
type regState struct {
	r      [isa.NumRegs]ival
	uninit uint16
}

// entryState is the cold-boot state: registers hold the corruption
// pattern (or a restored checkpoint's values — top covers both) and
// everything but the hardwired zero may be uninitialized.
func entryState() regState {
	var s regState
	for i := range s.r {
		s.r[i] = topIval
	}
	s.r[isa.R0] = cval(0)
	s.uninit = 0xFFFE
	return s
}

func (s regState) mayUninit(r isa.Reg) bool { return s.uninit&(1<<r) != 0 }

func (s *regState) write(r isa.Reg, v ival) {
	if r == isa.R0 {
		return
	}
	s.r[r] = v
	s.uninit &^= 1 << r
}

func (s regState) join(o regState) regState {
	out := s
	for i := range out.r {
		out.r[i] = s.r[i].join(o.r[i])
	}
	out.uninit = s.uninit | o.uninit
	return out
}

func (s regState) widen(next regState, ts []int64) regState {
	out := next
	for i := range out.r {
		out.r[i] = s.r[i].widen(next.r[i], ts)
	}
	out.uninit = s.uninit | next.uninit
	return out
}

func (s regState) eq(o regState) bool { return s == o }

// transfer applies one instruction to the state. pc is the instruction
// index (JAL/JALR write pc+1 into rd).
func transfer(s regState, pc int, in isa.Instr) regState {
	a := s.r[in.Rs1]
	b := s.r[in.Rs2]
	imm := in.Imm

	switch in.Op {
	case isa.ADD:
		s.write(in.Rd, a.add(b))
	case isa.SUB:
		s.write(in.Rd, a.sub(b))
	case isa.AND:
		s.write(in.Rd, andIval(a, b))
	case isa.OR, isa.XOR:
		s.write(in.Rd, orBound(a, b))
	case isa.SLL:
		if sh, ok := b.isConst(); ok {
			s.write(in.Rd, a.shl(sh))
		} else {
			s.write(in.Rd, topIval)
		}
	case isa.SRL:
		if sh, ok := b.isConst(); ok {
			s.write(in.Rd, a.shr(sh))
		} else {
			s.write(in.Rd, ival{0, maxU32})
		}
	case isa.SRA:
		s.write(in.Rd, sraIval(a, b))
	case isa.SLT, isa.SLTU:
		s.write(in.Rd, ival{0, 1})
	case isa.MUL:
		s.write(in.Rd, a.mul(b))
	case isa.DIV:
		s.write(in.Rd, signedDiv(a, b))
	case isa.REM:
		s.write(in.Rd, signedRem(a, b))

	case isa.ADDI:
		s.write(in.Rd, a.addImm(imm))
	case isa.ANDI:
		s.write(in.Rd, andIval(a, immIval(imm)))
	case isa.ORI, isa.XORI:
		s.write(in.Rd, orBound(a, immIval(imm)))
	case isa.SLLI:
		s.write(in.Rd, a.shl(uint32(imm)))
	case isa.SRLI:
		s.write(in.Rd, a.shr(uint32(imm)))
	case isa.SRAI:
		s.write(in.Rd, sraIval(a, cval(uint32(imm)&31)))
	case isa.SLTI:
		s.write(in.Rd, ival{0, 1})
	case isa.LUI:
		s.write(in.Rd, cval(uint32(imm)<<14))

	case isa.LW, isa.LB, isa.LBU:
		s.write(in.Rd, topIval)

	case isa.SW, isa.SB:
		// no register effect

	case isa.JAL, isa.JALR:
		s.write(in.Rd, cval(uint32(pc+1)))

	case isa.SYS:
		if isa.Sys(in.Imm) == isa.SysSense {
			s.write(in.Rd, topIval)
		}
	}
	return s
}

// immIval is the machine value of a sign-extended immediate: negative
// immediates wrap to large uint32 values, represented as the exact
// canonical constant.
func immIval(imm int32) ival { return cval(uint32(imm)) }

// andIval bounds a bitwise AND. x&y ≤ min(x, y) for values read as
// unsigned, so two bounded operands bound the result; an AND with a
// sign-extended mask (negative immediate, e.g. alignment masks) keeps
// the other operand's upper bound.
func andIval(a, b ival) ival {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			return cval(ca & cb)
		}
	}
	switch {
	case a.bounded() && b.bounded():
		return ival{0, min64(a.hi, b.hi)}
	case a.bounded():
		return ival{0, a.hi}
	case b.bounded():
		return ival{0, b.hi}
	default:
		return topIval
	}
}

// sraIval handles arithmetic right shift: exact for constants; equal to
// a logical shift when the value is a non-negative int32.
func sraIval(a, b ival) ival {
	sh, ok := b.isConst()
	if !ok {
		return topIval
	}
	if ca, ok := a.isConst(); ok {
		return cval(uint32(int32(ca) >> (sh & 31)))
	}
	if a.lo >= 0 && a.hi <= maxS32 {
		return a.shr(sh)
	}
	return topIval
}

// signedDiv and signedRem apply the cpu's signed semantics. The interval
// shortcuts are only valid when both operands are non-negative int32
// values (where signed and unsigned agree) and the divisor is a known
// positive constant; anything else is top.
func signedDiv(a, b ival) ival {
	c, ok := b.isConst()
	if !ok || c == 0 || int64(c) > maxS32 || a.lo < 0 || a.hi > maxS32 {
		return topIval
	}
	return a.divPos(c)
}

func signedRem(a, b ival) ival {
	c, ok := b.isConst()
	if !ok || c == 0 || int64(c) > maxS32 || a.lo < 0 || a.hi > maxS32 {
		return topIval
	}
	return a.remPos(c)
}

// refineEdge narrows the compared registers of a conditional branch
// along one outgoing edge. Branches compare Regs[rd] against Regs[rs1].
// Signed refinement is valid only when both intervals lie in the
// non-negative int32 range (where the signed and unsigned orders
// coincide with the interval order); unsigned refinement when both are
// bounded. An empty refinement means the edge is infeasible under the
// current approximation — the state passes through unrefined, which is
// sound (never bottom).
func refineEdge(s regState, in isa.Instr, kind edgeKind) regState {
	if !in.Op.IsBranch() {
		return s
	}
	a, b := s.r[in.Rd], s.r[in.Rs1]

	// Map the op+edge to one of: eq, ne, lt (a<b), ge (a≥b).
	type rel int
	const (
		relEQ rel = iota
		relNE
		relLT
		relGE
	)
	var r rel
	signed := false
	switch in.Op {
	case isa.BEQ:
		r = relEQ
	case isa.BNE:
		r = relNE
	case isa.BLT:
		r, signed = relLT, true
	case isa.BGE:
		r, signed = relGE, true
	case isa.BLTU:
		r = relLT
	case isa.BGEU:
		r = relGE
	}
	if kind == edgeFall { // the branch was NOT taken: negate
		switch r {
		case relEQ:
			r = relNE
		case relNE:
			r = relEQ
		case relLT:
			r = relGE
		case relGE:
			r = relLT
		}
	}

	orderValid := a.bounded() && b.bounded()
	if signed {
		orderValid = a.lo >= 0 && a.hi <= maxS32 && b.lo >= 0 && b.hi <= maxS32
	}

	// Meet-based equality refinement is only machine-faithful when the
	// refined side is bounded (its math and machine values coincide) or
	// top (the meet is just the other side); a partially-wrapped interval
	// could alias a machine value into the meet window that the math
	// interval excludes.
	eqOK := func(self, other ival) bool {
		return other.bounded() && (self.bounded() || self.isTop())
	}

	na, nb := a, b
	okA, okB := true, true
	switch r {
	case relEQ:
		if eqOK(a, b) {
			na, okA = a.meet(b)
		}
		if eqOK(b, a) {
			nb, okB = b.meet(a)
		}
	case relNE:
		// Only useful when one side is a constant at an endpoint of the
		// other.
		if c, ok := b.isConst(); ok {
			na = trimNE(a, int64(c))
		}
		if c, ok := a.isConst(); ok {
			nb = trimNE(b, int64(c))
		}
	case relLT:
		if !orderValid {
			return s
		}
		na, okA = a.meet(ival{negInf, b.hi - 1})
		nb, okB = b.meet(ival{a.lo + 1, posInf})
	case relGE:
		if !orderValid {
			return s
		}
		na, okA = a.meet(ival{b.lo, posInf})
		nb, okB = b.meet(ival{negInf, a.hi})
	}
	if okA {
		s.setRefined(in.Rd, na)
	}
	if okB {
		s.setRefined(in.Rs1, nb)
	}
	return s
}

// setRefined narrows a register without touching the uninit bit (a
// comparison is not an initialization).
func (s *regState) setRefined(r isa.Reg, v ival) {
	if r != isa.R0 {
		s.r[r] = v
	}
}

// trimNE removes constant c from interval a when c sits at an endpoint.
func trimNE(a ival, c int64) ival {
	if a.lo == c && a.lo < a.hi {
		return ival{a.lo + 1, a.hi}
	}
	if a.hi == c && a.lo < a.hi {
		return ival{a.lo, a.hi - 1}
	}
	return a
}

// flowResult is the fixpoint output: the abstract state immediately
// before each reachable instruction.
type flowResult struct {
	stateAt []regState
	reach   []bool // per block
}

// collectThresholds gathers the widening landing points: every
// immediate constant in the program (±1, since strict comparisons
// refine to c−1 or c+1), both sign-extended and in its wrapped uint32
// machine reading, plus each LUI result. Loop bounds and buffer sizes
// always enter programs through immediates, so widened induction
// variables stabilise at exactly the bounds the branch refinements
// produce instead of blowing out to ±∞.
func collectThresholds(code []isa.Instr) []int64 {
	set := map[int64]struct{}{0: {}, 1: {}}
	put := func(v int64) {
		set[v-1] = struct{}{}
		set[v] = struct{}{}
		set[v+1] = struct{}{}
	}
	for _, in := range code {
		if in.Op.IsRType() {
			continue
		}
		put(int64(in.Imm))
		put(int64(uint32(in.Imm)))
		if in.Op == isa.LUI {
			put(int64(uint32(in.Imm) << 14))
		}
	}
	ts := make([]int64, 0, len(set))
	for t := range set {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// runFlow computes the fixpoint and recovers per-instruction states.
func runFlow(g *cfg) *flowResult {
	n := len(g.blocks)
	in := make([]regState, n)
	seen := make([]bool, n)
	visits := make([]int, n)
	thresholds := collectThresholds(g.code)

	var work []int
	push := func(id int) { work = append(work, id) }

	if n > 0 {
		in[0] = entryState()
		seen[0] = true
		push(0)
	}

	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		visits[id]++

		b := g.blocks[id]
		st := in[id]
		for pc := b.Start; pc < b.End-1; pc++ {
			st = transfer(st, pc, g.code[pc])
		}
		last := b.End - 1
		lastIn := g.code[last]
		preTerm := st
		st = transfer(st, last, lastIn)

		for _, e := range g.succEdges(id) {
			out := st
			if lastIn.Op.IsBranch() {
				out = refineEdge(preTerm, lastIn, e.Kind)
			}
			if !seen[e.To] {
				seen[e.To] = true
				in[e.To] = out
				push(e.To)
				continue
			}
			merged := in[e.To].join(out)
			if visits[e.To] > widenAfter {
				merged = in[e.To].widen(merged, thresholds)
			}
			if !merged.eq(in[e.To]) {
				in[e.To] = merged
				push(e.To)
			}
		}
	}

	// Recover pre-instruction states by replaying each reachable block
	// from its (stable) in-state.
	res := &flowResult{
		stateAt: make([]regState, len(g.code)),
		reach:   seen,
	}
	for id, b := range g.blocks {
		if !seen[id] {
			continue
		}
		st := in[id]
		for pc := b.Start; pc < b.End; pc++ {
			res.stateAt[pc] = st
			st = transfer(st, pc, g.code[pc])
		}
	}
	return res
}
