package analyze

// Control-flow graph construction over an assembled EH32 instruction
// stream. Blocks are maximal straight-line runs; edges follow
// PC-relative branches, absolute JAL targets and the return-site
// approximation for JALR (an indirect jump may land at the instruction
// after any call, which over-approximates returns soundly for the
// dataflow passes).

import (
	"sort"

	"ehmodel/internal/isa"
)

// block is one basic block: instructions [Start, End).
type block struct {
	Start, End int
	Succs      []int // successor block ids
}

// edgeKind distinguishes how control reaches a successor, so the
// dataflow can apply branch-condition refinement on the right edge.
type edgeKind int

const (
	edgeFall edgeKind = iota // fallthrough / unconditional
	edgeTaken
)

type cfg struct {
	code    []isa.Instr
	blocks  []block
	blockOf []int // instruction index → block id
	// returnSites are the instructions after each JAL call (rd ≠ r0) —
	// the JALR successor approximation.
	returnSites []int
	// badTargets lists PCs whose branch/jump target lies outside the
	// program (a guaranteed runtime fault).
	badTargets []int
	// indirect lists JALR PCs (resolved via returnSites, or dead ends
	// when the program has no calls).
	indirect []int
}

// buildCFG partitions code into blocks and wires the edges.
func buildCFG(code []isa.Instr) *cfg {
	n := len(code)
	g := &cfg{code: code}
	leader := make([]bool, n+1)
	leader[0] = true
	mark := func(t int) {
		if t >= 0 && t < n {
			leader[t] = true
		}
	}
	for pc, in := range code {
		switch {
		case in.Op.IsBranch():
			mark(pc + int(in.Imm))
			mark(pc + 1)
		case in.Op == isa.JAL:
			mark(int(in.Imm))
			mark(pc + 1)
			if in.Rd != isa.R0 {
				g.returnSites = append(g.returnSites, pc+1)
			}
		case in.Op == isa.JALR:
			mark(pc + 1)
			g.indirect = append(g.indirect, pc)
		case in.Op == isa.SYS && isa.Sys(in.Imm) == isa.SysHalt:
			mark(pc + 1)
		}
	}

	g.blockOf = make([]int, n)
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			id := len(g.blocks)
			g.blocks = append(g.blocks, block{Start: start, End: pc})
			for i := start; i < pc; i++ {
				g.blockOf[i] = id
			}
			start = pc
		}
	}

	inRange := func(t int) bool { return t >= 0 && t < n }
	for id := range g.blocks {
		b := &g.blocks[id]
		last := b.End - 1
		in := code[last]
		addEdge := func(t int) {
			if !inRange(t) {
				g.badTargets = append(g.badTargets, last)
				return
			}
			b.Succs = append(b.Succs, g.blockOf[t])
		}
		switch {
		case in.Op.IsBranch():
			addEdge(last + 1)           // edge 0: fallthrough
			addEdge(last + int(in.Imm)) // edge 1: taken
		case in.Op == isa.JAL:
			addEdge(int(in.Imm))
		case in.Op == isa.JALR:
			for _, rs := range g.returnSites {
				if inRange(rs) {
					b.Succs = append(b.Succs, g.blockOf[rs])
				}
			}
		case in.Op == isa.SYS && isa.Sys(in.Imm) == isa.SysHalt:
			// no successors
		default:
			addEdge(b.End)
		}
	}
	sort.Ints(g.badTargets)
	return g
}

// succEdges enumerates (succ, kind) pairs of a block. For conditional
// branches the first successor is the fallthrough and the second the
// taken edge (when both resolved in range).
func (g *cfg) succEdges(id int) []struct {
	To   int
	Kind edgeKind
} {
	b := g.blocks[id]
	last := g.code[b.End-1]
	out := make([]struct {
		To   int
		Kind edgeKind
	}, 0, len(b.Succs))
	for i, s := range b.Succs {
		k := edgeFall
		if last.Op.IsBranch() && len(b.Succs) == 2 && i == 1 {
			k = edgeTaken
		} else if last.Op.IsBranch() && len(b.Succs) == 1 {
			// One edge fell out of range; classify the surviving one by
			// comparing against the fallthrough target.
			if g.blocks[s].Start != b.End {
				k = edgeTaken
			}
		}
		out = append(out, struct {
			To   int
			Kind edgeKind
		}{s, k})
	}
	return out
}

// reachable marks blocks reachable from the entry block.
func (g *cfg) reachable() []bool {
	seen := make([]bool, len(g.blocks))
	if len(g.blocks) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.blocks[id].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// sccsIn returns the strongly connected components of the block graph
// restricted to the allowed set (nil = every block), in reverse
// topological order (Tarjan). Restricting and recursing below a loop
// header is how nested loops are recovered from maximal SCCs.
func (g *cfg) sccsIn(allowed map[int]bool) [][]int {
	n := len(g.blocks)
	ok := func(id int) bool { return allowed == nil || allowed[id] }
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var out [][]int
	next := 0

	// Iterative Tarjan to stay safe on long chains.
	type frame struct {
		v, succIdx int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 || !ok(root) {
			continue
		}
		dfs = append(dfs[:0], frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.succIdx < len(g.blocks[f.v].Succs) {
				w := g.blocks[f.v].Succs[f.succIdx]
				f.succIdx++
				if !ok(w) {
					continue
				}
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onStack[w] {
					low[f.v] = min64i(low[f.v], index[w])
				}
				continue
			}
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				low[p] = min64i(low[p], low[v])
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				out = append(out, comp)
			}
		}
	}
	return out
}

// cyclic reports whether the SCC comp actually contains a cycle (more
// than one block, or a self edge).
func (g *cfg) cyclic(comp []int) bool {
	if len(comp) > 1 {
		return true
	}
	id := comp[0]
	for _, s := range g.blocks[id].Succs {
		if s == id {
			return true
		}
	}
	return false
}

func min64i(a, b int) int {
	if a < b {
		return a
	}
	return b
}
