package analyze

import (
	"sort"

	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// readRegs returns the registers an instruction reads, per the cpu's
// operand conventions: stores read their data from the Rd field and
// branches compare Rd against Rs1.
func readRegs(in isa.Instr) []isa.Reg {
	switch {
	case in.Op.IsRType():
		return []isa.Reg{in.Rs1, in.Rs2}
	case in.Op.IsBranch():
		return []isa.Reg{in.Rd, in.Rs1}
	case in.Op.IsStore():
		return []isa.Reg{in.Rs1, in.Rd}
	case in.Op.IsLoad(), in.Op == isa.JALR:
		return []isa.Reg{in.Rs1}
	case in.Op == isa.LUI, in.Op == isa.JAL:
		return nil
	case in.Op == isa.SYS:
		if isa.Sys(in.Imm) == isa.SysOut {
			return []isa.Reg{in.Rs1}
		}
		return nil
	default: // I-type ALU
		return []isa.Reg{in.Rs1}
	}
}

// noBoundaryBefore computes, per instruction, whether some path from
// entry reaches it without executing any checkpoint-site SYS — the
// predicate behind the war-before-first-checkpoint lint.
func noBoundaryBefore(g *cfg, boundaries map[isa.Sys]bool) []bool {
	n := len(g.blocks)
	in := make([]bool, n)
	seen := make([]bool, n)
	var work []int
	if n > 0 {
		in[0], seen[0] = true, true
		work = append(work, 0)
	}
	stepBlock := func(id int) bool {
		v := in[id]
		b := g.blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			inr := g.code[pc]
			if inr.Op == isa.SYS && boundaries[isa.Sys(inr.Imm)] {
				v = false
			}
		}
		return v
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		out := stepBlock(id)
		for _, s := range g.blocks[id].Succs {
			if !seen[s] {
				seen[s], in[s] = true, out
				work = append(work, s)
			} else if out && !in[s] {
				in[s] = true
				work = append(work, s)
			}
		}
	}
	res := make([]bool, len(g.code))
	for id, b := range g.blocks {
		if !seen[id] {
			continue
		}
		v := in[id]
		for pc := b.Start; pc < b.End; pc++ {
			res[pc] = v
			inr := g.code[pc]
			if inr.Op == isa.SYS && boundaries[isa.Sys(inr.Imm)] {
				v = false
			}
		}
	}
	return res
}

// analyzeLoops walks the loop-nest forest: maximal SCCs are the
// outermost loops, and recursing into each SCC with its header removed
// uncovers the nested ones. Each loop records store count, checkpoint
// sites, nesting depth, and — for simple cycles — the iteration cost
// and τ_store the Eq. 15 check consumes.
func analyzeLoops(g *cfg, boundaries map[isa.Sys]bool) []LoopInfo {
	var loops []LoopInfo
	var walk func(allowed map[int]bool, depth int)
	walk = func(allowed map[int]bool, depth int) {
		for _, comp := range g.sccsIn(allowed) {
			if !g.cyclic(comp) {
				continue
			}
			loops = append(loops, classifyLoop(g, comp, boundaries, depth))
			// comp is sorted ascending, so comp[0] is the header
			// candidate (the lowest-addressed block, which structured
			// code enters the loop through).
			inner := make(map[int]bool, len(comp)-1)
			for _, id := range comp[1:] {
				inner[id] = true
			}
			walk(inner, depth+1)
		}
	}
	walk(nil, 0)
	sort.Slice(loops, func(i, j int) bool { return loops[i].HeadPC < loops[j].HeadPC })
	return loops
}

// simpleCycleCost prices one block of a simple cycle along the
// loop-continuing path. This is the single convention shared by the
// mean-τ_store pricing below and the max-path WCEC pass (wcec.go):
// every completed iteration charges each instruction at its CyclesFor
// cost with the block terminator priced for the in-loop edge it follows
// (the taken cost exactly when the continuing edge is the taken edge —
// for non-branch terminators the flag is vacuous, CyclesFor ignores
// it). The final, exiting iteration's not-taken branch is deliberately
// NOT folded into the per-iteration figure: pricing the exit belongs to
// the worst-case pass, which charges trips·(cycle cost) plus the worst
// header→exit suffix at the exit edge's own cost.
func simpleCycleCost(g *cfg, id int, takenEdge bool) uint64 {
	b := g.blocks[id]
	var cycles uint64
	for pc := b.Start; pc < b.End-1; pc++ {
		cycles += cpu.CyclesFor(g.code[pc], false)
	}
	return cycles + cpu.CyclesFor(g.code[b.End-1], takenEdge)
}

// classifyLoop builds the LoopInfo for one cyclic SCC.
func classifyLoop(g *cfg, comp []int, boundaries map[isa.Sys]bool, depth int) LoopInfo {
	inComp := make(map[int]bool, len(comp))
	for _, id := range comp {
		inComp[id] = true
	}

	li := LoopInfo{HeadPC: g.blocks[comp[0]].Start, Blocks: len(comp), Depth: depth}
	simple := true
	var cycles uint64
	for _, id := range comp {
		b := g.blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			in := g.code[pc]
			if in.Op.IsStore() {
				li.Stores++
			}
			if in.Op == isa.SYS && boundaries[isa.Sys(in.Imm)] {
				li.HasBoundary = true
			}
		}

		// A simple cycle has exactly one in-SCC successor per block;
		// price the block on that path.
		var inner []int
		taken := false
		for _, e := range g.succEdges(id) {
			if inComp[e.To] {
				inner = append(inner, e.To)
				taken = e.Kind == edgeTaken
			}
		}
		if len(inner) != 1 {
			simple = false
			continue
		}
		cycles += simpleCycleCost(g, id, taken)
	}
	li.Simple = simple
	if simple {
		li.CyclesPerIter = cycles
		if li.Stores > 0 {
			li.TauStore = float64(cycles) / float64(li.Stores)
		}
	}
	return li
}

// lintPass emits all findings into the report. It assumes r.prog,
// r.Hazards, r.RegionHazards, r.Loops and the footprint sets are
// already populated.
func (r *Report) lintPass(g *cfg, fr *flowResult, acc []*accessInfo, readFoot *wordSet, noBoundary []bool) {
	add := func(f Finding) { r.Findings = append(r.Findings, f) }

	// Structural faults first: bad targets, invalid SYS, unreachable.
	for _, pc := range g.badTargets {
		add(r.finding(KindBadTarget, SevError, pc,
			"branch or jump target outside the %d-instruction program", len(g.code)))
	}
	for id, b := range g.blocks {
		if fr.reach[id] {
			continue
		}
		add(r.finding(KindUnreachable, SevWarn, b.Start,
			"unreachable block of %d instruction(s)", b.End-b.Start))
	}
	for id, b := range g.blocks {
		if !fr.reach[id] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.code[pc]

			if in.Op == isa.SYS && !isa.Sys(in.Imm).Valid() {
				add(r.finding(KindBadSys, SevError, pc,
					"undefined SYS code %d faults at runtime", in.Imm))
			}

			// Cold-boot register hygiene: reading a register no path has
			// written yet reads the 0xABABABAB corruption pattern.
			st := fr.stateAt[pc]
			for _, reg := range readRegs(in) {
				if reg != isa.R0 && st.mayUninit(reg) {
					add(r.finding(KindUninitRead, SevError, pc,
						"%v may be read before any write since cold boot", reg))
				}
			}

			// R13–R15 calling convention.
			if in.Op == isa.JAL && in.Rd != isa.R0 && in.Rd != isa.LR {
				add(r.finding(KindCallConv, SevWarn, pc,
					"call links into %v; the convention links through lr so returns can use it", in.Rd))
			}
			if in.Op == isa.JALR && in.Rs1 != isa.LR {
				add(r.finding(KindCallConv, SevInfo, pc,
					"indirect jump through %v rather than lr", in.Rs1))
			}

			a := acc[pc]
			if a == nil {
				continue
			}
			if a.misaligned {
				add(r.finding(KindMisaligned, SevError, pc,
					"word access at %#x is not 4-aligned and faults at runtime", a.addr))
			}
			if a.oob {
				add(r.finding(KindOOB, SevError, pc,
					"access cannot land in SRAM or FRAM"))
			}
		}
	}

	// Dead stores: exact stores to words the program never loads. Only
	// meaningful when the read footprint is bounded.
	if !readFoot.top {
		for id, b := range g.blocks {
			if !fr.reach[id] {
				continue
			}
			for pc := b.Start; pc < b.End; pc++ {
				a := acc[pc]
				if a == nil || !a.store || !a.exact || a.oob {
					continue
				}
				if !readFoot.has(a.addr &^ 3) {
					add(r.finding(KindDeadStore, SevInfo, pc,
						"stores %s which no instruction loads", r.syms.wordName(a.addr&^3)))
				}
			}
		}
	}

	// Outermost loops that store without a checkpoint site anywhere in
	// their body: the store count between checkpoints is unbounded
	// (only Clank's watchdog caps the re-execution interval). Nested
	// loops are exempt when an enclosing loop holds the boundary.
	for _, l := range r.Loops {
		if l.Depth == 0 && l.Stores > 0 && !l.HasBoundary {
			add(r.finding(KindLoopNoBoundary, SevWarn, l.HeadPC,
				"loop stores %d time(s) per iteration but has no checkpoint site", l.Stores))
		}
	}

	// WAR hazards. Region hazards are genuine replay bugs for software
	// checkpointing; those reachable before any checkpoint site are
	// flagged separately. Global hazards are informational for Clank.
	for _, h := range r.RegionHazards {
		kind, sev := KindWARRegion, SevError
		if h.PC < len(noBoundary) && noBoundary[h.PC] {
			kind = KindWARBoot
		}
		add(r.finding(kind, sev, h.PC,
			"store may overwrite %s read earlier in the same checkpoint region", r.syms.describeWords(h)))
	}
	regionAt := make(map[int]bool, len(r.RegionHazards))
	for _, h := range r.RegionHazards {
		regionAt[h.PC] = true
	}
	for _, h := range r.Hazards {
		if regionAt[h.PC] {
			continue // already reported at error severity
		}
		add(r.finding(KindWARGlobal, SevWarn, h.PC,
			"store to %s is a write-after-read under some Clank checkpoint placement", r.syms.describeWords(h)))
	}

	sortFindings(r.Findings)
}

var sevRank = map[Severity]int{SevError: 0, SevWarn: 1, SevInfo: 2}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if sevRank[fs[i].Sev] != sevRank[fs[j].Sev] {
			return sevRank[fs[i].Sev] < sevRank[fs[j].Sev]
		}
		if fs[i].PC != fs[j].PC {
			return fs[i].PC < fs[j].PC
		}
		return fs[i].Kind < fs[j].Kind
	})
}
